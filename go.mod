module asynccycle

go 1.22
