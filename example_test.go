package asynccycle_test

import (
	"fmt"

	"asynccycle"
)

// The paper's headline algorithm: wait-free 5-coloring in O(log* n)
// rounds. With a nil Config the execution is synchronous and
// deterministic.
func ExampleFastColorCycle() {
	ids := []int{1, 2, 3, 4, 5, 6} // unique identifiers around the cycle
	res, err := asynccycle.FastColorCycle(ids, nil)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("colors:", res.Outputs)
	fmt.Println("max rounds:", res.MaxActivations())
	// Output:
	// colors: [0 1 2 3 1 2]
	// max rounds: 6
}

// Crash tolerance: process 0 never wakes, yet every survivor terminates
// and the outputs properly color the surviving subgraph.
func ExampleFiveColorCycle_crash() {
	ids := []int{1, 2, 3, 4, 5, 6}
	res, err := asynccycle.FiveColorCycle(ids, &asynccycle.Config{
		Scheduler:  asynccycle.RoundRobin(1),
		CrashAfter: map[int]int{0: 0}, // 0 rounds: crashed at birth
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("survivor outputs:", res.Outputs[1:])
	fmt.Println("crashed process terminated:", res.Done[0])
	if err := asynccycle.VerifyCycleColoring(len(ids), res); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("coloring verified")
	// Output:
	// survivor outputs: [0 1 2 3 0]
	// crashed process terminated: false
	// coloring verified
}

// Algorithm 1 outputs color *pairs* (a, b) with a+b ≤ 2 — six colors.
func ExampleSixColorCycle() {
	ids := []int{1, 2, 3, 4, 5, 6}
	res, err := asynccycle.SixColorCycle(ids, nil)
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, out := range res.Outputs {
		a, b := asynccycle.DecodePairColor(out)
		fmt.Printf("(%d,%d) ", a, b)
	}
	fmt.Println()
	// Output:
	// (0,0) (0,1) (1,0) (1,1) (1,0) (0,2)
}

// Algorithm 4 colors arbitrary graphs with the O(Δ²) pair palette; here a
// small graph of maximum degree 3.
func ExampleColorGraph() {
	adj := [][]int{{1, 2}, {0, 2}, {0, 1, 3}, {2}}
	res, err := asynccycle.ColorGraph(adj, []int{10, 20, 30, 40}, nil)
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, out := range res.Outputs {
		a, b := asynccycle.DecodePairColor(out)
		fmt.Printf("(%d,%d) ", a, b)
	}
	fmt.Println()
	// Output:
	// (0,0) (0,1) (1,2) (0,0)
}

// Record an execution's schedule, serialize it, and replay it exactly —
// useful for pinning adversarial executions in regression tests.
func ExampleRecord() {
	ids := []int{1, 2, 3, 4, 5, 6}
	rec := asynccycle.Record(asynccycle.RandomSubset(0.5, 7))
	res1, err := asynccycle.FastColorCycle(ids, &asynccycle.Config{Scheduler: rec})
	if err != nil {
		fmt.Println(err)
		return
	}
	data, err := asynccycle.MarshalSchedule(rec.Steps())
	if err != nil {
		fmt.Println(err)
		return
	}
	steps, err := asynccycle.UnmarshalSchedule(data)
	if err != nil {
		fmt.Println(err)
		return
	}
	res2, err := asynccycle.FastColorCycle(ids, &asynccycle.Config{Scheduler: asynccycle.Replay(steps)})
	if err != nil {
		fmt.Println(err)
		return
	}
	same := true
	for i := range res1.Outputs {
		if res1.Outputs[i] != res2.Outputs[i] {
			same = false
		}
	}
	fmt.Println("replay identical:", same)
	// Output:
	// replay identical: true
}
