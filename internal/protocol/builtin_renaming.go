package protocol

import (
	"fmt"

	"asynccycle/internal/check"
	"asynccycle/internal/graph"
	"asynccycle/internal/renaming"
	"asynccycle/internal/sim"
)

// completeTopology builds K_n, the topology of the fully-connected
// protocols (renaming, and the SSB cycle simulation).
func completeTopology(n int) (graph.Graph, error) { return graph.Complete(n) }

// renamingValidity checks the (2n-1)-renaming specification on the
// terminated processes: names inside {0..2n-2}, pairwise distinct.
func renamingValidity(g graph.Graph, r sim.Result) error {
	n := g.N()
	seen := map[int]bool{}
	for i, out := range r.Outputs {
		if !r.Done[i] {
			continue
		}
		if out < 0 || out > renaming.MaxName(n) {
			return fmt.Errorf("name %d outside {0..%d}", out, renaming.MaxName(n))
		}
		if seen[out] {
			return fmt.Errorf("duplicate name %d", out)
		}
		seen[out] = true
	}
	return nil
}

func registerRenaming() {
	MustRegisterEngine(EngineSpec[renaming.Val]{
		Meta: Descriptor{
			Name:         "renaming",
			Problem:      "(2n-1)-renaming on the complete graph",
			Source:       "rank-based renaming (§ related tasks)",
			TopologyName: "K_n",
			MinN:         2,
			Palette:      "{0..2n-2}, pairwise distinct",
			BoundDesc:    "n+2 (measured worst n+1 on K3..K5)",
			Expectation:  "wait-free and safe under every schedule",
			Family:       "complete",
			Bound:        func(n int) int { return n + 2 },
			Topology:     completeTopology,
			ValidateIDs:  distinctIDs,
			Validity:     renamingValidity,
			Checks: func(g graph.Graph) []NamedCheck {
				return []NamedCheck{
					{"distinct names in {0..2n-2}", func(r sim.Result) error { return renamingValidity(g, r) }},
					{"survivors terminated", check.SurvivorsTerminated},
				}
			},
		},
		New: renaming.NewNodes,
	})
}
