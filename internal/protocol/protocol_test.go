package protocol

import (
	"strings"
	"testing"

	"asynccycle/internal/graph"
	"asynccycle/internal/model"
	"asynccycle/internal/runctl"
	"asynccycle/internal/schedule"
	"asynccycle/internal/sim"
)

func TestLookupNamesAndAliases(t *testing.T) {
	cases := []struct{ query, want string }{
		{"six", "six"}, {"pair", "six"}, {"alg1", "six"},
		{"five", "five"}, {"alg2", "five"},
		{"fast", "fast"}, {"alg3", "fast"},
		{"FAST", "fast"}, {" five ", "five"},
		{"mis-greedy", "mis-greedy"}, {"mis-impatient", "mis-impatient"},
		{"renaming", "renaming"},
		{"ssb-greedy", "ssb-greedy"}, {"ssb-impatient", "ssb-impatient"},
		{"decoupled-three", "decoupled-three"}, {"three", "decoupled-three"},
		{"local-cv", "local-cv"}, {"locale", "local-cv"},
	}
	for _, c := range cases {
		d, err := Lookup(c.query)
		if err != nil {
			t.Errorf("Lookup(%q): %v", c.query, err)
			continue
		}
		if d.Name != c.want {
			t.Errorf("Lookup(%q) = %q, want %q", c.query, d.Name, c.want)
		}
	}
	if _, err := Lookup("nope"); err == nil || !strings.Contains(err.Error(), `unknown algorithm "nope"`) {
		t.Errorf("Lookup(nope) error = %v, want unknown-algorithm listing the registry", err)
	}
}

func TestRegisterValidation(t *testing.T) {
	base := func() *Descriptor {
		return &Descriptor{
			Name:     "tmp-proto",
			Problem:  "p",
			Topology: cycleTopology,
			Validity: func(graph.Graph, sim.Result) error { return nil },
			Run: func([]int, RunOptions) (sim.Result, runctl.StopReason, error) {
				return sim.Result{}, runctl.StopNone, nil
			},
		}
	}
	for _, c := range []struct {
		label string
		mut   func(*Descriptor)
	}{
		{"empty name", func(d *Descriptor) { d.Name = "" }},
		{"no problem", func(d *Descriptor) { d.Problem = "" }},
		{"no topology", func(d *Descriptor) { d.Topology = nil }},
		{"no validity", func(d *Descriptor) { d.Validity = nil }},
		{"no run", func(d *Descriptor) { d.Run = nil }},
		{"duplicate of builtin", func(d *Descriptor) { d.Name = "five" }},
		{"alias collides with builtin", func(d *Descriptor) { d.Aliases = []string{"alg2"} }},
	} {
		d := base()
		c.mut(d)
		// Fatal, not Errorf: an accepted descriptor would pollute the
		// global registry for every later test.
		if err := Register(d); err == nil {
			t.Fatalf("%s: Register accepted an invalid descriptor", c.label)
		}
	}
}

func TestCapabilitiesAndModes(t *testing.T) {
	caps := map[string]string{
		"six":             "run,conc,check,worst,sweep,fuzz,big",
		"five":            "run,conc,check,worst,sweep,fuzz,big",
		"fast":            "run,conc,check,worst,sweep,fuzz,big",
		"mis-greedy":      "run,conc,check,worst,fuzz",
		"renaming":        "run,conc,check,worst,fuzz",
		"decoupled-three": "run,check,fuzz",
		"local-cv":        "run",
	}
	for name, want := range caps {
		d, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if got := d.Capabilities(); got != want {
			t.Errorf("%s capabilities = %q, want %q", name, got, want)
		}
	}
	six, _ := Lookup("six")
	if !six.SupportsMode(sim.ModeInterleaved) || !six.SupportsMode(sim.ModeSimultaneous) {
		t.Error("six must support both activation semantics")
	}
	dec, _ := Lookup("decoupled-three")
	if !dec.SupportsMode(sim.ModeInterleaved) || dec.SupportsMode(sim.ModeSimultaneous) {
		t.Error("decoupled-three is native-only: addressed as interleaved, never simultaneous")
	}
	if dec.DefaultCheckDepth <= 0 {
		t.Error("decoupled-three needs a default check depth: its state graph is infinite")
	}
}

func TestBounds(t *testing.T) {
	for _, c := range []struct {
		alg  string
		n    int
		want int
	}{
		{"six", 10, 19},  // ⌊3n/2⌋+4
		{"five", 10, 38}, // 3n+8
		{"renaming", 4, 6},
		{"mis-impatient", 7, 5}, // patience 2 + 3
	} {
		d, err := Lookup(c.alg)
		if err != nil {
			t.Fatal(err)
		}
		if d.Bound == nil {
			t.Errorf("%s: no bound", c.alg)
			continue
		}
		if got := d.Bound(c.n); got != c.want {
			t.Errorf("%s.Bound(%d) = %d, want %d", c.alg, c.n, got, c.want)
		}
	}
	for _, alg := range []string{"mis-greedy", "ssb-greedy", "ssb-impatient"} {
		d, err := Lookup(alg)
		if err != nil {
			t.Fatal(err)
		}
		if d.Bound != nil {
			t.Errorf("%s documents no wait-freedom bound; Bound must be nil", alg)
		}
	}
}

func TestWriteListCoversRegistry(t *testing.T) {
	var sb strings.Builder
	if err := WriteList(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range Names() {
		if !strings.Contains(out, name) {
			t.Errorf("WriteList output missing %q", name)
		}
	}
}

// TestRunMatchesEngine pins the derived Run closure against a direct
// engine execution: same scheduler, same steps, same outputs.
func TestRunMatchesEngine(t *testing.T) {
	d, err := Lookup("five")
	if err != nil {
		t.Fatal(err)
	}
	xs := []int{4, 0, 3, 1, 5}
	res, reason, err := d.Run(xs, RunOptions{Scheduler: schedule.NewRoundRobin(1), MaxSteps: 10_000})
	if err != nil || reason != runctl.StopNone {
		t.Fatalf("Run: reason=%v err=%v", reason, err)
	}
	inst, err := d.NewInstance(xs, sim.ModeInterleaved, nil)
	if err != nil {
		t.Fatal(err)
	}
	rr := schedule.NewRoundRobin(1)
	for !inst.AllSettled() {
		inst.Step(rr.Next(inst))
	}
	got := inst.Result()
	if got.Steps != res.Steps {
		t.Errorf("steps: Run=%d instance=%d", res.Steps, got.Steps)
	}
	for i := range xs {
		if got.Outputs[i] != res.Outputs[i] {
			t.Errorf("output %d: Run=%d instance=%d", i, res.Outputs[i], got.Outputs[i])
		}
	}
}

// TestDecoupledCheckDepthBounded pins the depth-bounded exploration of the
// infinite DECOUPLED tick graph on the smallest cycle.
func TestDecoupledCheckDepthBounded(t *testing.T) {
	d, err := Lookup("decoupled-three")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := d.Check([]int{0, 1, 2}, sim.ModeInterleaved, model.Options{MaxDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 || rep.CycleFound {
		t.Errorf("decoupled-three C3: violations=%d cycle=%t, want clean", len(rep.Violations), rep.CycleFound)
	}
	if !rep.Truncated {
		t.Error("depth-bounded exploration of an infinite graph must report Truncated")
	}
	if rep.States != 3899 {
		t.Errorf("C3 depth-6 subset exploration states = %d, want 3899 (determinism pin)", rep.States)
	}
}
