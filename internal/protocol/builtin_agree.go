package protocol

import (
	"fmt"
	"math/rand"

	"asynccycle/internal/agree"
	"asynccycle/internal/check"
	"asynccycle/internal/graph"
	"asynccycle/internal/sim"
)

// agreeIDs is the permissive identifier precondition: identifiers double
// as inputs (vertex id mod m), so repeats are meaningful, not an error.
func agreeIDs(minN int) func(xs []int) error {
	return func(xs []int) error {
		if len(xs) < minN {
			return fmt.Errorf("approximate agreement needs n ≥ %d, got %d", minN, len(xs))
		}
		return nil
	}
}

// agreeChecks renders the contract's properties as colorcycle verdict
// lines.
func agreeChecks(h agree.ValueGraph) func(g graph.Graph) []NamedCheck {
	return func(graph.Graph) []NamedCheck {
		return []NamedCheck{
			{fmt.Sprintf("edge-agreement on %s", h.Name()), func(r sim.Result) error { return agree.EdgeAgreement(h, r) }},
			{fmt.Sprintf("range (vertices of %s)", h.Name()), func(r sim.Result) error { return agree.Range(h, r) }},
			{"survivors terminated", check.SurvivorsTerminated},
		}
	}
}

// agreeFuzzIDs draws inputs uniformly from the m vertices, repeats
// included — equal and adjacent inputs are the interesting cases.
func agreeFuzzIDs(m int) func(rng *rand.Rand, n int) []int {
	return func(rng *rand.Rand, n int) []int {
		xs := make([]int, n)
		for i := range xs {
			xs[i] = rng.Intn(m)
		}
		return xs
	}
}

func registerAgree() {
	for _, tc := range []struct {
		name  string
		m     int
		alias string
	}{
		{name: "agree-p3", m: 3, alias: "aa3"},
		{name: "agree-p4", m: 4, alias: "aa4"},
	} {
		h := agree.Path(tc.m)
		rounds := h.Rounds()
		m := tc.m
		MustRegisterEngine(EngineSpec[agree.Val]{
			Meta: Descriptor{
				Name:         tc.name,
				Aliases:      []string{tc.alias},
				Problem:      fmt.Sprintf("approximate agreement on path %s (inputs = id mod %d)", h.Name(), tc.m),
				Source:       "Alistarh–Ellen–Rybicki (arXiv:2103.08949)",
				TopologyName: "complete",
				MinN:         2,
				Palette:      fmt.Sprintf("vertices of %s", h.Name()),
				BoundDesc:    fmt.Sprintf("⌈log₂ %d⌉₊ = %d", tc.m-1, rounds),
				Expectation:  "wait-free; all outputs on one edge of the value graph (E23)",
				Family:       "complete",
				Bound:        func(int) int { return rounds },
				Topology:     completeTopology,
				ValidateIDs:  agreeIDs(2),
				Contract:     agree.Contract(h),
				Checks:       agreeChecks(h),
				FuzzIDs:      agreeFuzzIDs(tc.m),
			},
			New: func(xs []int) []sim.Node[agree.Val] { return agree.NewPathNodes(xs, m) },
		})
	}
	h := agree.CycleGraph(4)
	MustRegisterEngine(EngineSpec[agree.Val]{
		Meta: Descriptor{
			Name:         "agree-c4",
			Aliases:      []string{"aac4"},
			Problem:      "2-process approximate agreement on cycle C4 (inputs = id mod 4)",
			Source:       "Alistarh–Ellen–Rybicki (arXiv:2103.08949)",
			TopologyName: "complete",
			MinN:         2,
			Palette:      "vertices of C4",
			BoundDesc:    "1",
			Expectation:  "wait-free for 2 processes (≥ 3 is AER's impossibility; E23)",
			Family:       "complete",
			Bound:        func(int) int { return 1 },
			Topology:     completeTopology,
			ValidateIDs:  agreeIDs(2),
			Contract:     agree.Contract(h),
			Checks:       agreeChecks(h),
			FuzzIDs:      agreeFuzzIDs(4),
			// The one-shot meet protocol is a two-process algorithm; fuzzed
			// sizes collapse to n = 2.
			FixN: func(int) int { return 2 },
		},
		New: func(xs []int) []sim.Node[agree.Val] { return agree.NewCycleNodes(xs, 4) },
	})
}
