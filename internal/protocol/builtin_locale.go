package protocol

import (
	"fmt"

	"asynccycle/internal/check"
	"asynccycle/internal/graph"
	"asynccycle/internal/locale"
	"asynccycle/internal/runctl"
	"asynccycle/internal/sim"
)

// localeValidity is the synchronous LOCAL baseline specification: a proper
// 3-coloring of the whole cycle.
func localeValidity(g graph.Graph, r sim.Result) error {
	if err := check.ProperColoring(g, r); err != nil {
		return err
	}
	return check.PaletteRange(r, 3)
}

func registerLocale() {
	MustRegister(&Descriptor{
		Name:         "local-cv",
		Aliases:      []string{"locale"},
		Problem:      "3-coloring of the cycle in the synchronous LOCAL model",
		Source:       "Cole-Vishkin baseline (§2, comparison point)",
		TopologyName: "cycle (synchronous, crash-free)",
		MinN:         3,
		Palette:      "{0..2}",
		BoundDesc:    "O(log* n) synchronous rounds",
		Expectation:  "crash-free baseline: what the asynchronous model must give up",
		Family:       "cycle",
		Topology:     cycleTopology,
		ValidateIDs:  misIDs,
		Validity:     localeValidity,
		Checks: func(g graph.Graph) []NamedCheck {
			return []NamedCheck{
				{"proper coloring", func(r sim.Result) error { return check.ProperColoring(g, r) }},
				{"palette {0..2}", func(r sim.Result) error { return check.PaletteRange(r, 3) }},
				{"all terminated", check.AllTerminated},
			}
		},

		// Run executes the synchronous algorithm directly: the LOCAL model
		// has no adversary, so Scheduler, Mode, and Budget do not apply,
		// and crashes are rejected — that absence is the point of the
		// baseline.
		Run: func(xs []int, o RunOptions) (sim.Result, runctl.StopReason, error) {
			if len(o.Crashes) > 0 {
				return sim.Result{}, runctl.StopNone, fmt.Errorf("local-cv is crash-free: the LOCAL model has no adversary")
			}
			colors, rounds, err := locale.ThreeColorCycle(xs)
			if err != nil {
				return sim.Result{}, runctl.StopNone, err
			}
			n := len(xs)
			res := sim.Result{
				Outputs:     colors,
				Done:        make([]bool, n),
				Crashed:     make([]bool, n),
				Activations: make([]int, n),
				Steps:       rounds,
			}
			for i := range res.Done {
				res.Done[i] = true
				res.Activations[i] = rounds
			}
			return res, runctl.StopNone, nil
		},
	})
}
