package protocol

import (
	"fmt"

	"asynccycle/internal/check"
	"asynccycle/internal/decoupled"
	"asynccycle/internal/graph"
	"asynccycle/internal/model"
	"asynccycle/internal/runctl"
	"asynccycle/internal/schedule"
	"asynccycle/internal/sim"
)

// decoupledInstance adapts the DECOUPLED engine to the type-erased
// sim.Instance surface, making the communication-layer model checkable and
// fuzzable through the same registry entry points as the state model.
type decoupledInstance struct {
	e *decoupled.Engine[decoupled.ThreeColorVal]
}

func (x *decoupledInstance) N() int                  { return x.e.N() }
func (x *decoupledInstance) Time() int               { return x.e.Time() }
func (x *decoupledInstance) Working(i int) bool      { return x.e.Working(i) }
func (x *decoupledInstance) Activations(i int) int   { return x.e.Activations(i) }
func (x *decoupledInstance) AllDone() bool           { return x.e.AllDone() }
func (x *decoupledInstance) AllSettled() bool        { return x.e.AllSettled() }
func (x *decoupledInstance) Step(active []int) []int { return x.e.Tick(active) }
func (x *decoupledInstance) Result() sim.Result      { return convDecoupled(x.e.Snapshot()) }
func (x *decoupledInstance) Fingerprint() string     { return x.e.Fingerprint() }

func (x *decoupledInstance) FingerprintHash128() (uint64, uint64) {
	var h sim.FPHasher
	h.Reset()
	h.HashString(x.e.Fingerprint())
	return h.Sum128()
}

func (x *decoupledInstance) Clone() sim.Instance { return &decoupledInstance{e: x.e.Clone()} }

// CloneInto falls back to Clone: the DECOUPLED engine's buffers vary in
// length per configuration, so storage reuse buys nothing measurable.
func (x *decoupledInstance) CloneInto(dst sim.Instance) sim.Instance { return x.Clone() }

// convDecoupled maps a DECOUPLED result onto the state-model result shape;
// Steps counts communication-layer ticks.
func convDecoupled(r decoupled.Result) sim.Result {
	return sim.Result{
		Outputs:     r.Outputs,
		Done:        r.Done,
		Crashed:     r.Crashed,
		Activations: r.Activations,
		Steps:       r.CommRounds,
	}
}

// decoupledThreeValidity is the ThreeColor specification: a proper
// coloring of the terminated subgraph with only 3 colors — beating the
// state model's 5-color lower bound by exploiting the synchronous layer.
func decoupledThreeValidity(g graph.Graph, r sim.Result) error {
	if err := check.ProperColoring(g, r); err != nil {
		return err
	}
	return check.PaletteRange(r, 3)
}

func registerDecoupled() {
	mk := func(xs []int, crashes map[int]int) (*decoupled.Engine[decoupled.ThreeColorVal], graph.Graph, error) {
		g, err := cycleTopology(len(xs))
		if err != nil {
			return nil, graph.Graph{}, err
		}
		e, err := decoupled.NewEngine(g, decoupled.NewThreeColorNodes(xs))
		if err != nil {
			return nil, graph.Graph{}, err
		}
		for i, k := range crashes {
			if i < 0 || i >= g.N() {
				return nil, graph.Graph{}, fmt.Errorf("crash index %d out of range", i)
			}
			e.CrashAfter(i, k)
		}
		return e, g, nil
	}

	MustRegister(&Descriptor{
		Name:         "decoupled-three",
		Aliases:      []string{"three"},
		Problem:      "3-coloring of the cycle in the DECOUPLED model",
		Source:       "ThreeColor over the synchronous layer (§1.4, [13])",
		TopologyName: "cycle (synchronous reliable layer)",
		MinN:         3,
		Palette:      "{0..2}",
		BoundDesc:    "—",
		Expectation:  "safe; 3 colors are impossible in the state model — wake-then-crash still blocks",
		Family:       "cycle",
		Topology:     cycleTopology,
		ValidateIDs:  misIDs,
		Validity:     decoupledThreeValidity,

		// The tick counter makes the state graph infinite; without a
		// depth horizon Check runs straight to its state budget.
		DefaultCheckDepth: 6,
		Checks: func(g graph.Graph) []NamedCheck {
			return []NamedCheck{
				{"proper coloring", func(r sim.Result) error { return check.ProperColoring(g, r) }},
				{"palette {0..2}", func(r sim.Result) error { return check.PaletteRange(r, 3) }},
				{"survivors terminated", check.SurvivorsTerminated},
			}
		},

		NewInstance: func(xs []int, mode sim.Mode, crashes map[int]int) (sim.Instance, error) {
			e, _, err := mk(xs, crashes)
			if err != nil {
				return nil, err
			}
			return &decoupledInstance{e: e}, nil
		},

		// Run drives the tick loop directly. The network clock is part of
		// the model, so MaxSteps bounds communication rounds, not process
		// steps; the budgeted path mirrors the state engine's idle-streak
		// crash rule (Budget.MaxActivations is not supported here).
		Run: func(xs []int, o RunOptions) (sim.Result, runctl.StopReason, error) {
			e, _, err := mk(xs, o.Crashes)
			if err != nil {
				return sim.Result{}, runctl.StopNone, err
			}
			if o.TraceText != nil {
				return sim.Result{}, runctl.StopNone, fmt.Errorf("decoupled-three does not support trace output")
			}
			sched := o.Scheduler
			if sched == nil {
				sched = schedule.Synchronous{}
			}
			if o.budgeted() {
				ck := runctl.NewChecker(o.Context, o.Budget.Timeout)
				maxTicks := runctl.Min(o.MaxSteps, o.Budget.MaxSteps)
				empties := 0
				for !e.AllSettled() {
					if reason, stop := ck.Check(); stop {
						return convDecoupled(e.Snapshot()), reason, nil
					}
					if e.Time()-1 >= maxTicks {
						return convDecoupled(e.Snapshot()), runctl.StopMaxSteps, nil
					}
					if performed := e.Tick(sched.Next(e)); len(performed) == 0 {
						if empties++; empties >= 2048 {
							for i := 0; i < e.N(); i++ {
								if e.Working(i) {
									e.CrashAfter(i, 0)
								}
							}
						}
					} else {
						empties = 0
					}
				}
				return convDecoupled(e.Snapshot()), runctl.StopNone, nil
			}
			res, err := e.Run(sched, o.MaxSteps)
			return convDecoupled(res), runctl.StopNone, err
		},

		// Check explores the tick-transition system. The clock makes the
		// reachable graph infinite and acyclic, so callers should bound
		// Options.MaxDepth and read Truncated reports as verdicts over all
		// schedules of at most MaxDepth ticks.
		Check: func(xs []int, mode sim.Mode, opt model.Options) (model.Report, error) {
			e, g, err := mk(xs, nil)
			if err != nil {
				return model.Report{}, err
			}
			inst := &decoupledInstance{e: e}
			inv := func(i sim.Instance) error { return decoupledThreeValidity(g, i.Result()) }
			return model.ExploreInstance(inst, opt, inv), nil
		},
	})
}
