package protocol

import (
	"fmt"

	"asynccycle/internal/check"
	"asynccycle/internal/dp1"
	"asynccycle/internal/graph"
	"asynccycle/internal/sim"
)

// dp1IDs is the (Δ+1)-coloring input precondition: distinct non-negative
// identifiers (distinctness across every edge would suffice; globally
// unique is what every dispatch site generates).
func dp1IDs(xs []int) error {
	if len(xs) < 3 {
		return fmt.Errorf("dp1 needs n ≥ 3, got %d", len(xs))
	}
	return distinctIDs(xs)
}

// dp1Validity is the (Δ+1)-coloring specification: a proper coloring of
// the terminated subgraph with colors in {0..Δ}, at every reachable
// configuration.
func dp1Validity(g graph.Graph, r sim.Result) error {
	if err := check.ProperColoring(g, r); err != nil {
		return err
	}
	return check.PaletteRange(r, g.MaxDegree()+1)
}

func dp1Checks(g graph.Graph) []NamedCheck {
	maxDeg := g.MaxDegree()
	return []NamedCheck{
		{"proper coloring", func(r sim.Result) error { return check.ProperColoring(g, r) }},
		{fmt.Sprintf("palette {0..%d} (Δ+1)", maxDeg), func(r sim.Result) error { return check.PaletteRange(r, maxDeg+1) }},
		{"survivors terminated", check.SurvivorsTerminated},
	}
}

func registerDP1() {
	MustRegisterEngine(EngineSpec[dp1.Val]{
		Meta: Descriptor{
			Name:         "dp1",
			Aliases:      []string{"deltaplus1"},
			Problem:      "(Δ+1)-coloring of Δ-bounded graphs",
			Source:       "AG stage + claim reduction (Appendix A base; arXiv:2408.10971 direction)",
			TopologyName: "cycle",
			MinN:         3,
			Palette:      "{0..Δ} (Δ+1 colors)",
			BoundDesc:    "—",
			Expectation:  "safe (Δ+1)-proper on every declared topology; not wait-free — (Δ+1)-coloring K_n is perfect renaming, so adversarial schedules may livelock",
			Family:       "cycle",
			Topologies:   []string{"path", "complete", "torus", "random"},
			Topology:     cycleTopology,
			ValidateIDs:  dp1IDs,
			Validity:     dp1Validity,
			Checks:       dp1Checks,
		},
		New:   dp1.NewNodes,
		Sweep: true,
	})
}
