package protocol

import (
	"errors"
	"fmt"
	"strings"

	"asynccycle/internal/graph"
)

// ErrTopology is the sentinel wrapped by WithTopology when a protocol does
// not declare support for the requested topology family. Dispatch sites
// surface it verbatim — a protocol that has not earned a family must fail
// loudly, never run on an adjacency its proofs do not cover.
var ErrTopology = errors.New("protocol: unsupported topology")

// ErrBigTopology is the sentinel wrapped by CheckBigTopology: the
// struct-of-arrays big engine is ring-indexed (node i reads i±1 mod n
// directly, bypassing graph adjacency), so it runs only on the plain
// cycle. Any other topology — or a shuffled-neighbor cycle — would
// silently compute garbage neighbor reads.
var ErrBigTopology = errors.New("protocol: the big engine supports only the plain cycle topology")

// CheckBigTopology validates a -topology spec for the big engine. The
// empty spec (the native cycle) and the explicit plain "cycle" pass;
// everything else fails with ErrBigTopology.
func CheckBigTopology(spec string) error {
	if spec == "" {
		return nil
	}
	b, err := graph.ParseTopology(spec)
	if err != nil {
		return err
	}
	if b.Family != "cycle" || b.Shuffled {
		return fmt.Errorf("%w (got %q; bigsim kernels are ring-indexed)", ErrBigTopology, b.Spec)
	}
	return nil
}

// WithTopology resolves a -topology spec against a descriptor. The empty
// spec and the plain form of the descriptor's native family return d
// itself; any other supported spec returns an unregistered retargeted
// copy whose capability closures build the requested graph, with the
// cycle-only surfaces (wait-freedom bound, big kernel, cycle identifier
// precondition) honestly cleared. Unsupported families fail with
// ErrTopology, unknown specs with graph.ErrUnknownTopology.
func WithTopology(d *Descriptor, spec string) (*Descriptor, error) {
	if spec == "" {
		return d, nil
	}
	b, err := graph.ParseTopology(spec)
	if err != nil {
		return nil, err
	}
	if b.Family == d.Family && !b.Shuffled && b.Family != "random" {
		// The plain native form ("cycle" on a cycle protocol) is exactly
		// the registered descriptor. Random specs always retarget: their
		// Δ and seed parameters make every spec a distinct graph.
		return d, nil
	}
	if !d.supportsFamily(b.Family) {
		supported := append([]string{d.Family}, d.Topologies...)
		return nil, fmt.Errorf("%w: %s supports {%s}, not %q", ErrTopology, d.Name, strings.Join(supported, ","), b.Family)
	}
	if d.retarget == nil {
		return nil, fmt.Errorf("%w: %s cannot be retargeted (no engine-backed surface)", ErrTopology, d.Name)
	}
	return d.retarget(b)
}

func (d *Descriptor) supportsFamily(f string) bool {
	if f == d.Family && d.Family != "" {
		return true
	}
	for _, t := range d.Topologies {
		if t == f {
			return true
		}
	}
	return false
}
