// Package protocol is the unified algorithm registry: one pluggable layer
// that every dispatch site — the root facade, the model-checking and
// fuzzing engines, the experiment runners, and all four CLIs — consults
// instead of hard-coding per-algorithm switches.
//
// A protocol registers a Descriptor: metadata (name, aliases, problem,
// palette, wait-freedom bound, topology) plus capability closures
// (construct an instance for exhaustive exploration, run deterministically,
// run concurrently, model-check, sweep). Capabilities are nilable — a
// protocol exposes exactly the surfaces its model supports, and callers
// gate on non-nil closures rather than on protocol names. See DESIGN.md
// §10 for the descriptor contract.
package protocol

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"sync"
	"text/tabwriter"

	"asynccycle/internal/bigsim"
	"asynccycle/internal/conc"
	"asynccycle/internal/contract"
	"asynccycle/internal/graph"
	"asynccycle/internal/model"
	"asynccycle/internal/runctl"
	"asynccycle/internal/schedule"
	"asynccycle/internal/sim"
)

// NamedCheck pairs a short human-readable label with an outcome predicate;
// the colorcycle CLI prints one verdict line per check.
type NamedCheck struct {
	Name  string
	Check func(r sim.Result) error
}

// RunOptions tunes one deterministic execution through Descriptor.Run. The
// zero value (plus a positive MaxSteps) runs synchronously, crash-free,
// without budget.
type RunOptions struct {
	// Scheduler drives the execution; nil means schedule.Synchronous{}.
	Scheduler schedule.Scheduler
	// Mode selects the activation semantics for protocols that support
	// both (Descriptor.Modes); protocols with native semantics ignore it.
	Mode sim.Mode
	// Crashes maps a process index to a round count after which it
	// crashes (0 = never wakes).
	Crashes map[int]int
	// MaxSteps bounds the execution length; exceeding it returns an error
	// wrapping the engine's step-limit sentinel. Must be positive.
	MaxSteps int
	// TraceText, when non-nil, receives the per-event text trace after a
	// successful run (protocols without trace support return an error).
	TraceText io.Writer
	// Context, when non-nil, switches to the budgeted run path: the
	// engine stops between steps once ctx is done and returns the partial
	// result with the StopReason.
	Context context.Context
	// Budget bounds the run along explicit axes; a non-zero Budget also
	// selects the budgeted run path.
	Budget runctl.Budget
}

// budgeted reports whether the options select the budget-aware run path,
// mirroring the facade's historical dispatch condition exactly.
func (o RunOptions) budgeted() bool {
	return o.Context != nil || !o.Budget.IsZero()
}

// Descriptor is a self-describing protocol: identity and metadata first,
// then capability closures. Closures may be nil — callers must gate on
// them (Capabilities lists the non-nil ones).
type Descriptor struct {
	// Name is the canonical registry key (lowercase, no spaces).
	Name string
	// Aliases are accepted alternative names (e.g. "pair" for "six").
	Aliases []string
	// Problem is the one-line task statement ("6-coloring of the cycle").
	Problem string
	// Source cites the algorithm's origin ("Algorithm 2 (Thm 3.4)").
	Source string
	// TopologyName names the communication graph family ("cycle", "K_n").
	TopologyName string
	// MinN is the smallest supported instance size.
	MinN int
	// Palette describes the output range in human terms.
	Palette string
	// BoundDesc states the wait-freedom bound symbolically, or "—".
	BoundDesc string
	// Expectation summarizes the verified verdict (safe/wait-free/…) for
	// the -list tables.
	Expectation string
	// Family is the native topology family the metadata above is stated
	// for — the graph.Builder family ("cycle", "complete", …) matching
	// the Topology closure. WithTopology treats a spec resolving to this
	// family's plain form as a no-op; empty means the descriptor opts out
	// of retargeting entirely.
	Family string
	// Topologies lists additional builder families the protocol's state
	// machine is degree-generic over. WithTopology refuses any family
	// that is neither Family nor listed here, so capability gating stays
	// honest: a protocol earns a family by declaring it, not by luck.
	Topologies []string

	// Bound returns the per-process wait-freedom round bound for size n,
	// or ≤ 0 when the protocol is not wait-free (liveness oracles must
	// then be disabled).
	Bound func(n int) int
	// Topology builds the communication graph for n processes.
	Topology func(n int) (graph.Graph, error)
	// ValidateIDs checks the protocol's input precondition on the
	// identifier vector (nil = only distinctness-free defaults apply).
	ValidateIDs func(xs []int) error
	// FormatOutput renders one output value for display (nil = decimal).
	FormatOutput func(c int) string

	// Contract is the protocol's correctness contract — the pluggable
	// property layer every checker consumes (safety properties with
	// provenance labels, a terminal-state policy, and a liveness kind).
	// Descriptors may leave it nil and set Validity instead: Register
	// then synthesizes a bare terminating adapter from Validity/Bound so
	// pre-contract protocols keep byte-identical output. At least one of
	// Contract and Validity must be set.
	Contract contract.Contract
	// Validity checks an outcome against the protocol's specification.
	// It must hold at every reachable configuration, counting only
	// terminated processes — the model checker uses it as its invariant
	// and the fuzzer as its safety oracle. Nil is allowed when Contract
	// is set; Register then derives Validity from Contract.Safety.
	Validity func(g graph.Graph, r sim.Result) error
	// Checks lists the verdict predicates the colorcycle CLI prints; nil
	// falls back to Validity as a single "validity" line.
	Checks func(g graph.Graph) []NamedCheck

	// NewInstance constructs a fresh type-erased instance for exhaustive
	// exploration and schedule fuzzing. Nil means the protocol cannot be
	// branched (no deep-copyable configuration).
	NewInstance func(xs []int, mode sim.Mode, crashes map[int]int) (sim.Instance, error)
	// Run executes one deterministic schedule to completion.
	Run func(xs []int, o RunOptions) (sim.Result, runctl.StopReason, error)
	// RunConc executes with real goroutines (nil = no concurrent runtime).
	RunConc func(xs []int, o conc.Options) (sim.Result, error)
	// Check exhaustively explores all schedules, checking Validity.
	Check func(xs []int, mode sim.Mode, opt model.Options) (model.Report, error)
	// Worst computes exact per-process worst-case round counts.
	Worst func(xs []int, mode sim.Mode, opt model.Options) ([]int, bool, model.Report, error)
	// Sweep explores all identifier assignments of size n up to symmetry.
	Sweep func(n int, mode sim.Mode, opt model.Options) (model.SweepReport, error)
	// SweepWorst computes worst-case rounds over all assignments.
	SweepWorst func(n int, mode sim.Mode, opt model.Options) (model.SweepReport, error)
	// BigKernel builds the protocol's struct-of-arrays kernel for the
	// high-throughput large-cycle engine (internal/bigsim). Nil means the
	// protocol has no big-run surface; cmd/colorcycle and cmd/bench gate
	// their large-n paths on it.
	BigKernel func(xs []int) (bigsim.Kernel, error)

	// Modes lists the activation semantics the protocol supports; empty
	// means it has a single native semantics and ignores RunOptions.Mode.
	Modes []sim.Mode
	// FuzzIDs draws a random identifier vector satisfying the protocol's
	// input precondition (nil = distinct uniform identifiers).
	FuzzIDs func(rng *rand.Rand, n int) []int
	// FixN normalizes a fuzzed instance size to one the protocol accepts
	// (nil = any n ≥ MinN).
	FixN func(n int) int
	// DefaultCheckDepth bounds Check's schedule length when the caller
	// does not choose one. Protocols whose state graph is infinite (the
	// DECOUPLED tick counter never repeats) need a finite horizon or the
	// checker runs to its state budget; 0 means the model package default
	// is fine because the state graph is finite.
	DefaultCheckDepth int

	// retarget rebuilds the capability closures over a different topology
	// builder, returning an unregistered copy. RegisterEngine installs it
	// for engine-backed protocols; WithTopology is the public entry.
	retarget func(b graph.Builder) (*Descriptor, error)
}

// SupportsMode reports whether the protocol implements the given
// activation semantics (protocols with empty Modes support only their
// native semantics, addressed as ModeInterleaved).
func (d *Descriptor) SupportsMode(m sim.Mode) bool {
	if len(d.Modes) == 0 {
		return m == sim.ModeInterleaved
	}
	for _, x := range d.Modes {
		if x == m {
			return true
		}
	}
	return false
}

// Capabilities lists the non-nil capability surfaces, comma-separated, in
// a fixed order — the -list tables print it.
func (d *Descriptor) Capabilities() string {
	return strings.Join(d.CapabilityList(), ",")
}

// CapabilityList lists the non-nil capability surfaces in the same fixed
// order as Capabilities — the registry's machine-readable self-description
// (see Info).
func (d *Descriptor) CapabilityList() []string {
	var caps []string
	if d.Run != nil {
		caps = append(caps, "run")
	}
	if d.RunConc != nil {
		caps = append(caps, "conc")
	}
	if d.Check != nil {
		caps = append(caps, "check")
	}
	if d.Worst != nil {
		caps = append(caps, "worst")
	}
	if d.Sweep != nil {
		caps = append(caps, "sweep")
	}
	if d.NewInstance != nil {
		caps = append(caps, "fuzz")
	}
	if d.BigKernel != nil {
		caps = append(caps, "big")
	}
	return caps
}

// registry holds the descriptors in registration order plus a
// case-insensitive name/alias index.
var registry = struct {
	sync.RWMutex
	ordered []*Descriptor
	byName  map[string]*Descriptor
}{byName: make(map[string]*Descriptor)}

// Register adds a descriptor to the registry. It rejects descriptors
// missing the required surfaces (Name, Problem, Topology, Run, and at
// least one of Validity and Contract) and any name or alias already
// taken. Registration completes the property layer in both directions:
// a descriptor with only a legacy Validity closure gets a synthesized
// bare terminating contract, and a descriptor with only a Contract gets
// Validity derived from Contract.Safety — so every registered protocol
// exposes both surfaces.
func Register(d *Descriptor) error {
	if d == nil || d.Name == "" {
		return fmt.Errorf("protocol: descriptor without a name")
	}
	if d.Problem == "" || d.Topology == nil || d.Run == nil || (d.Validity == nil && d.Contract == nil) {
		return fmt.Errorf("protocol: descriptor %q missing a required field (Problem, Topology, Run, and one of Validity or Contract)", d.Name)
	}
	completeContract(d)
	keys := append([]string{d.Name}, d.Aliases...)
	registry.Lock()
	defer registry.Unlock()
	for _, k := range keys {
		k = strings.ToLower(strings.TrimSpace(k))
		if k == "" {
			return fmt.Errorf("protocol: descriptor %q has an empty alias", d.Name)
		}
		if prev, dup := registry.byName[k]; dup {
			return fmt.Errorf("protocol: name %q already registered by %q", k, prev.Name)
		}
	}
	for _, k := range keys {
		registry.byName[strings.ToLower(strings.TrimSpace(k))] = d
	}
	registry.ordered = append(registry.ordered, d)
	return nil
}

// completeContract fills in the missing half of the property layer so
// every registered descriptor exposes both Contract and Validity. A
// legacy descriptor (Validity only) gets a bare terminating adapter —
// violations keep their historical unlabeled text, and the liveness kind
// follows the bound surface. A contract-first descriptor (Contract only)
// gets Validity derived from Contract.Safety so every pre-contract call
// site keeps working.
func completeContract(d *Descriptor) {
	if d.Contract == nil {
		kind := contract.Convergence
		if d.Bound != nil {
			kind = contract.WaitFreeBounded
		}
		d.Contract = &contract.Terminating{
			Name:  "coloring",
			Props: []contract.Property{{Name: "validity", Check: d.Validity}},
			Kind:  kind,
			Bare:  true,
		}
		return
	}
	if d.Validity == nil {
		d.Validity = d.Contract.Safety
	}
}

// ContractLabel returns the contract name for verdict labels and report
// headers, or "" for legacy bare adapters — callers omit the field then,
// keeping pre-contract output byte-identical.
func (d *Descriptor) ContractLabel() string {
	if d.Contract == nil || !d.Contract.Labeled() {
		return ""
	}
	return d.Contract.ContractName()
}

// MustRegister is Register, panicking on error; builtin descriptors use it
// at init time.
func MustRegister(d *Descriptor) {
	if err := Register(d); err != nil {
		panic(err)
	}
}

// Lookup resolves a protocol by name or alias, case-insensitively.
func Lookup(name string) (*Descriptor, error) {
	registry.RLock()
	defer registry.RUnlock()
	if d, ok := registry.byName[strings.ToLower(strings.TrimSpace(name))]; ok {
		return d, nil
	}
	return nil, fmt.Errorf("unknown algorithm %q (registered: %s)", name, strings.Join(namesLocked(), "|"))
}

// All returns the registered descriptors in registration order.
func All() []*Descriptor {
	registry.RLock()
	defer registry.RUnlock()
	return append([]*Descriptor(nil), registry.ordered...)
}

// Names returns the canonical protocol names in registration order.
func Names() []string {
	registry.RLock()
	defer registry.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	out := make([]string, len(registry.ordered))
	for i, d := range registry.ordered {
		out[i] = d.Name
	}
	return out
}

// WriteList renders the registry as an aligned table — the shared
// implementation behind every CLI's -list flag.
func WriteList(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "NAME\tALIASES\tPROBLEM\tGRAPH\tPALETTE\tBOUND\tCONTRACT\tCAPABILITIES")
	for _, d := range All() {
		aliases := strings.Join(d.Aliases, ",")
		if aliases == "" {
			aliases = "—"
		}
		bound := d.BoundDesc
		if bound == "" {
			bound = "—"
		}
		ct := "—"
		if d.Contract != nil {
			ct = d.Contract.ContractName()
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\n",
			d.Name, aliases, d.Problem, d.TopologyName, d.Palette, bound, ct, d.Capabilities())
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, d := range All() {
		if d.Expectation != "" {
			fmt.Fprintf(w, "  %-16s %s\n", d.Name+":", d.Expectation)
		}
	}
	return nil
}
