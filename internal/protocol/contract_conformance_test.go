package protocol

// Registry-wide contract conformance: for every registered descriptor the
// two property surfaces — the legacy Validity closure and the contract's
// Safety — must agree verdict-for-verdict on a pinned battery of result
// shapes. Register synthesizes each surface from the other, so this
// guards the wiring (including future refactors that might split them),
// and additionally pins that bare adapters keep their historical
// unlabeled violation text while explicit contracts carry provenance.

import (
	"strings"
	"testing"

	"asynccycle/internal/sim"
)

// conformanceBattery builds result shapes covering the interesting
// verdict space for n processes: nothing terminated, everything
// terminated monochromatic (improper for coloring protocols), outputs
// far out of any palette, a half-terminated alternation, and a
// stabilizing-style snapshot with register values recorded.
func conformanceBattery(n int) []sim.Result {
	mk := func(out func(i int) int, done func(i int) bool, values bool) sim.Result {
		r := sim.Result{
			Outputs: make([]int, n),
			Done:    make([]bool, n),
			Crashed: make([]bool, n),
		}
		for i := 0; i < n; i++ {
			r.Outputs[i] = out(i)
			r.Done[i] = done(i)
		}
		if values {
			r.Values = make([]int, n)
			for i := 0; i < n; i++ {
				r.Values[i] = out(i)
			}
		}
		return r
	}
	return []sim.Result{
		mk(func(int) int { return 0 }, func(int) bool { return false }, false),
		mk(func(int) int { return 0 }, func(int) bool { return true }, false),
		mk(func(int) int { return -7 }, func(int) bool { return true }, false),
		mk(func(i int) int { return 99 }, func(int) bool { return true }, false),
		mk(func(i int) int { return i % 2 }, func(i int) bool { return i%2 == 0 }, false),
		mk(func(i int) int { return i % 2 }, func(int) bool { return false }, true),
		mk(func(int) int { return 1 }, func(int) bool { return false }, true),
	}
}

func TestContractSafetyAgreesWithValidity(t *testing.T) {
	for _, d := range All() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			if d.Contract == nil {
				t.Fatal("registration must complete the contract surface")
			}
			if d.Validity == nil {
				t.Fatal("registration must complete the legacy Validity surface")
			}
			n := d.MinN
			if n < 3 {
				n = 3
			}
			if d.FixN != nil {
				n = d.FixN(n)
			}
			g, err := d.Topology(n)
			if err != nil {
				t.Fatalf("topology(%d): %v", n, err)
			}
			for bi, r := range conformanceBattery(n) {
				vErr := d.Validity(g, r)
				cErr := d.Contract.Safety(g, r)
				if (vErr == nil) != (cErr == nil) {
					t.Fatalf("battery %d: Validity=%v, Contract.Safety=%v — verdicts disagree", bi, vErr, cErr)
				}
				if vErr == nil {
					continue
				}
				if vErr.Error() != cErr.Error() {
					t.Fatalf("battery %d: Validity=%q, Contract.Safety=%q — texts disagree", bi, vErr, cErr)
				}
				if d.Contract.Labeled() {
					if !strings.HasPrefix(cErr.Error(), "contract="+d.Contract.ContractName()+" property=") {
						t.Fatalf("battery %d: labeled contract violation lacks provenance: %q", bi, cErr)
					}
				} else if strings.Contains(cErr.Error(), "contract=") {
					t.Fatalf("battery %d: bare adapter leaked a provenance label: %q", bi, cErr)
				}
			}
		})
	}
}

// TestContractLabelPartition pins which protocols carry labeled contracts:
// exactly the two new contract-first families — every pre-contract
// protocol keeps a bare adapter so its recorded outputs stay
// byte-identical.
func TestContractLabelPartition(t *testing.T) {
	labeled := map[string]string{
		"agree-p3": "approx-agreement",
		"agree-p4": "approx-agreement",
		"agree-c4": "approx-agreement",
		"ssuni":    "ss-coloring",
	}
	for _, d := range All() {
		want := labeled[d.Name]
		if got := d.ContractLabel(); got != want {
			t.Errorf("%s: ContractLabel = %q, want %q", d.Name, got, want)
		}
	}
}
