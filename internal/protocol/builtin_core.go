package protocol

import (
	"fmt"

	"asynccycle/internal/bigsim"
	"asynccycle/internal/check"
	"asynccycle/internal/core"
	"asynccycle/internal/cv"
	"asynccycle/internal/graph"
	"asynccycle/internal/ids"
	"asynccycle/internal/sim"
)

// cycleTopology builds C_n; the shared topology of the paper's algorithms.
func cycleTopology(n int) (graph.Graph, error) { return graph.Cycle(n) }

// cycleIDs is the paper's input precondition on the cycle: non-negative
// identifiers that properly color it (Remark 3.10).
func cycleIDs(xs []int) error {
	if len(xs) < 3 {
		return fmt.Errorf("cycle needs n ≥ 3, got %d", len(xs))
	}
	if !ids.ProperOnCycle(xs) {
		return fmt.Errorf("identifiers must be non-negative and distinct across every cycle edge")
	}
	return nil
}

// fiveValidity is the specification shared by Algorithms 2 and 3: a proper
// coloring of the terminated subgraph with colors in {0..4}, at every
// reachable configuration.
func fiveValidity(g graph.Graph, r sim.Result) error {
	if err := check.ProperColoring(g, r); err != nil {
		return err
	}
	return check.PaletteRange(r, 5)
}

// sixValidity is Algorithm 1's specification, stated degree-generically:
// proper coloring with pair colors (a, b), a+b ≤ Δ. On the cycle Δ = 2,
// giving the paper's 6-color palette; the same machine yields pairs with
// a+b ≤ Δ on any Δ-bounded graph (Appendix A's O(Δ²) interim coloring).
func sixValidity(g graph.Graph, r sim.Result) error {
	if err := check.ProperColoring(g, r); err != nil {
		return err
	}
	return check.PairPalette(r, g.MaxDegree())
}

func fiveChecks(g graph.Graph) []NamedCheck {
	return []NamedCheck{
		{"proper coloring", func(r sim.Result) error { return check.ProperColoring(g, r) }},
		{"palette {0..4}", func(r sim.Result) error { return check.PaletteRange(r, 5) }},
		{"survivors terminated", check.SurvivorsTerminated},
	}
}

func sixChecks(g graph.Graph) []NamedCheck {
	maxDeg := g.MaxDegree()
	return []NamedCheck{
		{"proper coloring", func(r sim.Result) error { return check.ProperColoring(g, r) }},
		{fmt.Sprintf("pair palette a+b≤%d", maxDeg), func(r sim.Result) error { return check.PairPalette(r, maxDeg) }},
		{"survivors terminated", check.SurvivorsTerminated},
	}
}

func registerCore() {
	MustRegisterEngine(EngineSpec[core.PairVal]{
		Meta: Descriptor{
			Name:         "six",
			Aliases:      []string{"pair", "alg1"},
			Problem:      "6-coloring of the cycle",
			Source:       "Algorithm 1 (Thm 3.1)",
			TopologyName: "cycle",
			MinN:         3,
			Palette:      "pairs (a,b), a+b ≤ Δ",
			BoundDesc:    "⌊3n/2⌋+4",
			Expectation:  "wait-free and safe under every schedule",
			Family:       "cycle",
			Topologies:   []string{"path", "complete", "torus", "random"},
			Bound:        func(n int) int { return 3*n/2 + 4 },
			Topology:     cycleTopology,
			ValidateIDs:  cycleIDs,
			FormatOutput: func(c int) string { a, b := core.DecodePair(c); return fmt.Sprintf("(%d,%d)", a, b) },
			Validity:     sixValidity,
			Checks:       sixChecks,
			BigKernel:    bigsim.NewSixKernel,
		},
		New:   core.NewPairNodes,
		Sweep: true,
	})
	MustRegisterEngine(EngineSpec[core.FiveVal]{
		Meta: Descriptor{
			Name:         "five",
			Aliases:      []string{"alg2"},
			Problem:      "5-coloring of the cycle (optimal palette)",
			Source:       "Algorithm 2 (Thm 3.4)",
			TopologyName: "cycle",
			MinN:         3,
			Palette:      "{0..4}",
			BoundDesc:    "3n+8",
			Expectation:  "wait-free and safe under every schedule",
			Family:       "cycle",
			Topologies:   []string{"path"},
			Bound:        func(n int) int { return 3*n + 8 },
			Topology:     cycleTopology,
			ValidateIDs:  cycleIDs,
			Validity:     fiveValidity,
			Checks:       fiveChecks,
			BigKernel:    bigsim.NewFiveKernel,
		},
		New:   core.NewFiveNodes,
		Sweep: true,
	})
	MustRegisterEngine(EngineSpec[core.FastVal]{
		Meta: Descriptor{
			Name:         "fast",
			Aliases:      []string{"alg3"},
			Problem:      "5-coloring of the cycle in O(log* n) rounds",
			Source:       "Algorithm 3 (Thm 4.4)",
			TopologyName: "cycle",
			MinN:         3,
			Palette:      "{0..4}",
			BoundDesc:    "8·(log* n + 4)",
			Expectation:  "wait-free and safe under every schedule",
			Family:       "cycle",
			Topologies:   []string{"path"},
			Bound:        func(n int) int { return 8 * (cv.LogStar(float64(n)) + 4) },
			Topology:     cycleTopology,
			ValidateIDs:  cycleIDs,
			Validity:     fiveValidity,
			Checks:       fiveChecks,
			BigKernel:    bigsim.NewFastKernel,
		},
		New:   core.NewFastNodes,
		Sweep: true,
	})
}
