package protocol_test

import (
	"encoding/json"
	"strings"
	"testing"

	"asynccycle/internal/protocol"
)

// TestInfosMatchRegistry pins the /protocols self-description to the
// registry: one Info per registered descriptor, in registration order,
// with the capability list matching the -list tables' joined string.
func TestInfosMatchRegistry(t *testing.T) {
	infos := protocol.Infos()
	all := protocol.All()
	if len(infos) != len(all) {
		t.Fatalf("Infos() has %d entries, registry %d", len(infos), len(all))
	}
	for i, d := range all {
		in := infos[i]
		if in.Name != d.Name {
			t.Errorf("infos[%d].Name = %q, want %q", i, in.Name, d.Name)
		}
		if got := strings.Join(in.Capabilities, ","); got != d.Capabilities() {
			t.Errorf("%s: capability list %q != joined %q", d.Name, got, d.Capabilities())
		}
		if in.Problem == "" || in.Topology == "" {
			t.Errorf("%s: Info missing required metadata: %+v", d.Name, in)
		}
		if len(in.Modes) == 0 {
			t.Errorf("%s: Info lists no modes", d.Name)
		}
	}
}

// TestInfoJSON pins that the self-description actually serializes — the
// shape the serve layer ships over HTTP.
func TestInfoJSON(t *testing.T) {
	d, err := protocol.Lookup("fast")
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(d.Info())
	if err != nil {
		t.Fatal(err)
	}
	var back protocol.Info
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, data)
	}
	if back.Name != "fast" || len(back.Capabilities) == 0 {
		t.Errorf("round-trip lost fields: %+v", back)
	}
	// The core engine protocols must advertise both semantics and the
	// capability set every tool relies on.
	for _, want := range []string{"run", "check", "fuzz", "big"} {
		found := false
		for _, c := range back.Capabilities {
			if c == want {
				found = true
			}
		}
		if !found {
			t.Errorf("fast: capability %q missing from %v", want, back.Capabilities)
		}
	}
	if len(back.Modes) != 2 {
		t.Errorf("fast: modes = %v, want both semantics", back.Modes)
	}
}
