package protocol

import "asynccycle/internal/sim"

// Info is the JSON-serializable self-description of a registered protocol
// — the registry's metadata plus the derived capability list, without the
// capability closures. The colorserved /protocols endpoint serves it, and
// clients use it to build valid job requests without hard-coding protocol
// names: a job kind is accepted exactly when the matching capability is
// listed.
type Info struct {
	Name        string   `json:"name"`
	Aliases     []string `json:"aliases,omitempty"`
	Problem     string   `json:"problem"`
	Source      string   `json:"source,omitempty"`
	Topology    string   `json:"topology"`
	MinN        int      `json:"min_n"`
	Palette     string   `json:"palette,omitempty"`
	Bound       string   `json:"bound,omitempty"`
	Expectation string   `json:"expectation,omitempty"`
	// Capabilities lists the non-nil capability surfaces ("run", "conc",
	// "check", "worst", "sweep", "fuzz", "big") in the registry's fixed
	// order — the same strings Descriptor.Capabilities joins.
	Capabilities []string `json:"capabilities"`
	// Modes lists the supported activation semantics; a single-entry list
	// marks a native-semantics protocol that ignores mode selection.
	Modes []string `json:"modes"`
	// DefaultCheckDepth is the descriptor's finite exploration horizon for
	// infinite state graphs (0 = the model package default suffices).
	DefaultCheckDepth int `json:"default_check_depth,omitempty"`
}

// Info derives the serializable self-description from the descriptor.
func (d *Descriptor) Info() Info {
	in := Info{
		Name:              d.Name,
		Aliases:           append([]string(nil), d.Aliases...),
		Problem:           d.Problem,
		Source:            d.Source,
		Topology:          d.TopologyName,
		MinN:              d.MinN,
		Palette:           d.Palette,
		Bound:             d.BoundDesc,
		Expectation:       d.Expectation,
		Capabilities:      d.CapabilityList(),
		DefaultCheckDepth: d.DefaultCheckDepth,
	}
	if len(d.Modes) == 0 {
		in.Modes = []string{sim.ModeInterleaved.String()}
	} else {
		for _, m := range d.Modes {
			in.Modes = append(in.Modes, m.String())
		}
	}
	return in
}

// Infos returns the self-descriptions of every registered protocol in
// registration order.
func Infos() []Info {
	all := All()
	out := make([]Info, len(all))
	for i, d := range all {
		out[i] = d.Info()
	}
	return out
}
