package protocol

import (
	"fmt"

	"asynccycle/internal/check"
	"asynccycle/internal/graph"
	"asynccycle/internal/mis"
	"asynccycle/internal/sim"
	"asynccycle/internal/ssb"
)

// ssbValidity checks the snapshot-based-simulation outcome conditions from
// ssb.Check on the terminated processes.
func ssbValidity(g graph.Graph, r sim.Result) error {
	if v := ssb.Check(r.Outputs, r.Done); v != "" {
		return fmt.Errorf("%s", v)
	}
	return nil
}

func ssbChecks(g graph.Graph) []NamedCheck {
	return []NamedCheck{
		{"SSB outcome conditions", func(r sim.Result) error { return ssbValidity(g, r) }},
		{"survivors terminated", check.SurvivorsTerminated},
	}
}

func ssbIDs(xs []int) error {
	if len(xs) < 3 {
		return fmt.Errorf("cycle simulation needs n ≥ 3, got %d", len(xs))
	}
	return distinctIDs(xs)
}

func registerSSB() {
	MustRegisterEngine(EngineSpec[mis.Val]{
		Meta: Descriptor{
			Name:         "ssb-greedy",
			Problem:      "cycle MIS via snapshot-based simulation on K_n",
			Source:       "SSB wrapper over the greedy candidate (§ simulation)",
			TopologyName: "K_n (simulating the cycle)",
			MinN:         3,
			Palette:      "{out=0, in=1}",
			BoundDesc:    "—",
			Expectation:  "safe but NOT wait-free (inherits the greedy livelock)",
			Family:       "complete",
			Topology:     completeTopology,
			ValidateIDs:  ssbIDs,
			Validity:     ssbValidity,
			Checks:       ssbChecks,
		},
		New: func(xs []int) []sim.Node[mis.Val] { return ssb.WrapCycle(mis.NewGreedyNodes(xs)) },
	})
	MustRegisterEngine(EngineSpec[mis.Val]{
		Meta: Descriptor{
			Name:         "ssb-impatient",
			Problem:      "cycle MIS via snapshot-based simulation on K_n",
			Source:       fmt.Sprintf("SSB wrapper over the impatient candidate, patience=%d", misPatience),
			TopologyName: "K_n (simulating the cycle)",
			MinN:         3,
			Palette:      "{out=0, in=1}",
			BoundDesc:    "—",
			Expectation:  "wait-free but UNSAFE (inherits the impatient adjacency violation)",
			Family:       "complete",
			Topology:     completeTopology,
			ValidateIDs:  ssbIDs,
			Validity:     ssbValidity,
			Checks:       ssbChecks,
		},
		New: func(xs []int) []sim.Node[mis.Val] { return ssb.WrapCycle(mis.NewImpatientNodes(xs, misPatience)) },
	})
}
