package protocol

import (
	"fmt"

	"asynccycle/internal/check"
	"asynccycle/internal/graph"
	"asynccycle/internal/ids"
	"asynccycle/internal/mis"
	"asynccycle/internal/sim"
)

// misPatience is the pinned patience of the impatient MIS candidate: the
// number of rounds it waits for lower-identifier neighbors before deciding
// unilaterally. The model checker historically used 2.
const misPatience = 2

// distinctIDs is the global input precondition of the identifier-comparing
// protocols: distinct non-negative identifiers.
func distinctIDs(xs []int) error {
	if !ids.Unique(xs) {
		return fmt.Errorf("identifiers must be distinct and non-negative")
	}
	return nil
}

// misValidity checks the maximal-independent-set conditions on the
// terminated processes.
func misValidity(g graph.Graph, r sim.Result) error {
	if v := mis.ViolatesMIS(g.Edges(), g.N(), r.Outputs, r.Done); v != "" {
		return fmt.Errorf("%s", v)
	}
	return nil
}

func misChecks(g graph.Graph) []NamedCheck {
	return []NamedCheck{
		{"maximal independent set", func(r sim.Result) error { return misValidity(g, r) }},
		{"survivors terminated", check.SurvivorsTerminated},
	}
}

func misIDs(xs []int) error {
	if len(xs) < 3 {
		return fmt.Errorf("cycle needs n ≥ 3, got %d", len(xs))
	}
	return distinctIDs(xs)
}

func registerMIS() {
	MustRegisterEngine(EngineSpec[mis.Val]{
		Meta: Descriptor{
			Name:         "mis-greedy",
			Problem:      "maximal independent set of the cycle",
			Source:       "greedy candidate (§ MIS case study)",
			TopologyName: "cycle",
			MinN:         3,
			Palette:      "{out=0, in=1}",
			BoundDesc:    "—",
			Expectation:  "safe but NOT wait-free: waiting on a crashed lower-id neighbor livelocks",
			Family:       "cycle",
			Topology:     cycleTopology,
			ValidateIDs:  misIDs,
			Validity:     misValidity,
			Checks:       misChecks,
		},
		New: mis.NewGreedyNodes,
	})
	MustRegisterEngine(EngineSpec[mis.Val]{
		Meta: Descriptor{
			Name:         "mis-impatient",
			Problem:      "maximal independent set of the cycle",
			Source:       fmt.Sprintf("impatient candidate, patience=%d (§ MIS case study)", misPatience),
			TopologyName: "cycle",
			MinN:         3,
			Palette:      "{out=0, in=1}",
			BoundDesc:    "patience+3",
			Expectation:  "wait-free but UNSAFE: adjacent processes can both join the set",
			Family:       "cycle",
			Bound:        func(n int) int { return misPatience + 3 },
			Topology:     cycleTopology,
			ValidateIDs:  misIDs,
			Validity:     misValidity,
			Checks:       misChecks,
		},
		New: func(xs []int) []sim.Node[mis.Val] { return mis.NewImpatientNodes(xs, misPatience) },
	})
}
