package protocol

import (
	"fmt"

	"asynccycle/internal/conc"
	"asynccycle/internal/graph"
	"asynccycle/internal/ids"
	"asynccycle/internal/model"
	"asynccycle/internal/runctl"
	"asynccycle/internal/schedule"
	"asynccycle/internal/sim"
	"asynccycle/internal/trace"
)

// EngineSpec describes a protocol implemented as sim.Node state machines
// over the state-model engine. RegisterEngine derives the full capability
// surface (run, trace, conc, check, worst, optional sweep, fuzz instance)
// from the node constructor, so per-protocol registration is metadata plus
// one factory.
type EngineSpec[V any] struct {
	// Meta carries the descriptor metadata; its capability closures must
	// be nil (RegisterEngine fills them).
	Meta Descriptor
	// New builds the node state machines for the given identifiers.
	New func(xs []int) []sim.Node[V]
	// Sweep enables the all-assignments sweep surface. Unreduced sweeps
	// are sound on any topology; symmetry-reduced sweeps additionally
	// require the standard cycle, which internal/model enforces.
	Sweep bool
}

// RegisterEngine derives a full descriptor from an EngineSpec and
// registers it. The derived Run closure reproduces the facade's historical
// execution semantics byte-for-byte: same engine construction order, same
// budget dispatch condition, same step-limit errors.
func RegisterEngine[V any](s EngineSpec[V]) error {
	d := s.Meta
	if s.New == nil {
		return fmt.Errorf("protocol: engine spec %q without a node factory", d.Name)
	}
	if d.Topology == nil {
		return fmt.Errorf("protocol: engine spec %q without a topology", d.Name)
	}
	deriveEngine(&d, s)
	d.retarget = func(b graph.Builder) (*Descriptor, error) { return retargetEngine(s, b) }
	return Register(&d)
}

// deriveEngine fills in the capability closures over d's current Topology;
// the metadata fields must already be final. It is shared between initial
// registration and WithTopology retargeting.
func deriveEngine[V any](d *Descriptor, s EngineSpec[V]) {
	mk := func(xs []int, mode sim.Mode, crashes map[int]int) (*sim.Engine[V], graph.Graph, error) {
		g, err := d.Topology(len(xs))
		if err != nil {
			return nil, graph.Graph{}, err
		}
		e, err := sim.NewEngine(g, s.New(xs))
		if err != nil {
			return nil, graph.Graph{}, err
		}
		e.SetMode(mode)
		for i, k := range crashes {
			if i < 0 || i >= g.N() {
				return nil, graph.Graph{}, fmt.Errorf("crash index %d out of range", i)
			}
			e.CrashAfter(i, k)
		}
		return e, g, nil
	}

	// Engine-backed protocols support both activation semantics unless the
	// spec restricts them (a stabilizing protocol analyzed for a central
	// daemon declares interleaved only).
	if d.Modes == nil {
		d.Modes = []sim.Mode{sim.ModeInterleaved, sim.ModeSimultaneous}
	}

	d.NewInstance = func(xs []int, mode sim.Mode, crashes map[int]int) (sim.Instance, error) {
		e, _, err := mk(xs, mode, crashes)
		if err != nil {
			return nil, err
		}
		return sim.InstanceOf(e), nil
	}

	d.Run = func(xs []int, o RunOptions) (sim.Result, runctl.StopReason, error) {
		e, _, err := mk(xs, o.Mode, o.Crashes)
		if err != nil {
			return sim.Result{}, runctl.StopNone, err
		}
		var rec *trace.Recorder[V]
		if o.TraceText != nil {
			rec = &trace.Recorder[V]{}
			e.AddHook(rec.Hook())
		}
		sched := o.Scheduler
		if sched == nil {
			sched = schedule.Synchronous{}
		}
		if o.budgeted() {
			b := o.Budget
			b.MaxSteps = runctl.Min(o.MaxSteps, b.MaxSteps)
			res, reason := e.RunBudget(o.Context, sched, b)
			if reason == runctl.StopNone && rec != nil {
				if err := rec.WriteText(o.TraceText); err != nil {
					return res, reason, err
				}
			}
			return res, reason, nil
		}
		res, err := e.Run(sched, o.MaxSteps)
		if err != nil {
			return res, runctl.StopNone, err
		}
		if rec != nil {
			if err := rec.WriteText(o.TraceText); err != nil {
				return res, runctl.StopNone, err
			}
		}
		return res, runctl.StopNone, nil
	}

	d.RunConc = func(xs []int, o conc.Options) (sim.Result, error) {
		g, err := d.Topology(len(xs))
		if err != nil {
			return sim.Result{}, err
		}
		return conc.Run(g, s.New(xs), o)
	}

	invariant := func(g graph.Graph) model.Invariant[V] {
		v := d.Validity
		if v == nil && d.Contract != nil {
			// Contract-first spec evaluated before Register completed the
			// legacy surface: the contract's labeled Safety is the invariant.
			v = d.Contract.Safety
		}
		if v == nil {
			return nil
		}
		return func(e *sim.Engine[V]) error { return v(g, e.Result()) }
	}

	d.Check = func(xs []int, mode sim.Mode, opt model.Options) (model.Report, error) {
		e, g, err := mk(xs, mode, nil)
		if err != nil {
			return model.Report{}, err
		}
		return model.Explore(e, opt, invariant(g)), nil
	}

	d.Worst = func(xs []int, mode sim.Mode, opt model.Options) ([]int, bool, model.Report, error) {
		e, _, err := mk(xs, mode, nil)
		if err != nil {
			return nil, false, model.Report{}, err
		}
		worst, ok, rep := model.WorstActivations(e, opt)
		return worst, ok, rep, nil
	}

	if s.Sweep {
		mkN := func(mode sim.Mode) func(xs []int) (*sim.Engine[V], error) {
			return func(xs []int) (*sim.Engine[V], error) {
				e, _, err := mk(xs, mode, nil)
				return e, err
			}
		}
		d.Sweep = func(n int, mode sim.Mode, opt model.Options) (model.SweepReport, error) {
			g, err := d.Topology(n)
			if err != nil {
				return model.SweepReport{}, err
			}
			return model.SweepExplore(n, mkN(mode), opt, invariant(g))
		}
		d.SweepWorst = func(n int, mode sim.Mode, opt model.Options) (model.SweepReport, error) {
			return model.SweepWorstActivations(n, mkN(mode), opt)
		}
	}
}

// retargetEngine rebuilds the spec's descriptor over a different topology
// builder. The returned copy is NOT registered: it is a per-call view for
// the dispatch site that asked for it.
func retargetEngine[V any](s EngineSpec[V], b graph.Builder) (*Descriptor, error) {
	d := s.Meta
	sameFamily := b.Family == d.Family
	d.TopologyName = b.Spec
	d.Topology = b.Build
	if b.MinN > d.MinN {
		d.MinN = b.MinN
	}
	if b.FixN != nil {
		native := d.FixN
		d.FixN = func(n int) int {
			if native != nil {
				n = native(n)
			}
			return b.FixN(n)
		}
	}
	if !sameFamily {
		// The wait-freedom bound, the verified expectation, and the
		// identifier precondition are all statements about the native
		// family. Off-family instances keep only distinctness, and every
		// liveness oracle (the fuzzer's bound leg, -worst round caps)
		// gates on the cleared Bound.
		d.Bound = nil
		d.BoundDesc = ""
		d.Expectation = ""
		minN := d.MinN
		spec := b.Spec
		d.ValidateIDs = func(xs []int) error {
			if len(xs) < minN {
				return fmt.Errorf("topology %s needs n ≥ %d, got %d", spec, minN, len(xs))
			}
			if !ids.Unique(xs) {
				return fmt.Errorf("identifiers must be distinct and non-negative")
			}
			return nil
		}
	}
	if b.Family != "cycle" || b.Shuffled {
		// bigsim kernels index the ring directly (i±1 mod n); any other
		// adjacency — including a shuffled cycle's reordered neighbor
		// reads — would silently compute garbage (see CheckBigTopology).
		d.BigKernel = nil
	}
	deriveEngine(&d, s)
	// Retargeted copies bypass Register: complete the property layer here
	// so WithTopology views expose the same Contract/Validity pair as the
	// registered original.
	completeContract(&d)
	d.retarget = func(b graph.Builder) (*Descriptor, error) { return retargetEngine(s, b) }
	return &d, nil
}

// MustRegisterEngine is RegisterEngine, panicking on error.
func MustRegisterEngine[V any](s EngineSpec[V]) {
	if err := RegisterEngine(s); err != nil {
		panic(err)
	}
}
