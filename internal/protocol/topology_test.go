package protocol

import (
	"errors"
	"testing"

	"asynccycle/internal/graph"
	"asynccycle/internal/ids"
	"asynccycle/internal/schedule"
)

func TestWithTopologyNativeNoOp(t *testing.T) {
	for _, name := range []string{"six", "dp1", "five", "fast", "mis-greedy"} {
		d, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, spec := range []string{"", "cycle"} {
			dd, err := WithTopology(d, spec)
			if err != nil {
				t.Fatalf("%s %q: %v", name, spec, err)
			}
			if dd != d {
				t.Errorf("%s %q: expected the registered descriptor itself", name, spec)
			}
		}
	}
	d, err := Lookup("renaming")
	if err != nil {
		t.Fatal(err)
	}
	if dd, err := WithTopology(d, "complete"); err != nil || dd != d {
		t.Errorf("renaming complete: (%v, %v), want the registered descriptor", dd, err)
	}
}

func TestWithTopologyRetargetClearsCycleSurfaces(t *testing.T) {
	d, err := Lookup("six")
	if err != nil {
		t.Fatal(err)
	}
	dd, err := WithTopology(d, "torus")
	if err != nil {
		t.Fatal(err)
	}
	if dd == d {
		t.Fatal("retarget returned the registered descriptor")
	}
	if dd.TopologyName != "torus" {
		t.Errorf("TopologyName = %q", dd.TopologyName)
	}
	if dd.Bound != nil || dd.BoundDesc != "" {
		t.Error("cycle wait-freedom bound survived an off-family retarget")
	}
	if dd.BigKernel != nil {
		t.Error("ring-indexed BigKernel survived an off-family retarget")
	}
	if dd.MinN != 9 {
		t.Errorf("MinN = %d, want the torus family minimum 9", dd.MinN)
	}
	if dd.FixN == nil || dd.FixN(10) != 12 {
		t.Error("retarget did not adopt the torus FixN")
	}
	// The cycle precondition (proper-on-cycle ids) is replaced by plain
	// distinctness: [0,1,0,...] properly colors C_12 but repeats ids.
	repeating := make([]int, 12)
	for i := range repeating {
		repeating[i] = i % 2
	}
	if err := dd.ValidateIDs(repeating); err == nil {
		t.Error("off-family ValidateIDs accepted repeated identifiers")
	}
	if err := dd.ValidateIDs(ids.MustGenerate(ids.Increasing, 12, 0)); err != nil {
		t.Errorf("off-family ValidateIDs rejected distinct identifiers: %v", err)
	}
	// The registry itself is untouched.
	again, err := Lookup("six")
	if err != nil {
		t.Fatal(err)
	}
	if again.TopologyName != "cycle" || again.BigKernel == nil || again.Bound == nil {
		t.Error("retargeting mutated the registered descriptor")
	}
	// The retargeted copy is fully functional: run on T3x4 and verify.
	g, err := dd.Topology(12)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "T3x4" {
		t.Fatalf("Topology(12) = %s", g.Name())
	}
	res, _, err := dd.Run(ids.MustGenerate(ids.Random, 12, 3), RunOptions{
		Scheduler: schedule.NewRoundRobin(2),
		Crashes:   map[int]int{5: 1},
		MaxSteps:  20000,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range dd.Checks(g) {
		if err := c.Check(res); err != nil {
			t.Errorf("six on torus: %s: %v", c.Name, err)
		}
	}
}

func TestWithTopologyShuffledCycleKeepsBoundDropsBig(t *testing.T) {
	d, err := Lookup("six")
	if err != nil {
		t.Fatal(err)
	}
	dd, err := WithTopology(d, "cycle+shuffled:3")
	if err != nil {
		t.Fatal(err)
	}
	if dd == d {
		t.Fatal("shuffled cycle must retarget (bigsim assumes canonical neighbor order)")
	}
	if dd.Bound == nil {
		t.Error("same-family shuffle cleared the wait-freedom bound (adjacency is unchanged)")
	}
	if dd.BigKernel != nil {
		t.Error("BigKernel survived a shuffled-neighbor retarget")
	}
}

func TestWithTopologyRefusals(t *testing.T) {
	cases := []struct{ alg, spec string }{
		{"five", "complete"},   // palette-5 argument needs Δ ≤ 2
		{"fast", "torus"},      // CV reduction needs degree ≤ 2
		{"mis-greedy", "path"}, // cycle MIS only
		{"renaming", "cycle"},  // complete-graph task
		{"decoupled-three", "torus"},
		{"local-cv", "complete"},
	}
	for _, c := range cases {
		d, err := Lookup(c.alg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := WithTopology(d, c.spec); !errors.Is(err, ErrTopology) {
			t.Errorf("WithTopology(%s, %q) = %v, want ErrTopology", c.alg, c.spec, err)
		}
	}
	d, err := Lookup("six")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := WithTopology(d, "mobius"); !errors.Is(err, graph.ErrUnknownTopology) {
		t.Errorf("unknown spec: %v, want graph.ErrUnknownTopology", err)
	}
}

func TestCheckBigTopology(t *testing.T) {
	for _, spec := range []string{"", "cycle"} {
		if err := CheckBigTopology(spec); err != nil {
			t.Errorf("CheckBigTopology(%q) = %v, want nil", spec, err)
		}
	}
	for _, spec := range []string{"torus", "path", "complete", "random:4:1", "cycle+shuffled:2"} {
		if err := CheckBigTopology(spec); !errors.Is(err, ErrBigTopology) {
			t.Errorf("CheckBigTopology(%q) = %v, want ErrBigTopology", spec, err)
		}
	}
	if err := CheckBigTopology("mobius"); !errors.Is(err, graph.ErrUnknownTopology) {
		t.Errorf("CheckBigTopology(mobius) = %v, want graph.ErrUnknownTopology", err)
	}
}
