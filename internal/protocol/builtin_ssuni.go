package protocol

import (
	"errors"
	"fmt"
	"math/rand"

	"asynccycle/internal/contract"
	"asynccycle/internal/graph"
	"asynccycle/internal/model"
	"asynccycle/internal/runctl"
	"asynccycle/internal/schedule"
	"asynccycle/internal/sim"
	"asynccycle/internal/ssuni"
	"asynccycle/internal/trace"
)

// ssuniContract is the stabilizing correctness contract: the published
// colors properly color the ring within the 3-color palette, checked as
// an invariant on the legal suffix (not at termination — nothing ever
// terminates), with closure+convergence liveness and a crash-free
// convergence horizon for the trace-level oracles.
func ssuniContract() *contract.Stabilizing {
	return &contract.Stabilizing{
		Name: "ss-coloring",
		Props: []contract.Property{
			{Name: "proper-ring", Check: ssuni.ProperRing},
			{Name: "palette", Check: ssuni.PaletteRange},
		},
		ConvergenceBound: ssuni.ConvergenceBound,
	}
}

// registerSSUni hand-wires the self-stabilizing descriptor: the generic
// engine derivation assumes terminating runs (step exhaustion is an
// error, Check explores for terminal verdicts), while a stabilizing run
// ends when its step budget does and is checked for closure+convergence
// instead. Identifiers double as initial colors (id mod 3), so any id
// vector denotes an arbitrary — possibly corrupted — initial state.
func registerSSUni() {
	ct := ssuniContract()

	mk := func(xs []int, mode sim.Mode, crashes map[int]int) (*sim.Engine[int], error) {
		e, err := ssuni.NewEngine(xs)
		if err != nil {
			return nil, err
		}
		e.SetMode(mode)
		for i, k := range crashes {
			if i < 0 || i >= e.N() {
				return nil, fmt.Errorf("crash index %d out of range", i)
			}
			e.CrashAfter(i, k)
		}
		return e, nil
	}

	// stabReport folds a stabilization verdict into the generic checker
	// report shape: closure violations and a livelock witness become
	// contract-labeled violation messages, a livelock marks CycleFound.
	stabReport := func(sr model.StabReport) model.Report {
		rep := sr.Explore
		for _, v := range sr.ClosureViolations {
			rep.Violations = append(rep.Violations, contract.Violation(ct.Name, "closure", errors.New(v)).Error())
		}
		if sr.LivelockWitness != "" {
			rep.Violations = append(rep.Violations, contract.Violation(ct.Name, "convergence", errors.New(sr.LivelockWitness)).Error())
		}
		return rep
	}

	d := &Descriptor{
		Name:         "ssuni",
		Aliases:      []string{"sscolor"},
		Problem:      "self-stabilizing 3-coloring of the unidirectional cycle (ids = initial colors mod 3)",
		Source:       "Bernard–Devismes–Potop-Butucaru–Tixeuil (arXiv:0805.0851)",
		TopologyName: "cycle",
		MinN:         3,
		Palette:      "{0,1,2}",
		BoundDesc:    "conv ≤ n(4n+16)",
		Expectation:  "closure + convergence from every initial state (certified C3–C5, E24)",
		Family:       "cycle",
		Topology:     cycleTopology,
		ValidateIDs: func(xs []int) error {
			if len(xs) < 3 {
				return fmt.Errorf("cycle needs n ≥ 3, got %d", len(xs))
			}
			return nil
		},
		Contract: ct,
		Checks: func(g graph.Graph) []NamedCheck {
			return []NamedCheck{
				{"proper ring (registers)", func(r sim.Result) error { return ssuni.ProperRing(g, r) }},
				{"palette {0,1,2}", func(r sim.Result) error { return ssuni.PaletteRange(g, r) }},
			}
		},
		// The stabilization analysis is for the central daemon; the
		// interleaved mode realizes it (DESIGN.md §15).
		Modes: []sim.Mode{sim.ModeInterleaved},
		FuzzIDs: func(rng *rand.Rand, n int) []int {
			xs := make([]int, n)
			for i := range xs {
				xs[i] = rng.Intn(ssuni.K)
			}
			return xs
		},

		NewInstance: func(xs []int, mode sim.Mode, crashes map[int]int) (sim.Instance, error) {
			e, err := mk(xs, mode, crashes)
			if err != nil {
				return nil, err
			}
			return sim.InstanceOf(e), nil
		},

		// Run executes the step budget and stops: a stabilizing protocol
		// has no terminal configuration, so exhausting MaxSteps is the
		// run's natural end, not an error.
		Run: func(xs []int, o RunOptions) (sim.Result, runctl.StopReason, error) {
			e, err := mk(xs, o.Mode, o.Crashes)
			if err != nil {
				return sim.Result{}, runctl.StopNone, err
			}
			var rec *trace.Recorder[int]
			if o.TraceText != nil {
				rec = &trace.Recorder[int]{}
				e.AddHook(rec.Hook())
			}
			sched := o.Scheduler
			if sched == nil {
				sched = schedule.Synchronous{}
			}
			b := o.Budget
			b.MaxSteps = runctl.Min(o.MaxSteps, b.MaxSteps)
			res, reason := e.RunBudget(o.Context, sched, b)
			if reason == runctl.StopMaxSteps {
				reason = runctl.StopNone
			}
			if reason == runctl.StopNone && rec != nil {
				if err := rec.WriteText(o.TraceText); err != nil {
					return res, reason, err
				}
			}
			return res, reason, nil
		},

		// Check certifies stabilization from the given initial state:
		// exhaustive closure + fair-convergence analysis over the
		// reachable configuration graph.
		Check: func(xs []int, mode sim.Mode, opt model.Options) (model.Report, error) {
			e, err := mk(xs, mode, nil)
			if err != nil {
				return model.Report{}, err
			}
			return stabReport(model.CheckStabilization(e, opt, ssuni.Legal)), nil
		},

		// Sweep certifies stabilization from ALL 3^n initial states — the
		// stabilizing analogue of the identifier-assignment sweep.
		Sweep: func(n int, mode sim.Mode, opt model.Options) (model.SweepReport, error) {
			if n < 3 {
				return model.SweepReport{}, fmt.Errorf("cycle needs n ≥ 3, got %d", n)
			}
			ck := runctl.NewChecker(opt.Context, opt.Budget.Timeout)
			rep := model.SweepReport{N: n, AllOk: true}
			colors := make([]int, n)
			for {
				if reason, stop := ck.CheckNow(); stop {
					rep.Partial = true
					rep.AllOk = false
					if rep.StopReason == runctl.StopNone {
						rep.StopReason = reason
					}
					break
				}
				e, err := mk(colors, mode, nil)
				if err != nil {
					return model.SweepReport{}, err
				}
				sr := model.CheckStabilization(e, opt, ssuni.Legal)
				run := stabReport(sr)
				rep.Assignments++
				rep.Runs++
				rep.States += int64(run.States)
				rep.Violations += int64(len(run.Violations))
				rep.HashCollisions += run.HashCollisions
				if run.CycleFound {
					rep.CycleRuns++
				}
				if !sr.OK() {
					rep.AllOk = false
				}
				// Next color vector in [0,K)^n, lexicographic.
				i := 0
				for ; i < n; i++ {
					colors[i]++
					if colors[i] < ssuni.K {
						break
					}
					colors[i] = 0
				}
				if i == n {
					break
				}
			}
			return rep, nil
		},
	}
	MustRegister(d)
}
