package protocol

// The builtin protocols register in one fixed order — it is the order the
// -list tables print and tests pin, independent of source-file names.
func init() {
	registerCore()
	registerDP1()
	registerMIS()
	registerRenaming()
	registerSSB()
	registerDecoupled()
	registerLocale()
	registerAgree()
	registerSSUni()
}
