package protocol

// Registry-completeness guard: every internal package that defines sim.Node
// state machines must be represented in the registry, and every registered
// protocol must trace back to such a package. The test scans the source
// tree, so adding a new algorithm package without registering a descriptor
// (or registering one from thin air) fails here with instructions.

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// nodePackages maps each internal package exposing a sim.Node constructor
// to the canonical names of the protocols it backs. A package listed with
// no protocols is a deliberate exception and needs a reason.
var nodePackages = map[string][]string{
	"core":      {"six", "five", "fast"},
	"dp1":       {"dp1"},
	"mis":       {"mis-greedy", "mis-impatient"},
	"renaming":  {"renaming"},
	"ssb":       {"ssb-greedy", "ssb-impatient"},
	"decoupled": {"decoupled-three"},
	"agree":     {"agree-p3", "agree-p4", "agree-c4"},
	"ssuni":     {"ssuni"},
	// locale has no sim.Node machines (it is a direct synchronous
	// computation) but registers local-cv through a custom Run closure.
	// ablation's node variants are deliberately broken copies of Algorithm
	// 3 for experiment E17 — they exist to fail verification, so they are
	// not protocols and stay out of the registry.
	"ablation": {},
}

// extraProtocols are registered protocols not backed by a node-constructor
// package found by the scan.
var extraProtocols = map[string]string{
	"local-cv": "internal/locale, synchronous baseline without sim.Node machines",
}

// The scan matches slice-of-process constructors in both state models:
// []sim.Node[V] factories and wrappers (core, mis, renaming, ssb) and the
// DECOUPLED model's []Proc[V] factories.
var nodeCtorRe = regexp.MustCompile(`func (New|Wrap)\w*(\[[^\]]*\])?\([^)]*\) \[\](sim\.Node|Proc)\[`)

func TestRegistryCoversEveryNodePackage(t *testing.T) {
	root := filepath.Join("..", "..")
	entries, err := os.ReadDir(filepath.Join(root, "internal"))
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		pkg := e.Name()
		files, err := filepath.Glob(filepath.Join(root, "internal", pkg, "*.go"))
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range files {
			if strings.HasSuffix(f, "_test.go") {
				continue
			}
			src, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			if nodeCtorRe.Match(src) {
				found[pkg] = true
				break
			}
		}
	}
	if len(found) == 0 {
		t.Fatal("source scan found no sim.Node constructors at all — scan broken")
	}

	registered := map[string]bool{}
	for _, name := range Names() {
		registered[name] = true
	}
	for pkg := range found {
		protos, ok := nodePackages[pkg]
		if !ok {
			t.Errorf("internal/%s defines sim.Node constructors but is not in nodePackages: register its protocols in internal/protocol and list them here", pkg)
			continue
		}
		for _, p := range protos {
			if !registered[p] {
				t.Errorf("nodePackages maps internal/%s to %q, which is not registered", pkg, p)
			}
		}
	}
	for pkg := range nodePackages {
		if !found[pkg] {
			t.Errorf("nodePackages lists internal/%s but the scan found no sim.Node constructor there — stale entry?", pkg)
		}
	}

	// The reverse direction: every registered protocol is accounted for.
	accounted := map[string]bool{}
	for _, protos := range nodePackages {
		for _, p := range protos {
			accounted[p] = true
		}
	}
	for p := range extraProtocols {
		accounted[p] = true
	}
	for _, name := range Names() {
		if !accounted[name] {
			t.Errorf("registered protocol %q is not mapped to any node package (or extraProtocols)", name)
		}
	}
}
