package protocol

// The registry adds one interface indirection (sim.Instance) between the
// generic drivers and the typed engines. This pin proves the indirection
// is free on the hot path: a warm Step through a descriptor-built instance
// allocates nothing, for every engine-backed protocol.

import (
	"testing"

	"asynccycle/internal/ids"
	"asynccycle/internal/sim"
)

func TestInstanceStepZeroAllocs(t *testing.T) {
	const n = 64
	for _, alg := range []string{"six", "five", "fast", "mis-greedy", "mis-impatient", "ssb-greedy"} {
		t.Run(alg, func(t *testing.T) {
			d, err := Lookup(alg)
			if err != nil {
				t.Fatal(err)
			}
			xs := ids.MustGenerate(ids.Random, n, 5)
			inst, err := d.NewInstance(xs, sim.ModeInterleaved, nil)
			if err != nil {
				t.Fatal(err)
			}
			inst.Step([]int{0, 1, 2}) // warm the engine's scratch buffers
			subset := make([]int, 1)
			step := 0
			if a := testing.AllocsPerRun(200, func() {
				subset[0] = step % n
				inst.Step(subset)
				step++
			}); a != 0 {
				t.Errorf("warm Step through the registry instance allocates %v/op, want 0", a)
			}
			if a := testing.AllocsPerRun(200, func() { inst.FingerprintHash128() }); a != 0 {
				t.Errorf("FingerprintHash128 through the registry instance allocates %v/op, want 0", a)
			}
		})
	}
}

// TestRenamingInstanceStepAllocsNoOverhead: renaming's Observe allocates 3
// objects per round in its own right (measured on the direct engine), so a
// zero pin is impossible — instead pin that the registry indirection adds
// nothing on top.
func TestRenamingInstanceStepAllocsNoOverhead(t *testing.T) {
	const n = 64
	d, err := Lookup("renaming")
	if err != nil {
		t.Fatal(err)
	}
	xs := ids.MustGenerate(ids.Random, n, 5)
	inst, err := d.NewInstance(xs, sim.ModeInterleaved, nil)
	if err != nil {
		t.Fatal(err)
	}
	inst.Step([]int{0, 1, 2})
	subset := make([]int, 1)
	step := 0
	if a := testing.AllocsPerRun(200, func() {
		subset[0] = step % n
		inst.Step(subset)
		step++
	}); a > 3 {
		t.Errorf("warm renaming Step through the registry allocates %v/op, want ≤ 3 (the node's own)", a)
	}
}
