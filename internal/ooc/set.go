// Package ooc provides the out-of-core primitives behind resumable
// exhaustive model checking: a disk-spilled set of 128-bit state
// fingerprints (Set) and a checksummed, atomically-rotated sweep
// checkpoint file (Checkpoint).
//
// The Set is the classic external-memory visited table of explicit-state
// checkers: a bounded in-RAM delta hash table in front of immutable sorted
// runs on disk. Membership checks consult the delta first, then each run
// through a per-run bloom filter, a sparse page index, and a single 4 KiB
// ReadAt — so a fresh state costs one hash probe plus k bloom probes per
// run, and a duplicate costs at most one page read. When the delta reaches
// its memory limit it is sorted and sealed into a new run; when runs pile
// up they are merged into one by a streaming multiway merge, keeping
// lookup cost bounded. Records are exactly the two 64-bit fingerprint
// lanes of internal/model's compact stateKey, so spilling costs 16 bytes
// per state, and set identity matches the in-RAM tables' 128-bit identity.
package ooc

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"slices"
)

// Key is one 128-bit state fingerprint: the two hash lanes of
// sim.FingerprintHash128, compared lexicographically (h1 first).
type Key struct{ H1, H2 uint64 }

func keyLess(a, b Key) int {
	if a.H1 != b.H1 {
		if a.H1 < b.H1 {
			return -1
		}
		return 1
	}
	if a.H2 != b.H2 {
		if a.H2 < b.H2 {
			return -1
		}
		return 1
	}
	return 0
}

const (
	recordSize     = 16  // bytes per fingerprint on disk
	recordsPerPage = 256 // 4 KiB pages; one ReadAt per probe that passes the bloom
	// maxRuns bounds the number of live sorted runs; exceeding it triggers
	// a full merge so lookup cost stays O(maxRuns) bloom probes.
	maxRuns = 8
	// bloomBitsPerKey sizes each run's bloom filter (~1% false positives
	// at 10 bits/key with 4 probes).
	bloomBitsPerKey = 10
	bloomProbes     = 4
)

// DefaultMemLimit is the delta-table bound used when a caller passes a
// non-positive limit: ~4M resident fingerprints (on the order of 200 MiB
// of map-backed RAM) before the first spill.
const DefaultMemLimit = 4_000_000

// Set is a disk-spilled insert-only set of 128-bit fingerprints. Not safe
// for concurrent use; the model checker gives each worker its own Set.
type Set struct {
	dir   string
	limit int
	delta map[Key]struct{}
	runs  []*runFile
	n     int64
	seq   int

	// stats
	spilled     int64 // records sealed into runs (cumulative, pre-merge)
	compactions int
	pageReads   int64
}

// Stats reports a Set's out-of-core activity for logs and experiments.
type Stats struct {
	Resident    int   // fingerprints in the in-RAM delta
	Runs        int   // live sorted runs on disk
	SpilledKeys int64 // fingerprints sealed to disk (cumulative)
	Compactions int   // multiway merges performed
	PageReads   int64 // 4 KiB probe reads served from disk
}

// runFile is one immutable sorted run: raw 16-byte records, plus an
// in-RAM sparse index (first key of every page) and a bloom filter.
type runFile struct {
	f     *os.File
	path  string
	count int
	index []Key    // index[i] = first key of page i
	bloom []uint64 // bit set, power-of-two length
}

// NewSet creates a spilled set storing its runs under dir (which must
// exist). memLimit bounds the in-RAM delta (non-positive selects
// DefaultMemLimit). The caller owns dir's lifecycle; Close removes only
// the run files the Set created.
func NewSet(dir string, memLimit int) (*Set, error) {
	if memLimit <= 0 {
		memLimit = DefaultMemLimit
	}
	if st, err := os.Stat(dir); err != nil {
		return nil, fmt.Errorf("ooc: spill dir: %w", err)
	} else if !st.IsDir() {
		return nil, fmt.Errorf("ooc: spill dir %s: not a directory", dir)
	}
	return &Set{dir: dir, limit: memLimit, delta: make(map[Key]struct{})}, nil
}

// Add inserts the fingerprint if absent and reports whether it was newly
// added. An I/O error leaves the set usable for Close but with undefined
// membership; callers must stop exploring.
func (s *Set) Add(h1, h2 uint64) (bool, error) {
	k := Key{h1, h2}
	if _, ok := s.delta[k]; ok {
		return false, nil
	}
	for _, r := range s.runs {
		hit, err := s.runContains(r, k)
		if err != nil {
			return false, err
		}
		if hit {
			return false, nil
		}
	}
	s.delta[k] = struct{}{}
	s.n++
	if len(s.delta) >= s.limit {
		if err := s.flush(); err != nil {
			return false, err
		}
	}
	return true, nil
}

// Len returns the number of distinct fingerprints in the set.
func (s *Set) Len() int64 { return s.n }

// Stats returns a snapshot of the set's spill activity.
func (s *Set) Stats() Stats {
	return Stats{
		Resident:    len(s.delta),
		Runs:        len(s.runs),
		SpilledKeys: s.spilled,
		Compactions: s.compactions,
		PageReads:   s.pageReads,
	}
}

// Close releases file handles and removes the set's run files.
func (s *Set) Close() error {
	var first error
	for _, r := range s.runs {
		if err := r.f.Close(); err != nil && first == nil {
			first = err
		}
		if err := os.Remove(r.path); err != nil && first == nil {
			first = err
		}
	}
	s.runs = nil
	s.delta = nil
	return first
}

// flush seals the delta into a new sorted run, then merges all runs into
// one when too many have accumulated.
func (s *Set) flush() error {
	if len(s.delta) == 0 {
		return nil
	}
	keys := make([]Key, 0, len(s.delta))
	for k := range s.delta {
		keys = append(keys, k)
	}
	slices.SortFunc(keys, keyLess)
	r, err := s.writeRun(func(yield func(Key) error) error {
		for _, k := range keys {
			if err := yield(k); err != nil {
				return err
			}
		}
		return nil
	}, len(keys))
	if err != nil {
		return err
	}
	s.runs = append(s.runs, r)
	s.spilled += int64(len(keys))
	s.delta = make(map[Key]struct{})
	if len(s.runs) > maxRuns {
		return s.compact()
	}
	return nil
}

// writeRun streams count sorted keys from src into a new immutable run,
// building the page index and bloom filter along the way.
func (s *Set) writeRun(src func(yield func(Key) error) error, count int) (*runFile, error) {
	s.seq++
	path := filepath.Join(s.dir, fmt.Sprintf("run-%06d.fps", s.seq))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ooc: create run: %w", err)
	}
	r := &runFile{
		f:     f,
		path:  path,
		index: make([]Key, 0, count/recordsPerPage+1),
		bloom: make([]uint64, bloomWords(count)),
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	var rec [recordSize]byte
	i := 0
	err = src(func(k Key) error {
		if i%recordsPerPage == 0 {
			r.index = append(r.index, k)
		}
		bloomSet(r.bloom, k)
		binary.LittleEndian.PutUint64(rec[0:8], k.H1)
		binary.LittleEndian.PutUint64(rec[8:16], k.H2)
		i++
		_, werr := bw.Write(rec[:])
		return werr
	})
	if err == nil {
		err = bw.Flush()
	}
	if err != nil {
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("ooc: write run: %w", err)
	}
	r.count = i
	return r, nil
}

// runContains probes one run for k: bloom filter, sparse index, then a
// single page read and binary search.
func (s *Set) runContains(r *runFile, k Key) (bool, error) {
	if !bloomHas(r.bloom, k) {
		return false, nil
	}
	// Find the last page whose first key is <= k.
	lo, hi := 0, len(r.index)
	for lo < hi {
		mid := (lo + hi) / 2
		if keyLess(r.index[mid], k) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	page := lo - 1
	if page < 0 {
		return false, nil
	}
	start := page * recordsPerPage
	n := r.count - start
	if n > recordsPerPage {
		n = recordsPerPage
	}
	buf := make([]byte, n*recordSize)
	if _, err := r.f.ReadAt(buf, int64(start)*recordSize); err != nil {
		return false, fmt.Errorf("ooc: read run page: %w", err)
	}
	s.pageReads++
	lo, hi = 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		mk := Key{
			H1: binary.LittleEndian.Uint64(buf[mid*recordSize:]),
			H2: binary.LittleEndian.Uint64(buf[mid*recordSize+8:]),
		}
		switch keyLess(mk, k) {
		case -1:
			lo = mid + 1
		case 1:
			hi = mid
		default:
			return true, nil
		}
	}
	return false, nil
}

// compact merges every live run into one by a streaming multiway merge.
// Runs never share keys (Add dedups against all runs before inserting),
// so the merge is a pure interleave.
func (s *Set) compact() error {
	total := 0
	readers := make([]*runReader, len(s.runs))
	for i, r := range s.runs {
		total += r.count
		rd, err := newRunReader(r)
		if err != nil {
			return err
		}
		readers[i] = rd
	}
	merged, err := s.writeRun(func(yield func(Key) error) error {
		for {
			best := -1
			for i, rd := range readers {
				if !rd.ok {
					continue
				}
				if best == -1 || keyLess(rd.cur, readers[best].cur) < 0 {
					best = i
				}
			}
			if best == -1 {
				return nil
			}
			if err := yield(readers[best].cur); err != nil {
				return err
			}
			if err := readers[best].next(); err != nil {
				return err
			}
		}
	}, total)
	if err != nil {
		return err
	}
	old := s.runs
	s.runs = []*runFile{merged}
	s.compactions++
	var first error
	for _, r := range old {
		if err := r.f.Close(); err != nil && first == nil {
			first = err
		}
		if err := os.Remove(r.path); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// runReader streams one run's records in order during compaction.
type runReader struct {
	br  *bufio.Reader
	cur Key
	ok  bool
}

func newRunReader(r *runFile) (*runReader, error) {
	if _, err := r.f.Seek(0, 0); err != nil {
		return nil, fmt.Errorf("ooc: rewind run: %w", err)
	}
	rd := &runReader{br: bufio.NewReaderSize(r.f, 1<<16)}
	return rd, rd.next()
}

func (rd *runReader) next() error {
	var rec [recordSize]byte
	if _, err := io.ReadFull(rd.br, rec[:]); err != nil {
		rd.ok = false
		if err == io.EOF {
			return nil
		}
		return fmt.Errorf("ooc: read run: %w", err)
	}
	rd.cur = Key{
		H1: binary.LittleEndian.Uint64(rec[0:8]),
		H2: binary.LittleEndian.Uint64(rec[8:16]),
	}
	rd.ok = true
	return nil
}

// bloomWords sizes a filter at bloomBitsPerKey bits per key, rounded up
// to a power of two of 64-bit words (min 1).
func bloomWords(count int) int {
	bits := count * bloomBitsPerKey
	words := 1
	for words*64 < bits {
		words *= 2
	}
	return words
}

// bloomProbe derives the i-th probe position (Kirsch–Mitzenmacher: two
// independent lanes combined linearly give k independent-enough probes).
func bloomProbe(k Key, i int) uint64 {
	return k.H1 + uint64(i)*(k.H2|1)
}

func bloomSet(bloom []uint64, k Key) {
	mask := uint64(len(bloom)*64 - 1)
	for i := 0; i < bloomProbes; i++ {
		b := bloomProbe(k, i) & mask
		bloom[b/64] |= 1 << (b % 64)
	}
}

func bloomHas(bloom []uint64, k Key) bool {
	mask := uint64(len(bloom)*64 - 1)
	for i := 0; i < bloomProbes; i++ {
		b := bloomProbe(k, i) & mask
		if bloom[b/64]&(1<<(b%64)) == 0 {
			return false
		}
	}
	return true
}
