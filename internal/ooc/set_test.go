package ooc

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// A spilled set must agree with a plain map under any insertion sequence,
// across flush and compaction boundaries.
func TestSetMatchesMapOracle(t *testing.T) {
	for _, limit := range []int{1, 7, 64, 100000} {
		rng := rand.New(rand.NewSource(int64(limit)))
		s, err := NewSet(t.TempDir(), limit)
		if err != nil {
			t.Fatal(err)
		}
		oracle := make(map[Key]struct{})
		const ops = 5000
		for i := 0; i < ops; i++ {
			// Small key space forces plenty of duplicate Adds.
			k := Key{H1: uint64(rng.Intn(700)), H2: uint64(rng.Intn(5))}
			_, dup := oracle[k]
			oracle[k] = struct{}{}
			added, err := s.Add(k.H1, k.H2)
			if err != nil {
				t.Fatalf("limit=%d op=%d: %v", limit, i, err)
			}
			if added == dup {
				t.Fatalf("limit=%d op=%d key=%v: added=%t but oracle dup=%t", limit, i, k, added, dup)
			}
			if s.Len() != int64(len(oracle)) {
				t.Fatalf("limit=%d op=%d: Len=%d oracle=%d", limit, i, s.Len(), len(oracle))
			}
		}
		st := s.Stats()
		if limit == 1 && st.SpilledKeys == 0 {
			t.Errorf("limit=1 never spilled: %+v", st)
		}
		if limit == 1 && st.Compactions == 0 {
			t.Errorf("limit=1 never compacted: %+v", st)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
	}
}

// Every key inserted before any number of flushes must still be found
// (i.e. re-Add reports duplicate) afterwards — including keys that landed
// in different runs and keys merged by compaction.
func TestSetDuplicatesAcrossRuns(t *testing.T) {
	s, err := NewSet(t.TempDir(), 10)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	keys := make([]Key, 300)
	rng := rand.New(rand.NewSource(7))
	for i := range keys {
		keys[i] = Key{H1: rng.Uint64(), H2: rng.Uint64()}
		if added, err := s.Add(keys[i].H1, keys[i].H2); err != nil || !added {
			t.Fatalf("fresh add %d: added=%t err=%v", i, added, err)
		}
	}
	if s.Stats().Runs == 0 {
		t.Fatal("expected spilled runs")
	}
	for i, k := range keys {
		if added, err := s.Add(k.H1, k.H2); err != nil || added {
			t.Fatalf("re-add %d: added=%t err=%v", i, added, err)
		}
	}
	if s.Len() != int64(len(keys)) {
		t.Fatalf("Len=%d want %d", s.Len(), len(keys))
	}
}

// Adjacent keys sharing an H1 lane must stay distinct on disk (full
// 128-bit records, not truncated ones).
func TestSetLaneCollisionsStayDistinct(t *testing.T) {
	s, err := NewSet(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for h2 := uint64(0); h2 < 64; h2++ {
		if added, err := s.Add(42, h2); err != nil || !added {
			t.Fatalf("h2=%d: added=%t err=%v", h2, added, err)
		}
	}
	if s.Len() != 64 {
		t.Fatalf("Len=%d want 64", s.Len())
	}
	for h2 := uint64(0); h2 < 64; h2++ {
		if added, err := s.Add(42, h2); err != nil || added {
			t.Fatalf("re-add h2=%d: added=%t err=%v", h2, added, err)
		}
	}
}

// Close must remove the run files it created.
func TestSetCloseRemovesRuns(t *testing.T) {
	dir := t.TempDir()
	s, err := NewSet(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := s.Add(uint64(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	left, err := filepath.Glob(filepath.Join(dir, "run-*.fps"))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Fatalf("run files left behind: %v", left)
	}
}

func TestNewSetRejectsMissingDir(t *testing.T) {
	if _, err := NewSet(filepath.Join(t.TempDir(), "nope"), 10); err == nil {
		t.Fatal("expected error for missing dir")
	}
	f := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewSet(f, 10); err == nil {
		t.Fatal("expected error for non-directory")
	}
}
