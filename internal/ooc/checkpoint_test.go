package ooc

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func sampleCheckpoint(orbits int) *Checkpoint {
	cp := &Checkpoint{
		Version: CheckpointVersion,
		Meta: SweepMeta{
			Alg: "six", N: 6, Mode: "interleaved", Symmetry: "full",
			Singletons: true, MaxDepth: 256, MaxStates: 2_000_000,
			ShardIndex: 0, ShardCount: 1,
		},
		Totals: Totals{AllOk: true},
	}
	for i := 0; i < orbits; i++ {
		rec := OrbitRecord{
			Assignment:     []int{1, 2, 3, 4, 5, 6 + i},
			Weight:         12,
			States:         1000 + i,
			Terminal:       10 + i,
			WeightedStates: int64(6000 + i),
		}
		cp.Orbits = append(cp.Orbits, rec)
		cp.Cursor = rec.Assignment
		cp.Totals.Runs++
		cp.Totals.Assignments += rec.Weight
		cp.Totals.States += int64(rec.Weight) * int64(rec.States)
		cp.Totals.Terminal += int64(rec.Weight) * int64(rec.Terminal)
	}
	return cp
}

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	want := sampleCheckpoint(3)
	if err := Save(path, want); err != nil {
		t.Fatal(err)
	}
	got, fromPrev, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if fromPrev {
		t.Error("primary checkpoint reported as recovered from .prev")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

// Save must keep the previous generation as path+".prev".
func TestCheckpointRotation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	first := sampleCheckpoint(1)
	second := sampleCheckpoint(2)
	if err := Save(path, first); err != nil {
		t.Fatal(err)
	}
	if err := Save(path, second); err != nil {
		t.Fatal(err)
	}
	prev, err := loadOne(path + ".prev")
	if err != nil {
		t.Fatalf("prev generation unreadable: %v", err)
	}
	if !reflect.DeepEqual(prev, first) {
		t.Fatalf("prev generation is not the first save:\ngot  %+v\nwant %+v", prev, first)
	}
}

// The torn-write satellite: a checkpoint truncated mid-record must be
// detected — never silently loaded — and Load must fall back to the last
// good generation.
func TestCheckpointTornWriteFallsBackToPrev(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	good := sampleCheckpoint(1)
	newer := sampleCheckpoint(2)
	if err := Save(path, good); err != nil {
		t.Fatal(err)
	}
	if err := Save(path, newer); err != nil {
		t.Fatal(err)
	}
	// Tear the primary: keep a prefix that cuts through the payload.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	cp, fromPrev, err := Load(path)
	if err != nil {
		t.Fatalf("fallback failed: %v", err)
	}
	if !fromPrev {
		t.Fatal("torn primary was not reported as recovered from .prev")
	}
	if !reflect.DeepEqual(cp, good) {
		t.Fatalf("fallback did not return the last good checkpoint:\ngot  %+v\nwant %+v", cp, good)
	}
}

// A corrupted payload with an intact length (bit flip, not truncation)
// must fail the checksum, not parse as different counts.
func TestCheckpointBitFlipDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	if err := Save(path, sampleCheckpoint(2)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a digit inside the payload's states count.
	s := string(data)
	i := strings.Index(s, "\"states\":")
	if i < 0 {
		t.Fatal("no states field found")
	}
	b := []byte(s)
	for j := i; j < len(b); j++ {
		if b[j] >= '1' && b[j] <= '8' {
			b[j]++
			break
		}
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadOne(path); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("bit flip not caught by checksum: %v", err)
	}
}

// With both generations corrupt, Load must refuse with an error rather
// than resuming from anything.
func TestCheckpointBothGenerationsCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	if err := os.WriteFile(path, []byte(`{"sha256":"00","payload":{}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path+".prev", []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Load(path); err == nil {
		t.Fatal("corrupt checkpoint pair did not refuse the resume")
	}
}

// A missing checkpoint is an error (the caller decides whether that means
// "fresh start" or "refuse the -resume").
func TestCheckpointMissing(t *testing.T) {
	if _, _, err := Load(filepath.Join(t.TempDir(), "none.ckpt")); err == nil {
		t.Fatal("expected error for missing checkpoint")
	}
}

// Version drift refuses the resume.
func TestCheckpointVersionMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	cp := sampleCheckpoint(1)
	cp.Version = CheckpointVersion + 1
	if err := Save(path, cp); err != nil {
		t.Fatal(err)
	}
	if _, err := loadOne(path); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version mismatch not refused: %v", err)
	}
}
