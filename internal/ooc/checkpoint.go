// Sweep checkpoints: the resumable-run contract of cmd/modelcheck.
//
// A checkpoint records everything an interrupted exhaustive sweep needs to
// continue instead of restarting: the configuration it was started with
// (so a resume with different flags is refused rather than silently
// merged), the cursor — the last identifier assignment whose exploration
// ran to completion — the per-orbit weighted counts of every completed
// assignment orbit, and the cumulative totals. The sweep enumerates
// assignments in lexicographic order with no randomness, so "skip every
// assignment ≤ cursor, fold the recorded totals, continue" reproduces the
// uninterrupted run bit for bit.
//
// Durability: each Save first rotates the previous checkpoint to
// path+".prev", then writes the new one through internal/atomicio
// (temp file + fsync + rename), and embeds a SHA-256 of the payload.
// Load verifies the checksum and falls back to the ".prev" generation
// when the primary is truncated or corrupted — a damaged checkpoint is
// always detected, never silently resumed from.
package ooc

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"

	"asynccycle/internal/atomicio"
)

// payloadSum digests the payload in compact form, making the checksum
// insensitive to JSON whitespace while still catching any value change.
func payloadSum(payload []byte) string {
	var buf bytes.Buffer
	if err := json.Compact(&buf, payload); err != nil {
		// Non-JSON bytes can never match a digest of valid JSON.
		buf.Reset()
		buf.Write(payload)
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:])
}

// CheckpointVersion identifies the on-disk format; a mismatch refuses the
// resume rather than guessing.
const CheckpointVersion = 1

// SweepMeta pins the sweep configuration a checkpoint belongs to. Every
// field participates in the resume compatibility check.
type SweepMeta struct {
	Alg string `json:"alg"`
	N   int    `json:"n"`
	// Topology is the -topology retarget spec ("" = the protocol's native
	// topology). omitempty keeps checkpoints from native-topology sweeps —
	// including every pre-topology checkpoint — byte-compatible.
	Topology   string `json:"topology,omitempty"`
	Mode       string `json:"mode"`
	Symmetry   string `json:"symmetry"`
	Singletons bool   `json:"singletons"`
	MaxDepth   int    `json:"max_depth"`
	MaxStates  int    `json:"max_states"`
	ShardIndex int    `json:"shard_index"`
	ShardCount int    `json:"shard_count"`
}

// OrbitRecord is the outcome of one completed assignment-orbit
// exploration: the representative, its exact D_n orbit size, and the
// per-run (unweighted) counts.
type OrbitRecord struct {
	Assignment     []int `json:"assignment"`
	Weight         int   `json:"weight"`
	States         int   `json:"states"`
	Terminal       int   `json:"terminal"`
	WeightedStates int64 `json:"weighted_states,omitempty"`
	Cycle          bool  `json:"cycle,omitempty"`
	Violations     int   `json:"violations,omitempty"`
	Truncated      bool  `json:"truncated,omitempty"`
	HashCollisions int   `json:"hash_collisions,omitempty"`
}

// Totals mirrors the cumulative weighted fields of model.SweepReport over
// the completed orbits (ooc cannot import internal/model — the model
// package is the importer).
type Totals struct {
	Assignments    int   `json:"assignments"`
	Runs           int   `json:"runs"`
	States         int64 `json:"states"`
	Terminal       int64 `json:"terminal"`
	CycleRuns      int64 `json:"cycle_runs"`
	Violations     int64 `json:"violations"`
	HashCollisions int   `json:"hash_collisions"`
	AllOk          bool  `json:"all_ok"`
}

// Checkpoint is the full resumable-sweep state.
type Checkpoint struct {
	Version int           `json:"version"`
	Meta    SweepMeta     `json:"meta"`
	Cursor  []int         `json:"cursor"` // last completed assignment (lex order)
	Orbits  []OrbitRecord `json:"orbits"`
	Totals  Totals        `json:"totals"`
}

// envelope wraps the payload with its checksum. RawMessage keeps the
// checksummed bytes exactly as written.
type envelope struct {
	SHA256  string          `json:"sha256"`
	Payload json.RawMessage `json:"payload"`
}

// Save writes the checkpoint: the existing file (if any) rotates to
// path+".prev" first, then the new generation lands atomically. A crash at
// any point leaves at least one loadable generation on disk.
func Save(path string, cp *Checkpoint) error {
	payload, err := json.Marshal(cp)
	if err != nil {
		return fmt.Errorf("ooc: marshal checkpoint: %w", err)
	}
	// json.Marshal emits compact payload bytes, and payloadSum re-compacts
	// on load, so re-serialization of the envelope cannot drift the digest.
	data, err := json.Marshal(envelope{
		SHA256:  payloadSum(payload),
		Payload: payload,
	})
	if err != nil {
		return fmt.Errorf("ooc: marshal checkpoint envelope: %w", err)
	}
	if _, err := os.Stat(path); err == nil {
		if err := os.Rename(path, path+".prev"); err != nil {
			return fmt.Errorf("ooc: rotate checkpoint: %w", err)
		}
	}
	return atomicio.WriteFile(path, append(data, '\n'), 0o644)
}

// Load reads and verifies a checkpoint. When the primary file is missing,
// truncated, or fails its checksum, Load falls back to path+".prev" and
// reports fromPrev=true; when both generations are unusable it returns an
// error naming the corruption, so a resume can never proceed from
// silently-wrong counts.
func Load(path string) (cp *Checkpoint, fromPrev bool, err error) {
	cp, errMain := loadOne(path)
	if errMain == nil {
		return cp, false, nil
	}
	cp, errPrev := loadOne(path + ".prev")
	if errPrev == nil {
		return cp, true, nil
	}
	return nil, false, fmt.Errorf("ooc: no usable checkpoint: %v; fallback %s.prev: %v", errMain, path, errPrev)
}

func loadOne(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("%s: corrupt envelope (torn write?): %w", path, err)
	}
	if payloadSum(env.Payload) != env.SHA256 {
		return nil, fmt.Errorf("%s: payload checksum mismatch (torn or tampered write)", path)
	}
	var cp Checkpoint
	if err := json.Unmarshal(env.Payload, &cp); err != nil {
		return nil, fmt.Errorf("%s: corrupt payload: %w", path, err)
	}
	if cp.Version != CheckpointVersion {
		return nil, fmt.Errorf("%s: checkpoint version %d, this binary writes %d", path, cp.Version, CheckpointVersion)
	}
	return &cp, nil
}
