package graph

import (
	"fmt"
	"reflect"
	"testing"
)

// TestAutomorphismsAreAutomorphisms: every element of D_n maps edges of C_n
// to edges, bijectively.
func TestAutomorphismsAreAutomorphisms(t *testing.T) {
	for n := 3; n <= 8; n++ {
		g := MustCycle(n)
		perms := CycleAutomorphisms(n)
		if len(perms) != 2*n {
			t.Fatalf("C%d: %d automorphisms, want %d", n, len(perms), 2*n)
		}
		for pi, p := range perms {
			seen := make([]bool, n)
			for _, v := range p {
				if v < 0 || v >= n || seen[v] {
					t.Fatalf("C%d perm %d is not a bijection: %v", n, pi, p)
				}
				seen[v] = true
			}
			for _, e := range g.Edges() {
				if !g.Adjacent(p[e[0]], p[e[1]]) {
					t.Errorf("C%d perm %d maps edge %v to a non-edge", n, pi, e)
				}
			}
		}
	}
}

// TestDihedralGroupSize: for n ≥ 3 the 2n permutations are pairwise
// distinct, and the set is closed under composition (it is a group).
func TestDihedralGroupSize(t *testing.T) {
	for n := 3; n <= 7; n++ {
		perms := CycleAutomorphisms(n)
		set := make(map[string]bool)
		for _, p := range perms {
			set[fmt.Sprint(p)] = true
		}
		if len(set) != 2*n {
			t.Fatalf("D_%d has %d distinct elements, want %d", n, len(set), 2*n)
		}
		for _, p := range perms {
			for _, q := range perms {
				comp := make([]int, n)
				for i := range comp {
					comp[i] = p[q[i]]
				}
				if !set[fmt.Sprint(comp)] {
					t.Fatalf("D_%d not closed under composition: %v ∘ %v = %v", n, p, q, comp)
				}
			}
		}
	}
}

// TestCanonicalAssignment: the canonical form is in the orbit, is the
// minimum of the orbit, is idempotent, and is orbit-invariant; the orbit
// size divides 2n and the orbit sizes over all permutations of {1..n} sum
// to n!.
func TestCanonicalAssignment(t *testing.T) {
	for n := 3; n <= 6; n++ {
		total := 0
		reps := 0
		factorial := 1
		for i := 2; i <= n; i++ {
			factorial *= i
		}
		Permutations(n, func(xs []int) bool {
			canon, orbit := CanonicalAssignment(xs)
			if orbit <= 0 || (2*n)%orbit != 0 {
				t.Fatalf("n=%d xs=%v: orbit size %d does not divide %d", n, xs, orbit, 2*n)
			}
			// Canonical form is the lexicographic min over all images.
			inOrbit := false
			for _, p := range CycleAutomorphisms(n) {
				img := ApplyPerm(xs, p)
				if lessInts(img, canon) {
					t.Fatalf("n=%d xs=%v: image %v < canonical %v", n, xs, img, canon)
				}
				if reflect.DeepEqual(img, canon) {
					inOrbit = true
				}
				// Orbit-invariance: every image canonicalizes identically.
				c2, o2 := CanonicalAssignment(img)
				if !reflect.DeepEqual(c2, canon) || o2 != orbit {
					t.Fatalf("n=%d xs=%v image %v: canonical %v/%d, want %v/%d", n, xs, img, c2, o2, canon, orbit)
				}
			}
			if !inOrbit {
				t.Fatalf("n=%d xs=%v: canonical form %v not in orbit", n, xs, canon)
			}
			if IsCanonicalAssignment(xs) {
				reps++
				total += orbit
			}
			return true
		})
		if total != factorial {
			t.Errorf("n=%d: orbit sizes of representatives sum to %d, want %d!=%d", n, total, n, factorial)
		}
		// Distinct ranks have trivial stabilizer in D_n only up to the
		// reflection that fixes a vertex; the orbit count is n!/(2n) when
		// every orbit is full-sized, and ≥ n!/(2n) in general.
		if reps < factorial/(2*n) {
			t.Errorf("n=%d: %d representatives, want ≥ %d", n, reps, factorial/(2*n))
		}
	}
}

// TestPermutationsLexicographic: the enumeration yields exactly n! distinct
// permutations of {1..n} in strictly increasing lexicographic order, and
// stops early when f returns false.
func TestPermutationsLexicographic(t *testing.T) {
	var prev []int
	count := 0
	Permutations(4, func(xs []int) bool {
		if prev != nil && !lessInts(prev, xs) {
			t.Fatalf("not lexicographic: %v then %v", prev, xs)
		}
		prev = append(prev[:0], xs...)
		count++
		return true
	})
	if count != 24 {
		t.Fatalf("enumerated %d permutations of 4, want 24", count)
	}
	count = 0
	Permutations(5, func(xs []int) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Fatalf("early stop after %d permutations, want 10", count)
	}
}

// TestIsStandardCycle: Cycle(n) is standard; shuffled neighbor orders,
// paths, complete graphs, and non-cycle topologies are not.
func TestIsStandardCycle(t *testing.T) {
	for n := 3; n <= 7; n++ {
		if !IsStandardCycle(MustCycle(n)) {
			t.Errorf("Cycle(%d) not recognized as standard", n)
		}
	}
	// Same cycle, neighbor lists in the opposite order: IsStandardCycle is
	// deliberately order-sensitive (rotation equivariance of ModeInterleaved
	// depends on the fixed [i-1, i+1] listing).
	rev := MustNew("C4-rev", [][]int{{1, 3}, {2, 0}, {3, 1}, {0, 2}})
	if IsStandardCycle(rev) {
		t.Error("reversed-order C4 misclassified as standard (neighbor order matters)")
	}
	p, _ := Path(5)
	if IsStandardCycle(p) {
		t.Error("P5 misclassified as a standard cycle")
	}
	k, _ := Complete(4)
	if IsStandardCycle(k) {
		t.Error("K4 misclassified as a standard cycle")
	}
	// A relabeled (but still cyclic) adjacency structure is a cycle yet not
	// the standard one.
	g := MustNew("C4-relabeled", [][]int{{2, 3}, {2, 3}, {0, 1}, {1, 0}})
	if !g.IsCycle() {
		t.Fatal("relabeled graph should still be a cycle")
	}
	if IsStandardCycle(g) {
		t.Error("relabeled C4 misclassified as standard")
	}
}
