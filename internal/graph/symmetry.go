// Automorphisms of the cycle. C_n's automorphism group is the dihedral
// group D_n: n rotations and n reflections, 2n maps in total. The model
// checker quotients its sweeps over identifier assignments by this group
// (one representative per orbit, weighted by exact orbit size), and
// canonicalizes configuration fingerprints by the rotation subgroup — see
// internal/model and DESIGN.md §6 for the soundness split between the two
// uses.
package graph

// Rotations returns the n rotations of C_n as permutations: element k maps
// vertex i to (i+k) mod n. Element 0 is the identity.
func Rotations(n int) [][]int {
	out := make([][]int, n)
	for k := 0; k < n; k++ {
		p := make([]int, n)
		for i := 0; i < n; i++ {
			p[i] = (i + k) % n
		}
		out[k] = p
	}
	return out
}

// Reflections returns the n reflections of C_n as permutations: element k
// maps vertex i to (k-i) mod n (the reflection whose axis passes through
// vertex k/2).
func Reflections(n int) [][]int {
	out := make([][]int, n)
	for k := 0; k < n; k++ {
		p := make([]int, n)
		for i := 0; i < n; i++ {
			p[i] = ((k-i)%n + n) % n
		}
		out[k] = p
	}
	return out
}

// CycleAutomorphisms returns all 2n elements of D_n acting on C_n's
// vertices: the n rotations followed by the n reflections.
func CycleAutomorphisms(n int) [][]int {
	return append(Rotations(n), Reflections(n)...)
}

// ApplyPerm returns the image of the assignment xs under the automorphism
// p: out[i] = xs[p[i]], i.e. vertex i of the image carries the value that
// vertex p(i) carried before. Composing with the engine, running the image
// assignment is isomorphic to running xs on the relabeled cycle.
func ApplyPerm(xs, p []int) []int {
	out := make([]int, len(xs))
	for i := range out {
		out[i] = xs[p[i]]
	}
	return out
}

// CanonicalAssignment returns the lexicographically smallest image of xs
// under the dihedral group D_n (n = len(xs) ≥ 3), together with the exact
// orbit size — the number of distinct images among the 2n maps. Assignment
// sweeps keep only assignments equal to their canonical form and weight
// each by the orbit size, so reduced counts multiply back to the unreduced
// totals exactly.
func CanonicalAssignment(xs []int) ([]int, int) {
	n := len(xs)
	best := append([]int(nil), xs...)
	distinct := make(map[string]bool, 2*n)
	buf := make([]int, n)
	encode := func(v []int) string {
		b := make([]byte, 0, 4*n)
		for _, x := range v {
			b = append(b, byte(x), byte(x>>8), byte(x>>16), byte(x>>24))
		}
		return string(b)
	}
	distinct[encode(xs)] = true
	for _, p := range CycleAutomorphisms(n) {
		for i := 0; i < n; i++ {
			buf[i] = xs[p[i]]
		}
		distinct[encode(buf)] = true
		if lessInts(buf, best) {
			copy(best, buf)
		}
	}
	return best, len(distinct)
}

// IsCanonicalAssignment reports whether xs equals its own canonical form —
// i.e. xs is the orbit representative an assignment sweep keeps.
func IsCanonicalAssignment(xs []int) bool {
	canon, _ := CanonicalAssignment(xs)
	for i := range xs {
		if xs[i] != canon[i] {
			return false
		}
	}
	return true
}

// lessInts is lexicographic < on equal-length int slices.
func lessInts(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// IsStandardCycle reports whether g is the standard cycle built by Cycle(n):
// vertex i's neighbor list is exactly [(i-1) mod n, (i+1) mod n] in that
// order. Rotations preserve this neighbor-list order (the image of i's list
// is the list of the image vertex), which is what makes within-run rotation
// canonicalization sound for order-sensitive execution modes; the model
// checker falls back to unreduced exploration on any other topology.
func IsStandardCycle(g Graph) bool {
	n := g.N()
	if n < 3 {
		return false
	}
	for i := 0; i < n; i++ {
		nbrs := g.Neighbors(i)
		if len(nbrs) != 2 || nbrs[0] != (i+n-1)%n || nbrs[1] != (i+1)%n {
			return false
		}
	}
	return true
}

// Permutations calls f with every permutation of {1, …, n} in
// lexicographic order — the identifier-rank assignments an exhaustive sweep
// enumerates (only relative identifier order matters to the algorithms, so
// ranks cover all real identifier choices). f must not retain the slice.
// Returning false from f stops the enumeration early.
func Permutations(n int, f func(xs []int) bool) {
	xs := make([]int, n)
	used := make([]bool, n)
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == n {
			return f(xs)
		}
		for v := 1; v <= n; v++ {
			if used[v-1] {
				continue
			}
			used[v-1] = true
			xs[k] = v
			if !rec(k + 1) {
				return false
			}
			used[v-1] = false
		}
		return true
	}
	rec(0)
}
