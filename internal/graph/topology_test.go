package graph

import (
	"errors"
	"reflect"
	"testing"
)

func TestParseTopologyFamilies(t *testing.T) {
	cases := []struct {
		spec   string
		family string
		canon  string
		minN   int
		n      int
		name   string
	}{
		{"", "cycle", "cycle", 3, 5, "C5"},
		{"cycle", "cycle", "cycle", 3, 5, "C5"},
		{"path", "path", "path", 2, 5, "P5"},
		{"complete", "complete", "complete", 2, 4, "K4"},
		{"torus", "torus", "torus", 9, 9, "T3x3"},
		{"random:4:7", "random", "random:4:7", 2, 12, "G(12,Δ≤4,seed=7)"},
		{"random:3", "random", "random:3:1", 2, 8, "G(8,Δ≤3,seed=1)"},
	}
	for _, c := range cases {
		b, err := ParseTopology(c.spec)
		if err != nil {
			t.Fatalf("ParseTopology(%q): %v", c.spec, err)
		}
		if b.Family != c.family || b.Spec != c.canon || b.MinN != c.minN || b.Shuffled {
			t.Errorf("ParseTopology(%q) = {Family:%q Spec:%q MinN:%d Shuffled:%v}, want {%q %q %d false}",
				c.spec, b.Family, b.Spec, b.MinN, b.Shuffled, c.family, c.canon, c.minN)
		}
		g, err := b.Build(c.n)
		if err != nil {
			t.Fatalf("%q.Build(%d): %v", c.spec, c.n, err)
		}
		if g.Name() != c.name {
			t.Errorf("%q.Build(%d).Name() = %q, want %q", c.spec, c.n, g.Name(), c.name)
		}
	}
}

func TestParseTopologyShuffled(t *testing.T) {
	b, err := ParseTopology("complete+shuffled:9")
	if err != nil {
		t.Fatal(err)
	}
	if b.Family != "complete" || !b.Shuffled || b.Spec != "complete+shuffled:9" {
		t.Fatalf("builder = %+v", b)
	}
	g, err := b.Build(5)
	if err != nil {
		t.Fatal(err)
	}
	plain, _ := Complete(5)
	for u := 0; u < 5; u++ {
		if g.Degree(u) != plain.Degree(u) {
			t.Fatalf("shuffle changed degree of %d", u)
		}
		for _, v := range plain.Neighbors(u) {
			if !g.Adjacent(u, v) {
				t.Fatalf("shuffle changed adjacency: %d-%d missing", u, v)
			}
		}
	}
}

func TestParseTopologyErrors(t *testing.T) {
	for _, spec := range []string{
		"mobius", "random", "random:1", "random:x", "random:4:y",
		"random:4:1:2", "cycle+twisted:3", "cycle+shuffled:x",
	} {
		if _, err := ParseTopology(spec); !errors.Is(err, ErrUnknownTopology) {
			t.Errorf("ParseTopology(%q) = %v, want ErrUnknownTopology", spec, err)
		}
	}
}

func TestTorusBuilderSizing(t *testing.T) {
	b := MustParseTopology("torus")
	if b.FixN == nil {
		t.Fatal("torus builder has no FixN")
	}
	for n, want := range map[int]int{3: 9, 9: 9, 10: 12, 11: 12, 12: 12, 13: 15, 16: 16, 17: 18} {
		if got := b.FixN(n); got != want {
			t.Errorf("FixN(%d) = %d, want %d", n, got, want)
		}
	}
	if _, err := b.Build(11); err == nil {
		t.Error("Build(11) succeeded; 11 has no r×c ≥ 3 factorization")
	}
	g, err := b.Build(12)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "T3x4" || g.MaxDegree() != 4 {
		t.Errorf("Build(12) = %s Δ=%d, want T3x4 Δ=4", g.Name(), g.MaxDegree())
	}
}

// TestRandomBoundedDegreeProperties pins the contract the dp1 experiments
// lean on: connectivity (the Hamiltonian spine), the Δ bound, and exact
// seed reproducibility including neighbor order.
func TestRandomBoundedDegreeProperties(t *testing.T) {
	for _, c := range []struct {
		n, maxDeg int
		seed      int64
	}{{8, 2, 1}, {20, 4, 7}, {50, 3, 42}, {100, 6, 3}} {
		g, err := RandomBoundedDegree(c.n, c.maxDeg, c.seed)
		if err != nil {
			t.Fatal(err)
		}
		if !g.Connected() {
			t.Errorf("G(%d,Δ≤%d,seed=%d) not connected", c.n, c.maxDeg, c.seed)
		}
		if d := g.MaxDegree(); d > c.maxDeg {
			t.Errorf("G(%d,Δ≤%d,seed=%d) has Δ=%d", c.n, c.maxDeg, c.seed, d)
		}
		again, err := RandomBoundedDegree(c.n, c.maxDeg, c.seed)
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < c.n; u++ {
			if !reflect.DeepEqual(g.Neighbors(u), again.Neighbors(u)) {
				t.Fatalf("seed %d not reproducible at node %d: %v vs %v", c.seed, u, g.Neighbors(u), again.Neighbors(u))
			}
		}
		other, err := RandomBoundedDegree(c.n, c.maxDeg, c.seed+1)
		if err != nil {
			t.Fatal(err)
		}
		same := true
		for u := 0; u < c.n; u++ {
			if !reflect.DeepEqual(g.Neighbors(u), other.Neighbors(u)) {
				same = false
				break
			}
		}
		if same {
			t.Errorf("seeds %d and %d produced identical graphs", c.seed, c.seed+1)
		}
	}
}
