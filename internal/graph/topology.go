package graph

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// This file is the topology registry: the named specs that the CLIs'
// -topology flag and colorserved job specs accept, resolved into Builder
// values the protocol layer can retarget descriptors onto. Keeping the
// grammar here — next to the generators — means every tool shares one
// parser and one set of per-family minimums.

// Builder is a resolved topology spec: a family name, a canonical spec
// string, the per-family minimum size, and the construction function.
type Builder struct {
	// Family is the generator family: "cycle", "path", "complete",
	// "torus" or "random". Shuffled-neighbor variants keep the base
	// family (the adjacency is unchanged; only neighbor order moves).
	Family string
	// Spec is the canonical spec string, e.g. "torus" or
	// "random:4:7+shuffled:3". Descriptors retargeted onto this builder
	// report it as their topology name.
	Spec string
	// MinN is the smallest n the family supports.
	MinN int
	// Shuffled reports whether the spec carries a +shuffled:SEED suffix
	// permuting every node's neighbor order.
	Shuffled bool
	// Build constructs the n-node instance.
	Build func(n int) (Graph, error)
	// FixN rounds a requested size up to the nearest constructible one
	// (nil when every n ≥ MinN works). Only the torus needs it: n must
	// factor as r×c with r,c ≥ 3.
	FixN func(n int) int
}

// ErrUnknownTopology is returned by ParseTopology for specs naming no
// registered family or carrying malformed parameters.
var ErrUnknownTopology = errors.New("graph: unknown topology")

// Topologies lists the accepted spec forms for help text, in the order
// ParseTopology recognizes them.
func Topologies() []string {
	return []string{"cycle", "path", "complete", "torus", "random:Δ[:seed]", "<base>+shuffled:seed"}
}

// ParseTopology resolves a -topology spec into a Builder. The grammar is
//
//	""| "cycle" | "path" | "complete" | "torus" | "random:Δ[:seed]"
//
// optionally suffixed with "+shuffled:SEED" to permute each node's
// neighbor order (adjacency unchanged). The empty spec means the cycle,
// the paper's native setting.
func ParseTopology(spec string) (Builder, error) {
	base := spec
	var shufSeed int64
	shuffled := false
	if i := strings.Index(spec, "+"); i >= 0 {
		base = spec[:i]
		suffix := spec[i+1:]
		rest, ok := strings.CutPrefix(suffix, "shuffled:")
		if !ok {
			return Builder{}, fmt.Errorf("%w: %q (suffix %q; want +shuffled:SEED)", ErrUnknownTopology, spec, suffix)
		}
		seed, err := strconv.ParseInt(rest, 10, 64)
		if err != nil {
			return Builder{}, fmt.Errorf("%w: %q (bad shuffle seed %q)", ErrUnknownTopology, spec, rest)
		}
		shufSeed = seed
		shuffled = true
	}
	b, err := parseBase(base)
	if err != nil {
		return Builder{}, err
	}
	if shuffled {
		inner := b.Build
		b.Build = func(n int) (Graph, error) {
			g, err := inner(n)
			if err != nil {
				return Graph{}, err
			}
			return g.ShuffledNeighbors(shufSeed), nil
		}
		b.Spec = b.Spec + fmt.Sprintf("+shuffled:%d", shufSeed)
		b.Shuffled = true
	}
	return b, nil
}

// MustParseTopology is ParseTopology but panics on error; for statically
// known specs.
func MustParseTopology(spec string) Builder {
	b, err := ParseTopology(spec)
	if err != nil {
		panic(err)
	}
	return b
}

func parseBase(base string) (Builder, error) {
	switch {
	case base == "" || base == "cycle":
		return Builder{Family: "cycle", Spec: "cycle", MinN: 3, Build: Cycle}, nil
	case base == "path":
		return Builder{Family: "path", Spec: "path", MinN: 2, Build: Path}, nil
	case base == "complete":
		return Builder{Family: "complete", Spec: "complete", MinN: 2, Build: Complete}, nil
	case base == "torus":
		return Builder{
			Family: "torus",
			Spec:   "torus",
			MinN:   9,
			Build: func(n int) (Graph, error) {
				r, c, ok := torusDims(n)
				if !ok {
					return Graph{}, fmt.Errorf("graph: torus on %d nodes: no r×c factorization with r,c ≥ 3 (nearest is %d)", n, fixTorusN(n))
				}
				return Torus(r, c)
			},
			FixN: fixTorusN,
		}, nil
	case strings.HasPrefix(base, "random:"):
		parts := strings.Split(base, ":")
		if len(parts) < 2 || len(parts) > 3 {
			return Builder{}, fmt.Errorf("%w: %q (want random:Δ or random:Δ:seed)", ErrUnknownTopology, base)
		}
		maxDeg, err := strconv.Atoi(parts[1])
		if err != nil || maxDeg < 2 {
			return Builder{}, fmt.Errorf("%w: %q (max degree must be an integer ≥ 2)", ErrUnknownTopology, base)
		}
		var seed int64 = 1
		if len(parts) == 3 {
			seed, err = strconv.ParseInt(parts[2], 10, 64)
			if err != nil {
				return Builder{}, fmt.Errorf("%w: %q (bad seed %q)", ErrUnknownTopology, base, parts[2])
			}
		}
		return Builder{
			Family: "random",
			Spec:   fmt.Sprintf("random:%d:%d", maxDeg, seed),
			MinN:   2,
			Build:  func(n int) (Graph, error) { return RandomBoundedDegree(n, maxDeg, seed) },
		}, nil
	default:
		return Builder{}, fmt.Errorf("%w: %q (known: cycle, path, complete, torus, random:Δ[:seed])", ErrUnknownTopology, base)
	}
}

// torusDims factorizes n as r×c with r,c ≥ 3, preferring the squarest
// split (r descends from ⌊√n⌋).
func torusDims(n int) (r, c int, ok bool) {
	if n < 9 {
		return 0, 0, false
	}
	for r := int(math.Sqrt(float64(n))); r >= 3; r-- {
		if n%r == 0 && n/r >= 3 {
			return r, n / r, true
		}
	}
	return 0, 0, false
}

// fixTorusN rounds n up to the nearest torus-constructible size
// (9, 12, 15, 16, 18, …). Primes and other unfactorable sizes step up a
// handful of nodes at most: every even m ≥ 18 factors as 3×(m/3) or
// similar, so the loop terminates quickly.
func fixTorusN(n int) int {
	m := n
	if m < 9 {
		m = 9
	}
	for {
		if _, _, ok := torusDims(m); ok {
			return m
		}
		m++
	}
}
