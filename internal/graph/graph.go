// Package graph provides the network topologies the model runs on: the
// cycle C_n (the paper's primary setting), paths, complete graphs (on which
// the model coincides with wait-free shared memory with immediate
// snapshots, cf. Property 2.3), and random bounded-degree graphs for the
// Appendix A generalization.
//
// A Graph is immutable after construction. Neighbor lists are exposed in a
// fixed but otherwise arbitrary per-node order, matching the paper's
// assumption that nodes have no coherent notion of left and right.
package graph

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
)

// Graph is an undirected simple graph on vertices 0..N()-1.
type Graph struct {
	name string
	adj  [][]int
}

// ErrTooSmall is returned by constructors whose topology requires a minimum
// number of nodes (e.g. cycles need n ≥ 3).
var ErrTooSmall = errors.New("graph: too few nodes")

// New builds a graph from an adjacency list. The adjacency list is deep
// copied. It returns an error if the list is ragged (asymmetric), contains
// self-loops, duplicate edges, or out-of-range endpoints.
func New(name string, adj [][]int) (Graph, error) {
	n := len(adj)
	cp := make([][]int, n)
	type edge struct{ u, v int }
	seen := make(map[edge]bool)
	for u, nbrs := range adj {
		cp[u] = make([]int, len(nbrs))
		copy(cp[u], nbrs)
		for _, v := range nbrs {
			if v < 0 || v >= n {
				return Graph{}, fmt.Errorf("graph %q: edge %d-%d out of range", name, u, v)
			}
			if v == u {
				return Graph{}, fmt.Errorf("graph %q: self-loop at %d", name, u)
			}
			if seen[edge{u, v}] {
				return Graph{}, fmt.Errorf("graph %q: duplicate edge %d-%d", name, u, v)
			}
			seen[edge{u, v}] = true
		}
	}
	for e := range seen {
		if !seen[edge{e.v, e.u}] {
			return Graph{}, fmt.Errorf("graph %q: asymmetric edge %d-%d", name, e.u, e.v)
		}
	}
	return Graph{name: name, adj: cp}, nil
}

// MustNew is New but panics on error; for use with statically known inputs.
func MustNew(name string, adj [][]int) Graph {
	g, err := New(name, adj)
	if err != nil {
		panic(err)
	}
	return g
}

// Cycle returns the n-node cycle C_n, n ≥ 3, with node i adjacent to
// i±1 mod n.
func Cycle(n int) (Graph, error) {
	if n < 3 {
		return Graph{}, fmt.Errorf("graph: cycle of length %d: %w", n, ErrTooSmall)
	}
	adj := make([][]int, n)
	for i := range adj {
		adj[i] = []int{(i + n - 1) % n, (i + 1) % n}
	}
	return Graph{name: fmt.Sprintf("C%d", n), adj: adj}, nil
}

// MustCycle is Cycle but panics on error.
func MustCycle(n int) Graph {
	g, err := Cycle(n)
	if err != nil {
		panic(err)
	}
	return g
}

// Path returns the n-node path P_n, n ≥ 2 (useful for testing monotone
// chain behaviour in isolation).
func Path(n int) (Graph, error) {
	if n < 2 {
		return Graph{}, fmt.Errorf("graph: path of length %d: %w", n, ErrTooSmall)
	}
	adj := make([][]int, n)
	for i := range adj {
		switch {
		case i == 0:
			adj[i] = []int{1}
		case i == n-1:
			adj[i] = []int{n - 2}
		default:
			adj[i] = []int{i - 1, i + 1}
		}
	}
	return Graph{name: fmt.Sprintf("P%d", n), adj: adj}, nil
}

// Complete returns the complete graph K_n, n ≥ 2. Running the engine on K_n
// realizes the standard asynchronous shared-memory model with immediate
// snapshots, since every process reads every register (paper §2.3).
func Complete(n int) (Graph, error) {
	if n < 2 {
		return Graph{}, fmt.Errorf("graph: complete graph on %d nodes: %w", n, ErrTooSmall)
	}
	adj := make([][]int, n)
	for i := range adj {
		adj[i] = make([]int, 0, n-1)
		for j := 0; j < n; j++ {
			if j != i {
				adj[i] = append(adj[i], j)
			}
		}
	}
	return Graph{name: fmt.Sprintf("K%d", n), adj: adj}, nil
}

// Torus returns the rows×cols torus grid (wrap-around in both
// dimensions): the canonical 4-regular topology for the Appendix A
// O(Δ²)-coloring experiments. Both dimensions must be ≥ 3 so that no
// duplicate edges arise from wrapping.
func Torus(rows, cols int) (Graph, error) {
	if rows < 3 || cols < 3 {
		return Graph{}, fmt.Errorf("graph: torus %d×%d needs both dimensions ≥ 3: %w", rows, cols, ErrTooSmall)
	}
	n := rows * cols
	adj := make([][]int, n)
	id := func(r, c int) int { return ((r+rows)%rows)*cols + (c+cols)%cols }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			adj[id(r, c)] = []int{id(r-1, c), id(r+1, c), id(r, c-1), id(r, c+1)}
		}
	}
	return Graph{name: fmt.Sprintf("T%dx%d", rows, cols), adj: adj}, nil
}

// RandomBoundedDegree returns a connected random graph on n nodes with
// maximum degree at most maxDeg ≥ 2, built from a Hamiltonian path plus
// random chords, using the given seed. It is the workload for the
// Appendix A O(Δ²)-coloring experiments.
func RandomBoundedDegree(n, maxDeg int, seed int64) (Graph, error) {
	if n < 2 {
		return Graph{}, fmt.Errorf("graph: random graph on %d nodes: %w", n, ErrTooSmall)
	}
	if maxDeg < 2 {
		return Graph{}, fmt.Errorf("graph: max degree %d < 2", maxDeg)
	}
	rng := rand.New(rand.NewSource(seed))
	deg := make([]int, n)
	adjSet := make([]map[int]bool, n)
	for i := range adjSet {
		adjSet[i] = make(map[int]bool)
	}
	addEdge := func(u, v int) {
		adjSet[u][v] = true
		adjSet[v][u] = true
		deg[u]++
		deg[v]++
	}
	for i := 0; i+1 < n; i++ { // spine: guarantees connectivity
		addEdge(i, i+1)
	}
	// Random chords up to the degree budget; 4n attempts keeps density
	// proportional to n without quadratic work.
	for attempts := 0; attempts < 4*n; attempts++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v || adjSet[u][v] || deg[u] >= maxDeg || deg[v] >= maxDeg {
			continue
		}
		addEdge(u, v)
	}
	adj := make([][]int, n)
	for u := range adj {
		for v := range adjSet[u] {
			adj[u] = append(adj[u], v)
		}
		// Sort first — map iteration order is nondeterministic and would
		// break seed reproducibility — then shuffle so neighbor order
		// carries no structural information.
		sort.Ints(adj[u])
		rng.Shuffle(len(adj[u]), func(i, j int) { adj[u][i], adj[u][j] = adj[u][j], adj[u][i] })
	}
	return Graph{name: fmt.Sprintf("G(%d,Δ≤%d,seed=%d)", n, maxDeg, seed), adj: adj}, nil
}

// N returns the number of nodes.
func (g Graph) N() int { return len(g.adj) }

// Name returns a human-readable topology name such as "C12" or "K3".
func (g Graph) Name() string { return g.name }

// Neighbors returns node u's neighbor list in its fixed arbitrary order.
// The returned slice must not be modified.
func (g Graph) Neighbors(u int) []int { return g.adj[u] }

// Degree returns the degree of node u.
func (g Graph) Degree(u int) int { return len(g.adj[u]) }

// MaxDegree returns Δ, the maximum degree over all nodes (0 for the empty
// graph).
func (g Graph) MaxDegree() int {
	max := 0
	for u := range g.adj {
		if d := len(g.adj[u]); d > max {
			max = d
		}
	}
	return max
}

// Adjacent reports whether u and v share an edge.
func (g Graph) Adjacent(u, v int) bool {
	for _, w := range g.adj[u] {
		if w == v {
			return true
		}
	}
	return false
}

// Edges returns each undirected edge once as ordered pairs (u < v).
func (g Graph) Edges() [][2]int {
	var out [][2]int
	for u := range g.adj {
		for _, v := range g.adj[u] {
			if u < v {
				out = append(out, [2]int{u, v})
			}
		}
	}
	return out
}

// IsCycle reports whether the graph is a single cycle: connected and
// 2-regular.
func (g Graph) IsCycle() bool {
	n := g.N()
	if n < 3 {
		return false
	}
	for u := 0; u < n; u++ {
		if g.Degree(u) != 2 {
			return false
		}
	}
	return g.Connected()
}

// Connected reports whether the graph is connected (true for the empty and
// single-node graphs).
func (g Graph) Connected() bool {
	n := g.N()
	if n <= 1 {
		return true
	}
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.adj[u] {
			if !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, v)
			}
		}
	}
	return count == n
}

// ShuffledNeighbors returns a copy of g in which every node's neighbor
// order has been permuted with the given seed. Algorithms must be
// insensitive to neighbor order; tests use this to verify it.
func (g Graph) ShuffledNeighbors(seed int64) Graph {
	rng := rand.New(rand.NewSource(seed))
	adj := make([][]int, g.N())
	for u := range adj {
		adj[u] = make([]int, len(g.adj[u]))
		copy(adj[u], g.adj[u])
		rng.Shuffle(len(adj[u]), func(i, j int) { adj[u][i], adj[u][j] = adj[u][j], adj[u][i] })
	}
	return Graph{name: g.name + "+shuffled", adj: adj}
}
