package graph

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestCycle(t *testing.T) {
	g, err := Cycle(5)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 5 {
		t.Errorf("N = %d, want 5", g.N())
	}
	if g.Name() != "C5" {
		t.Errorf("Name = %q, want C5", g.Name())
	}
	if !g.IsCycle() {
		t.Error("IsCycle = false")
	}
	if g.MaxDegree() != 2 {
		t.Errorf("MaxDegree = %d, want 2", g.MaxDegree())
	}
	if !g.Adjacent(0, 4) || !g.Adjacent(0, 1) || g.Adjacent(0, 2) {
		t.Error("wrong adjacency around node 0")
	}
	if len(g.Edges()) != 5 {
		t.Errorf("edges = %d, want 5", len(g.Edges()))
	}
}

func TestCycleTooSmall(t *testing.T) {
	for _, n := range []int{-1, 0, 1, 2} {
		if _, err := Cycle(n); !errors.Is(err, ErrTooSmall) {
			t.Errorf("Cycle(%d) err = %v, want ErrTooSmall", n, err)
		}
	}
}

func TestMustCyclePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustCycle(2) did not panic")
		}
	}()
	MustCycle(2)
}

func TestPath(t *testing.T) {
	g, err := Path(4)
	if err != nil {
		t.Fatal(err)
	}
	if g.Degree(0) != 1 || g.Degree(3) != 1 || g.Degree(1) != 2 {
		t.Error("wrong path degrees")
	}
	if len(g.Edges()) != 3 {
		t.Errorf("edges = %d, want 3", len(g.Edges()))
	}
	if g.IsCycle() {
		t.Error("path reported as cycle")
	}
	if !g.Connected() {
		t.Error("path not connected")
	}
	if _, err := Path(1); !errors.Is(err, ErrTooSmall) {
		t.Errorf("Path(1) err = %v", err)
	}
}

func TestComplete(t *testing.T) {
	g, err := Complete(4)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 4; u++ {
		if g.Degree(u) != 3 {
			t.Errorf("degree(%d) = %d, want 3", u, g.Degree(u))
		}
	}
	if len(g.Edges()) != 6 {
		t.Errorf("edges = %d, want 6", len(g.Edges()))
	}
	if _, err := Complete(1); !errors.Is(err, ErrTooSmall) {
		t.Errorf("Complete(1) err = %v", err)
	}
}

func TestCompleteEqualsCycleForN3(t *testing.T) {
	// The paper's Property 2.3 hinges on C3 = K3: same edge sets.
	c := MustCycle(3)
	k, _ := Complete(3)
	for u := 0; u < 3; u++ {
		for v := 0; v < 3; v++ {
			if u != v && c.Adjacent(u, v) != k.Adjacent(u, v) {
				t.Fatalf("C3 and K3 disagree on edge %d-%d", u, v)
			}
		}
	}
}

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name string
		adj  [][]int
	}{
		{"self-loop", [][]int{{0}}},
		{"out-of-range", [][]int{{1}, {0, 5}}},
		{"duplicate", [][]int{{1, 1}, {0}}},
		{"asymmetric", [][]int{{1}, {}}},
	}
	for _, tt := range tests {
		if _, err := New(tt.name, tt.adj); err == nil {
			t.Errorf("New(%s) accepted invalid adjacency", tt.name)
		}
	}
	if _, err := New("ok", [][]int{{1}, {0}}); err != nil {
		t.Errorf("New rejected valid adjacency: %v", err)
	}
}

func TestNewDeepCopies(t *testing.T) {
	adj := [][]int{{1}, {0}}
	g, err := New("g", adj)
	if err != nil {
		t.Fatal(err)
	}
	adj[0][0] = 99
	if g.Neighbors(0)[0] != 1 {
		t.Error("graph aliases caller adjacency")
	}
}

func TestTorus(t *testing.T) {
	g, err := Torus(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 12 {
		t.Errorf("N = %d, want 12", g.N())
	}
	for u := 0; u < g.N(); u++ {
		if g.Degree(u) != 4 {
			t.Errorf("degree(%d) = %d, want 4", u, g.Degree(u))
		}
	}
	if len(g.Edges()) != 24 { // 4-regular: 4n/2
		t.Errorf("edges = %d, want 24", len(g.Edges()))
	}
	if !g.Connected() {
		t.Error("torus not connected")
	}
	// Spot-check wrap-around adjacency: (0,0) touches (2,0) and (0,3).
	if !g.Adjacent(0, 8) || !g.Adjacent(0, 3) {
		t.Error("wrap-around edges missing")
	}
	if _, err := Torus(2, 5); !errors.Is(err, ErrTooSmall) {
		t.Errorf("Torus(2,5) err = %v", err)
	}
	if _, err := Torus(5, 2); !errors.Is(err, ErrTooSmall) {
		t.Errorf("Torus(5,2) err = %v", err)
	}
}

func TestRandomBoundedDegree(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		for _, maxDeg := range []int{2, 3, 5, 8} {
			g, err := RandomBoundedDegree(64, maxDeg, seed)
			if err != nil {
				t.Fatal(err)
			}
			if g.N() != 64 {
				t.Errorf("N = %d", g.N())
			}
			if got := g.MaxDegree(); got > maxDeg {
				t.Errorf("maxDeg=%d seed=%d: degree %d exceeds cap", maxDeg, seed, got)
			}
			if !g.Connected() {
				t.Errorf("maxDeg=%d seed=%d: not connected", maxDeg, seed)
			}
		}
	}
}

func TestRandomBoundedDegreeDeterministic(t *testing.T) {
	a, _ := RandomBoundedDegree(32, 4, 7)
	b, _ := RandomBoundedDegree(32, 4, 7)
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		t.Fatalf("edge counts differ: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, ea[i], eb[i])
		}
	}
}

func TestRandomBoundedDegreeErrors(t *testing.T) {
	if _, err := RandomBoundedDegree(1, 3, 0); err == nil {
		t.Error("accepted n=1")
	}
	if _, err := RandomBoundedDegree(10, 1, 0); err == nil {
		t.Error("accepted maxDeg=1")
	}
}

func TestShuffledNeighborsPreservesEdges(t *testing.T) {
	g := MustCycle(9)
	s := g.ShuffledNeighbors(3)
	if s.N() != g.N() {
		t.Fatal("node count changed")
	}
	for u := 0; u < g.N(); u++ {
		if g.Degree(u) != s.Degree(u) {
			t.Fatalf("degree of %d changed", u)
		}
		for _, v := range g.Neighbors(u) {
			if !s.Adjacent(u, v) {
				t.Fatalf("edge %d-%d lost", u, v)
			}
		}
	}
}

func TestConnectedSmall(t *testing.T) {
	empty := Graph{}
	if !empty.Connected() {
		t.Error("empty graph should count as connected")
	}
	two := MustNew("two", [][]int{{}, {}})
	if two.Connected() {
		t.Error("two isolated nodes reported connected")
	}
}

// TestAdjacencySymmetricQuick: on random graphs, Adjacent is symmetric and
// Edges lists each edge exactly once.
func TestAdjacencySymmetricQuick(t *testing.T) {
	prop := func(seed int64, rawN, rawDeg uint8) bool {
		n := 2 + int(rawN)%40
		maxDeg := 2 + int(rawDeg)%6
		g, err := RandomBoundedDegree(n, maxDeg, seed)
		if err != nil {
			return false
		}
		for u := 0; u < n; u++ {
			for _, v := range g.Neighbors(u) {
				if !g.Adjacent(v, u) {
					return false
				}
			}
		}
		degSum := 0
		for u := 0; u < n; u++ {
			degSum += g.Degree(u)
		}
		return len(g.Edges())*2 == degSum
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
