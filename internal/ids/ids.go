// Package ids generates the identifier assignments the algorithms take as
// input: unique integers from a poly(n) range (paper §2.1). Besides uniform
// random assignments it provides the structured worst cases the analysis
// singles out — fully increasing identifiers around the cycle create the
// Θ(n) monotone chains that make Algorithm 2 slow (Remark 3.10), which is
// precisely what Algorithm 3's identifier reduction dismantles.
package ids

import (
	"errors"
	"fmt"
	"math/rand"
)

// Assignment names a reproducible identifier-generation strategy.
type Assignment int

const (
	// Random draws a uniform random set of n distinct identifiers from
	// [0, n²) — the "typical" poly(n) input.
	Random Assignment = iota + 1
	// Increasing assigns 1, 2, …, n in cycle order: one monotone chain of
	// length n−1, the worst case for Algorithms 1 and 2.
	Increasing
	// Decreasing assigns n, n−1, …, 1 in cycle order (the mirror worst
	// case).
	Decreasing
	// Zigzag alternates low and high identifiers, so every node is a local
	// extremum: the best case, with monotone chains of length 1.
	Zigzag
	// SpacedIncreasing is Increasing with identifiers spread to the top of
	// the n² range (n², 2n², … scaled within range): long monotone chains of
	// identifiers with many bits, maximizing Cole–Vishkin reduction work.
	SpacedIncreasing
)

var assignmentNames = map[Assignment]string{
	Random:           "random",
	Increasing:       "increasing",
	Decreasing:       "decreasing",
	Zigzag:           "zigzag",
	SpacedIncreasing: "spaced-increasing",
}

// String returns the assignment's name, e.g. "random".
func (a Assignment) String() string {
	if s, ok := assignmentNames[a]; ok {
		return s
	}
	return fmt.Sprintf("assignment(%d)", int(a))
}

// All lists every named assignment, for sweeps.
func All() []Assignment {
	return []Assignment{Random, Increasing, Decreasing, Zigzag, SpacedIncreasing}
}

// ErrUnknownAssignment is returned by Generate for an unrecognized strategy.
var ErrUnknownAssignment = errors.New("ids: unknown assignment")

// Generate produces n distinct non-negative identifiers per the strategy.
// Random (and only Random) consumes the seed.
func Generate(a Assignment, n int, seed int64) ([]int, error) {
	if n < 0 {
		return nil, fmt.Errorf("ids: negative n %d", n)
	}
	switch a {
	case Random:
		return RandomIDs(n, seed), nil
	case Increasing:
		out := make([]int, n)
		for i := range out {
			out[i] = i + 1
		}
		return out, nil
	case Decreasing:
		out := make([]int, n)
		for i := range out {
			out[i] = n - i
		}
		return out, nil
	case Zigzag:
		out := make([]int, n)
		for i := range out {
			if i%2 == 0 {
				out[i] = i + 1 // low band: 1, 3, 5, …
			} else {
				out[i] = n + i + 1 // high band: n+2, n+4, …
			}
		}
		return out, nil
	case SpacedIncreasing:
		out := make([]int, n)
		step := n // spread over [n, n²+n): still poly(n), with ~2·log n bits
		for i := range out {
			out[i] = (i + 1) * step
		}
		return out, nil
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownAssignment, int(a))
	}
}

// MustGenerate is Generate but panics on error; for statically valid inputs.
func MustGenerate(a Assignment, n int, seed int64) []int {
	out, err := Generate(a, n, seed)
	if err != nil {
		panic(err)
	}
	return out
}

// RandomIDs returns n distinct identifiers drawn uniformly from [0, n²)
// (or [0, 4) for n < 2, keeping the range nonempty), in random cycle order.
func RandomIDs(n int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	rangeMax := n * n
	if rangeMax < 4 {
		rangeMax = 4
	}
	chosen := make(map[int]bool, n)
	out := make([]int, 0, n)
	for len(out) < n {
		x := rng.Intn(rangeMax)
		if !chosen[x] {
			chosen[x] = true
			out = append(out, x)
		}
	}
	return out
}

// Unique reports whether all identifiers are distinct and non-negative —
// the paper's global input precondition.
func Unique(xs []int) bool {
	seen := make(map[int]bool, len(xs))
	for _, x := range xs {
		if x < 0 || seen[x] {
			return false
		}
		seen[x] = true
	}
	return true
}

// ProperOnCycle reports whether the assignment properly colors the n-cycle
// in its given order, i.e. consecutive values (cyclically) differ. Per
// Remark 3.10 this weaker precondition already suffices for Theorem 3.1.
func ProperOnCycle(xs []int) bool {
	n := len(xs)
	if n < 3 {
		return false
	}
	for i := range xs {
		if xs[i] < 0 || xs[i] == xs[(i+1)%n] {
			return false
		}
	}
	return true
}

// LongestMonotoneChain returns the length (edge count) of the longest
// sub-path of the cycle along which identifiers strictly increase. By
// Remark 3.10 this quantity governs the convergence time of Algorithms 1
// and 2.
func LongestMonotoneChain(xs []int) int {
	n := len(xs)
	if n < 2 {
		return 0
	}
	best := 0
	for dir := 0; dir < 2; dir++ { // both traversal directions
		run := 0
		// 2n steps to capture chains crossing the seam of the cycle.
		for i := 1; i < 2*n; i++ {
			var prev, cur int
			if dir == 0 {
				prev, cur = xs[(i-1)%n], xs[i%n]
			} else {
				prev, cur = xs[(2*n-i)%n], xs[(2*n-i-1)%n]
			}
			if cur > prev {
				run++
				if run > best {
					best = run
				}
				if run >= n { // fully monotone cycle is impossible; cap
					break
				}
			} else {
				run = 0
			}
		}
	}
	if best > n-1 {
		best = n - 1
	}
	return best
}

// Parse resolves an assignment strategy by its String name ("random",
// "increasing", …) — the dialect the CLIs and the job server share.
func Parse(s string) (Assignment, error) {
	for _, a := range All() {
		if a.String() == s {
			return a, nil
		}
	}
	return 0, fmt.Errorf("%w %q", ErrUnknownAssignment, s)
}
