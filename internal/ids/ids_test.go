package ids

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestGenerateAllAssignmentsValid(t *testing.T) {
	for _, a := range All() {
		for _, n := range []int{3, 4, 10, 100} {
			xs, err := Generate(a, n, 42)
			if err != nil {
				t.Fatalf("%s n=%d: %v", a, n, err)
			}
			if len(xs) != n {
				t.Fatalf("%s n=%d: got %d ids", a, n, len(xs))
			}
			if !Unique(xs) {
				t.Errorf("%s n=%d: identifiers not unique", a, n)
			}
			if !ProperOnCycle(xs) {
				t.Errorf("%s n=%d: identifiers not proper on cycle", a, n)
			}
		}
	}
}

func TestGenerateUnknown(t *testing.T) {
	if _, err := Generate(Assignment(99), 5, 0); !errors.Is(err, ErrUnknownAssignment) {
		t.Errorf("err = %v, want ErrUnknownAssignment", err)
	}
	if _, err := Generate(Random, -1, 0); err == nil {
		t.Error("accepted negative n")
	}
}

func TestAssignmentString(t *testing.T) {
	if Random.String() != "random" {
		t.Errorf("Random.String() = %q", Random)
	}
	if got := Assignment(99).String(); got != "assignment(99)" {
		t.Errorf("unknown String() = %q", got)
	}
}

func TestIncreasing(t *testing.T) {
	xs := MustGenerate(Increasing, 5, 0)
	want := []int{1, 2, 3, 4, 5}
	for i := range want {
		if xs[i] != want[i] {
			t.Fatalf("Increasing = %v, want %v", xs, want)
		}
	}
	if got := LongestMonotoneChain(xs); got != 4 {
		t.Errorf("chain = %d, want 4", got)
	}
}

func TestDecreasing(t *testing.T) {
	xs := MustGenerate(Decreasing, 4, 0)
	if xs[0] != 4 || xs[3] != 1 {
		t.Errorf("Decreasing = %v", xs)
	}
	// The longest increasing chain in a decreasing cycle follows the other
	// direction: still n−1.
	if got := LongestMonotoneChain(xs); got != 3 {
		t.Errorf("chain = %d, want 3", got)
	}
}

func TestZigzagIsAllExtrema(t *testing.T) {
	xs := MustGenerate(Zigzag, 8, 0)
	n := len(xs)
	for i := range xs {
		prev, next := xs[(i+n-1)%n], xs[(i+1)%n]
		isMax := xs[i] > prev && xs[i] > next
		isMin := xs[i] < prev && xs[i] < next
		if !isMax && !isMin {
			t.Errorf("node %d (%v) is not a local extremum", i, xs)
		}
	}
	if got := LongestMonotoneChain(xs); got != 1 {
		t.Errorf("chain = %d, want 1", got)
	}
}

func TestSpacedIncreasingBitLengths(t *testing.T) {
	xs := MustGenerate(SpacedIncreasing, 16, 0)
	if xs[0] != 16 {
		t.Errorf("first = %d, want 16", xs[0])
	}
	if xs[15] != 256 {
		t.Errorf("last = %d, want 256", xs[15])
	}
}

func TestRandomIDsRangeAndSeedStability(t *testing.T) {
	a := RandomIDs(50, 7)
	b := RandomIDs(50, 7)
	c := RandomIDs(50, 8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different ids")
		}
		if a[i] < 0 || a[i] >= 50*50 {
			t.Fatalf("id %d outside [0, n²)", a[i])
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical ids")
	}
}

func TestUnique(t *testing.T) {
	tests := []struct {
		xs   []int
		want bool
	}{
		{nil, true},
		{[]int{1, 2, 3}, true},
		{[]int{1, 1}, false},
		{[]int{-1, 2}, false},
	}
	for _, tt := range tests {
		if got := Unique(tt.xs); got != tt.want {
			t.Errorf("Unique(%v) = %t", tt.xs, got)
		}
	}
}

func TestProperOnCycle(t *testing.T) {
	tests := []struct {
		xs   []int
		want bool
	}{
		{[]int{1, 2}, false},          // too short
		{[]int{1, 2, 3}, true},        //
		{[]int{1, 2, 1, 2}, true},     // proper but not unique: allowed
		{[]int{1, 2, 2}, false},       // adjacent equal
		{[]int{1, 2, 1}, false},       // wraparound equal (xs[2] vs xs[0])
		{[]int{0, 1, 0, -1}, false},   // negative
		{[]int{5, 9, 5, 9, 5}, false}, // odd cycle wrap collision
	}
	for _, tt := range tests {
		if got := ProperOnCycle(tt.xs); got != tt.want {
			t.Errorf("ProperOnCycle(%v) = %t, want %t", tt.xs, got, tt.want)
		}
	}
}

func TestLongestMonotoneChainWrap(t *testing.T) {
	// The maximal increasing run crosses the seam: 1→4→5 at the end
	// continues with 6→7 at the start, 4 edges in total.
	xs := []int{6, 7, 1, 4, 5}
	if got := LongestMonotoneChain(xs); got != 4 {
		t.Errorf("chain = %d, want 4 (1→4→5→6→7)", got)
	}
}

func TestLongestMonotoneChainDegenerate(t *testing.T) {
	if got := LongestMonotoneChain([]int{5}); got != 0 {
		t.Errorf("single = %d", got)
	}
	if got := LongestMonotoneChain(nil); got != 0 {
		t.Errorf("nil = %d", got)
	}
}

// TestRandomIDsUniqueQuick: RandomIDs always yields distinct ids.
func TestRandomIDsUniqueQuick(t *testing.T) {
	prop := func(seed int64, rawN uint8) bool {
		n := int(rawN) % 200
		return Unique(RandomIDs(n, seed))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestChainBoundQuick: the longest monotone chain is at most n−1.
func TestChainBoundQuick(t *testing.T) {
	prop := func(seed int64, rawN uint8) bool {
		n := 3 + int(rawN)%100
		xs := RandomIDs(n, seed)
		c := LongestMonotoneChain(xs)
		return c >= 1 && c <= n-1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
