package agree

import (
	"strings"
	"testing"

	"asynccycle/internal/graph"
	"asynccycle/internal/model"
	"asynccycle/internal/sim"
)

// newEngine builds the shared-memory (complete communication graph)
// engine for the given input vector.
func newEngine(t *testing.T, h ValueGraph, inputs []int, mode sim.Mode) *sim.Engine[Val] {
	t.Helper()
	g, err := graph.Complete(len(inputs))
	if err != nil {
		t.Fatal(err)
	}
	var nodes []sim.Node[Val]
	if h.Cycle {
		nodes = NewCycleNodes(inputs, h.M)
	} else {
		nodes = NewPathNodes(inputs, h.M)
	}
	e, err := sim.NewEngine(g, nodes)
	if err != nil {
		t.Fatal(err)
	}
	e.SetMode(mode)
	return e
}

// allInputs enumerates [0,m)^n.
func allInputs(m, n int) [][]int {
	total := 1
	for i := 0; i < n; i++ {
		total *= m
	}
	out := make([][]int, 0, total)
	for s := 0; s < total; s++ {
		in := make([]int, n)
		v := s
		for i := range in {
			in[i] = v % m
			v /= m
		}
		out = append(out, in)
	}
	return out
}

// certify model-checks one (H, inputs, mode) instance exhaustively: at
// every reachable configuration — so under every crash pattern — the
// terminated outputs must satisfy edge-agreement, range, and validity
// relative to the inputs. Returns the exploration report.
func certify(t *testing.T, h ValueGraph, inputs []int, mode sim.Mode) model.Report {
	t.Helper()
	e := newEngine(t, h, inputs, mode)
	inv := func(e *sim.Engine[Val]) error {
		r := e.Result()
		if err := EdgeAgreement(h, r); err != nil {
			return err
		}
		if err := Range(h, r); err != nil {
			return err
		}
		return HullValid(h, inputs, r)
	}
	rep := model.Explore(e, model.Options{}, inv)
	if !rep.Ok() {
		t.Fatalf("%s inputs=%v mode=%v: %s\nviolations=%v", h.Name(), inputs, mode, rep.String(), rep.Violations)
	}
	return rep
}

// TestPathCertificates is half of the E23 certificate: exhaustive
// model checking of the path protocol on P3 and P4 for 2 and 3
// processes, all m^n input vectors, both activation modes.
func TestPathCertificates(t *testing.T) {
	for _, m := range []int{3, 4} {
		h := Path(m)
		for _, n := range []int{2, 3} {
			states := 0
			for _, inputs := range allInputs(m, n) {
				for _, mode := range []sim.Mode{sim.ModeInterleaved, sim.ModeSimultaneous} {
					rep := certify(t, h, inputs, mode)
					states += rep.States
				}
			}
			t.Logf("%s n=%d: all %d input vectors certified in both modes (%d states)",
				h.Name(), n, len(allInputs(m, n)), states)
		}
	}
}

// TestCycleCertificates is the other half of E23: the two-process
// one-shot protocol on cycle values C4 and C5, all input pairs, both
// modes. (Three processes on a cycle is AER's impossibility — there is
// deliberately nothing to certify there.)
func TestCycleCertificates(t *testing.T) {
	for _, m := range []int{4, 5} {
		h := CycleGraph(m)
		states := 0
		for _, inputs := range allInputs(m, 2) {
			for _, mode := range []sim.Mode{sim.ModeInterleaved, sim.ModeSimultaneous} {
				rep := certify(t, h, inputs, mode)
				states += rep.States
			}
		}
		t.Logf("%s n=2: all %d input pairs certified in both modes (%d states)", h.Name(), m*m, states)
	}
}

// TestPathBoundTight: the worst-case activation count over all schedules
// is exactly Rounds() for every process — the registered Bound is tight
// and never exceeded.
func TestPathBoundTight(t *testing.T) {
	for _, m := range []int{3, 4} {
		h := Path(m)
		for _, n := range []int{2, 3} {
			worstEver := 0
			for _, inputs := range allInputs(m, n) {
				e := newEngine(t, h, inputs, sim.ModeInterleaved)
				vec, ok, rep := model.WorstActivations(e, model.Options{})
				if !ok {
					t.Fatalf("%s inputs=%v: inconclusive: %s", h.Name(), inputs, rep.String())
				}
				for _, w := range vec {
					if w > h.Rounds() {
						t.Fatalf("%s inputs=%v: worst activations %v exceed bound %d", h.Name(), inputs, vec, h.Rounds())
					}
					if w > worstEver {
						worstEver = w
					}
				}
			}
			if worstEver != h.Rounds() {
				t.Errorf("%s n=%d: worst over all inputs = %d, want the bound %d to be tight", h.Name(), n, worstEver, h.Rounds())
			}
		}
	}
}

// TestCycleSolo pins the solo behavior and the impossibility of a double
// solo: a process activated before the other publishes outputs its own
// input, and since each publishes before reading, at most one can be solo.
func TestCycleSolo(t *testing.T) {
	h := CycleGraph(4)
	e := newEngine(t, h, []int{0, 2}, sim.ModeInterleaved)
	e.Step([]int{0}) // process 0 runs solo: sees no one, outputs its input 0
	e.Step([]int{1}) // process 1 sees 0's register: must output a meet adjacent to 0
	r := e.Result()
	if !r.Done[0] || !r.Done[1] {
		t.Fatalf("both must decide in one activation: %+v", r.Done)
	}
	if r.Outputs[0] != 0 {
		t.Fatalf("solo process must output its own input, got %d", r.Outputs[0])
	}
	if d := h.Dist(r.Outputs[0], r.Outputs[1]); d > 1 {
		t.Fatalf("outputs %v are at distance %d", r.Outputs, d)
	}
	if err := HullValid(h, []int{0, 2}, r); err != nil {
		t.Fatal(err)
	}
}

// TestMeetGeometry pins meet()'s corner cases, including the C5 pair
// (0,3) whose sole common neighbor is 4 — the case that forces a search
// rather than midpoint arithmetic.
func TestMeetGeometry(t *testing.T) {
	c5 := CycleGraph(5)
	if got := meet(c5, 0, 3); got != 4 {
		t.Fatalf("meet_C5(0,3) = %d, want 4", got)
	}
	c4 := CycleGraph(4)
	if got := meet(c4, 0, 2); got != 1 {
		t.Fatalf("meet_C4(0,2) = %d, want smallest common neighbor 1", got)
	}
	if got := meet(c4, 3, 0); got != 0 {
		t.Fatalf("meet_C4(3,0) = %d, want smaller endpoint 0 (3 and 0 are ring-adjacent)", got)
	}
	if got := meet(c4, 2, 2); got != 2 {
		t.Fatalf("meet_C4(2,2) = %d, want 2", got)
	}
}

// TestContractShape: the registered contract is labeled, wait-free
// bounded, and its violations carry the contract=/property= provenance.
func TestContractShape(t *testing.T) {
	h := Path(3)
	ct := Contract(h)
	if !ct.Labeled() {
		t.Fatal("agree ships an explicit labeled contract")
	}
	g, gerr := graph.Complete(2)
	if gerr != nil {
		t.Fatal(gerr)
	}
	bad := sim.Result{Outputs: []int{0, 2}, Done: []bool{true, true}}
	err := ct.Safety(g, bad)
	if err == nil {
		t.Fatal("outputs 0 and 2 on P3 are not edge-agreeing")
	}
	if !strings.Contains(err.Error(), "contract=approx-agreement property=edge-agreement") {
		t.Fatalf("violation label = %q", err)
	}
	if ct.Liveness().String() != "wait-free-bounded" {
		t.Fatalf("liveness = %s", ct.Liveness())
	}
}

// TestRoundsScale pins R for the palettes in use.
func TestRoundsScale(t *testing.T) {
	for _, tc := range []struct{ m, r int }{{2, 1}, {3, 2}, {4, 2}, {5, 3}} {
		if got := Path(tc.m).Rounds(); got != tc.r {
			t.Fatalf("Rounds(P%d) = %d, want %d", tc.m, got, tc.r)
		}
	}
}
