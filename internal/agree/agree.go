// Package agree implements wait-free approximate agreement on graphs
// (after Alistarh, Ellen, Rybicki, arXiv:2103.08949): processes
// communicate through shared memory (the complete communication graph,
// i.e. every snapshot sees every register), inputs are vertices of a
// *value graph* H, and the outputs of all non-crashed processes must lie
// on a single edge (or single vertex) of H while staying "between" the
// inputs. The interesting axis is the shape of H, not of the
// communication graph:
//
//   - H a path P_m: solvable wait-free for any number of processes. The
//     protocol is the classic jump-or-midpoint iteration made exact over
//     the integers: positions are scaled by S = 2^R, every round halves
//     the spread (midpoints of round-r values always share the
//     chronologically first-published round-r value), and after
//     R = ⌈log₂(m-1)⌉₊ rounds the spread is below S, so flooring back to
//     vertices lands all outputs on one edge.
//
//   - H a cycle C_m (m ≥ 4): NOT solvable wait-free for three or more
//     processes — AER's central impossibility. For two processes it is
//     solvable whenever H has diameter ≤ 2 (so C4 and C5): a one-shot
//     protocol where each process publishes its input, snapshots the
//     other register, and outputs a canonical "meet" vertex adjacent to
//     both inputs. At most one process can fail to see the other (the
//     engine's write-then-read rounds make double-solo impossible), and
//     the meet is adjacent to either solo output.
//
// Identifiers double as inputs: a process with id x starts on vertex
// x mod m, so any identifier assignment denotes an input vector and
// exhaustive input sweeps are ordinary id sweeps with repetition.
// Certificates live in the package tests and EXPERIMENTS.md E23.
package agree

import (
	"fmt"
	"math/bits"

	"asynccycle/internal/contract"
	"asynccycle/internal/graph"
	"asynccycle/internal/sim"
)

// ValueGraph is the graph H the values live on: a path P_m (vertices
// 0..m-1 along the path) or a cycle C_m (vertices 0..m-1 around the
// ring).
type ValueGraph struct {
	M     int
	Cycle bool
}

// Path returns P_m (m ≥ 2).
func Path(m int) ValueGraph { return ValueGraph{M: m} }

// CycleGraph returns C_m (m ≥ 3).
func CycleGraph(m int) ValueGraph { return ValueGraph{M: m, Cycle: true} }

// Name renders "P3", "C4", ….
func (h ValueGraph) Name() string {
	if h.Cycle {
		return fmt.Sprintf("C%d", h.M)
	}
	return fmt.Sprintf("P%d", h.M)
}

// Dist is the graph distance between two vertices of H.
func (h ValueGraph) Dist(a, b int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if h.Cycle && h.M-d < d {
		d = h.M - d
	}
	return d
}

// Vertex normalizes an identifier into a vertex of H.
func (h ValueGraph) Vertex(x int) int { return ((x % h.M) + h.M) % h.M }

// Rounds returns the number of halving rounds R of the path protocol:
// the least R with 2^R > m-1, so the scaled spread (m-1)·2^R contracts
// below the scale 2^R. It is also the protocol's exact per-process
// wait-freedom bound — every activation advances a process's round by at
// least one, and a process decides when its round reaches R.
func (h ValueGraph) Rounds() int { return bits.Len(uint(h.M - 1)) }

// Val is the register value: a round tag and a scaled position.
type Val struct {
	R int
	X int
}

// HashFingerprint implements sim.Hashable.
func (v *Val) HashFingerprint(fp *sim.FPHasher) {
	fp.HashInt(v.R)
	fp.HashInt(v.X)
}

// PathNode runs the jump-or-midpoint protocol on path values.
type PathNode struct {
	rmax  int // final round R
	scale int // S = 2^R
	r     int
	x     int
}

// NewPathNodes builds the processes for value graph P_m; identifiers map
// to input vertices via Vertex.
func NewPathNodes(xs []int, m int) []sim.Node[Val] {
	h := Path(m)
	rmax := h.Rounds()
	scale := 1 << rmax
	nodes := make([]sim.Node[Val], len(xs))
	for i, x := range xs {
		nodes[i] = &PathNode{rmax: rmax, scale: scale, x: h.Vertex(x) * scale}
	}
	return nodes
}

// Publish writes the current round-tagged scaled position.
func (nd *PathNode) Publish() Val { return Val{R: nd.r, X: nd.x} }

// Observe implements one jump-or-midpoint round. Seen values are the own
// state plus every present register; a higher round anywhere makes the
// node jump (adopt the smallest position at the highest round), otherwise
// it advances by taking the midpoint of the seen positions at its own
// round. Midpoints stay exact integers: round-r positions are divisible
// by 2^(R-r). The node decides once its round reaches R, flooring the
// scaled position back to a vertex.
func (nd *PathNode) Observe(view []sim.Cell[Val]) sim.Decision {
	best := nd.r
	for _, c := range view {
		if c.Present && c.Val.R > best {
			best = c.Val.R
		}
	}
	if best > nd.r {
		minX := -1
		for _, c := range view {
			if c.Present && c.Val.R == best && (minX < 0 || c.Val.X < minX) {
				minX = c.Val.X
			}
		}
		nd.r, nd.x = best, minX
	} else {
		lo, hi := nd.x, nd.x
		for _, c := range view {
			if c.Present && c.Val.R == nd.r {
				if c.Val.X < lo {
					lo = c.Val.X
				}
				if c.Val.X > hi {
					hi = c.Val.X
				}
			}
		}
		nd.r, nd.x = nd.r+1, (lo+hi)/2
	}
	if nd.r >= nd.rmax {
		return sim.Decision{Return: true, Output: nd.x / nd.scale}
	}
	return sim.Decision{}
}

// Clone implements sim.Node.
func (nd *PathNode) Clone() sim.Node[Val] { cp := *nd; return &cp }

// HashFingerprint implements sim.Hashable.
func (nd *PathNode) HashFingerprint(fp *sim.FPHasher) {
	fp.HashInt(nd.r)
	fp.HashInt(nd.x)
}

// CycleNode runs the two-process one-shot protocol on cycle values of
// diameter ≤ 2 (C4, C5). It decides on its first activation.
type CycleNode struct {
	h ValueGraph
	v int
}

// NewCycleNodes builds the two processes for value graph C_m (m ∈ {4,5};
// callers pin the process count to 2 — AER prove three processes cannot
// solve cycles).
func NewCycleNodes(xs []int, m int) []sim.Node[Val] {
	h := CycleGraph(m)
	nodes := make([]sim.Node[Val], len(xs))
	for i, x := range xs {
		nodes[i] = &CycleNode{h: h, v: h.Vertex(x)}
	}
	return nodes
}

// Publish writes the input vertex.
func (nd *CycleNode) Publish() Val { return Val{X: nd.v} }

// Observe decides immediately: the own input when the other register is
// still ⊥ (solo), otherwise the canonical meet of the two inputs. The
// engine's write-then-read rounds make it impossible for both processes
// to run solo, and the meet is adjacent to both inputs, so the two
// outputs always share an edge of H.
func (nd *CycleNode) Observe(view []sim.Cell[Val]) sim.Decision {
	out := nd.v
	for _, c := range view {
		if c.Present {
			out = meet(nd.h, nd.v, c.Val.X)
			break
		}
	}
	return sim.Decision{Return: true, Output: out}
}

// Clone implements sim.Node.
func (nd *CycleNode) Clone() sim.Node[Val] { cp := *nd; return &cp }

// HashFingerprint implements sim.Hashable.
func (nd *CycleNode) HashFingerprint(fp *sim.FPHasher) {
	fp.HashInt(nd.v)
	fp.HashBool(nd.h.Cycle)
}

// meet returns the canonical vertex adjacent-or-equal to both u and w
// (defined whenever dist(u,w) ≤ 2): u itself when equal, the
// smaller-numbered endpoint when adjacent, and the smallest common
// neighbor at distance two. Both processes compute the same meet, and a
// solo output (u or w) is adjacent to it.
func meet(h ValueGraph, u, w int) int {
	switch h.Dist(u, w) {
	case 0:
		return u
	case 1:
		if u < w {
			return u
		}
		return w
	default:
		for c := 0; c < h.M; c++ {
			if h.Dist(c, u) == 1 && h.Dist(c, w) == 1 {
				return c
			}
		}
	}
	return -1 // unreachable: callers restrict H to diameter ≤ 2
}

// Contract is the approximate-agreement correctness contract for value
// graph H: every pair of outputs lies on one edge of H (ε-agreement with
// ε = one edge), and every output is a vertex of H. Validity relative to
// the inputs (outputs between the inputs) is checked by the exhaustive
// certificates, which know the input vector — a Result alone does not
// carry it.
func Contract(h ValueGraph) *contract.Terminating {
	return &contract.Terminating{
		Name: "approx-agreement",
		Props: []contract.Property{
			{Name: "edge-agreement", Check: func(_ graph.Graph, r sim.Result) error { return EdgeAgreement(h, r) }},
			{Name: "range", Check: func(_ graph.Graph, r sim.Result) error { return Range(h, r) }},
		},
		Kind: contract.WaitFreeBounded,
	}
}

// EdgeAgreement checks that the outputs of all terminated processes are
// pairwise at distance ≤ 1 in H.
func EdgeAgreement(h ValueGraph, r sim.Result) error {
	for i := range r.Outputs {
		if !r.Done[i] {
			continue
		}
		for j := i + 1; j < len(r.Outputs); j++ {
			if !r.Done[j] {
				continue
			}
			if d := h.Dist(r.Outputs[i], r.Outputs[j]); d > 1 {
				return fmt.Errorf("outputs %d (process %d) and %d (process %d) are at distance %d in %s",
					r.Outputs[i], i, r.Outputs[j], j, d, h.Name())
			}
		}
	}
	return nil
}

// Range checks that every terminated process output a vertex of H.
func Range(h ValueGraph, r sim.Result) error {
	for i, o := range r.Outputs {
		if r.Done[i] && (o < 0 || o >= h.M) {
			return fmt.Errorf("process %d output %d outside the vertices of %s", i, o, h.Name())
		}
	}
	return nil
}

// HullValid is the input-relative validity predicate used by the
// exhaustive certificates: on a path, outputs lie between the least and
// greatest input; on a cycle with two inputs, outputs lie on a shortest
// path between them.
func HullValid(h ValueGraph, inputs []int, r sim.Result) error {
	vs := make([]int, len(inputs))
	for i, x := range inputs {
		vs[i] = h.Vertex(x)
	}
	if !h.Cycle {
		lo, hi := vs[0], vs[0]
		for _, v := range vs[1:] {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		for i, o := range r.Outputs {
			if r.Done[i] && (o < lo || o > hi) {
				return fmt.Errorf("process %d output %d outside input hull [%d,%d]", i, o, lo, hi)
			}
		}
		return nil
	}
	if len(vs) != 2 {
		return fmt.Errorf("cycle hull validity is defined for 2 processes, got %d", len(vs))
	}
	for i, o := range r.Outputs {
		if r.Done[i] && h.Dist(o, vs[0])+h.Dist(o, vs[1]) != h.Dist(vs[0], vs[1]) {
			return fmt.Errorf("process %d output %d not on a shortest path between inputs %d and %d", i, o, vs[0], vs[1])
		}
	}
	return nil
}
