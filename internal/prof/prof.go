// Package prof implements the standard -cpuprofile/-memprofile pprof hooks
// shared by every command in cmd/, so any run of the checker, the harness,
// the bench driver, or the demo CLI can be profiled without code changes.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath (when non-empty) and returns a
// stop function that finalizes the CPU profile and writes a heap profile
// to memPath (when non-empty). Call the stop function exactly once, on
// every exit path — typically via defer right after a successful Start.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: start cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("prof: close cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("prof: create mem profile: %w", err)
			}
			defer f.Close()
			runtime.GC() // get up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("prof: write mem profile: %w", err)
			}
		}
		return nil
	}, nil
}
