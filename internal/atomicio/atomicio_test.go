package atomicio

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileCreatesAndReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "report.json")

	if err := WriteFile(path, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "v1" {
		t.Fatalf("read back %q, %v", got, err)
	}

	if err := WriteFile(path, []byte("v2 longer payload"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err = os.ReadFile(path)
	if err != nil || string(got) != "v2 longer payload" {
		t.Fatalf("read back %q, %v", got, err)
	}
}

func TestWriteFileLeavesNoTempDebris(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("temp file left behind: %s", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Errorf("directory has %d entries, want 1", len(entries))
	}
}

// TestWriteFileFailureKeepsOldContent pins the whole point of the helper:
// a failed write must leave the previous complete file untouched (the
// os.WriteFile it replaces truncates the destination before writing).
func TestWriteFileFailureKeepsOldContent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "keep.json")
	if err := WriteFile(path, []byte("precious baseline"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Force a failure: write into a directory that does not exist.
	if err := WriteFile(filepath.Join(dir, "missing", "x.json"), []byte("y"), 0o644); err == nil {
		t.Fatal("write into a missing directory succeeded")
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "precious baseline" {
		t.Fatalf("old file damaged: %q, %v", got, err)
	}
}
