// Package atomicio provides crash-safe report writing for the tools that
// persist JSON baselines (BENCH_core.json, BENCH_serve.json, metrics
// snapshots): write the whole payload to a temporary file in the target's
// directory, sync it, then rename it over the destination. An interrupted
// or crashed writer leaves either the old complete file or the new
// complete file — never a truncated one.
package atomicio

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFile atomically replaces the file at path with data. The temporary
// file is created in path's directory (renames across filesystems are not
// atomic), fsynced before the rename, and removed on any failure. perm
// applies to newly created files; an existing destination keeps its mode
// on platforms where rename preserves it.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	tmpName := tmp.Name()
	// Any failure path removes the temp file; the destination is only
	// touched by the final rename.
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("atomicio: %w", err)
	}
	if err := tmp.Chmod(perm); err != nil {
		return fail(err)
	}
	if _, err := tmp.Write(data); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("atomicio: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("atomicio: %w", err)
	}
	return nil
}
