package schedule

import (
	"testing"
)

// fakeState is a hand-controlled schedule.State.
type fakeState struct {
	n       int
	time    int
	stopped map[int]bool
	acts    map[int]int
}

func newFakeState(n int) *fakeState {
	return &fakeState{n: n, time: 1, stopped: map[int]bool{}, acts: map[int]int{}}
}

func (f *fakeState) N() int                { return f.n }
func (f *fakeState) Time() int             { return f.time }
func (f *fakeState) Working(i int) bool    { return !f.stopped[i] }
func (f *fakeState) Activations(i int) int { return f.acts[i] }

func TestSynchronous(t *testing.T) {
	st := newFakeState(4)
	st.stopped[2] = true
	got := Synchronous{}.Next(st)
	want := []int{0, 1, 3}
	if len(got) != len(want) {
		t.Fatalf("Next = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Next = %v, want %v", got, want)
		}
	}
	if (Synchronous{}).Name() == "" {
		t.Error("empty name")
	}
}

func TestRoundRobinWidthOne(t *testing.T) {
	st := newFakeState(3)
	rr := NewRoundRobin(1)
	var order []int
	for i := 0; i < 6; i++ {
		chosen := rr.Next(st)
		if len(chosen) != 1 {
			t.Fatalf("width-1 chose %v", chosen)
		}
		order = append(order, chosen[0])
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestRoundRobinSkipsStopped(t *testing.T) {
	st := newFakeState(3)
	st.stopped[1] = true
	rr := NewRoundRobin(1)
	var order []int
	for i := 0; i < 4; i++ {
		order = append(order, rr.Next(st)[0])
	}
	for _, i := range order {
		if i == 1 {
			t.Fatalf("scheduled stopped process: %v", order)
		}
	}
}

func TestRoundRobinWidthClamped(t *testing.T) {
	rr := NewRoundRobin(0)
	if rr.Width != 1 {
		t.Errorf("width = %d, want clamp to 1", rr.Width)
	}
}

func TestRoundRobinWide(t *testing.T) {
	st := newFakeState(5)
	rr := NewRoundRobin(3)
	first := rr.Next(st)
	if len(first) != 3 {
		t.Fatalf("chose %v, want 3 processes", first)
	}
	second := rr.Next(st)
	if second[0] != (first[len(first)-1]+1)%5 {
		t.Fatalf("second batch %v does not continue after %v", second, first)
	}
}

func TestRandomSubsetAlwaysProgresses(t *testing.T) {
	st := newFakeState(6)
	s := NewRandomSubset(0.01, 7) // tiny p: relies on the at-least-one rule
	for i := 0; i < 100; i++ {
		if got := s.Next(st); len(got) == 0 {
			t.Fatal("RandomSubset returned empty set with working processes")
		}
	}
}

func TestRandomSubsetEmptyWhenAllStopped(t *testing.T) {
	st := newFakeState(3)
	for i := 0; i < 3; i++ {
		st.stopped[i] = true
	}
	if got := NewRandomSubset(0.5, 1).Next(st); len(got) != 0 {
		t.Fatalf("chose %v from no working processes", got)
	}
}

func TestRandomSubsetClampsP(t *testing.T) {
	if s := NewRandomSubset(-1, 0); s.P <= 0 || s.P > 1 {
		t.Errorf("p = %v not clamped", s.P)
	}
	if s := NewRandomSubset(7, 0); s.P != 1 {
		t.Errorf("p = %v, want 1", s.P)
	}
}

func TestRandomOne(t *testing.T) {
	st := newFakeState(5)
	st.stopped[0] = true
	s := NewRandomOne(3)
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		got := s.Next(st)
		if len(got) != 1 {
			t.Fatalf("chose %v", got)
		}
		if got[0] == 0 {
			t.Fatal("scheduled stopped process 0")
		}
		seen[got[0]] = true
	}
	if len(seen) != 4 {
		t.Errorf("only ever chose %v; want all 4 working processes", seen)
	}
	st2 := newFakeState(1)
	st2.stopped[0] = true
	if got := s.Next(st2); got != nil {
		t.Errorf("chose %v from empty working set", got)
	}
}

// The documented contract: even-index processes move on odd steps (engine
// time is 1-based), odd-index processes on even steps.
func TestAlternatingParity(t *testing.T) {
	cases := []struct {
		time int
		want []int
	}{
		{time: 1, want: []int{0, 2, 4}},
		{time: 2, want: []int{1, 3}},
		{time: 3, want: []int{0, 2, 4}},
		{time: 4, want: []int{1, 3}},
		{time: 100, want: []int{1, 3}},
		{time: 101, want: []int{0, 2, 4}},
	}
	for _, c := range cases {
		st := newFakeState(5)
		st.time = c.time
		got := Alternating{}.Next(st)
		if len(got) != len(c.want) {
			t.Fatalf("t=%d: Next = %v, want %v", c.time, got, c.want)
		}
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Fatalf("t=%d: Next = %v, want %v", c.time, got, c.want)
			}
		}
	}
}

func TestAlternatingFallsBackWhenClassEmpty(t *testing.T) {
	st := newFakeState(4)
	st.stopped[0] = true
	st.stopped[2] = true // no even processes left
	st.time = 1          // odd step wants even processes
	got := Alternating{}.Next(st)
	if len(got) == 0 {
		t.Fatal("alternating starved the execution with working processes left")
	}
	for _, i := range got {
		if i%2 != 1 {
			t.Fatalf("fallback chose stopped process: %v", got)
		}
	}
}

func TestSleepWithholdsUntilWake(t *testing.T) {
	st := newFakeState(4)
	s := NewSleep([]int{0, 1}, 10, Synchronous{})
	st.time = 5
	for _, i := range s.Next(st) {
		if i == 0 || i == 1 {
			t.Fatal("sleeping process scheduled before wake time")
		}
	}
	st.time = 10
	got := s.Next(st)
	found := false
	for _, i := range got {
		if i == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("sleeping process not scheduled at wake time")
	}
	if s.Name() == "" {
		t.Error("empty name")
	}
}

func TestBurstGivesConsecutiveSoloSteps(t *testing.T) {
	st := newFakeState(3)
	b := NewBurst(3)
	var order []int
	for i := 0; i < 9; i++ {
		got := b.Next(st)
		if len(got) != 1 {
			t.Fatalf("burst chose %v", got)
		}
		order = append(order, got[0])
	}
	want := []int{0, 0, 0, 1, 1, 1, 2, 2, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestBurstSkipsStopped(t *testing.T) {
	st := newFakeState(3)
	st.stopped[0] = true
	b := NewBurst(2)
	got := b.Next(st)
	if len(got) != 1 || got[0] == 0 {
		t.Fatalf("burst chose %v with process 0 stopped", got)
	}
	for i := 0; i < 3; i++ {
		st.stopped[i] = true
	}
	if got := b.Next(st); got != nil {
		t.Fatalf("burst chose %v from empty working set", got)
	}
}

func TestBurstClampsK(t *testing.T) {
	if b := NewBurst(0); b.K != 1 {
		t.Errorf("k = %d, want 1", b.K)
	}
}

func TestSchedulerNamesDistinct(t *testing.T) {
	names := map[string]bool{}
	for _, s := range []Scheduler{
		Synchronous{}, NewRoundRobin(1), NewRoundRobin(2),
		NewRandomSubset(0.5, 0), NewRandomOne(0), Alternating{},
		NewBurst(2), NewSleep(nil, 5, Synchronous{}),
	} {
		if names[s.Name()] {
			t.Errorf("duplicate scheduler name %q", s.Name())
		}
		names[s.Name()] = true
	}
}

// Waking exactly at WakeAt: the boundary step itself already includes the
// sleepers (Time() >= WakeAt), not just the steps after it.
func TestSleepWakesExactlyAtBoundary(t *testing.T) {
	st := newFakeState(3)
	s := NewSleep([]int{0}, 7, Synchronous{})
	st.time = 6
	for _, i := range s.Next(st) {
		if i == 0 {
			t.Fatal("sleeper scheduled one step before WakeAt")
		}
	}
	st.time = 7
	woke := false
	for _, i := range s.Next(st) {
		if i == 0 {
			woke = true
		}
	}
	if !woke {
		t.Fatal("sleeper not scheduled on the WakeAt step itself")
	}
}

// When every working process is asleep, Sleep returns an empty step (the
// engine's empty-streak logic handles the starvation); it must not leak a
// sleeper early.
func TestSleepAllAsleepYieldsEmptyStep(t *testing.T) {
	st := newFakeState(3)
	s := NewSleep([]int{0, 1, 2}, 50, Synchronous{})
	st.time = 10
	if got := s.Next(st); len(got) != 0 {
		t.Fatalf("all-asleep step chose %v, want empty", got)
	}
}

// A process terminating mid-burst must not bleed its remaining budget into
// the successor: the next process gets a full fresh burst of K solo steps.
func TestBurstMidBurstTerminationResetsBudget(t *testing.T) {
	st := newFakeState(3)
	b := NewBurst(3)
	for i := 0; i < 2; i++ { // process 0 fires twice, mid-burst
		if got := b.Next(st); len(got) != 1 || got[0] != 0 {
			t.Fatalf("step %d chose %v, want [0]", i, got)
		}
	}
	st.stopped[0] = true // terminates with one step of its burst unused
	var order []int
	for i := 0; i < 3; i++ {
		got := b.Next(st)
		if len(got) != 1 {
			t.Fatalf("chose %v, want singleton", got)
		}
		order = append(order, got[0])
	}
	for i, want := range []int{1, 1, 1} {
		if order[i] != want {
			t.Fatalf("successor burst = %v, want [1 1 1] (full fresh burst)", order)
		}
	}
}

// With a single survivor the burst wraps around to the same process
// indefinitely instead of stalling after one burst.
func TestBurstSingleSurvivorWrapsAround(t *testing.T) {
	st := newFakeState(4)
	st.stopped[0] = true
	st.stopped[1] = true
	st.stopped[3] = true
	b := NewBurst(2)
	for i := 0; i < 7; i++ {
		got := b.Next(st)
		if len(got) != 1 || got[0] != 2 {
			t.Fatalf("step %d chose %v, want [2] (sole survivor)", i, got)
		}
	}
}
