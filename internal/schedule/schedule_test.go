package schedule

import (
	"testing"
)

// fakeState is a hand-controlled schedule.State.
type fakeState struct {
	n       int
	time    int
	stopped map[int]bool
	acts    map[int]int
}

func newFakeState(n int) *fakeState {
	return &fakeState{n: n, time: 1, stopped: map[int]bool{}, acts: map[int]int{}}
}

func (f *fakeState) N() int                { return f.n }
func (f *fakeState) Time() int             { return f.time }
func (f *fakeState) Working(i int) bool    { return !f.stopped[i] }
func (f *fakeState) Activations(i int) int { return f.acts[i] }

func TestSynchronous(t *testing.T) {
	st := newFakeState(4)
	st.stopped[2] = true
	got := Synchronous{}.Next(st)
	want := []int{0, 1, 3}
	if len(got) != len(want) {
		t.Fatalf("Next = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Next = %v, want %v", got, want)
		}
	}
	if (Synchronous{}).Name() == "" {
		t.Error("empty name")
	}
}

func TestRoundRobinWidthOne(t *testing.T) {
	st := newFakeState(3)
	rr := NewRoundRobin(1)
	var order []int
	for i := 0; i < 6; i++ {
		chosen := rr.Next(st)
		if len(chosen) != 1 {
			t.Fatalf("width-1 chose %v", chosen)
		}
		order = append(order, chosen[0])
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestRoundRobinSkipsStopped(t *testing.T) {
	st := newFakeState(3)
	st.stopped[1] = true
	rr := NewRoundRobin(1)
	var order []int
	for i := 0; i < 4; i++ {
		order = append(order, rr.Next(st)[0])
	}
	for _, i := range order {
		if i == 1 {
			t.Fatalf("scheduled stopped process: %v", order)
		}
	}
}

func TestRoundRobinWidthClamped(t *testing.T) {
	rr := NewRoundRobin(0)
	if rr.Width != 1 {
		t.Errorf("width = %d, want clamp to 1", rr.Width)
	}
}

func TestRoundRobinWide(t *testing.T) {
	st := newFakeState(5)
	rr := NewRoundRobin(3)
	first := rr.Next(st)
	if len(first) != 3 {
		t.Fatalf("chose %v, want 3 processes", first)
	}
	second := rr.Next(st)
	if second[0] != (first[len(first)-1]+1)%5 {
		t.Fatalf("second batch %v does not continue after %v", second, first)
	}
}

func TestRandomSubsetAlwaysProgresses(t *testing.T) {
	st := newFakeState(6)
	s := NewRandomSubset(0.01, 7) // tiny p: relies on the at-least-one rule
	for i := 0; i < 100; i++ {
		if got := s.Next(st); len(got) == 0 {
			t.Fatal("RandomSubset returned empty set with working processes")
		}
	}
}

func TestRandomSubsetEmptyWhenAllStopped(t *testing.T) {
	st := newFakeState(3)
	for i := 0; i < 3; i++ {
		st.stopped[i] = true
	}
	if got := NewRandomSubset(0.5, 1).Next(st); len(got) != 0 {
		t.Fatalf("chose %v from no working processes", got)
	}
}

func TestRandomSubsetClampsP(t *testing.T) {
	if s := NewRandomSubset(-1, 0); s.P <= 0 || s.P > 1 {
		t.Errorf("p = %v not clamped", s.P)
	}
	if s := NewRandomSubset(7, 0); s.P != 1 {
		t.Errorf("p = %v, want 1", s.P)
	}
}

func TestRandomOne(t *testing.T) {
	st := newFakeState(5)
	st.stopped[0] = true
	s := NewRandomOne(3)
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		got := s.Next(st)
		if len(got) != 1 {
			t.Fatalf("chose %v", got)
		}
		if got[0] == 0 {
			t.Fatal("scheduled stopped process 0")
		}
		seen[got[0]] = true
	}
	if len(seen) != 4 {
		t.Errorf("only ever chose %v; want all 4 working processes", seen)
	}
	st2 := newFakeState(1)
	st2.stopped[0] = true
	if got := s.Next(st2); got != nil {
		t.Errorf("chose %v from empty working set", got)
	}
}

func TestAlternating(t *testing.T) {
	st := newFakeState(5)
	st.time = 1 // odd step: odd parity
	got := Alternating{}.Next(st)
	for _, i := range got {
		if i%2 != 1 {
			t.Fatalf("odd step chose even process: %v", got)
		}
	}
	st.time = 2
	got = Alternating{}.Next(st)
	for _, i := range got {
		if i%2 != 0 {
			t.Fatalf("even step chose odd process: %v", got)
		}
	}
}

func TestAlternatingFallsBackWhenClassEmpty(t *testing.T) {
	st := newFakeState(4)
	st.stopped[1] = true
	st.stopped[3] = true // no odd processes left
	st.time = 1          // odd step wants odd processes
	got := Alternating{}.Next(st)
	if len(got) == 0 {
		t.Fatal("alternating starved the execution with working processes left")
	}
}

func TestSleepWithholdsUntilWake(t *testing.T) {
	st := newFakeState(4)
	s := NewSleep([]int{0, 1}, 10, Synchronous{})
	st.time = 5
	for _, i := range s.Next(st) {
		if i == 0 || i == 1 {
			t.Fatal("sleeping process scheduled before wake time")
		}
	}
	st.time = 10
	got := s.Next(st)
	found := false
	for _, i := range got {
		if i == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("sleeping process not scheduled at wake time")
	}
	if s.Name() == "" {
		t.Error("empty name")
	}
}

func TestBurstGivesConsecutiveSoloSteps(t *testing.T) {
	st := newFakeState(3)
	b := NewBurst(3)
	var order []int
	for i := 0; i < 9; i++ {
		got := b.Next(st)
		if len(got) != 1 {
			t.Fatalf("burst chose %v", got)
		}
		order = append(order, got[0])
	}
	want := []int{0, 0, 0, 1, 1, 1, 2, 2, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestBurstSkipsStopped(t *testing.T) {
	st := newFakeState(3)
	st.stopped[0] = true
	b := NewBurst(2)
	got := b.Next(st)
	if len(got) != 1 || got[0] == 0 {
		t.Fatalf("burst chose %v with process 0 stopped", got)
	}
	for i := 0; i < 3; i++ {
		st.stopped[i] = true
	}
	if got := b.Next(st); got != nil {
		t.Fatalf("burst chose %v from empty working set", got)
	}
}

func TestBurstClampsK(t *testing.T) {
	if b := NewBurst(0); b.K != 1 {
		t.Errorf("k = %d, want 1", b.K)
	}
}

func TestSchedulerNamesDistinct(t *testing.T) {
	names := map[string]bool{}
	for _, s := range []Scheduler{
		Synchronous{}, NewRoundRobin(1), NewRoundRobin(2),
		NewRandomSubset(0.5, 0), NewRandomOne(0), Alternating{},
		NewBurst(2), NewSleep(nil, 5, Synchronous{}),
	} {
		if names[s.Name()] {
			t.Errorf("duplicate scheduler name %q", s.Name())
		}
		names[s.Name()] = true
	}
}
