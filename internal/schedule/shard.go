package schedule

import "fmt"

// ShardBounds cuts the index space [0, n) into at most workers contiguous
// arcs and returns the cut points: arc w is [bounds[w], bounds[w+1]). The
// cuts are the contract shared between the ShardedRoundRobin scheduler
// (the serial reference semantics) and the big engine's parallel sharded
// executor, so both sides must compute them identically.
//
// Interior cuts are aligned to multiples of 64 so that the per-arc bitset
// words touched by concurrent shard workers never overlap (each worker
// writes bits only for its arc's interior [lo+1, hi−2]; with hi ≡ 0 mod 64
// the words holding bits ≤ hi−2 and the words holding bits ≥ hi+1 are
// disjoint). Arcs are at least minArc nodes long; when n is too small for
// the requested worker count the count shrinks, down to a single arc
// [0, n).
func ShardBounds(n, workers int) []int {
	const minArc = 128
	if workers < 1 {
		workers = 1
	}
	if max := n / minArc; workers > max {
		workers = max
	}
	if workers < 1 {
		workers = 1
	}
	bounds := make([]int, 0, workers+1)
	bounds = append(bounds, 0)
	for w := 1; w < workers; w++ {
		cut := (w * n / workers) &^ 63 // round down to a 64-bit word boundary
		if cut <= bounds[len(bounds)-1] {
			continue // degenerate arc after rounding; merge into neighbor
		}
		bounds = append(bounds, cut)
	}
	bounds = append(bounds, n)
	return bounds
}

// ShardedRoundRobin is the serial reference semantics of the big engine's
// sharded executor: the cycle is cut into arcs by ShardBounds, and each
// super-round activates, one process at a time, first every working
// interior node arc by arc in ascending order, then every working boundary
// node in ascending order. Interior nodes of one arc are non-adjacent to
// any node another arc's interior phase touches, so the per-arc interior
// subsequences commute — the parallel executor replays exactly this
// schedule (see DESIGN.md §11 for the legality argument).
type ShardedRoundRobin struct {
	// Workers is the requested arc count (clamped by ShardBounds).
	Workers int

	bounds []int
	phase  int // 0 = interior scan, 1 = boundary scan
	arc    int // current arc during the interior phase
	pos    int // next candidate index within the current phase
}

// NewShardedRoundRobin returns a sharded round-robin scheduler with the
// given worker count (≥ 1).
func NewShardedRoundRobin(workers int) *ShardedRoundRobin {
	if workers < 1 {
		workers = 1
	}
	return &ShardedRoundRobin{Workers: workers}
}

// Name implements Scheduler.
func (s *ShardedRoundRobin) Name() string {
	return fmt.Sprintf("sharded-rr(%d)", s.Workers)
}

// Next implements Scheduler: singleton activations in canonical sharded
// order. One call scans at most one full super-round; if no working node
// exists it returns nil.
func (s *ShardedRoundRobin) Next(st State) []int {
	n := st.N()
	if s.bounds == nil {
		s.bounds = ShardBounds(n, s.Workers)
		s.arc, s.pos, s.phase = 0, s.interiorLo(0), 0
	}
	arcs := len(s.bounds) - 1
	// Scan forward through the canonical order until a working node is
	// found, wrapping at most once (one full super-round).
	for scanned := 0; scanned <= n+2*arcs; scanned++ {
		if s.phase == 0 {
			hi := s.bounds[s.arc+1]
			if s.pos <= hi-2 {
				i := s.pos
				s.pos++
				if st.Working(i) {
					return []int{i}
				}
				continue
			}
			// Interior of this arc exhausted: next arc, or boundary phase.
			s.arc++
			if s.arc < arcs {
				s.pos = s.interiorLo(s.arc)
				continue
			}
			s.phase, s.pos = 1, 0
			continue
		}
		// Boundary phase: boundaries ascending are lo_w, hi_w−1 for each
		// arc in order.
		if s.pos < 2*arcs {
			w, side := s.pos/2, s.pos%2
			s.pos++
			i := s.bounds[w]
			if side == 1 {
				i = s.bounds[w+1] - 1
			}
			if i >= 0 && i < n && st.Working(i) {
				return []int{i}
			}
			continue
		}
		// Super-round complete: start the next one.
		s.phase, s.arc = 0, 0
		s.pos = s.interiorLo(0)
	}
	return nil
}

// interiorLo returns the first interior index of arc w: the node after the
// arc's low boundary.
func (s *ShardedRoundRobin) interiorLo(w int) int { return s.bounds[w] + 1 }
