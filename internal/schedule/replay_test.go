package schedule_test

import (
	"reflect"
	"testing"

	"asynccycle/internal/core"
	"asynccycle/internal/graph"
	"asynccycle/internal/ids"
	"asynccycle/internal/schedule"
	"asynccycle/internal/sim"
)

func TestRecordReplayIdenticalExecution(t *testing.T) {
	n := 20
	g := graph.MustCycle(n)
	xs := ids.MustGenerate(ids.Random, n, 3)

	e1, _ := sim.NewEngine(g, core.NewFastNodes(xs))
	rec := schedule.NewRecording(schedule.NewRandomSubset(0.4, 17))
	res1, err := e1.Run(rec, 100_000)
	if err != nil {
		t.Fatal(err)
	}

	e2, _ := sim.NewEngine(g, core.NewFastNodes(xs))
	res2, err := e2.Run(schedule.NewReplay(rec.Steps()), 100_000)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(res1.Outputs, res2.Outputs) {
		t.Errorf("outputs differ:\n%v\n%v", res1.Outputs, res2.Outputs)
	}
	if !reflect.DeepEqual(res1.Activations, res2.Activations) {
		t.Errorf("activation counts differ")
	}
	if res1.Steps != res2.Steps {
		t.Errorf("step counts differ: %d vs %d", res1.Steps, res2.Steps)
	}
}

func TestReplayExhaustionAbandons(t *testing.T) {
	n := 5
	g := graph.MustCycle(n)
	xs := ids.MustGenerate(ids.Increasing, n, 0)
	e, _ := sim.NewEngine(g, core.NewFiveNodes(xs))
	// Play only two singleton steps, then stop scheduling.
	res, err := e.Run(schedule.NewReplay([][]int{{0}, {1}}), 100_000)
	if err != nil {
		t.Fatal(err)
	}
	// Node 0 returned at its first solo step (⊥ neighbors); everyone not
	// terminated must have been crashed out by the abandonment rule.
	for i := 0; i < n; i++ {
		if !res.Done[i] && !res.Crashed[i] {
			t.Errorf("node %d neither done nor crashed after replay exhaustion", i)
		}
	}
}

func TestReplayRemaining(t *testing.T) {
	r := schedule.NewReplay([][]int{{0}, {1, 2}})
	if r.Remaining() != 2 {
		t.Fatalf("remaining = %d", r.Remaining())
	}
	r.Next(nil)
	if got := r.Next(nil); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("second step = %v", got)
	}
	if r.Remaining() != 0 {
		t.Fatalf("remaining = %d", r.Remaining())
	}
	if got := r.Next(nil); got != nil {
		t.Fatalf("exhausted replay returned %v", got)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	steps := [][]int{{0, 2}, {}, {1}}
	data, err := schedule.MarshalSteps(steps)
	if err != nil {
		t.Fatal(err)
	}
	back, err := schedule.UnmarshalSteps(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(steps) {
		t.Fatalf("length %d, want %d", len(back), len(steps))
	}
	for i := range steps {
		if len(back[i]) != len(steps[i]) {
			t.Fatalf("step %d: %v vs %v", i, back[i], steps[i])
		}
		for j := range steps[i] {
			if back[i][j] != steps[i][j] {
				t.Fatalf("step %d: %v vs %v", i, back[i], steps[i])
			}
		}
	}
	if _, err := schedule.UnmarshalSteps([]byte("not json")); err == nil {
		t.Error("accepted invalid JSON")
	}
}

func TestRecordingDeepCopies(t *testing.T) {
	rec := schedule.NewRecording(schedule.Synchronous{})
	st := fakeStateN(3)
	rec.Next(st)
	steps := rec.Steps()
	steps[0][0] = 99
	if rec.Steps()[0][0] == 99 {
		t.Error("Steps aliases internal storage")
	}
}

// mutatingScheduler wraps an inner scheduler and scrambles every slice it
// returned on the PREVIOUS step — the adversarial caller the Replay
// aliasing bug was vulnerable to: with Next handing out its internal rows,
// this corrupts the recorded schedule behind the replay's back.
type mutatingScheduler struct {
	Inner schedule.Scheduler
	last  []int
}

func (m *mutatingScheduler) Name() string { return "mutating(" + m.Inner.Name() + ")" }

func (m *mutatingScheduler) Next(st schedule.State) []int {
	for i := range m.last {
		m.last[i] = -1
	}
	m.last = m.Inner.Next(st)
	return append([]int(nil), m.last...)
}

// TestReplayRoundTripSurvivesCallerMutation is the mutation-regression
// test for the Replay.Next aliasing fix, covering the full
// Recording → Marshal → Unmarshal → Replay round trip: a replayed
// execution whose caller mutates every activation set it received must
// still be bit-identical to the original recorded execution.
func TestReplayRoundTripSurvivesCallerMutation(t *testing.T) {
	n := 16
	g := graph.MustCycle(n)
	xs := ids.MustGenerate(ids.Random, n, 11)

	e1, _ := sim.NewEngine(g, core.NewFiveNodes(xs))
	rec := schedule.NewRecording(schedule.NewRandomSubset(0.35, 23))
	res1, err := e1.Run(rec, 100_000)
	if err != nil {
		t.Fatal(err)
	}

	data, err := schedule.MarshalSteps(rec.Steps())
	if err != nil {
		t.Fatal(err)
	}
	steps, err := schedule.UnmarshalSteps(data)
	if err != nil {
		t.Fatal(err)
	}

	e2, _ := sim.NewEngine(g, core.NewFiveNodes(xs))
	res2, err := e2.Run(&mutatingScheduler{Inner: schedule.NewReplay(steps)}, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res1.Outputs, res2.Outputs) ||
		!reflect.DeepEqual(res1.Activations, res2.Activations) ||
		res1.Steps != res2.Steps {
		t.Fatalf("mutated replay diverged:\noriginal %v (%d steps)\nreplay   %v (%d steps)",
			res1.Outputs, res1.Steps, res2.Outputs, res2.Steps)
	}
	// The unmarshaled steps themselves must be untouched too (Replay deep
	// copies at construction).
	back, err := schedule.UnmarshalSteps(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(steps, back) {
		t.Fatal("replay mutated the caller's steps slice")
	}
}

// fakeStateN adapts the package-internal fake for external tests.
type simpleState struct{ n int }

func (s simpleState) N() int              { return s.n }
func (s simpleState) Time() int           { return 1 }
func (s simpleState) Working(int) bool    { return true }
func (s simpleState) Activations(int) int { return 0 }

func fakeStateN(n int) schedule.State { return simpleState{n: n} }
