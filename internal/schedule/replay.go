package schedule

import (
	"encoding/json"
	"fmt"
)

// Recording wraps a scheduler and captures every activation set it
// chooses, so an interesting execution (a bug reproduction, a worst case
// found by random search) can be serialized and replayed exactly.
type Recording struct {
	Inner Scheduler
	steps [][]int
}

// NewRecording wraps inner.
func NewRecording(inner Scheduler) *Recording { return &Recording{Inner: inner} }

// Name implements Scheduler.
func (r *Recording) Name() string { return "recording(" + r.Inner.Name() + ")" }

// Next implements Scheduler.
func (r *Recording) Next(st State) []int {
	chosen := r.Inner.Next(st)
	r.steps = append(r.steps, append([]int(nil), chosen...))
	return chosen
}

// Steps returns the captured schedule prefix (deep copy).
func (r *Recording) Steps() [][]int {
	out := make([][]int, len(r.steps))
	for i, s := range r.steps {
		out[i] = append([]int(nil), s...)
	}
	return out
}

// Replay is a scheduler that plays back a fixed schedule verbatim; after
// the recorded steps are exhausted it returns empty sets, which the engine
// treats as the adversary abandoning the remaining processes.
type Replay struct {
	steps [][]int
	pos   int
}

// NewReplay returns a Replay over the given steps (deep copied).
func NewReplay(steps [][]int) *Replay {
	cp := make([][]int, len(steps))
	for i, s := range steps {
		cp[i] = append([]int(nil), s...)
	}
	return &Replay{steps: cp}
}

// Name implements Scheduler.
func (r *Replay) Name() string { return fmt.Sprintf("replay(%d steps)", len(r.steps)) }

// Next implements Scheduler. The returned slice is a copy: callers (engine
// hooks, schedule shrinkers) may mutate it freely without corrupting the
// recorded schedule, so replays of the same Replay value stay bit-exact.
func (r *Replay) Next(State) []int {
	if r.pos >= len(r.steps) {
		return nil
	}
	s := append([]int(nil), r.steps[r.pos]...)
	r.pos++
	return s
}

// Remaining returns how many recorded steps have not been played yet.
func (r *Replay) Remaining() int { return len(r.steps) - r.pos }

// MarshalSteps serializes a schedule as JSON (a [][]int array), suitable
// for embedding in regression tests or writing to disk.
func MarshalSteps(steps [][]int) ([]byte, error) {
	b, err := json.Marshal(steps)
	if err != nil {
		return nil, fmt.Errorf("schedule: marshal: %w", err)
	}
	return b, nil
}

// UnmarshalSteps deserializes a schedule produced by MarshalSteps.
func UnmarshalSteps(data []byte) ([][]int, error) {
	var steps [][]int
	if err := json.Unmarshal(data, &steps); err != nil {
		return nil, fmt.Errorf("schedule: unmarshal: %w", err)
	}
	return steps, nil
}
