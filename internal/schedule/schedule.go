// Package schedule defines the asynchronous adversary: which set σ(t) of
// processes is activated at each time step (paper §2.2). A Scheduler decides
// σ(t) from the observable execution state; the engine filters its choice to
// processes that are still working (not terminated, not crashed), exactly as
// the restricted schedule σ̄ does in the paper.
//
// Crashes are not a scheduler concern: in the model a crash is just the
// schedule never activating a process again, and the engine realizes it by
// marking nodes crashed so they drop out of the working set.
package schedule

import (
	"fmt"
	"math/rand"
)

// State is the scheduler's read-only view of an execution.
type State interface {
	// N is the number of processes.
	N() int
	// Time is the index of the step about to be scheduled (1-based).
	Time() int
	// Working reports whether process i is still a candidate for
	// activation: awake-able, not terminated, not crashed.
	Working(i int) bool
	// Activations returns how many rounds process i has performed so far.
	Activations(i int) int
}

// Scheduler chooses the activation set for each time step. Next may return
// indices of non-working processes; the engine filters them out. Returning
// an empty set is a no-op step; the engine gives up (declaring the remaining
// processes crashed) after a run of consecutive empty choices.
type Scheduler interface {
	// Name identifies the scheduler in experiment tables.
	Name() string
	// Next returns σ(t) for the step described by st.
	Next(st State) []int
}

// Synchronous activates every working process at every step — the lock-step
// LOCAL-model schedule, under which Linial's Ω(log* n) lower bound already
// applies.
type Synchronous struct{}

// Name implements Scheduler.
func (Synchronous) Name() string { return "synchronous" }

// Next implements Scheduler.
func (Synchronous) Next(st State) []int {
	out := make([]int, 0, st.N())
	for i := 0; i < st.N(); i++ {
		if st.Working(i) {
			out = append(out, i)
		}
	}
	return out
}

// RoundRobin activates Width working processes per step, cycling through
// process indices in order. Width 1 is the classic fully sequential
// adversary.
type RoundRobin struct {
	Width int
	next  int
}

// NewRoundRobin returns a RoundRobin scheduler of the given width (≥ 1).
func NewRoundRobin(width int) *RoundRobin {
	if width < 1 {
		width = 1
	}
	return &RoundRobin{Width: width}
}

// Name implements Scheduler.
func (r *RoundRobin) Name() string { return fmt.Sprintf("round-robin(%d)", r.Width) }

// Next implements Scheduler.
func (r *RoundRobin) Next(st State) []int {
	n := st.N()
	out := make([]int, 0, r.Width)
	for scanned := 0; scanned < n && len(out) < r.Width; scanned++ {
		i := (r.next + scanned) % n
		if st.Working(i) {
			out = append(out, i)
		}
	}
	if len(out) > 0 {
		r.next = (out[len(out)-1] + 1) % n
	}
	return out
}

// RandomSubset independently activates each working process with probability
// P at each step, always including at least one working process (chosen
// uniformly) so the execution makes progress.
type RandomSubset struct {
	P   float64
	rng *rand.Rand
}

// NewRandomSubset returns a RandomSubset scheduler with inclusion
// probability p (clamped to (0, 1]) and the given seed.
func NewRandomSubset(p float64, seed int64) *RandomSubset {
	if p <= 0 {
		p = 0.5
	}
	if p > 1 {
		p = 1
	}
	return &RandomSubset{P: p, rng: rand.New(rand.NewSource(seed))}
}

// Name implements Scheduler.
func (s *RandomSubset) Name() string { return fmt.Sprintf("random-subset(p=%.2f)", s.P) }

// Next implements Scheduler.
func (s *RandomSubset) Next(st State) []int {
	var working []int
	var out []int
	for i := 0; i < st.N(); i++ {
		if !st.Working(i) {
			continue
		}
		working = append(working, i)
		if s.rng.Float64() < s.P {
			out = append(out, i)
		}
	}
	if len(out) == 0 && len(working) > 0 {
		out = append(out, working[s.rng.Intn(len(working))])
	}
	return out
}

// RandomOne activates a single uniformly random working process per step —
// a natural sequential adversary with high interleaving variety.
type RandomOne struct {
	rng *rand.Rand
}

// NewRandomOne returns a RandomOne scheduler with the given seed.
func NewRandomOne(seed int64) *RandomOne {
	return &RandomOne{rng: rand.New(rand.NewSource(seed))}
}

// Name implements Scheduler.
func (s *RandomOne) Name() string { return "random-one" }

// Next implements Scheduler.
func (s *RandomOne) Next(st State) []int {
	var working []int
	for i := 0; i < st.N(); i++ {
		if st.Working(i) {
			working = append(working, i)
		}
	}
	if len(working) == 0 {
		return nil
	}
	return []int{working[s.rng.Intn(len(working))]}
}

// Alternating activates the even-index processes on odd steps and the
// odd-index processes on even steps, a maximally interleaved two-phase
// adversary.
type Alternating struct{}

// Name implements Scheduler.
func (Alternating) Name() string { return "alternating" }

// Next implements Scheduler.
func (Alternating) Next(st State) []int {
	// Time is 1-based: on odd steps (Time()%2 == 1) the even-index class
	// moves, on even steps the odd-index class.
	var out []int
	for i := 0; i < st.N(); i++ {
		if i%2 != st.Time()%2 && st.Working(i) {
			out = append(out, i)
		}
	}
	if len(out) == 0 {
		// The opposite class may be all that remains.
		for i := 0; i < st.N(); i++ {
			if st.Working(i) {
				out = append(out, i)
			}
		}
	}
	return out
}

// Sleep delays a set of processes: members of Asleep are withheld until
// WakeAt (a time step), while the Inner scheduler drives everyone else.
// This is the building block for starvation adversaries — e.g. freezing a
// neighbor so that a process stays blocked on Algorithm 3's green-light
// gate, or modeling late risers whose registers stay ⊥.
type Sleep struct {
	Asleep map[int]bool
	WakeAt int
	Inner  Scheduler
}

// NewSleep returns a Sleep scheduler. A WakeAt beyond the step limit makes
// the sleep permanent, i.e. an initial crash.
func NewSleep(asleep []int, wakeAt int, inner Scheduler) *Sleep {
	m := make(map[int]bool, len(asleep))
	for _, i := range asleep {
		m[i] = true
	}
	return &Sleep{Asleep: m, WakeAt: wakeAt, Inner: inner}
}

// Name implements Scheduler.
func (s *Sleep) Name() string {
	return fmt.Sprintf("sleep(%d until t=%d, then %s)", len(s.Asleep), s.WakeAt, s.Inner.Name())
}

// Next implements Scheduler.
func (s *Sleep) Next(st State) []int {
	chosen := s.Inner.Next(st)
	if st.Time() >= s.WakeAt {
		return chosen
	}
	out := chosen[:0:0]
	for _, i := range chosen {
		if !s.Asleep[i] {
			out = append(out, i)
		}
	}
	return out
}

// Burst activates a single process K times in a row before moving on
// (round-robin order): the "one process races ahead" adversary from the
// paper's discussion of asynchronous rounds.
type Burst struct {
	K       int
	current int
	fired   int
}

// NewBurst returns a Burst scheduler giving each process k ≥ 1 consecutive
// solo steps.
func NewBurst(k int) *Burst {
	if k < 1 {
		k = 1
	}
	return &Burst{K: k}
}

// Name implements Scheduler.
func (b *Burst) Name() string { return fmt.Sprintf("burst(%d)", b.K) }

// Next implements Scheduler.
func (b *Burst) Next(st State) []int {
	n := st.N()
	for scanned := 0; scanned <= n; scanned++ {
		i := (b.current + scanned) % n
		if !st.Working(i) {
			continue
		}
		if i != b.current {
			b.current = i
			b.fired = 0
		}
		b.fired++
		if b.fired >= b.K {
			b.current = (i + 1) % n
			b.fired = 0
		}
		return []int{i}
	}
	return nil
}

// Parse resolves a scheduler family by the short name the CLIs and the
// job server share: sync|rr|random|one|alt|burst. The derived instances
// use the historical CLI parameters (round-robin width 1, subset fraction
// 0.4, burst width 4).
func Parse(name string, seed int64) (Scheduler, error) {
	switch name {
	case "sync":
		return Synchronous{}, nil
	case "rr":
		return NewRoundRobin(1), nil
	case "random":
		return NewRandomSubset(0.4, seed), nil
	case "one":
		return NewRandomOne(seed), nil
	case "alt":
		return Alternating{}, nil
	case "burst":
		return NewBurst(4), nil
	default:
		return nil, fmt.Errorf("unknown scheduler %q", name)
	}
}
