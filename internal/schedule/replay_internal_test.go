package schedule

import (
	"reflect"
	"testing"
)

// TestReplayNextReturnsCopy is the regression test for the aliasing bug:
// Replay.Next used to hand out its internal slice, so a caller mutating
// the activation set corrupted the recorded schedule and broke bit-exact
// replay.
func TestReplayNextReturnsCopy(t *testing.T) {
	steps := [][]int{{2, 0, 1}, {1}, {0, 2}}
	r := NewReplay(steps)
	got := r.Next(nil)
	if !reflect.DeepEqual(got, []int{2, 0, 1}) {
		t.Fatalf("Next = %v, want [2 0 1]", got)
	}
	got[0], got[1], got[2] = -1, -1, -1
	if !reflect.DeepEqual(r.steps[0], []int{2, 0, 1}) {
		t.Fatalf("mutating Next's result corrupted the recorded schedule: %v", r.steps[0])
	}
	// The remaining steps must still play back verbatim.
	if got := r.Next(nil); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("step 2 = %v, want [1]", got)
	}
	if got := r.Next(nil); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Fatalf("step 3 = %v, want [0 2]", got)
	}
}

// TestRecordingStepsReturnsCopy pins the matching guarantee on the
// recording side: mutating a Steps() snapshot must not corrupt the
// recorder.
func TestRecordingStepsReturnsCopy(t *testing.T) {
	rec := NewRecording(Synchronous{})
	rec.steps = [][]int{{0, 1}, {1}}
	snap := rec.Steps()
	snap[0][0] = -7
	if !reflect.DeepEqual(rec.steps[0], []int{0, 1}) {
		t.Fatalf("mutating Steps() corrupted the recording: %v", rec.steps[0])
	}
}
