// Witness shrinking: greedy delta debugging over a recorded schedule.
//
// A violating schedule found by the fuzzer is minimized along two axes
// before it is reported: whole steps are removed in geometrically shrinking
// chunks (classic ddmin), then individual members are removed from the
// surviving activation sets. Both passes run to a fixpoint under a replay
// budget, and every candidate is accepted only if the violation still
// reproduces, so the result is a locally minimal witness: removing any
// single remaining step or set member makes the violation disappear (budget
// permitting).
package fuzzsched

// shrink minimizes steps with respect to test: test(candidate) must report
// whether the violation still reproduces on the candidate schedule, and
// must not retain or mutate its argument's rows. maxTests bounds the number
// of replays spent. It returns the minimized schedule and the number of
// test evaluations performed.
func shrink(steps [][]int, test func([][]int) bool, maxTests int) ([][]int, int) {
	iters := 0
	try := func(cand [][]int) bool {
		if iters >= maxTests {
			return false
		}
		iters++
		return test(cand)
	}
	cur := cloneSteps(steps)

	// Pass 1: ddmin over whole steps. For each chunk size (halving down to
	// 1), scan the schedule and greedily delete every chunk whose removal
	// keeps the violation alive; a successful removal rescans at the same
	// size, since earlier chunks may now be deletable.
	for size := len(cur) / 2; size >= 1; size /= 2 {
		for start := 0; start+size <= len(cur); {
			cand := make([][]int, 0, len(cur)-size)
			cand = append(cand, cur[:start]...)
			cand = append(cand, cur[start+size:]...)
			if try(cand) {
				cur = cand
			} else {
				start += size
			}
		}
	}

	// Pass 2: member removal inside the surviving steps, to a fixpoint. A
	// step shrunk to the empty set is dropped entirely (after a successful
	// removal the follow-up candidate re-reads cur[s], which is either the
	// shortened row or, when the row was dropped, the step that shifted into
	// slot s).
	for changed := true; changed; {
		changed = false
		for s := 0; s < len(cur); s++ {
			m := 0
			for s < len(cur) && m < len(cur[s]) {
				var cand [][]int
				if len(cur[s]) == 1 {
					cand = append(append([][]int{}, cur[:s]...), cur[s+1:]...)
				} else {
					row := make([]int, 0, len(cur[s])-1)
					row = append(row, cur[s][:m]...)
					row = append(row, cur[s][m+1:]...)
					cand = append(append([][]int{}, cur[:s]...), append([][]int{row}, cur[s+1:]...)...)
				}
				if try(cand) {
					cur = cand
					changed = true
				} else {
					m++
				}
			}
		}
	}
	return cur, iters
}

// cloneSteps deep-copies a schedule.
func cloneSteps(steps [][]int) [][]int {
	out := make([][]int, len(steps))
	for i, s := range steps {
		out[i] = append([]int(nil), s...)
	}
	return out
}
