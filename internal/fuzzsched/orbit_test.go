package fuzzsched

// Orbit-closure property tests: a violating witness stays violating under
// every automorphism of the cycle. Relabeling the identifier assignment,
// the schedule's activation sets and the crash plan by the same element of
// D_n produces an isomorphic execution, so the oracle must reject the
// image schedule too — if it ever accepts one, either the engine is not
// automorphism-equivariant or the symmetry reduction built on that fact is
// unsound.

import (
	"context"
	"errors"
	"sort"
	"testing"

	"asynccycle/internal/check"
	"asynccycle/internal/core"
	"asynccycle/internal/graph"
	"asynccycle/internal/schedule"
	"asynccycle/internal/sim"
)

// newTypedEngine is the typed engine constructor the production code used
// before the registry migration; the orbit tests still drive the five
// engine directly.
func newTypedEngine[V any](g graph.Graph, nodes []sim.Node[V], mode sim.Mode, crashes map[int]int) *sim.Engine[V] {
	e, err := sim.NewEngine(g, nodes)
	if err != nil {
		panic(err)
	}
	e.SetMode(mode)
	for i, k := range crashes {
		e.CrashAfter(i, k)
	}
	return e
}

// invPerm returns p's inverse.
func invPerm(p []int) []int {
	inv := make([]int, len(p))
	for i, v := range p {
		inv[v] = i
	}
	return inv
}

// permuteWitness maps a witness into the automorphism p's frame: position
// q of the image instance plays the role of position p[q] of the original,
// so ids are graph.ApplyPerm(xs, p), activation sets map through p's
// inverse, and the crash plan follows the positions. Sets are re-sorted:
// under simultaneous semantics execution order within a set is immaterial.
func permuteWitness(xs []int, steps [][]int, crashes map[int]int, p []int) ([]int, [][]int, map[int]int) {
	inv := invPerm(p)
	outSteps := make([][]int, len(steps))
	for t, s := range steps {
		ns := make([]int, len(s))
		for i, q := range s {
			ns[i] = inv[q]
		}
		sort.Ints(ns)
		outSteps[t] = ns
	}
	var outCrashes map[int]int
	if len(crashes) > 0 {
		outCrashes = make(map[int]int, len(crashes))
		for i, k := range crashes {
			outCrashes[inv[i]] = k
		}
	}
	return graph.ApplyPerm(xs, p), outSteps, outCrashes
}

// TestF1WitnessOrbitClosure: every D_5 image of the hand-built F1 lockstep
// livelock (odd-first two-phase scheduling of Algorithm 2 on C5) must
// still breach the wait-freedom bound.
func TestF1WitnessOrbitClosure(t *testing.T) {
	ids := []int{0, 1, 2, 3, 4}
	n := len(ids)
	e := newTypedEngine(graph.MustCycle(n), core.NewFiveNodes(ids), sim.ModeSimultaneous, nil)
	rec := schedule.NewRecording(schedule.NewSleep([]int{0, 2, 4}, 2, schedule.Alternating{}))
	if _, err := e.Run(rec, 2_000); !errors.Is(err, sim.ErrStepLimit) {
		t.Fatalf("F1 witness setup: err = %v, want ErrStepLimit", err)
	}
	steps := rec.Steps()
	bound := Bound("five", n)
	if err := check.ActivationBound(e.Result(), bound); err == nil {
		t.Fatal("recorded F1 witness does not breach the bound")
	}
	for pi, p := range graph.CycleAutomorphisms(n) {
		pxs, psteps, _ := permuteWitness(ids, steps, nil, p)
		pe := newTypedEngine(graph.MustCycle(n), core.NewFiveNodes(pxs), sim.ModeSimultaneous, nil)
		res := playSteps(sim.InstanceOf(pe), psteps)
		if err := check.ActivationBound(res, bound); err == nil {
			t.Errorf("automorphism %d (%v): image of the F1 witness satisfies the bound — orbit not closed", pi, p)
		}
	}
}

// TestCampaignWitnessOrbitClosure: the same closure property for the
// fuzzer's own shrunk witnesses — every violation found by the pinned
// seed-5 campaign must stay a violation under all ten automorphisms.
func TestCampaignWitnessOrbitClosure(t *testing.T) {
	rep, err := Campaign(context.Background(), Config{
		Alg: "five", N: 5, Mode: sim.ModeSimultaneous,
		Seed: 5, Campaign: 64, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) == 0 {
		t.Fatal("seed-5 campaign found no violation to orbit-test")
	}
	for vi, v := range rep.Violations {
		steps, err := schedule.UnmarshalSteps([]byte(v.WitnessJSON))
		if err != nil {
			t.Fatal(err)
		}
		bound := Bound("five", v.N)
		for pi, p := range graph.CycleAutomorphisms(v.N) {
			pxs, psteps, pcrashes := permuteWitness(v.IDs, steps, v.Crashes, p)
			pe := newTypedEngine(graph.MustCycle(v.N), core.NewFiveNodes(pxs), sim.ModeSimultaneous, pcrashes)
			res := playSteps(sim.InstanceOf(pe), psteps)
			if err := check.ActivationBound(res, bound); err == nil {
				t.Errorf("violation %d, automorphism %d (%v): image witness satisfies the bound — orbit not closed", vi, pi, p)
			}
		}
	}
}
