package fuzzsched

// Regression for the fuzzer's cycle-bound bug: before topology retargeting,
// running the bound leg against a general-graph instance would assert the
// paper's cycle-specific Theorem 3.1/3.11 round bounds and report false
// liveness violations. Retargeting clears the bound for off-family
// topologies, so these campaigns must come back clean.

import (
	"context"
	"errors"
	"strings"
	"testing"

	"asynccycle/internal/protocol"
	"asynccycle/internal/sim"
)

// TestCampaignDP1OnTorus fuzzes dp1 on the 3×4 torus: no spurious liveness
// flags (dp1 carries no wait-freedom bound), no safety violations (the
// (Δ+1) validity certificate), and no cross-engine divergences.
func TestCampaignDP1OnTorus(t *testing.T) {
	rep, err := Campaign(context.Background(), Config{
		Alg: "dp1", N: 12, Topology: "torus", Mode: sim.ModeInterleaved,
		Seed: 7, Campaign: 24, ConcEvery: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schedules != 24 {
		t.Fatalf("completed %d/24 cells", rep.Schedules)
	}
	if len(rep.Violations) != 0 {
		t.Errorf("spurious violations on torus: %v", rep.Violations[0])
	}
	if len(rep.Divergences) != 0 {
		t.Errorf("divergences on torus: %v", rep.Divergences[0])
	}
	if !strings.Contains(rep.String(), "topology=torus") {
		t.Errorf("report does not name the topology: %s", rep.String())
	}
}

// TestCampaignSixOffFamilyBoundGated pins the bound-oracle gate directly:
// six retargeted onto a random Δ-bounded graph loses its ⌊3n/2⌋+4 cycle
// bound, so the campaign runs with the liveness oracle off and reports no
// liveness findings even where the cycle bound would have tripped.
func TestCampaignSixOffFamilyBoundGated(t *testing.T) {
	d, err := protocol.Lookup("six")
	if err != nil {
		t.Fatal(err)
	}
	dd, err := protocol.WithTopology(d, "random:4:3")
	if err != nil {
		t.Fatal(err)
	}
	if dd.Bound != nil {
		t.Fatal("retargeted six still carries the cycle bound — the oracle gate is broken")
	}
	rep, err := Campaign(context.Background(), Config{
		Alg: "six", Topology: "random:4:3", Mode: sim.ModeInterleaved,
		Seed: 11, Campaign: 24,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Violations {
		if f.Kind == "liveness" {
			t.Errorf("spurious liveness flag off-family: %s", f)
		}
	}
	if len(rep.Violations) != 0 || len(rep.Divergences) != 0 {
		t.Errorf("unexpected findings: %s", rep.String())
	}
}

// TestCampaignRefusesUndeclaredTopology: a topology the protocol never
// declared fails loudly at configuration time with the typed sentinel, not
// silently mid-campaign.
func TestCampaignRefusesUndeclaredTopology(t *testing.T) {
	_, err := Campaign(context.Background(), Config{
		Alg: "five", Topology: "complete", Mode: sim.ModeInterleaved, Campaign: 4,
	})
	if !errors.Is(err, protocol.ErrTopology) {
		t.Fatalf("err = %v, want protocol.ErrTopology", err)
	}
}
