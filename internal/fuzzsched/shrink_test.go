package fuzzsched

import (
	"reflect"
	"testing"
)

// countPred builds a monotone predicate: a candidate still "fails" when it
// retains at least three steps containing member 2 and at least one step
// containing member 7.
func countPred(cand [][]int) bool {
	twos, sevens := 0, 0
	for _, s := range cand {
		for _, m := range s {
			if m == 2 {
				twos++
			}
			if m == 7 {
				sevens++
			}
		}
	}
	return twos >= 3 && sevens >= 1
}

func TestShrinkMinimizesMonotonePredicate(t *testing.T) {
	steps := [][]int{
		{0, 1}, {2, 3}, {4}, {2, 5}, {6, 7, 8}, {9}, {2}, {2, 0}, {3, 1}, {5},
	}
	shrunk, iters := shrink(steps, countPred, 10_000)
	if !countPred(shrunk) {
		t.Fatalf("shrunk schedule no longer fails: %v", shrunk)
	}
	if iters <= 0 {
		t.Fatal("no shrink iterations recorded")
	}
	// The minimum is 4 steps (three twos after step-level dedup plus one
	// seven), each reduced to a single member.
	if len(shrunk) != 4 {
		t.Fatalf("shrunk to %d steps, want 4: %v", len(shrunk), shrunk)
	}
	total := 0
	for _, s := range shrunk {
		total += len(s)
	}
	if total != 4 {
		t.Fatalf("shrunk to %d members, want 4: %v", total, shrunk)
	}
}

// TestShrinkOneMinimal: with an unlimited budget, removing any single step
// from the result must make the predicate pass (local minimality).
func TestShrinkOneMinimal(t *testing.T) {
	steps := [][]int{{2}, {1}, {2}, {2}, {7}, {2}, {0}}
	shrunk, _ := shrink(steps, countPred, 10_000)
	if !countPred(shrunk) {
		t.Fatalf("shrunk schedule no longer fails: %v", shrunk)
	}
	for s := range shrunk {
		cand := append(append([][]int{}, shrunk[:s]...), shrunk[s+1:]...)
		if countPred(cand) {
			t.Fatalf("not 1-minimal: dropping step %d of %v still fails", s, shrunk)
		}
	}
}

func TestShrinkDoesNotMutateInput(t *testing.T) {
	steps := [][]int{{2, 7}, {2}, {2}, {1}}
	orig := cloneSteps(steps)
	shrink(steps, countPred, 10_000)
	if !reflect.DeepEqual(steps, orig) {
		t.Fatalf("input mutated: %v", steps)
	}
}

func TestShrinkRespectsBudget(t *testing.T) {
	steps := make([][]int, 64)
	for i := range steps {
		steps[i] = []int{2, 7}
	}
	_, iters := shrink(steps, countPred, 10)
	if iters > 10 {
		t.Fatalf("spent %d tests over a budget of 10", iters)
	}
}

func TestShrinkAlwaysFailingCollapses(t *testing.T) {
	steps := [][]int{{0}, {1}, {2}}
	shrunk, _ := shrink(steps, func([][]int) bool { return true }, 1_000)
	if len(shrunk) != 0 {
		t.Fatalf("always-failing predicate should shrink to empty, got %v", shrunk)
	}
}
