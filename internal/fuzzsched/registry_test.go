package fuzzsched

// Seeded campaigns over the protocols the registry made fuzzable: the MIS
// candidates, renaming, and the DECOUPLED three-coloring. Counts are exact
// deterministic pins (the report is a function of the seed alone), so any
// drift in descriptor wiring, RNG consumption order, or oracle derivation
// fails here before it reaches CI.

import (
	"context"
	"strings"
	"testing"

	"asynccycle/internal/sim"
)

func runPinnedCampaign(t *testing.T, alg string) Report {
	t.Helper()
	rep, err := Campaign(context.Background(), Config{
		Alg: alg, Mode: sim.ModeInterleaved,
		Seed: 1, Campaign: 48, Workers: 4, ConcEvery: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schedules != 48 {
		t.Fatalf("%s: schedules = %d, want 48", alg, rep.Schedules)
	}
	return rep
}

// TestCampaignMISGreedy: safe but not wait-free — the fuzzer's finite
// schedules never catch the livelock (that is the model checker's job,
// E19), and the safety oracle never trips.
func TestCampaignMISGreedy(t *testing.T) {
	rep := runPinnedCampaign(t, "mis-greedy")
	if len(rep.Violations) != 0 || len(rep.Divergences) != 0 {
		t.Errorf("mis-greedy: violations=%d divergences=%d, want 0/0", len(rep.Violations), len(rep.Divergences))
	}
}

// TestCampaignMISImpatient: unsafe by design — the campaign must find the
// adjacent-membership violations, shrink them, and report the divergences
// its own unsafety induces on the cross-checking legs. Exact counts pinned.
func TestCampaignMISImpatient(t *testing.T) {
	rep := runPinnedCampaign(t, "mis-impatient")
	if len(rep.Violations) != 37 || len(rep.Divergences) != 31 {
		t.Errorf("mis-impatient: violations=%d divergences=%d, want 37/31 (seed-1 pin)", len(rep.Violations), len(rep.Divergences))
	}
	found := false
	for _, v := range rep.Violations {
		if strings.Contains(v.Detail, "both in MIS") {
			found = true
			break
		}
	}
	if !found {
		t.Error("mis-impatient violations never mention adjacent MIS membership")
	}
}

// TestCampaignRenaming: wait-free and safe on K_n; the campaign stays clean
// and the bound leg (n+2) never trips.
func TestCampaignRenaming(t *testing.T) {
	rep := runPinnedCampaign(t, "renaming")
	if len(rep.Violations) != 0 || len(rep.Divergences) != 0 {
		t.Errorf("renaming: violations=%d divergences=%d, want 0/0", len(rep.Violations), len(rep.Divergences))
	}
}

// TestCampaignDecoupledThree: the non-register-model instance adapter (tick
// engine behind sim.Instance) survives the clone-step and replay legs.
func TestCampaignDecoupledThree(t *testing.T) {
	rep := runPinnedCampaign(t, "decoupled-three")
	if len(rep.Violations) != 0 || len(rep.Divergences) != 0 {
		t.Errorf("decoupled-three: violations=%d divergences=%d, want 0/0", len(rep.Violations), len(rep.Divergences))
	}
}

// TestCampaignRejectsNonFuzzable: protocols without an instance surface
// (local-cv) are a configuration error, not a silent no-op.
func TestCampaignRejectsNonFuzzable(t *testing.T) {
	_, err := Campaign(context.Background(), Config{Alg: "local-cv", Seed: 1, Campaign: 4})
	if err == nil || !strings.Contains(err.Error(), "no branchable instance surface") {
		t.Errorf("local-cv campaign error = %v, want no-branchable-instance-surface", err)
	}
}
