// Adversarial schedule generation. The generator is itself a
// schedule.Scheduler: a campaign cell wraps it in a schedule.Recording and
// drives the engine with it, so every schedule the fuzzer explores is
// automatically captured in replayable form.
//
// Schedules are built from phases, each phase holding one adversarial
// pattern for a stretch of steps: biased random subsets, singleton storms,
// two-phase parity alternation (the pattern behind finding F1), bursts
// that race one process ahead, starvation windows that freeze a set of
// processes, and synchronous lockstep. Phase lengths are heavy-tailed —
// most phases are short, but with probability longPhaseProb a phase runs
// for a multiple of the activation bound, long enough for slow-burn
// liveness failures (livelocks, bound breaches) to actually manifest.
package fuzzsched

import (
	"fmt"
	"math/rand"

	"asynccycle/internal/schedule"
)

// Phase kinds.
const (
	phaseSubset      = iota // each working process w.p. p
	phaseSingleton          // one uniformly random working process per step
	phaseAlternating        // parity classes in lockstep, shifted by parity
	phaseBurst              // one process repeatedly
	phaseStarve             // freeze a subset, random subsets over the rest
	phaseSync               // every working process
	numPhaseKinds
)

// longPhaseProb is the probability that a phase is "long": its length is
// drawn proportional to the activation bound rather than a small constant.
// Liveness violations like the F1 livelock need a single pattern held for
// ~2× the bound, so this tail is what makes them reachable.
const longPhaseProb = 0.25

// gen generates an adversarial schedule phase by phase. It never returns an
// empty activation set while some process is working, so generated
// schedules waste no steps on no-ops.
type gen struct {
	rng   *rand.Rand
	bound int // activation bound of the instance, scales long phases

	kind   int
	left   int     // steps left in the current phase
	p      float64 // subset probability (phaseSubset, phaseStarve)
	parity int     // which parity class moves on odd steps (phaseAlternating)
	node   int     // the racing process (phaseBurst)
	frozen []bool  // starved set (phaseStarve)

	scratch []int // reused working-set buffer
}

// newGen returns a generator drawing all decisions from rng. bound is the
// per-process activation bound of the instance under test.
func newGen(rng *rand.Rand, bound int) *gen {
	if bound < 1 {
		bound = 1
	}
	return &gen{rng: rng, bound: bound}
}

// Name implements schedule.Scheduler.
func (g *gen) Name() string { return fmt.Sprintf("fuzz-gen(bound=%d)", g.bound) }

// Next implements schedule.Scheduler.
func (g *gen) Next(st schedule.State) []int {
	working := g.scratch[:0]
	for i := 0; i < st.N(); i++ {
		if st.Working(i) {
			working = append(working, i)
		}
	}
	g.scratch = working
	if len(working) == 0 {
		return nil
	}
	if g.left <= 0 {
		g.newPhase(st)
	}
	g.left--

	var out []int
	switch g.kind {
	case phaseSubset:
		for _, i := range working {
			if g.rng.Float64() < g.p {
				out = append(out, i)
			}
		}
	case phaseSingleton:
		out = []int{working[g.rng.Intn(len(working))]}
	case phaseAlternating:
		// Mirror schedule.Alternating with a configurable leading class:
		// on odd steps the parity-g.parity class moves.
		want := (st.Time() + g.parity) % 2
		for _, i := range working {
			if i%2 == want {
				out = append(out, i)
			}
		}
	case phaseBurst:
		if !st.Working(g.node) {
			g.node = working[g.rng.Intn(len(working))]
		}
		out = []int{g.node}
	case phaseStarve:
		for _, i := range working {
			if i < len(g.frozen) && g.frozen[i] {
				continue
			}
			if g.rng.Float64() < g.p {
				out = append(out, i)
			}
		}
	default: // phaseSync
		out = append(out, working...)
	}
	if len(out) == 0 {
		// Whatever the pattern excluded, keep the execution moving: an
		// empty set is a wasted step the engine eventually punishes by
		// crashing everyone.
		out = []int{working[g.rng.Intn(len(working))]}
	}
	return out
}

// newPhase rolls the next phase: kind, length, and per-kind parameters.
func (g *gen) newPhase(st schedule.State) {
	g.kind = g.rng.Intn(numPhaseKinds)
	if g.rng.Float64() < longPhaseProb {
		g.left = g.bound + g.rng.Intn(2*g.bound+1)
	} else {
		g.left = 1 + g.rng.Intn(12)
	}
	switch g.kind {
	case phaseSubset:
		g.p = 0.1 + 0.8*g.rng.Float64()
	case phaseAlternating:
		g.parity = g.rng.Intn(2)
	case phaseBurst:
		g.node = g.rng.Intn(st.N())
	case phaseStarve:
		if len(g.frozen) != st.N() {
			g.frozen = make([]bool, st.N())
		}
		for i := range g.frozen {
			g.frozen[i] = g.rng.Float64() < 0.3
		}
		g.p = 0.2 + 0.7*g.rng.Float64()
	}
}
