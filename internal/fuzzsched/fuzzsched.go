// Package fuzzsched is the schedule-fuzzing and cross-engine differential
// layer: deterministic, seed-reproducible campaigns of randomized
// adversarial schedules, each checked against the paper's correctness
// oracle (internal/check) and cross-validated between independent
// execution paths of the repository.
//
// A campaign is a fixed number of cells. Each cell derives every random
// decision (instance size, identifiers, crash plan, schedule) from the
// campaign seed and its own index through an avalanche mix (internal/rnd),
// runs the generated schedule on the protocol's engine under the primary
// semantics while a liveness oracle watches per-process activation bounds
// (protocols whose descriptor carries no wait-freedom bound run without
// the oracle), and then cross-checks the recorded schedule along the
// independent legs the descriptor supports:
//
//   - replay: a fresh engine replaying the recorded steps must reproduce
//     the primary run bit-exactly (scheduler/replay round-trip fidelity);
//   - clone-step: an engine advanced via Clone-then-Step at every step —
//     the model checker's branching primitive — must match the directly
//     stepped engine fingerprint-for-fingerprint (CloneInto fidelity);
//   - secondary mode (engine protocols): the same schedule under the
//     other activation semantics must stay safe (liveness is not compared
//     across modes, where finding F1 shows they legitimately differ);
//   - conc (sampled, protocols with a concurrent surface): the
//     real-concurrency runtime must solve the same instance and satisfy
//     the same safety and fault-tolerance oracle.
//
// The algorithm under test is any protocol registered in
// internal/protocol that exposes an instance surface; the oracles derive
// from the descriptor's correctness contract (internal/contract): safety
// is Contract.Safety (for pre-contract protocols the bare adapter keeps
// the historical Validity text byte-for-byte) and the liveness bound is
// Bound. Stabilizing contracts (liveness closure+convergence) replace the
// end-state safety check — transiently illegal configurations are the
// whole point of self-stabilization — with a convergence oracle: after
// the adversarial prefix, a fair crash-free round-robin suffix of the
// contract's ConvergenceBound activations must reach a configuration
// that satisfies Safety and is a fixpoint across one further full pass
// (everyone publishes, nothing changes — closure). The suffix needs every
// process to keep moving, so cells with a crash plan skip it: a crashed
// process frozen in conflict legitimately stalls convergence forever.
//
// Oracle failures on the primary run are violations: the recorded schedule
// is shrunk (see shrink.go) to a minimal replayable witness. Leg
// mismatches are divergences: two layers that must agree disagreed. The
// distinction matters — under the paper-literal simultaneous semantics,
// livelock violations are expected findings (F1), while divergences are
// always repository bugs.
//
// Cells are dispatched through par.MapCtx and merged in cell order, so a
// campaign's report is byte-identical for a given seed at every worker
// count; a tripped runctl budget yields a report explicitly marked
// [PARTIAL: reason] covering exactly the completed cells.
package fuzzsched

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"time"

	"asynccycle/internal/check"
	"asynccycle/internal/conc"
	"asynccycle/internal/contract"
	"asynccycle/internal/metrics"
	"asynccycle/internal/par"
	"asynccycle/internal/protocol"
	"asynccycle/internal/rnd"
	"asynccycle/internal/runctl"
	"asynccycle/internal/schedule"
	"asynccycle/internal/sim"
)

// Config parameterizes a campaign.
type Config struct {
	// Alg selects the algorithm under test: any protocol registered in
	// internal/protocol whose descriptor exposes an instance surface
	// (NewInstance), by name or alias.
	Alg string
	// N fixes the cycle size; N <= 0 varies it per cell in [3, 12].
	N int
	// Topology retargets the campaign onto a named topology spec (see
	// graph.ParseTopology); empty means the protocol's native topology.
	// Off-family retargeting clears the descriptor's wait-freedom bound,
	// so the liveness oracle is disabled automatically — the paper's
	// cycle bounds must never be asserted against another graph.
	Topology string
	// Mode is the primary activation semantics the oracle runs under.
	Mode sim.Mode
	// Seed determines the entire campaign: every cell derives its
	// randomness from (Seed, cell index) via rnd.Derive.
	Seed int64
	// Campaign is the number of schedules to fuzz (cells); <= 0 means 128.
	Campaign int
	// Workers bounds the worker pool; <= 0 means GOMAXPROCS.
	Workers int
	// ConcEvery runs the real-concurrency leg on every k-th cell; 0 = off.
	ConcEvery int
	// Budget bounds the campaign: Timeout caps wall clock (the report goes
	// PARTIAL), MaxSteps caps each generated schedule's length.
	Budget runctl.Budget
	// Metrics, when non-nil, receives live campaign counters.
	Metrics *metrics.Run
}

// Finding is one oracle violation, with its shrunk replayable witness.
type Finding struct {
	Cell    int
	Kind    string // "liveness" | "safety"
	Detail  string
	N       int
	IDs     []int
	Crashes map[int]int
	Mode    string
	// Witness is the shrunk schedule; WitnessJSON its MarshalSteps form.
	Witness     [][]int
	WitnessJSON string
	OriginalLen int
	WitnessLen  int
}

// String renders the finding on one line (witness serialized separately).
func (f Finding) String() string {
	return fmt.Sprintf("cell=%d kind=%s n=%d mode=%s ids=%v crashes=%s witness=%d→%d steps: %s",
		f.Cell, f.Kind, f.N, f.Mode, f.IDs, crashString(f.Crashes), f.OriginalLen, f.WitnessLen, f.Detail)
}

// Divergence is a disagreement between two execution layers that must
// agree — always a repository bug, never an expected finding.
type Divergence struct {
	Cell   int
	Leg    string // "replay" | "clone-step" | "secondary-mode" | "conc"
	Detail string
}

// String renders the divergence on one line.
func (d Divergence) String() string {
	return fmt.Sprintf("cell=%d leg=%s: %s", d.Cell, d.Leg, d.Detail)
}

// Report aggregates a campaign. For a fixed Config (and no budget trip) it
// is byte-identical across runs and worker counts.
type Report struct {
	Alg      string
	N        int
	Topology string // empty = the protocol's native topology
	Contract string // contract label; empty = legacy bare adapter
	Mode     string
	Seed     int64
	Campaign int

	Schedules   int // cells completed
	Violations  []Finding
	Divergences []Divergence
	StatesSeen  int64 // clone-step fingerprints compared
	ShrinkIters int64 // shrinking replay attempts
	ConcRuns    int

	Partial    bool
	StopReason runctl.StopReason
}

// String renders the one-line summary.
func (r Report) String() string {
	nStr := fmt.Sprintf("%d", r.N)
	if r.N <= 0 {
		nStr = "3..12"
	}
	topo := ""
	if r.Topology != "" {
		// Printed only when set, so native-topology reports stay
		// byte-identical to the historical format.
		topo = fmt.Sprintf(" topology=%s", r.Topology)
	}
	if r.Contract != "" {
		// Same only-when-set rule: bare legacy adapters carry no label, so
		// pre-contract reports keep their exact historical header.
		topo += fmt.Sprintf(" contract=%s", r.Contract)
	}
	s := fmt.Sprintf("alg=%s n=%s%s mode=%s seed=%d campaign=%d: schedules=%d violations=%d divergences=%d states=%d shrink-iters=%d conc-runs=%d",
		r.Alg, nStr, topo, r.Mode, r.Seed, r.Campaign, r.Schedules,
		len(r.Violations), len(r.Divergences), r.StatesSeen, r.ShrinkIters, r.ConcRuns)
	if r.Partial {
		s += fmt.Sprintf(" [PARTIAL: %s]", r.StopReason)
	}
	return s
}

// Write renders the full report: summary line, then each violation with
// its witness schedule, each divergence, and the PARTIAL marker.
func (r Report) Write(w io.Writer) {
	fmt.Fprintln(w, r.String())
	for i, f := range r.Violations {
		fmt.Fprintf(w, "violation[%d]: %s\n", i, f)
		fmt.Fprintf(w, "witness schedule: %s\n", f.WitnessJSON)
	}
	for i, d := range r.Divergences {
		fmt.Fprintf(w, "divergence[%d]: %s\n", i, d)
	}
	if r.Partial {
		fmt.Fprintf(w, "PARTIAL (%s): %d of %d cells unexplored; the report covers completed cells only\n",
			r.StopReason, r.Campaign-r.Schedules, r.Campaign)
	}
}

// Bound returns the per-process activation bound the liveness oracle
// enforces for alg on an n-process instance. It reads the registered
// protocol descriptor — the paper's wait-freedom bounds for the coloring
// algorithms (⌊3n/2⌋+4 for Algorithm 1, 3n+8 for Algorithm 2, an
// O(log* n) budget for Algorithm 3) — and falls back to the Algorithm 3
// formula for unregistered names, preserving its historical behavior.
// A non-positive result means the protocol carries no wait-freedom bound
// and the liveness oracle is disabled.
func Bound(alg string, n int) int {
	if d, err := protocol.Lookup(alg); err == nil {
		if d.Bound == nil {
			return 0
		}
		return d.Bound(n)
	}
	return 8 * (logStar(float64(n)) + 4)
}

// logStar is the iterated binary logarithm.
func logStar(x float64) int {
	s := 0
	for x > 1 {
		x = math.Log2(x)
		s++
	}
	return s
}

// cellResult is one cell's contribution, merged in cell order.
type cellResult struct {
	states      int64
	shrinkIters int64
	concRan     bool
	finding     *Finding
	divs        []Divergence
}

// Campaign runs a full fuzzing campaign and returns its report. The error
// is non-nil only for invalid configuration; oracle violations and layer
// divergences are reported in the Report, not as errors.
func Campaign(ctx context.Context, cfg Config) (Report, error) {
	run, d, err := cellRunner(cfg)
	if err != nil {
		return Report{}, err
	}
	if cfg.Campaign <= 0 {
		cfg.Campaign = 128
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Budget.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Budget.Timeout)
		defer cancel()
	}

	cells := make([]int, cfg.Campaign)
	for i := range cells {
		cells[i] = i
	}
	var ws *metrics.WorkerStats
	if cfg.Metrics != nil {
		w := cfg.Workers
		if w <= 0 {
			w = runtime.GOMAXPROCS(0)
		}
		ws = cfg.Metrics.SetWorkers(w)
	}
	results, done := par.MapCtx(ctx, cfg.Workers, cells, ws, func(_ int, cell int) cellResult {
		r := run(cell)
		if m := cfg.Metrics; m != nil {
			m.Schedules.Inc()
			m.States.Add(r.states)
			m.ShrinkIters.Add(r.shrinkIters)
		}
		return r
	})

	rep := Report{
		Alg: cfg.Alg, N: cfg.N, Topology: cfg.Topology, Contract: d.ContractLabel(),
		Mode: cfg.Mode.String(), Seed: cfg.Seed, Campaign: cfg.Campaign,
	}
	for i, r := range results {
		if !done[i] {
			continue
		}
		rep.Schedules++
		rep.StatesSeen += r.states
		rep.ShrinkIters += r.shrinkIters
		if r.concRan {
			rep.ConcRuns++
		}
		if r.finding != nil {
			rep.Violations = append(rep.Violations, *r.finding)
		}
		rep.Divergences = append(rep.Divergences, r.divs...)
	}
	if !par.AllDone(done) {
		rep.Partial = true
		if rep.StopReason = runctl.Reason(ctx); rep.StopReason == runctl.StopNone {
			rep.StopReason = runctl.StopTimeout
		}
	}
	return rep, nil
}

// cellRunner resolves the protocol descriptor and returns the per-cell
// worker plus the (possibly retargeted) descriptor. Any registered
// protocol with an instance surface is fuzzable; the oracles derive from
// the descriptor's contract and bound.
func cellRunner(cfg Config) (func(cell int) cellResult, *protocol.Descriptor, error) {
	d, err := protocol.Lookup(cfg.Alg)
	if err != nil {
		return nil, nil, fmt.Errorf("fuzzsched: %w", err)
	}
	if cfg.Topology != "" {
		// Retargeting replaces the capability closures wholesale: the
		// topology builder, the (possibly cleared) wait-freedom bound, the
		// identifier precondition, and the FixN size normalizer all come
		// from the retargeted copy, so every oracle below is consistent
		// with the graph actually being fuzzed.
		d, err = protocol.WithTopology(d, cfg.Topology)
		if err != nil {
			return nil, nil, fmt.Errorf("fuzzsched: %w", err)
		}
	}
	if d.NewInstance == nil {
		return nil, nil, fmt.Errorf("fuzzsched: algorithm %q has no branchable instance surface", cfg.Alg)
	}
	if !d.SupportsMode(cfg.Mode) {
		return nil, nil, fmt.Errorf("fuzzsched: algorithm %q does not support %s semantics", cfg.Alg, cfg.Mode)
	}
	return func(cell int) cellResult { return runCell(cfg, cell, d) }, d, nil
}

// runCell executes one cell: generate, run with the oracle watching,
// cross-check the recorded schedule along the differential legs the
// descriptor supports, and shrink any violation to a minimal witness.
func runCell(cfg Config, cell int, d *protocol.Descriptor) cellResult {
	rng := rand.New(rand.NewSource(rnd.Derive(cfg.Seed, cell)))
	n := cfg.N
	if n <= 0 {
		n = 3 + rng.Intn(10)
	}
	if d.FixN != nil {
		n = d.FixN(n)
	}
	if n < d.MinN {
		n = d.MinN
	}
	g, err := d.Topology(n)
	if err != nil {
		panic(fmt.Sprintf("fuzzsched: topology for %q at n=%d: %v", d.Name, n, err))
	}
	var xs []int
	if d.FuzzIDs != nil {
		xs = d.FuzzIDs(rng, n)
	} else {
		xs = rng.Perm(4 * n)[:n]
	}
	// The safety oracle is the contract's Safety: for pre-contract
	// protocols the bare adapter wraps the legacy Validity closure, so the
	// verdict and its text are byte-identical to the historical oracle.
	safety := func(r sim.Result) error { return d.Contract.Safety(g, r) }
	stabilizing := d.Contract.Liveness() == contract.ClosureConvergence
	bound := 0
	if d.Bound != nil {
		bound = d.Bound(n)
	}
	// capB stands in for the wait-freedom bound wherever one is needed for
	// pacing (schedule-length caps, long fuzz phases, conc round limits)
	// when the protocol carries none; the liveness oracle itself stays off.
	capB := bound
	if capB <= 0 {
		capB = 4*n + 16
	}

	// Crash plan: occasionally crash a few processes after a small number
	// of rounds (0 = never wakes, its register stays ⊥).
	crashes := map[int]int{}
	if rng.Float64() < 0.25 {
		k := 1 + rng.Intn(1+n/3)
		for j := 0; j < k; j++ {
			crashes[rng.Intn(n)] = rng.Intn(4)
		}
	}

	// Primary run: generate adversarially, record, and watch the liveness
	// oracle after every step so a bound breach stops the schedule at the
	// first offending activation (keeping the raw witness short). A
	// protocol without a wait-freedom bound runs without the oracle.
	maxSteps := runctl.Min(3*n*capB+64, cfg.Budget.MaxSteps)
	e := newInstance(d, xs, cfg.Mode, crashes)
	rec := schedule.NewRecording(newGen(rng, capB))
	vioKind, vioDetail := "", ""
	for t := 0; !e.AllSettled() && t < maxSteps; t++ {
		e.Step(rec.Next(e))
		if bound > 0 {
			if i := overBound(e, n, bound); i >= 0 {
				vioKind = "liveness"
				vioDetail = fmt.Sprintf("process %d performed %d rounds without returning, exceeding the wait-freedom bound %d",
					i, e.Activations(i), bound)
				break
			}
		}
	}
	res := e.Result()
	if vioKind == "" {
		if stabilizing {
			// The adversarial prefix may legitimately end illegal; the
			// promise is convergence under a fair crash-free suffix.
			if len(crashes) == 0 {
				vioKind, vioDetail = stabilizationOracle(e, safety, n, stabilizationHorizon(d, n))
			}
		} else if err := safety(res); err != nil {
			vioKind, vioDetail = "safety", err.Error()
		}
	}
	steps := rec.Steps()

	out := cellResult{}

	// Leg 1: scheduler-driven replay under the primary mode must reproduce
	// the run bit-exactly.
	if res1 := playSteps(newInstance(d, xs, cfg.Mode, crashes), steps); !sameResult(res, res1) {
		out.divs = append(out.divs, Divergence{cell, "replay",
			fmt.Sprintf("replayed result differs from recorded run (steps %d vs %d)", res1.Steps, res.Steps)})
	}

	// Leg 2: clone-per-step replay — the model checker's branching
	// primitive. Instance b advances only through CloneInto copies; its
	// compact fingerprint must match the directly stepped instance a after
	// every step.
	{
		a := newInstance(d, xs, cfg.Mode, crashes)
		b := newInstance(d, xs, cfg.Mode, crashes)
		var scratch sim.Instance
		for _, s := range steps {
			if a.AllSettled() {
				break
			}
			a.Step(s)
			b2 := b.CloneInto(scratch)
			scratch = b
			b = b2
			b.Step(s)
			out.states++
			a1, a2 := a.FingerprintHash128()
			b1, b2h := b.FingerprintHash128()
			if a1 != b1 || a2 != b2h {
				out.divs = append(out.divs, Divergence{cell, "clone-step",
					fmt.Sprintf("fingerprints diverge at step %d of %d", a.Result().Steps, len(steps))})
				break
			}
		}
	}

	// Leg 3: the same schedule under the other activation semantics must
	// stay safe — for protocols that have one. Liveness is deliberately not
	// compared across modes: finding F1 shows the two semantics
	// legitimately disagree on it.
	if len(d.Modes) == 2 {
		other := sim.ModeSimultaneous
		if cfg.Mode == sim.ModeSimultaneous {
			other = sim.ModeInterleaved
		}
		if res3 := playSteps(newInstance(d, xs, other, crashes), steps); safety(res3) != nil {
			out.divs = append(out.divs, Divergence{cell, "secondary-mode",
				fmt.Sprintf("schedule safe under %s but unsafe under %s: %v", cfg.Mode, other, safety(res3))})
		}
	}

	// Leg 4 (sampled): the real-concurrency runtime on the same instance,
	// for protocols with a concurrent surface. Its interleaving comes from
	// the Go scheduler, so only the oracle verdict feeds the report — a
	// failure is a layer disagreement.
	if cfg.ConcEvery > 0 && cell%cfg.ConcEvery == 0 && d.RunConc != nil {
		out.concRan = true
		cres, err := d.RunConc(xs, conc.Options{
			CrashAfter: crashes,
			MaxRounds:  2*capB + 16,
			Yield:      true,
			Jitter:     20 * time.Microsecond,
			Seed:       rnd.Derive(cfg.Seed, cell),
		})
		switch {
		case err != nil:
			out.divs = append(out.divs, Divergence{cell, "conc", err.Error()})
		case safety(cres) != nil:
			out.divs = append(out.divs, Divergence{cell, "conc", safety(cres).Error()})
		case check.SurvivorsTerminated(cres) != nil:
			out.divs = append(out.divs, Divergence{cell, "conc", check.SurvivorsTerminated(cres).Error()})
		}
	}

	// Shrink the violation, if any, to a minimal replayable witness.
	if vioKind != "" {
		test := func(cand [][]int) bool {
			inst := newInstance(d, xs, cfg.Mode, crashes)
			resT := playSteps(inst, cand)
			if vioKind == "liveness" {
				return overBoundResult(resT, bound) >= 0
			}
			if stabilizing {
				// A candidate prefix still witnesses the violation when the
				// deterministic fair suffix after it still fails to stabilize.
				k, _ := stabilizationOracle(inst, safety, n, stabilizationHorizon(d, n))
				return k != ""
			}
			return safety(resT) != nil
		}
		shrunk, iters := shrink(steps, test, 4000)
		out.shrinkIters = int64(iters)
		data, _ := schedule.MarshalSteps(shrunk)
		out.finding = &Finding{
			Cell: cell, Kind: vioKind, Detail: vioDetail,
			N: n, IDs: xs, Crashes: crashes, Mode: cfg.Mode.String(),
			Witness: shrunk, WitnessJSON: string(data),
			OriginalLen: len(steps), WitnessLen: len(shrunk),
		}
	}
	return out
}

// stabilizationHorizon is the convergence budget the stabilization oracle
// grants: the contract's ConvergenceBound when the protocol states one, a
// generous quadratic default otherwise.
func stabilizationHorizon(d *protocol.Descriptor, n int) int {
	if st, ok := d.Contract.(*contract.Stabilizing); ok && st.ConvergenceBound != nil {
		return st.ConvergenceBound(n)
	}
	return n * (4*n + 16)
}

// stabilizationOracle drives the instance from wherever the adversarial
// prefix left it: a fair round-robin suffix of `horizon` singleton
// activations (the central-daemon schedule the stabilization analysis is
// stated for), then two full confirmation passes. After the first pass
// every process has published, so the visible registers are the complete
// configuration; Safety must hold there (convergence). The second pass
// must leave both the verdict and the configuration fingerprint unchanged
// — a legitimate configuration is a fixpoint, so any motion or regression
// is a closure violation. Requires a crash-free instance.
func stabilizationOracle(e sim.Instance, safety func(sim.Result) error, n, horizon int) (kind, detail string) {
	for t := 0; t < horizon; t++ {
		e.Step([]int{t % n})
	}
	pass := func() {
		for i := 0; i < n; i++ {
			e.Step([]int{i})
		}
	}
	pass()
	if err := safety(e.Result()); err != nil {
		return "convergence", fmt.Sprintf("not stabilized after %d fair activations: %v", horizon, err)
	}
	h1a, h1b := e.FingerprintHash128()
	pass()
	if err := safety(e.Result()); err != nil {
		return "closure", fmt.Sprintf("legitimate configuration regressed within one fair pass: %v", err)
	}
	if h2a, h2b := e.FingerprintHash128(); h2a != h1a || h2b != h1b {
		return "closure", "legitimate configuration is not a fixpoint: state changed across a fair pass"
	}
	return "", ""
}

// newInstance builds a fresh protocol instance with the given mode and
// crash plan. The inputs are generated to satisfy the descriptor's
// preconditions, so errors are programming bugs.
func newInstance(d *protocol.Descriptor, xs []int, mode sim.Mode, crashes map[int]int) sim.Instance {
	inst, err := d.NewInstance(xs, mode, crashes)
	if err != nil {
		panic(fmt.Sprintf("fuzzsched: instance for %q: %v", d.Name, err))
	}
	return inst
}

// playSteps replays a fixed schedule on a fresh instance and returns the
// final result.
func playSteps(e sim.Instance, steps [][]int) sim.Result {
	for _, s := range steps {
		if e.AllSettled() {
			break
		}
		e.Step(s)
	}
	return e.Result()
}

// overBound returns the first process whose activation count exceeds the
// wait-freedom bound, or -1. It counts terminated and crashed processes
// too, matching check.ActivationBound (crash limits are below the bound by
// construction, so in practice only working processes can trip it).
func overBound(e sim.Instance, n, bound int) int {
	for i := 0; i < n; i++ {
		if e.Activations(i) > bound {
			return i
		}
	}
	return -1
}

// overBoundResult is overBound on a finished result.
func overBoundResult(r sim.Result, bound int) int {
	for i, a := range r.Activations {
		if a > bound {
			return i
		}
	}
	return -1
}

// sameResult compares two results field by field.
func sameResult(a, b sim.Result) bool {
	return a.Steps == b.Steps &&
		reflect.DeepEqual(a.Outputs, b.Outputs) &&
		reflect.DeepEqual(a.Done, b.Done) &&
		reflect.DeepEqual(a.Crashed, b.Crashed) &&
		reflect.DeepEqual(a.Activations, b.Activations)
}

// crashString renders a crash plan deterministically (sorted by node).
func crashString(crashes map[int]int) string {
	if len(crashes) == 0 {
		return "none"
	}
	keys := make([]int, 0, len(crashes))
	for k := range crashes {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%d@%d", k, crashes[k])
	}
	return strings.Join(parts, ",")
}
