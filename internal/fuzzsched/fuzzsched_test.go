package fuzzsched

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"asynccycle/internal/check"
	"asynccycle/internal/core"
	"asynccycle/internal/graph"
	"asynccycle/internal/metrics"
	"asynccycle/internal/runctl"
	"asynccycle/internal/schedule"
	"asynccycle/internal/sim"
)

func TestCampaignUnknownAlg(t *testing.T) {
	if _, err := Campaign(context.Background(), Config{Alg: "nope"}); err == nil {
		t.Fatal("accepted unknown algorithm")
	}
}

func TestBound(t *testing.T) {
	if got := Bound("six", 10); got != 19 {
		t.Errorf("six bound = %d, want ⌊3·10/2⌋+4 = 19", got)
	}
	if got := Bound("five", 10); got != 38 {
		t.Errorf("five bound = %d, want 3·10+8 = 38", got)
	}
	if got := Bound("fast", 1024); got > Bound("fast", 1<<20) {
		t.Errorf("fast bound not monotone: %d > %d", got, Bound("fast", 1<<20))
	}
}

// TestGenDeterministic: the generator is a pure function of its rng — two
// identically seeded generators driving identical engines record identical
// schedules.
func TestGenDeterministic(t *testing.T) {
	record := func() [][]int {
		g := graph.MustCycle(7)
		xs := []int{3, 9, 1, 12, 6, 0, 8}
		e := newTypedEngine(g, core.NewFiveNodes(xs), sim.ModeInterleaved, nil)
		rec := schedule.NewRecording(newGen(rand.New(rand.NewSource(99)), Bound("five", 7)))
		for t := 0; !e.AllSettled() && t < 10_000; t++ {
			e.Step(rec.Next(e))
		}
		return rec.Steps()
	}
	a, b := record(), record()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identically seeded generators recorded different schedules")
	}
	if len(a) == 0 {
		t.Fatal("empty schedule recorded")
	}
}

// TestGenNeverEmptyWhileWorking: the generator never wastes a step on an
// empty activation set while some process is working.
func TestGenNeverEmptyWhileWorking(t *testing.T) {
	g := graph.MustCycle(9)
	xs := rand.New(rand.NewSource(4)).Perm(36)[:9]
	e := newTypedEngine(g, core.NewFastNodes(xs), sim.ModeInterleaved, nil)
	gen := newGen(rand.New(rand.NewSource(4)), Bound("fast", 9))
	for t2 := 0; !e.AllSettled() && t2 < 5_000; t2++ {
		set := gen.Next(e)
		if len(set) == 0 {
			t.Fatalf("empty activation set at step %d with working processes", t2)
		}
		e.Step(set)
	}
}

// TestCampaignReproducible is the byte-reproducibility contract: a fixed
// seed yields an identical report at every worker count.
func TestCampaignReproducible(t *testing.T) {
	cfg := Config{Alg: "five", Mode: sim.ModeInterleaved, Seed: 42, Campaign: 96, ConcEvery: 0}
	render := func(workers int) (Report, string) {
		c := cfg
		c.Workers = workers
		rep, err := Campaign(context.Background(), c)
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		rep.Write(&b)
		return rep, b.String()
	}
	rep1, out1 := render(1)
	_, out4 := render(4)
	_, out8 := render(8)
	if out1 != out4 || out1 != out8 {
		t.Fatalf("report differs across worker counts:\n-- 1 --\n%s\n-- 4 --\n%s\n-- 8 --\n%s", out1, out4, out8)
	}
	if rep1.Schedules != cfg.Campaign {
		t.Fatalf("schedules = %d, want %d", rep1.Schedules, cfg.Campaign)
	}
}

// TestCampaignDifferentialC3C5 is the cross-engine differential oracle on
// small cycles: for every algorithm and n ∈ {3,4,5}, a campaign comparing
// the interleaved engine, the replay path, the clone-per-step
// (model-checker) path, the simultaneous-mode safety check, and the
// sampled real-concurrency runtime must report zero violations and zero
// divergences.
func TestCampaignDifferentialC3C5(t *testing.T) {
	for _, alg := range []string{"six", "five", "fast"} {
		for n := 3; n <= 5; n++ {
			rep, err := Campaign(context.Background(), Config{
				Alg: alg, N: n, Mode: sim.ModeInterleaved,
				Seed: 7, Campaign: 48, ConcEvery: 12,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Violations) != 0 {
				t.Errorf("%s C%d: %d violations, want 0; first: %s", alg, n, len(rep.Violations), rep.Violations[0])
			}
			if len(rep.Divergences) != 0 {
				t.Errorf("%s C%d: %d divergences, want 0; first: %s", alg, n, len(rep.Divergences), rep.Divergences[0])
			}
			if rep.Schedules != 48 || rep.ConcRuns == 0 || rep.StatesSeen == 0 {
				t.Errorf("%s C%d: incomplete campaign: %s", alg, n, rep)
			}
		}
	}
}

// TestCampaignRediscoversF1Livelock is the built-in regression required of
// the fuzzer: at the paper-literal simultaneous semantics it must
// rediscover the Algorithm 2 livelock on C5 (finding F1) from a pinned
// seed and shrink it to a witness no longer than the recorded lockstep
// witness of TestF1LivelockWitness (which runs to the 5000-step limit).
func TestCampaignRediscoversF1Livelock(t *testing.T) {
	met := metrics.NewRun()
	rep, err := Campaign(context.Background(), Config{
		Alg: "five", N: 5, Mode: sim.ModeSimultaneous,
		Seed: 5, Campaign: 64, Workers: 2, Metrics: met,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Divergences) != 0 {
		t.Fatalf("divergences on C5: %v", rep.Divergences)
	}
	if len(rep.Violations) == 0 {
		t.Fatal("fuzzer failed to rediscover the F1 livelock at seed 5")
	}
	v := rep.Violations[0]
	if v.Kind != "liveness" {
		t.Fatalf("violation kind = %q, want liveness: %s", v.Kind, v)
	}

	// Record the original F1 witness: odd-first two-phase lockstep on C5
	// runs Algorithm 2 into the step limit under simultaneous semantics.
	ids := []int{0, 1, 2, 3, 4}
	g := graph.MustCycle(5)
	eF1 := newTypedEngine(g, core.NewFiveNodes(ids), sim.ModeSimultaneous, nil)
	recF1 := schedule.NewRecording(schedule.NewSleep([]int{0, 2, 4}, 2, schedule.Alternating{}))
	if _, err := eF1.Run(recF1, 5_000); !errors.Is(err, sim.ErrStepLimit) {
		t.Fatalf("F1 witness setup: err = %v, want ErrStepLimit", err)
	}
	recorded := len(recF1.Steps())
	if v.WitnessLen > recorded {
		t.Errorf("shrunk witness has %d steps, recorded F1 witness only %d", v.WitnessLen, recorded)
	}
	if v.WitnessLen > v.OriginalLen {
		t.Errorf("shrinking grew the witness: %d → %d", v.OriginalLen, v.WitnessLen)
	}

	// The shrunk witness must replay to a bound breach through the public
	// replay path (Marshal → Unmarshal → Replay).
	data := []byte(v.WitnessJSON)
	steps, err := schedule.UnmarshalSteps(data)
	if err != nil {
		t.Fatal(err)
	}
	e := newTypedEngine(graph.MustCycle(v.N), core.NewFiveNodes(v.IDs), sim.ModeSimultaneous, v.Crashes)
	res := playSteps(sim.InstanceOf(e), steps)
	if err := check.ActivationBound(res, Bound("five", v.N)); err == nil {
		t.Fatal("shrunk witness does not reproduce the bound breach")
	}

	// Campaign counters made it into the metrics sink.
	snap := met.Snapshot()
	if snap.Schedules != int64(rep.Schedules) || snap.ShrinkIters != rep.ShrinkIters || snap.ShrinkIters == 0 {
		t.Errorf("metrics: schedules=%d shrink=%d, want %d/%d", snap.Schedules, snap.ShrinkIters, rep.Schedules, rep.ShrinkIters)
	}
}

// TestCampaignPartialOnTimeout: a tripped wall-clock budget yields a
// report explicitly marked PARTIAL, never a silent truncation.
func TestCampaignPartialOnTimeout(t *testing.T) {
	rep, err := Campaign(context.Background(), Config{
		Alg: "five", Mode: sim.ModeInterleaved, Seed: 3, Campaign: 50_000, Workers: 2,
		Budget: runctl.Budget{Timeout: 20 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Partial {
		t.Skip("campaign finished inside the timeout; nothing to assert")
	}
	if rep.StopReason != runctl.StopTimeout {
		t.Errorf("stop reason = %q, want timeout", rep.StopReason)
	}
	if !strings.Contains(rep.String(), "[PARTIAL: timeout]") {
		t.Errorf("summary lacks the [PARTIAL: timeout] marker: %s", rep.String())
	}
	var b bytes.Buffer
	rep.Write(&b)
	if !strings.Contains(b.String(), "PARTIAL (timeout)") {
		t.Errorf("report lacks the PARTIAL line:\n%s", b.String())
	}
	if rep.Schedules >= rep.Campaign {
		t.Errorf("partial report claims all %d cells completed", rep.Campaign)
	}
}

// TestCampaignCancelled: caller cancellation is reported as such.
func TestCampaignCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := Campaign(ctx, Config{Alg: "six", Mode: sim.ModeInterleaved, Seed: 1, Campaign: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Partial || rep.StopReason != runctl.StopCancelled {
		t.Fatalf("cancelled campaign: partial=%v reason=%q", rep.Partial, rep.StopReason)
	}
}
