package fuzzsched

// Contract-derived oracle tests: campaigns over the contract-first
// families must be clean (zero spurious flags), the report header must
// carry the contract label exactly when the contract is labeled, and the
// stabilization oracle must have teeth — a livelocking rule variant is
// flagged as a convergence violation.

import (
	"context"
	"strings"
	"testing"

	"asynccycle/internal/graph"
	"asynccycle/internal/sim"
	"asynccycle/internal/ssuni"
)

func TestCampaignContractHeader(t *testing.T) {
	for _, tc := range []struct {
		alg  string
		want string // "" = legacy bare adapter, header omits the field
	}{
		{alg: "ssuni", want: "ss-coloring"},
		{alg: "agree-p3", want: "approx-agreement"},
		{alg: "fast", want: ""},
	} {
		rep, err := Campaign(context.Background(), Config{
			Alg: tc.alg, Mode: sim.ModeInterleaved, Seed: 11, Campaign: 8,
		})
		if err != nil {
			t.Fatalf("%s: %v", tc.alg, err)
		}
		if rep.Contract != tc.want {
			t.Errorf("%s: Contract = %q, want %q", tc.alg, rep.Contract, tc.want)
		}
		has := strings.Contains(rep.String(), "contract=")
		if has != (tc.want != "") {
			t.Errorf("%s: header %q — contract field presence wrong", tc.alg, rep.String())
		}
		if len(rep.Violations) != 0 || len(rep.Divergences) != 0 {
			t.Errorf("%s: spurious findings: %v %v", tc.alg, rep.Violations, rep.Divergences)
		}
	}
}

// TestStabilizationOracleFlagsLivelock pins the oracle's teeth: the
// anonymous uniform rule (no root) livelocks on C4 from (2,0,1,2), and
// the fair round-robin suffix must report a convergence violation.
func TestStabilizationOracleFlagsLivelock(t *testing.T) {
	colors := []int{2, 0, 1, 2}
	g, err := graph.Cycle(len(colors))
	if err != nil {
		t.Fatal(err)
	}
	anon := ssuni.NewAnonymousNodes(colors)
	e, err := sim.NewEngine(g, anon)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SeedRegisters(ssuni.Colors(colors)); err != nil {
		t.Fatal(err)
	}
	e.SetRecordValues(true)
	safety := func(r sim.Result) error { return ssuni.ProperRing(g, r) }
	kind, detail := stabilizationOracle(sim.InstanceOf(e), safety, len(colors), ssuni.ConvergenceBound(len(colors)))
	if kind != "convergence" {
		t.Fatalf("kind = %q (%s), want convergence", kind, detail)
	}

	// And the real rule from the same state converges cleanly.
	e2, err := ssuni.NewEngine(colors)
	if err != nil {
		t.Fatal(err)
	}
	kind, detail = stabilizationOracle(sim.InstanceOf(e2), safety, len(colors), ssuni.ConvergenceBound(len(colors)))
	if kind != "" {
		t.Fatalf("rooted rule flagged: %s (%s)", kind, detail)
	}
}
