package cv

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBits(t *testing.T) {
	tests := []struct {
		z    int
		want int
	}{
		{0, 0},
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{7, 3},
		{8, 4},
		{1023, 10},
		{1024, 11},
		{1 << 62, 63},
	}
	for _, tt := range tests {
		if got := Bits(tt.z); got != tt.want {
			t.Errorf("Bits(%d) = %d, want %d", tt.z, got, tt.want)
		}
	}
}

func TestBitsPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Bits(-1) did not panic")
		}
	}()
	Bits(-1)
}

func TestBit(t *testing.T) {
	tests := []struct {
		z, k, want int
	}{
		{0b1011, 0, 1},
		{0b1011, 1, 1},
		{0b1011, 2, 0},
		{0b1011, 3, 1},
		{0b1011, 4, 0},
		{1, 100, 0}, // beyond word size
	}
	for _, tt := range tests {
		if got := Bit(tt.z, tt.k); got != tt.want {
			t.Errorf("Bit(%b, %d) = %d, want %d", tt.z, tt.k, got, tt.want)
		}
	}
}

func TestFExamples(t *testing.T) {
	tests := []struct {
		x, y, want int
	}{
		// x=6 (110), y=5 (101): first differing bit is 0, x_0 = 0 → 0.
		{6, 5, 0},
		// x=5 (101), y=4 (100): first differing bit is 0, x_0 = 1 → 1.
		{5, 4, 1},
		// x=12 (1100), y=4 (0100): first differing bit is 3, capped by
		// |y| = 3 → i = 3, x_3 = 1 → 7.
		{12, 4, 7},
		// x=8 (1000), y=0: i = min(4, 0) = 0, x_0 = 0 → 0.
		{8, 0, 0},
		// equal arguments: i = |x|, bit above the top is 0.
		{5, 5, 6},
	}
	for _, tt := range tests {
		if got := F(tt.x, tt.y); got != tt.want {
			t.Errorf("F(%d, %d) = %d, want %d", tt.x, tt.y, got, tt.want)
		}
	}
}

// TestLemma42Exhaustive checks Lemma 4.2 — x > y ≥ 10 implies f(x, y) < y —
// exhaustively for all pairs up to 1<<11.
func TestLemma42Exhaustive(t *testing.T) {
	const limit = 1 << 11
	for y := 10; y < limit; y++ {
		for x := y + 1; x < limit; x++ {
			if f := F(x, y); f >= y {
				t.Fatalf("Lemma 4.2 violated: f(%d, %d) = %d ≥ %d", x, y, f, y)
			}
		}
	}
}

// TestLemma43Exhaustive checks Lemma 4.3 — x > y > z implies
// f(x, y) ≠ f(y, z) — exhaustively for all triples up to 1<<8.
func TestLemma43Exhaustive(t *testing.T) {
	const limit = 1 << 8
	for z := 0; z < limit; z++ {
		for y := z + 1; y < limit; y++ {
			for x := y + 1; x < limit; x++ {
				if F(x, y) == F(y, z) {
					t.Fatalf("Lemma 4.3 violated: f(%d,%d) == f(%d,%d) == %d", x, y, y, z, F(x, y))
				}
			}
		}
	}
}

// TestLemma42Quick property-tests Lemma 4.2 on random large pairs.
func TestLemma42Quick(t *testing.T) {
	prop := func(a, b uint32) bool {
		x, y := int(a), int(b)
		if x == y {
			return true
		}
		if x < y {
			x, y = y, x
		}
		if y < 10 {
			y += 10
			x += 11
		}
		return F(x, y) < y
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20_000}); err != nil {
		t.Error(err)
	}
}

// TestLemma43Quick property-tests Lemma 4.3 on random large triples.
func TestLemma43Quick(t *testing.T) {
	prop := func(a, b, c uint32) bool {
		vals := []int{int(a), int(b), int(c)}
		// Sort the three values descending into x > y > z; skip collisions.
		x, y, z := vals[0], vals[1], vals[2]
		if x < y {
			x, y = y, x
		}
		if y < z {
			y, z = z, y
		}
		if x < y {
			x, y = y, x
		}
		if x == y || y == z {
			return true
		}
		return F(x, y) != F(y, z)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20_000}); err != nil {
		t.Error(err)
	}
}

// TestFValueBound checks f(x, y) ≤ 2|x|+1 (the bound behind Lemma 4.1) on
// random inputs.
func TestFValueBound(t *testing.T) {
	prop := func(a, b uint32) bool {
		x, y := int(a), int(b)
		return F(x, y) <= 2*Bits(x)+1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20_000}); err != nil {
		t.Error(err)
	}
}

func TestBound(t *testing.T) {
	tests := []struct {
		x, want int
	}{
		{0, 1},
		{1, 3},
		{7, 7},
		{1 << 20, 43},
	}
	for _, tt := range tests {
		if got := Bound(tt.x); got != tt.want {
			t.Errorf("Bound(%d) = %d, want %d", tt.x, got, tt.want)
		}
	}
}

func TestBoundIterations(t *testing.T) {
	tests := []struct {
		x, want int
	}{
		{0, 0},
		{9, 0},
		{10, 1}, // 10 → 9
		{100, 2},
		{1 << 20, 3},
		{1 << 62, 3},
	}
	for _, tt := range tests {
		if got := BoundIterations(tt.x); got != tt.want {
			t.Errorf("BoundIterations(%d) = %d, want %d", tt.x, got, tt.want)
		}
	}
}

func TestBoundIterationsIsLogStarish(t *testing.T) {
	// The iteration count may exceed log* x only by a small constant, and
	// must be monotone-ish: across 62 binary orders of magnitude it never
	// exceeds 4.
	for k := 4; k < 63; k++ {
		x := 1 << uint(k)
		it := BoundIterations(x)
		if it > 4 {
			t.Errorf("BoundIterations(2^%d) = %d > 4", k, it)
		}
	}
}

func TestAdversarialIterations(t *testing.T) {
	if got := AdversarialIterations(5); got != 0 {
		t.Errorf("AdversarialIterations(5) = %d, want 0 (already constant)", got)
	}
	// Monotone staircase: never more than a small constant, and at least 1
	// for anything ≥ 16.
	for k := 4; k < 63; k++ {
		x := 1<<uint(k) | 1 // avoid exact powers of two, plus variety below
		it := AdversarialIterations(x)
		if it < 1 || it > 5 {
			t.Errorf("AdversarialIterations(2^%d+1) = %d, outside [1,5]", k, it)
		}
	}
}

// TestAdversarialDescentRespectsAdoption replays the descent and verifies
// each adopted value is a legal Algorithm 3 line-15 adoption: strictly
// below the neighbor value used.
func TestAdversarialDescentRespectsAdoption(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		x := rng.Intn(1 << 30)
		cur := x
		steps := 0
		for cur >= 10 && steps < 100 {
			next := -1
			for j := 0; j < Bits(cur); j++ {
				var y int
				if Bit(cur, j) == 1 {
					y = cur - (1 << uint(j))
				} else {
					y = (cur & ((1 << uint(j)) - 1)) | (1 << uint(j))
				}
				if y >= cur {
					continue
				}
				if v := F(cur, y); v < y && v > next {
					next = v
				}
			}
			if next < 0 {
				break
			}
			if next >= cur {
				t.Fatalf("descent from %d failed to decrease at %d → %d", x, cur, next)
			}
			cur = next
			steps++
		}
		if steps != AdversarialIterations(x) {
			t.Fatalf("AdversarialIterations(%d) = %d, replay found %d", x, AdversarialIterations(x), steps)
		}
	}
}

func TestLogStar(t *testing.T) {
	tests := []struct {
		n    float64
		want int
	}{
		{0, 0},
		{1, 0},
		{2, 1},
		{4, 2},
		{16, 3},
		{65_536, 4},
		{1 << 20, 5},
		{1 << 62, 5},
	}
	for _, tt := range tests {
		if got := LogStar(tt.n); got != tt.want {
			t.Errorf("LogStar(%g) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestReduce(t *testing.T) {
	// f(37, 21) : 100101 vs 010101 differ first at bit 4 → i=4, x_4=0 → 8.
	// 8 < 21 so the reduction is adopted.
	if nx, changed := Reduce(37, 21); !changed || nx != 8 {
		t.Errorf("Reduce(37, 21) = (%d, %t), want (8, true)", nx, changed)
	}
	// f(3, 2): differ at bit 0 → f = 1; 1 < 2 adopted.
	if nx, changed := Reduce(3, 2); !changed || nx != 1 {
		t.Errorf("Reduce(3, 2) = (%d, %t), want (1, true)", nx, changed)
	}
	// f(2, 1): 10 vs 01 differ at bit 0 → f = 0 < 1 adopted.
	if nx, changed := Reduce(2, 1); !changed || nx != 0 {
		t.Errorf("Reduce(2, 1) = (%d, %t), want (0, true)", nx, changed)
	}
	// f(5, 1): i = min(3,1,2) = 1, x_1 = 0 → 2 ≥ 1... 2 > 1 so rejected.
	if nx, changed := Reduce(5, 1); changed || nx != 5 {
		t.Errorf("Reduce(5, 1) = (%d, %t), want (5, false)", nx, changed)
	}
}

func BenchmarkF(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]int, 1024)
	ys := make([]int, 1024)
	for i := range xs {
		xs[i] = rng.Intn(1 << 50)
		ys[i] = rng.Intn(1 << 50)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = F(xs[i%1024], ys[i%1024])
	}
}
