// Package cv implements the Cole–Vishkin deterministic coin-tossing
// machinery the paper uses to reduce identifiers (§4.1): the bit-length
// |Z| = ⌈log₂(Z+1)⌉, the reduction function f of Equation (6), its iterates,
// the bound function F of Lemma 4.1, and log*.
//
// The key algebraic properties, proved as Lemmas 4.2 and 4.3 in the paper
// and property-tested in this package, are:
//
//   - if x > y ≥ 10 then f(x, y) < y            (identifiers shrink), and
//   - if x > y > z then f(x, y) ≠ f(y, z)        (proper coloring preserved).
package cv

import (
	"math"
	"math/bits"
)

// Bits returns the length |z| = ⌈log₂(z+1)⌉ of the binary decomposition of
// z ≥ 0, i.e. the number of bits up to and including the highest set bit.
// Bits(0) == 0.
func Bits(z int) int {
	if z < 0 {
		panic("cv.Bits: negative argument")
	}
	return bits.Len(uint(z))
}

// Bit returns bit k (0-indexed from the least significant end) of z ≥ 0.
func Bit(z, k int) int {
	if k >= bits.UintSize {
		return 0
	}
	return (z >> uint(k)) & 1
}

// F computes the reduction function of Equation (6):
//
//	f(x, y) = 2i + xᵢ  where  i = min( {|x|, |y|} ∪ { k : xₖ ≠ yₖ } ).
//
// Both arguments must be non-negative. Note f is well defined even when
// x == y (then i = min(|x|, |y|)), although the algorithms only ever apply
// it to distinct neighbor identifiers.
func F(x, y int) int {
	if x < 0 || y < 0 {
		panic("cv.F: negative argument")
	}
	i := Bits(x)
	if ly := Bits(y); ly < i {
		i = ly
	}
	if d := x ^ y; d != 0 {
		if k := bits.TrailingZeros(uint(d)); k < i {
			i = k
		}
	}
	return 2*i + Bit(x, i)
}

// Bound is the function F(x) = 2⌈log₂(x+1)⌉ + 1 of Lemma 4.1: an upper bound
// on the value produced by one application of the reduction function f to a
// first argument of magnitude x, since f(x, y) ≤ 2|x| + 1.
func Bound(x int) int {
	return 2*Bits(x) + 1
}

// BoundIterations returns the smallest t such that the t-th iterate of Bound
// applied to x drops below 10, the constant-size identifier regime of §4
// (Lemma 4.1 shows t = O(log* x)). For x < 10 it returns 0.
func BoundIterations(x int) int {
	t := 0
	for x >= 10 {
		x = Bound(x)
		t++
	}
	return t
}

// AdversarialIterations measures how many reduction steps an adversary can
// force on a single identifier before it drops below 10. At each step the
// adversary picks the smaller neighbor value y < cur that maximizes the
// adopted result, subject to the algorithm's adoption rule f(cur, y) < y
// (Algorithm 3, line 15). Forcing the first differing bit as high as
// possible yields adopted values near 2·|cur|, so the descent is the
// iterated-logarithm staircase of Lemma 4.1: the result is Θ(log* x).
func AdversarialIterations(x int) int {
	t := 0
	cur := x
	for cur >= 10 {
		// Candidate neighbors y < cur whose first differing bit with cur
		// is exactly j: clear bit j when cur has it set (keeping the bits
		// above), or keep cur's bits below j, set bit j, and drop
		// everything above when cur has bit j clear.
		best := -1
		for j := 0; j < Bits(cur); j++ {
			var y int
			if Bit(cur, j) == 1 {
				y = cur - (1 << uint(j))
			} else {
				y = (cur & ((1 << uint(j)) - 1)) | (1 << uint(j))
			}
			if y >= cur || y < 0 {
				continue
			}
			if v := F(cur, y); v < y && v > best {
				best = v
			}
		}
		if best < 0 {
			break // no adoptable reduction exists; cannot be forced further
		}
		cur = best
		t++
	}
	return t
}

// LogStar returns log* n: the number of times log₂ must be iterated,
// starting from n, before the value drops to ≤ 1. LogStar(x) == 0 for
// x ≤ 1, LogStar(2) == 1, LogStar(16) == 3, LogStar(65536) == 4.
func LogStar(n float64) int {
	k := 0
	for n > 1 {
		n = math.Log2(n)
		k++
	}
	return k
}

// Reduce applies f(x, y) once, then clamps per the Algorithm 3 rule: the
// result replaces x only if it is strictly below y (line 15). It returns the
// possibly updated identifier and whether it changed.
func Reduce(x, y int) (nx int, changed bool) {
	v := F(x, y)
	if v < y {
		return v, true
	}
	return x, false
}
