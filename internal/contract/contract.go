// Package contract is the pluggable correctness layer: a Contract states
// what a protocol promises (its safety properties), where the promise is
// checked (at termination, or as an invariant over every suffix once it
// holds), and what kind of liveness backs it (a wait-freedom round bound,
// convergence, or closure + convergence for self-stabilization).
//
// Every verification surface consumes the contract instead of hard-coding
// the terminating-coloring shape: the model checker derives its per-state
// invariant and its liveness analysis from it, the schedule fuzzer derives
// its safety and liveness oracles from it, and the CLIs label verdicts
// with the contract and property that produced them. See DESIGN.md §15.
package contract

import (
	"fmt"

	"asynccycle/internal/graph"
	"asynccycle/internal/sim"
)

// TerminalPolicy states where a contract's safety properties are
// evaluated.
type TerminalPolicy int

const (
	// CheckAtTermination: the properties constrain the outputs of
	// terminated processes — the classic decision-task shape. The model
	// checker may evaluate them at every reachable state because the
	// properties only read Done outputs, but the promise is about
	// terminal configurations.
	CheckAtTermination TerminalPolicy = iota
	// InvariantOnLegalSuffix: the properties define a set of legitimate
	// configurations; the promise is closure — once a reachable
	// configuration is legitimate, every successor stays legitimate — so
	// the properties hold as an invariant on every legal suffix. The
	// self-stabilization shape: transient illegitimate states are not
	// violations.
	InvariantOnLegalSuffix
)

// String names the policy for verdict labels.
func (p TerminalPolicy) String() string {
	switch p {
	case CheckAtTermination:
		return "at-termination"
	case InvariantOnLegalSuffix:
		return "legal-suffix-invariant"
	}
	return fmt.Sprintf("TerminalPolicy(%d)", int(p))
}

// LivenessKind states what progress guarantee backs the contract.
type LivenessKind int

const (
	// WaitFreeBounded: every non-crashed process decides within the
	// descriptor's per-process round bound regardless of the schedule.
	WaitFreeBounded LivenessKind = iota
	// Convergence: executions reach a legitimate configuration from the
	// protocol's own initial states, with no uniform per-process bound.
	Convergence
	// ClosureConvergence: from *arbitrary* initial configurations every
	// fair execution reaches a legitimate configuration (convergence) and
	// legitimate configurations are closed under steps (closure) — the
	// self-stabilization guarantee.
	ClosureConvergence
)

// String names the liveness kind for verdict labels.
func (k LivenessKind) String() string {
	switch k {
	case WaitFreeBounded:
		return "wait-free-bounded"
	case Convergence:
		return "convergence"
	case ClosureConvergence:
		return "closure+convergence"
	}
	return fmt.Sprintf("LivenessKind(%d)", int(k))
}

// Property is one named safety predicate over an execution outcome. The
// name is the provenance label a violation carries (e.g. "proper-edge").
type Property struct {
	Name  string
	Check func(g graph.Graph, r sim.Result) error
}

// Contract is the pluggable correctness specification a protocol
// registers. Safety evaluates the conjunction of the properties;
// implementations label violations "contract=<name> property=<prop>: …"
// unless they are legacy adapters (Labeled reports which).
type Contract interface {
	// ContractName identifies the contract in verdict labels and report
	// headers ("coloring", "approx-agreement", "ss-coloring").
	ContractName() string
	// TerminalPolicy states where the safety properties are evaluated.
	TerminalPolicy() TerminalPolicy
	// Liveness states the progress guarantee backing the contract.
	Liveness() LivenessKind
	// Properties lists the named safety predicates in evaluation order.
	Properties() []Property
	// Safety evaluates the properties against one outcome and returns the
	// first violation, or nil.
	Safety(g graph.Graph, r sim.Result) error
	// Labeled reports whether violations carry contract/property
	// provenance labels. Legacy adapters synthesized from a bare Validity
	// closure return false so pre-contract output stays byte-identical.
	Labeled() bool
}

// Violation formats a labeled contract violation. Checkers use it when
// they detect a contract-level failure themselves (outside a Property),
// e.g. a closure breach found by the model checker.
func Violation(contractName, property string, err error) error {
	return fmt.Errorf("contract=%s property=%s: %w", contractName, property, err)
}

// Terminating is the decision-task contract: safety properties checked at
// termination, liveness a wait-freedom round bound (or Convergence for
// terminating protocols documented without a uniform bound).
type Terminating struct {
	// Name is the contract label ("coloring", "approx-agreement").
	Name string
	// Props are the safety predicates, evaluated in order.
	Props []Property
	// Kind is the liveness guarantee; the zero value is WaitFreeBounded.
	Kind LivenessKind
	// Bare, when set, makes Safety return property errors unlabeled —
	// the legacy-adapter mode protocol.Register uses when it wraps an
	// existing Validity closure, keeping historical output byte-exact.
	Bare bool
}

// ContractName implements Contract.
func (c *Terminating) ContractName() string { return c.Name }

// TerminalPolicy implements Contract: properties are checked at
// termination.
func (c *Terminating) TerminalPolicy() TerminalPolicy { return CheckAtTermination }

// Liveness implements Contract.
func (c *Terminating) Liveness() LivenessKind { return c.Kind }

// Properties implements Contract.
func (c *Terminating) Properties() []Property { return c.Props }

// Labeled implements Contract.
func (c *Terminating) Labeled() bool { return !c.Bare }

// Safety evaluates the properties in order and returns the first
// violation — labeled with contract/property provenance unless Bare.
func (c *Terminating) Safety(g graph.Graph, r sim.Result) error {
	for _, p := range c.Props {
		if err := p.Check(g, r); err != nil {
			if c.Bare {
				return err
			}
			return Violation(c.Name, p.Name, err)
		}
	}
	return nil
}

// Stabilizing is the self-stabilization contract: the properties define
// the legitimate configurations, the promise is closure + convergence
// from arbitrary initial states, and nothing terminates — processes run
// forever and the published register values (sim.Result.Values) carry the
// configuration.
type Stabilizing struct {
	// Name is the contract label ("ss-coloring").
	Name string
	// Props define legitimacy: a configuration is legitimate exactly when
	// every property accepts it.
	Props []Property
	// ConvergenceBound returns, for instance size n, a number of fair
	// round-robin activations after which any execution must have reached
	// a legitimate configuration — the fuzzer's convergence oracle. A
	// non-positive return disables the oracle.
	ConvergenceBound func(n int) int
}

// ContractName implements Contract.
func (c *Stabilizing) ContractName() string { return c.Name }

// TerminalPolicy implements Contract: legitimacy is an invariant on every
// legal suffix, not a terminal-state check.
func (c *Stabilizing) TerminalPolicy() TerminalPolicy { return InvariantOnLegalSuffix }

// Liveness implements Contract.
func (c *Stabilizing) Liveness() LivenessKind { return ClosureConvergence }

// Properties implements Contract.
func (c *Stabilizing) Properties() []Property { return c.Props }

// Labeled implements Contract: stabilizing contracts always label.
func (c *Stabilizing) Labeled() bool { return true }

// Safety reports whether the configuration is legitimate — the first
// violated legitimacy property, labeled, or nil. Callers that need
// "illegitimate but not a violation" semantics (the fuzzer's transient
// states, the model checker's convergence analysis) call this as the
// legitimacy predicate rather than as a verdict.
func (c *Stabilizing) Safety(g graph.Graph, r sim.Result) error {
	for _, p := range c.Props {
		if err := p.Check(g, r); err != nil {
			return Violation(c.Name, p.Name, err)
		}
	}
	return nil
}
