package contract

import (
	"errors"
	"strings"
	"testing"

	"asynccycle/internal/graph"
	"asynccycle/internal/sim"
)

func pass(graph.Graph, sim.Result) error { return nil }

func fail(msg string) func(graph.Graph, sim.Result) error {
	return func(graph.Graph, sim.Result) error { return errors.New(msg) }
}

func TestTerminatingLabelsFirstViolation(t *testing.T) {
	c := &Terminating{
		Name: "coloring",
		Props: []Property{
			{Name: "proper-edge", Check: pass},
			{Name: "palette", Check: fail("color 9 out of range")},
			{Name: "never-reached", Check: fail("should not run")},
		},
	}
	g := graph.MustCycle(4)
	err := c.Safety(g, sim.Result{})
	if err == nil {
		t.Fatal("expected a violation")
	}
	want := "contract=coloring property=palette: color 9 out of range"
	if err.Error() != want {
		t.Fatalf("labeled violation = %q, want %q", err, want)
	}
	if !c.Labeled() {
		t.Error("non-bare terminating contract must report Labeled")
	}
}

func TestTerminatingBareKeepsLegacyText(t *testing.T) {
	c := &Terminating{
		Name:  "coloring",
		Props: []Property{{Name: "validity", Check: fail("nodes 1 and 2 share color 3")}},
		Bare:  true,
	}
	g := graph.MustCycle(4)
	err := c.Safety(g, sim.Result{})
	if err == nil || err.Error() != "nodes 1 and 2 share color 3" {
		t.Fatalf("bare violation = %v, want the unlabeled legacy text", err)
	}
	if c.Labeled() {
		t.Error("bare adapter must not report Labeled")
	}
	if c.Safety(g, sim.Result{Done: []bool{true}}) == nil {
		t.Error("bare mode must still report the violation")
	}
}

func TestTerminatingDefaults(t *testing.T) {
	c := &Terminating{Name: "x"}
	if c.TerminalPolicy() != CheckAtTermination {
		t.Error("terminating contract must check at termination")
	}
	if c.Liveness() != WaitFreeBounded {
		t.Error("zero Kind must be WaitFreeBounded")
	}
	if err := c.Safety(graph.MustCycle(3), sim.Result{}); err != nil {
		t.Errorf("empty property list must accept: %v", err)
	}
}

func TestStabilizingShape(t *testing.T) {
	c := &Stabilizing{
		Name:  "ss-coloring",
		Props: []Property{{Name: "proper-ring", Check: fail("conflict at edge (0,1)")}},
	}
	if c.TerminalPolicy() != InvariantOnLegalSuffix {
		t.Error("stabilizing contract must use the legal-suffix policy")
	}
	if c.Liveness() != ClosureConvergence {
		t.Error("stabilizing contract must promise closure+convergence")
	}
	if !c.Labeled() {
		t.Error("stabilizing contracts always label")
	}
	err := c.Safety(graph.MustCycle(4), sim.Result{})
	if err == nil || !strings.Contains(err.Error(), "contract=ss-coloring property=proper-ring:") {
		t.Fatalf("legitimacy violation = %v, want labeled provenance", err)
	}
}

func TestEnumStrings(t *testing.T) {
	cases := map[string]string{
		CheckAtTermination.String():     "at-termination",
		InvariantOnLegalSuffix.String(): "legal-suffix-invariant",
		WaitFreeBounded.String():        "wait-free-bounded",
		Convergence.String():            "convergence",
		ClosureConvergence.String():     "closure+convergence",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("enum string %q, want %q", got, want)
		}
	}
	if TerminalPolicy(9).String() != "TerminalPolicy(9)" || LivenessKind(9).String() != "LivenessKind(9)" {
		t.Error("out-of-range enums must render their numeric form")
	}
}
