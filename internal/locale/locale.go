// Package locale implements the synchronous failure-free LOCAL model
// baseline the paper compares against (§1.1): Cole–Vishkin deterministic
// coin tossing, which 3-colors the oriented n-node cycle in
// ½·log* n + O(1) synchronous rounds. It provides the quantitative
// comparison point for Algorithm 3's O(log* n) asynchronous round bound.
//
// Unlike the asynchronous packages, communication here is lock-step: in
// each round every node reads its successor's current color (the LOCAL
// model gives the cycle an orientation for this classic algorithm) and
// applies the reduction simultaneously.
package locale

import (
	"fmt"
	"math/bits"

	"asynccycle/internal/ids"
)

// reduce is the classic Cole–Vishkin step on an oriented edge: given the
// node's color x and its successor's color y with x ≠ y, return 2k + x_k
// where k is the lowest bit position at which x and y differ. Two adjacent
// nodes get distinct results, so the coloring stays proper.
func reduce(x, y int) int {
	k := bits.TrailingZeros(uint(x ^ y))
	return 2*k + (x>>uint(k))&1
}

// ThreeColorCycle properly 3-colors the cycle whose node i has identifier
// xs[i] and successor (i+1) mod n, returning the colors (in {0, 1, 2}) and
// the number of synchronous rounds used. Identifiers must be distinct and
// non-negative.
func ThreeColorCycle(xs []int) (colors []int, rounds int, err error) {
	n := len(xs)
	if n < 3 {
		return nil, 0, fmt.Errorf("locale: cycle of length %d too short", n)
	}
	if !ids.Unique(xs) {
		return nil, 0, fmt.Errorf("locale: identifiers not distinct non-negative")
	}
	colors = append([]int(nil), xs...)

	// Phase 1: iterate Cole–Vishkin until all colors are in {0, …, 5}.
	// Once every color has at most 3 bits, differing positions are ≤ 2 and
	// the reduction maps into {0, …, 5}, a fixed range.
	for !allBelow(colors, 6) {
		next := make([]int, n)
		for i := 0; i < n; i++ {
			next[i] = reduce(colors[i], colors[(i+1)%n])
		}
		colors = next
		rounds++
	}

	// Phase 2: eliminate colors 5, 4, 3 one synchronous round each. All
	// nodes of the eliminated color class recolor simultaneously with the
	// smallest color unused by their two neighbors; the class is an
	// independent set (the coloring is proper), so this is safe, and with
	// two neighbors the replacement is always ≤ 2.
	for drop := 5; drop >= 3; drop-- {
		next := append([]int(nil), colors...)
		for i := 0; i < n; i++ {
			if colors[i] != drop {
				continue
			}
			l, r := colors[(i+n-1)%n], colors[(i+1)%n]
			for c := 0; c <= 2; c++ {
				if c != l && c != r {
					next[i] = c
					break
				}
			}
		}
		colors = next
		rounds++
	}
	return colors, rounds, nil
}

// allBelow reports whether every value is < k.
func allBelow(xs []int, k int) bool {
	for _, x := range xs {
		if x >= k {
			return false
		}
	}
	return true
}

// ProperCycleColoring reports whether colors properly color the n-cycle in
// index order.
func ProperCycleColoring(colors []int) bool {
	n := len(colors)
	if n < 3 {
		return false
	}
	for i := 0; i < n; i++ {
		if colors[i] == colors[(i+1)%n] {
			return false
		}
	}
	return true
}
