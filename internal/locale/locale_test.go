package locale

import (
	"testing"
	"testing/quick"

	"asynccycle/internal/cv"
	"asynccycle/internal/ids"
)

func TestThreeColorCycleSmall(t *testing.T) {
	for _, n := range []int{3, 4, 5, 8, 16} {
		xs := ids.MustGenerate(ids.Random, n, int64(n))
		colors, rounds, err := ThreeColorCycle(xs)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !ProperCycleColoring(colors) {
			t.Errorf("n=%d: improper coloring %v", n, colors)
		}
		for i, c := range colors {
			if c < 0 || c > 2 {
				t.Errorf("n=%d node %d: color %d outside {0,1,2}", n, i, c)
			}
		}
		if rounds < 3 { // at least the three shift-down rounds
			t.Errorf("n=%d: %d rounds", n, rounds)
		}
	}
}

func TestThreeColorCycleAssignments(t *testing.T) {
	for _, a := range ids.All() {
		xs := ids.MustGenerate(a, 64, 7)
		colors, _, err := ThreeColorCycle(xs)
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if !ProperCycleColoring(colors) {
			t.Errorf("%s: improper coloring", a)
		}
	}
}

func TestThreeColorCycleRoundsTrackLogStar(t *testing.T) {
	prev := 0
	for _, n := range []int{8, 256, 65_536, 1 << 20} {
		xs := ids.MustGenerate(ids.Random, n, 13)
		_, rounds, err := ThreeColorCycle(xs)
		if err != nil {
			t.Fatal(err)
		}
		budget := cv.LogStar(float64(n)) + 8
		if rounds > budget {
			t.Errorf("n=%d: %d rounds exceed log* budget %d", n, rounds, budget)
		}
		if rounds < prev-2 {
			t.Errorf("rounds not roughly monotone: n=%d got %d after %d", n, rounds, prev)
		}
		prev = rounds
	}
}

func TestThreeColorCycleErrors(t *testing.T) {
	if _, _, err := ThreeColorCycle([]int{1, 2}); err == nil {
		t.Error("accepted n=2")
	}
	if _, _, err := ThreeColorCycle([]int{1, 2, 1}); err == nil {
		t.Error("accepted duplicate identifiers")
	}
	if _, _, err := ThreeColorCycle([]int{1, -2, 3}); err == nil {
		t.Error("accepted negative identifier")
	}
}

func TestReduceStepPreservesProper(t *testing.T) {
	// One reduce round on any distinct pair yields distinct results for
	// adjacent applications: reduce(x, y) ≠ reduce(y, z) when x≠y, y≠z
	// share the classic Cole–Vishkin argument.
	prop := func(a, b, c uint32) bool {
		x, y, z := int(a), int(b), int(c)
		if x == y || y == z {
			return true
		}
		return reduce(x, y) != reduce(y, z) || x == z
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20_000}); err != nil {
		t.Error(err)
	}
}

func TestProperCycleColoring(t *testing.T) {
	tests := []struct {
		colors []int
		want   bool
	}{
		{[]int{0, 1, 2}, true},
		{[]int{0, 1, 0, 1}, true},
		{[]int{0, 1, 1}, false},
		{[]int{0, 1, 0}, false}, // wrap collision
		{[]int{0, 1}, false},    // too short
	}
	for _, tt := range tests {
		if got := ProperCycleColoring(tt.colors); got != tt.want {
			t.Errorf("ProperCycleColoring(%v) = %t", tt.colors, got)
		}
	}
}

func TestAllBelow(t *testing.T) {
	if !allBelow([]int{1, 2}, 3) || allBelow([]int{1, 3}, 3) {
		t.Error("allBelow wrong")
	}
}
