package core_test

// Per-lemma behavioural tests: each numbered lemma of the paper with
// testable operational content is verified directly, either exhaustively
// (via the model checker's exact worst-case analysis) or across scheduler
// sweeps on structured instances.

import (
	"math/rand"
	"testing"

	"asynccycle/internal/core"
	"asynccycle/internal/graph"
	"asynccycle/internal/ids"
	"asynccycle/internal/model"
	"asynccycle/internal/schedule"
	"asynccycle/internal/sim"
)

// monotoneDistances returns, for each node of the cycle with the given
// identifiers, the monotone distances ℓ (to its nearest local maximum
// along a strictly increasing path) and ℓ' (to its nearest local minimum
// along a strictly decreasing path), as used by Lemma 3.9. A local
// maximum has ℓ = 0; a node whose identifiers increase in exactly one
// direction walks that direction; a local minimum takes the shorter of
// the two increasing walks (and symmetrically for ℓ').
func monotoneDistances(xs []int) (up, down []int) {
	n := len(xs)
	up = make([]int, n)
	down = make([]int, n)
	for i := 0; i < n; i++ {
		up[i] = monotoneDist(xs, i, func(a, b int) bool { return a < b })
		down[i] = monotoneDist(xs, i, func(a, b int) bool { return a > b })
	}
	return up, down
}

// monotoneDist returns the number of edges from i to the nearest node at
// which a strictly less-monotone walk must stop (i.e. the nearest local
// extremum in the walk's sense). Directions whose first step is not
// monotone do not provide a path; if neither does, i itself is the
// extremum and the distance is 0.
func monotoneDist(xs []int, i int, less func(a, b int) bool) int {
	n := len(xs)
	walk := func(dir int) (int, bool) {
		cur := i
		d := 0
		for d <= n {
			next := (cur + dir + n) % n
			if !less(xs[cur], xs[next]) {
				return d, d > 0 // a zero-length walk is not a path
			}
			cur = next
			d++
		}
		return d, true
	}
	dPlus, okPlus := walk(+1)
	dMinus, okMinus := walk(-1)
	switch {
	case okPlus && okMinus:
		if dPlus < dMinus {
			return dPlus
		}
		return dMinus
	case okPlus:
		return dPlus
	case okMinus:
		return dMinus
	default:
		return 0 // i is itself the extremum
	}
}

// TestLemma34ExtremaReturnFast verifies the corollary of Lemma 3.4 used in
// Theorem 3.1's proof: local extrema return after at most 4 activations —
// exactly, over every schedule, via the model checker on small cycles.
func TestLemma34ExtremaReturnFast(t *testing.T) {
	instances := [][]int{
		{1, 5, 3},        // node 1 is the max, node 0 the min
		{2, 9, 4, 7},     // max at 1, min at 0
		{10, 3, 8, 1, 6}, // extrema at several nodes
	}
	for _, xs := range instances {
		n := len(xs)
		g := graph.MustCycle(n)
		e, _ := sim.NewEngine(g, core.NewPairNodes(xs))
		vec, ok, rep := model.WorstActivations(e, model.Options{SingletonsOnly: true})
		if !ok {
			t.Fatalf("ids %v: %s", xs, rep)
		}
		for i := 0; i < n; i++ {
			prev, next := xs[(i+n-1)%n], xs[(i+1)%n]
			isMax := xs[i] > prev && xs[i] > next
			isMin := xs[i] < prev && xs[i] < next
			if (isMax || isMin) && vec[i] > 4 {
				t.Errorf("ids %v: extremal node %d has exact worst case %d > 4", xs, i, vec[i])
			}
		}
	}
}

// TestLemma39MonotoneDistanceBound verifies Lemma 3.9: a non-extremal
// process returns within min{3ℓ, 3ℓ', ℓ+ℓ'}+4 activations, where ℓ and ℓ'
// are its monotone distances to the closest extrema — exactly on small
// cycles, and across scheduler sweeps on larger ones.
func TestLemma39MonotoneDistanceBound(t *testing.T) {
	exact := [][]int{
		{1, 5, 3},
		{2, 9, 4, 7},
	}
	for _, xs := range exact {
		n := len(xs)
		g := graph.MustCycle(n)
		e, _ := sim.NewEngine(g, core.NewPairNodes(xs))
		vec, ok, rep := model.WorstActivations(e, model.Options{SingletonsOnly: true})
		if !ok {
			t.Fatalf("ids %v: %s", xs, rep)
		}
		up, down := monotoneDistances(xs)
		for i := 0; i < n; i++ {
			bound := lemma39Bound(up[i], down[i])
			if vec[i] > bound {
				t.Errorf("ids %v node %d: exact worst %d > Lemma 3.9 bound %d (ℓ=%d, ℓ'=%d)",
					xs, i, vec[i], bound, up[i], down[i])
			}
		}
	}

	// Sweep check on bigger structured instances.
	for _, n := range []int{16, 64} {
		for _, a := range []ids.Assignment{ids.Increasing, ids.Zigzag, ids.Random} {
			xs := ids.MustGenerate(a, n, 5)
			up, down := monotoneDistances(xs)
			g := graph.MustCycle(n)
			for _, s := range []schedule.Scheduler{
				schedule.Synchronous{}, schedule.NewRoundRobin(1), schedule.NewRandomOne(3),
			} {
				e, _ := sim.NewEngine(g, core.NewPairNodes(xs))
				res, err := e.Run(s, 500*n)
				if err != nil {
					t.Fatalf("n=%d %s: %v", n, a, err)
				}
				for i := 0; i < n; i++ {
					if bound := lemma39Bound(up[i], down[i]); res.Activations[i] > bound {
						t.Errorf("n=%d %s %s node %d: %d activations > bound %d",
							n, a, s.Name(), i, res.Activations[i], bound)
					}
				}
			}
		}
	}
}

func lemma39Bound(l, lp int) int {
	m := 3 * l
	if v := 3 * lp; v < m {
		m = v
	}
	if v := l + lp; v < m {
		m = v
	}
	return m + 4
}

// TestLemma312ReturnCharacterization verifies Lemma 3.12's if-and-only-if
// as a randomized property: for any reachable Five state and any view, the
// process returns exactly when its pre-round a or b lies outside the
// neighbor color set C — and it returns a in preference to b.
func TestLemma312ReturnCharacterization(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	randomView := func() []sim.Cell[core.FiveVal] {
		view := make([]sim.Cell[core.FiveVal], 2)
		for k := range view {
			if rng.Intn(5) == 0 {
				continue // ⊥ neighbor
			}
			view[k] = cellFiveT(rng.Intn(20), rng.Intn(5), rng.Intn(5))
		}
		return view
	}
	checked := 0
	for trial := 0; trial < 2000; trial++ {
		f := core.NewFive(7)
		// Drive to a random reachable state with a few prep rounds.
		alive := true
		for k := rng.Intn(4); k > 0 && alive; k-- {
			alive = !f.Observe(randomView()).Return
		}
		if !alive {
			continue
		}
		a, b := f.Color()
		view := randomView()
		var colors []int
		for _, c := range view {
			if c.Present {
				colors = append(colors, c.Val.A, c.Val.B)
			}
		}
		aFree := !intsContain(colors, a)
		bFree := !intsContain(colors, b)
		dec := f.Observe(view)
		if dec.Return != (aFree || bFree) {
			t.Fatalf("trial %d: return=%t but aFree=%t bFree=%t (a=%d b=%d C=%v)",
				trial, dec.Return, aFree, bFree, a, b, colors)
		}
		if dec.Return {
			want := b
			if aFree {
				want = a
			}
			if dec.Output != want {
				t.Fatalf("trial %d: output %d, want %d (a preferred)", trial, dec.Output, want)
			}
		}
		checked++
	}
	if checked < 500 {
		t.Fatalf("only %d meaningful trials", checked)
	}
}

func cellFiveT(x, a, b int) sim.Cell[core.FiveVal] {
	return sim.Cell[core.FiveVal]{Present: true, Val: core.FiveVal{X: x, A: a, B: b}}
}

func intsContain(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// TestLemma46LocalMaxStaysMax verifies Lemma 4.6 on traced executions:
// once a Fast process's identifier is a local maximum (w.r.t. published
// identifiers), it remains one for the rest of the execution.
func TestLemma46LocalMaxStaysMax(t *testing.T) {
	for _, n := range []int{5, 16, 64} {
		g := graph.MustCycle(n)
		xs := ids.MustGenerate(ids.Random, n, int64(n))
		e, _ := sim.NewEngine(g, core.NewFastNodes(xs))
		wasMax := make([]bool, n)
		violations := 0
		e.AddHook(func(e *sim.Engine[core.FastVal], _ int, _ []int) {
			for i := 0; i < n; i++ {
				l, r := (i+n-1)%n, (i+1)%n
				rl, rr := e.Register(l), e.Register(r)
				if !rl.Present || !rr.Present {
					continue
				}
				xi := e.NodeState(i).(*core.Fast).X()
				isMax := xi > rl.Val.X && xi > rr.Val.X
				if wasMax[i] && !isMax {
					violations++
				}
				if isMax {
					wasMax[i] = true
				}
			}
		})
		if _, err := e.Run(schedule.NewRandomSubset(0.4, 7), 100_000); err != nil {
			t.Fatal(err)
		}
		if violations > 0 {
			t.Errorf("n=%d: %d Lemma 4.6 violations (a local max stopped being one)", n, violations)
		}
	}
}

// TestTheorem311LocalMinimaLag verifies the structure inside Theorem
// 3.11's proof: local minima terminate at most a few steps after their
// neighbors, i.e. within the 3n+8 global bound even on adversarial
// instances where minima are starved last.
func TestTheorem311LocalMinimaLag(t *testing.T) {
	n := 32
	g := graph.MustCycle(n)
	xs := ids.MustGenerate(ids.Increasing, n, 0)
	// Burst scheduling starves low-id processes while their neighbors race.
	e, _ := sim.NewEngine(g, core.NewFiveNodes(xs))
	res, err := e.Run(schedule.NewBurst(6), 500*n)
	if err != nil {
		t.Fatal(err)
	}
	for i, acts := range res.Activations {
		if acts > 3*n+8 {
			t.Errorf("node %d: %d activations exceed Theorem 3.11's 3n+8 = %d", i, acts, 3*n+8)
		}
	}
}
