package core

import (
	"testing"
	"testing/quick"

	"asynccycle/internal/sim"
)

// cell wraps a present register value; bottom is ⊥.
func cellPair(x, a, b int) sim.Cell[PairVal] {
	return sim.Cell[PairVal]{Present: true, Val: PairVal{X: x, A: a, B: b}}
}

func cellFive(x, a, b int) sim.Cell[FiveVal] {
	return sim.Cell[FiveVal]{Present: true, Val: FiveVal{X: x, A: a, B: b}}
}

func cellFast(x int, rInf bool, r, a, b int) sim.Cell[FastVal] {
	return sim.Cell[FastVal]{Present: true, Val: FastVal{X: x, RInf: rInf, R: r, A: a, B: b}}
}

func TestMex(t *testing.T) {
	tests := []struct {
		used []int
		want int
	}{
		{nil, 0},
		{[]int{0}, 1},
		{[]int{1, 2}, 0},
		{[]int{0, 1, 2, 3}, 4},
		{[]int{0, 0, 2}, 1},
		{[]int{3, 0, 1}, 2},
	}
	for _, tt := range tests {
		if got := mex(tt.used); got != tt.want {
			t.Errorf("mex(%v) = %d, want %d", tt.used, got, tt.want)
		}
	}
}

func TestEncodeDecodePair(t *testing.T) {
	for a := 0; a <= 10; a++ {
		for b := 0; b <= 10; b++ {
			ga, gb := DecodePair(EncodePair(a, b))
			if ga != a || gb != b {
				t.Fatalf("round-trip (%d,%d) → (%d,%d)", a, b, ga, gb)
			}
		}
	}
}

func TestPairPaletteSize(t *testing.T) {
	tests := []struct{ deg, want int }{
		{2, 6}, // the cycle: Theorem 3.1's six colors
		{3, 10},
		{4, 15},
		{8, 45},
	}
	for _, tt := range tests {
		if got := PairPaletteSize(tt.deg); got != tt.want {
			t.Errorf("PairPaletteSize(%d) = %d, want %d", tt.deg, got, tt.want)
		}
	}
}

func TestInPairPalette(t *testing.T) {
	if !InPairPalette(EncodePair(0, 2), 2) || !InPairPalette(EncodePair(2, 0), 2) {
		t.Error("rejected valid cycle pairs")
	}
	if InPairPalette(EncodePair(2, 1), 2) {
		t.Error("accepted (2,1) with a+b=3 > 2")
	}
}

// --- Pair (Algorithm 1 / 4) round behaviour ---------------------------------

func TestPairReturnsWhenDistinct(t *testing.T) {
	p := NewPair(5) // initial pair (0,0)
	dec := p.Observe([]sim.Cell[PairVal]{cellPair(3, 0, 1), cellPair(9, 1, 0)})
	if !dec.Return {
		t.Fatal("pair (0,0) distinct from (0,1) and (1,0): should return")
	}
	if a, b := DecodePair(dec.Output); a != 0 || b != 0 {
		t.Errorf("output pair = (%d,%d), want (0,0)", a, b)
	}
}

func TestPairReturnsAgainstBottomNeighbors(t *testing.T) {
	p := NewPair(5)
	dec := p.Observe(make([]sim.Cell[PairVal], 2)) // both ⊥
	if !dec.Return {
		t.Fatal("⊥ neighbors cannot conflict (Lemma 3.2): should return")
	}
}

func TestPairUpdatesDirectionally(t *testing.T) {
	p := NewPair(5)
	// Conflict with the lower neighbor (same pair), higher neighbor holds
	// a = 0 too: a must dodge the higher's a, b must dodge the lower's b.
	dec := p.Observe([]sim.Cell[PairVal]{cellPair(3, 0, 0), cellPair(9, 0, 2)})
	if dec.Return {
		t.Fatal("conflicting pair returned")
	}
	a, b := p.Color()
	if a != 1 { // mex{a of higher} = mex{0} = 1
		t.Errorf("a = %d, want 1", a)
	}
	if b != 1 { // mex{b of lower} = mex{0} = 1
		t.Errorf("b = %d, want 1", b)
	}
}

func TestPairIgnoresEqualIdentifierNeighbors(t *testing.T) {
	// Neighbors with equal identifiers (allowed in Algorithm 4 inputs only
	// across non-edges, but the machine must not misbehave) constrain
	// neither component.
	p := NewPair(5)
	dec := p.Observe([]sim.Cell[PairVal]{cellPair(5, 0, 0)})
	if dec.Return {
		t.Fatal("equal pair must conflict")
	}
	a, b := p.Color()
	if a != 0 || b != 0 {
		t.Errorf("(a,b) = (%d,%d); equal-id neighbor should constrain nothing", a, b)
	}
}

func TestPairHighDegree(t *testing.T) {
	// Algorithm 4: with Δ=4 higher neighbors all holding distinct a-values,
	// a = mex reaches 4 but stays within the palette a+b ≤ Δ... the machine
	// itself just computes mex; palette membership is the theorem.
	p := NewPair(1)
	view := []sim.Cell[PairVal]{
		cellPair(2, 0, 0), cellPair(3, 1, 0), cellPair(4, 2, 0), cellPair(5, 3, 0),
	}
	p.Observe(view) // conflicts with (0,0) at neighbor X=2
	a, b := p.Color()
	if a != 4 {
		t.Errorf("a = %d, want mex{0,1,2,3} = 4", a)
	}
	if b != 0 {
		t.Errorf("b = %d, want 0 (no lower neighbors)", b)
	}
}

func TestPairClone(t *testing.T) {
	p := NewPair(5)
	p.Observe([]sim.Cell[PairVal]{cellPair(3, 0, 0), cellPair(9, 0, 0)})
	c := p.Clone().(*Pair)
	if ca, cb := c.Color(); ca != 1 || cb != 1 {
		t.Fatalf("clone colors (%d,%d)", ca, cb)
	}
	c.Observe([]sim.Cell[PairVal]{cellPair(3, 1, 1), cellPair(9, 1, 1)})
	a, _ := p.Color()
	ca, _ := c.Color()
	if a == ca {
		t.Fatal("observing the clone mutated the original (or changed nothing)")
	}
}

// --- Five (Algorithm 2) round behaviour -------------------------------------

func TestFiveReturnsAWhenFree(t *testing.T) {
	f := NewFive(5)
	// C = {1, 2, 3, 4}: a=0 ∉ C → return 0.
	dec := f.Observe([]sim.Cell[FiveVal]{cellFive(3, 1, 2), cellFive(9, 3, 4)})
	if !dec.Return || dec.Output != 0 {
		t.Fatalf("dec = %+v, want return 0", dec)
	}
}

func TestFiveReturnsBWhenAOccupied(t *testing.T) {
	f := NewFive(5)
	f.a, f.b = 1, 2
	// C = {1, 0, 3, 4}: a=1 ∈ C, b=2 ∉ C → return 2.
	dec := f.Observe([]sim.Cell[FiveVal]{cellFive(3, 1, 0), cellFive(9, 3, 4)})
	if !dec.Return || dec.Output != 2 {
		t.Fatalf("dec = %+v, want return 2", dec)
	}
}

func TestFiveUpdatesFromHigherAndAll(t *testing.T) {
	f := NewFive(5)
	// Both colors occupied: C = {0, 1} (lower neighbor) ∪ {0, 2} (higher).
	dec := f.Observe([]sim.Cell[FiveVal]{cellFive(3, 0, 1), cellFive(9, 0, 2)})
	if dec.Return {
		t.Fatal("occupied colors returned")
	}
	a, b := f.Color()
	if a != 1 { // mex over higher colors {0, 2}
		t.Errorf("a = %d, want 1", a)
	}
	if b != 3 { // mex over all colors {0, 1, 2}
		t.Errorf("b = %d, want 3", b)
	}
}

func TestFiveBoundedByFour(t *testing.T) {
	// Even with all four neighbor slots distinct, mex(C) ≤ 4.
	f := NewFive(5)
	f.a, f.b = 0, 1
	dec := f.Observe([]sim.Cell[FiveVal]{cellFive(3, 0, 1), cellFive(9, 2, 3)})
	if dec.Return {
		t.Fatal("should conflict")
	}
	_, b := f.Color()
	if b != 4 {
		t.Errorf("b = %d, want 4 = mex{0,1,2,3}", b)
	}
}

func TestFiveSoloReturnsImmediately(t *testing.T) {
	f := NewFive(7)
	dec := f.Observe(make([]sim.Cell[FiveVal], 2))
	if !dec.Return || dec.Output != 0 {
		t.Fatalf("dec = %+v, want return 0 with ⊥ neighbors", dec)
	}
}

// --- Fast (Algorithm 3) round behaviour -------------------------------------

func TestFastColoringComponentMatchesFive(t *testing.T) {
	f := NewFast(5)
	dec := f.Observe([]sim.Cell[FastVal]{cellFast(3, false, 0, 1, 2), cellFast(9, false, 0, 3, 4)})
	if !dec.Return || dec.Output != 0 {
		t.Fatalf("dec = %+v, want return 0", dec)
	}
}

func TestFastSandwichReduces(t *testing.T) {
	f := NewFast(6) // 110
	// Neighbors 5 (101) and 9: sandwiched 5 < 6 < 9 with green light.
	dec := f.Observe([]sim.Cell[FastVal]{cellFast(5, false, 0, 0, 0), cellFast(9, false, 0, 0, 0)})
	if dec.Return {
		t.Fatal("conflicting colors returned")
	}
	if r, inf := f.R(); r != 1 || inf {
		t.Errorf("r = %d/%t, want 1/false", r, inf)
	}
	// f(6, 5) = 0 (differ at bit 0, x_0 = 0), 0 < 5: adopted.
	if f.X() != 0 {
		t.Errorf("X = %d, want 0", f.X())
	}
}

func TestFastSandwichRejectsNonImprovingValue(t *testing.T) {
	f := NewFast(5) // 101
	// Neighbors 1 (001) and 9: f(5, 1) = 2 (i = min(3,1,2) = 1, bit 0) —
	// not below the smaller neighbor 1, so the identifier stays but r
	// still increments (paper line 13 before line 15).
	f.a, f.b = 1, 1 // avoid returning against these neighbors
	dec := f.Observe([]sim.Cell[FastVal]{cellFast(1, false, 0, 0, 1), cellFast(9, false, 0, 0, 1)})
	if dec.Return {
		t.Fatal("unexpected return")
	}
	if f.X() != 5 {
		t.Errorf("X = %d, want unchanged 5", f.X())
	}
	if r, _ := f.R(); r != 1 {
		t.Errorf("r = %d, want 1", r)
	}
}

func TestFastBlockedByLaggingNeighbor(t *testing.T) {
	f := NewFast(6)
	f.r = 2
	f.a, f.b = 1, 1
	// Neighbor r = 1 < 2: no green light; nothing changes.
	dec := f.Observe([]sim.Cell[FastVal]{cellFast(5, false, 1, 0, 1), cellFast(9, false, 5, 0, 1)})
	if dec.Return {
		t.Fatal("unexpected return")
	}
	if f.X() != 6 {
		t.Errorf("X = %d, want unchanged (blocked)", f.X())
	}
	if r, _ := f.R(); r != 2 {
		t.Errorf("r = %d, want unchanged 2", r)
	}
}

func TestFastInfNeighborDoesNotBlock(t *testing.T) {
	f := NewFast(6)
	f.r = 3
	f.a, f.b = 1, 1
	// One neighbor at r=∞, other at r=3: green light holds.
	dec := f.Observe([]sim.Cell[FastVal]{cellFast(5, true, 0, 0, 1), cellFast(9, false, 3, 0, 1)})
	if dec.Return {
		t.Fatal("unexpected return")
	}
	if r, _ := f.R(); r != 4 {
		t.Errorf("r = %d, want 4 (reduced once more)", r)
	}
}

func TestFastLocalMaxFreezes(t *testing.T) {
	f := NewFast(9)
	f.a, f.b = 1, 1
	dec := f.Observe([]sim.Cell[FastVal]{cellFast(5, false, 0, 0, 1), cellFast(6, false, 0, 0, 1)})
	if dec.Return {
		t.Fatal("unexpected return")
	}
	if _, inf := f.R(); !inf {
		t.Error("local max did not set r = ∞")
	}
	if f.X() != 9 {
		t.Errorf("X = %d, want unchanged 9", f.X())
	}
}

func TestFastLocalMinEvades(t *testing.T) {
	f := NewFast(3)
	f.a, f.b = 1, 1
	// Local min below 5 (101) and 9 (1001):
	// f(5,3): 101 vs 011 differ at bit 1 → 2·1+0 = 2.
	// f(9,3): 1001 vs 0011 differ at bit 1 → 2·1+0 = 2.
	// evade = {2, 2} → mex = 0 < 3: adopt 0.
	dec := f.Observe([]sim.Cell[FastVal]{cellFast(5, false, 0, 0, 1), cellFast(9, false, 0, 0, 1)})
	if dec.Return {
		t.Fatal("unexpected return")
	}
	if _, inf := f.R(); !inf {
		t.Error("local min did not set r = ∞")
	}
	if f.X() != 0 {
		t.Errorf("X = %d, want evaded to 0", f.X())
	}
}

func TestFastLocalMinKeepsSmallerIdentifier(t *testing.T) {
	f := NewFast(0)
	f.a, f.b = 1, 1
	// Already 0: mex of evade set cannot be < 0; X stays.
	dec := f.Observe([]sim.Cell[FastVal]{cellFast(5, false, 0, 0, 1), cellFast(9, false, 0, 0, 1)})
	if dec.Return {
		t.Fatal("unexpected return")
	}
	if f.X() != 0 {
		t.Errorf("X = %d, want 0", f.X())
	}
}

func TestFastSkipsReductionOnPartialView(t *testing.T) {
	f := NewFast(6)
	f.a, f.b = 0, 1
	// One neighbor ⊥: the reduction component must not run at all — no r
	// change, no X change, no ∞.
	view := []sim.Cell[FastVal]{cellFast(9, false, 0, 0, 1), {}}
	dec := f.Observe(view)
	if dec.Return {
		t.Fatal("unexpected return")
	}
	if r, inf := f.R(); r != 0 || inf {
		t.Errorf("r = %d/%t, want untouched 0/false", r, inf)
	}
	if f.X() != 6 {
		t.Errorf("X = %d, want untouched 6", f.X())
	}
}

func TestFastRInfFrozenForever(t *testing.T) {
	f := NewFast(6)
	f.rInf = true
	f.a, f.b = 1, 1
	dec := f.Observe([]sim.Cell[FastVal]{cellFast(5, false, 7, 0, 1), cellFast(9, false, 7, 0, 1)})
	if dec.Return {
		t.Fatal("unexpected return")
	}
	if f.X() != 6 {
		t.Errorf("X = %d, want frozen 6", f.X())
	}
}

func TestFastAccessors(t *testing.T) {
	f := NewFast(42)
	if f.X() != 42 {
		t.Errorf("X = %d", f.X())
	}
	if r, inf := f.R(); r != 0 || inf {
		t.Errorf("R = %d/%t", r, inf)
	}
	if a, b := f.Color(); a != 0 || b != 0 {
		t.Errorf("Color = %d,%d", a, b)
	}
	if got := f.Publish(); got.X != 42 || got.RInf {
		t.Errorf("Publish = %+v", got)
	}
}

func TestNodeConstructorsMatchInputs(t *testing.T) {
	xs := []int{5, 1, 9}
	pairs := NewPairNodes(xs)
	fives := NewFiveNodes(xs)
	fasts := NewFastNodes(xs)
	if len(pairs) != 3 || len(fives) != 3 || len(fasts) != 3 {
		t.Fatal("wrong node counts")
	}
	for i, x := range xs {
		if pairs[i].(*Pair).X() != x || fives[i].(*Five).X() != x || fasts[i].(*Fast).X() != x {
			t.Fatalf("node %d identifier mismatch", i)
		}
	}
}

// TestMexNeverInSetQuick: mex(used) ∉ used and everything below it ∈ used.
func TestMexNeverInSetQuick(t *testing.T) {
	prop := func(raw []uint8) bool {
		used := make([]int, len(raw))
		for i, r := range raw {
			used[i] = int(r) % 8
		}
		m := mex(used)
		for _, u := range used {
			if u == m {
				return false
			}
		}
		for v := 0; v < m; v++ {
			found := false
			for _, u := range used {
				if u == v {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
