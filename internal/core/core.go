// Package core implements the paper's wait-free coloring algorithms for the
// asynchronous crash-prone state model:
//
//   - Pair: Algorithm 1 (6-coloring of the cycle with color pairs (a, b),
//     a+b ≤ 2) which, run unchanged on a graph of maximum degree Δ, is
//     Algorithm 4 (O(Δ²)-coloring, Appendix A);
//   - Five: Algorithm 2 (wait-free 5-coloring of the cycle in O(n) rounds);
//   - Fast: Algorithm 3 (wait-free 5-coloring of the cycle in O(log* n)
//     rounds, augmenting Five with Cole–Vishkin identifier reduction gated
//     by the r-counter "green light" synchronization).
//
// All three are deterministic state machines exposing the sim.Node
// interface; they carry no reference to the topology and communicate only
// through the local immediate snapshots the engine hands them.
//
// ⊥ semantics: a neighbor that has never been activated contributes nothing
// to any conflict set (Lemma 3.2's ĉ_q = ⊥ case). In Fast, an absent
// neighbor — and a neighbor with r = ∞ — never blocks the green-light gate,
// and the sandwich test min{X_q, X_q'} < X_p < max{X_q, X_q'} ranges over
// present neighbors only, so a process whose present neighbors do not
// strictly sandwich it takes the local-extremum branch (r ← ∞).
package core

import (
	"asynccycle/internal/cv"
	"asynccycle/internal/sim"
)

// mex returns the minimum excluded natural: min(ℕ ∖ used). The conflict
// sets involved never exceed 2Δ values, so the quadratic scan is optimal in
// practice (no allocations).
func mex(used []int) int {
	for v := 0; ; v++ {
		found := false
		for _, u := range used {
			if u == v {
				found = true
				break
			}
		}
		if !found {
			return v
		}
	}
}

// contains reports whether xs contains v.
func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Algorithm 1 / Algorithm 4: pair coloring.
// ---------------------------------------------------------------------------

// pairStride separates the two components of an encoded pair color; 16 bits
// comfortably exceeds any per-component value (components are bounded by the
// degree, mex of ≤ Δ values ≤ Δ).
const pairStride = 1 << 16

// EncodePair packs the color pair (a, b) into one output int.
func EncodePair(a, b int) int { return a*pairStride + b }

// DecodePair unpacks an output of Pair back into (a, b).
func DecodePair(c int) (a, b int) { return c / pairStride, c % pairStride }

// PairPaletteSize returns the size of the palette {(a, b) : a+b ≤ Δ} used
// by Algorithm 4 on graphs of maximum degree Δ: (Δ+1)(Δ+2)/2. For the cycle
// (Δ = 2) this is the 6-color palette of Theorem 3.1.
func PairPaletteSize(maxDeg int) int { return (maxDeg + 1) * (maxDeg + 2) / 2 }

// InPairPalette reports whether an encoded pair output lies in the
// Algorithm 4 palette for maximum degree Δ.
func InPairPalette(c, maxDeg int) bool {
	a, b := DecodePair(c)
	return a >= 0 && b >= 0 && a+b <= maxDeg
}

// PairVal is the register content of the Pair algorithm: the (static)
// identifier and the current color pair.
type PairVal struct {
	X, A, B int
}

// HashFingerprint implements sim.Hashable.
func (v *PairVal) HashFingerprint(h *sim.FPHasher) {
	h.HashInt(v.X)
	h.HashInt(v.A)
	h.HashInt(v.B)
}

// Pair is the Algorithm 1 / Algorithm 4 state machine: color pair
// c = (a, b), initially (0, 0). Each non-returning round sets
//
//	a ← min ℕ ∖ { a_u : u ∼ p, X_u > X_p }
//	b ← min ℕ ∖ { b_u : u ∼ p, X_u < X_p }
//
// and the process returns c as soon as c differs from every neighbor's
// published pair.
type Pair struct {
	x, a, b int
}

// NewPair returns a Pair process with the given identifier. Identifiers
// must be non-negative and properly color the graph (distinct across every
// edge); globally unique identifiers, the paper's default input, satisfy
// this a fortiori (Remark 3.10).
func NewPair(id int) *Pair { return &Pair{x: id} }

// X returns the (immutable) identifier.
func (p *Pair) X() int { return p.x }

// Color returns the current color pair.
func (p *Pair) Color() (a, b int) { return p.a, p.b }

// Publish implements sim.Node.
func (p *Pair) Publish() PairVal { return PairVal{X: p.x, A: p.a, B: p.b} }

// Observe implements sim.Node.
func (p *Pair) Observe(view []sim.Cell[PairVal]) sim.Decision {
	conflict := false
	for _, c := range view {
		if c.Present && c.Val.A == p.a && c.Val.B == p.b {
			conflict = true
			break
		}
	}
	if !conflict {
		return sim.Decision{Return: true, Output: EncodePair(p.a, p.b)}
	}
	// Conflict sets live in stack buffers up to degree 8 (every cycle, and
	// the bounded-degree graphs of E9); larger degrees spill to the heap.
	var aBuf, bBuf [8]int
	aUsed, bUsed := aBuf[:0], bBuf[:0]
	for _, c := range view {
		if !c.Present {
			continue
		}
		switch {
		case c.Val.X > p.x:
			aUsed = append(aUsed, c.Val.A)
		case c.Val.X < p.x:
			bUsed = append(bUsed, c.Val.B)
		}
	}
	p.a = mex(aUsed)
	p.b = mex(bUsed)
	return sim.Decision{}
}

// Clone implements sim.Node.
func (p *Pair) Clone() sim.Node[PairVal] {
	cp := *p
	return &cp
}

// HashFingerprint implements sim.Hashable.
func (p *Pair) HashFingerprint(h *sim.FPHasher) {
	h.HashInt(p.x)
	h.HashInt(p.a)
	h.HashInt(p.b)
}

var _ sim.Node[PairVal] = (*Pair)(nil)

// NewPairNodes builds one Pair process per identifier, as engine-ready
// nodes.
func NewPairNodes(xs []int) []sim.Node[PairVal] {
	nodes := make([]sim.Node[PairVal], len(xs))
	for i, x := range xs {
		nodes[i] = NewPair(x)
	}
	return nodes
}

// ---------------------------------------------------------------------------
// Algorithm 2: wait-free 5-coloring in O(n) rounds.
// ---------------------------------------------------------------------------

// FiveVal is the register content of the Five algorithm.
type FiveVal struct {
	X, A, B int
}

// HashFingerprint implements sim.Hashable.
func (v *FiveVal) HashFingerprint(h *sim.FPHasher) {
	h.HashInt(v.X)
	h.HashInt(v.A)
	h.HashInt(v.B)
}

// Five is the Algorithm 2 state machine. Each round computes
//
//	C⁺ = { a_u, b_u : u ∼ p, X_u > X_p }    (colors of higher neighbors)
//	C  = { a_u, b_u : u ∼ p }               (all neighbor colors)
//
// returns a if a ∉ C, else b if b ∉ C, and otherwise sets a ← mex C⁺ and
// b ← mex C. Since |C| ≤ 4 on the cycle, mex C ≤ 4 and the output palette
// is {0, …, 4} (Theorem 3.11).
type Five struct {
	x, a, b int
}

// NewFive returns a Five process with the given identifier (precondition as
// in NewPair).
func NewFive(id int) *Five { return &Five{x: id} }

// X returns the (immutable) identifier.
func (f *Five) X() int { return f.x }

// Color returns the current candidate colors (a, b).
func (f *Five) Color() (a, b int) { return f.a, f.b }

// Publish implements sim.Node.
func (f *Five) Publish() FiveVal { return FiveVal{X: f.x, A: f.a, B: f.b} }

// Observe implements sim.Node.
func (f *Five) Observe(view []sim.Cell[FiveVal]) sim.Decision {
	// On the cycle (degree ≤ 2) the conflict sets hold ≤ 4 colors; stack
	// buffers keep the hot path allocation-free.
	var allBuf, higherBuf [4]int
	all, higher := allBuf[:0], higherBuf[:0]
	for _, c := range view {
		if !c.Present {
			continue
		}
		all = append(all, c.Val.A, c.Val.B)
		if c.Val.X > f.x {
			higher = append(higher, c.Val.A, c.Val.B)
		}
	}
	if !contains(all, f.a) {
		return sim.Decision{Return: true, Output: f.a}
	}
	if !contains(all, f.b) {
		return sim.Decision{Return: true, Output: f.b}
	}
	f.a = mex(higher)
	f.b = mex(all)
	return sim.Decision{}
}

// Clone implements sim.Node.
func (f *Five) Clone() sim.Node[FiveVal] {
	cp := *f
	return &cp
}

// HashFingerprint implements sim.Hashable.
func (f *Five) HashFingerprint(h *sim.FPHasher) {
	h.HashInt(f.x)
	h.HashInt(f.a)
	h.HashInt(f.b)
}

var _ sim.Node[FiveVal] = (*Five)(nil)

// NewFiveNodes builds one Five process per identifier, as engine-ready
// nodes.
func NewFiveNodes(xs []int) []sim.Node[FiveVal] {
	nodes := make([]sim.Node[FiveVal], len(xs))
	for i, x := range xs {
		nodes[i] = NewFive(x)
	}
	return nodes
}

// ---------------------------------------------------------------------------
// Algorithm 3: wait-free 5-coloring in O(log* n) rounds.
// ---------------------------------------------------------------------------

// FastVal is the register content of the Fast algorithm: the evolving
// identifier X, the green-light counter r (with its ∞ flag), and the two
// candidate colors.
type FastVal struct {
	X    int
	RInf bool
	R    int
	A, B int
}

// HashFingerprint implements sim.Hashable.
func (v *FastVal) HashFingerprint(h *sim.FPHasher) {
	h.HashInt(v.X)
	h.HashBool(v.RInf)
	h.HashInt(v.R)
	h.HashInt(v.A)
	h.HashInt(v.B)
}

// Fast is the Algorithm 3 state machine: Algorithm 2's coloring component
// running verbatim, plus the Cole–Vishkin identifier-reduction component
// (lines 11–19) that shortens monotone identifier chains to constant length
// in O(log* n) rounds. A process only reduces its identifier when its
// counter r does not exceed either neighbor's (the "green light"), which
// maintains Lemma 4.5's invariant that the evolving identifiers keep
// properly coloring the cycle.
type Fast struct {
	x    int
	rInf bool
	r    int
	a, b int
}

// NewFast returns a Fast process with the given identifier (precondition as
// in NewPair; Fast additionally requires degree ≤ 2, i.e. cycle or path
// topologies).
func NewFast(id int) *Fast { return &Fast{x: id} }

// X returns the current (possibly reduced) identifier.
func (f *Fast) X() int { return f.x }

// R returns the green-light counter and whether it is ∞.
func (f *Fast) R() (r int, inf bool) { return f.r, f.rInf }

// Color returns the current candidate colors (a, b).
func (f *Fast) Color() (a, b int) { return f.a, f.b }

// Publish implements sim.Node.
func (f *Fast) Publish() FastVal {
	return FastVal{X: f.x, RInf: f.rInf, R: f.r, A: f.a, B: f.b}
}

// Observe implements sim.Node.
func (f *Fast) Observe(view []sim.Cell[FastVal]) sim.Decision {
	// Coloring component (Algorithm 2, lines 6–10 of Algorithm 3). Fast
	// requires degree ≤ 2, so fixed-size stack buffers cover every input
	// and the per-round path does not allocate.
	var allBuf, higherBuf [4]int
	var presentBuf [2]sim.Cell[FastVal]
	all, higher := allBuf[:0], higherBuf[:0]
	present := presentBuf[:0]
	for _, c := range view {
		if !c.Present {
			continue
		}
		present = append(present, c)
		all = append(all, c.Val.A, c.Val.B)
		if c.Val.X > f.x {
			higher = append(higher, c.Val.A, c.Val.B)
		}
	}
	if !contains(all, f.a) {
		return sim.Decision{Return: true, Output: f.a}
	}
	if !contains(all, f.b) {
		return sim.Decision{Return: true, Output: f.b}
	}
	f.a = mex(higher)
	f.b = mex(all)

	// Identifier-reduction component (lines 11–19). The paper's lines
	// assume both neighbor registers hold values; with a ⊥ neighbor the
	// extremum and sandwich tests are ill-defined, and committing to either
	// branch on partial information is wrong in both directions — an
	// eager r ← ∞ permanently disables reduction (every process whose
	// successor wakes later degenerates to Algorithm 2, losing the
	// O(log* n) bound), and an eager evasive pick can collide with a
	// late-waking neighbor's reduction, violating Lemma 4.5. So the whole
	// component waits for full neighborhood information; the coloring
	// component above is unaffected and keeps the process wait-free.
	if f.rInf || len(present) != len(view) || !f.greenLight(present) {
		return sim.Decision{}
	}
	lo, hi := present[0].Val.X, present[0].Val.X
	for _, c := range present[1:] {
		if c.Val.X < lo {
			lo = c.Val.X
		}
		if c.Val.X > hi {
			hi = c.Val.X
		}
	}
	if lo < f.x && f.x < hi {
		// Interior of a monotone chain: try a Cole–Vishkin step against the
		// smaller neighbor.
		f.r++
		if y := cv.F(f.x, lo); y < lo {
			f.x = y
		}
	} else {
		// Local extremum: stop reducing forever. A local minimum
		// additionally dodges the values its neighbors could reduce onto
		// (line 19).
		f.rInf = true
		if f.x < lo {
			var evadeBuf [2]int
			evade := evadeBuf[:0]
			for _, c := range present {
				evade = append(evade, cv.F(c.Val.X, f.x))
			}
			if m := mex(evade); m < f.x {
				f.x = m
			}
		}
	}
	return sim.Decision{}
}

// greenLight reports r_p ≤ min{r_q, r_q'}, where an absent neighbor or one
// with r = ∞ never blocks.
func (f *Fast) greenLight(present []sim.Cell[FastVal]) bool {
	for _, c := range present {
		if !c.Val.RInf && c.Val.R < f.r {
			return false
		}
	}
	return true
}

// Clone implements sim.Node.
func (f *Fast) Clone() sim.Node[FastVal] {
	cp := *f
	return &cp
}

// HashFingerprint implements sim.Hashable.
func (f *Fast) HashFingerprint(h *sim.FPHasher) {
	h.HashInt(f.x)
	h.HashBool(f.rInf)
	h.HashInt(f.r)
	h.HashInt(f.a)
	h.HashInt(f.b)
}

var _ sim.Node[FastVal] = (*Fast)(nil)

// NewFastNodes builds one Fast process per identifier, as engine-ready
// nodes.
func NewFastNodes(xs []int) []sim.Node[FastVal] {
	nodes := make([]sim.Node[FastVal], len(xs))
	for i, x := range xs {
		nodes[i] = NewFast(x)
	}
	return nodes
}
