package core_test

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"asynccycle/internal/check"
	"asynccycle/internal/core"
	"asynccycle/internal/cv"
	"asynccycle/internal/graph"
	"asynccycle/internal/ids"
	"asynccycle/internal/model"
	"asynccycle/internal/schedule"
	"asynccycle/internal/sim"
	"asynccycle/internal/stats"
)

// fiveInvariant checks the Theorem 3.11 safety clauses at one
// configuration.
func fiveInvariant(g graph.Graph) model.Invariant[core.FiveVal] {
	return func(e *sim.Engine[core.FiveVal]) error {
		r := e.Result()
		if err := check.ProperColoring(g, r); err != nil {
			return err
		}
		return check.PaletteRange(r, 5)
	}
}

func fastInvariant(g graph.Graph) model.Invariant[core.FastVal] {
	return func(e *sim.Engine[core.FastVal]) error {
		r := e.Result()
		if err := check.ProperColoring(g, r); err != nil {
			return err
		}
		if err := check.PaletteRange(r, 5); err != nil {
			return err
		}
		// Lemma 4.5 on internal and published identifiers.
		for _, edge := range g.Edges() {
			p, q := edge[0], edge[1]
			fp := e.NodeState(p).(*core.Fast)
			fq := e.NodeState(q).(*core.Fast)
			if fp.X() == fq.X() {
				return fmt.Errorf("X_%d == X_%d == %d", p, q, fp.X())
			}
			if rq := e.Register(q); rq.Present && fp.X() == rq.Val.X {
				return fmt.Errorf("X_%d == X̂_%d == %d", p, q, fp.X())
			}
			if rp := e.Register(p); rp.Present && fq.X() == rp.Val.X {
				return fmt.Errorf("X_%d == X̂_%d == %d", q, p, fq.X())
			}
		}
		return nil
	}
}

func pairInvariant(g graph.Graph) model.Invariant[core.PairVal] {
	return func(e *sim.Engine[core.PairVal]) error {
		r := e.Result()
		if err := check.ProperColoring(g, r); err != nil {
			return err
		}
		return check.PairPalette(r, g.MaxDegree())
	}
}

// TestExhaustiveInterleaved model-checks all three algorithms over every
// interleaved schedule of C3 and C4 (and C5 unless -short): safety at
// every configuration (covering every crash pattern) and no livelock.
func TestExhaustiveInterleaved(t *testing.T) {
	sizes := []int{3, 4}
	if !testing.Short() {
		sizes = append(sizes, 5, 6)
	}
	for _, n := range sizes {
		g := graph.MustCycle(n)
		xs := ids.MustGenerate(ids.Increasing, n, 0)

		t.Run(fmt.Sprintf("pair/C%d", n), func(t *testing.T) {
			e, _ := sim.NewEngine(g, core.NewPairNodes(xs))
			rep := model.Explore(e, model.Options{SingletonsOnly: true}, pairInvariant(g))
			if !rep.Ok() {
				t.Fatalf("verification failed: %s %v", rep, rep.Violations)
			}
		})
		t.Run(fmt.Sprintf("five/C%d", n), func(t *testing.T) {
			e, _ := sim.NewEngine(g, core.NewFiveNodes(xs))
			rep := model.Explore(e, model.Options{SingletonsOnly: true}, fiveInvariant(g))
			if !rep.Ok() {
				t.Fatalf("verification failed: %s %v", rep, rep.Violations)
			}
		})
		t.Run(fmt.Sprintf("fast/C%d", n), func(t *testing.T) {
			e, _ := sim.NewEngine(g, core.NewFastNodes(xs))
			rep := model.Explore(e, model.Options{SingletonsOnly: true}, fastInvariant(g))
			if !rep.Ok() {
				t.Fatalf("verification failed: %s %v", rep, rep.Violations)
			}
		})
	}
}

// TestExhaustiveSimultaneousSafety verifies that under the paper-literal
// simultaneous semantics safety still holds for all three algorithms —
// and documents finding F1: Algorithms 2 and 3 lose wait-freedom there
// (livelock cycles exist), while Algorithm 1 does not.
func TestExhaustiveSimultaneousSafety(t *testing.T) {
	n := 3
	if !testing.Short() {
		n = 4
	}
	g := graph.MustCycle(n)
	xs := ids.MustGenerate(ids.Increasing, n, 0)

	ePair, _ := sim.NewEngine(g, core.NewPairNodes(xs))
	ePair.SetMode(sim.ModeSimultaneous)
	repPair := model.Explore(ePair, model.Options{}, pairInvariant(g))
	if len(repPair.Violations) > 0 || repPair.Truncated {
		t.Fatalf("pair safety failed: %s %v", repPair, repPair.Violations)
	}
	if repPair.CycleFound {
		t.Error("Algorithm 1 unexpectedly admits livelock under simultaneous semantics")
	}

	eFive, _ := sim.NewEngine(g, core.NewFiveNodes(xs))
	eFive.SetMode(sim.ModeSimultaneous)
	repFive := model.Explore(eFive, model.Options{}, fiveInvariant(g))
	if len(repFive.Violations) > 0 || repFive.Truncated {
		t.Fatalf("five safety failed: %s %v", repFive, repFive.Violations)
	}
	if !repFive.CycleFound {
		t.Error("finding F1 regression: Algorithm 2's simultaneous livelock disappeared")
	}

	eFast, _ := sim.NewEngine(g, core.NewFastNodes(xs))
	eFast.SetMode(sim.ModeSimultaneous)
	repFast := model.Explore(eFast, model.Options{}, fastInvariant(g))
	if len(repFast.Violations) > 0 || repFast.Truncated {
		t.Fatalf("fast safety failed: %s %v", repFast, repFast.Violations)
	}
	if !repFast.CycleFound {
		t.Error("finding F1 regression: Algorithm 3's simultaneous livelock disappeared")
	}
}

// TestExactWorstCaseWithinPaperBounds computes, by exhaustive longest-path
// analysis, the exact worst-case per-process activation counts on small
// cycles and compares them to the paper's bounds.
func TestExactWorstCaseWithinPaperBounds(t *testing.T) {
	sizes := []int{3, 4}
	if !testing.Short() {
		sizes = append(sizes, 5)
	}
	for _, n := range sizes {
		g := graph.MustCycle(n)
		xs := ids.MustGenerate(ids.Increasing, n, 0)

		e1, _ := sim.NewEngine(g, core.NewPairNodes(xs))
		vec, ok, rep := model.WorstActivations(e1, model.Options{SingletonsOnly: true})
		if !ok {
			t.Fatalf("pair C%d analysis inconclusive: %s", n, rep)
		}
		if got, bound := stats.MaxInt(vec), 3*n/2+4; got > bound {
			t.Errorf("pair C%d: exact worst %d exceeds Theorem 3.1 bound %d", n, got, bound)
		}

		e2, _ := sim.NewEngine(g, core.NewFiveNodes(xs))
		vec2, ok2, rep2 := model.WorstActivations(e2, model.Options{SingletonsOnly: true})
		if !ok2 {
			t.Fatalf("five C%d analysis inconclusive: %s", n, rep2)
		}
		if got, bound := stats.MaxInt(vec2), 3*n+8; got > bound {
			t.Errorf("five C%d: exact worst %d exceeds Theorem 3.11 bound %d", n, got, bound)
		}

		e3, _ := sim.NewEngine(g, core.NewFastNodes(xs))
		vec3, ok3, rep3 := model.WorstActivations(e3, model.Options{SingletonsOnly: true})
		if !ok3 {
			t.Fatalf("fast C%d analysis inconclusive: %s", n, rep3)
		}
		// No closed-form constant in the paper; sanity: comfortably small.
		if got := stats.MaxInt(vec3); got > 3*n+8 {
			t.Errorf("fast C%d: exact worst %d suspiciously large", n, got)
		}
	}
}

// TestRandomExecutionsProper is the randomized property test: any cycle
// size, identifier permutation, scheduler mix, and crash pattern yields a
// proper partial coloring within the palette.
func TestRandomExecutionsProper(t *testing.T) {
	prop := func(seed int64, rawN uint8, crashMask uint16, alg uint8) bool {
		n := 3 + int(rawN)%30
		g := graph.MustCycle(n)
		xs := ids.RandomIDs(n, seed)
		rng := rand.New(rand.NewSource(seed))
		var s schedule.Scheduler
		switch rng.Intn(4) {
		case 0:
			s = schedule.Synchronous{}
		case 1:
			s = schedule.NewRoundRobin(1 + rng.Intn(3))
		case 2:
			s = schedule.NewRandomSubset(0.3, seed)
		default:
			s = schedule.NewRandomOne(seed)
		}
		crash := func(e interface{ CrashAfter(i, k int) }) {
			for i := 0; i < n && i < 16; i++ {
				if crashMask&(1<<i) != 0 {
					e.CrashAfter(i, int(crashMask)%4)
				}
			}
		}
		switch alg % 3 {
		case 0:
			e, _ := sim.NewEngine(g, core.NewPairNodes(xs))
			crash(e)
			res, err := e.Run(s, 100_000)
			return err == nil &&
				check.ProperColoring(g, res) == nil &&
				check.PairPalette(res, 2) == nil &&
				check.SurvivorsTerminated(res) == nil
		case 1:
			e, _ := sim.NewEngine(g, core.NewFiveNodes(xs))
			crash(e)
			res, err := e.Run(s, 100_000)
			return err == nil &&
				check.ProperColoring(g, res) == nil &&
				check.PaletteRange(res, 5) == nil &&
				check.SurvivorsTerminated(res) == nil
		default:
			e, _ := sim.NewEngine(g, core.NewFastNodes(xs))
			crash(e)
			res, err := e.Run(s, 100_000)
			return err == nil &&
				check.ProperColoring(g, res) == nil &&
				check.PaletteRange(res, 5) == nil &&
				check.SurvivorsTerminated(res) == nil
		}
	}
	cfg := &quick.Config{MaxCount: 150}
	if testing.Short() {
		cfg.MaxCount = 40
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestNeighborOrderIrrelevant verifies algorithms are insensitive to the
// arbitrary order in which a node's neighbors are presented (the paper's
// "no coherent notion of left and right").
func TestNeighborOrderIrrelevant(t *testing.T) {
	n := 17
	xs := ids.MustGenerate(ids.Random, n, 9)
	g := graph.MustCycle(n)
	shuffled := g.ShuffledNeighbors(4)

	run := func(g graph.Graph) sim.Result {
		e, _ := sim.NewEngine(g, core.NewFastNodes(xs))
		res, err := e.Run(schedule.Synchronous{}, 100_000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r2 := run(g), run(shuffled)
	for _, res := range []sim.Result{r1, r2} {
		if err := check.ProperColoring(g, res); err != nil {
			t.Error(err)
		}
	}
	// Synchronous runs differ only in view order; every decision of Fast is
	// order-independent (sets and extrema), so the outputs must coincide.
	for i := range r1.Outputs {
		if r1.Outputs[i] != r2.Outputs[i] {
			t.Fatalf("node %d output differs under shuffled neighbor order: %d vs %d",
				i, r1.Outputs[i], r2.Outputs[i])
		}
	}
}

// TestFastOnPath exercises Algorithm 3 on paths (degree ≤ 2 but with
// endpoints of degree 1) — endpoints never sandwich, so they keep their
// identifiers, and the coloring still works.
func TestFastOnPath(t *testing.T) {
	g, err := graph.Path(9)
	if err != nil {
		t.Fatal(err)
	}
	xs := []int{4, 11, 7, 2, 9, 15, 3, 8, 1}
	e, _ := sim.NewEngine(g, core.NewFastNodes(xs))
	res, err := e.Run(schedule.NewRoundRobin(1), 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := check.AllTerminated(res); err != nil {
		t.Error(err)
	}
	if err := check.ProperColoring(g, res); err != nil {
		t.Error(err)
	}
	if err := check.PaletteRange(res, 5); err != nil {
		t.Error(err)
	}
}

// TestLogStarScaling is the headline Theorem 4.4 regression: the max
// activation count must not grow with n (beyond the log* staircase).
func TestLogStarScaling(t *testing.T) {
	worst := map[int]int{}
	sizes := []int{16, 256, 4096}
	if !testing.Short() {
		sizes = append(sizes, 65_536)
	}
	for _, n := range sizes {
		g := graph.MustCycle(n)
		xs := ids.MustGenerate(ids.Increasing, n, 0)
		e, _ := sim.NewEngine(g, core.NewFastNodes(xs))
		res, err := e.Run(schedule.Synchronous{}, 100*n+10_000)
		if err != nil {
			t.Fatal(err)
		}
		worst[n] = res.MaxActivations()
	}
	for n, m := range worst {
		budget := 6 * (cv.LogStar(float64(n)) + 3)
		if m > budget {
			t.Errorf("n=%d: %d activations exceed O(log* n) budget %d", n, m, budget)
		}
	}
	if worst[4096] > worst[16]+4 {
		t.Errorf("activations grew with n: %v", worst)
	}
}

// TestFiveLinearUpperBound checks the ⌊3n/2⌋+4 / 3n+8 activation bounds of
// Theorems 3.1 and 3.11 on mid-sized cycles across schedulers.
func TestFiveLinearUpperBound(t *testing.T) {
	for _, n := range []int{8, 32, 128} {
		g := graph.MustCycle(n)
		for _, a := range ids.All() {
			xs := ids.MustGenerate(a, n, 3)
			e, _ := sim.NewEngine(g, core.NewFiveNodes(xs))
			res, err := e.Run(schedule.NewRoundRobin(1), 500*n+10_000)
			if err != nil {
				t.Fatalf("n=%d %s: %v", n, a, err)
			}
			if err := check.ActivationBound(res, 3*n+8); err != nil {
				t.Errorf("n=%d %s: %v", n, a, err)
			}

			eP, _ := sim.NewEngine(g, core.NewPairNodes(xs))
			resP, err := eP.Run(schedule.NewRoundRobin(1), 500*n+10_000)
			if err != nil {
				t.Fatalf("pair n=%d %s: %v", n, a, err)
			}
			if err := check.ActivationBound(resP, 3*n/2+4); err != nil {
				t.Errorf("pair n=%d %s: %v", n, a, err)
			}
		}
	}
}
