package core_test

import (
	"testing"

	"asynccycle/internal/check"
	"asynccycle/internal/core"
	"asynccycle/internal/graph"
	"asynccycle/internal/ids"
	"asynccycle/internal/schedule"
	"asynccycle/internal/sim"
)

// TestSmokeAllAlgorithms is the first-light test: every algorithm, on a few
// cycles and schedulers, terminates and properly colors within its palette.
func TestSmokeAllAlgorithms(t *testing.T) {
	sizes := []int{3, 4, 5, 8, 33, 100}
	assignments := []ids.Assignment{ids.Random, ids.Increasing, ids.Zigzag}
	newScheds := func() []schedule.Scheduler {
		return []schedule.Scheduler{
			schedule.Synchronous{},
			schedule.NewRoundRobin(1),
			schedule.NewRandomSubset(0.4, 7),
			schedule.NewRandomOne(11),
			schedule.Alternating{},
			schedule.NewBurst(3),
		}
	}
	for _, n := range sizes {
		g := graph.MustCycle(n)
		for _, a := range assignments {
			xs := ids.MustGenerate(a, n, 42)
			for _, s := range newScheds() {
				s := s
				run := func(name string, f func(t *testing.T)) {
					t.Run(name, f)
				}
				label := func(alg string) string {
					return alg + "/" + g.Name() + "/" + a.String() + "/" + s.Name()
				}

				run(label("pair"), func(t *testing.T) {
					e, err := sim.NewEngine(g, core.NewPairNodes(xs))
					if err != nil {
						t.Fatal(err)
					}
					res, err := e.Run(s, 100_000)
					if err != nil {
						t.Fatal(err)
					}
					if err := check.AllTerminated(res); err != nil {
						t.Error(err)
					}
					if err := check.ProperColoring(g, res); err != nil {
						t.Error(err)
					}
					if err := check.PairPalette(res, 2); err != nil {
						t.Error(err)
					}
					if bound := 3*n/2 + 4; res.MaxActivations() > bound {
						t.Errorf("max activations %d exceeds Theorem 3.1 bound %d", res.MaxActivations(), bound)
					}
				})

				run(label("five"), func(t *testing.T) {
					e, err := sim.NewEngine(g, core.NewFiveNodes(xs))
					if err != nil {
						t.Fatal(err)
					}
					res, err := e.Run(s, 100_000)
					if err != nil {
						t.Fatal(err)
					}
					if err := check.AllTerminated(res); err != nil {
						t.Error(err)
					}
					if err := check.ProperColoring(g, res); err != nil {
						t.Error(err)
					}
					if err := check.PaletteRange(res, 5); err != nil {
						t.Error(err)
					}
					if bound := 3*n + 8; res.MaxActivations() > bound {
						t.Errorf("max activations %d exceeds Theorem 3.11 bound %d", res.MaxActivations(), bound)
					}
				})

				run(label("fast"), func(t *testing.T) {
					e, err := sim.NewEngine(g, core.NewFastNodes(xs))
					if err != nil {
						t.Fatal(err)
					}
					rec := &check.FastInvariantRecorder{}
					e.AddHook(rec.Hook())
					res, err := e.Run(s, 100_000)
					if err != nil {
						t.Fatal(err)
					}
					if err := check.AllTerminated(res); err != nil {
						t.Error(err)
					}
					if err := check.ProperColoring(g, res); err != nil {
						t.Error(err)
					}
					if err := check.PaletteRange(res, 5); err != nil {
						t.Error(err)
					}
					if err := rec.Err(); err != nil {
						t.Error(err)
					}
				})
			}
		}
	}
}
