package core_test

// Allocation regressions on the real algorithm payloads: the engine's hot
// path (Step) and the model checker's fingerprint hashing must not allocate
// once warmed up, for every algorithm of the paper. These pin the scratch-
// buffer reuse in sim.Engine and the Hashable implementations here.

import (
	"testing"

	"asynccycle/internal/core"
	"asynccycle/internal/graph"
	"asynccycle/internal/ids"
	"asynccycle/internal/sim"
)

func warmEngine[V any](t *testing.T, nodes []sim.Node[V], n int) *sim.Engine[V] {
	t.Helper()
	e, err := sim.NewEngine(graph.MustCycle(n), nodes)
	if err != nil {
		t.Fatal(err)
	}
	e.Step([]int{0, 1, 2})
	return e
}

func assertStepZeroAllocs[V any](t *testing.T, e *sim.Engine[V], n int) {
	t.Helper()
	subset := make([]int, 1)
	step := 0
	if a := testing.AllocsPerRun(200, func() {
		subset[0] = step % n
		e.Step(subset)
		step++
	}); a != 0 {
		t.Errorf("warm Step allocates %v/op, want 0", a)
	}
}

func assertHashZeroAllocs[V any](t *testing.T, e *sim.Engine[V]) {
	t.Helper()
	if a := testing.AllocsPerRun(200, func() { e.FingerprintHash128() }); a != 0 {
		t.Errorf("FingerprintHash128 allocates %v/op, want 0", a)
	}
}

func TestStepAndHashZeroAllocs(t *testing.T) {
	// n large enough that 200 singleton activations terminate nobody's
	// whole neighborhood-dependent progress prematurely; even if some
	// processes finish, Step on a done process is a cheap no-op and the
	// zero-alloc assertion only gets easier.
	const n = 256
	xs := ids.MustGenerate(ids.Random, n, 5)
	t.Run("alg1-pair", func(t *testing.T) {
		e := warmEngine(t, core.NewPairNodes(xs), n)
		assertStepZeroAllocs(t, e, n)
		assertHashZeroAllocs(t, e)
	})
	t.Run("alg2-five", func(t *testing.T) {
		e := warmEngine(t, core.NewFiveNodes(xs), n)
		assertStepZeroAllocs(t, e, n)
		assertHashZeroAllocs(t, e)
	})
	t.Run("alg3-fast", func(t *testing.T) {
		e := warmEngine(t, core.NewFastNodes(xs), n)
		assertStepZeroAllocs(t, e, n)
		assertHashZeroAllocs(t, e)
	})
}

// TestHashMatchesFingerprintEquality spot-checks the Hashable contract on
// the real payloads: along an execution, configurations with equal string
// fingerprints hash equal, and distinct strings never collide on both
// lanes (a 128-bit collision within a few hundred states would mean an
// encoding that drops state).
func TestHashMatchesFingerprintEquality(t *testing.T) {
	const n = 8
	xs := ids.MustGenerate(ids.Increasing, n, 0)
	e, err := sim.NewEngine(graph.MustCycle(n), core.NewFastNodes(xs))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[[2]uint64]string{}
	for step := 0; step < 300 && !e.AllSettled(); step++ {
		e.Step([]int{step % n, (step * 5) % n})
		h1, h2 := e.FingerprintHash128()
		s := e.Fingerprint()
		if prev, ok := seen[[2]uint64{h1, h2}]; ok && prev != s {
			t.Fatalf("128-bit collision between distinct configurations:\n%s\n%s", prev, s)
		}
		seen[[2]uint64{h1, h2}] = s
	}
}
