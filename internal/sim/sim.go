// Package sim implements the paper's operational model (§2.1–2.2) as a
// deterministic discrete-time simulation: single-writer/multi-reader
// registers initialized to ⊥, and atomic rounds in which an activated
// process writes its register, reads the registers of its graph neighbors
// (a *local immediate snapshot*), and updates its state, possibly
// terminating with an output.
//
// When several processes are activated at the same time step, two
// semantics are supported (see Mode): the default ModeInterleaved executes
// them one after another within the step, realizing the standard
// asynchronous shared-memory adversary (every execution is equivalent to a
// sequence of singleton activations); ModeSimultaneous performs all writes
// first and all reads second, the paper's literal simultaneous-round
// semantics. The two differ observably: repository finding F1 (see
// EXPERIMENTS.md) shows Algorithm 2 admits livelock under ModeSimultaneous
// lockstep schedules while being wait-free under ModeInterleaved.
//
// Crashes are modeled exactly as in the paper: a crashed process is simply
// never activated again, and its register retains its last written value
// (or ⊥ if it never woke).
package sim

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"asynccycle/internal/graph"
	"asynccycle/internal/metrics"
	"asynccycle/internal/runctl"
	"asynccycle/internal/schedule"
)

// Cell is one register value as seen by a reader: Present is false for the
// initial value ⊥ (the owner has never been activated).
type Cell[V any] struct {
	Present bool
	Val     V
}

// Decision is the outcome of one round of a process: either continue, or
// terminate returning Output.
type Decision struct {
	Return bool
	Output int
}

// Node is a process: a deterministic state machine driven by rounds.
//
// A round calls Publish to obtain the value written to the node's register,
// then Observe with the registers of its neighbors (in the graph's fixed,
// arbitrary neighbor order). Observe updates internal state and decides
// whether to terminate. After a Decision with Return == true the node is
// never activated again.
type Node[V any] interface {
	// Publish returns the register value this node writes at the start of
	// its round.
	Publish() V
	// Observe consumes the local immediate snapshot of neighbor registers
	// and returns the node's decision for this round. The view slice is
	// reused by the engine and is only valid during the call.
	Observe(view []Cell[V]) Decision
	// Clone returns a deep copy, used by the bounded model checker to
	// branch executions.
	Clone() Node[V]
}

// Result summarizes a finished (or aborted) execution.
type Result struct {
	// Outputs[i] is the color output by process i, or -1 if it never
	// terminated (crashed or starved).
	Outputs []int
	// Done[i] reports whether process i terminated.
	Done []bool
	// Crashed[i] reports whether process i was crashed by the adversary.
	Crashed []bool
	// Activations[i] counts the rounds process i performed.
	Activations []int
	// Steps is the number of time steps the execution took.
	Steps int
	// Values[i] is the current content of process i's register for engines
	// with int-typed registers that opted in via SetRecordValues (-1 for a
	// register still at ⊥); nil otherwise. Stabilizing protocols publish
	// their color here, so legitimacy predicates can read the configuration
	// from a Result even though nothing terminates.
	Values []int
}

// MaxActivations returns the largest per-process activation count — the
// round complexity of the execution as defined in §2.2.
func (r Result) MaxActivations() int {
	max := 0
	for _, a := range r.Activations {
		if a > max {
			max = a
		}
	}
	return max
}

// TerminatedCount returns how many processes terminated with an output.
func (r Result) TerminatedCount() int {
	n := 0
	for _, d := range r.Done {
		if d {
			n++
		}
	}
	return n
}

// Mode selects how a multi-process activation set executes within one time
// step.
type Mode int

const (
	// ModeInterleaved (the default) executes the activated processes one
	// after another in ascending index order: each process's write is
	// visible to later processes in the same step. Every execution under
	// this mode is equivalent to a schedule of singleton activations — the
	// standard asynchronous read/write adversary.
	ModeInterleaved Mode = iota
	// ModeSimultaneous performs all writes of the activated set before any
	// read, the paper's §2.1 simultaneous-round semantics ("the system
	// behaves as if each of these processes first wrote a value in its own
	// register, then all processes read all registers").
	ModeSimultaneous
)

// String returns "interleaved" or "simultaneous".
func (m Mode) String() string {
	if m == ModeSimultaneous {
		return "simultaneous"
	}
	return "interleaved"
}

// Hook observes the engine after each executed step; t is the step index
// and activated lists the processes that actually performed a round.
type Hook[V any] func(e *Engine[V], t int, activated []int)

// ErrStepLimit is returned by Run when the step budget is exhausted before
// the execution terminates — in tests this flags a liveness bug, since all
// the paper's algorithms are wait-free.
var ErrStepLimit = errors.New("sim: step limit exceeded")

// emptyStreak is how many consecutive no-op steps (scheduler choices that
// activate nobody) Run tolerates before declaring the remaining processes
// crashed. Idle steps change no state, so an adversary idling forever is
// indistinguishable from one that crashed everyone; the tolerance is large
// enough for deliberate idling phases (e.g. Sleep schedulers parking the
// execution until a wake time) to pass through.
const emptyStreak = 2048

// Engine executes one distributed algorithm instance over a graph.
type Engine[V any] struct {
	g       graph.Graph
	nodes   []Node[V]
	regs    []Cell[V]
	done    []bool
	crashed []bool
	outputs []int
	acts    []int
	limits  []int // crash after this many activations; <0 = never
	t       int
	mode    Mode
	hooks   []Hook[V]

	// Scratch storage, reused across rounds so a warmed-up engine steps
	// without allocating. Never shared between engines: Clone/CloneInto
	// give every engine its own.
	viewBuf      []Cell[V] // neighbor views handed to Observe
	performedBuf []int     // Step's result slice
	inSetBuf     []bool    // Step's dedup marks, cleared after use
	fph          FPHasher  // FingerprintHash's streaming state
	rotH         []uint64  // canonical fingerprint scratch: 2n rotated hash lanes

	// recordValues opts Result snapshots into carrying the register
	// contents (Result.Values) for int-registered engines; off by default
	// so terminating protocols keep their allocation profile.
	recordValues bool

	met *metrics.Run // optional observability sink; nil = off
}

// NewEngine creates an engine for the given topology and per-node state
// machines. len(nodes) must equal g.N().
func NewEngine[V any](g graph.Graph, nodes []Node[V]) (*Engine[V], error) {
	if len(nodes) != g.N() {
		return nil, fmt.Errorf("sim: %d nodes for graph %s with %d vertices", len(nodes), g.Name(), g.N())
	}
	n := g.N()
	e := &Engine[V]{
		g:       g,
		nodes:   nodes,
		regs:    make([]Cell[V], n),
		done:    make([]bool, n),
		crashed: make([]bool, n),
		outputs: make([]int, n),
		acts:    make([]int, n),
		limits:  make([]int, n),
	}
	for i := range e.outputs {
		e.outputs[i] = -1
		e.limits[i] = -1
	}
	return e, nil
}

// AddHook registers a post-step observer (e.g. a tracer or invariant
// checker).
func (e *Engine[V]) AddHook(h Hook[V]) { e.hooks = append(e.hooks, h) }

// SetMode selects the activation semantics; call before the first Step.
func (e *Engine[V]) SetMode(m Mode) { e.mode = m }

// SetMetrics installs an optional metrics sink: every Step increments
// r.Steps and charges the performed rounds to r.Activations. A nil r (the
// default) turns publishing off; like hooks, the sink is not propagated to
// Clone/CloneInto copies, so model-checker branches stay silent.
func (e *Engine[V]) SetMetrics(r *metrics.Run) { e.met = r }

// Mode returns the engine's activation semantics.
func (e *Engine[V]) Mode() Mode { return e.mode }

// CrashAfter arranges for process i to crash once it has performed k
// rounds (k == 0 means it never wakes). It overrides any previous limit.
func (e *Engine[V]) CrashAfter(i, k int) {
	e.limits[i] = k
	if k <= e.acts[i] {
		e.crashed[i] = true
	}
}

// Crash immediately crashes process i.
func (e *Engine[V]) Crash(i int) { e.crashed[i] = true }

// SetRecordValues opts Result snapshots into carrying the register
// contents as Result.Values. Meaningful only for engines whose register
// type V is int (other engines record nil); see Result.Values.
func (e *Engine[V]) SetRecordValues(on bool) { e.recordValues = on }

// SeedRegisters installs an arbitrary initial register configuration:
// every register becomes present with the given value, as if its owner
// had published it before the execution started. Self-stabilizing
// protocols use it to start from arbitrary (possibly corrupted) states —
// the node state machines must be constructed consistently with the
// seeded values, since a node's next Publish overwrites its register.
// len(vals) must equal the process count. Call before the first Step.
func (e *Engine[V]) SeedRegisters(vals []V) error {
	if len(vals) != len(e.regs) {
		return fmt.Errorf("sim: %d seed values for %d registers", len(vals), len(e.regs))
	}
	for i, v := range vals {
		e.regs[i] = Cell[V]{Present: true, Val: v}
	}
	return nil
}

// Graph returns the topology.
func (e *Engine[V]) Graph() graph.Graph { return e.g }

// N implements schedule.State.
func (e *Engine[V]) N() int { return len(e.nodes) }

// Time implements schedule.State: the index of the next step.
func (e *Engine[V]) Time() int { return e.t + 1 }

// Working implements schedule.State.
func (e *Engine[V]) Working(i int) bool { return !e.done[i] && !e.crashed[i] }

// Activations implements schedule.State.
func (e *Engine[V]) Activations(i int) int { return e.acts[i] }

// Done reports whether process i terminated.
func (e *Engine[V]) Done(i int) bool { return e.done[i] }

// Crashed reports whether process i crashed.
func (e *Engine[V]) Crashed(i int) bool { return e.crashed[i] }

// Output returns process i's output, or -1 if it has not terminated.
func (e *Engine[V]) Output(i int) int { return e.outputs[i] }

// Register returns the current content of process i's register.
func (e *Engine[V]) Register(i int) Cell[V] { return e.regs[i] }

// NodeState returns process i's state machine (read-only use only).
func (e *Engine[V]) NodeState(i int) Node[V] { return e.nodes[i] }

// AllDone reports whether every process has terminated.
func (e *Engine[V]) AllDone() bool {
	for i := range e.done {
		if !e.done[i] {
			return false
		}
	}
	return true
}

// AllSettled reports whether every process has terminated or crashed, i.e.
// the execution cannot evolve further.
func (e *Engine[V]) AllSettled() bool {
	for i := range e.done {
		if e.Working(i) {
			return false
		}
	}
	return true
}

var _ schedule.State = (*Engine[int])(nil)

// Step executes one time step activating the given set of processes.
// Non-working processes in the set are skipped, duplicates collapse, and
// all writes happen before any read, per the model. It returns the
// processes that actually performed a round.
//
// The returned slice is scratch storage owned by the engine, valid until
// its next Step; callers that retain it across steps must copy it.
func (e *Engine[V]) Step(active []int) []int {
	e.t++

	// Deduplicate and filter to working processes, in reused scratch.
	if e.inSetBuf == nil {
		e.inSetBuf = make([]bool, len(e.nodes))
	}
	performed := e.performedBuf[:0]
	for _, i := range active {
		if i < 0 || i >= len(e.nodes) || e.inSetBuf[i] || !e.Working(i) {
			continue
		}
		e.inSetBuf[i] = true
		performed = append(performed, i)
	}
	for _, i := range performed {
		e.inSetBuf[i] = false
	}
	sort.Ints(performed)
	e.performedBuf = performed

	if e.mode == ModeSimultaneous {
		// Phase 1: all activated processes write; phase 2: all read.
		for _, i := range performed {
			e.regs[i] = Cell[V]{Present: true, Val: e.nodes[i].Publish()}
		}
		for _, i := range performed {
			e.observe(i)
		}
	} else {
		// Interleaved: each process's atomic write+read round completes
		// before the next process in the set runs.
		for _, i := range performed {
			e.regs[i] = Cell[V]{Present: true, Val: e.nodes[i].Publish()}
			e.observe(i)
		}
	}

	for _, h := range e.hooks {
		h(e, e.t, performed)
	}
	if e.met != nil {
		e.met.Steps.Inc()
		e.met.Activations.Add(int64(len(performed)))
	}
	return performed
}

// observe performs the read-and-update half of process i's round: gather
// the local immediate snapshot, let the node decide, and account for
// termination and crash limits. The view buffer is only valid during the
// Observe call.
func (e *Engine[V]) observe(i int) {
	nbrs := e.g.Neighbors(i)
	if cap(e.viewBuf) < len(nbrs) {
		e.viewBuf = make([]Cell[V], len(nbrs))
	}
	view := e.viewBuf[:len(nbrs)]
	for j, q := range nbrs {
		view[j] = e.regs[q]
	}
	dec := e.nodes[i].Observe(view)
	e.acts[i]++
	if dec.Return {
		e.done[i] = true
		e.outputs[i] = dec.Output
	} else if e.limits[i] >= 0 && e.acts[i] >= e.limits[i] {
		e.crashed[i] = true
	}
}

// Run drives the engine with the scheduler until every process terminates
// or crashes, or until maxSteps is exceeded (returning ErrStepLimit along
// with the partial result). The scheduler returning empty sets for several
// consecutive steps crashes all remaining processes, modeling an adversary
// that abandons them.
func (e *Engine[V]) Run(s schedule.Scheduler, maxSteps int) (Result, error) {
	empties := 0
	for !e.AllSettled() {
		if e.t >= maxSteps {
			return e.result(), fmt.Errorf("%w: %d steps, scheduler %s", ErrStepLimit, e.t, s.Name())
		}
		performed := e.Step(s.Next(e))
		if len(performed) == 0 {
			empties++
			if empties >= emptyStreak {
				for i := range e.crashed {
					if e.Working(i) {
						e.crashed[i] = true
					}
				}
			}
		} else {
			empties = 0
		}
	}
	return e.result(), nil
}

// RunBudget is Run with run control: the execution stops early — returning
// the partial Result so far plus a non-empty StopReason — when ctx is
// cancelled, the budget's Timeout elapses, e.t reaches b.MaxSteps, or the
// total rounds performed reach b.MaxActivations (each limit unbounded when
// zero). A completed execution returns runctl.StopNone. Cancellation is
// polled between steps (a step is atomic), so the returned Result is always
// a consistent configuration. With a nil ctx and a zero budget, RunBudget
// behaves exactly like Run with no step limit.
func (e *Engine[V]) RunBudget(ctx context.Context, s schedule.Scheduler, b runctl.Budget) (Result, runctl.StopReason) {
	ck := runctl.NewChecker(ctx, b.Timeout)
	startActs := 0
	for _, a := range e.acts {
		startActs += a
	}
	empties := 0
	for !e.AllSettled() {
		if reason, stop := ck.CheckNow(); stop {
			return e.result(), reason
		}
		if b.MaxSteps > 0 && e.t >= b.MaxSteps {
			return e.result(), runctl.StopMaxSteps
		}
		if b.MaxActivations > 0 {
			total := -startActs
			for _, a := range e.acts {
				total += a
			}
			if total >= b.MaxActivations {
				return e.result(), runctl.StopActivations
			}
		}
		performed := e.Step(s.Next(e))
		if len(performed) == 0 {
			empties++
			if empties >= emptyStreak {
				for i := range e.crashed {
					if e.Working(i) {
						e.crashed[i] = true
					}
				}
			}
		} else {
			empties = 0
		}
	}
	return e.result(), runctl.StopNone
}

func (e *Engine[V]) result() Result {
	r := Result{
		Outputs:     append([]int(nil), e.outputs...),
		Done:        append([]bool(nil), e.done...),
		Crashed:     append([]bool(nil), e.crashed...),
		Activations: append([]int(nil), e.acts...),
		Steps:       e.t,
	}
	if e.recordValues {
		vals := make([]int, len(e.regs))
		for i, c := range e.regs {
			switch v, ok := any(c.Val).(int); {
			case !ok:
				vals = nil
			case !c.Present:
				vals[i] = -1
			default:
				vals[i] = v
			}
			if vals == nil {
				break
			}
		}
		r.Values = vals
	}
	return r
}

// Result snapshots the current execution state as a Result, even if the
// execution has not settled.
func (e *Engine[V]) Result() Result { return e.result() }

// Clone deep-copies the engine (including node states via Node.Clone), for
// use by the bounded model checker.
func (e *Engine[V]) Clone() *Engine[V] { return e.CloneInto(nil) }

// CloneInto deep-copies e into dst, reusing dst's slice storage where its
// capacities allow — the model checker recycles discarded branch engines
// through a free list, cutting the steady-state allocations of exploration
// to the per-node state clones. dst == nil (or a fresh engine) behaves
// like Clone. dst's scratch buffers are kept as its own; hooks are
// deliberately not copied, so checker branches stay silent. Returns dst.
func (e *Engine[V]) CloneInto(dst *Engine[V]) *Engine[V] {
	if dst == nil {
		dst = &Engine[V]{}
	}
	dst.g = e.g
	dst.nodes = append(dst.nodes[:0], e.nodes...)
	for i, nd := range e.nodes {
		dst.nodes[i] = nd.Clone()
	}
	dst.regs = append(dst.regs[:0], e.regs...)
	dst.done = append(dst.done[:0], e.done...)
	dst.crashed = append(dst.crashed[:0], e.crashed...)
	dst.outputs = append(dst.outputs[:0], e.outputs...)
	dst.acts = append(dst.acts[:0], e.acts...)
	dst.limits = append(dst.limits[:0], e.limits...)
	dst.t = e.t
	dst.mode = e.mode
	dst.recordValues = e.recordValues
	dst.hooks = nil
	dst.met = nil
	if dst.inSetBuf != nil && len(dst.inSetBuf) != len(e.nodes) {
		dst.inSetBuf = nil // sized per instance; re-lazily allocated
	} else {
		// Step leaves the dedup marks cleared, but a caller scribbling on a
		// recycled engine (or a future Step variant bailing mid-loop) must
		// not leak marks into the next instance: clear defensively.
		for i := range dst.inSetBuf {
			dst.inSetBuf[i] = false
		}
	}
	return dst
}

// Fingerprint returns a canonical string encoding of the configuration:
// register contents, node states, and termination/crash flags. Two engines
// with equal fingerprints behave identically under identical future
// schedules. Activation counts and time are excluded when no crash limit is
// armed, since the transition function then does not depend on them; a
// process with a CrashAfter limit additionally encodes its activation count
// and limit, because its distance-to-crash *is* part of the transition
// function (two configurations differing only in a limited process's count
// evolve differently). Limit-free fingerprints are byte-identical to the
// historical encoding.
func (e *Engine[V]) Fingerprint() string {
	return e.FingerprintRotated(0)
}

// FingerprintRotated returns the Fingerprint of the configuration relabeled
// by the cycle rotation i ↦ i-k mod n: position j of the encoding carries
// process (j+k) mod n. FingerprintRotated(0) is exactly Fingerprint.
func (e *Engine[V]) FingerprintRotated(k int) string {
	n := len(e.nodes)
	var b strings.Builder
	for j := 0; j < n; j++ {
		i := j + k
		if i >= n {
			i -= n
		}
		fmt.Fprintf(&b, "%d[", j)
		if e.regs[i].Present {
			fmt.Fprintf(&b, "r=%v", e.regs[i].Val)
		} else {
			b.WriteString("r=⊥")
		}
		fmt.Fprintf(&b, " s=%v d=%t c=%t o=%d", e.nodes[i], e.done[i], e.crashed[i], e.outputs[i])
		if e.limits[i] >= 0 {
			fmt.Fprintf(&b, " a=%d l=%d", e.acts[i], e.limits[i])
		}
		b.WriteString("]")
	}
	return b.String()
}
