package sim_test

import (
	"context"
	"errors"
	"testing"

	"asynccycle/internal/metrics"
	"asynccycle/internal/runctl"

	"asynccycle/internal/graph"
	"asynccycle/internal/schedule"
	"asynccycle/internal/sim"
)

// echoNode publishes a running counter and terminates after Rounds rounds,
// outputting the number of present neighbors it saw in its last round.
// It is the minimal probe for engine semantics.
type echoNode struct {
	Rounds  int
	count   int
	lastSaw int
}

func (e *echoNode) Publish() int { return e.count }

func (e *echoNode) Observe(view []sim.Cell[int]) sim.Decision {
	e.count++
	e.lastSaw = 0
	for _, c := range view {
		if c.Present {
			e.lastSaw++
		}
	}
	if e.count >= e.Rounds {
		return sim.Decision{Return: true, Output: e.lastSaw}
	}
	return sim.Decision{}
}

func (e *echoNode) Clone() sim.Node[int] {
	cp := *e
	return &cp
}

func newEchoNodes(n, rounds int) []sim.Node[int] {
	nodes := make([]sim.Node[int], n)
	for i := range nodes {
		nodes[i] = &echoNode{Rounds: rounds}
	}
	return nodes
}

// peekNode records the register values it reads each round, for asserting
// visibility semantics; it never terminates on its own.
type peekNode struct {
	id    int
	seen  [][]sim.Cell[int]
	value int
}

func (p *peekNode) Publish() int { return p.value }

func (p *peekNode) Observe(view []sim.Cell[int]) sim.Decision {
	cp := make([]sim.Cell[int], len(view))
	copy(cp, view)
	p.seen = append(p.seen, cp)
	p.value++
	return sim.Decision{}
}

func (p *peekNode) Clone() sim.Node[int] {
	cp := *p
	cp.seen = append([][]sim.Cell[int](nil), p.seen...)
	return &cp
}

func TestNewEngineValidates(t *testing.T) {
	g := graph.MustCycle(3)
	if _, err := sim.NewEngine(g, newEchoNodes(2, 1)); err == nil {
		t.Fatal("accepted wrong node count")
	}
}

func TestRegistersStartBottom(t *testing.T) {
	g := graph.MustCycle(3)
	e, err := sim.NewEngine(g, newEchoNodes(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if e.Register(i).Present {
			t.Errorf("register %d present before any activation", i)
		}
		if e.Output(i) != -1 {
			t.Errorf("output %d = %d before termination", i, e.Output(i))
		}
	}
}

func TestStepFiltersAndCounts(t *testing.T) {
	g := graph.MustCycle(3)
	e, _ := sim.NewEngine(g, newEchoNodes(3, 10))
	performed := e.Step([]int{0, 0, 2, -1, 99})
	if len(performed) != 2 || performed[0] != 0 || performed[1] != 2 {
		t.Fatalf("performed = %v, want [0 2]", performed)
	}
	if e.Activations(0) != 1 || e.Activations(1) != 0 || e.Activations(2) != 1 {
		t.Fatal("wrong activation counts")
	}
	if !e.Register(0).Present || e.Register(1).Present {
		t.Fatal("wrong register presence")
	}
}

func TestTerminatedNeverActivates(t *testing.T) {
	g := graph.MustCycle(3)
	e, _ := sim.NewEngine(g, newEchoNodes(3, 1)) // terminate on first round
	e.Step([]int{0})
	if !e.Done(0) {
		t.Fatal("node 0 should have terminated")
	}
	if performed := e.Step([]int{0}); len(performed) != 0 {
		t.Fatalf("terminated node activated: %v", performed)
	}
	if e.Activations(0) != 1 {
		t.Fatalf("activations = %d, want 1", e.Activations(0))
	}
}

func TestInterleavedVisibility(t *testing.T) {
	// In interleaved mode, when {0, 1} activate in one step, node 1 (run
	// second) sees node 0's write from this step.
	g := graph.MustCycle(3)
	nodes := []sim.Node[int]{&peekNode{id: 0}, &peekNode{id: 1}, &peekNode{id: 2}}
	e, _ := sim.NewEngine(g, nodes)
	e.Step([]int{0, 1})

	p1 := nodes[1].(*peekNode)
	// Node 1's neighbors are (0, 2): it must have seen node 0 present.
	saw0 := p1.seen[0][0]
	if !saw0.Present {
		t.Fatal("interleaved: node 1 did not see node 0's same-step write")
	}
}

func TestSimultaneousVisibility(t *testing.T) {
	// In simultaneous mode all writes land before any read: both see each
	// other's fresh value — and in particular node 0 sees node 1 present
	// even though node 1 "runs" later.
	g := graph.MustCycle(3)
	nodes := []sim.Node[int]{&peekNode{id: 0}, &peekNode{id: 1}, &peekNode{id: 2}}
	e, _ := sim.NewEngine(g, nodes)
	e.SetMode(sim.ModeSimultaneous)
	e.Step([]int{0, 1})

	p0 := nodes[0].(*peekNode)
	// Node 0's neighbors are (2, 1): node 1 must be present.
	found := false
	for _, c := range p0.seen[0] {
		if c.Present {
			found = true
		}
	}
	if !found {
		t.Fatal("simultaneous: node 0 did not see node 1's same-step write")
	}
}

func TestModeString(t *testing.T) {
	if sim.ModeInterleaved.String() != "interleaved" {
		t.Error("wrong interleaved name")
	}
	if sim.ModeSimultaneous.String() != "simultaneous" {
		t.Error("wrong simultaneous name")
	}
}

func TestCrashAfter(t *testing.T) {
	g := graph.MustCycle(3)
	e, _ := sim.NewEngine(g, newEchoNodes(3, 100))
	e.CrashAfter(1, 2)
	for i := 0; i < 5; i++ {
		e.Step([]int{0, 1, 2})
	}
	if !e.Crashed(1) {
		t.Fatal("node 1 did not crash")
	}
	if e.Activations(1) != 2 {
		t.Fatalf("crashed node performed %d rounds, want 2", e.Activations(1))
	}
	if e.Crashed(0) || e.Crashed(2) {
		t.Fatal("wrong nodes crashed")
	}
}

func TestCrashAtBirth(t *testing.T) {
	g := graph.MustCycle(3)
	e, _ := sim.NewEngine(g, newEchoNodes(3, 100))
	e.CrashAfter(2, 0)
	if e.Working(2) {
		t.Fatal("node with 0-round budget should be crashed immediately")
	}
	e.Step([]int{0, 1, 2})
	if e.Register(2).Present {
		t.Fatal("never-awake node's register must stay ⊥")
	}
}

func TestRunSynchronous(t *testing.T) {
	g := graph.MustCycle(4)
	e, _ := sim.NewEngine(g, newEchoNodes(4, 3))
	res, err := e.Run(schedule.Synchronous{}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 3 {
		t.Errorf("steps = %d, want 3", res.Steps)
	}
	if res.TerminatedCount() != 4 {
		t.Errorf("terminated = %d, want 4", res.TerminatedCount())
	}
	if res.MaxActivations() != 3 {
		t.Errorf("max activations = %d, want 3", res.MaxActivations())
	}
	for i, out := range res.Outputs {
		if out != 2 { // both neighbors present from round 2 on
			t.Errorf("output %d = %d, want 2", i, out)
		}
	}
}

func TestRunStepLimit(t *testing.T) {
	g := graph.MustCycle(3)
	// Nodes that never terminate.
	e, _ := sim.NewEngine(g, []sim.Node[int]{&peekNode{}, &peekNode{}, &peekNode{}})
	_, err := e.Run(schedule.Synchronous{}, 10)
	if !errors.Is(err, sim.ErrStepLimit) {
		t.Fatalf("err = %v, want ErrStepLimit", err)
	}
}

// emptyScheduler returns no processes, modeling an adversary that abandons
// everyone immediately.
type emptyScheduler struct{}

func (emptyScheduler) Name() string              { return "empty" }
func (emptyScheduler) Next(schedule.State) []int { return nil }

func TestRunGivesUpOnEmptyScheduler(t *testing.T) {
	g := graph.MustCycle(3)
	e, _ := sim.NewEngine(g, newEchoNodes(3, 5))
	res, err := e.Run(emptyScheduler{}, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Crashed {
		if !res.Crashed[i] {
			t.Errorf("node %d not crashed under empty scheduler", i)
		}
		if res.Done[i] {
			t.Errorf("node %d terminated without activations", i)
		}
	}
}

func TestResultSnapshotIsolation(t *testing.T) {
	g := graph.MustCycle(3)
	e, _ := sim.NewEngine(g, newEchoNodes(3, 2))
	res1 := e.Result()
	e.Step([]int{0, 1, 2})
	if res1.Activations[0] != 0 {
		t.Fatal("Result aliases engine state")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := graph.MustCycle(3)
	e, _ := sim.NewEngine(g, newEchoNodes(3, 3))
	e.Step([]int{0})
	c := e.Clone()
	if c.Fingerprint() != e.Fingerprint() {
		t.Fatal("clone fingerprint differs")
	}
	c.Step([]int{1})
	if c.Fingerprint() == e.Fingerprint() {
		t.Fatal("stepping the clone changed nothing, or affected the original")
	}
	if e.Activations(1) != 0 {
		t.Fatal("stepping the clone affected the original")
	}
}

func TestFingerprintDistinguishesStates(t *testing.T) {
	g := graph.MustCycle(3)
	e1, _ := sim.NewEngine(g, newEchoNodes(3, 5))
	e2, _ := sim.NewEngine(g, newEchoNodes(3, 5))
	if e1.Fingerprint() != e2.Fingerprint() {
		t.Fatal("identical initial engines have different fingerprints")
	}
	e1.Step([]int{0})
	if e1.Fingerprint() == e2.Fingerprint() {
		t.Fatal("different states share a fingerprint")
	}
	e2.Step([]int{0})
	if e1.Fingerprint() != e2.Fingerprint() {
		t.Fatal("identical histories produced different fingerprints")
	}
}

func TestHooksObserveSteps(t *testing.T) {
	g := graph.MustCycle(3)
	e, _ := sim.NewEngine(g, newEchoNodes(3, 2))
	var calls []int
	e.AddHook(func(_ *sim.Engine[int], t int, activated []int) {
		calls = append(calls, len(activated))
	})
	e.Step([]int{0, 1})
	e.Step([]int{2})
	if len(calls) != 2 || calls[0] != 2 || calls[1] != 1 {
		t.Fatalf("hook calls = %v, want [2 1]", calls)
	}
}

func TestAllSettled(t *testing.T) {
	g := graph.MustCycle(3)
	e, _ := sim.NewEngine(g, newEchoNodes(3, 1))
	if e.AllSettled() {
		t.Fatal("settled before start")
	}
	e.Step([]int{0, 1})
	e.Crash(2)
	if !e.AllSettled() {
		t.Fatal("not settled with all done or crashed")
	}
	if e.AllDone() {
		t.Fatal("AllDone should be false with a crashed node")
	}
}

// TestInterleavedSubsetEqualsSingletonSequence verifies the equivalence
// the model checker's singleton-only exploration relies on: under
// ModeInterleaved, stepping a set {p1 < p2 < …} in one step reaches
// exactly the configuration of stepping p1, p2, … in separate steps.
func TestInterleavedSubsetEqualsSingletonSequence(t *testing.T) {
	g := graph.MustCycle(5)
	subsetEngine, _ := sim.NewEngine(g, newEchoNodes(5, 10))
	seqEngine, _ := sim.NewEngine(g, newEchoNodes(5, 10))

	plans := [][]int{{0, 2, 4}, {1, 3}, {0, 1, 2, 3, 4}, {2}, {4, 0}}
	for _, plan := range plans {
		subsetEngine.Step(plan)
		for _, p := range plan {
			seqEngine.Step([]int{p})
		}
		if subsetEngine.Fingerprint() != seqEngine.Fingerprint() {
			t.Fatalf("configurations diverge after subset %v", plan)
		}
	}
}

// TestSimultaneousSubsetDiffersFromSequence documents the converse: under
// ModeSimultaneous a joint step of two adjacent fresh processes is NOT
// expressible as singleton steps (each sees the other's same-step write).
func TestSimultaneousSubsetDiffersFromSequence(t *testing.T) {
	g := graph.MustCycle(3)
	joint, _ := sim.NewEngine(g, []sim.Node[int]{&peekNode{}, &peekNode{}, &peekNode{}})
	joint.SetMode(sim.ModeSimultaneous)
	joint.Step([]int{0, 1})

	seq, _ := sim.NewEngine(g, []sim.Node[int]{&peekNode{}, &peekNode{}, &peekNode{}})
	seq.SetMode(sim.ModeSimultaneous)
	seq.Step([]int{0})
	seq.Step([]int{1})

	p0Joint := joint.NodeState(0).(*peekNode)
	p0Seq := seq.NodeState(0).(*peekNode)
	// In the joint step, node 0 saw node 1 present; sequentially it saw ⊥.
	sawJoint := false
	for _, c := range p0Joint.seen[0] {
		if c.Present {
			sawJoint = true
		}
	}
	sawSeq := false
	for _, c := range p0Seq.seen[0] {
		if c.Present {
			sawSeq = true
		}
	}
	if !sawJoint || sawSeq {
		t.Fatalf("expected joint-visible/sequential-invisible writes; got joint=%t seq=%t", sawJoint, sawSeq)
	}
}

func TestRunOnCompleteGraph(t *testing.T) {
	// The engine is topology-generic: on K4 every node sees 3 neighbors.
	g, err := graph.Complete(4)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := sim.NewEngine(g, newEchoNodes(4, 2))
	res, err := e.Run(schedule.Synchronous{}, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i, out := range res.Outputs {
		if out != 3 {
			t.Errorf("output %d = %d, want 3 neighbors seen", i, out)
		}
	}
}

func TestRunBudgetCompletes(t *testing.T) {
	g := graph.MustCycle(4)
	e, _ := sim.NewEngine(g, newEchoNodes(4, 3))
	res, reason := e.RunBudget(nil, schedule.Synchronous{}, runctl.Budget{})
	if reason != runctl.StopNone {
		t.Fatalf("unbudgeted RunBudget stopped: %q", reason)
	}
	if res.TerminatedCount() != 4 {
		t.Fatalf("terminated = %d, want 4", res.TerminatedCount())
	}
}

func TestRunBudgetMaxSteps(t *testing.T) {
	g := graph.MustCycle(4)
	e, _ := sim.NewEngine(g, newEchoNodes(4, 100))
	res, reason := e.RunBudget(nil, schedule.Synchronous{}, runctl.Budget{MaxSteps: 5})
	if reason != runctl.StopMaxSteps {
		t.Fatalf("reason = %q, want %q", reason, runctl.StopMaxSteps)
	}
	if res.Steps != 5 {
		t.Fatalf("partial result at %d steps, want 5", res.Steps)
	}
	if res.TerminatedCount() != 0 {
		t.Fatalf("no process should have finished in 5 of 100 rounds")
	}
}

func TestRunBudgetMaxActivations(t *testing.T) {
	g := graph.MustCycle(4)
	e, _ := sim.NewEngine(g, newEchoNodes(4, 100))
	res, reason := e.RunBudget(nil, schedule.Synchronous{}, runctl.Budget{MaxActivations: 10})
	if reason != runctl.StopActivations {
		t.Fatalf("reason = %q, want %q", reason, runctl.StopActivations)
	}
	total := 0
	for _, a := range res.Activations {
		total += a
	}
	// The trip is detected between steps, so at most one extra step's worth
	// (4 rounds) beyond the budget may have executed.
	if total < 10 || total > 14 {
		t.Fatalf("total activations = %d, want within [10,14]", total)
	}
}

func TestRunBudgetCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := graph.MustCycle(4)
	e, _ := sim.NewEngine(g, newEchoNodes(4, 3))
	res, reason := e.RunBudget(ctx, schedule.Synchronous{}, runctl.Budget{})
	if reason != runctl.StopCancelled {
		t.Fatalf("reason = %q, want %q", reason, runctl.StopCancelled)
	}
	if res.Steps != 0 {
		t.Fatalf("pre-cancelled run took %d steps", res.Steps)
	}
}

func TestEngineMetricsPublishing(t *testing.T) {
	g := graph.MustCycle(4)
	e, _ := sim.NewEngine(g, newEchoNodes(4, 3))
	m := metrics.NewRun()
	e.SetMetrics(m)
	if _, err := e.Run(schedule.Synchronous{}, 100); err != nil {
		t.Fatal(err)
	}
	s := m.Snapshot()
	if s.Steps != 3 || s.Activations != 12 {
		t.Fatalf("metrics steps=%d acts=%d, want 3 and 12", s.Steps, s.Activations)
	}
	// Clones must not inherit the sink.
	before := m.Snapshot().Steps
	clone := e.Clone()
	clone.Step(nil)
	if got := m.Snapshot().Steps; got != before {
		t.Fatalf("clone published into parent metrics: steps %d -> %d", before, got)
	}
}
