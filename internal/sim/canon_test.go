package sim_test

import (
	"strings"
	"testing"

	"asynccycle/internal/core"
	"asynccycle/internal/graph"
	"asynccycle/internal/sim"
)

// rotatedFive builds the Five engine carrying the rotation image of xs:
// position j holds identifier xs[(j+k) mod n].
func rotatedFive(t *testing.T, xs []int, k int, mode sim.Mode) *sim.Engine[core.FiveVal] {
	n := len(xs)
	ys := make([]int, n)
	for j := range ys {
		ys[j] = xs[(j+k)%n]
	}
	e, err := sim.NewEngine(graph.MustCycle(n), core.NewFiveNodes(ys))
	if err != nil {
		t.Fatal(err)
	}
	e.SetMode(mode)
	return e
}

// TestRotatedFingerprintMatchesRelabeledEngine is the structural
// equivariance fact the canonical fingerprint rests on: running the rotated
// assignment under the rotated schedule lands on exactly the configuration
// whose plain fingerprint equals the original's rotated fingerprint — for
// singleton steps and simultaneous multi-sets alike.
func TestRotatedFingerprintMatchesRelabeledEngine(t *testing.T) {
	xs := []int{3, 9, 1, 12, 6}
	n := len(xs)
	schedules := map[string]struct {
		mode  sim.Mode
		steps [][]int
	}{
		"singletons-interleaved": {sim.ModeInterleaved, [][]int{{0}, {2}, {2}, {4}, {1}, {0}, {3}}},
		"sets-simultaneous":      {sim.ModeSimultaneous, [][]int{{0, 2}, {1, 3, 4}, {0, 1, 2, 3, 4}, {2, 4}}},
	}
	for name, sc := range schedules {
		for k := 0; k < n; k++ {
			a := rotatedFive(t, xs, 0, sc.mode)
			b := rotatedFive(t, xs, k, sc.mode)
			for _, step := range sc.steps {
				a.Step(step)
				rot := make([]int, len(step))
				for i, p := range step {
					rot[i] = ((p-k)%n + n) % n
				}
				b.Step(rot)
			}
			ah1, ah2 := a.FingerprintHashRotated(k)
			bh1, bh2 := b.FingerprintHash128()
			if ah1 != bh1 || ah2 != bh2 {
				t.Errorf("%s k=%d: rotated hash (%x,%x) != relabeled engine hash (%x,%x)", name, k, ah1, ah2, bh1, bh2)
			}
			if af, bf := a.FingerprintRotated(k), b.Fingerprint(); af != bf {
				t.Errorf("%s k=%d: rotated string fingerprint differs:\n%s\n%s", name, k, af, bf)
			}

			// Both engines are rotationally equivalent, so their canonical
			// fingerprints — hash and string — and orbit sizes coincide.
			ch1, ch2, _, aorb := a.CanonicalFingerprintHash128()
			dh1, dh2, _, borb := b.CanonicalFingerprintHash128()
			if ch1 != dh1 || ch2 != dh2 || aorb != borb {
				t.Errorf("%s k=%d: canonical hashes differ: (%x,%x,orbit=%d) vs (%x,%x,orbit=%d)",
					name, k, ch1, ch2, aorb, dh1, dh2, borb)
			}
			cs, _, sorb := a.CanonicalFingerprintInfo()
			ds, _, dsorb := b.CanonicalFingerprintInfo()
			if cs != ds || sorb != dsorb || sorb != aorb {
				t.Errorf("%s k=%d: canonical strings/orbits differ (orbit %d/%d/%d)", name, k, sorb, dsorb, aorb)
			}
		}
	}
}

// TestCanonicalOrbitSize: a rotation-symmetric configuration has orbit 1;
// breaking the symmetry at one position makes the orbit full-sized.
func TestCanonicalOrbitSize(t *testing.T) {
	n := 6
	e := newHashEngine(t, n)
	// Make all node states identical so the initial configuration is
	// invariant under every rotation. newHashEngine seeds x=i, so overwrite
	// by stepping nobody — instead build uniform nodes directly.
	nodes := make([]sim.Node[hashVal], n)
	for i := range nodes {
		nodes[i] = &hashNode{x: 7}
	}
	var err error
	e, err = sim.NewEngine(graph.MustCycle(n), nodes)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, rot, orbit := e.CanonicalFingerprintHash128(); orbit != 1 || rot != 0 {
		t.Fatalf("uniform configuration: rot=%d orbit=%d, want 0/1", rot, orbit)
	}
	if _, rot, orbit := e.CanonicalFingerprintInfo(); orbit != 1 || rot != 0 {
		t.Fatalf("uniform configuration (string): rot=%d orbit=%d, want 0/1", rot, orbit)
	}
	e.Step([]int{0}) // node 0 now differs: only the identity fixes the config
	if _, _, _, orbit := e.CanonicalFingerprintHash128(); orbit != n {
		t.Fatalf("asymmetric configuration: orbit=%d, want %d", orbit, n)
	}
	if _, _, orbit := e.CanonicalFingerprintInfo(); orbit != n {
		t.Fatalf("asymmetric configuration (string): orbit=%d, want %d", orbit, n)
	}
}

// constNode never changes state and never returns: stepping it changes the
// configuration only through the register-present flag and the activation
// counter, isolating exactly what the crash-limit fingerprint fix covers.
type constNode struct{}

func (constNode) Publish() int                              { return 0 }
func (constNode) Observe(view []sim.Cell[int]) sim.Decision { return sim.Decision{} }
func (constNode) Clone() sim.Node[int]                      { return constNode{} }
func (constNode) HashFingerprint(h *sim.FPHasher)           { h.HashByte('k') }

func constEngine(t *testing.T, n int) *sim.Engine[int] {
	nodes := make([]sim.Node[int], n)
	for i := range nodes {
		nodes[i] = constNode{}
	}
	e, err := sim.NewEngine(graph.MustCycle(n), nodes)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestFingerprintCrashLimitSensitivity is the regression for the checker
// soundness fix: without crash limits, activation counts stay excluded from
// fingerprints (the transition function ignores them — and recorded outputs
// stay byte-identical); with a CrashAfter limit armed, two configurations
// differing only in distance-to-crash must fingerprint differently, or the
// model checker's dedup would conflate states with different futures.
func TestFingerprintCrashLimitSensitivity(t *testing.T) {
	// Unlimited: acts differ, fingerprints agree.
	a, b := constEngine(t, 3), constEngine(t, 3)
	a.Step([]int{0})
	b.Step([]int{0})
	b.Step([]int{0}) // acts[0]=2 vs 1; same visible state
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("unlimited engines with equal visible state fingerprint differently:\n%s\n%s", a.Fingerprint(), b.Fingerprint())
	}
	ah1, ah2 := a.FingerprintHash128()
	bh1, bh2 := b.FingerprintHash128()
	if ah1 != bh1 || ah2 != bh2 {
		t.Fatal("unlimited engines with equal visible state hash differently")
	}
	if strings.Contains(a.Fingerprint(), " a=") {
		t.Fatalf("unlimited fingerprint leaks activation counts: %s", a.Fingerprint())
	}

	// Limited: the same two configurations are distinguishable — node 0 is
	// one activation from crashing in one and two in the other.
	c, d := constEngine(t, 3), constEngine(t, 3)
	c.CrashAfter(0, 3)
	d.CrashAfter(0, 3)
	c.Step([]int{0})
	d.Step([]int{0})
	d.Step([]int{0})
	if c.Fingerprint() == d.Fingerprint() {
		t.Fatalf("crash-limited engines with different distance-to-crash share a fingerprint: %s", c.Fingerprint())
	}
	ch1, ch2 := c.FingerprintHash128()
	dh1, dh2 := d.FingerprintHash128()
	if ch1 == dh1 && ch2 == dh2 {
		t.Fatal("crash-limited engines with different distance-to-crash share a hash")
	}
	if !strings.Contains(c.Fingerprint(), " a=1 l=3") {
		t.Fatalf("limited fingerprint lacks the acts/limit record: %s", c.Fingerprint())
	}
}

// TestCanonicalFingerprintAllocs pins the canonical hash to the zero-alloc
// warm path, like FingerprintHash128 before it.
func TestCanonicalFingerprintAllocs(t *testing.T) {
	e := newHashEngine(t, 6)
	e.Step([]int{0, 2, 4})
	e.CanonicalFingerprintHash128() // warm the rotation scratch
	if n := testing.AllocsPerRun(200, func() { e.CanonicalFingerprintHash128() }); n != 0 {
		t.Errorf("CanonicalFingerprintHash128 allocates %v per run, want 0", n)
	}
}
