// Canonical (rotation-minimal) configuration fingerprints. On the standard
// cycle C_n every rotation i ↦ i-k is a structural automorphism of the
// engine's transition system: neighbor lists keep their [i-1, i+1] order,
// so stepping the relabeled configuration is the relabeling of the stepped
// configuration, in both activation modes (singleton and simultaneous
// steps; interleaved multi-element sets execute in ascending index order
// and are *not* equivariant, which is why the model checker only enables
// canonicalization in configurations it has proven safe — see
// internal/model and DESIGN.md §6). The canonical fingerprint is the
// minimum of the n rotated fingerprints: rotationally equivalent
// configurations collapse to a single key, with the orbit size recovered
// exactly from the multiplicity of the minimum.
//
// Reflections are deliberately excluded here: they reverse neighbor-list
// order, so they are automorphisms of the *algorithms* (which are
// order-insensitive) but not of the engine's fixed-order views. Assignment
// sweeps exploit the full dihedral group instead, at the level of initial
// identifier assignments (graph.CanonicalAssignment).
package sim

// CanonicalFingerprintHash128 returns the minimum over all n rotations of
// FingerprintHashRotated — a fingerprint shared by every rotationally
// equivalent configuration — together with the argmin rotation rot (the
// smallest k attaining the minimum; position j of the canonical frame
// carries process (j+rot) mod n) and the exact rotation-orbit size
// n/|stabilizer|, recovered from the multiplicity of the minimal hash.
//
// The n rotated hashes live in engine-owned scratch, so a warmed-up engine
// canonicalizes without allocating. Cost is n full fingerprint streams.
func (e *Engine[V]) CanonicalFingerprintHash128() (h1, h2 uint64, rot, orbit int) {
	n := len(e.nodes)
	if cap(e.rotH) < 2*n {
		e.rotH = make([]uint64, 2*n)
	}
	rh := e.rotH[:2*n]
	for k := 0; k < n; k++ {
		a, b := e.FingerprintHashRotated(k)
		rh[2*k], rh[2*k+1] = a, b
	}
	rot = 0
	for k := 1; k < n; k++ {
		if rh[2*k] < rh[2*rot] || (rh[2*k] == rh[2*rot] && rh[2*k+1] < rh[2*rot+1]) {
			rot = k
		}
	}
	mult := 0
	for k := 0; k < n; k++ {
		if rh[2*k] == rh[2*rot] && rh[2*k+1] == rh[2*rot+1] {
			mult++
		}
	}
	// The stabilizer is a subgroup of Z_n, so its order divides n; a lane
	// collision could in principle inflate mult, which integer division
	// absorbs rather than panicking over.
	return rh[2*rot], rh[2*rot+1], rot, n / mult
}

// CanonicalFingerprintInfo is the exact string-mode counterpart of
// CanonicalFingerprintHash128: the lexicographically smallest rotated
// fingerprint, its argmin rotation, and the exact rotation-orbit size.
// It allocates (n string builds); the model checker only uses it under
// Options.StringFingerprints or as the collision-resolution fallback.
func (e *Engine[V]) CanonicalFingerprintInfo() (fp string, rot, orbit int) {
	n := len(e.nodes)
	fp = e.FingerprintRotated(0)
	rot, mult := 0, 1
	for k := 1; k < n; k++ {
		s := e.FingerprintRotated(k)
		switch {
		case s < fp:
			fp, rot, mult = s, k, 1
		case s == fp:
			mult++
		}
	}
	return fp, rot, n / mult
}

// CanonicalFingerprint returns just the canonical string fingerprint.
func (e *Engine[V]) CanonicalFingerprint() string {
	fp, _, _ := e.CanonicalFingerprintInfo()
	return fp
}
