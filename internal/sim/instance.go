package sim

// Instance is a type-erased handle on one running protocol instance: the
// minimal engine surface the model checker, the schedule fuzzer, and the
// generic run loops need, independent of the engine's register value type
// (or, for non-register models like DECOUPLED, of the engine itself).
//
// An Instance satisfies schedule.State, so any Scheduler can drive it. The
// fingerprint contract matches Engine's: two instances with equal
// fingerprints behave identically under identical future schedules.
type Instance interface {
	// N returns the number of processes (schedule.State).
	N() int
	// Time returns the index of the next step (schedule.State).
	Time() int
	// Working reports whether process i is neither terminated nor crashed
	// (schedule.State).
	Working(i int) bool
	// Activations counts the rounds process i performed (schedule.State).
	Activations(i int) int
	// AllDone reports whether every process terminated with an output.
	AllDone() bool
	// AllSettled reports whether every process terminated or crashed.
	AllSettled() bool
	// Step executes one time step activating the given processes and
	// returns the processes that actually performed a round. The returned
	// slice may be scratch storage owned by the instance.
	Step(active []int) []int
	// Result snapshots the current execution state.
	Result() Result
	// Fingerprint returns the canonical string encoding of the
	// configuration.
	Fingerprint() string
	// FingerprintHash128 returns the two-lane compact fingerprint.
	FingerprintHash128() (uint64, uint64)
	// Clone deep-copies the instance for execution branching.
	Clone() Instance
	// CloneInto deep-copies the instance, reusing dst's storage when dst
	// came from the same protocol (otherwise it behaves like Clone).
	CloneInto(dst Instance) Instance
}

// engineInstance adapts a typed *Engine[V] to the erased Instance surface.
type engineInstance[V any] struct {
	e *Engine[V]
}

// InstanceOf wraps a typed engine as a type-erased Instance. The wrapper
// delegates every call, so the warm Step path stays allocation-free.
func InstanceOf[V any](e *Engine[V]) Instance { return &engineInstance[V]{e: e} }

func (x *engineInstance[V]) N() int                               { return x.e.N() }
func (x *engineInstance[V]) Time() int                            { return x.e.Time() }
func (x *engineInstance[V]) Working(i int) bool                   { return x.e.Working(i) }
func (x *engineInstance[V]) Activations(i int) int                { return x.e.Activations(i) }
func (x *engineInstance[V]) AllDone() bool                        { return x.e.AllDone() }
func (x *engineInstance[V]) AllSettled() bool                     { return x.e.AllSettled() }
func (x *engineInstance[V]) Step(active []int) []int              { return x.e.Step(active) }
func (x *engineInstance[V]) Result() Result                       { return x.e.Result() }
func (x *engineInstance[V]) Fingerprint() string                  { return x.e.Fingerprint() }
func (x *engineInstance[V]) FingerprintHash128() (uint64, uint64) { return x.e.FingerprintHash128() }

func (x *engineInstance[V]) Clone() Instance {
	return &engineInstance[V]{e: x.e.Clone()}
}

func (x *engineInstance[V]) CloneInto(dst Instance) Instance {
	if d, ok := dst.(*engineInstance[V]); ok && d != nil {
		d.e = x.e.CloneInto(d.e)
		return d
	}
	return x.Clone()
}

// Unwrap exposes the typed engine behind an Instance produced by
// InstanceOf, or nil if the instance wraps a different engine type.
func Unwrap[V any](inst Instance) *Engine[V] {
	if x, ok := inst.(*engineInstance[V]); ok {
		return x.e
	}
	return nil
}
