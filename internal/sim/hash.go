// Compact configuration fingerprints. Engine.Fingerprint builds a canonical
// string; for the model checker's visited sets that string is pure overhead
// — it is hashed by the map and thrown away. FingerprintHash streams the
// same canonical information through a 128-bit hash without materializing
// anything, the explicit-state-checker trick (cf. SPIN's state compression)
// that makes exhaustive exploration allocation-lean.
package sim

import (
	"fmt"
	"math/bits"
)

// Hashable is optionally implemented by node state machines and register
// value types to let FingerprintHash encode them without reflection or
// allocation. Implement it on the pointer receiver — the engine hashes
// register values through a pointer, so value receivers would force a
// boxing allocation per register.
//
// HashFingerprint must feed every field that Engine.Fingerprint's "%v"
// rendering exposes: two states must hash equal exactly when their string
// fingerprints are equal. Types that do not implement Hashable are hashed
// through fmt (correct, but allocating).
type Hashable interface {
	HashFingerprint(h *FPHasher)
}

// FPHasher streams bytes into two independent 64-bit accumulators: lane A
// is standard FNV-1a, lane B a rotate-xor-multiply mix with a different
// basis. The pair forms the 128-bit compact fingerprint; the model checker
// uses lane A as the map key and lane B to detect (and then exactly
// resolve) key collisions.
type FPHasher struct {
	a, b uint64
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
	laneBOffset = 0x9E3779B97F4A7C15 // 2^64/φ, the usual odd mixing constant
	laneBPrime  = 0xFF51AFD7ED558CCD // from the splitmix64 finalizer, odd
)

// Reset restores the initial state, allowing reuse across fingerprints.
func (h *FPHasher) Reset() { h.a, h.b = fnvOffset64, laneBOffset }

// HashByte absorbs one byte.
func (h *FPHasher) HashByte(c byte) {
	h.a = (h.a ^ uint64(c)) * fnvPrime64
	h.b = (bits.RotateLeft64(h.b, 7) ^ uint64(c)) * laneBPrime
}

// HashUint64 absorbs v as eight little-endian bytes.
func (h *FPHasher) HashUint64(v uint64) {
	for i := 0; i < 8; i++ {
		h.HashByte(byte(v))
		v >>= 8
	}
}

// HashInt absorbs an int.
func (h *FPHasher) HashInt(v int) { h.HashUint64(uint64(v)) }

// HashBool absorbs a bool as one byte.
func (h *FPHasher) HashBool(v bool) {
	if v {
		h.HashByte(1)
	} else {
		h.HashByte(0)
	}
}

// HashString absorbs a length-delimited string.
func (h *FPHasher) HashString(s string) {
	h.HashInt(len(s))
	for i := 0; i < len(s); i++ {
		h.HashByte(s[i])
	}
}

// Write implements io.Writer so fmt can stream into the hasher — the
// fallback path for types without a Hashable implementation.
func (h *FPHasher) Write(p []byte) (int, error) {
	for _, c := range p {
		h.HashByte(c)
	}
	return len(p), nil
}

// Sum64 returns the primary (lane A) hash.
func (h *FPHasher) Sum64() uint64 { return h.a }

// Sum128 returns both lanes.
func (h *FPHasher) Sum128() (uint64, uint64) { return h.a, h.b }

// FingerprintHash returns a compact 64-bit fingerprint of the
// configuration, covering exactly the state Fingerprint covers: register
// contents, node states, termination/crash flags, and — only for processes
// armed with a CrashAfter limit — the activation count and limit, since
// distance-to-crash is then part of the transition function. Two engines
// with equal string fingerprints always have equal hashes; the converse
// holds up to hash collision, which the model checker's visited sets detect
// via the second lane and resolve exactly (see internal/model).
//
// The encoding is streamed through a scratch hasher owned by the engine:
// zero allocations when every node and register type implements Hashable.
func (e *Engine[V]) FingerprintHash() uint64 {
	a, _ := e.FingerprintHash128()
	return a
}

// FingerprintHash128 returns both lanes of the compact fingerprint.
func (e *Engine[V]) FingerprintHash128() (uint64, uint64) {
	return e.FingerprintHashRotated(0)
}

// FingerprintHashRotated returns both lanes of the compact fingerprint of
// the configuration relabeled by the cycle rotation i ↦ i-k mod n: position
// j of the hashed stream carries process (j+k) mod n, mirroring
// FingerprintRotated. FingerprintHashRotated(0) is FingerprintHash128.
func (e *Engine[V]) FingerprintHashRotated(k int) (uint64, uint64) {
	h := &e.fph
	h.Reset()
	n := len(e.nodes)
	for j := 0; j < n; j++ {
		i := j + k
		if i >= n {
			i -= n
		}
		h.HashInt(j)
		if e.regs[i].Present {
			h.HashByte(1)
			hashValue(h, &e.regs[i].Val)
		} else {
			h.HashByte(0)
		}
		hashAny(h, any(e.nodes[i]))
		h.HashBool(e.done[i])
		h.HashBool(e.crashed[i])
		h.HashInt(e.outputs[i])
		if e.limits[i] >= 0 {
			h.HashByte(1)
			h.HashInt(e.acts[i])
			h.HashInt(e.limits[i])
		}
	}
	return h.Sum128()
}

// hashAny encodes v through its Hashable implementation when present, and
// through fmt otherwise. The fmt path allocates but keeps correctness for
// node types that have not (yet) implemented Hashable.
func hashAny(h *FPHasher, v any) {
	if hv, ok := v.(Hashable); ok {
		hv.HashFingerprint(h)
		return
	}
	fmt.Fprintf(h, "%v", v)
}

// hashValue is hashAny for register values, addressed through a pointer so
// Hashable implementations avoid boxing; the fmt fallback dereferences, so
// even non-struct value types are encoded by content, never by address.
func hashValue[V any](h *FPHasher, v *V) {
	if hv, ok := any(v).(Hashable); ok {
		hv.HashFingerprint(h)
		return
	}
	fmt.Fprintf(h, "%v", *v)
}
