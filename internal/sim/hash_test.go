package sim_test

import (
	"testing"

	"asynccycle/internal/graph"
	"asynccycle/internal/sim"
)

// hashVal is a register value type implementing Hashable on the pointer
// receiver, as the interface's contract requires.
type hashVal struct {
	A, B int
}

func (v *hashVal) HashFingerprint(h *sim.FPHasher) {
	h.HashInt(v.A)
	h.HashInt(v.B)
}

// hashNode is a never-terminating counter node with an allocation-free
// Observe, the minimal payload for measuring the engine's own hot path.
type hashNode struct {
	x, seen int
}

func (n *hashNode) Publish() hashVal { return hashVal{A: n.x, B: n.seen} }

func (n *hashNode) Observe(view []sim.Cell[hashVal]) sim.Decision {
	n.x++
	for _, c := range view {
		if c.Present {
			n.seen += c.Val.A
		}
	}
	return sim.Decision{}
}

func (n *hashNode) Clone() sim.Node[hashVal] {
	cp := *n
	return &cp
}

func (n *hashNode) HashFingerprint(h *sim.FPHasher) {
	h.HashInt(n.x)
	h.HashInt(n.seen)
}

func newHashEngine(t testing.TB, n int) *sim.Engine[hashVal] {
	nodes := make([]sim.Node[hashVal], n)
	for i := range nodes {
		nodes[i] = &hashNode{x: i}
	}
	e, err := sim.NewEngine(graph.MustCycle(n), nodes)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestFingerprintHashMatchesStringEquality(t *testing.T) {
	// Walk two engines through the same schedule: equal strings must give
	// equal hashes at every configuration. Then diverge them: different
	// strings should give different hashes (guaranteed here, not just
	// overwhelmingly likely, or the collision machinery would trigger —
	// either way the tables stay exact, but a collision in an 8-node toy
	// walk would indicate a broken encoding).
	a, b := newHashEngine(t, 8), newHashEngine(t, 8)
	for step := 0; step < 20; step++ {
		subset := []int{step % 8, (step * 3) % 8}
		a.Step(subset)
		b.Step(subset)
		if a.Fingerprint() != b.Fingerprint() {
			t.Fatalf("step %d: identical schedules, different strings", step)
		}
		ah1, ah2 := a.FingerprintHash128()
		bh1, bh2 := b.FingerprintHash128()
		if ah1 != bh1 || ah2 != bh2 {
			t.Fatalf("step %d: equal strings, unequal hashes", step)
		}
	}
	seen := map[[2]uint64]string{}
	for step := 0; step < 50; step++ {
		a.Step([]int{step % 8})
		h1, h2 := a.FingerprintHash128()
		s := a.Fingerprint()
		if prev, ok := seen[[2]uint64{h1, h2}]; ok && prev != s {
			t.Fatalf("hash collision between distinct configurations:\n%s\n%s", prev, s)
		}
		seen[[2]uint64{h1, h2}] = s
	}
}

func TestFingerprintHashIgnoresActivationCounts(t *testing.T) {
	// Fingerprint excludes activation counts and time; the hash must too.
	a, b := newHashEngine(t, 4), newHashEngine(t, 4)
	a.Step([]int{}) // no-op step: advances time only
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("no-op step changed the string fingerprint")
	}
	if a.FingerprintHash() != b.FingerprintHash() {
		t.Fatal("no-op step changed the hash fingerprint")
	}
}

func TestFingerprintHashZeroAllocs(t *testing.T) {
	e := newHashEngine(t, 64)
	for i := 0; i < 8; i++ {
		e.Step([]int{i, i + 8, i + 16})
	}
	if n := testing.AllocsPerRun(200, func() { e.FingerprintHash128() }); n != 0 {
		t.Fatalf("FingerprintHash128 allocates %v/op with Hashable nodes, want 0", n)
	}
}

func TestStepZeroAllocsWarm(t *testing.T) {
	e := newHashEngine(t, 64)
	subset := []int{0, 17, 42}
	e.Step(subset) // warm the scratch buffers
	step := 0
	if n := testing.AllocsPerRun(200, func() {
		subset[0] = step % 64
		subset[1] = (step * 7) % 64
		subset[2] = (step * 13) % 64
		e.Step(subset)
		step++
	}); n != 0 {
		t.Fatalf("warm Step allocates %v/op, want 0", n)
	}
}

func TestFPHasherWriteMatchesHashByte(t *testing.T) {
	var a, b sim.FPHasher
	a.Reset()
	b.Reset()
	payload := []byte("asynchronous cycle")
	if _, err := a.Write(payload); err != nil {
		t.Fatal(err)
	}
	for _, c := range payload {
		b.HashByte(c)
	}
	a1, a2 := a.Sum128()
	b1, b2 := b.Sum128()
	if a1 != b1 || a2 != b2 {
		t.Fatal("Write and HashByte disagree")
	}
}

func TestFPHasherLanesIndependent(t *testing.T) {
	// "ab" vs "ba" collide on neither lane; a pure-FNV second lane would be
	// a bug magnet, so pin that the lanes actually differ in structure.
	var h sim.FPHasher
	h.Reset()
	h.HashByte('a')
	h.HashByte('b')
	ab1, ab2 := h.Sum128()
	h.Reset()
	h.HashByte('b')
	h.HashByte('a')
	ba1, ba2 := h.Sum128()
	if ab1 == ba1 {
		t.Fatal("lane A ignores byte order")
	}
	if ab2 == ba2 {
		t.Fatal("lane B ignores byte order")
	}
}
