// Package trace records executions of the simulation engine as sequences
// of per-round events, for debugging, for invariant checking over entire
// histories (e.g. E12), and for export as human-readable text or JSONL.
package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"asynccycle/internal/sim"
)

// Event is one process round.
type Event struct {
	// T is the time step.
	T int `json:"t"`
	// Node is the process that performed the round.
	Node int `json:"node"`
	// Wrote is the register value the process published, rendered with %v.
	Wrote string `json:"wrote"`
	// Returned reports whether the process terminated in this round.
	Returned bool `json:"returned,omitempty"`
	// Output is the color output if Returned. Presence in JSON is keyed on
	// Returned, not on the value (see MarshalJSON): color 0 is a legitimate
	// output and must not be dropped by omitempty.
	Output int `json:"output,omitempty"`
}

// MarshalJSON emits the output field exactly when the event is a return.
// With a plain omitempty tag a round returning color 0 serialized with no
// output field at all, making a "returned with color 0" event
// indistinguishable from a malformed one after a JSONL round trip.
func (ev Event) MarshalJSON() ([]byte, error) {
	// Shadow type drops the methods so json.Marshal doesn't recurse.
	type plain Event
	aux := struct {
		plain
		Output *int `json:"output,omitempty"`
	}{plain: plain(ev)}
	if ev.Returned {
		aux.Output = &ev.Output
	}
	return json.Marshal(aux)
}

// Recorder accumulates events via an engine hook. The zero value records
// everything; set Limit to bound memory on long executions (older events
// are dropped, keeping the most recent Limit).
type Recorder[V any] struct {
	// Limit bounds the number of retained events; 0 means unlimited.
	Limit  int
	events []Event
}

// Hook returns the engine hook that feeds this recorder.
func (r *Recorder[V]) Hook() sim.Hook[V] {
	return func(e *sim.Engine[V], t int, activated []int) {
		for _, i := range activated {
			ev := Event{
				T:     t,
				Node:  i,
				Wrote: fmt.Sprintf("%v", e.Register(i).Val),
			}
			if e.Done(i) {
				ev.Returned = true
				ev.Output = e.Output(i)
			}
			r.append(ev)
		}
	}
}

func (r *Recorder[V]) append(ev Event) {
	r.events = append(r.events, ev)
	if r.Limit > 0 && len(r.events) > r.Limit {
		// Drop the oldest surplus; amortize by copying at 2× overflow.
		if len(r.events) >= 2*r.Limit {
			keep := r.events[len(r.events)-r.Limit:]
			r.events = append(r.events[:0:0], keep...)
		}
	}
}

// Events returns the recorded events, oldest first (trimmed to Limit if
// set).
func (r *Recorder[V]) Events() []Event {
	if r.Limit > 0 && len(r.events) > r.Limit {
		return r.events[len(r.events)-r.Limit:]
	}
	return r.events
}

// Len returns the number of retained events.
func (r *Recorder[V]) Len() int { return len(r.Events()) }

// WriteText renders the trace one event per line.
func (r *Recorder[V]) WriteText(w io.Writer) error {
	for _, ev := range r.Events() {
		var err error
		if ev.Returned {
			_, err = fmt.Fprintf(w, "t=%-5d node=%-4d wrote=%s return(%d)\n", ev.T, ev.Node, ev.Wrote, ev.Output)
		} else {
			_, err = fmt.Fprintf(w, "t=%-5d node=%-4d wrote=%s\n", ev.T, ev.Node, ev.Wrote)
		}
		if err != nil {
			return fmt.Errorf("trace: write text: %w", err)
		}
	}
	return nil
}

// WriteJSONL renders the trace as one JSON object per line.
func (r *Recorder[V]) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ev := range r.Events() {
		if err := enc.Encode(ev); err != nil {
			return fmt.Errorf("trace: write jsonl: %w", err)
		}
	}
	return nil
}
