package trace_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"asynccycle/internal/core"
	"asynccycle/internal/graph"
	"asynccycle/internal/schedule"
	"asynccycle/internal/sim"
	"asynccycle/internal/trace"
)

func tracedRun(t *testing.T, limit int) *trace.Recorder[core.FiveVal] {
	t.Helper()
	g := graph.MustCycle(5)
	e, err := sim.NewEngine(g, core.NewFiveNodes([]int{1, 2, 3, 4, 5}))
	if err != nil {
		t.Fatal(err)
	}
	rec := &trace.Recorder[core.FiveVal]{Limit: limit}
	e.AddHook(rec.Hook())
	if _, err := e.Run(schedule.NewRoundRobin(1), 10_000); err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestRecorderCapturesEveryRound(t *testing.T) {
	g := graph.MustCycle(5)
	e, _ := sim.NewEngine(g, core.NewFiveNodes([]int{1, 2, 3, 4, 5}))
	rec := &trace.Recorder[core.FiveVal]{}
	e.AddHook(rec.Hook())
	res, err := e.Run(schedule.NewRoundRobin(1), 10_000)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, a := range res.Activations {
		total += a
	}
	if rec.Len() != total {
		t.Errorf("recorded %d events, want %d (one per activation)", rec.Len(), total)
	}
	// Returned events exactly match terminated processes.
	returns := 0
	for _, ev := range rec.Events() {
		if ev.Returned {
			returns++
		}
	}
	if returns != res.TerminatedCount() {
		t.Errorf("recorded %d returns, want %d", returns, res.TerminatedCount())
	}
}

func TestRecorderEventsOrdered(t *testing.T) {
	rec := tracedRun(t, 0)
	last := 0
	for _, ev := range rec.Events() {
		if ev.T < last {
			t.Fatalf("events out of order: %d after %d", ev.T, last)
		}
		last = ev.T
	}
}

func TestRecorderLimitTrims(t *testing.T) {
	full := tracedRun(t, 0)
	limited := tracedRun(t, 4)
	if limited.Len() != 4 {
		t.Fatalf("limited recorder kept %d events, want 4", limited.Len())
	}
	fullEvents := full.Events()
	tail := fullEvents[len(fullEvents)-4:]
	for i, ev := range limited.Events() {
		if ev != tail[i] {
			t.Fatalf("limited events do not match the tail: %+v vs %+v", ev, tail[i])
		}
	}
}

func TestWriteText(t *testing.T) {
	rec := tracedRun(t, 0)
	var buf bytes.Buffer
	if err := rec.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "node=0") {
		t.Error("text trace missing node 0")
	}
	if !strings.Contains(out, "return(") {
		t.Error("text trace missing returns")
	}
	if got := strings.Count(out, "\n"); got != rec.Len() {
		t.Errorf("text trace has %d lines, want %d", got, rec.Len())
	}
}

func TestWriteJSONL(t *testing.T) {
	rec := tracedRun(t, 0)
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != rec.Len() {
		t.Fatalf("jsonl has %d lines, want %d", len(lines), rec.Len())
	}
	var ev trace.Event
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("line 0 not valid JSON: %v", err)
	}
	if ev.T != 1 {
		t.Errorf("first event t = %d, want 1", ev.T)
	}
	if ev.Wrote == "" {
		t.Error("first event has empty register value")
	}
}

// TestJSONLRoundTripColorZero is the regression for the omitempty bug: a
// round that returns color 0 must serialize with an explicit output field
// and round-trip to the identical event. (Before the fix, omitempty on a
// plain int silently dropped the field for color 0, so a legitimate
// "returned with color 0" event decoded as an event with no output.)
func TestJSONLRoundTripColorZero(t *testing.T) {
	events := []trace.Event{
		{T: 1, Node: 2, Wrote: "w", Returned: true, Output: 0},
		{T: 2, Node: 3, Wrote: "v", Returned: true, Output: 4},
		{T: 3, Node: 0, Wrote: "u"},
	}
	for _, ev := range events {
		data, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		if ev.Returned && !strings.Contains(string(data), `"output":`) {
			t.Errorf("returned event lost its output field: %s", data)
		}
		if !ev.Returned && strings.Contains(string(data), `"output":`) {
			t.Errorf("non-returned event grew an output field: %s", data)
		}
		var back trace.Event
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if back != ev {
			t.Errorf("round trip changed the event: %+v -> %s -> %+v", ev, data, back)
		}
	}

	// End to end through the recorder: every returned event in the JSONL
	// stream must carry an output field, and decoding must reproduce the
	// recorded events exactly.
	rec := tracedRun(t, 0)
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	for i, line := range lines {
		var back trace.Event
		if err := json.Unmarshal([]byte(line), &back); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if back != rec.Events()[i] {
			t.Fatalf("line %d decoded to %+v, recorded %+v", i, back, rec.Events()[i])
		}
		if back.Returned != strings.Contains(line, `"output":`) {
			t.Errorf("line %d: output presence disagrees with returned flag: %s", i, line)
		}
	}
}

// failWriter fails after a byte budget to exercise error paths.
type failWriter struct{ budget int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.budget <= 0 {
		return 0, bytes.ErrTooLarge
	}
	w.budget -= len(p)
	return len(p), nil
}

func TestWriteErrorsPropagate(t *testing.T) {
	rec := tracedRun(t, 0)
	if err := rec.WriteText(&failWriter{budget: 10}); err == nil {
		t.Error("WriteText swallowed writer error")
	}
	if err := rec.WriteJSONL(&failWriter{budget: 10}); err == nil {
		t.Error("WriteJSONL swallowed writer error")
	}
}
