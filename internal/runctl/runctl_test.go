package runctl

import (
	"context"
	"testing"
	"time"
)

func TestNilCheckerNeverStops(t *testing.T) {
	var c *Checker
	for i := 0; i < 10*checkEvery; i++ {
		if reason, stop := c.Check(); stop || reason != StopNone {
			t.Fatalf("nil checker stopped: %q", reason)
		}
	}
	if NewChecker(nil, 0) != nil {
		t.Error("NewChecker(nil, 0) should be nil (zero-cost path)")
	}
}

func TestCheckerCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	c := NewChecker(ctx, 0)
	if reason, stop := c.CheckNow(); stop {
		t.Fatalf("stopped before cancel: %q", reason)
	}
	cancel()
	reason, stop := c.CheckNow()
	if !stop || reason != StopCancelled {
		t.Fatalf("CheckNow after cancel = (%q, %t), want (cancelled, true)", reason, stop)
	}
	// The amortized path must also trip within checkEvery calls.
	c2 := NewChecker(ctx, 0)
	tripped := false
	for i := 0; i < checkEvery+1; i++ {
		if _, stop := c2.Check(); stop {
			tripped = true
			break
		}
	}
	if !tripped {
		t.Error("amortized Check never observed the cancellation")
	}
}

func TestCheckerDeadline(t *testing.T) {
	c := NewChecker(nil, time.Nanosecond)
	time.Sleep(time.Millisecond)
	if reason, stop := c.CheckNow(); !stop || reason != StopTimeout {
		t.Fatalf("expired deadline = (%q, %t), want (timeout, true)", reason, stop)
	}
	far := NewChecker(nil, time.Hour)
	if _, stop := far.CheckNow(); stop {
		t.Error("distant deadline tripped immediately")
	}
}

func TestCheckerContextDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	if reason, stop := NewChecker(ctx, 0).CheckNow(); !stop || reason != StopTimeout {
		t.Fatalf("deadline-exceeded context = (%q, %t), want (timeout, true)", reason, stop)
	}
}

func TestReason(t *testing.T) {
	if r := Reason(nil); r != StopNone {
		t.Errorf("Reason(nil) = %q", r)
	}
	if r := Reason(context.Background()); r != StopNone {
		t.Errorf("Reason(live) = %q", r)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if r := Reason(ctx); r != StopCancelled {
		t.Errorf("Reason(cancelled) = %q", r)
	}
	dctx, dcancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer dcancel()
	time.Sleep(time.Millisecond)
	if r := Reason(dctx); r != StopTimeout {
		t.Errorf("Reason(deadline) = %q", r)
	}
}

func TestBudgetIsZeroAndMin(t *testing.T) {
	if !(Budget{}).IsZero() {
		t.Error("zero budget not IsZero")
	}
	if (Budget{MaxSteps: 1}).IsZero() {
		t.Error("non-zero budget reported IsZero")
	}
	cases := []struct{ opt, budget, want int }{
		{0, 0, 0}, {10, 0, 10}, {0, 5, 5}, {10, 5, 5}, {5, 10, 5},
	}
	for _, c := range cases {
		if got := Min(c.opt, c.budget); got != c.want {
			t.Errorf("Min(%d, %d) = %d, want %d", c.opt, c.budget, got, c.want)
		}
	}
}
