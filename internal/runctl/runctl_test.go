package runctl

import (
	"context"
	"testing"
	"time"
)

func TestNilCheckerNeverStops(t *testing.T) {
	var c *Checker
	for i := 0; i < 10*checkEvery; i++ {
		if reason, stop := c.Check(); stop || reason != StopNone {
			t.Fatalf("nil checker stopped: %q", reason)
		}
	}
	if NewChecker(nil, 0) != nil {
		t.Error("NewChecker(nil, 0) should be nil (zero-cost path)")
	}
}

func TestCheckerCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	c := NewChecker(ctx, 0)
	if reason, stop := c.CheckNow(); stop {
		t.Fatalf("stopped before cancel: %q", reason)
	}
	cancel()
	reason, stop := c.CheckNow()
	if !stop || reason != StopCancelled {
		t.Fatalf("CheckNow after cancel = (%q, %t), want (cancelled, true)", reason, stop)
	}
	// The amortized path must also trip within checkEvery calls.
	c2 := NewChecker(ctx, 0)
	tripped := false
	for i := 0; i < checkEvery+1; i++ {
		if _, stop := c2.Check(); stop {
			tripped = true
			break
		}
	}
	if !tripped {
		t.Error("amortized Check never observed the cancellation")
	}
}

func TestCheckerDeadline(t *testing.T) {
	c := NewChecker(nil, time.Nanosecond)
	time.Sleep(time.Millisecond)
	if reason, stop := c.CheckNow(); !stop || reason != StopTimeout {
		t.Fatalf("expired deadline = (%q, %t), want (timeout, true)", reason, stop)
	}
	far := NewChecker(nil, time.Hour)
	if _, stop := far.CheckNow(); stop {
		t.Error("distant deadline tripped immediately")
	}
}

func TestCheckerContextDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	if reason, stop := NewChecker(ctx, 0).CheckNow(); !stop || reason != StopTimeout {
		t.Fatalf("deadline-exceeded context = (%q, %t), want (timeout, true)", reason, stop)
	}
}

func TestReason(t *testing.T) {
	if r := Reason(nil); r != StopNone {
		t.Errorf("Reason(nil) = %q", r)
	}
	if r := Reason(context.Background()); r != StopNone {
		t.Errorf("Reason(live) = %q", r)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if r := Reason(ctx); r != StopCancelled {
		t.Errorf("Reason(cancelled) = %q", r)
	}
	dctx, dcancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer dcancel()
	time.Sleep(time.Millisecond)
	if r := Reason(dctx); r != StopTimeout {
		t.Errorf("Reason(deadline) = %q", r)
	}
}

// TestCheckerEarliestDeadlineWins pins the contract the serve layer's
// per-job budgets rely on: with both a context deadline and an explicit
// timeout set, the earlier of the two trips the checker — in either
// order.
func TestCheckerEarliestDeadlineWins(t *testing.T) {
	// Explicit timeout shorter than the context deadline: the checker must
	// trip at the explicit timeout, long before the context's deadline.
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	c := NewChecker(ctx, time.Nanosecond)
	time.Sleep(time.Millisecond)
	if reason, stop := c.CheckNow(); !stop || reason != StopTimeout {
		t.Fatalf("short explicit timeout under long ctx deadline = (%q, %t), want (timeout, true)", reason, stop)
	}

	// Context deadline shorter than the explicit timeout: the checker must
	// trip at the context's deadline even though the explicit budget still
	// has an hour to run.
	sctx, scancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer scancel()
	c2 := NewChecker(sctx, time.Hour)
	time.Sleep(time.Millisecond)
	if reason, stop := c2.CheckNow(); !stop || reason != StopTimeout {
		t.Fatalf("short ctx deadline under long explicit timeout = (%q, %t), want (timeout, true)", reason, stop)
	}

	// Sanity: two distant bounds trip neither way.
	lctx, lcancel := context.WithTimeout(context.Background(), time.Hour)
	defer lcancel()
	if _, stop := NewChecker(lctx, time.Hour).CheckNow(); stop {
		t.Error("two distant deadlines tripped immediately")
	}
}

func TestBudgetClamp(t *testing.T) {
	max := Budget{Timeout: time.Second, MaxStates: 100, MaxSteps: 0, MaxActivations: 50}
	cases := []struct {
		name string
		in   Budget
		want Budget
	}{
		{"zero takes ceiling", Budget{}, Budget{Timeout: time.Second, MaxStates: 100, MaxActivations: 50}},
		{"tighter survives", Budget{Timeout: time.Millisecond, MaxStates: 10, MaxSteps: 7, MaxActivations: 5},
			Budget{Timeout: time.Millisecond, MaxStates: 10, MaxSteps: 7, MaxActivations: 5}},
		{"looser clamped", Budget{Timeout: time.Hour, MaxStates: 1000, MaxSteps: 9, MaxActivations: 500},
			Budget{Timeout: time.Second, MaxStates: 100, MaxSteps: 9, MaxActivations: 50}},
	}
	for _, c := range cases {
		if got := c.in.Clamp(max); got != c.want {
			t.Errorf("%s: Clamp = %+v, want %+v", c.name, got, c.want)
		}
	}
	if got := (Budget{MaxSteps: 3}).Clamp(Budget{}); got != (Budget{MaxSteps: 3}) {
		t.Errorf("zero ceiling changed the budget: %+v", got)
	}
}

func TestBudgetWithContext(t *testing.T) {
	// No timeout: a cancellable child of the parent.
	ctx, cancel := Budget{}.WithContext(nil)
	if _, ok := ctx.Deadline(); ok {
		t.Error("zero-timeout budget produced a deadline")
	}
	cancel()
	if ctx.Err() == nil {
		t.Error("cancel did not cancel the derived context")
	}

	// Timeout: a deadline roughly Timeout from now.
	dctx, dcancel := Budget{Timeout: time.Hour}.WithContext(context.Background())
	defer dcancel()
	d, ok := dctx.Deadline()
	if !ok || time.Until(d) > time.Hour || time.Until(d) < 50*time.Minute {
		t.Errorf("deadline %v not ~1h out", d)
	}

	// Parent cancellation propagates regardless of the budget.
	parent, pcancel := context.WithCancel(context.Background())
	child, ccancel := Budget{Timeout: time.Hour}.WithContext(parent)
	defer ccancel()
	pcancel()
	select {
	case <-child.Done():
	case <-time.After(time.Second):
		t.Error("parent cancellation did not propagate")
	}
}

func TestBudgetIsZeroAndMin(t *testing.T) {
	if !(Budget{}).IsZero() {
		t.Error("zero budget not IsZero")
	}
	if (Budget{MaxSteps: 1}).IsZero() {
		t.Error("non-zero budget reported IsZero")
	}
	cases := []struct{ opt, budget, want int }{
		{0, 0, 0}, {10, 0, 10}, {0, 5, 5}, {10, 5, 5}, {5, 10, 5},
	}
	for _, c := range cases {
		if got := Min(c.opt, c.budget); got != c.want {
			t.Errorf("Min(%d, %d) = %d, want %d", c.opt, c.budget, got, c.want)
		}
	}
}
