// Package runctl is the run-control vocabulary shared by every execution
// layer of the repository: explicit budgets (wall-clock, states, steps,
// activations), the stop reasons a tripped budget reports, and a cheap
// amortized checker that polls a context and deadline without paying a
// time.Now per event.
//
// The contract every layer honors: a tripped budget or cancelled context
// never discards work. The layer stops claiming new work, assembles a
// partial result covering exactly the region it explored, and labels it
// with the StopReason — so callers can always tell a complete result from
// a truncated one, and truncation is never silent.
package runctl

import (
	"context"
	"errors"
	"time"
)

// Budget bounds a run along four independent axes. The zero value imposes
// no bounds. Each layer honors the axes that are meaningful for it (the
// model checker reads Timeout/MaxStates/MaxSteps, the simulation engine
// Timeout/MaxSteps/MaxActivations) and ignores the rest.
type Budget struct {
	// Timeout is the wall-clock budget; 0 means none.
	Timeout time.Duration
	// MaxStates bounds distinct configurations a model-checker run may
	// visit; 0 means the package default applies.
	MaxStates int
	// MaxSteps bounds time steps (schedule length for the checker, executed
	// steps for the engine); 0 means no explicit bound.
	MaxSteps int
	// MaxActivations bounds per-process rounds in an engine run; 0 means
	// none.
	MaxActivations int
}

// IsZero reports whether the budget imposes no bounds at all.
func (b Budget) IsZero() bool {
	return b.Timeout == 0 && b.MaxStates == 0 && b.MaxSteps == 0 && b.MaxActivations == 0
}

// Clamp folds a ceiling into the budget: each axis becomes the smaller
// positive of the two, and axes the budget leaves unbounded (zero) take
// the ceiling's bound outright. A multi-tenant caller uses it to make
// budgets mandatory — whatever a request asks for, the pool's per-job
// ceiling applies on every axis the ceiling bounds.
func (b Budget) Clamp(max Budget) Budget {
	b.Timeout = minDuration(b.Timeout, max.Timeout)
	b.MaxStates = Min(b.MaxStates, max.MaxStates)
	b.MaxSteps = Min(b.MaxSteps, max.MaxSteps)
	b.MaxActivations = Min(b.MaxActivations, max.MaxActivations)
	return b
}

// minDuration combines an explicit duration with a ceiling the way Min
// combines counts: the smaller positive one wins, zero means unbounded.
func minDuration(opt, max time.Duration) time.Duration {
	if max <= 0 {
		return opt
	}
	if opt <= 0 || max < opt {
		return max
	}
	return opt
}

// WithContext derives a context carrying the budget's wall-clock axis: a
// child of parent whose deadline is Timeout from now (or parent's own
// deadline, whichever is earlier). With no Timeout it returns a plain
// cancellable child, so the caller always has a cancel handle — the drain
// path of a long-running service cancels every job through it. parent may
// be nil (context.Background()).
func (b Budget) WithContext(parent context.Context) (context.Context, context.CancelFunc) {
	if parent == nil {
		parent = context.Background()
	}
	if b.Timeout > 0 {
		return context.WithTimeout(parent, b.Timeout)
	}
	return context.WithCancel(parent)
}

// StopReason labels why a run ended before completing. The empty string
// means the run ran to completion.
type StopReason string

// The stop reasons reported across the execution stack.
const (
	StopNone        StopReason = ""
	StopCancelled   StopReason = "cancelled"       // context cancelled
	StopTimeout     StopReason = "timeout"         // wall-clock budget or context deadline
	StopMaxStates   StopReason = "max-states"      // state budget exhausted
	StopMaxSteps    StopReason = "max-steps"       // step budget exhausted
	StopMaxDepth    StopReason = "max-depth"       // schedule-length bound reached
	StopActivations StopReason = "max-activations" // per-process round budget exhausted
	StopIO          StopReason = "io-error"        // out-of-core storage failed (spilled visited set)
)

// ErrBudget is the sentinel wrapped by errors a tripped budget produces at
// API boundaries that must keep returning (Result, error) pairs. The
// partial result accompanying it is valid for the explored region.
var ErrBudget = errors.New("run stopped by budget")

// checkEvery is how many Check calls are absorbed between actual
// context/clock polls. Budget trips are therefore detected within this
// many events — prompt enough for any interactive use, cheap enough that
// the un-budgeted hot paths stay unaffected.
const checkEvery = 256

// Checker amortizes context and deadline polling. The zero-cost case — no
// context, no timeout — is a nil *Checker, whose Check always reports
// "keep going".
type Checker struct {
	ctx      context.Context
	deadline time.Time
	count    int
}

// NewChecker builds a Checker for the given context (nil means none) and
// wall-clock budget (0 means none). It returns nil when there is nothing
// to watch, so un-budgeted runs skip polling entirely.
//
// A context deadline is extracted and polled directly against the clock
// rather than waiting for ctx.Done: on GOMAXPROCS=1 the context's timer
// goroutine cannot fire while a CPU-bound exploration holds the only P
// (sysmon preempts it only after ~10ms), so Done-based detection would lag
// far behind the deadline.
func NewChecker(ctx context.Context, timeout time.Duration) *Checker {
	if ctx == nil && timeout <= 0 {
		return nil
	}
	c := &Checker{ctx: ctx}
	if timeout > 0 {
		c.deadline = time.Now().Add(timeout)
	}
	if ctx != nil {
		if d, ok := ctx.Deadline(); ok && (c.deadline.IsZero() || d.Before(c.deadline)) {
			c.deadline = d
		}
	}
	return c
}

// Check reports whether the run must stop, polling the context and clock
// only every few hundred calls. Safe on a nil receiver.
func (c *Checker) Check() (StopReason, bool) {
	if c == nil {
		return StopNone, false
	}
	c.count++
	if c.count%checkEvery != 0 {
		return StopNone, false
	}
	return c.CheckNow()
}

// CheckNow polls the context and clock immediately. Safe on a nil
// receiver.
func (c *Checker) CheckNow() (StopReason, bool) {
	if c == nil {
		return StopNone, false
	}
	if c.ctx != nil {
		if err := c.ctx.Err(); err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				return StopTimeout, true
			}
			return StopCancelled, true
		}
	}
	if !c.deadline.IsZero() && !time.Now().Before(c.deadline) {
		return StopTimeout, true
	}
	return StopNone, false
}

// Reason maps a cancelled context's error to the matching StopReason
// (StopNone for a live or nil context).
func Reason(ctx context.Context) StopReason {
	if ctx == nil || ctx.Err() == nil {
		return StopNone
	}
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return StopTimeout
	}
	return StopCancelled
}

// Min combines an explicit option bound with a budget bound: the smaller
// positive one wins; 0 on both sides means unbounded (0).
func Min(opt, budget int) int {
	if budget <= 0 {
		return opt
	}
	if opt <= 0 || budget < opt {
		return budget
	}
	return opt
}
