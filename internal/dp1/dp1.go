// Package dp1 implements an asynchronous (Δ+1)-coloring protocol for
// arbitrary Δ-bounded graphs in the crash-prone state model, following the
// AG-coloring + color-reduction pipeline of the general-graph follow-up
// (Balliu, Lambein-Monette, Olivetti, Rabie, arXiv:2408.10971) to the
// source paper's Appendix A.
//
// The protocol is a single two-stage state machine per process:
//
//   - Stage A (AG stage): the Algorithm 1/4 pair machine runs verbatim —
//     a ← mex{a_u : X_u > X_p}, b ← mex{b_u : X_u < X_p} — but instead of
//     returning when the pair (a, b) differs from every visible neighbor
//     pair, the process *locks*: the pair freezes in its register forever,
//     and the process enters stage B carrying an initial claim that dodges
//     every visible locked claim. The locked pairs form the O(Δ²) interim
//     coloring: two adjacent locked processes always hold distinct pairs,
//     because the later locker observed the earlier locker's frozen pair
//     (and two same-step lockers observed each other's — publishes precede
//     every observe in both activation modes).
//
//   - Stage B (reduction stage): the process iterates on a claim c. Each
//     round it collects the claims of its visible locked neighbors; if c
//     avoids all of them it returns c, otherwise c ← mex(claims). At most
//     Δ neighbors contribute claims, so mex never exceeds Δ and the output
//     palette is {0..Δ} — exactly Δ+1 colors.
//
// Safety is unconditional on every topology and in both activation modes:
// a returning process froze its register at (locked, c) when it published
// at the start of its returning round, so any neighbor returning later
// sees the claim c among its visible locked claims and cannot return it,
// and two adjacent same-step returns would each have seen the other's
// published claim. A process whose neighbors have all crashed or returned
// faces frozen claims only and returns within two activations (mex escapes
// any fixed claim set). Against live adversarial schedules, however,
// symmetric claim oscillations can recur forever — (Δ+1)-coloring K_n is
// perfect renaming, which has no wait-free comparison-based solution — so
// the protocol carries no wait-freedom bound and liveness oracles must
// stay disabled for it.
package dp1

import "asynccycle/internal/sim"

// mex returns the minimum excluded natural: min(ℕ ∖ used). Claim and pair
// conflict sets never exceed the degree, so the quadratic scan stays cheap
// and allocation-free.
func mex(used []int) int {
	for v := 0; ; v++ {
		found := false
		for _, u := range used {
			if u == v {
				found = true
				break
			}
		}
		if !found {
			return v
		}
	}
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// Val is the register content: the static identifier, the stage flag, the
// interim color pair (frozen once Locked), and the stage-B claim.
type Val struct {
	X      int
	Locked bool
	A, B   int
	C      int
}

// HashFingerprint implements sim.Hashable.
func (v *Val) HashFingerprint(h *sim.FPHasher) {
	h.HashInt(v.X)
	h.HashBool(v.Locked)
	h.HashInt(v.A)
	h.HashInt(v.B)
	h.HashInt(v.C)
}

// Node is the dp1 state machine; see the package comment for the protocol.
type Node struct {
	x      int
	locked bool
	a, b   int
	c      int
}

// New returns a dp1 process with the given identifier. Identifiers must be
// non-negative and distinct across every edge; globally unique
// identifiers satisfy this a fortiori.
func New(id int) *Node { return &Node{x: id} }

// X returns the (immutable) identifier.
func (p *Node) X() int { return p.x }

// Locked reports whether the process has frozen its interim pair and
// entered the reduction stage.
func (p *Node) Locked() bool { return p.locked }

// Interim returns the current interim color pair (final once Locked).
func (p *Node) Interim() (a, b int) { return p.a, p.b }

// Claim returns the current stage-B claim.
func (p *Node) Claim() int { return p.c }

// Publish implements sim.Node.
func (p *Node) Publish() Val {
	return Val{X: p.x, Locked: p.locked, A: p.a, B: p.b, C: p.c}
}

// Observe implements sim.Node.
func (p *Node) Observe(view []sim.Cell[Val]) sim.Decision {
	if !p.locked {
		// Stage A: the pair machine, with lock-in-place of Algorithm 1's
		// return. The conflict check ranges over every present neighbor —
		// locked neighbors' pairs are frozen and still must be avoided.
		conflict := false
		for _, cell := range view {
			if cell.Present && cell.Val.A == p.a && cell.Val.B == p.b {
				conflict = true
				break
			}
		}
		if conflict {
			var aBuf, bBuf [8]int
			aUsed, bUsed := aBuf[:0], bBuf[:0]
			for _, cell := range view {
				if !cell.Present {
					continue
				}
				switch {
				case cell.Val.X > p.x:
					aUsed = append(aUsed, cell.Val.A)
				case cell.Val.X < p.x:
					bUsed = append(bUsed, cell.Val.B)
				}
			}
			p.a = mex(aUsed)
			p.b = mex(bUsed)
			return sim.Decision{}
		}
		p.locked = true
		p.c = mex(p.lockedClaims(view))
		return sim.Decision{}
	}
	// Stage B: return the claim if no visible locked neighbor holds it,
	// otherwise move to the mex of the visible claims. mex always escapes
	// a frozen (crashed or returned) claim set, and never exceeds Δ.
	claims := p.lockedClaims(view)
	if !contains(claims, p.c) {
		return sim.Decision{Return: true, Output: p.c}
	}
	p.c = mex(claims)
	return sim.Decision{}
}

// lockedClaims collects the claims of the present locked neighbors; at
// most deg(p) values.
func (p *Node) lockedClaims(view []sim.Cell[Val]) []int {
	claims := make([]int, 0, 8)
	for _, cell := range view {
		if cell.Present && cell.Val.Locked {
			claims = append(claims, cell.Val.C)
		}
	}
	return claims
}

// Clone implements sim.Node.
func (p *Node) Clone() sim.Node[Val] {
	cp := *p
	return &cp
}

// HashFingerprint implements sim.Hashable.
func (p *Node) HashFingerprint(h *sim.FPHasher) {
	h.HashInt(p.x)
	h.HashBool(p.locked)
	h.HashInt(p.a)
	h.HashInt(p.b)
	h.HashInt(p.c)
}

var _ sim.Node[Val] = (*Node)(nil)

// NewNodes builds one dp1 process per identifier, as engine-ready nodes.
func NewNodes(xs []int) []sim.Node[Val] {
	nodes := make([]sim.Node[Val], len(xs))
	for i, x := range xs {
		nodes[i] = New(x)
	}
	return nodes
}
