package dp1_test

// The dp1 tests exercise the protocol through the registry surface —
// protocol.Lookup + protocol.WithTopology — exactly as the CLIs do, so a
// registration or retargeting regression fails here, not just in a smoke
// job.

import (
	"testing"

	"asynccycle/internal/dp1"
	"asynccycle/internal/graph"
	"asynccycle/internal/ids"
	"asynccycle/internal/model"
	"asynccycle/internal/protocol"
	"asynccycle/internal/schedule"
	"asynccycle/internal/sim"
)

func lookup(t *testing.T, spec string) *protocol.Descriptor {
	t.Helper()
	d, err := protocol.Lookup("dp1")
	if err != nil {
		t.Fatal(err)
	}
	dd, err := protocol.WithTopology(d, spec)
	if err != nil {
		t.Fatal(err)
	}
	return dd
}

// TestCertifiedSmallN is the (Δ+1)-certification the descriptor's
// Expectation claims: exhaustive exploration over every schedule (and
// every crash pattern the checker models) finds zero validity violations —
// proper coloring with palette {0..Δ} at every reachable configuration —
// on the cycle, the complete graph, and the path, in both activation
// modes. The livelock verdicts are pinned too: dp1 terminates under every
// interleaved schedule at these sizes, while simultaneous lockstep admits
// the F1-style symmetric claim oscillation (perfect-renaming
// impossibility), which is exactly what the Expectation text records.
func TestCertifiedSmallN(t *testing.T) {
	cases := []struct {
		spec      string
		n         int
		mode      sim.Mode
		wantCycle bool
	}{
		{"", 4, sim.ModeInterleaved, false},
		{"", 4, sim.ModeSimultaneous, true},
		{"complete", 3, sim.ModeInterleaved, false},
		{"complete", 3, sim.ModeSimultaneous, true},
		{"complete", 4, sim.ModeInterleaved, false},
		{"path", 5, sim.ModeInterleaved, false},
	}
	for _, tc := range cases {
		d := lookup(t, tc.spec)
		xs := ids.MustGenerate(ids.Increasing, tc.n, 0)
		// The simultaneous-mode livelock paths run past the model package's
		// 256-step default horizon (deepest acyclic path is 258 on C4);
		// depth 512 makes every cell exhaustive.
		rep, err := d.Check(xs, tc.mode, model.Options{MaxDepth: 512})
		if err != nil {
			t.Fatalf("%q n=%d %v: %v", tc.spec, tc.n, tc.mode, err)
		}
		if rep.Truncated {
			t.Errorf("%q n=%d %v: truncated — not an exhaustive certificate", tc.spec, tc.n, tc.mode)
		}
		if len(rep.Violations) > 0 {
			t.Errorf("%q n=%d %v: %d violations, first: %s", tc.spec, tc.n, tc.mode, len(rep.Violations), rep.Violations[0])
		}
		if rep.CycleFound != tc.wantCycle {
			t.Errorf("%q n=%d %v: CycleFound=%v, want %v", tc.spec, tc.n, tc.mode, rep.CycleFound, tc.wantCycle)
		}
	}
}

// TestTorusBounded runs the checker on the 3×3 torus (Δ = 4, n = 9). The
// full state space is out of unit-test reach, so the sweep is
// state-budgeted and the certificate is PARTIAL — like E19's
// decoupled-three cell — but every explored configuration must satisfy
// the (Δ+1) validity invariant.
func TestTorusBounded(t *testing.T) {
	d := lookup(t, "torus")
	if d.FixN == nil || d.FixN(9) != 9 {
		t.Fatal("torus retarget lost FixN")
	}
	xs := ids.MustGenerate(ids.Increasing, 9, 0)
	rep, err := d.Check(xs, sim.ModeInterleaved, model.Options{MaxStates: 150_000})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Truncated {
		t.Log("torus 3×3 explored exhaustively — consider dropping the budget")
	}
	if len(rep.Violations) > 0 {
		t.Fatalf("torus 3×3: %d violations, first: %s", len(rep.Violations), rep.Violations[0])
	}
}

// TestRunOnDeclaredTopologies runs one deterministic interleaved execution
// per declared family and checks the verdicts the colorcycle CLI would
// print, crash plan included.
func TestRunOnDeclaredTopologies(t *testing.T) {
	for _, spec := range []string{"", "path", "complete", "torus", "random:4:1", "random:3:7+shuffled:2"} {
		d := lookup(t, spec)
		n := 12
		if d.FixN != nil {
			n = d.FixN(n)
		}
		xs := ids.MustGenerate(ids.Random, n, 42)
		if err := d.ValidateIDs(xs); err != nil {
			t.Fatalf("%q: %v", spec, err)
		}
		g, err := d.Topology(n)
		if err != nil {
			t.Fatal(err)
		}
		res, _, err := d.Run(xs, protocol.RunOptions{
			Scheduler: schedule.NewRandomSubset(0.4, 7),
			Crashes:   map[int]int{1: 2},
			MaxSteps:  20000,
		})
		if err != nil {
			t.Fatalf("%q: %v", spec, err)
		}
		for _, c := range d.Checks(g) {
			if err := c.Check(res); err != nil {
				t.Errorf("%q: %s: %v", spec, c.Name, err)
			}
		}
	}
}

// TestSoloProgress pins the frozen-register escape: a process whose
// neighbors have all crashed returns within a handful of its own
// activations, because mex always escapes a fixed claim set.
func TestSoloProgress(t *testing.T) {
	g, err := graph.Complete(4)
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.NewEngine(g, dp1.NewNodes([]int{10, 20, 30, 40}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 4; i++ {
		e.CrashAfter(i, 2) // two rounds each, then silence
	}
	res, err := e.Run(schedule.Synchronous{}, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done[0] {
		t.Fatal("survivor did not terminate against crashed neighbors")
	}
}

// TestNeighborsNotMutatedByEngine is the Graph.Neighbors aliasing
// regression (same class as the PR 3 Replay.Next bug): Neighbors returns
// the internal adjacency slice, so any engine-side mutation of a view
// would silently corrupt the topology for every later reader. A full run
// must leave the adjacency byte-identical.
func TestNeighborsNotMutatedByEngine(t *testing.T) {
	g, err := graph.RandomBoundedDegree(10, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	before := make([][]int, g.N())
	for u := 0; u < g.N(); u++ {
		before[u] = append([]int(nil), g.Neighbors(u)...)
	}
	e, err := sim.NewEngine(g, dp1.NewNodes(ids.MustGenerate(ids.Random, g.N(), 5)))
	if err != nil {
		t.Fatal(err)
	}
	e.CrashAfter(3, 1)
	if _, err := e.Run(schedule.NewRandomSubset(0.5, 9), 20000); err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u++ {
		got := g.Neighbors(u)
		if len(got) != len(before[u]) {
			t.Fatalf("node %d adjacency length changed: %v -> %v", u, before[u], got)
		}
		for i := range got {
			if got[i] != before[u][i] {
				t.Fatalf("node %d adjacency mutated: %v -> %v", u, before[u], got)
			}
		}
	}
}

// TestInterimPairsProper pins the AG-stage claim: once locked, the frozen
// interim pairs properly color the locked subgraph with a+b ≤ Δ — the
// O(Δ²) interim coloring the reduction stage starts from.
func TestInterimPairsProper(t *testing.T) {
	g, err := graph.RandomBoundedDegree(16, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	nodes := dp1.NewNodes(ids.MustGenerate(ids.Random, g.N(), 13))
	e, err := sim.NewEngine(g, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(schedule.NewRoundRobin(3), 20000); err != nil {
		t.Fatal(err)
	}
	maxDeg := g.MaxDegree()
	for _, edge := range g.Edges() {
		u := nodes[edge[0]].(*dp1.Node)
		v := nodes[edge[1]].(*dp1.Node)
		if !u.Locked() || !v.Locked() {
			t.Fatalf("edge %v: node not locked after full run", edge)
		}
		ua, ub := u.Interim()
		va, vb := v.Interim()
		if ua == va && ub == vb {
			t.Errorf("edge %v: equal interim pairs (%d,%d)", edge, ua, ub)
		}
		if ua+ub > maxDeg || va+vb > maxDeg {
			t.Errorf("edge %v: interim pair outside a+b ≤ Δ=%d", edge, maxDeg)
		}
	}
}
