package conc_test

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"asynccycle/internal/check"
	"asynccycle/internal/conc"
	"asynccycle/internal/core"
	"asynccycle/internal/graph"
	"asynccycle/internal/ids"
	"asynccycle/internal/metrics"
	"asynccycle/internal/sim"
)

func TestRunValidatesNodeCount(t *testing.T) {
	g := graph.MustCycle(3)
	if _, err := conc.Run(g, core.NewFiveNodes([]int{1, 2}), conc.Options{}); err == nil {
		t.Fatal("accepted wrong node count")
	}
}

func TestConcurrentFiveColorsProperly(t *testing.T) {
	for _, n := range []int{3, 10, 100} {
		g := graph.MustCycle(n)
		xs := ids.MustGenerate(ids.Random, n, int64(n))
		res, err := conc.Run(g, core.NewFiveNodes(xs), conc.Options{Yield: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := check.AllTerminated(res); err != nil {
			t.Error(err)
		}
		if err := check.ProperColoring(g, res); err != nil {
			t.Error(err)
		}
		if err := check.PaletteRange(res, 5); err != nil {
			t.Error(err)
		}
	}
}

func TestConcurrentFastColorsProperly(t *testing.T) {
	n := 200
	g := graph.MustCycle(n)
	xs := ids.MustGenerate(ids.Increasing, n, 0)
	res, err := conc.Run(g, core.NewFastNodes(xs), conc.Options{Yield: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := check.AllTerminated(res); err != nil {
		t.Error(err)
	}
	if err := check.ProperColoring(g, res); err != nil {
		t.Error(err)
	}
	if err := check.PaletteRange(res, 5); err != nil {
		t.Error(err)
	}
}

func TestConcurrentPairOnGeneralGraph(t *testing.T) {
	g, err := graph.RandomBoundedDegree(60, 5, 11)
	if err != nil {
		t.Fatal(err)
	}
	xs := ids.MustGenerate(ids.Random, 60, 5)
	res, err := conc.Run(g, core.NewPairNodes(xs), conc.Options{Yield: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := check.ProperColoring(g, res); err != nil {
		t.Error(err)
	}
	if err := check.PairPalette(res, g.MaxDegree()); err != nil {
		t.Error(err)
	}
}

func TestConcurrentCrashes(t *testing.T) {
	n := 60
	g := graph.MustCycle(n)
	xs := ids.MustGenerate(ids.Random, n, 3)
	crashes := map[int]int{}
	for i := 0; i < n; i += 2 {
		crashes[i] = i % 4 // 0 = never wakes
	}
	res, err := conc.Run(g, core.NewFiveNodes(xs), conc.Options{CrashAfter: crashes, Yield: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := check.SurvivorsTerminated(res); err != nil {
		t.Error(err)
	}
	if err := check.ProperColoring(g, res); err != nil {
		t.Error(err)
	}
	for i, k := range crashes {
		if k == 0 {
			if !res.Crashed[i] {
				t.Errorf("node %d should have crashed at birth", i)
			}
			if res.Done[i] {
				t.Errorf("node %d crashed at birth but terminated", i)
			}
		}
	}
}

func TestConcurrentJitter(t *testing.T) {
	n := 20
	g := graph.MustCycle(n)
	xs := ids.MustGenerate(ids.Zigzag, n, 0)
	res, err := conc.Run(g, core.NewFastNodes(xs), conc.Options{
		Jitter: 200 * time.Microsecond,
		Seed:   42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := check.AllTerminated(res); err != nil {
		t.Error(err)
	}
	if err := check.ProperColoring(g, res); err != nil {
		t.Error(err)
	}
}

// spinner is a node that never terminates, to exercise the round limit.
type spinner struct{ n int }

func (s *spinner) Publish() int { return s.n }

func (s *spinner) Observe([]sim.Cell[int]) sim.Decision {
	s.n++
	return sim.Decision{}
}

func (s *spinner) Clone() sim.Node[int] {
	cp := *s
	return &cp
}

func TestConcurrentRoundLimit(t *testing.T) {
	g := graph.MustCycle(3)
	nodes := []sim.Node[int]{&spinner{}, &spinner{}, &spinner{}}
	_, err := conc.Run(g, nodes, conc.Options{MaxRounds: 50})
	if !errors.Is(err, conc.ErrRoundLimit) {
		t.Fatalf("err = %v, want ErrRoundLimit", err)
	}
}

func TestConcurrentParallelRuns(t *testing.T) {
	// Multiple concurrent Run invocations must not interfere.
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for k := 0; k < 4; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			n := 30 + k
			g := graph.MustCycle(n)
			xs := ids.MustGenerate(ids.Random, n, int64(k))
			res, err := conc.Run(g, core.NewFiveNodes(xs), conc.Options{Yield: true})
			if err == nil {
				err = check.ProperColoring(g, res)
			}
			errs[k] = err
		}(k)
	}
	wg.Wait()
	for k, err := range errs {
		if err != nil {
			t.Errorf("run %d: %v", k, err)
		}
	}
}

func TestConcurrentSingleProcessor(t *testing.T) {
	// Liveness must not depend on parallelism: with GOMAXPROCS(1) and no
	// explicit yielding, Go's preemption still drives all goroutines.
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)

	n := 40
	g := graph.MustCycle(n)
	xs := ids.MustGenerate(ids.Random, n, 6)
	res, err := conc.Run(g, core.NewFiveNodes(xs), conc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := check.AllTerminated(res); err != nil {
		t.Error(err)
	}
	if err := check.ProperColoring(g, res); err != nil {
		t.Error(err)
	}
}

func TestConcurrentOnCompleteGraph(t *testing.T) {
	// The ordered-locking snapshot must also work when the neighborhood is
	// the whole graph (global serialization).
	g, err := graph.Complete(6)
	if err != nil {
		t.Fatal(err)
	}
	xs := ids.MustGenerate(ids.Random, 6, 1)
	res, err := conc.Run(g, core.NewPairNodes(xs), conc.Options{Yield: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := check.ProperColoring(g, res); err != nil {
		t.Error(err)
	}
}

func TestRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := graph.MustCycle(3)
	nodes := []sim.Node[int]{&spinner{}, &spinner{}, &spinner{}}
	res, err := conc.Run(g, nodes, conc.Options{Context: ctx})
	if !errors.Is(err, conc.ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	for i := range res.Done {
		if res.Done[i] || res.Crashed[i] {
			t.Fatalf("cancelled node %d marked done=%v crashed=%v", i, res.Done[i], res.Crashed[i])
		}
	}
}

func TestRunContextCompletes(t *testing.T) {
	g := graph.MustCycle(3)
	m := metrics.NewRun()
	xs := ids.MustGenerate(ids.Increasing, 3, 0)
	res, err := conc.Run(g, core.NewFiveNodes(xs), conc.Options{Context: context.Background(), Metrics: m, Yield: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.TerminatedCount() != 3 {
		t.Fatalf("terminated = %d, want 3", res.TerminatedCount())
	}
	total := 0
	for _, a := range res.Activations {
		total += a
	}
	if got := m.Snapshot().Activations; got != int64(total) {
		t.Fatalf("metrics activations = %d, result says %d", got, total)
	}
}
