package conc

import (
	"math/rand"
	"testing"
)

// TestJitterSeedDistinctPairs is the regression test for the correlated
// jitter-stream bug: the old derivation opt.Seed + i*0x9E3779B9 made
// (seed, node+1) and (seed+0x9E3779B9, node) the SAME stream, so runs at
// adjacent seeds explored near-identical interleavings. Every distinct
// (Seed, node) pair must now yield a distinct stream seed.
func TestJitterSeedDistinctPairs(t *testing.T) {
	const stride = 0x9E3779B9
	seen := make(map[int64][2]int64)
	for _, seed := range []int64{-stride, -1, 0, 1, 2, stride, 2 * stride, 1 << 40} {
		for i := 0; i < 64; i++ {
			s := jitterSeed(seed, i)
			key := [2]int64{seed, int64(i)}
			if prev, dup := seen[s]; dup {
				t.Fatalf("jitterSeed collision: (%d,%d) and (%d,%d) both map to %d",
					prev[0], prev[1], seed, i, s)
			}
			seen[s] = key
		}
	}
}

// TestJitterSeedDecorrelatedStreams checks the exact failure mode of the
// additive scheme: the first jitter draws of (seed, i+1) must not replicate
// those of (seed+0x9E3779B9, i).
func TestJitterSeedDecorrelatedStreams(t *testing.T) {
	const stride = 0x9E3779B9
	for i := 0; i < 8; i++ {
		a := rand.New(rand.NewSource(jitterSeed(7, i+1)))
		b := rand.New(rand.NewSource(jitterSeed(7+stride, i)))
		same := true
		for k := 0; k < 16; k++ {
			if a.Int63() != b.Int63() {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("streams for (7,%d) and (7+stride,%d) are identical", i+1, i)
		}
	}
}

// TestJitterSeedDeterministic pins reproducibility: the same (Seed, node)
// pair must always derive the same stream seed.
func TestJitterSeedDeterministic(t *testing.T) {
	for i := 0; i < 16; i++ {
		if jitterSeed(42, i) != jitterSeed(42, i) {
			t.Fatalf("jitterSeed(42, %d) not deterministic", i)
		}
	}
}
