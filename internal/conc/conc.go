// Package conc executes the model with real concurrency: one goroutine per
// process, single-writer/multi-reader registers, and genuine asynchrony
// supplied by the Go scheduler (plus optional injected jitter).
//
// The paper's round is an atomic local immediate snapshot: write the own
// register and read the neighbors' registers as one indivisible operation.
// The runtime realizes this by locking the closed neighborhood's register
// mutexes in increasing index order (deadlock-free by the standard ordered
// acquisition argument) for the write+read; the private state update
// happens outside the critical section, since only the owner goroutine
// touches a node's state. Every execution of this runtime is therefore a
// linearizable sequence of model rounds, i.e. corresponds to a schedule of
// the discrete-time engine with singleton activation sets.
//
// Crashes are injected by stopping a node's goroutine after a fixed number
// of rounds; its register keeps the last written value, as in the model.
package conc

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"asynccycle/internal/graph"
	"asynccycle/internal/metrics"
	"asynccycle/internal/rnd"
	"asynccycle/internal/sim"
)

// Options configure a concurrent run.
type Options struct {
	// CrashAfter maps a node index to the number of rounds after which its
	// goroutine stops (0 = never wakes). Absent nodes never crash.
	CrashAfter map[int]int
	// MaxRounds is a per-node liveness cap: a node exceeding it aborts the
	// run with ErrRoundLimit. 0 means DefaultMaxRounds.
	MaxRounds int
	// Jitter, when positive, makes each node sleep a uniform random
	// duration in [0, Jitter) between rounds, widening the space of
	// interleavings beyond what the Go scheduler produces naturally.
	Jitter time.Duration
	// Seed seeds the per-node jitter sources.
	Seed int64
	// Yield, when true, calls runtime.Gosched between rounds (cheap
	// interleaving pressure without timers).
	Yield bool
	// Context, when non-nil, cancels the run: every node goroutine checks
	// it between rounds and stops claiming further rounds once it is done.
	// Run then returns the partial Result assembled so far together with an
	// error wrapping ErrCancelled. Nodes interrupted this way are neither
	// done nor crashed in the Result.
	Context context.Context
	// Metrics, when non-nil, receives live Activations counts (one per
	// completed node round).
	Metrics *metrics.Run
}

// DefaultMaxRounds is the per-node round cap used when Options.MaxRounds
// is zero. The paper's algorithms finish in O(n) rounds, so this only
// trips on liveness bugs.
const DefaultMaxRounds = 1 << 20

// ErrRoundLimit is returned when some node exceeded the round cap without
// terminating — a liveness failure, since all the paper's algorithms are
// wait-free.
var ErrRoundLimit = errors.New("conc: node exceeded round limit")

// ErrCancelled is returned (wrapped) when Options.Context stopped the run
// before every node settled. The accompanying Result is the partial
// progress at cancellation time.
var ErrCancelled = errors.New("conc: run cancelled")

// jitterSeed derives the seed of node i's jitter stream from the run seed
// through a full avalanche mix (rnd.Derive). The previous additive scheme,
// opt.Seed + i*0x9E3779B9, made the streams of adjacent seeds shifted
// copies of each other — (seed, node+1) and (seed+0x9E3779B9, node) were
// literally the same stream — collapsing the interleaving diversity that
// distinct seeds are supposed to buy.
func jitterSeed(seed int64, i int) int64 { return rnd.Derive(seed, i) }

// Run executes nodes[i] at vertex i of g until every non-crashed node has
// terminated. It is safe to call concurrently with other Runs but the
// provided nodes must not be shared.
func Run[V any](g graph.Graph, nodes []sim.Node[V], opt Options) (sim.Result, error) {
	n := g.N()
	if len(nodes) != n {
		return sim.Result{}, fmt.Errorf("conc: %d nodes for graph %s with %d vertices", len(nodes), g.Name(), n)
	}
	maxRounds := opt.MaxRounds
	if maxRounds <= 0 {
		maxRounds = DefaultMaxRounds
	}

	type register struct {
		mu   sync.Mutex
		cell sim.Cell[V]
	}
	regs := make([]register, n)

	// lockOrder[i] is the closed neighborhood of i in increasing index
	// order; acquiring in this order across all nodes precludes deadlock.
	lockOrder := make([][]int, n)
	for i := 0; i < n; i++ {
		nbh := append([]int{i}, g.Neighbors(i)...)
		sort.Ints(nbh)
		lockOrder[i] = nbh
	}

	outputs := make([]int, n)
	done := make([]bool, n)
	crashed := make([]bool, n)
	acts := make([]int, n)
	overLimit := make([]bool, n)
	interrupted := make([]bool, n)
	for i := range outputs {
		outputs[i] = -1
	}
	var cancelled <-chan struct{}
	if opt.Context != nil {
		cancelled = opt.Context.Done()
	}

	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			crashLimit, canCrash := opt.CrashAfter[i]
			if canCrash && crashLimit <= 0 {
				crashed[i] = true // never wakes; register stays ⊥
				return
			}
			var rng *rand.Rand
			if opt.Jitter > 0 {
				rng = rand.New(rand.NewSource(jitterSeed(opt.Seed, i)))
			}
			node := nodes[i]
			nbrs := g.Neighbors(i)
			view := make([]sim.Cell[V], len(nbrs))
			for round := 1; ; round++ {
				if cancelled != nil {
					select {
					case <-cancelled:
						interrupted[i] = true
						return
					default:
					}
				}
				if round > maxRounds {
					overLimit[i] = true
					return
				}
				// Atomic local immediate snapshot: write own register, read
				// neighbors, under the ordered neighborhood locks.
				for _, j := range lockOrder[i] {
					regs[j].mu.Lock()
				}
				regs[i].cell = sim.Cell[V]{Present: true, Val: node.Publish()}
				for k, q := range nbrs {
					view[k] = regs[q].cell
				}
				for k := len(lockOrder[i]) - 1; k >= 0; k-- {
					regs[lockOrder[i][k]].mu.Unlock()
				}

				dec := node.Observe(view)
				acts[i] = round
				if opt.Metrics != nil {
					opt.Metrics.Activations.Inc()
				}
				if dec.Return {
					done[i] = true
					outputs[i] = dec.Output
					return
				}
				if canCrash && round >= crashLimit {
					crashed[i] = true
					return
				}
				if opt.Yield {
					runtime.Gosched()
				}
				if rng != nil {
					time.Sleep(time.Duration(rng.Int63n(int64(opt.Jitter))))
				}
			}
		}(i)
	}
	wg.Wait()

	res := sim.Result{
		Outputs:     outputs,
		Done:        done,
		Crashed:     crashed,
		Activations: acts,
	}
	for _, over := range overLimit {
		if over {
			return res, fmt.Errorf("%w (%d rounds)", ErrRoundLimit, maxRounds)
		}
	}
	for i, stopped := range interrupted {
		if stopped {
			return res, fmt.Errorf("%w: node %d stopped after %d rounds", ErrCancelled, i, acts[i])
		}
	}
	return res, nil
}
