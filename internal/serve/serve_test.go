package serve_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"asynccycle/internal/graph"
	"asynccycle/internal/metrics"
	"asynccycle/internal/protocol"
	"asynccycle/internal/runctl"
	"asynccycle/internal/serve"
	"asynccycle/internal/sim"
)

// The "block" test protocol runs until its context is cancelled — a
// deterministic way to occupy a worker for overflow and drain tests
// without sleeping for timing slack.
func init() {
	protocol.MustRegister(&protocol.Descriptor{
		Name:         "block",
		Problem:      "test protocol: blocks until cancelled",
		TopologyName: "cycle",
		MinN:         3,
		Palette:      "{0}",
		Topology:     graph.Cycle,
		Validity:     func(g graph.Graph, r sim.Result) error { return nil },
		Run: func(xs []int, o protocol.RunOptions) (sim.Result, runctl.StopReason, error) {
			n := len(xs)
			res := sim.Result{
				Outputs: make([]int, n),
				Done:    make([]bool, n),
				Crashed: make([]bool, n),
			}
			if o.Context != nil {
				<-o.Context.Done()
				return res, runctl.StopCancelled, nil
			}
			return res, runctl.StopNone, nil
		},
	})
}

func newTestServer(t *testing.T, opt serve.Options) (*serve.Server, *httptest.Server) {
	t.Helper()
	s := serve.New(opt)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, ts *httptest.Server, spec string) (*http.Response, serve.View) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var v serve.View
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatalf("decoding job view: %v", err)
		}
	}
	resp.Body.Close()
	return resp, v
}

func waitJob(t *testing.T, ts *httptest.Server, id string) serve.View {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id + "?wait=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v serve.View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func getResult(t *testing.T, ts *httptest.Server, id string) map[string]json.RawMessage {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		t.Fatalf("result %s: status %d: %s", id, resp.StatusCode, buf.String())
	}
	var out map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func field(t *testing.T, m map[string]json.RawMessage, key string) string {
	t.Helper()
	var s string
	if err := json.Unmarshal(m[key], &s); err != nil {
		t.Fatalf("field %q: %v (raw %s)", key, err, m[key])
	}
	return s
}

func TestRunJobSim(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 2})
	resp, v := post(t, ts, `{"kind":"run","alg":"six","n":12,"sched":"rr","seed":7}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	if v.ID == "" || v.Kind != "run" {
		t.Fatalf("bad view: %+v", v)
	}
	done := waitJob(t, ts, v.ID)
	if done.Status != serve.StatusDone || done.Outcome != serve.OutcomeOK {
		t.Fatalf("job did not complete ok: %+v", done)
	}
	res := getResult(t, ts, v.ID)
	if got := field(t, res, "outcome"); got != serve.OutcomeOK {
		t.Fatalf("outcome = %q", got)
	}
	var run serve.RunResult
	if err := json.Unmarshal(res["result"], &run); err != nil {
		t.Fatal(err)
	}
	if run.N != 12 || run.Terminated != 12 || run.Engine != "sim" {
		t.Fatalf("run result: %+v", run)
	}
	if len(run.Verdicts) == 0 {
		t.Fatal("no verdicts reported")
	}
	for _, verdict := range run.Verdicts {
		if !verdict.OK {
			t.Errorf("verdict %s failed: %s", verdict.Name, verdict.Error)
		}
	}
}

func TestRunJobBigEngine(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 2})
	resp, v := post(t, ts, `{"kind":"run","alg":"fast","n":20000,"engine":"big","sched":"rr","crash":0.01}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	done := waitJob(t, ts, v.ID)
	if done.Outcome != serve.OutcomeOK {
		t.Fatalf("big run: %+v", done)
	}
	var run serve.RunResult
	res := getResult(t, ts, v.ID)
	if err := json.Unmarshal(res["result"], &run); err != nil {
		t.Fatal(err)
	}
	if run.Engine != "big" || run.N != 20000 {
		t.Fatalf("big run result: %+v", run)
	}
	if run.Crashed == 0 {
		t.Fatal("crash plan did not crash anyone")
	}
	if run.Terminated+run.Crashed < run.N {
		t.Fatalf("non-crashed processes did not all terminate: %+v", run)
	}
	if run.ColorsShown > len(run.Colors) || run.ColorsTotal != 20000 {
		t.Fatalf("color vector bounds: shown=%d len=%d total=%d",
			run.ColorsShown, len(run.Colors), run.ColorsTotal)
	}
}

func TestRunJobSharded(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 1})
	resp, v := post(t, ts, `{"kind":"run","alg":"fast","n":30000,"engine":"big","workers":4}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	done := waitJob(t, ts, v.ID)
	if done.Outcome != serve.OutcomeOK {
		t.Fatalf("sharded run: %+v", done)
	}
	var run serve.RunResult
	if err := json.Unmarshal(getResult(t, ts, v.ID)["result"], &run); err != nil {
		t.Fatal(err)
	}
	if run.Terminated != 30000 || !strings.HasPrefix(run.Scheduler, "sharded-rr") {
		t.Fatalf("sharded result: %+v", run)
	}
}

func TestRunJobTrace(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 1})
	_, v := post(t, ts, `{"kind":"run","alg":"six","n":6,"sched":"sync","trace":true}`)
	done := waitJob(t, ts, v.ID)
	if done.Outcome != serve.OutcomeOK {
		t.Fatalf("traced run: %+v", done)
	}
	resp, err := http.Get(ts.URL + "/jobs/" + v.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode != http.StatusOK || buf.Len() == 0 {
		t.Fatalf("trace fetch: status %d, %d bytes", resp.StatusCode, buf.Len())
	}
}

func TestCheckJob(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 2})
	_, v := post(t, ts, `{"kind":"check","alg":"six","n":3}`)
	done := waitJob(t, ts, v.ID)
	if done.Outcome != serve.OutcomeOK {
		t.Fatalf("check job: %+v", done)
	}
	var chk serve.CheckResult
	if err := json.Unmarshal(getResult(t, ts, v.ID)["result"], &chk); err != nil {
		t.Fatal(err)
	}
	if chk.States == 0 || chk.Terminal == 0 || len(chk.Violations) != 0 {
		t.Fatalf("check result: %+v", chk)
	}
	if done.Metrics == nil || done.Metrics.States == 0 {
		t.Fatalf("job view carries no exploration metrics: %+v", done.Metrics)
	}
}

func TestCheckJobSweep(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 2})
	_, v := post(t, ts, `{"kind":"check","alg":"six","n":3,"sweep":true}`)
	done := waitJob(t, ts, v.ID)
	if done.Outcome != serve.OutcomeOK {
		t.Fatalf("sweep job: %+v", done)
	}
	var chk serve.CheckResult
	if err := json.Unmarshal(getResult(t, ts, v.ID)["result"], &chk); err != nil {
		t.Fatal(err)
	}
	if !chk.Sweep || chk.States == 0 {
		t.Fatalf("sweep result: %+v", chk)
	}
}

func TestFuzzJob(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 2})
	_, v := post(t, ts, `{"kind":"fuzz","alg":"fast","n":4,"campaign":8,"seed":3}`)
	done := waitJob(t, ts, v.ID)
	if done.Outcome != serve.OutcomeOK {
		t.Fatalf("fuzz job: %+v", done)
	}
	var fz serve.FuzzResult
	if err := json.Unmarshal(getResult(t, ts, v.ID)["result"], &fz); err != nil {
		t.Fatal(err)
	}
	if fz.Schedules != 8 || len(fz.Violations) != 0 {
		t.Fatalf("fuzz result: %+v", fz)
	}
}

func TestBudgetTrippedJobIsPartial(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 1})
	// The block protocol never finishes on its own; the 50ms budget must
	// trip and yield PARTIAL with a timeout stop reason — not an error.
	_, v := post(t, ts, `{"kind":"run","alg":"block","n":4,"budget":{"timeout_ms":50}}`)
	done := waitJob(t, ts, v.ID)
	if done.Outcome != serve.OutcomePartial {
		t.Fatalf("budget-tripped job: %+v", done)
	}
	if done.StopReason != string(runctl.StopCancelled) && done.StopReason != string(runctl.StopTimeout) {
		t.Fatalf("stop reason = %q", done.StopReason)
	}
	res := getResult(t, ts, v.ID)
	if field(t, res, "outcome") != serve.OutcomePartial {
		t.Fatal("result endpoint does not mark PARTIAL")
	}
}

func TestDefaultTimeoutIsMandatory(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 1, DefaultTimeout: 50 * time.Millisecond})
	// No budget in the request: the server default must still bound it.
	_, v := post(t, ts, `{"kind":"run","alg":"block","n":4}`)
	done := waitJob(t, ts, v.ID)
	if done.Outcome != serve.OutcomePartial {
		t.Fatalf("unbudgeted blocking job was not bounded: %+v", done)
	}
}

func TestBudgetClampedToCeiling(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{
		Workers:   1,
		MaxBudget: runctl.Budget{Timeout: 50 * time.Millisecond},
	})
	// The request asks for an hour; the ceiling clamps it to 50ms.
	start := time.Now()
	_, v := post(t, ts, `{"kind":"run","alg":"block","n":4,"budget":{"timeout_ms":3600000}}`)
	done := waitJob(t, ts, v.ID)
	if done.Outcome != serve.OutcomePartial {
		t.Fatalf("clamped job: %+v", done)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("ceiling did not clamp: job took %v", elapsed)
	}
}

func TestQueueOverflowSheds429(t *testing.T) {
	s, ts := newTestServer(t, serve.Options{Workers: 1, QueueDepth: 1})
	// One job occupies the worker, one fills the queue; the third must be
	// shed with 429. Blocking jobs make this deterministic, but the first
	// may be dequeued before the second arrives — so allow one extra.
	spec := `{"kind":"run","alg":"block","n":4,"budget":{"timeout_ms":400}}`
	var ids []string
	shed := 0
	for i := 0; i < 3; i++ {
		resp, v := post(t, ts, spec)
		switch resp.StatusCode {
		case http.StatusAccepted:
			ids = append(ids, v.ID)
		case http.StatusTooManyRequests:
			shed++
			if ra := resp.Header.Get("Retry-After"); ra == "" {
				t.Error("429 without Retry-After")
			}
		default:
			t.Fatalf("unexpected status %d", resp.StatusCode)
		}
	}
	if shed == 0 {
		t.Fatalf("no submission shed (accepted %d)", len(ids))
	}
	if got := s.Stats().Shed; int(got) != shed {
		t.Fatalf("stats.Shed = %d, want %d", got, shed)
	}
	// Accepted jobs still complete (as PARTIAL when their budget trips).
	for _, id := range ids {
		if v := waitJob(t, ts, id); v.Status != serve.StatusDone {
			t.Fatalf("accepted job %s never finished: %+v", id, v)
		}
	}
}

func TestValidationRejects(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 1, MaxN: 1000})
	cases := []struct {
		name, spec string
	}{
		{"unknown alg", `{"kind":"run","alg":"nope"}`},
		{"unknown kind", `{"kind":"explode","alg":"six"}`},
		{"unknown sched", `{"kind":"run","alg":"six","sched":"chaos"}`},
		{"unknown ids", `{"kind":"run","alg":"six","ids":"chaos"}`},
		{"unknown mode", `{"kind":"run","alg":"six","mode":"warp"}`},
		{"n too small", `{"kind":"run","alg":"six","n":2}`},
		{"n above server cap", `{"kind":"run","alg":"six","n":5000}`},
		{"crash out of range", `{"kind":"run","alg":"six","crash":1.5}`},
		{"check n too large", `{"kind":"check","alg":"six","n":64}`},
		{"big without capability", `{"kind":"run","alg":"block","engine":"big"}`},
		{"fuzz without capability", `{"kind":"fuzz","alg":"block"}`},
		{"trace on big", `{"kind":"run","alg":"fast","engine":"big","trace":true}`},
		{"workers on sim", `{"kind":"run","alg":"six","workers":4}`},
		{"unknown field", `{"kind":"run","alg":"six","bogus":1}`},
		{"not json", `kind=run`},
	}
	for _, tc := range cases {
		resp, _ := post(t, ts, tc.spec)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
	// Nothing invalid may reach the queue.
	resp, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var views []serve.View
	if err := json.NewDecoder(resp.Body).Decode(&views); err != nil {
		t.Fatal(err)
	}
	if len(views) != 0 {
		t.Fatalf("invalid specs enqueued: %+v", views)
	}
}

func TestProtocolsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 1})
	resp, err := http.Get(ts.URL + "/protocols")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var infos []protocol.Info
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != len(protocol.All()) {
		t.Fatalf("%d infos for %d registered protocols", len(infos), len(protocol.All()))
	}
	// The self-description must be sufficient to build a valid job: take
	// the first protocol advertising "run" and submit against it.
	for _, in := range infos {
		for _, c := range in.Capabilities {
			if c != "run" {
				continue
			}
			spec := fmt.Sprintf(`{"kind":"run","alg":%q,"n":%d,"budget":{"timeout_ms":200}}`, in.Name, in.MinN)
			resp, v := post(t, ts, spec)
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("self-described job for %q rejected: %d", in.Name, resp.StatusCode)
			}
			waitJob(t, ts, v.ID)
			return
		}
	}
	t.Fatal("no protocol advertises run")
}

func TestMetricsStream(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 1})
	_, v := post(t, ts, `{"kind":"fuzz","alg":"fast","campaign":32,"seed":1}`)
	resp, err := http.Get(ts.URL + "/jobs/" + v.ID + "/metrics?watch=1&interval_ms=10")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var last metrics.Snapshot
	lines := 0
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("bad snapshot line: %v: %s", err, sc.Text())
		}
		lines++
	}
	if lines == 0 {
		t.Fatal("stream delivered no snapshots")
	}
	// The stream ends with a final post-completion snapshot, so the last
	// line must carry the finished campaign's counters.
	if last.Schedules != 32 {
		t.Fatalf("final snapshot schedules = %d, want 32", last.Schedules)
	}
}

func TestDrainFinishesQueuedAndRunning(t *testing.T) {
	s, ts := newTestServer(t, serve.Options{Workers: 1, QueueDepth: 4})
	// Fast jobs: drain must let both the running and the queued one
	// finish OK within the grace period.
	_, a := post(t, ts, `{"kind":"run","alg":"six","n":64,"sched":"rr"}`)
	_, b := post(t, ts, `{"kind":"run","alg":"six","n":64,"sched":"rr"}`)
	s.Drain(10 * time.Second)

	// After drain: no new submissions…
	resp, _ := post(t, ts, `{"kind":"run","alg":"six","n":8}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit: status %d, want 503", resp.StatusCode)
	}
	hc, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hc.Body.Close()
	if hc.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while drained: %d", hc.StatusCode)
	}
	// …but results remain fetchable, and both jobs completed cleanly.
	for _, id := range []string{a.ID, b.ID} {
		v := waitJob(t, ts, id)
		if v.Status != serve.StatusDone || v.Outcome != serve.OutcomeOK {
			t.Fatalf("drained job %s: %+v", id, v)
		}
	}
}

func TestDrainCancelsStragglersAsPartial(t *testing.T) {
	s, ts := newTestServer(t, serve.Options{Workers: 2, QueueDepth: 8})
	// Blocking jobs with long budgets: the 20ms grace must expire and the
	// cancellation must surface as PARTIAL/cancelled — accepted work is
	// never dropped.
	var ids []string
	for i := 0; i < 4; i++ {
		resp, v := post(t, ts, `{"kind":"run","alg":"block","n":4,"budget":{"timeout_ms":60000}}`)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, resp.StatusCode)
		}
		ids = append(ids, v.ID)
	}
	start := time.Now()
	s.Drain(20 * time.Millisecond)
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("drain hung for %v", elapsed)
	}
	for _, id := range ids {
		v := waitJob(t, ts, id)
		if v.Status != serve.StatusDone {
			t.Fatalf("job %s not done after drain: %+v", id, v)
		}
		if v.Outcome != serve.OutcomePartial || v.StopReason != string(runctl.StopCancelled) {
			t.Fatalf("straggler %s: outcome=%s reason=%s", id, v.Outcome, v.StopReason)
		}
	}
	if !s.Stats().Draining {
		t.Fatal("stats does not report draining")
	}
}

func TestDrainIdempotent(t *testing.T) {
	s, _ := newTestServer(t, serve.Options{Workers: 1})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Drain(time.Second)
		}()
	}
	wg.Wait()
}

func TestConcurrentMixedSubmissions(t *testing.T) {
	s, ts := newTestServer(t, serve.Options{Workers: 4, QueueDepth: 256})
	specs := []string{
		`{"kind":"run","alg":"six","n":32,"sched":"random","seed":%d}`,
		`{"kind":"run","alg":"five","n":24,"sched":"rr","seed":%d}`,
		`{"kind":"run","alg":"fast","n":4000,"engine":"big","seed":%d}`,
		`{"kind":"check","alg":"fast","n":3,"seed":%d}`,
		`{"kind":"fuzz","alg":"fast","campaign":4,"seed":%d}`,
	}
	const perSpec = 8
	var wg sync.WaitGroup
	idCh := make(chan string, len(specs)*perSpec)
	for i, tpl := range specs {
		for k := 0; k < perSpec; k++ {
			wg.Add(1)
			go func(tpl string, seed int) {
				defer wg.Done()
				resp, v := post(t, ts, fmt.Sprintf(tpl, seed))
				if resp.StatusCode == http.StatusAccepted {
					idCh <- v.ID
				} else if resp.StatusCode != http.StatusTooManyRequests {
					t.Errorf("status %d", resp.StatusCode)
				}
			}(tpl, i*perSpec+k)
		}
	}
	wg.Wait()
	close(idCh)
	accepted := 0
	for id := range idCh {
		accepted++
		v := waitJob(t, ts, id)
		if v.Status != serve.StatusDone {
			t.Fatalf("job %s: %+v", id, v)
		}
		if v.Outcome == serve.OutcomeFailed {
			t.Fatalf("job %s failed: %s", id, v.Error)
		}
	}
	if accepted == 0 {
		t.Fatal("nothing accepted")
	}
	st := s.Stats()
	if st.Completed+st.Partial != int64(accepted) {
		t.Fatalf("stats: %+v for %d accepted", st, accepted)
	}
}
