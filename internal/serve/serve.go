// Package serve is the coloring-as-a-service job server behind
// cmd/colorserved: an HTTP/JSON facade over the protocol registry that
// accepts run, check, and fuzz jobs, executes them on a bounded worker
// pool, and streams per-job metrics while they run.
//
// Three properties are load-bearing (DESIGN.md §12):
//
//   - The queue is bounded. Submissions beyond the configured depth are
//     shed with 429 rather than buffered, so memory stays flat under
//     overload and clients get immediate backpressure.
//   - Every job runs under a mandatory runctl.Budget. The server imposes
//     a default wall-clock timeout when the request names none and clamps
//     every requested axis to its per-job ceiling, so no request can
//     occupy a worker indefinitely — a tripped budget yields a PARTIAL
//     result, never a discarded one.
//   - Shutdown is a drain, not an abort. Drain stops intake (503), lets
//     in-flight and queued jobs finish within a grace period, then
//     cancels the shared run context so stragglers finish as PARTIAL with
//     StopCancelled. Results remain fetchable until the process exits.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"asynccycle/internal/metrics"
	"asynccycle/internal/protocol"
	"asynccycle/internal/runctl"

	"context"
)

// Options configures a Server. The zero value is usable: defaults are
// filled in by New.
type Options struct {
	// Workers is the execution pool size (default 2).
	Workers int
	// QueueDepth bounds the number of accepted-but-not-started jobs
	// (default 64); submissions beyond it are shed with 429.
	QueueDepth int
	// DefaultTimeout is the wall-clock budget applied to jobs that name
	// none (default 30s). Mandatory: a zero request timeout never means
	// "unbounded".
	DefaultTimeout time.Duration
	// MaxBudget is the per-job ceiling; every axis of a request's budget
	// is clamped to it (zero axes = unlimited on that axis, except the
	// wall clock which falls back to 4×DefaultTimeout).
	MaxBudget runctl.Budget
	// MaxN caps run-job instance sizes (default 2_000_000).
	MaxN int
	// Metrics, when non-nil, receives server-wide counters (jobs as
	// schedules, shed as hash collisions are NOT conflated — the server
	// keeps its own counters; this Run only aggregates execution totals).
	Metrics *metrics.Run
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 30 * time.Second
	}
	if o.MaxBudget.Timeout <= 0 {
		o.MaxBudget.Timeout = 4 * o.DefaultTimeout
	}
	if o.MaxN <= 0 {
		o.MaxN = 2_000_000
	}
	return o
}

// Stats is the server-level counter snapshot served at /stats.
type Stats struct {
	Accepted  int64 `json:"accepted"`
	Shed      int64 `json:"shed"`     // rejected 429: queue full
	Rejected  int64 `json:"rejected"` // rejected 400: invalid spec
	Completed int64 `json:"completed"`
	Partial   int64 `json:"partial"`
	Failed    int64 `json:"failed"`
	Queued    int   `json:"queued"`
	Running   int   `json:"running"`
	Workers   int   `json:"workers"`
	Draining  bool  `json:"draining"`
}

// Server executes protocol jobs from a bounded queue on a fixed worker
// pool. Create with New, mount Handler on an http.Server, and call Drain
// on shutdown.
type Server struct {
	opt   Options
	queue chan *job

	// runCtx is the shared parent of every job context; cancelRun trips
	// it when the drain grace expires.
	runCtx    context.Context
	cancelRun context.CancelFunc

	// acceptMu serializes submission against the draining flag flip:
	// submit holds the read side across the draining check and the
	// jobWG.Add, so Drain's Wait can never race an in-flight Add.
	acceptMu sync.RWMutex
	draining bool

	jobWG    sync.WaitGroup // accepted jobs not yet done
	workerWG sync.WaitGroup // worker goroutines

	mu      sync.Mutex
	jobs    map[string]*job
	order   []string // job IDs in submission order
	seq     int
	running int

	stats struct {
		sync.Mutex
		accepted, shed, rejected  int64
		completed, partial, faild int64
	}
}

// New builds a Server and starts its worker pool.
func New(opt Options) *Server {
	opt = opt.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opt:       opt,
		queue:     make(chan *job, opt.QueueDepth),
		runCtx:    ctx,
		cancelRun: cancel,
		jobs:      make(map[string]*job),
	}
	s.workerWG.Add(opt.Workers)
	for i := 0; i < opt.Workers; i++ {
		go s.worker()
	}
	return s
}

func (s *Server) worker() {
	defer s.workerWG.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

func (s *Server) runJob(j *job) {
	defer s.jobWG.Done()
	j.mu.Lock()
	j.status = StatusRunning
	j.started = time.Now()
	j.mu.Unlock()
	s.mu.Lock()
	s.running++
	s.mu.Unlock()

	// The job's wall-clock budget becomes a context deadline under the
	// shared drain context; the execution layers get the remaining axes.
	// A job dequeued after the drain grace expired sees an
	// already-cancelled context and finishes immediately as PARTIAL.
	ctx, cancel := j.budget.WithContext(s.runCtx)
	s.execute(ctx, j)
	cancel()

	s.mu.Lock()
	s.running--
	s.mu.Unlock()
	s.stats.Lock()
	switch j.view(false).Outcome {
	case OutcomeOK:
		s.stats.completed++
	case OutcomePartial:
		s.stats.partial++
	default:
		s.stats.faild++
	}
	s.stats.Unlock()
}

// Submit validates and enqueues a job spec. It returns the job on
// acceptance; ErrDraining when the server no longer accepts work;
// ErrQueueFull when the bounded queue is at depth; other errors for
// invalid specs.
func (s *Server) Submit(spec JobSpec) (*job, error) {
	d, mode, err := s.validate(&spec)
	if err != nil {
		s.stats.Lock()
		s.stats.rejected++
		s.stats.Unlock()
		return nil, err
	}

	// Mandatory budget: default wall clock when absent, then clamp every
	// axis to the server ceiling.
	b := spec.Budget.Budget()
	if b.Timeout <= 0 {
		b.Timeout = s.opt.DefaultTimeout
	}
	b = b.Clamp(s.opt.MaxBudget)

	j := &job{
		spec:    spec,
		desc:    d,
		mode:    mode,
		budget:  b,
		met:     metrics.NewRun(),
		created: time.Now(),
		done:    make(chan struct{}),
		status:  StatusQueued,
	}

	s.acceptMu.RLock()
	if s.draining {
		s.acceptMu.RUnlock()
		return nil, ErrDraining
	}
	select {
	case s.queue <- j:
		s.jobWG.Add(1)
	default:
		s.acceptMu.RUnlock()
		s.stats.Lock()
		s.stats.shed++
		s.stats.Unlock()
		return nil, ErrQueueFull
	}
	s.acceptMu.RUnlock()

	s.mu.Lock()
	s.seq++
	j.id = fmt.Sprintf("j%06d", s.seq)
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.mu.Unlock()
	s.stats.Lock()
	s.stats.accepted++
	s.stats.Unlock()
	return j, nil
}

// Sentinel submission errors; the HTTP layer maps them to 503 and 429.
var (
	ErrDraining  = errors.New("server is draining, not accepting jobs")
	ErrQueueFull = errors.New("job queue is full")
)

// Job looks up a job by ID.
func (s *Server) Job(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns all jobs in submission order.
func (s *Server) Jobs() []*job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Stats snapshots the server counters.
func (s *Server) Stats() Stats {
	s.stats.Lock()
	st := Stats{
		Accepted: s.stats.accepted,
		Shed:     s.stats.shed,
		Rejected: s.stats.rejected,

		Completed: s.stats.completed,
		Partial:   s.stats.partial,
		Failed:    s.stats.faild,
	}
	s.stats.Unlock()
	s.mu.Lock()
	st.Running = s.running
	s.mu.Unlock()
	st.Queued = len(s.queue)
	st.Workers = s.opt.Workers
	s.acceptMu.RLock()
	st.Draining = s.draining
	s.acceptMu.RUnlock()
	return st
}

// Drain gracefully shuts the server down: stop accepting (submissions get
// 503), wait up to grace for accepted jobs (queued and running) to
// finish, then cancel the shared run context so stragglers stop between
// steps and finish as PARTIAL with StopCancelled. Drain returns once
// every accepted job is done and the worker pool has exited; results stay
// fetchable. grace <= 0 cancels immediately.
func (s *Server) Drain(grace time.Duration) {
	s.acceptMu.Lock()
	if s.draining {
		s.acceptMu.Unlock()
		s.jobWG.Wait()
		s.workerWG.Wait()
		return
	}
	s.draining = true
	s.acceptMu.Unlock()

	finished := make(chan struct{})
	go func() {
		s.jobWG.Wait()
		close(finished)
	}()
	if grace > 0 {
		select {
		case <-finished:
		case <-time.After(grace):
			s.cancelRun()
			<-finished
		}
	} else {
		s.cancelRun()
		<-finished
	}
	close(s.queue)
	s.workerWG.Wait()
	s.cancelRun() // release the timer ctx even on the clean path
}

// ---- HTTP layer ----

// Handler returns the server's HTTP API:
//
//	GET  /healthz           liveness (503 while draining)
//	GET  /protocols         registry self-description (protocol.Infos)
//	GET  /stats             server counters
//	POST /jobs              submit a JobSpec; 202 + job view
//	GET  /jobs              all job views, submission order
//	GET  /jobs/{id}         job view with metrics snapshot; ?wait=1 blocks
//	GET  /jobs/{id}/result  result payload (409 until done)
//	GET  /jobs/{id}/trace   recorded trace text (404 unless requested)
//	GET  /jobs/{id}/metrics one metrics snapshot, or ?watch=1 to stream
//	                        ND-JSON snapshots until the job finishes
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /protocols", s.handleProtocols)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleJobs)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /jobs/{id}/metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.acceptMu.RLock()
	draining := s.draining
	s.acceptMu.RUnlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleProtocols(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, protocol.Infos())
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad job spec: %w", err))
		return
	}
	j, err := s.Submit(spec)
	switch err {
	case nil:
	case ErrQueueFull:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
		return
	case ErrDraining:
		writeError(w, http.StatusServiceUnavailable, err)
		return
	default:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Location", "/jobs/"+j.id)
	writeJSON(w, http.StatusAccepted, j.view(false))
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs()
	views := make([]View, len(jobs))
	for i, j := range jobs {
		views[i] = j.view(false)
	}
	sort.SliceStable(views, func(a, b int) bool { return views[a].ID < views[b].ID })
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*job, bool) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
	}
	return j, ok
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	if r.URL.Query().Get("wait") != "" {
		select {
		case <-j.done:
		case <-r.Context().Done():
			return
		}
	}
	writeJSON(w, http.StatusOK, j.view(true))
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	select {
	case <-j.done:
	default:
		writeError(w, http.StatusConflict, fmt.Errorf("job %s is %s; retry when done", j.id, j.view(false).Status))
		return
	}
	j.mu.Lock()
	outcome, reason, errMsg, result := j.outcome, j.stopReason, j.errMsg, j.result
	j.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"id":          j.id,
		"kind":        j.spec.Kind,
		"alg":         j.spec.Alg,
		"outcome":     outcome,
		"stop_reason": string(reason),
		"error":       errMsg,
		"result":      result,
	})
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	select {
	case <-j.done:
	default:
		writeError(w, http.StatusConflict, fmt.Errorf("job %s is not done", j.id))
		return
	}
	j.mu.Lock()
	trace := j.trace
	j.mu.Unlock()
	if trace == "" {
		writeError(w, http.StatusNotFound, fmt.Errorf("job %s recorded no trace (submit with \"trace\": true)", j.id))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte(trace))
}

// handleMetrics serves one metrics snapshot, or with ?watch=1 streams
// ND-JSON snapshots every interval (default 200ms, ?interval_ms=) until
// the job completes — a final snapshot is always sent after completion.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	if r.URL.Query().Get("watch") == "" {
		writeJSON(w, http.StatusOK, j.met.Snapshot())
		return
	}
	interval := 200 * time.Millisecond
	if ms, err := strconv.Atoi(r.URL.Query().Get("interval_ms")); err == nil && ms > 0 {
		interval = time.Duration(ms) * time.Millisecond
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	send := func() {
		_ = enc.Encode(j.met.Snapshot())
		if flusher != nil {
			flusher.Flush()
		}
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-j.done:
			send()
			return
		case <-r.Context().Done():
			return
		case <-ticker.C:
			send()
		}
	}
}
