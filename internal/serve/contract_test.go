package serve_test

// Contract-labeled job verdicts: run jobs on contract-first protocols
// carry the contract name and per-property labeled verdicts (and, for
// stabilizing protocols, the published register colors), while
// pre-contract protocols keep their legacy payload shape — no contract
// field, legacy verdict names.

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"asynccycle/internal/serve"
	"asynccycle/internal/ssuni"
)

func TestRunJobContractLabels(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 2})

	resp, v := post(t, ts, `{"kind":"run","alg":"ssuni","n":8,"sched":"rr","seed":3}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	done := waitJob(t, ts, v.ID)
	if done.Status != serve.StatusDone || done.Outcome != serve.OutcomeOK {
		t.Fatalf("job did not complete ok: %+v", done)
	}
	res := getResult(t, ts, v.ID)
	var run serve.RunResult
	if err := json.Unmarshal(res["result"], &run); err != nil {
		t.Fatal(err)
	}
	if run.Contract != "ss-coloring" {
		t.Errorf("Contract = %q, want ss-coloring", run.Contract)
	}
	// Stabilizing runs never terminate; the color vector is the published
	// registers, all inside the palette.
	if run.Terminated != 0 {
		t.Errorf("Terminated = %d, want 0 (stabilizing runs never terminate)", run.Terminated)
	}
	for i, c := range run.Colors {
		if c < 0 || c >= ssuni.K {
			t.Errorf("color[%d] = %d outside [0,%d)", i, c, ssuni.K)
		}
	}
	if len(run.Verdicts) == 0 {
		t.Fatal("no verdicts reported")
	}
	for _, verdict := range run.Verdicts {
		if !strings.HasPrefix(verdict.Name, "contract=ss-coloring property=") {
			t.Errorf("verdict %q lacks contract provenance", verdict.Name)
		}
		if !verdict.OK {
			t.Errorf("verdict %s failed: %s", verdict.Name, verdict.Error)
		}
	}

	// A pre-contract protocol keeps the legacy shape.
	resp, v = post(t, ts, `{"kind":"run","alg":"six","n":8,"sched":"rr","seed":3}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	waitJob(t, ts, v.ID)
	res = getResult(t, ts, v.ID)
	raw := string(res["result"])
	if strings.Contains(raw, `"contract"`) {
		t.Errorf("legacy run result leaked a contract field: %s", raw)
	}
	if strings.Contains(raw, "contract=") {
		t.Errorf("legacy run verdicts leaked contract labels: %s", raw)
	}
}

func TestFuzzJobContractLabel(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 2})
	resp, v := post(t, ts, `{"kind":"fuzz","alg":"agree-p3","campaign":8,"seed":9}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	done := waitJob(t, ts, v.ID)
	if done.Status != serve.StatusDone || done.Outcome != serve.OutcomeOK {
		t.Fatalf("job did not complete ok: %+v", done)
	}
	res := getResult(t, ts, v.ID)
	var fz serve.FuzzResult
	if err := json.Unmarshal(res["result"], &fz); err != nil {
		t.Fatal(err)
	}
	if fz.Contract != "approx-agreement" {
		t.Errorf("Contract = %q, want approx-agreement", fz.Contract)
	}
	if !strings.Contains(fz.Summary, "contract=approx-agreement") {
		t.Errorf("summary lacks contract field: %q", fz.Summary)
	}
	if len(fz.Violations) != 0 || len(fz.Divergences) != 0 {
		t.Errorf("spurious findings: %+v", fz)
	}
}
