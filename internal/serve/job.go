package serve

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"asynccycle/internal/bigsim"
	"asynccycle/internal/fuzzsched"
	"asynccycle/internal/ids"
	"asynccycle/internal/metrics"
	"asynccycle/internal/model"
	"asynccycle/internal/protocol"
	"asynccycle/internal/runctl"
	"asynccycle/internal/schedule"
	"asynccycle/internal/sim"
)

// Job kinds. Each maps to one registry capability: "run" needs Run (or
// BigKernel for the big engine), "check" needs Check (Sweep with
// spec.Sweep), "fuzz" needs the instance surface.
const (
	KindRun   = "run"
	KindCheck = "check"
	KindFuzz  = "fuzz"
)

// Job statuses and outcomes.
const (
	StatusQueued  = "queued"
	StatusRunning = "running"
	StatusDone    = "done"

	OutcomeOK      = "ok"      // ran to completion
	OutcomePartial = "partial" // stopped by budget or drain; results cover the explored region
	OutcomeFailed  = "failed"  // the job itself errored
)

// BudgetSpec is the wire form of runctl.Budget.
type BudgetSpec struct {
	TimeoutMS      int64 `json:"timeout_ms,omitempty"`
	MaxStates      int   `json:"max_states,omitempty"`
	MaxSteps       int   `json:"max_steps,omitempty"`
	MaxActivations int   `json:"max_activations,omitempty"`
}

// Budget converts the wire form.
func (b BudgetSpec) Budget() runctl.Budget {
	return runctl.Budget{
		Timeout:        time.Duration(b.TimeoutMS) * time.Millisecond,
		MaxStates:      b.MaxStates,
		MaxSteps:       b.MaxSteps,
		MaxActivations: b.MaxActivations,
	}
}

// JobSpec is the POST /jobs request body. Kind and Alg are required;
// everything else has job-kind-specific defaults. The server clamps the
// requested budget to its per-job ceiling on every axis, so a request can
// never starve the pool.
type JobSpec struct {
	Kind string `json:"kind"`
	Alg  string `json:"alg"`
	// N is the instance size (run default 32, check default 3; fuzz 0
	// varies it per schedule).
	N int `json:"n,omitempty"`
	// Topology retargets the protocol onto another registered graph family
	// ("" = its native topology). Only families the descriptor declares are
	// accepted; engine "big" is cycle-only. Sizes round via the family's
	// normalizer (torus → the nearest factorable grid).
	Topology string `json:"topology,omitempty"`
	// Mode selects activation semantics: "interleaved" (default) or
	// "simultaneous".
	Mode string `json:"mode,omitempty"`
	// IDs names the identifier assignment (ids.Parse dialect; default
	// "random").
	IDs  string `json:"ids,omitempty"`
	Seed int64  `json:"seed,omitempty"`

	// Run options.
	// Sched names the scheduler family (schedule.Parse dialect; default
	// "random").
	Sched string `json:"sched,omitempty"`
	// Crash is the fraction of processes crashed at adversarial times.
	Crash float64 `json:"crash,omitempty"`
	// Engine selects the execution engine: "sim" (default) or "big" (the
	// struct-of-arrays large-cycle engine; requires the "big" capability).
	Engine string `json:"engine,omitempty"`
	// Workers: engine "big" runs the sharded parallel executor when > 1;
	// for check jobs it is the frontier-parallel worker count.
	Workers int `json:"workers,omitempty"`
	// Trace records the execution trace (sim engine only, n ≤ 4096);
	// fetch it from /jobs/{id}/trace.
	Trace bool `json:"trace,omitempty"`

	// Check options.
	Sweep     bool `json:"sweep,omitempty"`
	Depth     int  `json:"depth,omitempty"`
	MaxStates int  `json:"max_states,omitempty"`

	// Fuzz options.
	Campaign  int `json:"campaign,omitempty"`
	ConcEvery int `json:"conc_every,omitempty"`

	// Budget bounds the job; the server applies its default timeout when
	// none is given and clamps every axis to its ceiling.
	Budget BudgetSpec `json:"budget,omitempty"`
}

// Verdict is one named check outcome on a run result.
type Verdict struct {
	Name  string `json:"name"`
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
}

// RunResult is the result payload of a run job.
type RunResult struct {
	Graph     string `json:"graph"`
	Engine    string `json:"engine"`
	Scheduler string `json:"scheduler"`
	Workers   int    `json:"workers,omitempty"`
	N         int    `json:"n"`
	Steps     int64  `json:"steps"`
	// Contract is the correctness contract labeling the verdicts; empty
	// for pre-contract protocols (their verdicts keep the legacy names).
	Contract   string    `json:"contract,omitempty"`
	Terminated int       `json:"terminated"`
	Crashed    int       `json:"crashed"`
	MaxRounds  int       `json:"max_rounds"`
	Bound      int       `json:"bound,omitempty"`
	Verdicts   []Verdict `json:"verdicts"`
	// Colors holds the first ColorsShown outputs (-1 = not terminated);
	// ColorsTotal is n. Full vectors for n ≤ 256.
	Colors      []int `json:"colors"`
	ColorsShown int   `json:"colors_shown"`
	ColorsTotal int   `json:"colors_total"`
}

// CheckResult is the result payload of a check job.
type CheckResult struct {
	Summary          string   `json:"summary"`
	Contract         string   `json:"contract,omitempty"`
	States           int64    `json:"states"`
	Terminal         int64    `json:"terminal"`
	Violations       []string `json:"violations,omitempty"`
	ViolationWitness string   `json:"violation_witness,omitempty"`
	CycleFound       bool     `json:"cycle_found"`
	CyclePrefix      string   `json:"cycle_prefix,omitempty"`
	CycleLoop        string   `json:"cycle_loop,omitempty"`
	Truncated        bool     `json:"truncated"`
	Sweep            bool     `json:"sweep"`
}

// FuzzFinding is one oracle violation with its shrunk witness.
type FuzzFinding struct {
	Detail  string `json:"detail"`
	Witness string `json:"witness"`
}

// FuzzResult is the result payload of a fuzz job.
type FuzzResult struct {
	Summary     string        `json:"summary"`
	Contract    string        `json:"contract,omitempty"`
	Schedules   int           `json:"schedules"`
	Violations  []FuzzFinding `json:"violations,omitempty"`
	Divergences []string      `json:"divergences,omitempty"`
	StatesSeen  int64         `json:"states_seen"`
}

// job is one accepted request moving through the queue.
type job struct {
	id     string
	spec   JobSpec
	desc   *protocol.Descriptor
	mode   sim.Mode
	budget runctl.Budget
	met    *metrics.Run

	created time.Time
	done    chan struct{} // closed when the job reaches StatusDone

	mu         sync.Mutex
	status     string
	outcome    string
	stopReason runctl.StopReason
	errMsg     string
	started    time.Time
	finished   time.Time
	result     any
	trace      string
}

// View is the JSON status representation of a job.
type View struct {
	ID         string            `json:"id"`
	Kind       string            `json:"kind"`
	Alg        string            `json:"alg"`
	N          int               `json:"n,omitempty"`
	Status     string            `json:"status"`
	Outcome    string            `json:"outcome,omitempty"`
	StopReason string            `json:"stop_reason,omitempty"`
	Error      string            `json:"error,omitempty"`
	CreatedAt  time.Time         `json:"created_at"`
	StartedAt  *time.Time        `json:"started_at,omitempty"`
	FinishedAt *time.Time        `json:"finished_at,omitempty"`
	ElapsedSec float64           `json:"elapsed_seconds,omitempty"`
	Metrics    *metrics.Snapshot `json:"metrics,omitempty"`
}

func (j *job) view(withMetrics bool) View {
	j.mu.Lock()
	v := View{
		ID:         j.id,
		Kind:       j.spec.Kind,
		Alg:        j.spec.Alg,
		N:          j.spec.N,
		Status:     j.status,
		Outcome:    j.outcome,
		StopReason: string(j.stopReason),
		Error:      j.errMsg,
		CreatedAt:  j.created,
	}
	if !j.started.IsZero() {
		t := j.started
		v.StartedAt = &t
		end := j.finished
		if end.IsZero() {
			end = time.Now()
		}
		v.ElapsedSec = end.Sub(j.started).Seconds()
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.FinishedAt = &t
	}
	j.mu.Unlock()
	if withMetrics {
		s := j.met.Snapshot()
		v.Metrics = &s
	}
	return v
}

func (j *job) finish(outcome string, reason runctl.StopReason, result any, err error) {
	j.mu.Lock()
	j.status = StatusDone
	j.outcome = outcome
	j.stopReason = reason
	j.result = result
	if err != nil {
		j.errMsg = err.Error()
	}
	j.finished = time.Now()
	j.mu.Unlock()
	close(j.done)
}

// validate resolves the spec against the registry and normalizes
// defaults. Capability gating is structural: a kind is accepted exactly
// when the descriptor carries the matching closure, so new protocols get
// the service surface without any server change.
func (s *Server) validate(spec *JobSpec) (*protocol.Descriptor, sim.Mode, error) {
	d, err := protocol.Lookup(spec.Alg)
	if err != nil {
		return nil, 0, err
	}
	// Retarget before any capability or size gate: the retargeted copy
	// carries the family's MinN/FixN and drops cycle-only surfaces, so the
	// structural checks below see the descriptor the job will actually run.
	d, err = protocol.WithTopology(d, spec.Topology)
	if err != nil {
		return nil, 0, err
	}

	var mode sim.Mode
	switch spec.Mode {
	case "", "interleaved":
		mode = sim.ModeInterleaved
		spec.Mode = "interleaved"
	case "simultaneous":
		mode = sim.ModeSimultaneous
	default:
		return nil, 0, fmt.Errorf("unknown mode %q", spec.Mode)
	}
	if len(d.Modes) > 0 && !d.SupportsMode(mode) {
		return nil, 0, fmt.Errorf("algorithm %q does not support %s semantics", d.Name, mode)
	}

	if spec.IDs == "" {
		spec.IDs = "random"
	}
	if _, err := ids.Parse(spec.IDs); err != nil {
		return nil, 0, err
	}
	if spec.Crash < 0 || spec.Crash > 1 {
		return nil, 0, fmt.Errorf("crash fraction %v outside [0, 1]", spec.Crash)
	}
	if spec.Workers < 0 {
		return nil, 0, fmt.Errorf("negative workers")
	}

	switch spec.Kind {
	case KindRun:
		if spec.N == 0 {
			spec.N = 32
		}
		if d.FixN != nil {
			spec.N = d.FixN(spec.N)
		}
		if spec.N < d.MinN {
			return nil, 0, fmt.Errorf("n=%d below the protocol minimum %d", spec.N, d.MinN)
		}
		if spec.N > s.opt.MaxN {
			return nil, 0, fmt.Errorf("n=%d above the server limit %d", spec.N, s.opt.MaxN)
		}
		if spec.Sched == "" {
			spec.Sched = "random"
		}
		switch spec.Engine {
		case "", "sim":
			spec.Engine = "sim"
			if d.Run == nil {
				return nil, 0, fmt.Errorf("algorithm %q has no run surface", d.Name)
			}
			if spec.Workers > 1 {
				return nil, 0, fmt.Errorf("workers > 1 requires the big engine")
			}
			if _, err := schedule.Parse(spec.Sched, spec.Seed); err != nil {
				return nil, 0, err
			}
		case "big":
			if err := protocol.CheckBigTopology(spec.Topology); err != nil {
				return nil, 0, err
			}
			if d.BigKernel == nil {
				return nil, 0, fmt.Errorf("algorithm %q has no big-run surface (capability \"big\")", d.Name)
			}
			if spec.Trace {
				return nil, 0, fmt.Errorf("trace is not available on the big engine")
			}
			if spec.Workers <= 1 {
				if _, err := bigsim.ParseSched(spec.Sched, spec.Seed); err != nil {
					return nil, 0, err
				}
			}
		default:
			return nil, 0, fmt.Errorf("unknown engine %q (sim|big)", spec.Engine)
		}
		if spec.Trace && spec.N > maxTraceN {
			return nil, 0, fmt.Errorf("trace capped at n ≤ %d (asked for %d)", maxTraceN, spec.N)
		}
	case KindCheck:
		if spec.N == 0 {
			spec.N = 3
		}
		if d.FixN != nil {
			spec.N = d.FixN(spec.N)
		}
		if spec.N < d.MinN {
			return nil, 0, fmt.Errorf("n=%d below the protocol minimum %d", spec.N, d.MinN)
		}
		if spec.N > maxCheckN {
			return nil, 0, fmt.Errorf("exhaustive checking capped at n ≤ %d (asked for %d)", maxCheckN, spec.N)
		}
		if spec.Sweep {
			if d.Sweep == nil {
				return nil, 0, fmt.Errorf("algorithm %q has no sweep surface", d.Name)
			}
		} else if d.Check == nil {
			return nil, 0, fmt.Errorf("algorithm %q has no branchable instance surface to model-check", d.Name)
		}
	case KindFuzz:
		if d.NewInstance == nil {
			return nil, 0, fmt.Errorf("algorithm %q has no instance surface to fuzz", d.Name)
		}
		if spec.N < 0 || (spec.N > 0 && spec.N > maxFuzzN) {
			return nil, 0, fmt.Errorf("fuzz n must be 0 (varied) or in [%d, %d]", d.MinN, maxFuzzN)
		}
		if spec.Campaign <= 0 {
			spec.Campaign = 64
		}
		if spec.Campaign > maxCampaign {
			return nil, 0, fmt.Errorf("campaign capped at %d schedules (asked for %d)", maxCampaign, spec.Campaign)
		}
	default:
		return nil, 0, fmt.Errorf("unknown job kind %q (run|check|fuzz)", spec.Kind)
	}
	return d, mode, nil
}

// Per-job resource guards beyond the budget axes.
const (
	maxTraceN   = 4096
	maxCheckN   = 8
	maxFuzzN    = 64
	maxCampaign = 4096
)

// execute runs the job under ctx (already bounded by the job's wall-clock
// budget and the server's drain context). Every path returns a PARTIAL
// outcome rather than discarding work when the context is cancelled.
func (s *Server) execute(ctx context.Context, j *job) {
	switch j.spec.Kind {
	case KindRun:
		s.executeRun(ctx, j)
	case KindCheck:
		s.executeCheck(ctx, j)
	case KindFuzz:
		s.executeFuzz(ctx, j)
	default: // unreachable after validate
		j.finish(OutcomeFailed, runctl.StopNone, nil, fmt.Errorf("unknown kind %q", j.spec.Kind))
	}
}

// crashPlan mirrors the colorcycle CLI's deterministic crash plan.
func crashPlan(frac float64, n int, seed int64) map[int]int {
	crashes := map[int]int{}
	count := int(frac * float64(n))
	for i := 0; i < count; i++ {
		node := (i*7919 + int(seed)) % n
		crashes[node] = i % 5
	}
	return crashes
}

// engineBudget is the budget handed to the execution layer: the wall
// clock axis is already folded into ctx by the caller, so it is zeroed
// here rather than starting a second, later-anchored timer.
func engineBudget(b runctl.Budget) runctl.Budget {
	b.Timeout = 0
	return b
}

func (s *Server) executeRun(ctx context.Context, j *job) {
	spec := j.spec
	d := j.desc
	g, err := d.Topology(spec.N)
	if err != nil {
		j.finish(OutcomeFailed, runctl.StopNone, nil, err)
		return
	}
	assignment, _ := ids.Parse(spec.IDs)
	xs, err := ids.Generate(assignment, spec.N, spec.Seed)
	if err != nil {
		j.finish(OutcomeFailed, runctl.StopNone, nil, err)
		return
	}
	crashes := crashPlan(spec.Crash, g.N(), spec.Seed)

	b := engineBudget(j.budget)
	b.MaxSteps = runctl.Min(1000*g.N()+100_000, b.MaxSteps)

	var res sim.Result
	var reason runctl.StopReason
	var schedName string
	if spec.Engine == "big" {
		res, reason, schedName, err = runBig(ctx, d, xs, spec, crashes, b, j.met)
	} else {
		sched, _ := schedule.Parse(spec.Sched, spec.Seed)
		schedName = sched.Name()
		var traceBuf bytes.Buffer
		opts := protocol.RunOptions{
			Scheduler: sched,
			Mode:      j.mode,
			Crashes:   crashes,
			MaxSteps:  b.MaxSteps,
			Context:   ctx,
			Budget:    b,
		}
		if spec.Trace {
			opts.TraceText = &traceBuf
		}
		res, reason, err = d.Run(xs, opts)
		if spec.Trace {
			j.mu.Lock()
			j.trace = traceBuf.String()
			j.mu.Unlock()
		}
	}
	if err != nil {
		j.finish(OutcomeFailed, reason, nil, err)
		return
	}

	out := RunResult{
		Graph:       g.Name(),
		Engine:      spec.Engine,
		Scheduler:   schedName,
		Workers:     spec.Workers,
		N:           g.N(),
		Steps:       int64(res.Steps),
		Contract:    d.ContractLabel(),
		Terminated:  res.TerminatedCount(),
		MaxRounds:   res.MaxActivations(),
		ColorsTotal: len(res.Outputs),
	}
	for _, c := range res.Crashed {
		if c {
			out.Crashed++
		}
	}
	if d.Bound != nil {
		out.Bound = d.Bound(g.N())
	}
	shown := len(res.Outputs)
	if shown > maxColorsShown {
		shown = maxColorsShown
	}
	out.ColorsShown = shown
	out.Colors = make([]int, shown)
	for i := 0; i < shown; i++ {
		switch {
		case res.Done[i]:
			out.Colors[i] = res.Outputs[i]
		case res.Values != nil:
			// Stabilizing protocols never terminate: the published
			// register value is the process's current color.
			out.Colors[i] = res.Values[i]
		default:
			out.Colors[i] = -1
		}
	}
	// Verdicts: on a PARTIAL run the validity predicates still hold for
	// the terminated region (they count only terminated processes), so
	// they are reported either way. Contract-first protocols report one
	// labeled verdict per contract property.
	if d.Contract != nil && d.Contract.Labeled() {
		for _, p := range d.Contract.Properties() {
			v := Verdict{Name: fmt.Sprintf("contract=%s property=%s", d.Contract.ContractName(), p.Name), OK: true}
			if err := p.Check(g, res); err != nil {
				v.OK = false
				v.Error = err.Error()
			}
			out.Verdicts = append(out.Verdicts, v)
		}
	} else if d.Checks != nil {
		for _, c := range d.Checks(g) {
			v := Verdict{Name: c.Name, OK: true}
			if err := c.Check(res); err != nil {
				v.OK = false
				v.Error = err.Error()
			}
			out.Verdicts = append(out.Verdicts, v)
		}
	} else if d.Validity != nil {
		v := Verdict{Name: "validity", OK: true}
		if err := d.Validity(g, res); err != nil {
			v.OK = false
			v.Error = err.Error()
		}
		out.Verdicts = append(out.Verdicts, v)
	}

	outcome := OutcomeOK
	if reason != runctl.StopNone {
		outcome = OutcomePartial
	}
	j.finish(outcome, reason, out, nil)
}

// maxColorsShown bounds the output vector shipped in a run result; full
// vectors would make million-node results megabytes of JSON.
const maxColorsShown = 256

func runBig(ctx context.Context, d *protocol.Descriptor, xs []int, spec JobSpec,
	crashes map[int]int, b runctl.Budget, met *metrics.Run) (sim.Result, runctl.StopReason, string, error) {
	k, err := d.BigKernel(xs)
	if err != nil {
		return sim.Result{}, runctl.StopNone, "", err
	}
	e := bigsim.New(k)
	e.SetIncremental(true)
	e.SetMetrics(met)
	for i, c := range crashes {
		e.CrashAfter(i, c)
	}
	var reason runctl.StopReason
	var schedName string
	if spec.Workers > 1 {
		schedName = fmt.Sprintf("sharded-rr(%d)", spec.Workers)
		reason, err = e.RunSharded(ctx, spec.Workers, b)
	} else {
		sched, perr := bigsim.ParseSched(spec.Sched, spec.Seed)
		if perr != nil {
			return sim.Result{}, runctl.StopNone, "", perr
		}
		schedName = sched.Name()
		reason, err = e.RunBudget(ctx, sched, b)
	}
	if err != nil {
		return sim.Result{}, reason, schedName, err
	}
	return e.Result(), reason, schedName, nil
}

func (s *Server) executeCheck(ctx context.Context, j *job) {
	spec := j.spec
	d := j.desc

	// Singleton reduction: identical to the modelcheck CLI — sound only
	// for protocols that actually have interleaved semantics.
	single := j.mode == sim.ModeInterleaved && len(d.Modes) > 0
	b := engineBudget(j.budget)
	opt := model.Options{
		SingletonsOnly: single,
		MaxStates:      spec.MaxStates,
		Workers:        spec.Workers,
		Context:        ctx,
		Budget:         b,
		Metrics:        j.met,
	}
	if spec.Depth > 0 {
		opt.MaxDepth = spec.Depth
	} else if d.DefaultCheckDepth > 0 {
		opt.MaxDepth = d.DefaultCheckDepth
	}

	if spec.Sweep {
		rep, err := d.Sweep(spec.N, j.mode, opt)
		if err != nil {
			j.finish(OutcomeFailed, runctl.StopNone, nil, err)
			return
		}
		out := CheckResult{
			Summary:  rep.String(),
			Contract: d.ContractLabel(),
			States:   rep.States,
			Terminal: rep.Terminal,
			Sweep:    true,
		}
		if rep.Violations > 0 {
			out.Violations = append(out.Violations, fmt.Sprintf("%d weighted violations across the sweep", rep.Violations))
		}
		outcome := OutcomeOK
		var reason runctl.StopReason
		if rep.Partial {
			outcome, reason = OutcomePartial, rep.StopReason
		}
		j.finish(outcome, reason, out, nil)
		return
	}

	xs := ids.MustGenerate(ids.Increasing, spec.N, 0)
	rep, err := d.Check(xs, j.mode, opt)
	if err != nil {
		j.finish(OutcomeFailed, runctl.StopNone, nil, err)
		return
	}
	out := CheckResult{
		Summary:    rep.String(),
		Contract:   d.ContractLabel(),
		States:     int64(rep.States),
		Terminal:   int64(rep.Terminal),
		CycleFound: rep.CycleFound,
		Truncated:  rep.Truncated,
	}
	out.Violations = append(out.Violations, rep.Violations...)
	if rep.ViolationWitness != nil {
		if data, err := schedule.MarshalSteps(rep.ViolationWitness); err == nil {
			out.ViolationWitness = string(data)
		}
	}
	if rep.CycleFound {
		if p, err := schedule.MarshalSteps(rep.CyclePrefix); err == nil {
			out.CyclePrefix = string(p)
		}
		if l, err := schedule.MarshalSteps(rep.CycleLoop); err == nil {
			out.CycleLoop = string(l)
		}
	}
	outcome := OutcomeOK
	var reason runctl.StopReason
	if rep.Partial {
		outcome, reason = OutcomePartial, rep.StopReason
	}
	j.finish(outcome, reason, out, nil)
}

func (s *Server) executeFuzz(ctx context.Context, j *job) {
	spec := j.spec
	rep, err := fuzzsched.Campaign(ctx, fuzzsched.Config{
		Alg:      spec.Alg,
		N:        spec.N,
		Topology: spec.Topology,
		Mode:     j.mode,
		Seed:     spec.Seed,
		Campaign: spec.Campaign,
		// One in-process worker per job: server-level parallelism comes
		// from the pool, and a single job must not grab GOMAXPROCS workers.
		Workers:   1,
		ConcEvery: spec.ConcEvery,
		Budget:    engineBudget(j.budget),
		Metrics:   j.met,
	})
	if err != nil {
		j.finish(OutcomeFailed, runctl.StopNone, nil, err)
		return
	}
	out := FuzzResult{
		Summary:    rep.String(),
		Contract:   rep.Contract,
		Schedules:  rep.Schedules,
		StatesSeen: rep.StatesSeen,
	}
	for _, f := range rep.Violations {
		out.Violations = append(out.Violations, FuzzFinding{Detail: f.String(), Witness: f.WitnessJSON})
	}
	for _, d := range rep.Divergences {
		out.Divergences = append(out.Divergences, strings.TrimSpace(d.String()))
	}
	outcome := OutcomeOK
	var reason runctl.StopReason
	if rep.Partial {
		outcome, reason = OutcomePartial, rep.StopReason
	}
	j.finish(outcome, reason, out, nil)
}
