package serve_test

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"asynccycle/internal/serve"
)

// TestRunJobTopology submits a dp1 run on a random Δ-bounded graph — the
// colorserved leg of the general-graph smoke path — and checks the result
// names the graph and every verdict passes.
func TestRunJobTopology(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 2})
	resp, v := post(t, ts, `{"kind":"run","alg":"dp1","topology":"random:4:1","n":20,"sched":"rr","seed":5,"crash":0.1}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	done := waitJob(t, ts, v.ID)
	if done.Status != serve.StatusDone || done.Outcome != serve.OutcomeOK {
		t.Fatalf("job did not complete ok: %+v", done)
	}
	res := getResult(t, ts, v.ID)
	var run serve.RunResult
	if err := json.Unmarshal(res["result"], &run); err != nil {
		t.Fatal(err)
	}
	if run.Graph != "G(20,Δ≤4,seed=1)" {
		t.Fatalf("graph = %q, want the random graph", run.Graph)
	}
	if run.Bound != 0 {
		t.Fatalf("off-family run reported a cycle round bound: %d", run.Bound)
	}
	if len(run.Verdicts) == 0 {
		t.Fatal("no verdicts reported")
	}
	for _, verdict := range run.Verdicts {
		if !verdict.OK {
			t.Errorf("verdict %s failed: %s", verdict.Name, verdict.Error)
		}
	}
}

// TestRunJobTopologyFixN: sizes round through the family normalizer at
// validation time, so a torus job with an unfactorable n runs on the
// nearest grid instead of failing at execution.
func TestRunJobTopologyFixN(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 1})
	resp, v := post(t, ts, `{"kind":"run","alg":"six","topology":"torus","n":10,"sched":"rr"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	done := waitJob(t, ts, v.ID)
	if done.Outcome != serve.OutcomeOK {
		t.Fatalf("job outcome: %+v", done)
	}
	res := getResult(t, ts, v.ID)
	var run serve.RunResult
	if err := json.Unmarshal(res["result"], &run); err != nil {
		t.Fatal(err)
	}
	if run.Graph != "T3x4" || run.N != 12 {
		t.Fatalf("torus n=10 did not round to T3x4: %+v", run)
	}
}

// TestFuzzJobTopology runs a fuzz campaign on the torus through the job
// surface; the report must name the topology and come back clean.
func TestFuzzJobTopology(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 1})
	resp, v := post(t, ts, `{"kind":"fuzz","alg":"dp1","topology":"torus","n":9,"campaign":8,"seed":3}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	done := waitJob(t, ts, v.ID)
	if done.Outcome != serve.OutcomeOK {
		t.Fatalf("job outcome: %+v", done)
	}
	res := getResult(t, ts, v.ID)
	var fz serve.FuzzResult
	if err := json.Unmarshal(res["result"], &fz); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fz.Summary, "topology=torus") {
		t.Errorf("summary does not name the topology: %s", fz.Summary)
	}
	if len(fz.Violations) != 0 || len(fz.Divergences) != 0 {
		t.Errorf("unexpected findings: %s", fz.Summary)
	}
}

// TestTopologyValidationRejects pins the 400-level refusals: undeclared
// families, unknown specs, and the cycle-only big engine.
func TestTopologyValidationRejects(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 1})
	cases := []struct {
		name, spec string
	}{
		{"undeclared family", `{"kind":"run","alg":"five","topology":"complete"}`},
		{"unknown spec", `{"kind":"run","alg":"six","topology":"mobius"}`},
		{"big off cycle", `{"kind":"run","alg":"six","topology":"torus","n":9,"engine":"big"}`},
		{"big shuffled cycle", `{"kind":"run","alg":"six","topology":"cycle+shuffled:2","n":12,"engine":"big"}`},
	}
	for _, tc := range cases {
		resp, _ := post(t, ts, tc.spec)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
}
