// Package renaming implements the classic rank-based wait-free
// (2n−1)-renaming algorithm for asynchronous shared memory (Attiya et al.,
// JACM 1990; [7, Algorithm 55] in the paper's references), which the paper
// cites as the ancestor of Algorithm 2's color-picking component (§1.3).
//
// It runs as a sim.Node on the complete graph: on K_n every process reads
// every register, so the engine's local immediate snapshots become full
// immediate snapshots and the model coincides with standard wait-free
// shared memory (paper §2.3, Property 2.3). Each process repeatedly
// proposes the r-th smallest name not proposed by others, where r is the
// rank of its identifier among the participants it sees, and decides when
// its proposal is conflict-free. Names are 0-based, so the (2n−1)-name
// guarantee reads: every output is in {0, …, 2n−2}.
package renaming

import (
	"sort"

	"asynccycle/internal/sim"
)

// Val is the register content: the identifier and the current proposal
// (valid only once Proposing).
type Val struct {
	ID        int
	Name      int
	Proposing bool
}

// HashFingerprint implements sim.Hashable.
func (v *Val) HashFingerprint(h *sim.FPHasher) {
	h.HashInt(v.ID)
	h.HashInt(v.Name)
	h.HashBool(v.Proposing)
}

// Proc is one renaming process.
type Proc struct {
	id        int
	name      int
	proposing bool
}

// New returns a renaming process with the given distinct non-negative
// identifier.
func New(id int) *Proc { return &Proc{id: id} }

// ID returns the process identifier.
func (p *Proc) ID() int { return p.id }

// Publish implements sim.Node.
func (p *Proc) Publish() Val {
	return Val{ID: p.id, Name: p.name, Proposing: p.proposing}
}

// Observe implements sim.Node.
func (p *Proc) Observe(view []sim.Cell[Val]) sim.Decision {
	var proposals []int // names proposed by other processes
	rank := 1           // rank of our identifier among seen participants
	conflict := false
	for _, c := range view {
		if !c.Present {
			continue
		}
		if c.Val.ID < p.id {
			rank++
		}
		if c.Val.Proposing {
			proposals = append(proposals, c.Val.Name)
			if p.proposing && c.Val.Name == p.name {
				conflict = true
			}
		}
	}
	if p.proposing && !conflict {
		return sim.Decision{Return: true, Output: p.name}
	}
	p.name = nthFree(proposals, rank)
	p.proposing = true
	return sim.Decision{}
}

// nthFree returns the r-th smallest (1-based) natural number not in taken.
func nthFree(taken []int, r int) int {
	sort.Ints(taken)
	candidate := 0
	for _, t := range taken {
		if t > candidate {
			// All names in [candidate, t) are free.
			if free := t - candidate; free >= r {
				return candidate + r - 1
			} else {
				r -= free
			}
		}
		if t >= candidate {
			candidate = t + 1
		}
	}
	return candidate + r - 1
}

// Clone implements sim.Node.
func (p *Proc) Clone() sim.Node[Val] {
	cp := *p
	return &cp
}

// HashFingerprint implements sim.Hashable.
func (p *Proc) HashFingerprint(h *sim.FPHasher) {
	h.HashInt(p.id)
	h.HashInt(p.name)
	h.HashBool(p.proposing)
}

var _ sim.Node[Val] = (*Proc)(nil)

// NewNodes builds one process per identifier, as engine-ready nodes.
func NewNodes(xs []int) []sim.Node[Val] {
	nodes := make([]sim.Node[Val], len(xs))
	for i, x := range xs {
		nodes[i] = New(x)
	}
	return nodes
}

// MaxName returns the largest name the (2n−1)-renaming guarantee permits
// for n processes: 2n−2 (names are 0-based).
func MaxName(n int) int { return 2*n - 2 }
