package renaming

import (
	"fmt"
	"testing"
	"testing/quick"

	"asynccycle/internal/graph"
	"asynccycle/internal/ids"
	"asynccycle/internal/model"
	"asynccycle/internal/schedule"
	"asynccycle/internal/sim"
)

func TestNthFree(t *testing.T) {
	tests := []struct {
		taken []int
		r     int
		want  int
	}{
		{nil, 1, 0},
		{nil, 3, 2},
		{[]int{0}, 1, 1},
		{[]int{1}, 1, 0},
		{[]int{1}, 2, 2},
		{[]int{0, 1, 2}, 1, 3},
		{[]int{0, 2, 4}, 3, 5},
		{[]int{1, 1, 3}, 2, 2}, // duplicates collapse
		{[]int{5}, 5, 4},       //
		{[]int{0, 1, 3}, 2, 4}, // 2 free, then 4
	}
	for _, tt := range tests {
		if got := nthFree(append([]int(nil), tt.taken...), tt.r); got != tt.want {
			t.Errorf("nthFree(%v, %d) = %d, want %d", tt.taken, tt.r, got, tt.want)
		}
	}
}

// TestNthFreeQuick: the result is never in taken and exactly r-1 free
// values lie below it.
func TestNthFreeQuick(t *testing.T) {
	prop := func(raw []uint8, rRaw uint8) bool {
		taken := make([]int, len(raw))
		for i, v := range raw {
			taken[i] = int(v) % 16
		}
		r := 1 + int(rRaw)%8
		got := nthFree(append([]int(nil), taken...), r)
		inTaken := func(v int) bool {
			for _, u := range taken {
				if u == v {
					return true
				}
			}
			return false
		}
		if inTaken(got) {
			return false
		}
		freeBelow := 0
		for v := 0; v < got; v++ {
			if !inTaken(v) {
				freeBelow++
			}
		}
		return freeBelow == r-1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func runRenaming(t *testing.T, n int, s schedule.Scheduler) sim.Result {
	t.Helper()
	g, err := graph.Complete(n)
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.NewEngine(g, NewNodes(ids.RandomIDs(n, int64(n))))
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(s, 10_000*n+100_000)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRenamingUniqueAndBounded(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8, 16, 32} {
		for _, s := range []schedule.Scheduler{
			schedule.Synchronous{},
			schedule.NewRoundRobin(1),
			schedule.NewRandomOne(int64(n)),
			schedule.NewBurst(3),
		} {
			res := runRenaming(t, n, s)
			seen := map[int]bool{}
			for i := 0; i < n; i++ {
				if !res.Done[i] {
					t.Fatalf("n=%d %s: process %d did not decide", n, s.Name(), i)
				}
				name := res.Outputs[i]
				if name < 0 || name > MaxName(n) {
					t.Errorf("n=%d %s: name %d outside {0..%d}", n, s.Name(), name, MaxName(n))
				}
				if seen[name] {
					t.Errorf("n=%d %s: duplicate name %d", n, s.Name(), name)
				}
				seen[name] = true
			}
		}
	}
}

func TestRenamingWithCrashes(t *testing.T) {
	n := 12
	g, _ := graph.Complete(n)
	e, _ := sim.NewEngine(g, NewNodes(ids.RandomIDs(n, 3)))
	for i := 0; i < n; i += 3 {
		e.CrashAfter(i, i%3)
	}
	res, err := e.Run(schedule.NewRandomSubset(0.4, 11), 500_000)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for i := 0; i < n; i++ {
		if res.Crashed[i] {
			continue
		}
		if !res.Done[i] {
			t.Fatalf("survivor %d did not decide", i)
		}
		if seen[res.Outputs[i]] {
			t.Errorf("duplicate name %d", res.Outputs[i])
		}
		seen[res.Outputs[i]] = true
		if res.Outputs[i] > MaxName(n) {
			t.Errorf("name %d exceeds bound", res.Outputs[i])
		}
	}
}

// TestRenamingExhaustive model-checks the full (2n−1)-renaming contract —
// wait-freedom, uniqueness, name bound — over every schedule on K2 and K3.
func TestRenamingExhaustive(t *testing.T) {
	for _, n := range []int{2, 3} {
		g, _ := graph.Complete(n)
		xs := make([]int, n)
		for i := range xs {
			xs[i] = (i + 1) * 7 // arbitrary distinct ids
		}
		e, _ := sim.NewEngine(g, NewNodes(xs))
		inv := func(e *sim.Engine[Val]) error {
			r := e.Result()
			seen := map[int]int{}
			for i, out := range r.Outputs {
				if !r.Done[i] {
					continue
				}
				if out < 0 || out > MaxName(n) {
					return fmt.Errorf("name %d outside {0..%d}", out, MaxName(n))
				}
				if j, dup := seen[out]; dup {
					return fmt.Errorf("processes %d and %d share name %d", j, i, out)
				}
				seen[out] = i
			}
			return nil
		}
		rep := model.Explore(e, model.Options{SingletonsOnly: true}, inv)
		if !rep.Ok() {
			t.Fatalf("K%d verification failed: %s %v", n, rep, rep.Violations)
		}
	}
}

func TestProcAccessors(t *testing.T) {
	p := New(17)
	if p.ID() != 17 {
		t.Errorf("ID = %d", p.ID())
	}
	v := p.Publish()
	if v.ID != 17 || v.Proposing {
		t.Errorf("Publish = %+v", v)
	}
	c := p.Clone().(*Proc)
	c.Observe(make([]sim.Cell[Val], 0))
	if p.proposing {
		t.Error("observing the clone mutated the original")
	}
}

func TestMaxName(t *testing.T) {
	if MaxName(3) != 4 || MaxName(10) != 18 {
		t.Error("MaxName wrong")
	}
}
