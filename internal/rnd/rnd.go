// Package rnd provides the deterministic seed-derivation primitive shared
// by every layer that needs independent pseudo-random streams from a single
// campaign seed: the concurrent runtime's per-node jitter sources and the
// schedule fuzzer's per-cell generators.
//
// The derivation is a splitmix64 finalizer over the (seed, lane) pair.
// Unlike additive schemes such as seed + lane*0x9E3779B9 — whose streams
// for adjacent seeds are shifted copies of each other (seed 1, lane 2 and
// seed 2, lane 1 may collide outright) — the full avalanche mix guarantees
// that every bit of seed and lane affects every bit of the derived value,
// so distinct (seed, lane) pairs yield uncorrelated streams.
package rnd

// SplitMix64 is the splitmix64 finalizer (Steele, Lea & Flood; the same
// mix java.util.SplittableRandom uses): a bijective avalanche function on
// 64-bit values.
func SplitMix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// Derive maps a (seed, lane) pair to a stream seed: two mixing rounds so
// the lane is absorbed through a full avalanche before the seed is folded
// in. Distinct pairs produce distinct values (the composition is injective
// in seed for each lane and avalanches in both arguments), and the result
// is never 0, so it can feed sources that reserve the zero seed.
func Derive(seed int64, lane int) int64 {
	v := SplitMix64(SplitMix64(uint64(seed)) ^ uint64(int64(lane)))
	if v == 0 {
		v = 1
	}
	return int64(v)
}
