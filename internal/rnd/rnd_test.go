package rnd

import (
	"math/rand"
	"testing"
)

func TestSplitMix64Avalanche(t *testing.T) {
	// Flipping any single input bit must flip roughly half the output bits
	// (a coarse avalanche check: between 16 and 48 of 64).
	x := uint64(0x0123456789ABCDEF)
	base := SplitMix64(x)
	for bit := 0; bit < 64; bit++ {
		diff := base ^ SplitMix64(x^(1<<bit))
		n := 0
		for d := diff; d != 0; d &= d - 1 {
			n++
		}
		if n < 16 || n > 48 {
			t.Errorf("bit %d: only %d output bits flipped", bit, n)
		}
	}
}

func TestDeriveDistinctPairs(t *testing.T) {
	// Distinct (seed, lane) pairs must give distinct stream seeds — in
	// particular the pairs the old additive scheme conflated, such as
	// (seed, lane) vs (seed+delta, lane-1) for any fixed stride delta.
	seen := map[int64][2]int64{}
	for seed := int64(-50); seed <= 50; seed++ {
		for lane := 0; lane < 100; lane++ {
			v := Derive(seed, lane)
			if v == 0 {
				t.Fatalf("Derive(%d, %d) = 0", seed, lane)
			}
			if prev, dup := seen[v]; dup {
				t.Fatalf("Derive collision: (%d,%d) and (%d,%d) both -> %d", prev[0], prev[1], seed, lane, v)
			}
			seen[v] = [2]int64{seed, int64(lane)}
		}
	}
}

func TestDeriveDecorrelatedStreams(t *testing.T) {
	// The first draws of streams for adjacent seeds at shifted lanes must
	// not coincide — the failure mode of seed + lane*stride derivations,
	// where (seed, lane+1) and (seed+stride, lane) are the same stream.
	for lane := 0; lane < 20; lane++ {
		a := rand.New(rand.NewSource(Derive(1, lane+1)))
		b := rand.New(rand.NewSource(Derive(1+0x9E3779B9, lane)))
		if a.Int63() == b.Int63() {
			t.Fatalf("lane %d: shifted (seed, lane) pairs share a stream", lane)
		}
	}
}

func TestDeriveDeterministic(t *testing.T) {
	if Derive(42, 7) != Derive(42, 7) {
		t.Fatal("Derive is not a pure function")
	}
}
