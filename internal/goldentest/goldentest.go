// Package goldentest pins CLI output byte-for-byte: each pinned invocation
// renders its full stdout (and error, if any) into a golden file under the
// caller's testdata/golden directory. Regenerate with GOLDEN_UPDATE=1; any
// later refactor of the command's dispatch path must reproduce the files
// exactly, which is how the registry migration proves six|five|fast output
// unchanged at every prior flag combination.
package goldentest

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Name derives a stable file name from an argument vector.
func Name(args []string) string {
	if len(args) == 0 {
		return "default"
	}
	s := strings.Join(args, "_")
	s = strings.NewReplacer("-", "", ".", "p", "/", "").Replace(s)
	return s
}

// Render serializes one invocation: the argument vector, the produced
// output, and the returned error (if any) in a fixed layout.
func Render(args []string, out string, err error) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "# args: %s\n", strings.Join(args, " "))
	b.WriteString(out)
	if err != nil {
		fmt.Fprintf(&b, "# err: %v\n", err)
	}
	return b.String()
}

// Check runs one pinned invocation and compares it against its golden
// file. With GOLDEN_UPDATE=1 in the environment it (re)writes the file
// instead and skips the comparison.
func Check(t *testing.T, args []string, run func(args []string, w io.Writer) error) {
	t.Helper()
	var out bytes.Buffer
	err := run(args, &out)
	got := Render(args, out.String(), err)
	path := filepath.Join("testdata", "golden", Name(args)+".txt")

	if os.Getenv("GOLDEN_UPDATE") == "1" {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatalf("missing golden file %s (regenerate with GOLDEN_UPDATE=1 go test): %v", path, rerr)
	}
	if got != string(want) {
		t.Errorf("output differs from %s\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}
