// Package par provides a bounded worker pool with deterministic result
// merging, the execution layer under the experiment sweeps and the model
// checker's parallel frontier.
//
// The contract is the one SPIN-style explicit-state checkers and
// deterministic-replay harnesses rely on: work items are independent, each
// item's result depends only on the item (never on execution order), and
// results are delivered in input order. Under that contract Map is
// observably identical to a serial loop — callers that derive their
// randomness from item coordinates (rather than from shared mutable state)
// therefore produce byte-identical output at any parallelism level.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Map applies f to every item, fanning the calls out over at most workers
// goroutines, and returns the results in input order: out[i] == f(i,
// items[i]). workers <= 0 means runtime.GOMAXPROCS(0); workers == 1 (or a
// single item) runs inline with no goroutines, so the serial path is the
// parallel path with the pool removed.
//
// f must treat items as independent: it must not mutate shared state
// without its own synchronization, and its result must not depend on the
// completion order of other items. A panic in any call is re-raised in the
// caller after the pool drains, so no goroutine is leaked.
func Map[T, R any](workers int, items []T, f func(i int, item T) R) []R {
	out := make([]R, len(items))
	if len(items) == 0 {
		return out
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(items) {
		workers = len(items)
	}
	if workers <= 1 {
		for i := range items {
			out[i] = f(i, items[i])
		}
		return out
	}

	var (
		next     atomic.Int64 // index of the next unclaimed item
		wg       sync.WaitGroup
		panicked atomic.Bool
		panicVal any
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) || panicked.Load() {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							// Keep the first panic only; racing writers are
							// excluded by the CompareAndSwap.
							if panicked.CompareAndSwap(false, true) {
								panicVal = r
							}
						}
					}()
					out[i] = f(i, items[i])
				}()
			}
		}()
	}
	wg.Wait()
	if panicked.Load() {
		panic(panicVal)
	}
	return out
}
