// Package par provides a bounded worker pool with deterministic result
// merging, the execution layer under the experiment sweeps and the model
// checker's parallel frontier.
//
// The contract is the one SPIN-style explicit-state checkers and
// deterministic-replay harnesses rely on: work items are independent, each
// item's result depends only on the item (never on execution order), and
// results are delivered in input order. Under that contract Map is
// observably identical to a serial loop — callers that derive their
// randomness from item coordinates (rather than from shared mutable state)
// therefore produce byte-identical output at any parallelism level.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"asynccycle/internal/metrics"
)

// Map applies f to every item, fanning the calls out over at most workers
// goroutines, and returns the results in input order: out[i] == f(i,
// items[i]). workers <= 0 means runtime.GOMAXPROCS(0); workers == 1 (or a
// single item) runs inline with no goroutines, so the serial path is the
// parallel path with the pool removed.
//
// f must treat items as independent: it must not mutate shared state
// without its own synchronization, and its result must not depend on the
// completion order of other items. A panic in any call is re-raised in the
// caller after the pool drains, so no goroutine is leaked.
func Map[T, R any](workers int, items []T, f func(i int, item T) R) []R {
	out := make([]R, len(items))
	if len(items) == 0 {
		return out
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(items) {
		workers = len(items)
	}
	if workers <= 1 {
		for i := range items {
			out[i] = f(i, items[i])
		}
		return out
	}

	var (
		next     atomic.Int64 // index of the next unclaimed item
		wg       sync.WaitGroup
		panicked atomic.Bool
		panicVal any
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) || panicked.Load() {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							// Keep the first panic only; racing writers are
							// excluded by the CompareAndSwap.
							if panicked.CompareAndSwap(false, true) {
								panicVal = r
							}
						}
					}()
					out[i] = f(i, items[i])
				}()
			}
		}()
	}
	wg.Wait()
	if panicked.Load() {
		panic(panicVal)
	}
	return out
}

// MapCtx is Map with run control and observability: workers stop claiming
// new items once ctx is cancelled (items already being processed run to
// completion), and each finished item is recorded into ws (which may be
// nil). It returns the results plus a done slice marking which items
// actually ran — out[i] is f's result when done[i], the zero value
// otherwise. A nil ctx behaves like context.Background, making MapCtx with
// all items done observably identical to Map: results are delivered in
// input order under the same independence contract, so deterministic
// callers stay byte-identical at every parallelism level.
func MapCtx[T, R any](ctx context.Context, workers int, items []T, ws *metrics.WorkerStats, f func(i int, item T) R) ([]R, []bool) {
	out := make([]R, len(items))
	done := make([]bool, len(items))
	if len(items) == 0 {
		return out, done
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(items) {
		workers = len(items)
	}
	if workers <= 1 {
		for i := range items {
			if ctx.Err() != nil {
				return out, done
			}
			start := time.Now()
			out[i] = f(i, items[i])
			ws.Record(0, time.Since(start))
			done[i] = true
		}
		return out, done
	}

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Bool
		panicVal any
	)
	doneCh := ctx.Done()
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		w := w
		go func() {
			defer wg.Done()
			for {
				select {
				case <-doneCh:
					return
				default:
				}
				i := int(next.Add(1)) - 1
				if i >= len(items) || panicked.Load() {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							if panicked.CompareAndSwap(false, true) {
								panicVal = r
							}
						}
					}()
					start := time.Now()
					out[i] = f(i, items[i])
					ws.Record(w, time.Since(start))
					done[i] = true
				}()
			}
		}()
	}
	wg.Wait()
	if panicked.Load() {
		panic(panicVal)
	}
	return out, done
}

// AllDone reports whether every item of a MapCtx done slice ran.
func AllDone(done []bool) bool {
	for _, d := range done {
		if !d {
			return false
		}
	}
	return true
}
