package par

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"

	"asynccycle/internal/metrics"
)

func TestMapOrderAndValues(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i * 3
	}
	for _, workers := range []int{0, 1, 2, 4, 7, 100, 1000} {
		out := Map(workers, items, func(i, item int) string {
			return fmt.Sprintf("%d:%d", i, item)
		})
		if len(out) != len(items) {
			t.Fatalf("workers=%d: %d results for %d items", workers, len(out), len(items))
		}
		for i, got := range out {
			want := fmt.Sprintf("%d:%d", i, i*3)
			if got != want {
				t.Errorf("workers=%d: out[%d] = %q, want %q", workers, i, got, want)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out := Map(4, nil, func(i, item int) int { return item })
	if len(out) != 0 {
		t.Fatalf("got %d results for empty input", len(out))
	}
}

// TestMapDeterministicMerge is the load-bearing property: the merged result
// slice is identical at every parallelism level, even though execution
// order differs.
func TestMapDeterministicMerge(t *testing.T) {
	items := make([]int, 257)
	for i := range items {
		items[i] = i
	}
	f := func(i, item int) uint64 {
		// A result depending only on the item's coordinates.
		h := uint64(item)*0x9E3779B97F4A7C15 + 1
		return h ^ h>>29
	}
	serial := Map(1, items, f)
	for _, workers := range []int{2, 3, 8, 64} {
		got := Map(workers, items, f)
		for i := range serial {
			if got[i] != serial[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, got[i], serial[i])
			}
		}
	}
}

func TestMapEachItemOnce(t *testing.T) {
	counts := make([]atomic.Int32, 500)
	Map(8, make([]struct{}, len(counts)), func(i int, _ struct{}) struct{} {
		counts[i].Add(1)
		return struct{}{}
	})
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Errorf("item %d executed %d times", i, c)
		}
	}
}

func TestMapPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic was swallowed")
		}
		if s, ok := r.(string); !ok || s != "boom" {
			t.Fatalf("unexpected panic value %v", r)
		}
	}()
	Map(4, []int{0, 1, 2, 3, 4, 5, 6, 7}, func(i, item int) int {
		if item == 3 {
			panic("boom")
		}
		return item
	})
}

func TestMapCtxAllDoneMatchesMap(t *testing.T) {
	items := make([]int, 200)
	for i := range items {
		items[i] = i
	}
	want := Map(4, items, func(i, item int) int { return item * item })
	for _, workers := range []int{1, 4, 0} {
		got, done := MapCtx(nil, workers, items, nil, func(i, item int) int { return item * item })
		if !AllDone(done) {
			t.Fatalf("workers=%d: not all items done without cancellation", workers)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestMapCtxStopsClaimingOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	items := make([]int, 1000)
	var ran atomic.Int64
	out, done := MapCtx(ctx, 4, items, nil, func(i, item int) int {
		if ran.Add(1) == 10 {
			cancel()
		}
		return i + 1
	})
	if AllDone(done) {
		t.Fatal("cancellation did not stop the pool from claiming items")
	}
	// Every claimed item ran to completion and recorded its result; every
	// unclaimed one is zero-valued.
	completed := 0
	for i, d := range done {
		if d {
			completed++
			if out[i] != i+1 {
				t.Fatalf("done item %d has result %d, want %d", i, out[i], i+1)
			}
		} else if out[i] != 0 {
			t.Fatalf("skipped item %d has non-zero result %d", i, out[i])
		}
	}
	if completed == 0 || completed == len(items) {
		t.Fatalf("completed = %d, want strictly partial", completed)
	}
}

func TestMapCtxSerialCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, done := MapCtx(ctx, 1, []int{1, 2, 3}, nil, func(i, item int) int { return item })
	if AllDone(done) || done[0] {
		t.Fatalf("pre-cancelled serial MapCtx ran items: done=%v out=%v", done, out)
	}
}

func TestMapCtxRecordsWorkerStats(t *testing.T) {
	r := metrics.NewRun()
	ws := r.SetWorkers(4)
	items := make([]int, 64)
	_, done := MapCtx(context.Background(), 4, items, ws, func(i, item int) int { return i })
	if !AllDone(done) {
		t.Fatal("expected all items done")
	}
	total := int64(0)
	for _, n := range r.Snapshot().WorkerItems {
		total += n
	}
	if total != int64(len(items)) {
		t.Fatalf("worker stats recorded %d items, want %d", total, len(items))
	}
}
