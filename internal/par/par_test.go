package par

import (
	"fmt"
	"sync/atomic"
	"testing"
)

func TestMapOrderAndValues(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i * 3
	}
	for _, workers := range []int{0, 1, 2, 4, 7, 100, 1000} {
		out := Map(workers, items, func(i, item int) string {
			return fmt.Sprintf("%d:%d", i, item)
		})
		if len(out) != len(items) {
			t.Fatalf("workers=%d: %d results for %d items", workers, len(out), len(items))
		}
		for i, got := range out {
			want := fmt.Sprintf("%d:%d", i, i*3)
			if got != want {
				t.Errorf("workers=%d: out[%d] = %q, want %q", workers, i, got, want)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out := Map(4, nil, func(i, item int) int { return item })
	if len(out) != 0 {
		t.Fatalf("got %d results for empty input", len(out))
	}
}

// TestMapDeterministicMerge is the load-bearing property: the merged result
// slice is identical at every parallelism level, even though execution
// order differs.
func TestMapDeterministicMerge(t *testing.T) {
	items := make([]int, 257)
	for i := range items {
		items[i] = i
	}
	f := func(i, item int) uint64 {
		// A result depending only on the item's coordinates.
		h := uint64(item)*0x9E3779B97F4A7C15 + 1
		return h ^ h>>29
	}
	serial := Map(1, items, f)
	for _, workers := range []int{2, 3, 8, 64} {
		got := Map(workers, items, f)
		for i := range serial {
			if got[i] != serial[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, got[i], serial[i])
			}
		}
	}
}

func TestMapEachItemOnce(t *testing.T) {
	counts := make([]atomic.Int32, 500)
	Map(8, make([]struct{}, len(counts)), func(i int, _ struct{}) struct{} {
		counts[i].Add(1)
		return struct{}{}
	})
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Errorf("item %d executed %d times", i, c)
		}
	}
}

func TestMapPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic was swallowed")
		}
		if s, ok := r.(string); !ok || s != "boom" {
			t.Fatalf("unexpected panic value %v", r)
		}
	}()
	Map(4, []int{0, 1, 2, 3, 4, 5, 6, 7}, func(i, item int) int {
		if item == 3 {
			panic("boom")
		}
		return item
	})
}
