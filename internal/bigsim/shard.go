package bigsim

import (
	"context"
	"sync"

	"asynccycle/internal/runctl"
	"asynccycle/internal/schedule"
)

// shardStat is one worker's merge-free statistics: each worker writes only
// its own (cacheline-padded) entry during the interior phase, and the
// coordinator folds the entries into the engine counters at the
// super-round barrier — no atomics, no contention on the warm path.
type shardStat struct {
	performed int64
	settled   int64 // nodes that left the working set (terminated or crashed)
	checkErr  error
	_         [24]byte // pad to a cacheline so adjacent workers don't false-share
}

// RunSharded drives the engine to completion with one worker goroutine per
// arc of schedule.ShardBounds(n, workers), replaying the canonical
// sharded round-robin schedule (schedule.ShardedRoundRobin) in parallel:
// each super-round activates every working interior node — arcs
// concurrently, ascending within an arc — and then every working boundary
// node serially in ascending order.
//
// The parallel replay is state-for-state equal to the serial schedule:
// singleton activations write only the activated node's slots and bitset
// bits, interior nodes of one arc read registers only inside their own arc
// [lo, hi), and the 64-aligned cuts keep concurrent bitset word writes on
// disjoint words — so the per-arc interior subsequences commute with each
// other (full argument in DESIGN.md §11). Singleton steps also make the
// interleaved/simultaneous distinction vanish (publish-then-observe of a
// single node is one fused round either way), so RunSharded serves both
// modes.
//
// Budget and safety stops are detected at super-round granularity: a
// Timeout/MaxSteps/MaxActivations trip or an incremental-checker violation
// surfaces after the super-round that crossed it completes.
func (e *Engine) RunSharded(ctx context.Context, workers int, b runctl.Budget) (runctl.StopReason, error) {
	bounds := schedule.ShardBounds(e.n, workers)
	arcs := len(bounds) - 1
	stats := make([]shardStat, arcs)
	ck := runctl.NewChecker(ctx, b.Timeout)
	start := e.total

	for !e.AllSettled() {
		if reason, stop := ck.CheckNow(); stop {
			return reason, nil
		}
		if b.MaxSteps > 0 && e.t >= int64(b.MaxSteps) {
			return runctl.StopMaxSteps, nil
		}
		if b.MaxActivations > 0 && e.total-start >= int64(b.MaxActivations) {
			return runctl.StopActivations, nil
		}

		// Interior phase: arcs in parallel, arc 0 inline on this goroutine.
		var wg sync.WaitGroup
		for w := 1; w < arcs; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				e.runInterior(bounds[w], bounds[w+1], &stats[w])
			}(w)
		}
		e.runInterior(bounds[0], bounds[1], &stats[0])
		wg.Wait()

		// Barrier merge: fold the per-arc statistics into the engine
		// counters, lowest arc first so a violation report is deterministic.
		var performed int64
		for w := 0; w < arcs; w++ {
			performed += stats[w].performed
			e.total += stats[w].performed
			e.nWork -= int(stats[w].settled)
			if stats[w].checkErr != nil && e.checkErr == nil {
				e.checkErr = stats[w].checkErr
			}
			stats[w] = shardStat{}
		}
		e.t += performed
		if e.checkErr != nil {
			return runctl.StopNone, e.checkErr
		}

		// Boundary phase: the 2·arcs cut-adjacent nodes, serial and
		// ascending (bounds are ascending and hi−1 < next lo, so the nested
		// order lo_0, hi_0−1, lo_1, … is globally ascending).
		for w := 0; w < arcs; w++ {
			for _, i := range [2]int{bounds[w], bounds[w+1] - 1} {
				if !bitGet(e.work, i) {
					continue
				}
				done, out := e.k.Round(int32(i))
				e.t++
				performed++
				e.account(int32(i), done, out)
				if e.checkErr != nil {
					return runctl.StopNone, e.checkErr
				}
			}
		}
		if e.met != nil {
			e.met.Steps.Add(performed)
			e.met.Activations.Add(performed)
		}
	}
	return runctl.StopNone, nil
}

// runInterior performs one interior pass over arc [lo, hi): every node in
// [lo+1, hi−2] whose working bit is set at phase start executes one fused
// round, in ascending order. All engine state it writes — kernel slots,
// acts, outputs, and the work/done/crashed bitset words covering
// [lo+1, hi−2] — is private to this arc during the phase; totals and the
// working count are deferred to st for the coordinator to merge.
func (e *Engine) runInterior(lo, hi int, st *shardStat) {
	if hi-2 < lo+1 {
		return
	}
	var performed, settled int64
	wlo, whi := (lo+1)>>6, (hi-2)>>6
	for w := wlo; w <= whi; w++ {
		word := e.work[w]
		if w == wlo {
			word &= ^uint64(0) << (uint(lo+1) & 63)
		}
		if w == whi {
			if tail := uint(hi-2) & 63; tail != 63 {
				word &= (uint64(1) << (tail + 1)) - 1
			}
		}
		// The snapshot is taken before any activation in this word: a node
		// can only leave the working set by its own activation, and each
		// node is activated at most once per phase, so snapshot membership
		// equals activation-time membership — the serial scan behaves
		// identically.
		for word != 0 {
			i := w<<6 + trailingZeros(word)
			word &= word - 1
			done, out := e.k.Round(int32(i))
			e.acts[i]++
			performed++
			if done {
				bitSet(e.done, i)
				e.outputs[i] = out
				bitClear(e.work, i)
				settled++
				if e.incremental && st.checkErr == nil {
					st.checkErr = e.terminationViolation(int32(i), out)
				}
			} else if e.limits != nil && e.limits[i] >= 0 && e.acts[i] >= e.limits[i] {
				bitSet(e.crashed, i)
				bitClear(e.work, i)
				settled++
			}
		}
	}
	st.performed = performed
	st.settled = settled
}
