package bigsim_test

import (
	"fmt"
	"testing"

	"asynccycle/internal/bigsim"
	"asynccycle/internal/ids"
	"asynccycle/internal/protocol"
	"asynccycle/internal/runctl"
	"asynccycle/internal/schedule"
	"asynccycle/internal/sim"
)

// diffMaxSteps is generous: every differential instance terminates in well
// under 2^20 steps, so hitting the limit is itself a failure.
const diffMaxSteps = 1 << 20

// schedPair builds one scheduler per engine — fresh instances with the
// same seed, so both sides consume identical decision streams.
type schedPair struct {
	name string
	ref  func() schedule.Scheduler
	big  func() bigsim.Sched
}

// schedPairs covers every built-in scheduler family, including the
// batched round-robin path (rr1), the non-batched wide round-robin (rr3),
// and the Wrap adapter (sharded3 drives bigsim through the unmodified
// internal/schedule implementation).
func schedPairs() []schedPair {
	const seed = 12345
	return []schedPair{
		{"sync",
			func() schedule.Scheduler { return schedule.Synchronous{} },
			func() bigsim.Sched { return bigsim.NewSync() }},
		{"rr1",
			func() schedule.Scheduler { return schedule.NewRoundRobin(1) },
			func() bigsim.Sched { return bigsim.NewRR(1) }},
		{"rr3",
			func() schedule.Scheduler { return schedule.NewRoundRobin(3) },
			func() bigsim.Sched { return bigsim.NewRR(3) }},
		{"alt",
			func() schedule.Scheduler { return schedule.Alternating{} },
			func() bigsim.Sched { return bigsim.NewAlt() }},
		{"burst4",
			func() schedule.Scheduler { return schedule.NewBurst(4) },
			func() bigsim.Sched { return bigsim.NewBurst(4) }},
		{"random",
			func() schedule.Scheduler { return schedule.NewRandomSubset(0.4, seed) },
			func() bigsim.Sched { return bigsim.NewRandomSubset(0.4, seed) }},
		{"one",
			func() schedule.Scheduler { return schedule.NewRandomOne(seed) },
			func() bigsim.Sched { return bigsim.NewRandomOne(seed) }},
		{"sharded3",
			func() schedule.Scheduler { return schedule.NewShardedRoundRobin(3) },
			func() bigsim.Sched { return bigsim.Wrap(schedule.NewShardedRoundRobin(3)) }},
		{"sleep",
			func() schedule.Scheduler {
				return schedule.NewSleep([]int{0, 1}, 50, schedule.NewRoundRobin(1))
			},
			func() bigsim.Sched {
				return bigsim.Wrap(schedule.NewSleep([]int{0, 1}, 50, schedule.NewRoundRobin(1)))
			}},
	}
}

// TestEmptyStreakEquivalence pins the abandonment rule differentially: a
// scheduler that starves everyone forever must make both engines declare
// the whole cycle crashed after the same number of empty steps.
func TestEmptyStreakEquivalence(t *testing.T) {
	const n = 16
	xs := ids.RandomIDs(n, 5)
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	mkSleep := func() *schedule.Sleep {
		return schedule.NewSleep(all, 1<<30, schedule.Synchronous{})
	}
	ref := runRef(t, "six", xs, sim.ModeInterleaved, nil, mkSleep())
	big := runBig(t, "six", xs, sim.ModeInterleaved, nil, bigsim.Wrap(mkSleep()))
	diffResults(t, ref, big)
	for i := range ref.Crashed {
		if !ref.Crashed[i] {
			t.Fatalf("node %d not crashed by the starvation schedule", i)
		}
	}
}

// runRef executes the reference internal/sim engine through the registry.
func runRef(t *testing.T, alg string, xs []int, mode sim.Mode, crashes map[int]int, s schedule.Scheduler) sim.Result {
	t.Helper()
	d, err := protocol.Lookup(alg)
	if err != nil {
		t.Fatal(err)
	}
	res, reason, err := d.Run(xs, protocol.RunOptions{
		Scheduler: s,
		Mode:      mode,
		Crashes:   crashes,
		MaxSteps:  diffMaxSteps,
	})
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	if reason != "" {
		t.Fatalf("reference run stopped early: %s", reason)
	}
	return res
}

// runBig executes the struct-of-arrays engine on the same instance.
func runBig(t *testing.T, alg string, xs []int, mode sim.Mode, crashes map[int]int, s bigsim.Sched) sim.Result {
	t.Helper()
	d, err := protocol.Lookup(alg)
	if err != nil {
		t.Fatal(err)
	}
	k, err := d.BigKernel(xs)
	if err != nil {
		t.Fatal(err)
	}
	e := bigsim.New(k)
	e.SetMode(mode)
	e.SetIncremental(true)
	for i, c := range crashes {
		e.CrashAfter(i, c)
	}
	if err := e.Run(s, diffMaxSteps); err != nil {
		t.Fatalf("big run: %v", err)
	}
	if err := e.VerifyFull(); err != nil {
		t.Fatalf("full verification after run: %v", err)
	}
	return e.Result()
}

// diffResults asserts byte-identical executions: same step count and the
// same per-node outputs, termination, crash, and activation vectors.
func diffResults(t *testing.T, ref, big sim.Result) {
	t.Helper()
	if ref.Steps != big.Steps {
		t.Errorf("steps: ref %d, big %d", ref.Steps, big.Steps)
	}
	for i := range ref.Outputs {
		switch {
		case ref.Done[i] != big.Done[i]:
			t.Errorf("node %d: done ref %v, big %v", i, ref.Done[i], big.Done[i])
		case ref.Crashed[i] != big.Crashed[i]:
			t.Errorf("node %d: crashed ref %v, big %v", i, ref.Crashed[i], big.Crashed[i])
		case ref.Activations[i] != big.Activations[i]:
			t.Errorf("node %d: activations ref %d, big %d", i, ref.Activations[i], big.Activations[i])
		case ref.Done[i] && ref.Outputs[i] != big.Outputs[i]:
			t.Errorf("node %d: output ref %d, big %d", i, ref.Outputs[i], big.Outputs[i])
		}
	}
}

// TestBigEquivalence is the pinned differential: for every core protocol,
// scheduler family, activation mode, instance size, and crash plan, the
// struct-of-arrays engine must reproduce internal/sim byte for byte.
func TestBigEquivalence(t *testing.T) {
	for _, alg := range []string{"six", "five", "fast"} {
		for _, n := range []int{5, 17, 64} {
			xs := ids.RandomIDs(n, int64(7*n+1))
			for _, mode := range []sim.Mode{sim.ModeInterleaved, sim.ModeSimultaneous} {
				for _, crashes := range []map[int]int{nil, {0: 0, 3: 2, n - 1: 5}} {
					for _, sp := range schedPairs() {
						label := fmt.Sprintf("%s/n=%d/mode=%d/crashes=%v/%s", alg, n, mode, crashes != nil, sp.name)
						t.Run(label, func(t *testing.T) {
							ref := runRef(t, alg, xs, mode, crashes, sp.ref())
							big := runBig(t, alg, xs, mode, crashes, sp.big())
							diffResults(t, ref, big)
						})
					}
				}
			}
		}
	}
}

// TestShardedEquivalence pins the three-way agreement behind the parallel
// executor: internal/sim driven by the canonical sharded round-robin
// schedule, the big engine driven serially by the same schedule through
// Wrap, and the big engine's parallel RunSharded must all produce the
// same execution. n is large enough for ShardBounds to cut real arcs.
func TestShardedEquivalence(t *testing.T) {
	const n = 512
	for _, alg := range []string{"six", "five", "fast"} {
		for _, workers := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("%s/workers=%d", alg, workers), func(t *testing.T) {
				xs := ids.RandomIDs(n, 99)
				ref := runRef(t, alg, xs, sim.ModeInterleaved, nil,
					schedule.NewShardedRoundRobin(workers))
				serial := runBig(t, alg, xs, sim.ModeInterleaved, nil,
					bigsim.Wrap(schedule.NewShardedRoundRobin(workers)))
				diffResults(t, ref, serial)

				d, err := protocol.Lookup(alg)
				if err != nil {
					t.Fatal(err)
				}
				k, err := d.BigKernel(xs)
				if err != nil {
					t.Fatal(err)
				}
				e := bigsim.New(k)
				e.SetIncremental(true)
				reason, err := e.RunSharded(nil, workers, runctl.Budget{})
				if err != nil {
					t.Fatalf("sharded run: %v", err)
				}
				if reason != "" {
					t.Fatalf("sharded run stopped early: %s", reason)
				}
				if err := e.VerifyFull(); err != nil {
					t.Fatalf("full verification after sharded run: %v", err)
				}
				diffResults(t, ref, e.Result())
			})
		}
	}
}
