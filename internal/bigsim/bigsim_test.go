package bigsim

import (
	"context"
	"strings"
	"testing"
	"time"

	"asynccycle/internal/ids"
	"asynccycle/internal/runctl"
)

// constKernel terminates every node on its first round with a fixed color —
// an intentionally broken protocol for exercising the safety checkers.
type constKernel struct {
	n     int
	color int32
	valid bool // whether color is inside the declared palette
}

func (k *constKernel) Name() string                { return "const" }
func (k *constKernel) N() int                      { return k.n }
func (k *constKernel) Reset(xs []int) error        { k.n = len(xs); return nil }
func (k *constKernel) Publish(int32)               {}
func (k *constKernel) Observe(int32) (bool, int32) { return true, k.color }
func (k *constKernel) Round(int32) (bool, int32)   { return true, k.color }
func (k *constKernel) ValidOutput(c int32) bool {
	return k.valid && c == k.color
}
func (k *constKernel) BytesPerNode() int { return 0 }

// spinKernel never terminates — for driving budget and step-limit paths.
type spinKernel struct{ n int }

func (k *spinKernel) Name() string                { return "spin" }
func (k *spinKernel) N() int                      { return k.n }
func (k *spinKernel) Reset(xs []int) error        { k.n = len(xs); return nil }
func (k *spinKernel) Publish(int32)               {}
func (k *spinKernel) Observe(int32) (bool, int32) { return false, 0 }
func (k *spinKernel) Round(int32) (bool, int32)   { return false, 0 }
func (k *spinKernel) ValidOutput(int32) bool      { return true }
func (k *spinKernel) BytesPerNode() int           { return 0 }

// emptySched never activates anyone — for the empty-streak rule.
type emptySched struct{}

func (emptySched) Name() string                  { return "empty" }
func (emptySched) Next(*Engine, []int32) []int32 { return nil }

// TestIncrementalCatchesImproperColoring: adjacent equal outputs must trip
// the incremental checker at the moment the second endpoint terminates,
// and the O(n) reference check must agree.
func TestIncrementalCatchesImproperColoring(t *testing.T) {
	e := New(&constKernel{n: 8, color: 0, valid: true})
	e.SetIncremental(true)
	err := e.Run(NewSync(), 100)
	if err == nil || !strings.Contains(err.Error(), "improper coloring") {
		t.Fatalf("incremental checker missed the violation, err = %v", err)
	}
	if full := e.VerifyFull(); full == nil {
		t.Fatal("VerifyFull disagrees with the incremental checker")
	}
	if e.CheckErr() == nil {
		t.Fatal("CheckErr not recorded")
	}
}

// TestIncrementalCatchesPaletteViolation: an out-of-palette output trips
// the checker on the very first termination.
func TestIncrementalCatchesPaletteViolation(t *testing.T) {
	e := New(&constKernel{n: 8, color: 7, valid: false})
	e.SetIncremental(true)
	err := e.Run(NewSync(), 100)
	if err == nil || !strings.Contains(err.Error(), "palette") {
		t.Fatalf("incremental checker missed the palette violation, err = %v", err)
	}
	if full := e.VerifyFull(); full == nil {
		t.Fatal("VerifyFull disagrees with the incremental checker")
	}
}

// TestIncrementalOffIgnoresViolation: with checking off the run completes
// and only VerifyFull reports the problem.
func TestIncrementalOffIgnoresViolation(t *testing.T) {
	e := New(&constKernel{n: 8, color: 0, valid: true})
	if err := e.Run(NewSync(), 100); err != nil {
		t.Fatalf("run: %v", err)
	}
	if e.VerifyFull() == nil {
		t.Fatal("VerifyFull missed the violation")
	}
}

// TestBudgetStops drives every stop axis on both the per-step and the
// batched run paths, plus the sharded executor.
func TestBudgetStops(t *testing.T) {
	mk := func(n int) *Engine { return New(&spinKernel{n: n}) }

	t.Run("max-steps", func(t *testing.T) {
		e := mk(64)
		reason, err := e.RunBudget(nil, NewSync(), runctl.Budget{MaxSteps: 5})
		if err != nil || reason != runctl.StopMaxSteps {
			t.Fatalf("reason=%s err=%v, want %s", reason, err, runctl.StopMaxSteps)
		}
		if e.Steps() != 5 {
			t.Fatalf("steps = %d, want 5", e.Steps())
		}
	})

	t.Run("max-steps-batched", func(t *testing.T) {
		e := mk(64)
		reason, err := e.RunBudget(nil, NewRR(1), runctl.Budget{MaxSteps: 100})
		if err != nil || reason != runctl.StopMaxSteps {
			t.Fatalf("reason=%s err=%v, want %s", reason, err, runctl.StopMaxSteps)
		}
		if e.Steps() != 100 {
			t.Fatalf("steps = %d, want exactly 100 (batch must be trimmed)", e.Steps())
		}
	})

	t.Run("max-activations", func(t *testing.T) {
		e := mk(64)
		reason, err := e.RunBudget(nil, NewRR(1), runctl.Budget{MaxActivations: 70})
		if err != nil || reason != runctl.StopActivations {
			t.Fatalf("reason=%s err=%v, want %s", reason, err, runctl.StopActivations)
		}
		if e.TotalActivations() != 70 {
			t.Fatalf("activations = %d, want exactly 70", e.TotalActivations())
		}
	})

	t.Run("cancelled", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		e := mk(64)
		reason, err := e.RunBudget(ctx, NewSync(), runctl.Budget{})
		if err != nil || reason != runctl.StopCancelled {
			t.Fatalf("reason=%s err=%v, want %s", reason, err, runctl.StopCancelled)
		}
	})

	t.Run("timeout", func(t *testing.T) {
		e := mk(64)
		reason, err := e.RunBudget(nil, NewSync(), runctl.Budget{Timeout: time.Nanosecond})
		if err != nil || reason != runctl.StopTimeout {
			t.Fatalf("reason=%s err=%v, want %s", reason, err, runctl.StopTimeout)
		}
	})

	t.Run("sharded-max-steps", func(t *testing.T) {
		e := mk(512)
		reason, err := e.RunSharded(nil, 2, runctl.Budget{MaxSteps: 600})
		if err != nil || reason != runctl.StopMaxSteps {
			t.Fatalf("reason=%s err=%v, want %s", reason, err, runctl.StopMaxSteps)
		}
		// Super-round granularity: the trip is detected at the next
		// barrier, so the overshoot is below one super-round (≤ n rounds).
		if e.Steps() < 600 || e.Steps() > 600+512 {
			t.Fatalf("steps = %d, want within one super-round past 600", e.Steps())
		}
	})

	t.Run("step-limit-error", func(t *testing.T) {
		e := mk(8)
		err := e.Run(NewSync(), 10)
		if err == nil || !strings.Contains(err.Error(), "step limit") && !strings.Contains(err.Error(), "steps") {
			t.Fatalf("want a step-limit error, got %v", err)
		}
	})
}

// TestEmptyStreak: a scheduler that never activates anyone makes the
// engine abandon the run after the same streak length as internal/sim,
// declaring every survivor crashed.
func TestEmptyStreak(t *testing.T) {
	e := New(&spinKernel{n: 16})
	if err := e.Run(emptySched{}, 1<<20); err != nil {
		t.Fatalf("run: %v", err)
	}
	if e.Steps() != emptyStreak {
		t.Fatalf("steps = %d, want %d", e.Steps(), emptyStreak)
	}
	s := e.Summarize()
	if s.Crashed != 16 || s.Terminated != 0 {
		t.Fatalf("summary = %+v, want all 16 crashed", s)
	}
}

// TestResetReuse: Reset at the same n must keep the engine usable and
// independent across runs; at a different n it must resize.
func TestResetReuse(t *testing.T) {
	xs := ids.RandomIDs(64, 3)
	k, err := NewFiveKernel(xs)
	if err != nil {
		t.Fatal(err)
	}
	e := New(k)
	e.SetIncremental(true)
	if err := e.Run(NewSync(), 1<<20); err != nil {
		t.Fatal(err)
	}
	first := e.Summarize()

	if err := e.Reset(xs); err != nil {
		t.Fatal(err)
	}
	if e.Steps() != 0 || e.TotalActivations() != 0 || e.AllSettled() {
		t.Fatal("Reset left stale execution state")
	}
	if err := e.Run(NewSync(), 1<<20); err != nil {
		t.Fatal(err)
	}
	if again := e.Summarize(); again != first {
		t.Fatalf("deterministic rerun diverged: %+v vs %+v", again, first)
	}

	ys := ids.RandomIDs(128, 4)
	if err := e.Reset(ys); err != nil {
		t.Fatal(err)
	}
	if e.N() != 128 {
		t.Fatalf("n = %d after resize, want 128", e.N())
	}
	if err := e.Run(NewSync(), 1<<20); err != nil {
		t.Fatal(err)
	}
	if err := e.VerifyFull(); err != nil {
		t.Fatal(err)
	}

	if err := e.Reset([]int{1, 1, 2}); err == nil {
		t.Fatal("Reset accepted identifiers that collide across a cycle edge")
	}
}

// TestCrashPlanImmediate: arming a limit at or below the current count
// crashes the node on the spot, like sim.Engine.CrashAfter.
func TestCrashPlanImmediate(t *testing.T) {
	e := New(&spinKernel{n: 8})
	e.CrashAfter(3, 0)
	if !e.Crashed(3) || e.Working(3) {
		t.Fatal("limit-0 node not crashed immediately")
	}
	if e.AllSettled() {
		t.Fatal("other nodes should still be working")
	}
}

// TestBytesPerNode pins the kernel footprints the bench report records.
func TestBytesPerNode(t *testing.T) {
	xs := ids.RandomIDs(64, 5)
	for _, c := range []struct {
		name string
		mk   func([]int) (Kernel, error)
		want int
	}{
		{"six", NewSixKernel, 21},
		{"five", NewFiveKernel, 21},
		{"fast", NewFastKernel, 31},
	} {
		k, err := c.mk(xs)
		if err != nil {
			t.Fatal(err)
		}
		if got := k.BytesPerNode(); got != c.want {
			t.Errorf("%s kernel: %d bytes/node, want %d", c.name, got, c.want)
		}
		e := New(k)
		if got := e.BytesPerNode(); got != c.want+9 {
			t.Errorf("%s engine: %d bytes/node, want %d", c.name, got, c.want+9)
		}
	}
}
