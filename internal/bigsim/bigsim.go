package bigsim

import (
	"context"
	"fmt"
	"math/bits"
	"slices"

	"asynccycle/internal/metrics"
	"asynccycle/internal/runctl"
	"asynccycle/internal/schedule"
	"asynccycle/internal/sim"
)

// emptyStreak mirrors sim's tolerance for consecutive no-op steps before
// the remaining processes are declared crashed. The two constants must
// stay equal or the differential tests break.
const emptyStreak = 2048

// Engine drives one Kernel over the cycle with internal/sim's exact step
// semantics: dedup + working-filter + ascending order, interleaved or
// simultaneous phases, per-activation crash limits, and the empty-streak
// abandonment rule. Per-node bookkeeping lives in flat slices and bitsets;
// a warmed-up engine steps without allocating.
type Engine struct {
	k    Kernel
	n    int
	mode sim.Mode
	t    int64

	work    []uint64 // frontier: bit i set ⇔ node i is working
	nWork   int
	done    []uint64
	crashed []uint64
	inSet   []uint64 // Step's dedup marks, cleared after use
	acts    []int32
	outputs []int32
	limits  []int32 // crash after this many activations; <0 = never; nil = none armed
	total   int64   // total activations performed

	incremental bool
	checkErr    error

	perfBuf  []int32
	schedBuf []int32

	// res is the reusable Result storage: sized once per Reset, filled by
	// Result(). Callers that retain a Result across Reset must copy it.
	res sim.Result

	met *metrics.Run
}

// New builds an engine around a kernel. The kernel is owned by the engine
// from here on.
func New(k Kernel) *Engine {
	e := &Engine{k: k}
	e.init(k.N())
	return e
}

func (e *Engine) init(n int) {
	words := (n + 63) / 64
	e.n = n
	e.work = make([]uint64, words)
	e.done = make([]uint64, words)
	e.crashed = make([]uint64, words)
	e.inSet = make([]uint64, words)
	e.acts = make([]int32, n)
	e.outputs = make([]int32, n)
	e.limits = nil
	e.perfBuf = make([]int32, 0, 256)
	e.schedBuf = make([]int32, 4096)
	e.res = sim.Result{
		Outputs:     make([]int, n),
		Done:        make([]bool, n),
		Crashed:     make([]bool, n),
		Activations: make([]int, n),
	}
	e.resetCommon()
}

func (e *Engine) resetCommon() {
	for i := range e.work {
		e.work[i] = ^uint64(0)
		e.done[i] = 0
		e.crashed[i] = 0
		e.inSet[i] = 0
	}
	if tail := e.n % 64; tail != 0 {
		e.work[len(e.work)-1] = (uint64(1) << tail) - 1
	}
	e.nWork = e.n
	for i := range e.acts {
		e.acts[i] = 0
		e.outputs[i] = -1
	}
	e.limits = nil
	e.t = 0
	e.total = 0
	e.checkErr = nil
}

// Reset re-initializes the engine (and its kernel) for a new run on the
// given identifiers, reusing every buffer when the size is unchanged —
// repeated runs at the same n allocate nothing beyond the kernel's own
// Reset.
func (e *Engine) Reset(xs []int) error {
	if err := e.k.Reset(xs); err != nil {
		return err
	}
	if len(xs) != e.n {
		e.init(len(xs))
		return nil
	}
	e.resetCommon()
	return nil
}

// SetMode selects the activation semantics; call before the first Step.
func (e *Engine) SetMode(m sim.Mode) { e.mode = m }

// Mode returns the activation semantics.
func (e *Engine) Mode() sim.Mode { return e.mode }

// SetIncremental turns incremental safety checking on: every termination
// event validates the output against the palette and against the outputs
// of already-terminated neighbors. The proper-coloring predicate over the
// terminated subgraph is monotone — constraints appear only when a node
// terminates and outputs never change afterwards — so checking each edge
// exactly once, when its second endpoint terminates, is equivalent to the
// O(n) full scan after every step (soundness argument in DESIGN.md §11).
func (e *Engine) SetIncremental(on bool) { e.incremental = on }

// CheckErr returns the first safety violation the incremental checker
// found, or nil.
func (e *Engine) CheckErr() error { return e.checkErr }

// SetMetrics installs an optional metrics sink (nil = off).
func (e *Engine) SetMetrics(r *metrics.Run) { e.met = r }

// Kernel returns the engine's kernel.
func (e *Engine) Kernel() Kernel { return e.k }

// BytesPerNode is the total per-node memory footprint: kernel registers
// and state plus the engine's own bookkeeping (three bitset bits, dedup
// mark, acts, outputs, and the reusable Result storage).
func (e *Engine) BytesPerNode() int {
	return e.k.BytesPerNode() + 4 + 4 + 1 // acts + outputs + bitsets (4×⅛ rounded up)
}

// --- schedule.State -------------------------------------------------------

// N implements schedule.State.
func (e *Engine) N() int { return e.n }

// Time implements schedule.State: the 1-based index of the next step.
func (e *Engine) Time() int { return int(e.t) + 1 }

// Working implements schedule.State.
func (e *Engine) Working(i int) bool { return bitGet(e.work, i) }

// Activations implements schedule.State.
func (e *Engine) Activations(i int) int { return int(e.acts[i]) }

// Done reports whether process i terminated.
func (e *Engine) Done(i int) bool { return bitGet(e.done, i) }

// Crashed reports whether process i crashed.
func (e *Engine) Crashed(i int) bool { return bitGet(e.crashed, i) }

// Output returns process i's output, or -1 if it has not terminated.
func (e *Engine) Output(i int) int { return int(e.outputs[i]) }

// Steps returns the number of time steps executed so far.
func (e *Engine) Steps() int64 { return e.t }

// TotalActivations returns the total number of rounds performed so far.
func (e *Engine) TotalActivations() int64 { return e.total }

// AllSettled reports whether every process has terminated or crashed.
func (e *Engine) AllSettled() bool { return e.nWork == 0 }

var _ schedule.State = (*Engine)(nil)

// --- crash plan -----------------------------------------------------------

// CrashAfter arranges for process i to crash once it has performed k
// rounds (k == 0 means it never wakes), mirroring sim.Engine.CrashAfter.
func (e *Engine) CrashAfter(i, k int) {
	if e.limits == nil {
		e.limits = make([]int32, e.n)
		for j := range e.limits {
			e.limits[j] = -1
		}
	}
	e.limits[i] = int32(k)
	if int32(k) <= e.acts[i] {
		e.crash(int32(i))
	}
}

// Crash immediately crashes process i.
func (e *Engine) Crash(i int) { e.crash(int32(i)) }

func (e *Engine) crash(i int32) {
	if bitGet(e.crashed, int(i)) {
		return
	}
	bitSet(e.crashed, int(i))
	if bitGet(e.work, int(i)) {
		bitClear(e.work, int(i))
		e.nWork--
	}
}

// --- stepping -------------------------------------------------------------

// Step executes one time step activating the given set of processes:
// out-of-range and duplicate indices and non-working processes are
// dropped, the survivors execute in ascending order under the engine's
// mode. It returns how many processes performed a round.
func (e *Engine) Step(active []int32) int {
	e.t++
	performed := e.perfBuf[:0]
	for _, i := range active {
		if i < 0 || int(i) >= e.n || bitGet(e.inSet, int(i)) || !bitGet(e.work, int(i)) {
			continue
		}
		bitSet(e.inSet, int(i))
		performed = append(performed, i)
	}
	for _, i := range performed {
		bitClear(e.inSet, int(i))
	}
	slices.Sort(performed)
	e.perfBuf = performed

	if e.mode == sim.ModeSimultaneous {
		for _, i := range performed {
			e.k.Publish(i)
		}
		for _, i := range performed {
			done, out := e.k.Observe(i)
			e.account(i, done, out)
		}
	} else {
		for _, i := range performed {
			done, out := e.k.Round(i)
			e.account(i, done, out)
		}
	}
	if e.met != nil {
		e.met.Steps.Inc()
		e.met.Activations.Add(int64(len(performed)))
	}
	return len(performed)
}

// account applies the round outcome of process i: activation count,
// termination (with incremental checking), or crash-limit trip — the exact
// bookkeeping of sim.Engine.observe.
func (e *Engine) account(i int32, done bool, out int32) {
	e.acts[i]++
	e.total++
	if done {
		bitSet(e.done, int(i))
		e.outputs[i] = out
		bitClear(e.work, int(i))
		e.nWork--
		if e.incremental && e.checkErr == nil {
			e.checkTermination(i, out)
		}
	} else if e.limits != nil && e.limits[i] >= 0 && e.acts[i] >= e.limits[i] {
		bitSet(e.crashed, int(i))
		bitClear(e.work, int(i))
		e.nWork--
	}
}

// checkTermination validates a single termination event and records the
// first violation in checkErr.
func (e *Engine) checkTermination(i, out int32) {
	e.checkErr = e.terminationViolation(i, out)
}

// terminationViolation validates one termination event: palette
// membership, plus color-distinctness against each already-terminated
// cycle neighbor. Each cycle edge is examined exactly once over a run — at
// the moment its later endpoint terminates. It returns nil when the event
// is safe. The method reads only node i's neighborhood, which makes it
// safe to call from a shard worker whose arc contains that neighborhood.
func (e *Engine) terminationViolation(i, out int32) error {
	if !e.k.ValidOutput(out) {
		return fmt.Errorf("bigsim: node %d output %d outside the %s palette", i, out, e.k.Name())
	}
	n := int32(e.n)
	l, r := i-1, i+1
	if l < 0 {
		l = n - 1
	}
	if r == n {
		r = 0
	}
	if bitGet(e.done, int(l)) && e.outputs[l] == out {
		return fmt.Errorf("bigsim: improper coloring: adjacent nodes %d and %d both output %d", l, i, out)
	}
	if bitGet(e.done, int(r)) && e.outputs[r] == out {
		return fmt.Errorf("bigsim: improper coloring: adjacent nodes %d and %d both output %d", i, r, out)
	}
	return nil
}

// VerifyFull is the O(n) reference check the incremental checker
// replaces: palette membership and proper coloring over every terminated
// node and edge. Tests cross-validate the two.
func (e *Engine) VerifyFull() error {
	for i := 0; i < e.n; i++ {
		if !bitGet(e.done, i) {
			continue
		}
		out := e.outputs[i]
		if !e.k.ValidOutput(out) {
			return fmt.Errorf("bigsim: node %d output %d outside the %s palette", i, out, e.k.Name())
		}
		j := i + 1
		if j == e.n {
			j = 0
		}
		if bitGet(e.done, j) && e.outputs[j] == out {
			return fmt.Errorf("bigsim: improper coloring: adjacent nodes %d and %d both output %d", i, j, out)
		}
	}
	return nil
}

// crashRemaining abandons every still-working process, realizing the
// empty-streak rule.
func (e *Engine) crashRemaining() {
	for w, word := range e.work {
		for word != 0 {
			b := word & (-word)
			i := w*64 + trailingZeros(word)
			bitSet(e.crashed, i)
			word &^= b
		}
		e.work[w] = 0
	}
	e.nWork = 0
}

// --- run loops ------------------------------------------------------------

// Run drives the engine with the scheduler until every process terminates
// or crashes, or until maxSteps is exceeded (returning sim.ErrStepLimit),
// or until the incremental checker records a violation (returned as the
// error). Semantics mirror sim.Engine.Run, including the empty-streak
// abandonment rule.
func (e *Engine) Run(s Sched, maxSteps int64) error {
	if bt, ok := s.(batcher); ok && bt.Batchable() {
		return e.runBatched(bt, maxSteps, nil, runctl.Budget{})
	}
	empties := 0
	for !e.AllSettled() {
		if e.t >= maxSteps {
			return fmt.Errorf("%w: %d steps, scheduler %s", sim.ErrStepLimit, e.t, s.Name())
		}
		e.schedBuf = s.Next(e, e.schedBuf[:0])
		performed := e.Step(e.schedBuf)
		if e.checkErr != nil {
			return e.checkErr
		}
		if performed == 0 {
			empties++
			if empties >= emptyStreak {
				e.crashRemaining()
			}
		} else {
			empties = 0
		}
	}
	return nil
}

// RunBudget is Run with run control: the execution stops early with a
// non-empty StopReason when the context is done, the budget's Timeout
// elapses (polled amortized — trips are detected within a few hundred
// steps), or the step/activation budgets are reached. A safety violation
// found by the incremental checker is returned as the error alongside
// StopNone.
func (e *Engine) RunBudget(ctx context.Context, s Sched, b runctl.Budget) (runctl.StopReason, error) {
	if bt, ok := s.(batcher); ok && bt.Batchable() {
		err := e.runBatched(bt, 0, ctx, b)
		if r := StopReasonOf(err); r != runctl.StopNone {
			return r, nil
		}
		return runctl.StopNone, err
	}
	ck := runctl.NewChecker(ctx, b.Timeout)
	start := e.total
	empties := 0
	for !e.AllSettled() {
		if reason, stop := ck.Check(); stop {
			return reason, nil
		}
		if b.MaxSteps > 0 && e.t >= int64(b.MaxSteps) {
			return runctl.StopMaxSteps, nil
		}
		if b.MaxActivations > 0 && e.total-start >= int64(b.MaxActivations) {
			return runctl.StopActivations, nil
		}
		e.schedBuf = s.Next(e, e.schedBuf[:0])
		performed := e.Step(e.schedBuf)
		if e.checkErr != nil {
			return runctl.StopNone, e.checkErr
		}
		if performed == 0 {
			empties++
			if empties >= emptyStreak {
				e.crashRemaining()
			}
		} else {
			empties = 0
		}
	}
	return runctl.StopNone, nil
}

// runBatched executes a batch-decoding scheduler: the scheduler emits up
// to cap(buf) singleton activations at once (each node at most once per
// batch, so decode-time working status equals execution-time status) and
// the engine replays them as individual steps without per-step dispatch.
// maxSteps > 0 selects the Run contract, otherwise the budget contract.
func (e *Engine) runBatched(bt batcher, maxSteps int64, ctx context.Context, b runctl.Budget) error {
	ck := runctl.NewChecker(ctx, b.Timeout)
	start := e.total
	empties := 0
	for !e.AllSettled() {
		if maxSteps > 0 && e.t >= maxSteps {
			return fmt.Errorf("%w: %d steps, scheduler %s", sim.ErrStepLimit, e.t, bt.(Sched).Name())
		}
		if reason, stop := ck.CheckNow(); stop {
			return &budgetStop{reason}
		}
		if b.MaxSteps > 0 && e.t >= int64(b.MaxSteps) {
			return &budgetStop{runctl.StopMaxSteps}
		}
		if b.MaxActivations > 0 && e.total-start >= int64(b.MaxActivations) {
			return &budgetStop{runctl.StopActivations}
		}
		buf := e.schedBuf[:0]
		limit := cap(e.schedBuf)
		if maxSteps > 0 {
			if rem := maxSteps - e.t; rem < int64(limit) {
				limit = int(rem)
			}
		}
		if b.MaxSteps > 0 {
			if rem := int64(b.MaxSteps) - e.t; rem < int64(limit) {
				limit = int(rem)
			}
		}
		if b.MaxActivations > 0 {
			if rem := int64(b.MaxActivations) - (e.total - start); rem < int64(limit) {
				limit = int(rem)
			}
		}
		batch := bt.NextBatch(e, buf[:0:limit])
		if len(batch) == 0 {
			// A batch decoder emits every working node reachable in one
			// sweep; an empty batch with working nodes cannot happen for
			// the built-in batchers, but degrade gracefully to the
			// empty-step rule if it does.
			if e.AllSettled() {
				return nil
			}
			e.t++
			empties++
			if empties >= emptyStreak {
				e.crashRemaining()
			}
			continue
		}
		empties = 0
		for _, i := range batch {
			e.t++
			if !bitGet(e.work, int(i)) {
				continue
			}
			var done bool
			var out int32
			if e.mode == sim.ModeSimultaneous {
				e.k.Publish(i)
				done, out = e.k.Observe(i)
			} else {
				done, out = e.k.Round(i)
			}
			e.account(i, done, out)
			if e.checkErr != nil {
				return e.checkErr
			}
		}
		if e.met != nil {
			e.met.Steps.Add(int64(len(batch)))
			e.met.Activations.Add(int64(len(batch)))
		}
	}
	return nil
}

// budgetStop carries a StopReason through runBatched's single error
// return; RunBudget unwraps it.
type budgetStop struct{ reason runctl.StopReason }

func (b *budgetStop) Error() string { return "bigsim: stopped by budget: " + string(b.reason) }

// StopReasonOf extracts the StopReason from an error returned by a
// budgeted run (StopNone for nil or non-budget errors).
func StopReasonOf(err error) runctl.StopReason {
	if bs, ok := err.(*budgetStop); ok {
		return bs.reason
	}
	return runctl.StopNone
}

// --- results --------------------------------------------------------------

// Result snapshots the execution as a sim.Result. The returned slices are
// engine-owned, pre-sized storage reused across Reset: copy them to retain
// beyond the engine's next Reset.
func (e *Engine) Result() sim.Result {
	for i := 0; i < e.n; i++ {
		e.res.Outputs[i] = int(e.outputs[i])
		e.res.Done[i] = bitGet(e.done, i)
		e.res.Crashed[i] = bitGet(e.crashed, i)
		e.res.Activations[i] = int(e.acts[i])
	}
	e.res.Steps = int(e.t)
	return e.res
}

// Summary condenses the execution without materializing per-node slices —
// the big-run reporting path at n = 10⁶.
type Summary struct {
	N            int
	Steps        int64
	Rounds       int64 // total activations performed
	MaxRounds    int   // per-process round complexity (§2.2)
	Terminated   int
	Crashed      int
	BytesPerNode int
}

// Summarize scans the per-node bookkeeping once and returns the Summary.
func (e *Engine) Summarize() Summary {
	s := Summary{N: e.n, Steps: e.t, Rounds: e.total, BytesPerNode: e.BytesPerNode()}
	for i := 0; i < e.n; i++ {
		if int(e.acts[i]) > s.MaxRounds {
			s.MaxRounds = int(e.acts[i])
		}
		if bitGet(e.done, i) {
			s.Terminated++
		}
		if bitGet(e.crashed, i) {
			s.Crashed++
		}
	}
	return s
}

// --- bitset helpers -------------------------------------------------------

func bitGet(w []uint64, i int) bool { return w[i>>6]&(1<<(uint(i)&63)) != 0 }
func bitSet(w []uint64, i int)      { w[i>>6] |= 1 << (uint(i) & 63) }
func bitClear(w []uint64, i int)    { w[i>>6] &^= 1 << (uint(i) & 63) }

func trailingZeros(v uint64) int { return bits.TrailingZeros64(v) }

func popcount(v uint64) int { return bits.OnesCount64(v) }
