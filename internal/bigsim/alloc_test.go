package bigsim

import (
	"testing"

	"asynccycle/internal/ids"
)

// TestStepAllocs pins the warm path at zero allocations per step: after
// one warm-up step the engine's scratch (decode buffer, performed buffer,
// scheduler work buffers) has reached steady-state size, and Reset reuses
// every buffer — so even full restart cycles allocate nothing.
func TestStepAllocs(t *testing.T) {
	const n = 1024
	xs := ids.RandomIDs(n, 1)
	for _, mk := range []struct {
		name string
		k    func([]int) (Kernel, error)
	}{
		{"six", NewSixKernel},
		{"five", NewFiveKernel},
		{"fast", NewFastKernel},
	} {
		t.Run(mk.name, func(t *testing.T) {
			k, err := mk.k(xs)
			if err != nil {
				t.Fatal(err)
			}
			e := New(k)
			e.SetIncremental(true)
			sy := NewSync()
			step := func() {
				if e.AllSettled() {
					if err := e.Reset(xs); err != nil {
						t.Fatal(err)
					}
				}
				e.schedBuf = sy.Next(e, e.schedBuf[:0])
				e.Step(e.schedBuf)
			}
			step() // warm: grows perfBuf to steady state
			if avg := testing.AllocsPerRun(200, step); avg != 0 {
				t.Errorf("warm synchronous step: %.2f allocs/op, want 0", avg)
			}
		})
	}
}

// TestRunAllocs pins the batched round-robin full-run path, Reset
// included, at zero allocations once warm.
func TestRunAllocs(t *testing.T) {
	const n = 1024
	xs := ids.RandomIDs(n, 2)
	k, err := NewFastKernel(xs)
	if err != nil {
		t.Fatal(err)
	}
	e := New(k)
	e.SetIncremental(true)
	rr := NewRR(1)
	run := func() {
		if err := e.Reset(xs); err != nil {
			t.Fatal(err)
		}
		if err := e.Run(rr, 1<<40); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm
	if avg := testing.AllocsPerRun(10, run); avg != 0 {
		t.Errorf("warm batched full run: %.2f allocs/op, want 0", avg)
	}
}
