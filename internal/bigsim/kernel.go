// Package bigsim is the high-throughput execution engine for large cycles:
// a struct-of-arrays re-implementation of the internal/sim semantics for
// the paper's three core protocols, built for n up to 10⁶ and beyond.
//
// Where internal/sim stores one heap-allocated Node[V] interface value per
// process and hands generic Cell[V] views to Observe, bigsim lays every
// per-node register and state field out in flat slices (kernels), keeps
// the working set in a bitset frontier so a step touches only the nodes
// the schedule names, decodes singleton schedules in batches, and checks
// the proper-coloring invariant incrementally — only the ≤ deg(i) edges
// incident to a node are examined, exactly once, at the moment it
// terminates. The semantics are pinned byte-identical to internal/sim by
// differential tests across every scheduler family and both step modes
// (see equivalence_test.go and DESIGN.md §11).
package bigsim

import (
	"fmt"

	"asynccycle/internal/core"
	"asynccycle/internal/cv"
)

// Kernel is one protocol's struct-of-arrays state: registers and per-node
// machine state in flat slices over the cycle C_n. A kernel implements the
// exact per-round transition of its internal/sim counterpart; the Engine
// owns everything protocol-independent (working frontier, activation
// counts, crash limits, outputs, checking).
//
// All methods are called with 0 ≤ i < N(), only for working nodes, and
// only from one goroutine at a time per node (the sharded executor
// partitions nodes so that concurrent calls never touch overlapping
// state; see DESIGN.md §11).
type Kernel interface {
	// Name is the protocol's registry name.
	Name() string
	// N is the instance size.
	N() int
	// Reset re-initializes the kernel for the given identifiers, reusing
	// storage when the size matches.
	Reset(xs []int) error
	// Publish writes node i's register from its state (the first half of a
	// round).
	Publish(i int32)
	// Observe reads the registers of i's cycle neighbors, updates i's
	// state, and reports whether i terminates and with which output (the
	// second half of a round).
	Observe(i int32) (done bool, output int32)
	// Round is Publish followed by Observe — the fused interleaved-mode
	// round, saving one dispatch on the hot path.
	Round(i int32) (done bool, output int32)
	// ValidOutput reports whether c lies in the protocol's palette, for
	// the engine's incremental checker.
	ValidOutput(c int32) bool
	// BytesPerNode is the kernel's per-node memory footprint in bytes
	// (registers + state), for capacity planning and the bench report.
	BytesPerNode() int
}

// checkCycleIDs validates the shared input precondition of the cycle
// kernels: n ≥ 3 and identifiers that are non-negative and distinct across
// every cycle edge (Remark 3.10).
func checkCycleIDs(xs []int) error {
	n := len(xs)
	if n < 3 {
		return fmt.Errorf("bigsim: cycle needs n ≥ 3, got %d", n)
	}
	for i, x := range xs {
		if x < 0 {
			return fmt.Errorf("bigsim: negative identifier %d at node %d", x, i)
		}
		if x == xs[(i+1)%n] {
			return fmt.Errorf("bigsim: identifiers must differ across every cycle edge (nodes %d and %d share %d)", i, (i+1)%n, x)
		}
	}
	return nil
}

// mex8 returns min(ℕ ∖ used) over a tiny color set, mirroring core.mex.
func mex8(used []uint8) uint8 {
	for v := uint8(0); ; v++ {
		found := false
		for _, u := range used {
			if u == v {
				found = true
				break
			}
		}
		if !found {
			return v
		}
	}
}

// contains8 reports whether xs contains v.
func contains8(xs []uint8, v uint8) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Five: Algorithm 2 (wait-free 5-coloring in O(n) rounds).
// ---------------------------------------------------------------------------

// fiveKernel is core.Five in struct-of-arrays form: state (x, a, b) and
// register (regX, regA, regB, present) slices. Colors never exceed 4
// (Theorem 3.11), so they pack into single bytes; identifiers span the
// poly(n) input range and need 64 bits.
type fiveKernel struct {
	n       int
	x       []int64
	a, b    []uint8
	regX    []int64
	regA    []uint8
	regB    []uint8
	present []bool
}

// NewFiveKernel builds the Algorithm 2 kernel for the given identifiers.
func NewFiveKernel(xs []int) (Kernel, error) {
	k := &fiveKernel{}
	if err := k.Reset(xs); err != nil {
		return nil, err
	}
	return k, nil
}

func (k *fiveKernel) Name() string { return "five" }
func (k *fiveKernel) N() int       { return k.n }

func (k *fiveKernel) Reset(xs []int) error {
	if err := checkCycleIDs(xs); err != nil {
		return err
	}
	n := len(xs)
	if n != k.n {
		k.n = n
		k.x = make([]int64, n)
		k.a = make([]uint8, n)
		k.b = make([]uint8, n)
		k.regX = make([]int64, n)
		k.regA = make([]uint8, n)
		k.regB = make([]uint8, n)
		k.present = make([]bool, n)
	}
	for i, x := range xs {
		k.x[i] = int64(x)
		k.a[i], k.b[i] = 0, 0
		k.regX[i], k.regA[i], k.regB[i] = 0, 0, 0
		k.present[i] = false
	}
	return nil
}

func (k *fiveKernel) Publish(i int32) {
	k.regX[i] = k.x[i]
	k.regA[i] = k.a[i]
	k.regB[i] = k.b[i]
	k.present[i] = true
}

func (k *fiveKernel) Observe(i int32) (bool, int32) {
	n := int32(k.n)
	l, r := i-1, i+1
	if l < 0 {
		l = n - 1
	}
	if r == n {
		r = 0
	}
	// Conflict sets mirror core.Five.Observe: all/higher over the present
	// neighbors' published color pairs (≤ 4 values each on the cycle).
	var allBuf, higherBuf [4]uint8
	all, higher := allBuf[:0], higherBuf[:0]
	x := k.x[i]
	for _, q := range [2]int32{l, r} {
		if !k.present[q] {
			continue
		}
		all = append(all, k.regA[q], k.regB[q])
		if k.regX[q] > x {
			higher = append(higher, k.regA[q], k.regB[q])
		}
	}
	if !contains8(all, k.a[i]) {
		return true, int32(k.a[i])
	}
	if !contains8(all, k.b[i]) {
		return true, int32(k.b[i])
	}
	k.a[i] = mex8(higher)
	k.b[i] = mex8(all)
	return false, 0
}

func (k *fiveKernel) Round(i int32) (bool, int32) {
	k.Publish(i)
	return k.Observe(i)
}

func (k *fiveKernel) ValidOutput(c int32) bool { return c >= 0 && c < 5 }

func (k *fiveKernel) BytesPerNode() int {
	return 8 + 1 + 1 + 8 + 1 + 1 + 1 // x a b regX regA regB present
}

// ---------------------------------------------------------------------------
// Six: Algorithm 1 (6-coloring with pairs (a, b), a+b ≤ 2).
// ---------------------------------------------------------------------------

// sixKernel is core.Pair in struct-of-arrays form. Pair components on the
// cycle are mex values over at most two neighbors, hence ≤ 2 and
// byte-sized; the encoded output core.EncodePair(a, b) fits an int32.
type sixKernel struct {
	n       int
	x       []int64
	a, b    []uint8
	regX    []int64
	regA    []uint8
	regB    []uint8
	present []bool
}

// NewSixKernel builds the Algorithm 1 kernel for the given identifiers.
func NewSixKernel(xs []int) (Kernel, error) {
	k := &sixKernel{}
	if err := k.Reset(xs); err != nil {
		return nil, err
	}
	return k, nil
}

func (k *sixKernel) Name() string { return "six" }
func (k *sixKernel) N() int       { return k.n }

func (k *sixKernel) Reset(xs []int) error {
	if err := checkCycleIDs(xs); err != nil {
		return err
	}
	n := len(xs)
	if n != k.n {
		k.n = n
		k.x = make([]int64, n)
		k.a = make([]uint8, n)
		k.b = make([]uint8, n)
		k.regX = make([]int64, n)
		k.regA = make([]uint8, n)
		k.regB = make([]uint8, n)
		k.present = make([]bool, n)
	}
	for i, x := range xs {
		k.x[i] = int64(x)
		k.a[i], k.b[i] = 0, 0
		k.regX[i], k.regA[i], k.regB[i] = 0, 0, 0
		k.present[i] = false
	}
	return nil
}

func (k *sixKernel) Publish(i int32) {
	k.regX[i] = k.x[i]
	k.regA[i] = k.a[i]
	k.regB[i] = k.b[i]
	k.present[i] = true
}

func (k *sixKernel) Observe(i int32) (bool, int32) {
	n := int32(k.n)
	l, r := i-1, i+1
	if l < 0 {
		l = n - 1
	}
	if r == n {
		r = 0
	}
	a, b := k.a[i], k.b[i]
	conflict := (k.present[l] && k.regA[l] == a && k.regB[l] == b) ||
		(k.present[r] && k.regA[r] == a && k.regB[r] == b)
	if !conflict {
		return true, int32(core.EncodePair(int(a), int(b)))
	}
	var aBuf, bBuf [2]uint8
	aUsed, bUsed := aBuf[:0], bBuf[:0]
	x := k.x[i]
	for _, q := range [2]int32{l, r} {
		if !k.present[q] {
			continue
		}
		switch {
		case k.regX[q] > x:
			aUsed = append(aUsed, k.regA[q])
		case k.regX[q] < x:
			bUsed = append(bUsed, k.regB[q])
		}
	}
	k.a[i] = mex8(aUsed)
	k.b[i] = mex8(bUsed)
	return false, 0
}

func (k *sixKernel) Round(i int32) (bool, int32) {
	k.Publish(i)
	return k.Observe(i)
}

func (k *sixKernel) ValidOutput(c int32) bool { return core.InPairPalette(int(c), 2) }

func (k *sixKernel) BytesPerNode() int {
	return 8 + 1 + 1 + 8 + 1 + 1 + 1
}

// ---------------------------------------------------------------------------
// Fast: Algorithm 3 (wait-free 5-coloring in O(log* n) rounds).
// ---------------------------------------------------------------------------

// fastKernel is core.Fast in struct-of-arrays form: the Five coloring
// component plus the Cole–Vishkin reduction state (evolving identifier x,
// green-light counter r with its ∞ flag).
type fastKernel struct {
	n       int
	x       []int64
	r       []int32
	rInf    []bool
	a, b    []uint8
	regX    []int64
	regR    []int32
	regRInf []bool
	regA    []uint8
	regB    []uint8
	present []bool
}

// NewFastKernel builds the Algorithm 3 kernel for the given identifiers.
func NewFastKernel(xs []int) (Kernel, error) {
	k := &fastKernel{}
	if err := k.Reset(xs); err != nil {
		return nil, err
	}
	return k, nil
}

func (k *fastKernel) Name() string { return "fast" }
func (k *fastKernel) N() int       { return k.n }

func (k *fastKernel) Reset(xs []int) error {
	if err := checkCycleIDs(xs); err != nil {
		return err
	}
	n := len(xs)
	if n != k.n {
		k.n = n
		k.x = make([]int64, n)
		k.r = make([]int32, n)
		k.rInf = make([]bool, n)
		k.a = make([]uint8, n)
		k.b = make([]uint8, n)
		k.regX = make([]int64, n)
		k.regR = make([]int32, n)
		k.regRInf = make([]bool, n)
		k.regA = make([]uint8, n)
		k.regB = make([]uint8, n)
		k.present = make([]bool, n)
	}
	for i, x := range xs {
		k.x[i] = int64(x)
		k.r[i], k.rInf[i] = 0, false
		k.a[i], k.b[i] = 0, 0
		k.regX[i], k.regR[i], k.regRInf[i] = 0, 0, false
		k.regA[i], k.regB[i] = 0, 0
		k.present[i] = false
	}
	return nil
}

func (k *fastKernel) Publish(i int32) {
	k.regX[i] = k.x[i]
	k.regR[i] = k.r[i]
	k.regRInf[i] = k.rInf[i]
	k.regA[i] = k.a[i]
	k.regB[i] = k.b[i]
	k.present[i] = true
}

func (k *fastKernel) Observe(i int32) (bool, int32) {
	n := int32(k.n)
	l, r := i-1, i+1
	if l < 0 {
		l = n - 1
	}
	if r == n {
		r = 0
	}
	// Coloring component (Algorithm 2 verbatim), mirroring core.Fast.
	var allBuf, higherBuf [4]uint8
	all, higher := allBuf[:0], higherBuf[:0]
	x := k.x[i]
	nPresent := 0
	for _, q := range [2]int32{l, r} {
		if !k.present[q] {
			continue
		}
		nPresent++
		all = append(all, k.regA[q], k.regB[q])
		if k.regX[q] > x {
			higher = append(higher, k.regA[q], k.regB[q])
		}
	}
	if !contains8(all, k.a[i]) {
		return true, int32(k.a[i])
	}
	if !contains8(all, k.b[i]) {
		return true, int32(k.b[i])
	}
	k.a[i] = mex8(higher)
	k.b[i] = mex8(all)

	// Identifier-reduction component: waits for full neighborhood
	// information, exactly as core.Fast does for ⊥ neighbors.
	if k.rInf[i] || nPresent != 2 {
		return false, 0
	}
	// Green light: r_p ≤ min{r_q, r_q'}, ∞ never blocks.
	if (!k.regRInf[l] && k.regR[l] < k.r[i]) || (!k.regRInf[r] && k.regR[r] < k.r[i]) {
		return false, 0
	}
	lo, hi := k.regX[l], k.regX[l]
	if k.regX[r] < lo {
		lo = k.regX[r]
	}
	if k.regX[r] > hi {
		hi = k.regX[r]
	}
	if lo < x && x < hi {
		// Interior of a monotone chain: Cole–Vishkin step against the
		// smaller neighbor.
		k.r[i]++
		if y := int64(cv.F(int(x), int(lo))); y < lo {
			k.x[i] = y
		}
	} else {
		// Local extremum: stop reducing forever; a local minimum dodges
		// the values its neighbors could reduce onto.
		k.rInf[i] = true
		if x < lo {
			// mex over the two values the neighbors could reduce onto.
			e0 := cv.F(int(k.regX[l]), int(x))
			e1 := cv.F(int(k.regX[r]), int(x))
			m := 0
			for m == e0 || m == e1 {
				m++
			}
			if int64(m) < x {
				k.x[i] = int64(m)
			}
		}
	}
	return false, 0
}

func (k *fastKernel) Round(i int32) (bool, int32) {
	k.Publish(i)
	return k.Observe(i)
}

func (k *fastKernel) ValidOutput(c int32) bool { return c >= 0 && c < 5 }

func (k *fastKernel) BytesPerNode() int {
	return 8 + 4 + 1 + 1 + 1 + 8 + 4 + 1 + 1 + 1 + 1 // x r rInf a b regX regR regRInf regA regB present
}
