package bigsim_test

import (
	"testing"

	"asynccycle/internal/bigsim"
	"asynccycle/internal/ids"
	"asynccycle/internal/protocol"
	"asynccycle/internal/runctl"
	"asynccycle/internal/schedule"
)

// TestSchedulerFamiliesAtLargeN is the scheduler scaling property test:
// every built-in family must drive the fast protocol at n = 10⁵ to
// completion within a linear activation budget (30 rounds per process —
// far above the 8·(log* n + 4) bound, far below anything quadratic), with
// the incremental checker on, every survivor terminated, the per-process
// round complexity within the paper's bound, and crash limits respected.
func TestSchedulerFamiliesAtLargeN(t *testing.T) {
	if testing.Short() {
		t.Skip("large-n property test skipped in -short mode")
	}
	const n = 100_000
	d, err := protocol.Lookup("fast")
	if err != nil {
		t.Fatal(err)
	}
	xs := ids.RandomIDs(n, 7)
	crashes := map[int]int{10: 0, 999: 3, n - 5: 7}
	budget := runctl.Budget{MaxActivations: 30 * n}

	for _, sf := range []struct {
		name string
		s    bigsim.Sched
	}{
		{"sync", bigsim.NewSync()},
		{"rr1", bigsim.NewRR(1)},
		{"rr64", bigsim.NewRR(64)},
		{"alt", bigsim.NewAlt()},
		{"burst4", bigsim.NewBurst(4)},
		{"random", bigsim.NewRandomSubset(0.4, 11)},
		{"one-ish", bigsim.NewRandomSubset(0.001, 13)}, // sparse random singletons at scale
	} {
		t.Run(sf.name, func(t *testing.T) {
			k, err := d.BigKernel(xs)
			if err != nil {
				t.Fatal(err)
			}
			e := bigsim.New(k)
			e.SetIncremental(true)
			for i, c := range crashes {
				e.CrashAfter(i, c)
			}
			reason, err := e.RunBudget(nil, sf.s, budget)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if reason != runctl.StopNone {
				t.Fatalf("budget tripped (%s): scheduler needs more than %d activations for n=%d",
					reason, budget.MaxActivations, n)
			}
			checkLargeRun(t, d, e, n, crashes)
		})
	}

	t.Run("sharded8", func(t *testing.T) {
		k, err := d.BigKernel(xs)
		if err != nil {
			t.Fatal(err)
		}
		e := bigsim.New(k)
		e.SetIncremental(true)
		for i, c := range crashes {
			e.CrashAfter(i, c)
		}
		reason, err := e.RunSharded(nil, 8, budget)
		if err != nil {
			t.Fatalf("sharded run: %v", err)
		}
		if reason != runctl.StopNone {
			t.Fatalf("budget tripped (%s) in sharded run", reason)
		}
		checkLargeRun(t, d, e, n, crashes)
	})
}

// checkLargeRun asserts the shared post-conditions of a large run without
// materializing per-node slices beyond one scan.
func checkLargeRun(t *testing.T, d *protocol.Descriptor, e *bigsim.Engine, n int, crashes map[int]int) {
	t.Helper()
	if err := e.VerifyFull(); err != nil {
		t.Fatalf("full verification: %v", err)
	}
	s := e.Summarize()
	if s.Terminated+s.Crashed != n {
		t.Fatalf("settled %d+%d nodes, want %d", s.Terminated, s.Crashed, n)
	}
	if s.Crashed > len(crashes) {
		t.Errorf("crashed %d nodes, but only %d were planned", s.Crashed, len(crashes))
	}
	if bound := d.Bound(n); s.MaxRounds > bound {
		t.Errorf("max rounds %d exceeds the wait-freedom bound %d", s.MaxRounds, bound)
	}
	// A planned crash fires only if the node has not terminated by its
	// limit (sim semantics); either way its round count respects the limit
	// when it did crash, and a limit-0 node can never wake.
	for i, limit := range crashes {
		if !e.Crashed(i) && !e.Done(i) {
			t.Errorf("node %d neither crashed nor terminated", i)
		}
		if e.Crashed(i) && e.Activations(i) > limit {
			t.Errorf("crashed node %d performed %d rounds, limit %d", i, e.Activations(i), limit)
		}
		if limit == 0 && (!e.Crashed(i) || e.Activations(i) != 0) {
			t.Errorf("node %d with limit 0 must crash without ever acting (crashed=%v acts=%d)",
				i, e.Crashed(i), e.Activations(i))
		}
	}
}

// TestShardBoundsInvariants pins the cut contract the parallel executor
// relies on: ascending bounds covering [0, n), interior cuts 64-aligned,
// and arcs long enough that distinct arcs' interiors never share a bitset
// word.
func TestShardBoundsInvariants(t *testing.T) {
	for _, n := range []int{3, 64, 127, 128, 512, 100_000, 1_000_000} {
		for _, workers := range []int{1, 2, 3, 8, 64} {
			bounds := schedule.ShardBounds(n, workers)
			if bounds[0] != 0 || bounds[len(bounds)-1] != n {
				t.Fatalf("n=%d w=%d: bounds %v do not cover [0, n)", n, workers, bounds)
			}
			for i := 1; i < len(bounds); i++ {
				if bounds[i] <= bounds[i-1] {
					t.Fatalf("n=%d w=%d: bounds %v not strictly ascending", n, workers, bounds)
				}
				if i < len(bounds)-1 && bounds[i]%64 != 0 {
					t.Fatalf("n=%d w=%d: interior cut %d not 64-aligned", n, workers, bounds[i])
				}
			}
			if len(bounds)-1 > 1 {
				for i := 1; i < len(bounds); i++ {
					if arc := bounds[i] - bounds[i-1]; arc < 128 {
						t.Fatalf("n=%d w=%d: arc length %d below the minimum", n, workers, arc)
					}
				}
			}
		}
	}
}
