package bigsim

import (
	"fmt"
	"math/rand"

	"asynccycle/internal/schedule"
)

// Sched produces activation sets for the big engine without allocating on
// the warm path: Next appends into buf (the engine's reusable decode
// buffer) and returns the extended slice. Every native scheduler
// reproduces the decision sequence of its internal/schedule counterpart
// exactly — same choices, same random-stream consumption — so a bigsim run
// and a sim run under same-family, same-seed schedulers are byte-identical
// (pinned by the differential tests).
type Sched interface {
	Name() string
	Next(e *Engine, buf []int32) []int32
}

// batcher is the optional batched-decoding extension: NextBatch appends up
// to cap(buf) singleton activations — each node at most once per batch —
// letting the engine replay them as individual steps without per-step
// dispatch. Legal exactly because a node's working status changes only by
// its own activation: with each node named at most once, decode-time
// status equals execution-time status. Batchable gates the path: it must
// report true only when the scheduler's current configuration emits
// singleton steps (a multi-node step cannot be replayed as singletons).
type batcher interface {
	Batchable() bool
	NextBatch(e *Engine, buf []int32) []int32
}

// Wrap adapts any internal/schedule scheduler to the big engine (the
// engine implements schedule.State). The adapter allocates whatever the
// wrapped scheduler allocates; use the native schedulers for warm paths.
func Wrap(s schedule.Scheduler) Sched { return &wrapped{s} }

type wrapped struct{ s schedule.Scheduler }

func (w *wrapped) Name() string { return w.s.Name() }

func (w *wrapped) Next(e *Engine, buf []int32) []int32 {
	for _, i := range w.s.Next(e) {
		buf = append(buf, int32(i))
	}
	return buf
}

// appendWorking appends the working nodes in ascending order, skipping
// whole empty bitset words.
func (e *Engine) appendWorking(buf []int32) []int32 {
	for w, word := range e.work {
		base := int32(w * 64)
		for word != 0 {
			buf = append(buf, base+int32(trailingZeros(word)))
			word &= word - 1
		}
	}
	return buf
}

// Sync activates every working process at every step — the frontier makes
// this O(working) instead of O(n) per step.
type Sync struct{}

// NewSync returns the synchronous scheduler.
func NewSync() Sync { return Sync{} }

// Name implements Sched.
func (Sync) Name() string { return "synchronous" }

// Next implements Sched.
func (Sync) Next(e *Engine, buf []int32) []int32 { return e.appendWorking(buf) }

// RR activates Width working processes per step, cycling through indices —
// the exact decision sequence of schedule.RoundRobin. Width 1 additionally
// supports batched decoding: one batch is one cyclic sweep of the working
// set, each node at most once.
type RR struct {
	Width int
	next  int32
}

// NewRR returns a round-robin scheduler of the given width (≥ 1).
func NewRR(width int) *RR {
	if width < 1 {
		width = 1
	}
	return &RR{Width: width}
}

// Name implements Sched.
func (r *RR) Name() string { return fmt.Sprintf("round-robin(%d)", r.Width) }

// Next implements Sched.
func (r *RR) Next(e *Engine, buf []int32) []int32 {
	n := int32(e.n)
	found := 0
	for scanned := int32(0); scanned < n && found < r.Width; scanned++ {
		i := r.next + scanned
		if i >= n {
			i -= n
		}
		if bitGet(e.work, int(i)) {
			buf = append(buf, i)
			found++
		}
	}
	if found > 0 {
		r.next = buf[len(buf)-1] + 1
		if r.next >= n {
			r.next = 0
		}
	}
	return buf
}

// Batchable implements batcher: only the width-1 configuration emits
// singleton steps.
func (r *RR) Batchable() bool { return r.Width == 1 }

// NextBatch implements batcher for Width == 1: one cyclic sweep of the
// working set, up to cap(buf) singleton choices decoded at once.
func (r *RR) NextBatch(e *Engine, buf []int32) []int32 {
	n := int32(e.n)
	cursor := r.next
	for scanned := int32(0); scanned < n && len(buf) < cap(buf); scanned++ {
		i := cursor + scanned
		if i >= n {
			i -= n
		}
		if bitGet(e.work, int(i)) {
			buf = append(buf, i)
		}
	}
	if len(buf) > 0 {
		r.next = buf[len(buf)-1] + 1
		if r.next >= n {
			r.next = 0
		}
	}
	return buf
}

// Alt alternates the even- and odd-index classes, mirroring
// schedule.Alternating (including the fallback to everyone when the
// scheduled class is empty).
type Alt struct{}

// NewAlt returns the alternating scheduler.
func NewAlt() Alt { return Alt{} }

// Name implements Sched.
func (Alt) Name() string { return "alternating" }

// Next implements Sched.
func (Alt) Next(e *Engine, buf []int32) []int32 {
	parity := int32(e.Time() % 2)
	start := len(buf)
	for w, word := range e.work {
		base := int32(w * 64)
		for word != 0 {
			i := base + int32(trailingZeros(word))
			word &= word - 1
			if i%2 != parity {
				buf = append(buf, i)
			}
		}
	}
	if len(buf) == start {
		buf = e.appendWorking(buf)
	}
	return buf
}

// BurstSched activates one process K times in a row before moving on —
// the exact decision sequence of schedule.Burst.
type BurstSched struct {
	K       int
	current int32
	fired   int
}

// NewBurst returns a burst scheduler giving each process k ≥ 1
// consecutive solo steps.
func NewBurst(k int) *BurstSched {
	if k < 1 {
		k = 1
	}
	return &BurstSched{K: k}
}

// Name implements Sched.
func (b *BurstSched) Name() string { return fmt.Sprintf("burst(%d)", b.K) }

// Next implements Sched.
func (b *BurstSched) Next(e *Engine, buf []int32) []int32 {
	n := int32(e.n)
	for scanned := int32(0); scanned <= n; scanned++ {
		i := b.current + scanned
		for i >= n {
			i -= n
		}
		if !bitGet(e.work, int(i)) {
			continue
		}
		if i != b.current {
			b.current = i
			b.fired = 0
		}
		b.fired++
		if b.fired >= b.K {
			b.current = i + 1
			if b.current >= n {
				b.current = 0
			}
			b.fired = 0
		}
		return append(buf, i)
	}
	return buf
}

// RandomSubset independently activates each working process with
// probability P, always including at least one — same stream consumption
// as schedule.RandomSubset (one Float64 per working process, plus one Intn
// when the draw comes up empty), so same seed ⇒ same schedule.
type RandomSubset struct {
	P       float64
	rng     *rand.Rand
	workBuf []int32
}

// NewRandomSubset returns a random-subset scheduler with inclusion
// probability p (clamped to (0, 1]) and the given seed.
func NewRandomSubset(p float64, seed int64) *RandomSubset {
	if p <= 0 {
		p = 0.5
	}
	if p > 1 {
		p = 1
	}
	return &RandomSubset{P: p, rng: rand.New(rand.NewSource(seed))}
}

// Name implements Sched.
func (s *RandomSubset) Name() string { return fmt.Sprintf("random-subset(p=%.2f)", s.P) }

// Next implements Sched.
func (s *RandomSubset) Next(e *Engine, buf []int32) []int32 {
	s.workBuf = e.appendWorking(s.workBuf[:0])
	start := len(buf)
	for _, i := range s.workBuf {
		if s.rng.Float64() < s.P {
			buf = append(buf, i)
		}
	}
	if len(buf) == start && len(s.workBuf) > 0 {
		buf = append(buf, s.workBuf[s.rng.Intn(len(s.workBuf))])
	}
	return buf
}

// RandomOne activates a single uniformly random working process per step,
// with schedule.RandomOne's exact stream consumption (one Intn per step
// with a working process).
type RandomOne struct {
	rng *rand.Rand
}

// NewRandomOne returns a random-one scheduler with the given seed.
func NewRandomOne(seed int64) *RandomOne {
	return &RandomOne{rng: rand.New(rand.NewSource(seed))}
}

// Name implements Sched.
func (s *RandomOne) Name() string { return "random-one" }

// Next implements Sched.
func (s *RandomOne) Next(e *Engine, buf []int32) []int32 {
	if e.nWork == 0 {
		return buf
	}
	k := s.rng.Intn(e.nWork)
	// Select the k-th working node (ascending) by skipping whole bitset
	// words via popcount.
	for w, word := range e.work {
		c := popcount(word)
		if k >= c {
			k -= c
			continue
		}
		for ; k > 0; k-- {
			word &= word - 1
		}
		return append(buf, int32(w*64+trailingZeros(word)))
	}
	return buf
}

// ParseSched resolves a native scheduler family by the short name the
// CLIs and the job server share — the same names, seeds, and parameters
// as schedule.Parse, decision-stream-identical to the generic families.
func ParseSched(name string, seed int64) (Sched, error) {
	switch name {
	case "sync":
		return NewSync(), nil
	case "rr":
		return NewRR(1), nil
	case "random":
		return NewRandomSubset(0.4, seed), nil
	case "one":
		return NewRandomOne(seed), nil
	case "alt":
		return NewAlt(), nil
	case "burst":
		return NewBurst(4), nil
	default:
		return nil, fmt.Errorf("unknown scheduler %q", name)
	}
}
