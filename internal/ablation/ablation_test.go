package ablation_test

import (
	"fmt"
	"testing"

	"asynccycle/internal/ablation"
	"asynccycle/internal/check"
	"asynccycle/internal/core"
	"asynccycle/internal/graph"
	"asynccycle/internal/ids"
	"asynccycle/internal/model"
	"asynccycle/internal/schedule"
	"asynccycle/internal/sim"
)

// xHolder is implemented by both core.Fast and ablation.Node.
type xHolder interface{ X() int }

// identifierInvariant checks Lemma 4.5 (internal and published identifiers
// properly color the cycle) on any engine whose nodes expose X().
func identifierInvariant(g graph.Graph) model.Invariant[core.FastVal] {
	return func(e *sim.Engine[core.FastVal]) error {
		for _, edge := range g.Edges() {
			p, q := edge[0], edge[1]
			xp := e.NodeState(p).(xHolder).X()
			xq := e.NodeState(q).(xHolder).X()
			if xp == xq {
				return fmt.Errorf("X_%d == X_%d == %d", p, q, xp)
			}
			if rq := e.Register(q); rq.Present && xp == rq.Val.X {
				return fmt.Errorf("X_%d == X̂_%d == %d", p, q, xp)
			}
			if rp := e.Register(p); rp.Present && xq == rp.Val.X {
				return fmt.Errorf("X_%d == X̂_%d == %d", q, p, xq)
			}
		}
		return nil
	}
}

func TestVariantNames(t *testing.T) {
	for _, v := range ablation.All() {
		if v.String() == "unknown-variant" {
			t.Errorf("variant %d has no name", v)
		}
	}
	if ablation.Variant(99).String() != "unknown-variant" {
		t.Error("unknown variant misnamed")
	}
}

// TestNoGreenLightViolatesLemma45 removes the handshake and lets the model
// checker find an execution in which two adjacent identifiers collide —
// certifying the green-light mechanism is necessary for Lemma 4.5.
func TestNoGreenLightViolatesLemma45(t *testing.T) {
	found := false
	// Small search over id patterns with enough bit structure to collide.
	patterns := [][]int{
		{12, 20, 5, 30},
		{5, 12, 20, 30},
		{20, 12, 30, 5},
		{6, 20, 12, 30},
	}
	for _, xs := range patterns {
		g := graph.MustCycle(len(xs))
		e, _ := sim.NewEngine(g, ablation.NewNodes(xs, ablation.NoGreenLight))
		rep := model.Explore(e, model.Options{SingletonsOnly: true, MaxStates: 500_000}, identifierInvariant(g))
		if len(rep.Violations) > 0 {
			found = true
			break
		}
	}
	if !found {
		t.Error("no Lemma 4.5 violation found without the green light; the ablation should break the invariant")
	}
}

// TestGreenLightRestoresInvariant is the control: the same searches on the
// real Algorithm 3 find nothing.
func TestGreenLightRestoresInvariant(t *testing.T) {
	patterns := [][]int{
		{12, 20, 5, 30},
		{5, 12, 20, 30},
		{20, 12, 30, 5},
		{6, 20, 12, 30},
	}
	for _, xs := range patterns {
		g := graph.MustCycle(len(xs))
		e, _ := sim.NewEngine(g, core.NewFastNodes(xs))
		rep := model.Explore(e, model.Options{SingletonsOnly: true, MaxStates: 500_000}, identifierInvariant(g))
		if len(rep.Violations) > 0 {
			t.Fatalf("ids %v: real Algorithm 3 violated Lemma 4.5: %v", xs, rep.Violations)
		}
		if !rep.Ok() {
			t.Fatalf("ids %v: %s", xs, rep)
		}
	}
}

// TestNoEvadeSafeButPresent verifies the evasion step is an accelerator,
// not a safety guard: without it the invariant and the coloring still hold
// everywhere.
func TestNoEvadeSafeButPresent(t *testing.T) {
	xs := []int{12, 20, 5, 30}
	g := graph.MustCycle(len(xs))
	e, _ := sim.NewEngine(g, ablation.NewNodes(xs, ablation.NoEvade))
	inv := func(e *sim.Engine[core.FastVal]) error {
		if err := identifierInvariant(g)(e); err != nil {
			return err
		}
		r := e.Result()
		if err := check.ProperColoring(g, r); err != nil {
			return err
		}
		return check.PaletteRange(r, 5)
	}
	rep := model.Explore(e, model.Options{SingletonsOnly: true, MaxStates: 1_000_000}, inv)
	if !rep.Ok() {
		t.Fatalf("no-evade variant failed: %s %v", rep, rep.Violations)
	}
}

// TestEagerEvadeViolatesLemma45 reproduces the first documented
// counterexample: evading with a ⊥ neighbor lets that neighbor later
// reduce onto the blindly chosen identifier.
func TestEagerEvadeViolatesLemma45(t *testing.T) {
	found := false
	for seed := int64(0); seed < 100 && !found; seed++ {
		g := graph.MustCycle(5)
		xs := []int{1, 2, 3, 4, 5}
		e, _ := sim.NewEngine(g, ablation.NewNodes(xs, ablation.EagerEvade))
		violated := false
		inv := identifierInvariant(g)
		e.AddHook(func(e *sim.Engine[core.FastVal], t int, _ []int) {
			if inv(e) != nil {
				violated = true
			}
		})
		_, _ = e.Run(schedule.NewRandomSubset(0.4, seed), 10_000)
		found = violated
	}
	if !found {
		t.Error("eager evasion should violate Lemma 4.5 under some random schedule")
	}
}

// TestEagerInfDegeneratesToLinear shows the second counterexample: taking
// r ← ∞ on partial views disables reduction under sequential schedulers,
// collapsing Algorithm 3 to Algorithm 2's Θ(n) behaviour.
func TestEagerInfDegeneratesToLinear(t *testing.T) {
	n := 512
	g := graph.MustCycle(n)
	xs := ids.MustGenerate(ids.Increasing, n, 0)

	eBad, _ := sim.NewEngine(g, ablation.NewNodes(xs, ablation.EagerInf))
	resBad, err := eBad.Run(schedule.NewRoundRobin(1), 1000*n)
	if err != nil {
		t.Fatal(err)
	}
	eGood, _ := sim.NewEngine(g, core.NewFastNodes(xs))
	resGood, err := eGood.Run(schedule.NewRoundRobin(1), 1000*n)
	if err != nil {
		t.Fatal(err)
	}
	if resGood.MaxActivations() > 20 {
		t.Errorf("real Algorithm 3 used %d activations; expected log*-ish", resGood.MaxActivations())
	}
	if resBad.MaxActivations() < 10*resGood.MaxActivations() {
		t.Errorf("eager-inf used %d activations vs %d — expected Θ(n) degeneration",
			resBad.MaxActivations(), resGood.MaxActivations())
	}
	// Safety still holds for the degenerate variant.
	if err := check.ProperColoring(g, resBad); err != nil {
		t.Error(err)
	}
}

// TestReducerOnlyProgressClass certifies the paper's §1.3 classification
// of the identifier-reduction component: starvation-free, but neither
// wait-free nor obstruction-free.
func TestReducerOnlyProgressClass(t *testing.T) {
	xs := []int{12, 25, 18} // all ≥ 10 so reduction actually runs
	g := graph.MustCycle(3)

	// Not wait-free: some schedule keeps a blocked process spinning.
	e1, _ := sim.NewEngine(g, ablation.NewNodes(xs, ablation.ReducerOnly))
	rep := model.Explore(e1, model.Options{SingletonsOnly: true}, nil)
	if !rep.CycleFound {
		t.Error("reducer-only should not be wait-free (no livelock cycle found)")
	}

	// Not obstruction-free: a blocked process running solo stays blocked.
	e2, _ := sim.NewEngine(g, ablation.NewNodes(xs, ablation.ReducerOnly))
	counter, _ := model.ObstructionFree(e2, model.Options{SingletonsOnly: true, MaxStates: 200_000}, 20)
	if counter == "" {
		t.Error("reducer-only should not be obstruction-free")
	}

	// Starvation-free: under fair schedules everyone terminates — no fair
	// livelock component exists.
	e3, _ := sim.NewEngine(g, ablation.NewNodes(xs, ablation.ReducerOnly))
	desc, frep := model.FairlyTerminates(e3, model.Options{SingletonsOnly: true})
	if desc != "" {
		t.Errorf("reducer-only should be starvation-free; found: %s (%s)", desc, frep)
	}
}

// TestFullAlgorithmIsWaitFreeControl contrasts the component with the full
// algorithm, which passes all three progress analyses.
func TestFullAlgorithmIsWaitFreeControl(t *testing.T) {
	xs := []int{12, 25, 18}
	g := graph.MustCycle(3)

	e1, _ := sim.NewEngine(g, core.NewFastNodes(xs))
	rep := model.Explore(e1, model.Options{SingletonsOnly: true}, nil)
	if rep.CycleFound || !rep.Ok() {
		t.Errorf("full Algorithm 3 not wait-free? %s", rep)
	}

	e2, _ := sim.NewEngine(g, core.NewFastNodes(xs))
	counter, _ := model.ObstructionFree(e2, model.Options{SingletonsOnly: true, MaxStates: 200_000}, 20)
	if counter != "" {
		t.Errorf("full Algorithm 3 should be obstruction-free: %s", counter)
	}

	e3, _ := sim.NewEngine(g, core.NewFastNodes(xs))
	if desc, _ := model.FairlyTerminates(e3, model.Options{SingletonsOnly: true}); desc != "" {
		t.Errorf("full Algorithm 3 should be starvation-free: %s", desc)
	}
}

func TestVariantCloneIndependence(t *testing.T) {
	n := ablation.New(42, ablation.NoEvade)
	c := n.Clone()
	view := []sim.Cell[core.FastVal]{
		{Present: true, Val: core.FastVal{X: 50, A: 0, B: 0}},
		{Present: true, Val: core.FastVal{X: 30, A: 0, B: 0}},
	}
	c.Observe(view)
	if got := n.Publish(); got.A != 0 || got.B != 0 {
		t.Error("observing the clone mutated the original")
	}
}
