// Package ablation provides deliberately weakened variants of Algorithm 3
// used to demonstrate that each of its mechanisms is load-bearing
// (experiments E16/E17):
//
//   - NoGreenLight drops the r-counter handshake (lines 11, 13): the model
//     checker then finds executions violating Lemma 4.5's identifier
//     invariant — neighbors reduce "past each other" onto equal values.
//   - NoEvade drops the local-minimum evasion (lines 18–19): safety is
//     preserved (the evasion is an accelerator, not a guard), measurably
//     costing extra rounds on adversarial inputs.
//   - EagerEvade runs the evasion with partial (⊥) neighborhood
//     information: the invariant checker finds Lemma 4.5 violations within
//     a handful of steps (the first counterexample documented in
//     EXPERIMENTS.md F1's notes).
//   - EagerInf takes the r ← ∞ branch with partial information: safe, but
//     sequential schedulers then disable reduction permanently for every
//     node and the algorithm degenerates to Algorithm 2's Θ(n) behaviour.
//   - ReducerOnly strips the coloring component entirely and terminates
//     when its identifier stabilizes (r = ∞ or X < 10): per the paper's
//     §1.3 discussion this component alone is *starvation-free but not
//     wait-free and not obstruction-free*, which the progress analyzers
//     certify exhaustively.
//
// The variants intentionally duplicate (rather than parameterize) the core
// implementation: the production algorithm in internal/core stays free of
// experiment knobs.
package ablation

import (
	"asynccycle/internal/core"
	"asynccycle/internal/cv"
	"asynccycle/internal/sim"
)

// Variant selects a weakened Algorithm 3.
type Variant int

const (
	// NoGreenLight ignores the r-handshake before reducing.
	NoGreenLight Variant = iota + 1
	// NoEvade skips the local-minimum evasion step.
	NoEvade
	// EagerEvade evades with partial neighborhood information.
	EagerEvade
	// EagerInf freezes r = ∞ based on partial neighborhood information.
	EagerInf
	// ReducerOnly runs only the identifier-reduction component and
	// terminates when the identifier stabilizes.
	ReducerOnly
)

var variantNames = map[Variant]string{
	NoGreenLight: "no-green-light",
	NoEvade:      "no-evade",
	EagerEvade:   "eager-evade",
	EagerInf:     "eager-inf",
	ReducerOnly:  "reducer-only",
}

// String returns the variant's name.
func (v Variant) String() string {
	if s, ok := variantNames[v]; ok {
		return s
	}
	return "unknown-variant"
}

// All lists every variant.
func All() []Variant {
	return []Variant{NoGreenLight, NoEvade, EagerEvade, EagerInf, ReducerOnly}
}

// Node is a weakened Algorithm 3 process. It publishes core.FastVal so the
// standard checkers and engines apply unchanged.
type Node struct {
	variant Variant
	x       int
	rInf    bool
	r       int
	a, b    int
}

// New returns a process running the given variant with the given
// identifier.
func New(id int, v Variant) *Node { return &Node{variant: v, x: id} }

// NewNodes builds one process per identifier.
func NewNodes(xs []int, v Variant) []sim.Node[core.FastVal] {
	nodes := make([]sim.Node[core.FastVal], len(xs))
	for i, x := range xs {
		nodes[i] = New(x, v)
	}
	return nodes
}

// X returns the current identifier (used by the invariant checkers).
func (n *Node) X() int { return n.x }

// Publish implements sim.Node.
func (n *Node) Publish() core.FastVal {
	return core.FastVal{X: n.x, RInf: n.rInf, R: n.r, A: n.a, B: n.b}
}

// Observe implements sim.Node.
func (n *Node) Observe(view []sim.Cell[core.FastVal]) sim.Decision {
	present := view[:0:0]
	var all, higher []int
	for _, c := range view {
		if !c.Present {
			continue
		}
		present = append(present, c)
		all = append(all, c.Val.A, c.Val.B)
		if c.Val.X > n.x {
			higher = append(higher, c.Val.A, c.Val.B)
		}
	}

	if n.variant == ReducerOnly {
		// Termination = identifier stabilized; no coloring component.
		if n.rInf || n.x < 10 {
			return sim.Decision{Return: true, Output: n.x}
		}
	} else {
		if !contains(all, n.a) {
			return sim.Decision{Return: true, Output: n.a}
		}
		if !contains(all, n.b) {
			return sim.Decision{Return: true, Output: n.b}
		}
		n.a = mex(higher)
		n.b = mex(all)
	}

	n.reduce(view, present)
	return sim.Decision{}
}

// reduce runs the identifier-reduction component under the variant's
// weakened rules.
func (n *Node) reduce(view, present []sim.Cell[core.FastVal]) {
	if n.rInf || len(present) == 0 {
		return
	}
	fullInfo := len(present) == len(view)
	switch n.variant {
	case EagerEvade, EagerInf:
		// Partial information allowed: proceed regardless.
	default:
		if !fullInfo {
			return
		}
	}
	if !n.greenLight(present) {
		return
	}
	lo, hi := present[0].Val.X, present[0].Val.X
	for _, c := range present[1:] {
		if c.Val.X < lo {
			lo = c.Val.X
		}
		if c.Val.X > hi {
			hi = c.Val.X
		}
	}
	if lo < n.x && n.x < hi {
		n.r++
		if y := cv.F(n.x, lo); y < lo {
			n.x = y
		}
		return
	}
	// Extremum branch. The two "eager" variants isolate the two partial-
	// information bugs from each other: EagerInf freezes r on partial
	// views (performance bug) but evades only on full information;
	// EagerEvade evades on partial views (safety bug) but freezes only on
	// full information.
	if fullInfo || n.variant == EagerInf {
		n.rInf = true
	}
	if n.x >= lo {
		return
	}
	switch n.variant {
	case NoEvade:
		// Accelerator removed: keep the identifier.
	case EagerEvade:
		n.evade(present)
	default:
		if fullInfo {
			n.evade(present)
		}
	}
}

func (n *Node) evade(present []sim.Cell[core.FastVal]) {
	evade := make([]int, 0, len(present))
	for _, c := range present {
		evade = append(evade, cv.F(c.Val.X, n.x))
	}
	if m := mex(evade); m < n.x {
		n.x = m
	}
}

// greenLight applies the handshake, except for NoGreenLight.
func (n *Node) greenLight(present []sim.Cell[core.FastVal]) bool {
	if n.variant == NoGreenLight {
		return true
	}
	for _, c := range present {
		if !c.Val.RInf && c.Val.R < n.r {
			return false
		}
	}
	return true
}

// Clone implements sim.Node.
func (n *Node) Clone() sim.Node[core.FastVal] {
	cp := *n
	return &cp
}

// HashFingerprint implements sim.Hashable.
func (n *Node) HashFingerprint(h *sim.FPHasher) {
	h.HashInt(int(n.variant))
	h.HashInt(n.x)
	h.HashBool(n.rInf)
	h.HashInt(n.r)
	h.HashInt(n.a)
	h.HashInt(n.b)
}

var _ sim.Node[core.FastVal] = (*Node)(nil)

func mex(used []int) int {
	for v := 0; ; v++ {
		found := false
		for _, u := range used {
			if u == v {
				found = true
				break
			}
		}
		if !found {
			return v
		}
	}
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
