// Package ssuni implements self-stabilizing coloring of the
// unidirectional cycle (after Bernard, Devismes, Potop-Butucaru, Tixeuil,
// arXiv:0805.0851): every process reads only its *predecessor* on the
// ring, starts from an arbitrary (possibly corrupted) color, and the
// system converges to a proper coloring under any fair schedule — and
// stays proper once it gets there.
//
// The rule is deliberately minimal. With K = 3 colors, a process moves
// only when it conflicts with its predecessor:
//
//	non-root i:  c_i == c_{i-1}  ⇒  c_i ← c_i + 1 (mod K)
//	root 0:      c_0 == c_{n-1}  ⇒  c_0 ← c_0 + 2 (mod K)
//
// Conflicts can only travel forward around the ring (a move resolves the
// conflict with the predecessor and can at worst create one with the
// successor), so the number of conflicting edges never increases and any
// persistent conflict wave must keep passing through the root. The root's
// +2 increment is the symmetry breaker: with a uniform +1 rule the
// anonymous ring admits a fair livelock in which a conflict wave
// circulates forever (e.g. on C4: (2,0,1,2) returns to itself after 12
// moves) — the root's different increment de-synchronizes the wave and
// the system converges. Closure is immediate: a properly colored ring has
// no conflicting edge, so no process is enabled and the configuration is
// a fixpoint.
//
// Nothing ever terminates (self-stabilizing protocols run forever), so
// the correctness story is the contract.Stabilizing shape checked by
// model.CheckStabilization: closure plus convergence from all K^n initial
// states, certified exhaustively on small rings (EXPERIMENTS.md E24).
//
// The analysis is for the central-daemon model: one process moves at a
// time, which the engine's interleaved mode realizes (simultaneous
// activation sets in interleaved mode are sequential compositions of
// singleton moves, so they add no reachable states).
package ssuni

import (
	"fmt"

	"asynccycle/internal/graph"
	"asynccycle/internal/sim"
)

// K is the palette size. Three colors suffice: every cycle is
// 3-colorable, and the conflict-wave argument above needs K ≥ 3 so a
// move never recreates the conflict it resolves.
const K = 3

// Node is one ring process: its state is just its current color.
type Node struct {
	k    int
	root bool
	c    int
}

// Publish writes the current color to the register.
func (nd *Node) Publish() int { return nd.c }

// Observe applies the move rule against the predecessor's register
// (view[0] on the standard cycle, whose neighbor order is [pred, succ]).
// The node never returns: stabilizing processes run forever.
func (nd *Node) Observe(view []sim.Cell[int]) sim.Decision {
	if view[0].Present && view[0].Val == nd.c {
		inc := 1
		if nd.root {
			inc = 2
		}
		nd.c = (nd.c + inc) % nd.k
	}
	return sim.Decision{}
}

// Clone implements sim.Node.
func (nd *Node) Clone() sim.Node[int] { cp := *nd; return &cp }

// HashFingerprint implements sim.Hashable for the compact state tables.
func (nd *Node) HashFingerprint(h *sim.FPHasher) {
	h.HashInt(nd.c)
	h.HashBool(nd.root)
}

// Colors normalizes an arbitrary identifier vector into an initial color
// vector in [0, K): the registry feeds protocol identifiers through it so
// any id assignment denotes an initial (possibly corrupted) state.
func Colors(xs []int) []int {
	out := make([]int, len(xs))
	for i, x := range xs {
		out[i] = ((x % K) + K) % K
	}
	return out
}

// NewNodes builds the ring processes for the given initial colors
// (values taken mod K); node 0 is the root.
func NewNodes(colors []int) []sim.Node[int] {
	nodes := make([]sim.Node[int], len(colors))
	for i, c := range colors {
		nodes[i] = &Node{k: K, root: i == 0, c: ((c % K) + K) % K}
	}
	return nodes
}

// NewAnonymousNodes builds the ring with the uniform rule (every process
// +1, no root) — the deliberately broken variant whose fair livelock on
// C4 motivates the root's +2 increment. It exists so the checkers'
// negative tests and experiment E24 can demonstrate the failure.
func NewAnonymousNodes(colors []int) []sim.Node[int] {
	nodes := make([]sim.Node[int], len(colors))
	for i, c := range colors {
		nodes[i] = &Node{k: K, root: false, c: ((c % K) + K) % K}
	}
	return nodes
}

// NewEngine builds a ready engine on C_n starting from the given colors:
// registers are seeded with the initial colors (an arbitrary initial
// *published* state, the self-stabilization model) and Result snapshots
// carry the register values so legitimacy is checkable from a Result.
func NewEngine(colors []int) (*sim.Engine[int], error) {
	g, err := graph.Cycle(len(colors))
	if err != nil {
		return nil, err
	}
	e, err := sim.NewEngine(g, NewNodes(colors))
	if err != nil {
		return nil, err
	}
	if err := e.SeedRegisters(Colors(colors)); err != nil {
		return nil, err
	}
	e.SetRecordValues(true)
	return e, nil
}

// Legal is the legitimacy predicate over a live engine, the invariant
// model.CheckStabilization consumes: the published colors properly color
// the ring AND no process holds a pending move (its internal color must
// equal its register). The second conjunct matters because the engine's
// round publishes the *pre-move* color first and reveals the new color
// only at the next activation — a configuration whose registers happen to
// be proper while a process still carries an unpublished recoloring is
// transient, not legitimate: the pending publish can reintroduce a
// conflict, which would break closure if such states counted as legal.
// Legitimate configurations under this definition are exact fixpoints.
func Legal(e *sim.Engine[int]) error {
	n := e.N()
	for i := 0; i < n; i++ {
		nd, ok := e.NodeState(i).(*Node)
		if !ok {
			return fmt.Errorf("process %d is not an ssuni node", i)
		}
		reg := e.Register(i)
		if !reg.Present || reg.Val != nd.c {
			return fmt.Errorf("process %d has a pending move (register %v, internal color %d)", i, reg, nd.c)
		}
		j := i + 1
		if j == n {
			j = 0
		}
		b := e.Register(j)
		if b.Present && reg.Val == b.Val {
			return fmt.Errorf("edge (%d,%d) conflicts: both color %d", i, j, reg.Val)
		}
	}
	return nil
}

// ProperRing is the same legitimacy predicate over a Result snapshot
// (the contract's safety property): the recorded register values must
// properly color every graph edge. Results without recorded values are
// rejected — legitimacy of a stabilizing run lives in the registers.
func ProperRing(g graph.Graph, r sim.Result) error {
	if r.Values == nil {
		return fmt.Errorf("no register values recorded (stabilizing runs need sim.Result.Values)")
	}
	for i := 0; i < g.N(); i++ {
		for _, q := range g.Neighbors(i) {
			if i < q && r.Values[i] >= 0 && r.Values[i] == r.Values[q] {
				return fmt.Errorf("edge (%d,%d) conflicts: both color %d", i, q, r.Values[i])
			}
		}
	}
	return nil
}

// PaletteRange checks the recorded colors lie in [0, K) — trivially true
// for the rule's own moves, and part of the legitimacy definition.
func PaletteRange(g graph.Graph, r sim.Result) error {
	if r.Values == nil {
		return fmt.Errorf("no register values recorded (stabilizing runs need sim.Result.Values)")
	}
	for i, v := range r.Values {
		if v < 0 || v >= K {
			return fmt.Errorf("process %d publishes color %d outside [0,%d)", i, v, K)
		}
	}
	return nil
}

// ConvergenceBound returns a number of fair round-robin activations after
// which any crash-free execution from any initial state must have reached
// a proper coloring — the fuzzer's convergence oracle. A conflict wave
// advances at most one edge per full round-robin pass and dies within a
// bounded number of root passages, giving O(n) passes of n activations
// each; the constant carries ≥ 2× slack over the worst convergence times
// observed by the package's exhaustive (n ≤ 8) and sampled (n ≤ 14)
// measurements. Convergence assumes no crashes: a crashed process frozen
// in conflict with its predecessor stalls the wave forever, which is why
// stabilization oracles only run on crash-free executions.
func ConvergenceBound(n int) int { return n * (4*n + 16) }
