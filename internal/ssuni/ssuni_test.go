package ssuni

import (
	"strings"
	"testing"

	"asynccycle/internal/graph"
	"asynccycle/internal/model"
	"asynccycle/internal/sim"
)

// allStates enumerates [0,K)^n.
func allStates(n int) [][]int {
	total := 1
	for i := 0; i < n; i++ {
		total *= K
	}
	out := make([][]int, 0, total)
	for s := 0; s < total; s++ {
		colors := make([]int, n)
		v := s
		for i := range colors {
			colors[i] = v % K
			v /= K
		}
		out = append(out, colors)
	}
	return out
}

// TestStabilizationExhaustive is the E24 certificate: closure and
// convergence from ALL 3^n initial states on C4 and C5, over the full
// reachable schedule space (all activation subsets, interleaved mode).
func TestStabilizationExhaustive(t *testing.T) {
	for _, n := range []int{3, 4, 5} {
		states := 0
		for _, colors := range allStates(n) {
			e, err := NewEngine(colors)
			if err != nil {
				t.Fatal(err)
			}
			sr := model.CheckStabilization(e, model.Options{}, Legal)
			if !sr.OK() {
				t.Fatalf("n=%d initial %v: %s\nclosure=%v livelock=%q",
					n, colors, sr, sr.ClosureViolations, sr.LivelockWitness)
			}
			states += sr.Explore.States
		}
		t.Logf("n=%d: all %d initial states certified (%d states explored)", n, len(allStates(n)), states)
	}
}

// TestUniformRuleLivelocks pins the root's role and the checker's teeth:
// the anonymous rule (every process +1, no root) admits a fair conflict
// wave that circulates C4 forever, and CheckStabilization finds it.
func TestUniformRuleLivelocks(t *testing.T) {
	colors := []int{2, 0, 1, 2}
	g, err := graph.Cycle(len(colors))
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]sim.Node[int], len(colors))
	for i, c := range colors {
		nodes[i] = &Node{k: K, root: false, c: c}
	}
	e, err := sim.NewEngine(g, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SeedRegisters(colors); err != nil {
		t.Fatal(err)
	}
	sr := model.CheckStabilization(e, model.Options{}, Legal)
	if sr.Converges() {
		t.Fatal("anonymous uniform rule must admit a fair livelock on C4")
	}
	if !strings.Contains(sr.LivelockWitness, "fair livelock") {
		t.Fatalf("witness = %q", sr.LivelockWitness)
	}
	if !sr.Closed() {
		t.Errorf("closure must hold even for the livelocking rule: %v", sr.ClosureViolations)
	}
}

// TestClosureIsFixpoint: legitimate configurations are fixpoints — no
// process is enabled, so any activation leaves the state unchanged.
func TestClosureIsFixpoint(t *testing.T) {
	colors := []int{0, 1, 2, 0, 1, 2}
	e, err := NewEngine(colors)
	if err != nil {
		t.Fatal(err)
	}
	if err := Legal(e); err != nil {
		t.Fatalf("seeded proper coloring must be legal: %v", err)
	}
	before := e.Fingerprint()
	for i := 0; i < e.N(); i++ {
		e.Step([]int{i})
	}
	e.Step([]int{0, 1, 2, 3, 4, 5})
	if e.Fingerprint() != before {
		t.Fatal("legal configuration must be a fixpoint")
	}
}

// TestConvergenceBoundHolds: fair round-robin reaches legality within
// ConvergenceBound from every initial state (exhaustive to n=7).
func TestConvergenceBoundHolds(t *testing.T) {
	for n := 3; n <= 7; n++ {
		for _, colors := range allStates(n) {
			a := runRR(t, colors, ConvergenceBound(n))
			if a < 0 {
				t.Fatalf("n=%d initial %v exceeded ConvergenceBound=%d", n, colors, ConvergenceBound(n))
			}
		}
	}
}

// TestResultSurface: results carry the published colors and the contract
// predicates read them.
func TestResultSurface(t *testing.T) {
	colors := []int{1, 1, 1, 1}
	e, err := NewEngine(colors)
	if err != nil {
		t.Fatal(err)
	}
	g := e.Graph()
	r := e.Result()
	if len(r.Values) != 4 {
		t.Fatalf("Values = %v, want the 4 seeded colors", r.Values)
	}
	if err := ProperRing(g, r); err == nil {
		t.Fatal("monochromatic ring must violate ProperRing")
	}
	if err := PaletteRange(g, r); err != nil {
		t.Fatalf("seeded colors are in palette: %v", err)
	}
	if err := ProperRing(g, sim.Result{}); err == nil {
		t.Fatal("a Result without Values must be rejected")
	}
	// Colors normalizes arbitrary ids, including negatives.
	got := Colors([]int{-1, 7, 3})
	for i, want := range []int{2, 1, 0} {
		if got[i] != want {
			t.Fatalf("Colors = %v", got)
		}
	}
}
