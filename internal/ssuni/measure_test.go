package ssuni

import (
	"math/rand"
	"testing"
)

// runRR drives the engine with singleton round-robin activations until
// legal, returning activations used (-1 if budget exhausted).
func runRR(t *testing.T, colors []int, budget int) int {
	t.Helper()
	e, err := NewEngine(colors)
	if err != nil {
		t.Fatal(err)
	}
	n := e.N()
	for a := 0; a <= budget; a++ {
		if Legal(e) == nil {
			return a
		}
		e.Step([]int{a % n})
	}
	return -1
}

func TestMeasureWorstConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("measurement harness")
	}
	for n := 3; n <= 8; n++ {
		worst := 0
		total := 1
		for i := 0; i < n; i++ {
			total *= K
		}
		for s := 0; s < total; s++ {
			colors := make([]int, n)
			v := s
			for i := range colors {
				colors[i] = v % K
				v /= K
			}
			a := runRR(t, colors, 100*n*n)
			if a < 0 {
				t.Fatalf("n=%d state %v did not converge", n, colors)
			}
			if a > worst {
				worst = a
			}
		}
		t.Logf("n=%d exhaustive worst=%d bound=%d", n, worst, ConvergenceBound(n))
	}
	rng := rand.New(rand.NewSource(7))
	for n := 9; n <= 14; n++ {
		worst := 0
		for s := 0; s < 20000; s++ {
			colors := make([]int, n)
			for i := range colors {
				colors[i] = rng.Intn(K)
			}
			a := runRR(t, colors, 100*n*n)
			if a < 0 {
				t.Fatalf("n=%d random state did not converge", n)
			}
			if a > worst {
				worst = a
			}
		}
		t.Logf("n=%d sampled worst=%d bound=%d", n, worst, ConvergenceBound(n))
	}
}
