// Package ssb reproduces the reduction in the proof of Property 2.1: if
// maximal independent set were solvable wait-free on the asynchronous
// cycle C_n, then strong symmetry breaking (SSB) would be solvable
// wait-free in the n-process asynchronous shared-memory model — which is
// impossible (Attiya & Paz [6], Theorem 11).
//
// The construction is implemented literally: shared-memory process p_i
// simulates the cycle algorithm of node i, treating the registers of
// p_{i−1 mod n} and p_{i+1 mod n} as its two cycle neighbors and ignoring
// the rest. Since the engine on the complete graph K_n *is* the
// shared-memory model (paper §2.3), wrapping any cycle algorithm's nodes
// with WrapCycle yields its shared-memory simulation, and SSB's two
// conditions can be checked on the outputs:
//
//  1. if all processes terminate, at least one outputs 0 and at least one
//     outputs 1;
//  2. in every execution in which at least one process terminates, at
//     least one terminated process outputs 1.
//
// Experiment E15 model-checks the wrapped MIS candidates: the safe one is
// not wait-free (so it never yields the SSB algorithm whose existence
// would contradict [6]) and the wait-free one violates the SSB
// conditions — exhibiting on bounded instances exactly the dichotomy the
// impossibility proof predicts.
package ssb

import (
	"fmt"

	"asynccycle/internal/sim"
)

// cycleSim adapts one node of a cycle algorithm to the complete graph:
// Observe receives the full shared-memory view (every other process's
// register, in K_n's ascending order) and forwards only the two cycle
// neighbors' cells.
type cycleSim[V any] struct {
	inner       sim.Node[V]
	left, right int // slots of the cycle neighbors within the K_n view
}

// WrapCycle wraps the nodes of a cycle algorithm for execution on the
// complete graph K_n, making process i simulate cycle node i with
// neighbors i±1 mod n, exactly as in the Property 2.1 reduction. It
// panics if fewer than three nodes are supplied (no cycle below C3).
func WrapCycle[V any](nodes []sim.Node[V]) []sim.Node[V] {
	n := len(nodes)
	if n < 3 {
		panic(fmt.Sprintf("ssb: cannot wrap %d nodes as a cycle", n))
	}
	wrapped := make([]sim.Node[V], n)
	for i, node := range nodes {
		left := (i + n - 1) % n
		right := (i + 1) % n
		wrapped[i] = &cycleSim[V]{
			inner: node,
			left:  knSlot(i, left),
			right: knSlot(i, right),
		}
	}
	return wrapped
}

// knSlot returns the position of process j in process i's K_n neighbor
// list (all other processes in ascending order).
func knSlot(i, j int) int {
	if j < i {
		return j
	}
	return j - 1
}

// Publish implements sim.Node.
func (c *cycleSim[V]) Publish() V { return c.inner.Publish() }

// Observe implements sim.Node.
func (c *cycleSim[V]) Observe(view []sim.Cell[V]) sim.Decision {
	pair := [2]sim.Cell[V]{view[c.left], view[c.right]}
	return c.inner.Observe(pair[:])
}

// Clone implements sim.Node.
func (c *cycleSim[V]) Clone() sim.Node[V] {
	return &cycleSim[V]{inner: c.inner.Clone(), left: c.left, right: c.right}
}

// String renders the wrapped node by value. Without it, fmt would print
// the inner interface as a pointer address, which would break the model
// checker's state fingerprinting (every clone would look unique).
func (c *cycleSim[V]) String() string {
	return fmt.Sprintf("sim(%v|%d,%d)", c.inner, c.left, c.right)
}

// HashFingerprint implements sim.Hashable, delegating to the wrapped node
// when it is itself Hashable and falling back to fmt otherwise — mirroring
// String's by-value rendering so hashed and string fingerprints agree.
func (c *cycleSim[V]) HashFingerprint(h *sim.FPHasher) {
	h.HashInt(c.left)
	h.HashInt(c.right)
	if hn, ok := c.inner.(sim.Hashable); ok {
		hn.HashFingerprint(h)
		return
	}
	fmt.Fprintf(h, "%v", c.inner)
}

// Check verifies the SSB conditions on an outcome; it returns a
// description of the first violation, or "".
func Check(outputs []int, done []bool) string {
	terminated := 0
	ones, zeros := 0, 0
	for i, d := range done {
		if !d {
			continue
		}
		terminated++
		switch outputs[i] {
		case 1:
			ones++
		case 0:
			zeros++
		default:
			return fmt.Sprintf("process %d output %d ∉ {0,1}", i, outputs[i])
		}
	}
	if terminated == len(done) && terminated > 0 {
		if ones == 0 {
			return "all processes terminated but none output 1"
		}
		if zeros == 0 {
			return "all processes terminated but none output 0"
		}
	}
	if terminated > 0 && ones == 0 {
		return "some processes terminated but none output 1"
	}
	return ""
}
