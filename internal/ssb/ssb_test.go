package ssb_test

import (
	"fmt"
	"testing"

	"asynccycle/internal/check"
	"asynccycle/internal/core"
	"asynccycle/internal/graph"
	"asynccycle/internal/ids"
	"asynccycle/internal/mis"
	"asynccycle/internal/model"
	"asynccycle/internal/schedule"
	"asynccycle/internal/sim"
	"asynccycle/internal/ssb"
)

func TestCheck(t *testing.T) {
	tests := []struct {
		name    string
		outputs []int
		done    []bool
		wantHit bool
	}{
		{"both values, all done", []int{0, 1, 0}, []bool{true, true, true}, false},
		{"all ones, all done", []int{1, 1, 1}, []bool{true, true, true}, true},
		{"all zeros, all done", []int{0, 0, 0}, []bool{true, true, true}, true},
		{"partial with a one", []int{1, 0, 0}, []bool{true, true, false}, false},
		{"partial all zeros", []int{0, 0, 0}, []bool{true, false, false}, true},
		{"nobody terminated", []int{0, 0, 0}, []bool{false, false, false}, false},
		{"out of range", []int{2, 1, 0}, []bool{true, true, true}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := ssb.Check(tt.outputs, tt.done)
			if (got != "") != tt.wantHit {
				t.Errorf("Check = %q, wantHit=%t", got, tt.wantHit)
			}
		})
	}
}

func TestWrapCyclePanicsBelowC3(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WrapCycle accepted 2 nodes")
		}
	}()
	ssb.WrapCycle(core.NewFiveNodes([]int{1, 2}))
}

// TestWrapCycleSimulatesFaithfully runs Algorithm 2 both natively on C_n
// and wrapped on K_n under the same deterministic schedule: the simulated
// processes must behave identically, because each wrapped process reads
// exactly its two cycle neighbors.
func TestWrapCycleSimulatesFaithfully(t *testing.T) {
	for _, n := range []int{3, 5, 8} {
		xs := ids.MustGenerate(ids.Random, n, int64(n))

		gC := graph.MustCycle(n)
		eC, err := sim.NewEngine(gC, core.NewFiveNodes(xs))
		if err != nil {
			t.Fatal(err)
		}
		resC, err := eC.Run(schedule.NewRoundRobin(1), 100_000)
		if err != nil {
			t.Fatal(err)
		}

		gK, err := graph.Complete(n)
		if err != nil {
			t.Fatal(err)
		}
		eK, err := sim.NewEngine(gK, ssb.WrapCycle(core.NewFiveNodes(xs)))
		if err != nil {
			t.Fatal(err)
		}
		resK, err := eK.Run(schedule.NewRoundRobin(1), 100_000)
		if err != nil {
			t.Fatal(err)
		}

		for i := 0; i < n; i++ {
			if resC.Outputs[i] != resK.Outputs[i] {
				t.Fatalf("n=%d node %d: cycle output %d, shared-memory simulation %d",
					n, i, resC.Outputs[i], resK.Outputs[i])
			}
			if resC.Activations[i] != resK.Activations[i] {
				t.Fatalf("n=%d node %d: activation counts differ (%d vs %d)",
					n, i, resC.Activations[i], resK.Activations[i])
			}
		}
		if err := check.ProperColoring(gC, resK); err != nil {
			t.Errorf("n=%d: simulated outputs no longer color the cycle: %v", n, err)
		}
	}
}

func ssbInvariant() model.Invariant[mis.Val] {
	return func(e *sim.Engine[mis.Val]) error {
		r := e.Result()
		if v := ssb.Check(r.Outputs, r.Done); v != "" {
			return fmt.Errorf("%s", v)
		}
		return nil
	}
}

// TestReductionDichotomy reproduces the Property 2.1 proof on bounded
// instances: wrapping each MIS candidate as a shared-memory SSB algorithm,
// the safe candidate is not wait-free and the wait-free candidate violates
// the SSB conditions — no candidate yields the wait-free SSB solution
// whose existence would contradict Attiya & Paz.
func TestReductionDichotomy(t *testing.T) {
	for _, n := range []int{3, 4} {
		gK, err := graph.Complete(n)
		if err != nil {
			t.Fatal(err)
		}
		xs := ids.MustGenerate(ids.Increasing, n, 0)

		eg, _ := sim.NewEngine(gK, ssb.WrapCycle(mis.NewGreedyNodes(xs)))
		repG := model.Explore(eg, model.Options{SingletonsOnly: true}, ssbInvariant())
		if !repG.CycleFound {
			t.Errorf("K%d: wrapped greedy should not be wait-free", n)
		}

		ei, _ := sim.NewEngine(gK, ssb.WrapCycle(mis.NewImpatientNodes(xs, 2)))
		repI := model.Explore(ei, model.Options{SingletonsOnly: true}, ssbInvariant())
		if repI.CycleFound {
			t.Errorf("K%d: wrapped impatient should be wait-free", n)
		}
		if len(repI.Violations) == 0 {
			t.Errorf("K%d: wrapped impatient should violate the SSB conditions", n)
		}
	}
}

func TestWrappedCloneIndependence(t *testing.T) {
	nodes := ssb.WrapCycle(core.NewFiveNodes([]int{1, 2, 3}))
	c := nodes[0].Clone()
	view := make([]sim.Cell[core.FiveVal], 2)
	view[0] = sim.Cell[core.FiveVal]{Present: true, Val: core.FiveVal{X: 3, A: 0, B: 0}}
	view[1] = sim.Cell[core.FiveVal]{Present: true, Val: core.FiveVal{X: 2, A: 0, B: 0}}
	c.Observe(view)
	// The original node still publishes its initial colors.
	if v := nodes[0].Publish(); v.A != 0 || v.B != 0 {
		t.Fatal("observing the clone mutated the original")
	}
}
