package expt

import (
	"context"
	"strings"
	"testing"
	"time"

	"asynccycle/internal/metrics"
	"asynccycle/internal/runctl"
)

// A pre-cancelled context must yield a table explicitly marked Partial:
// no silent truncation, unexplored cells counted, the [PARTIAL] marker in
// every rendering.
func TestCancelledSweepMarksTablePartial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tb := E1Alg1Termination(Options{Quick: true, Context: ctx})
	if !tb.Partial {
		t.Fatalf("table not marked Partial after pre-cancelled context")
	}
	if tb.StopReason != runctl.StopCancelled {
		t.Fatalf("StopReason = %q, want %q", tb.StopReason, runctl.StopCancelled)
	}
	if tb.Unexplored == 0 {
		t.Fatalf("Unexplored = 0, want > 0")
	}
	if len(tb.Rows) != 0 {
		t.Fatalf("pre-cancelled sweep produced %d rows, want 0 (no row is complete)", len(tb.Rows))
	}
	txt := tb.String()
	if !strings.Contains(txt, "[PARTIAL: cancelled]") {
		t.Fatalf("text rendering lacks partial marker:\n%s", txt)
	}
	var md strings.Builder
	if err := tb.WriteMarkdown(&md); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md.String(), "[PARTIAL: cancelled]") {
		t.Fatalf("markdown rendering lacks partial marker:\n%s", md.String())
	}
}

// A live context must leave tables byte-identical to the context-free run:
// the run-control plumbing may not perturb deterministic output.
func TestLiveContextKeepsTablesIdentical(t *testing.T) {
	base := E3Alg3LogStar(Options{Quick: true, Seed: 7})
	ctxed := E3Alg3LogStar(Options{Quick: true, Seed: 7, Context: context.Background()})
	if base.String() != ctxed.String() {
		t.Fatalf("live context changed output:\n--- nil context:\n%s\n--- live context:\n%s", base, ctxed)
	}
	if ctxed.Partial {
		t.Fatalf("live context marked table partial")
	}
}

// All with a context that dies mid-suite must stub the unstarted
// experiments rather than dropping them: the output always lists the full
// suite.
func TestAllStubsUnstartedExperiments(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tables := All(Options{Quick: true, Context: ctx})
	if want := len(Runners()); len(tables) != want {
		t.Fatalf("All returned %d tables, want %d", len(tables), want)
	}
	for _, tb := range tables {
		if !tb.Partial {
			t.Fatalf("table %s not marked Partial", tb.ID)
		}
	}
}

// Sweeps publish CellsTotal/CellsDone into Options.Metrics; a complete run
// reports every cell done.
func TestSweepPublishesCellMetrics(t *testing.T) {
	m := metrics.NewRun()
	E1Alg1Termination(Options{Quick: true, Metrics: m})
	s := m.Snapshot()
	if s.CellsTotal == 0 {
		t.Fatalf("CellsTotal = 0 after a sweep")
	}
	if s.CellsDone != s.CellsTotal {
		t.Fatalf("CellsDone = %d, CellsTotal = %d; complete run should finish every cell", s.CellsDone, s.CellsTotal)
	}
	if len(s.WorkerItems) == 0 {
		t.Fatalf("no per-worker stats recorded")
	}
}

// A sweep under a tight deadline returns quickly with a Partial table (or,
// if the deadline happens to outlast the quick sweep, a complete one) —
// either way it must not hang and must label truncation.
func TestTimeoutSweepReturnsPromptly(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	tb := E2Alg2Linear(Options{Context: ctx}) // full (non-quick) sweep: seconds of work
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("budgeted sweep took %v", elapsed)
	}
	if !tb.Partial {
		t.Fatalf("1ms deadline on the full E2 sweep did not mark the table partial")
	}
	if tb.StopReason != runctl.StopTimeout {
		t.Fatalf("StopReason = %q, want %q", tb.StopReason, runctl.StopTimeout)
	}
}
