package expt

import (
	"fmt"
	"time"

	"asynccycle/internal/check"
	"asynccycle/internal/conc"
	"asynccycle/internal/core"
	"asynccycle/internal/cv"
	"asynccycle/internal/graph"
	"asynccycle/internal/ids"
	"asynccycle/internal/locale"
	"asynccycle/internal/mis"
	"asynccycle/internal/model"
	"asynccycle/internal/renaming"
	"asynccycle/internal/schedule"
	"asynccycle/internal/sim"
	"asynccycle/internal/stats"
)

// run executes one instance, returning the result (and the error, recorded
// by callers in table notes rather than aborting the sweep).
func run[V any](g graph.Graph, nodes []sim.Node[V], s schedule.Scheduler, mode sim.Mode, maxSteps int) (sim.Result, error) {
	e, err := sim.NewEngine(g, nodes)
	if err != nil {
		return sim.Result{}, err
	}
	e.SetMode(mode)
	return e.Run(s, maxSteps)
}

// schedulerSet returns fresh scheduler instances for a sweep (stateful
// schedulers cannot be shared across runs).
func schedulerSet(seed int64) []schedule.Scheduler {
	return []schedule.Scheduler{
		schedule.Synchronous{},
		schedule.NewRoundRobin(1),
		schedule.NewRoundRobin(3),
		schedule.NewRandomSubset(0.3, seed),
		schedule.NewRandomOne(seed + 1),
		schedule.Alternating{},
		schedule.NewBurst(4),
	}
}

// E1Alg1Termination measures Algorithm 1 against Theorem 3.1: every
// process terminates within ⌊3n/2⌋+4 activations, outputs lie in the
// 6-pair palette, and the coloring is proper; for the smallest cycles the
// bound is compared with the exact worst case over all schedules computed
// by the model checker.
func E1Alg1Termination(o Options) *Table {
	t := &Table{
		ID:      "E1",
		Title:   "Algorithm 1 (6-coloring): activations vs Theorem 3.1 bound ⌊3n/2⌋+4",
		Columns: []string{"n", "bound", "sweep max", "exact worst (model)", "proper", "palette"},
	}
	sizes := []int{3, 4, 5, 8, 16, 64, 256}
	if o.Quick {
		sizes = []int{3, 4, 5, 16, 64}
	}
	for _, n := range sizes {
		g := graph.MustCycle(n)
		bound := 3*n/2 + 4
		maxActs := 0
		proper, palette := true, true
		for _, a := range ids.All() {
			xs := ids.MustGenerate(a, n, o.seed())
			for _, s := range schedulerSet(o.seed()) {
				res, err := run(g, core.NewPairNodes(xs), s, sim.ModeInterleaved, 100*n*n+10_000)
				if err != nil {
					t.AddNote("n=%d %s/%s: %v", n, a, s.Name(), err)
					continue
				}
				if m := res.MaxActivations(); m > maxActs {
					maxActs = m
				}
				if check.ProperColoring(g, res) != nil {
					proper = false
				}
				if check.PairPalette(res, 2) != nil {
					palette = false
				}
			}
		}
		exact := "-"
		if n <= 4 {
			e, _ := sim.NewEngine(g, core.NewPairNodes(ids.MustGenerate(ids.Increasing, n, 0)))
			if vec, ok, _ := model.WorstActivations(e, model.Options{SingletonsOnly: true}); ok {
				exact = fmt.Sprintf("%d", stats.MaxInt(vec))
			}
		}
		t.AddRow(n, bound, maxActs, exact, proper, palette)
	}
	t.AddNote("paper: Theorem 3.1 — termination ≤ ⌊3n/2⌋+4 activations, palette {(a,b): a+b≤2}, proper coloring")
	return t
}

// E2Alg2Linear measures Algorithm 2 against Theorem 3.11: O(n) activations
// with the 5-color palette. The worst case input is the fully increasing
// identifier assignment (one monotone chain of length n−1, Remark 3.10);
// the measured maxima grow linearly in n.
func E2Alg2Linear(o Options) *Table {
	t := &Table{
		ID:      "E2",
		Title:   "Algorithm 2 (5-coloring): activations grow linearly on monotone identifiers",
		Columns: []string{"n", "chain", "max acts (incr ids)", "max acts (random ids)", "proper", "palette≤5"},
	}
	sizes := []int{8, 16, 32, 64, 128, 256, 512, 1024}
	if o.Quick {
		sizes = []int{8, 16, 32, 64, 128, 256}
	}
	var xsF, ysF []float64
	for _, n := range sizes {
		g := graph.MustCycle(n)
		worstIncr, worstRand := 0, 0
		proper, palette := true, true
		for _, a := range []ids.Assignment{ids.Increasing, ids.Random} {
			xs := ids.MustGenerate(a, n, o.seed())
			for _, s := range schedulerSet(o.seed()) {
				res, err := run(g, core.NewFiveNodes(xs), s, sim.ModeInterleaved, 500*n+20_000)
				if err != nil {
					t.AddNote("n=%d %s/%s: %v", n, a, s.Name(), err)
					continue
				}
				m := res.MaxActivations()
				if a == ids.Increasing && m > worstIncr {
					worstIncr = m
				}
				if a == ids.Random && m > worstRand {
					worstRand = m
				}
				if check.ProperColoring(g, res) != nil {
					proper = false
				}
				if check.PaletteRange(res, 5) != nil {
					palette = false
				}
			}
		}
		chain := ids.LongestMonotoneChain(ids.MustGenerate(ids.Increasing, n, 0))
		t.AddRow(n, chain, worstIncr, worstRand, proper, palette)
		xsF = append(xsF, float64(n))
		ysF = append(ysF, float64(worstIncr))
	}
	fit := stats.LinearFit(xsF, ysF)
	t.AddNote("paper: Theorem 3.11 — termination in O(n) activations; linear fit slope=%.2f R²=%.3f", fit.Slope, fit.R2)
	return t
}

// E3Alg3LogStar measures Algorithm 3 against Theorem 4.4: O(log* n)
// activations. Across three orders of magnitude of n the measured maxima
// stay near-constant while log* n ticks up by one.
func E3Alg3LogStar(o Options) *Table {
	t := &Table{
		ID:      "E3",
		Title:   "Algorithm 3 (fast 5-coloring): activations track log* n",
		Columns: []string{"n", "log* n", "max acts (incr)", "max acts (spaced)", "max acts (random)", "max r", "proper", "palette≤5"},
	}
	sizes := []int{8, 64, 512, 4096, 65_536}
	if !o.Quick {
		sizes = append(sizes, 262_144, 1_048_576)
	}
	for _, n := range sizes {
		g := graph.MustCycle(n)
		worst := map[ids.Assignment]int{}
		proper, palette := true, true
		assignments := []ids.Assignment{ids.Increasing, ids.SpacedIncreasing, ids.Random}
		scheds := func() []schedule.Scheduler {
			if n > 10_000 {
				// Sequential schedulers cost Θ(n) steps per sweep of the
				// ring; cap to the parallel ones for the largest sizes.
				return []schedule.Scheduler{
					schedule.Synchronous{},
					schedule.NewRandomSubset(0.5, o.seed()),
					schedule.Alternating{},
				}
			}
			return schedulerSet(o.seed())
		}
		for _, a := range assignments {
			xs := ids.MustGenerate(a, n, o.seed())
			for _, s := range scheds() {
				res, err := run(g, core.NewFastNodes(xs), s, sim.ModeInterleaved, 500*n+100_000)
				if err != nil {
					t.AddNote("n=%d %s/%s: %v", n, a, s.Name(), err)
					continue
				}
				if m := res.MaxActivations(); m > worst[a] {
					worst[a] = m
				}
				if check.ProperColoring(g, res) != nil {
					proper = false
				}
				if check.PaletteRange(res, 5) != nil {
					palette = false
				}
			}
		}
		// Measure the reduction effort directly: the r counter counts the
		// Cole–Vishkin attempts a process performed (O(log* n) by
		// Lemma 4.1). Measured on the spaced-increasing input under the
		// synchronous schedule, where reductions are most numerous.
		maxR := 0
		{
			e, _ := sim.NewEngine(g, core.NewFastNodes(ids.MustGenerate(ids.SpacedIncreasing, n, 0)))
			if _, err := e.Run(schedule.Synchronous{}, 500*n+100_000); err == nil {
				for i := 0; i < n; i++ {
					if r, _ := e.NodeState(i).(*core.Fast).R(); r > maxR {
						maxR = r
					}
				}
			}
		}
		t.AddRow(n, cv.LogStar(float64(n)), worst[ids.Increasing], worst[ids.SpacedIncreasing], worst[ids.Random], maxR, proper, palette)
	}
	t.AddNote("paper: Theorem 4.4 — termination in O(log* n) activations; the column should stay near-constant as n grows 5 decades")
	t.AddNote("max r counts per-process Cole–Vishkin reduction attempts (Lemma 4.1: O(log* n) of them suffice)")
	return t
}

// E4Crossover compares Algorithms 2 and 3 head to head on the worst-case
// increasing identifiers: Algorithm 2's per-process activations grow
// linearly while Algorithm 3's stay near-constant, so the speedup factor
// grows without bound (the paper's §4 motivation).
func E4Crossover(o Options) *Table {
	t := &Table{
		ID:      "E4",
		Title:   "Algorithm 2 vs Algorithm 3 on increasing identifiers (synchronous schedule)",
		Columns: []string{"n", "alg2 max acts", "alg3 max acts", "speedup"},
	}
	sizes := []int{8, 16, 32, 64, 128, 256, 512, 1024}
	if !o.Quick {
		sizes = append(sizes, 2048, 4096)
	}
	for _, n := range sizes {
		g := graph.MustCycle(n)
		xs := ids.MustGenerate(ids.Increasing, n, 0)
		res2, err2 := run(g, core.NewFiveNodes(xs), schedule.Synchronous{}, sim.ModeInterleaved, 100*n+10_000)
		res3, err3 := run(g, core.NewFastNodes(xs), schedule.Synchronous{}, sim.ModeInterleaved, 100*n+10_000)
		if err2 != nil || err3 != nil {
			t.AddNote("n=%d: alg2 err=%v alg3 err=%v", n, err2, err3)
			continue
		}
		m2, m3 := res2.MaxActivations(), res3.MaxActivations()
		t.AddRow(n, m2, m3, float64(m2)/float64(m3))
	}
	t.AddNote("paper: §4 — the identifier-reduction component turns Θ(n) convergence into O(log* n)")
	return t
}

// E5ColeVishkin measures the identifier-reduction machinery of §4.1:
// Lemma 4.1's bound-function iterations and the adversarial single-chain
// iterations both track log* x.
func E5ColeVishkin(o Options) *Table {
	t := &Table{
		ID:      "E5",
		Title:   "Cole–Vishkin reduction (Lemmas 4.1–4.3): iterations to reach a constant identifier",
		Columns: []string{"x", "log* x", "bound iterations", "adversarial iterations"},
	}
	values := []int{100, 10_000, 1 << 20, 1 << 40, 1 << 62}
	for _, x := range values {
		t.AddRow(x, cv.LogStar(float64(x)), cv.BoundIterations(x), cv.AdversarialIterations(x))
	}
	t.AddNote("paper: Lemma 4.1 — O(log* x) iterations of F(x)=2⌈log(x+1)⌉+1 reach the constant regime (<10)")
	t.AddNote("Lemmas 4.2 (shrinkage above 10) and 4.3 (no collisions on monotone triples) are property-tested exhaustively in internal/cv")
	return t
}

// E6CrashTolerance crashes a growing fraction of processes at adversarial
// times and verifies the fault-tolerance contract: every survivor still
// terminates, within the wait-free bounds, and the terminated processes
// properly color their induced subgraph.
func E6CrashTolerance(o Options) *Table {
	t := &Table{
		ID:      "E6",
		Title:   "Crash tolerance: survivors always terminate with a proper coloring",
		Columns: []string{"crash %", "alg", "survivors", "survivors done", "max acts", "proper"},
	}
	n := 200
	if o.Quick {
		n = 100
	}
	g := graph.MustCycle(n)
	fractions := []float64{0, 0.1, 0.3, 0.5, 0.7, 0.9}
	for _, frac := range fractions {
		for _, alg := range []string{"five", "fast"} {
			crashes := crashPlan(n, frac, o.seed())
			xs := ids.MustGenerate(ids.Random, n, o.seed())
			var res sim.Result
			var err error
			s := schedule.NewRandomSubset(0.4, o.seed()+int64(frac*100))
			switch alg {
			case "five":
				e, _ := sim.NewEngine(g, core.NewFiveNodes(xs))
				applyCrashes(e, crashes)
				res, err = e.Run(s, 500*n+20_000)
			case "fast":
				e, _ := sim.NewEngine(g, core.NewFastNodes(xs))
				applyCrashes(e, crashes)
				res, err = e.Run(s, 500*n+20_000)
			}
			if err != nil {
				t.AddNote("crash=%.0f%% %s: %v", frac*100, alg, err)
				continue
			}
			survivors := n - len(crashes)
			surOK := check.SurvivorsTerminated(res) == nil
			proper := check.ProperColoring(g, res) == nil
			t.AddRow(fmt.Sprintf("%.0f", frac*100), alg, survivors, surOK, res.MaxActivations(), proper)
		}
	}
	t.AddNote("paper: wait-freedom (§2.1) — crashes at arbitrary times never block correct processes")
	return t
}

func crashPlan(n int, frac float64, seed int64) map[int]int {
	count := int(frac * float64(n))
	plan := make(map[int]int, count)
	// Deterministic spread: crash every k-th node with a small round budget
	// varying 0..5 (0 = never wakes).
	if count == 0 {
		return plan
	}
	stride := n / count
	if stride == 0 {
		stride = 1
	}
	r := seed
	for i := 0; i < n && len(plan) < count; i += stride {
		r = r*6364136223846793005 + 1442695040888963407 // LCG step
		budget := int(uint64(r)>>60) % 6
		plan[i] = budget
	}
	return plan
}

func applyCrashes[V any](e *sim.Engine[V], plan map[int]int) {
	for i, k := range plan {
		e.CrashAfter(i, k)
	}
}

// E7MISImpossibility illustrates Property 2.1 (maximal independent set is
// not solvable wait-free) on the two natural candidate algorithms: the
// model checker certifies that Greedy admits executions with unbounded
// activations (a configuration-graph cycle) and that Impatient admits
// executions violating the MIS specification.
func E7MISImpossibility(o Options) *Table {
	t := &Table{
		ID:      "E7",
		Title:   "MIS candidates fail (Property 2.1): livelock or safety violation, certified exhaustively",
		Columns: []string{"candidate", "cycle C_n", "states", "not wait-free (cycle)", "MIS violation found"},
	}
	sizes := []int{3, 4}
	if !o.Quick {
		sizes = append(sizes, 5)
	}
	for _, n := range sizes {
		g := graph.MustCycle(n)
		xs := ids.MustGenerate(ids.Increasing, n, 0)

		eg, _ := sim.NewEngine(g, mis.NewGreedyNodes(xs))
		repG := model.Explore(eg, model.Options{SingletonsOnly: true}, misInvariant(g))
		t.AddRow("greedy", n, repG.States, repG.CycleFound, len(repG.Violations) > 0)

		ei, _ := sim.NewEngine(g, mis.NewImpatientNodes(xs, 2))
		repI := model.Explore(ei, model.Options{SingletonsOnly: true}, misInvariant(g))
		t.AddRow("impatient(2)", n, repI.States, repI.CycleFound, len(repI.Violations) > 0)
	}
	t.AddNote("paper: Property 2.1 — MIS cannot be solved wait-free (reduction to strong symmetry breaking)")
	t.AddNote("greedy waits for higher neighbors: safe but not wait-free; impatient presumes crashes: wait-free but unsafe")
	return t
}

func misInvariant(g graph.Graph) model.Invariant[mis.Val] {
	return func(e *sim.Engine[mis.Val]) error {
		r := e.Result()
		if v := mis.ViolatesMIS(g.Edges(), g.N(), r.Outputs, r.Done); v != "" {
			return fmt.Errorf("%s", v)
		}
		return nil
	}
}

// E8PaletteTightness exhaustively explores Algorithm 2 on small cycles and
// reports the largest color any execution can be driven to output. The
// palette fills up with cycle length — color 2 is reachable on C3, color 3
// on C4, and color 4 on C5 — while color 5 is never produced on any cycle
// (the {0..4} palette of Theorem 3.11). Property 2.3's lower bound says no
// algorithm for all cycles can promise fewer than 5 colors, and indeed
// ours genuinely needs all 5.
func E8PaletteTightness(o Options) *Table {
	t := &Table{
		ID:      "E8",
		Title:   "Palette tightness (Property 2.3): the largest reachable color grows to 4, never beyond",
		Columns: []string{"cycle C_n", "states", "terminal", "max reachable color", "violations"},
	}
	for _, n := range []int{3, 4, 5} {
		g := graph.MustCycle(n)
		xs := ids.MustGenerate(ids.Increasing, n, 0)
		maxColor := 0
		inv := func(e *sim.Engine[core.FiveVal]) error {
			r := e.Result()
			for i, out := range r.Outputs {
				if r.Done[i] && out > maxColor {
					maxColor = out
				}
			}
			if err := check.ProperColoring(g, r); err != nil {
				return err
			}
			return check.PaletteRange(r, 5)
		}
		e, _ := sim.NewEngine(g, core.NewFiveNodes(xs))
		rep := model.Explore(e, model.Options{SingletonsOnly: true}, inv)
		t.AddRow(n, rep.States, rep.Terminal, maxColor, len(rep.Violations))
	}
	t.AddNote("paper: Property 2.3 — wait-free coloring of all cycles needs ≥ 5 colors; color 4 is reached on C5, color 5 never")
	return t
}

// E9GeneralGraphs runs Algorithm 4 (Appendix A) on random bounded-degree
// graphs: outputs stay in the (Δ+1)(Δ+2)/2 pair palette and properly color
// the graph, under crashes and adversarial schedules.
func E9GeneralGraphs(o Options) *Table {
	t := &Table{
		ID:      "E9",
		Title:   "Algorithm 4 on general graphs: O(Δ²) palette (Appendix A)",
		Columns: []string{"n", "Δ", "palette size", "max a+b seen", "max acts", "proper", "palette ok"},
	}
	sizes := []int{32, 128}
	if !o.Quick {
		sizes = append(sizes, 512)
	}
	for _, n := range sizes {
		for _, maxDeg := range []int{3, 4, 6, 8} {
			g, err := graph.RandomBoundedDegree(n, maxDeg, o.seed())
			if err != nil {
				t.AddNote("n=%d Δ=%d: %v", n, maxDeg, err)
				continue
			}
			delta := g.MaxDegree()
			xs := ids.MustGenerate(ids.Random, n, o.seed())
			worstActs, maxSum := 0, 0
			proper, palette := true, true
			for _, s := range schedulerSet(o.seed()) {
				res, err := run(g, core.NewPairNodes(xs), s, sim.ModeInterleaved, 500*n+20_000)
				if err != nil {
					t.AddNote("n=%d Δ=%d %s: %v", n, maxDeg, s.Name(), err)
					continue
				}
				if m := res.MaxActivations(); m > worstActs {
					worstActs = m
				}
				for i, out := range res.Outputs {
					if res.Done[i] {
						a, b := core.DecodePair(out)
						if a+b > maxSum {
							maxSum = a + b
						}
					}
				}
				if check.ProperColoring(g, res) != nil {
					proper = false
				}
				if check.PairPalette(res, delta) != nil {
					palette = false
				}
			}
			t.AddRow(n, delta, core.PairPaletteSize(delta), maxSum, worstActs, proper, palette)
		}
	}
	// The canonical 4-regular instance: a torus grid.
	for _, dims := range [][2]int{{8, 8}, {16, 16}} {
		g, err := graph.Torus(dims[0], dims[1])
		if err != nil {
			t.AddNote("torus %v: %v", dims, err)
			continue
		}
		n := g.N()
		xs := ids.MustGenerate(ids.Random, n, o.seed())
		worstActs, maxSum := 0, 0
		proper, palette := true, true
		for _, s := range schedulerSet(o.seed()) {
			res, err := run(g, core.NewPairNodes(xs), s, sim.ModeInterleaved, 500*n+20_000)
			if err != nil {
				t.AddNote("torus %v %s: %v", dims, s.Name(), err)
				continue
			}
			if m := res.MaxActivations(); m > worstActs {
				worstActs = m
			}
			for i, out := range res.Outputs {
				if res.Done[i] {
					a, b := core.DecodePair(out)
					if a+b > maxSum {
						maxSum = a + b
					}
				}
			}
			if check.ProperColoring(g, res) != nil {
				proper = false
			}
			if check.PairPalette(res, 4) != nil {
				palette = false
			}
		}
		t.AddRow(fmt.Sprintf("%d (torus)", n), 4, core.PairPaletteSize(4), maxSum, worstActs, proper, palette)
	}
	t.AddNote("paper: Appendix A — every output pair satisfies a+b ≤ Δ, i.e. (Δ+1)(Δ+2)/2 = O(Δ²) colors")
	return t
}

// E10SyncBaseline measures the synchronous failure-free LOCAL baseline
// (§1.1): Cole–Vishkin 3-coloring in ½log* n + O(1) rounds, compared to
// Algorithm 3's asynchronous activations on the same inputs.
func E10SyncBaseline(o Options) *Table {
	t := &Table{
		ID:      "E10",
		Title:   "Synchronous LOCAL baseline: Cole–Vishkin 3-coloring rounds vs Algorithm 3 activations",
		Columns: []string{"n", "log* n", "CV rounds (3 colors)", "alg3 max acts (5 colors)", "proper"},
	}
	sizes := []int{8, 64, 4096, 65_536}
	if !o.Quick {
		sizes = append(sizes, 1_048_576)
	}
	for _, n := range sizes {
		xs := ids.MustGenerate(ids.Random, n, o.seed())
		colors, rounds, err := locale.ThreeColorCycle(xs)
		if err != nil {
			t.AddNote("n=%d: %v", n, err)
			continue
		}
		proper := locale.ProperCycleColoring(colors) && stats.MaxInt(colors) <= 2

		g := graph.MustCycle(n)
		res, err := run(g, core.NewFastNodes(xs), schedule.Synchronous{}, sim.ModeInterleaved, 100*n+100_000)
		alg3 := "-"
		if err == nil {
			alg3 = fmt.Sprintf("%d", res.MaxActivations())
		}
		t.AddRow(n, cv.LogStar(float64(n)), rounds, alg3, proper)
	}
	t.AddNote("paper: §1.1 — synchronous 3-coloring takes ½log* n + O(1) rounds [17]; both columns track log* n")
	return t
}

// E11Renaming runs the rank-based renaming baseline on complete graphs
// (where the model is exactly wait-free shared memory): every process
// decides a name in {0, …, 2n−2}, and on K2/K3 the model checker verifies
// wait-freedom and the name bound over every schedule.
func E11Renaming(o Options) *Table {
	t := &Table{
		ID:      "E11",
		Title:   "Rank-based (2n−1)-renaming on K_n (shared-memory baseline, §1.3)",
		Columns: []string{"n", "name bound 2n−2", "max name seen", "max acts", "all unique", "exhaustive (n≤3)"},
	}
	sizes := []int{2, 3, 4, 8, 16}
	if !o.Quick {
		sizes = append(sizes, 32, 64)
	}
	for _, n := range sizes {
		g, err := graph.Complete(n)
		if err != nil {
			t.AddNote("n=%d: %v", n, err)
			continue
		}
		xs := ids.MustGenerate(ids.Random, n, o.seed())
		maxName, worstActs := 0, 0
		unique := true
		for _, s := range schedulerSet(o.seed()) {
			res, err := run(g, renaming.NewNodes(xs), s, sim.ModeInterleaved, 2000*n+50_000)
			if err != nil {
				t.AddNote("n=%d %s: %v", n, s.Name(), err)
				continue
			}
			seen := map[int]bool{}
			for i, out := range res.Outputs {
				if !res.Done[i] {
					continue
				}
				if out > maxName {
					maxName = out
				}
				if seen[out] {
					unique = false
				}
				seen[out] = true
			}
			if m := res.MaxActivations(); m > worstActs {
				worstActs = m
			}
		}
		exhaustive := "-"
		if n <= 3 {
			e, _ := sim.NewEngine(g, renaming.NewNodes(xs))
			rep := model.Explore(e, model.Options{SingletonsOnly: true}, renamingInvariant(n))
			exhaustive = fmt.Sprintf("ok=%t states=%d", rep.Ok(), rep.States)
		}
		t.AddRow(n, renaming.MaxName(n), maxName, worstActs, unique, exhaustive)
	}
	t.AddNote("paper: §1.1/§1.3 — (2n−1)-renaming is wait-free solvable [3]; names never exceed 2n−2 (0-based)")
	return t
}

func renamingInvariant(n int) model.Invariant[renaming.Val] {
	return func(e *sim.Engine[renaming.Val]) error {
		r := e.Result()
		seen := map[int]int{}
		for i, out := range r.Outputs {
			if !r.Done[i] {
				continue
			}
			if out < 0 || out > renaming.MaxName(n) {
				return fmt.Errorf("name %d outside {0..%d}", out, renaming.MaxName(n))
			}
			if j, dup := seen[out]; dup {
				return fmt.Errorf("processes %d and %d both named %d", j, i, out)
			}
			seen[out] = i
		}
		return nil
	}
}

// E12IdentifierInvariant checks Lemma 4.5 on live executions: throughout
// every traced run of Algorithm 3, the evolving identifiers (internal and
// published) properly color the cycle at every time step.
func E12IdentifierInvariant(o Options) *Table {
	t := &Table{
		ID:      "E12",
		Title:   "Lemma 4.5: Algorithm 3's evolving identifiers always properly color the cycle",
		Columns: []string{"n", "assignment", "schedulers", "steps checked", "violations"},
	}
	sizes := []int{5, 33, 128}
	for _, n := range sizes {
		g := graph.MustCycle(n)
		for _, a := range []ids.Assignment{ids.Increasing, ids.Random, ids.Zigzag} {
			xs := ids.MustGenerate(a, n, o.seed())
			totalSteps, violations, nscheds := 0, 0, 0
			for _, s := range schedulerSet(o.seed()) {
				e, _ := sim.NewEngine(g, core.NewFastNodes(xs))
				rec := &check.FastInvariantRecorder{}
				e.AddHook(rec.Hook())
				res, err := e.Run(s, 500*n+20_000)
				if err != nil {
					t.AddNote("n=%d %s/%s: %v", n, a, s.Name(), err)
					continue
				}
				totalSteps += res.Steps
				violations += len(rec.Violations)
				nscheds++
			}
			t.AddRow(n, a.String(), nscheds, totalSteps, violations)
		}
	}
	t.AddNote("paper: Lemma 4.5 — X̂_p(t) ≠ X̂_q(t) for every edge (p,q) at every t; checked at every step of every run")
	return t
}

// E13Concurrent exercises the goroutine runtime end to end: real
// concurrency, crash injection, and jitter, with the same correctness
// checks as the deterministic engine.
func E13Concurrent(o Options) *Table {
	t := &Table{
		ID:      "E13",
		Title:   "Concurrent runtime: goroutine executions with crashes and jitter",
		Columns: []string{"n", "alg", "crashed", "survivors done", "mean rounds", "p90 rounds", "max rounds", "proper"},
	}
	sizes := []int{50, 200}
	if !o.Quick {
		sizes = append(sizes, 1000)
	}
	for _, n := range sizes {
		g := graph.MustCycle(n)
		xs := ids.MustGenerate(ids.Random, n, o.seed())
		crashes := crashPlan(n, 0.2, o.seed())
		for _, alg := range []string{"five", "fast", "pair"} {
			var res sim.Result
			var err error
			opt := conc.Options{CrashAfter: crashes, Yield: true, Jitter: 50 * time.Microsecond, Seed: o.seed()}
			switch alg {
			case "five":
				res, err = conc.Run(g, core.NewFiveNodes(xs), opt)
			case "fast":
				res, err = conc.Run(g, core.NewFastNodes(xs), opt)
			case "pair":
				res, err = conc.Run(g, core.NewPairNodes(xs), opt)
			}
			if err != nil {
				t.AddNote("n=%d %s: %v", n, alg, err)
				continue
			}
			surOK := check.SurvivorsTerminated(res) == nil
			proper := check.ProperColoring(g, res) == nil
			// Round distribution across surviving processes.
			var rounds []int
			for i, a := range res.Activations {
				if !res.Crashed[i] {
					rounds = append(rounds, a)
				}
			}
			sum := stats.Summarize(stats.Floats(rounds))
			t.AddRow(n, alg, len(crashes), surOK, sum.Mean, sum.P90, res.MaxActivations(), proper)
		}
	}
	t.AddNote("each node is a goroutine; rounds are atomic local immediate snapshots via ordered neighborhood locking")
	return t
}

// F1Livelock documents the repository's reproduction finding: under the
// paper's literal simultaneous-round semantics (§2.1), Algorithms 2 and 3
// admit livelock — an adversary keeping two adjacent processes in perfect
// lockstep next to an early-terminated neighbor with color 0 frozen in its
// register makes their b-components chase each other forever. Under the
// standard interleaved adversary all three algorithms are wait-free
// (exhaustively verified). Algorithm 1 is immune in both modes.
func F1Livelock(o Options) *Table {
	t := &Table{
		ID:      "F1",
		Title:   "Finding: simultaneous-round semantics break wait-freedom of Algorithms 2/3",
		Columns: []string{"alg", "cycle C_n", "mode", "schedules", "livelock cycle found"},
	}
	sizes := []int{3, 4}
	for _, n := range sizes {
		g := graph.MustCycle(n)
		xs := ids.MustGenerate(ids.Increasing, n, 0)
		configs := []struct {
			mode   sim.Mode
			single bool
			label  string
		}{
			{sim.ModeInterleaved, true, "all interleavings"},
			{sim.ModeSimultaneous, false, "all subset schedules"},
		}
		for _, cfg := range configs {
			for _, alg := range []string{"pair", "five", "fast"} {
				var rep model.Report
				switch alg {
				case "pair":
					e, _ := sim.NewEngine(g, core.NewPairNodes(xs))
					e.SetMode(cfg.mode)
					rep = model.Explore(e, model.Options{SingletonsOnly: cfg.single}, nil)
				case "five":
					e, _ := sim.NewEngine(g, core.NewFiveNodes(xs))
					e.SetMode(cfg.mode)
					rep = model.Explore(e, model.Options{SingletonsOnly: cfg.single}, nil)
				case "fast":
					e, _ := sim.NewEngine(g, core.NewFastNodes(xs))
					e.SetMode(cfg.mode)
					rep = model.Explore(e, model.Options{SingletonsOnly: cfg.single}, nil)
				}
				t.AddRow(alg, n, cfg.mode.String(), cfg.label, rep.CycleFound)
			}
		}
	}
	t.AddNote("safety (proper coloring, palette) holds in BOTH modes for all three algorithms — only liveness differs")
	t.AddNote("the concrete witness: C5, alternating lockstep schedule, Algorithm 2 oscillates with period 2 (see TestF1 in the root test suite)")
	return t
}
