package expt

import (
	"fmt"
	"time"

	"asynccycle/internal/check"
	"asynccycle/internal/conc"
	"asynccycle/internal/core"
	"asynccycle/internal/cv"
	"asynccycle/internal/graph"
	"asynccycle/internal/ids"
	"asynccycle/internal/locale"
	"asynccycle/internal/mis"
	"asynccycle/internal/model"
	"asynccycle/internal/protocol"
	"asynccycle/internal/renaming"
	"asynccycle/internal/schedule"
	"asynccycle/internal/sim"
	"asynccycle/internal/stats"
)

// run executes one instance, returning the result (and the error, recorded
// by callers in table notes rather than aborting the sweep).
func run[V any](g graph.Graph, nodes []sim.Node[V], s schedule.Scheduler, mode sim.Mode, maxSteps int) (sim.Result, error) {
	e, err := sim.NewEngine(g, nodes)
	if err != nil {
		return sim.Result{}, err
	}
	e.SetMode(mode)
	return e.Run(s, maxSteps)
}

// E1Alg1Termination measures Algorithm 1 against Theorem 3.1: every
// process terminates within ⌊3n/2⌋+4 activations, outputs lie in the
// 6-pair palette, and the coloring is proper; for the smallest cycles the
// bound is compared with the exact worst case over all schedules computed
// by the model checker.
func E1Alg1Termination(o Options) *Table {
	t := &Table{
		ID:      "E1",
		Title:   "Algorithm 1 (6-coloring): activations vs Theorem 3.1 bound ⌊3n/2⌋+4",
		Columns: []string{"n", "bound", "sweep max", "exact worst (model)", "proper", "palette"},
	}
	sizes := []int{3, 4, 5, 8, 16, 64, 256}
	if o.Quick {
		sizes = []int{3, 4, 5, 16, 64}
	}
	type cell struct {
		n     int
		a     ids.Assignment
		spec  schedSpec
		exact bool
	}
	type result struct {
		maxActs               int
		properBad, paletteBad bool
		note, exact           string
	}
	var cells []cell
	for _, n := range sizes {
		for _, a := range ids.All() {
			for _, sp := range schedSpecs() {
				cells = append(cells, cell{n: n, a: a, spec: sp})
			}
		}
		if n <= 4 {
			cells = append(cells, cell{n: n, exact: true})
		}
	}
	results, done := mapCells(o, t, cells, func(_ int, c cell) result {
		g := graph.MustCycle(c.n)
		if c.exact {
			e, _ := sim.NewEngine(g, core.NewPairNodes(ids.MustGenerate(ids.Increasing, c.n, 0)))
			if vec, ok, _ := model.WorstActivations(e, model.Options{SingletonsOnly: true}); ok {
				return result{exact: fmt.Sprintf("%d", stats.MaxInt(vec))}
			}
			return result{exact: "-"}
		}
		xs := ids.MustGenerate(c.a, c.n, cellSeed(o.seed(), "E1", c.n, c.a))
		seed := cellSeed(o.seed(), "E1", c.n, c.a, c.spec.name)
		res, err := run(g, core.NewPairNodes(xs), c.spec.mk(seed), sim.ModeInterleaved, 100*c.n*c.n+10_000)
		if err != nil {
			return result{note: fmt.Sprintf("n=%d %s/%s: %v", c.n, c.a, c.spec.name, err)}
		}
		r := result{maxActs: res.MaxActivations()}
		r.properBad = check.ProperColoring(g, res) != nil
		r.paletteBad = check.PairPalette(res, 2) != nil
		return r
	})
	i := 0
	for _, n := range sizes {
		rowStart := i
		maxActs := 0
		proper, palette := true, true
		exact := "-"
		for ; i < len(cells) && cells[i].n == n; i++ {
			if !done[i] {
				continue
			}
			r := results[i]
			if cells[i].exact {
				exact = r.exact
				continue
			}
			if r.note != "" {
				t.AddNote("%s", r.note)
				continue
			}
			if r.maxActs > maxActs {
				maxActs = r.maxActs
			}
			proper = proper && !r.properBad
			palette = palette && !r.paletteBad
		}
		if !rowComplete(done, rowStart, i) {
			continue
		}
		t.AddRow(n, 3*n/2+4, maxActs, exact, proper, palette)
	}
	t.AddNote("paper: Theorem 3.1 — termination ≤ ⌊3n/2⌋+4 activations, palette {(a,b): a+b≤2}, proper coloring")
	return t
}

// E2Alg2Linear measures Algorithm 2 against Theorem 3.11: O(n) activations
// with the 5-color palette. The worst case input is the fully increasing
// identifier assignment (one monotone chain of length n−1, Remark 3.10);
// the measured maxima grow linearly in n.
func E2Alg2Linear(o Options) *Table {
	t := &Table{
		ID:      "E2",
		Title:   "Algorithm 2 (5-coloring): activations grow linearly on monotone identifiers",
		Columns: []string{"n", "chain", "max acts (incr ids)", "max acts (random ids)", "proper", "palette≤5"},
	}
	sizes := []int{8, 16, 32, 64, 128, 256, 512, 1024}
	if o.Quick {
		sizes = []int{8, 16, 32, 64, 128, 256}
	}
	type cell struct {
		n    int
		a    ids.Assignment
		spec schedSpec
	}
	type result struct {
		maxActs               int
		properBad, paletteBad bool
		note                  string
	}
	var cells []cell
	for _, n := range sizes {
		for _, a := range []ids.Assignment{ids.Increasing, ids.Random} {
			for _, sp := range schedSpecs() {
				cells = append(cells, cell{n: n, a: a, spec: sp})
			}
		}
	}
	results, done := mapCells(o, t, cells, func(_ int, c cell) result {
		g := graph.MustCycle(c.n)
		xs := ids.MustGenerate(c.a, c.n, cellSeed(o.seed(), "E2", c.n, c.a))
		seed := cellSeed(o.seed(), "E2", c.n, c.a, c.spec.name)
		res, err := run(g, core.NewFiveNodes(xs), c.spec.mk(seed), sim.ModeInterleaved, 500*c.n+20_000)
		if err != nil {
			return result{note: fmt.Sprintf("n=%d %s/%s: %v", c.n, c.a, c.spec.name, err)}
		}
		r := result{maxActs: res.MaxActivations()}
		r.properBad = check.ProperColoring(g, res) != nil
		r.paletteBad = check.PaletteRange(res, 5) != nil
		return r
	})
	var xsF, ysF []float64
	i := 0
	for _, n := range sizes {
		rowStart := i
		worstIncr, worstRand := 0, 0
		proper, palette := true, true
		for ; i < len(cells) && cells[i].n == n; i++ {
			if !done[i] {
				continue
			}
			c, r := cells[i], results[i]
			if r.note != "" {
				t.AddNote("%s", r.note)
				continue
			}
			if c.a == ids.Increasing && r.maxActs > worstIncr {
				worstIncr = r.maxActs
			}
			if c.a == ids.Random && r.maxActs > worstRand {
				worstRand = r.maxActs
			}
			proper = proper && !r.properBad
			palette = palette && !r.paletteBad
		}
		if !rowComplete(done, rowStart, i) {
			continue
		}
		chain := ids.LongestMonotoneChain(ids.MustGenerate(ids.Increasing, n, 0))
		t.AddRow(n, chain, worstIncr, worstRand, proper, palette)
		xsF = append(xsF, float64(n))
		ysF = append(ysF, float64(worstIncr))
	}
	fit := stats.LinearFit(xsF, ysF)
	t.AddNote("paper: Theorem 3.11 — termination in O(n) activations; linear fit slope=%.2f R²=%.3f", fit.Slope, fit.R2)
	return t
}

// E3Alg3LogStar measures Algorithm 3 against Theorem 4.4: O(log* n)
// activations. Across three orders of magnitude of n the measured maxima
// stay near-constant while log* n ticks up by one.
func E3Alg3LogStar(o Options) *Table {
	t := &Table{
		ID:      "E3",
		Title:   "Algorithm 3 (fast 5-coloring): activations track log* n",
		Columns: []string{"n", "log* n", "max acts (incr)", "max acts (spaced)", "max acts (random)", "max r", "proper", "palette≤5"},
	}
	sizes := []int{8, 64, 512, 4096, 65_536}
	if !o.Quick {
		sizes = append(sizes, 262_144, 1_048_576)
	}
	e3Specs := func(n int) []schedSpec {
		if n > 10_000 {
			// Sequential schedulers cost Θ(n) steps per sweep of the ring;
			// cap to the parallel ones for the largest sizes.
			return parallelSchedSpecs()
		}
		return schedSpecs()
	}
	type cell struct {
		n     int
		a     ids.Assignment
		spec  schedSpec
		probe bool // the max-r measurement cell
	}
	type result struct {
		maxActs, maxR         int
		properBad, paletteBad bool
		note                  string
	}
	assignments := []ids.Assignment{ids.Increasing, ids.SpacedIncreasing, ids.Random}
	var cells []cell
	for _, n := range sizes {
		for _, a := range assignments {
			for _, sp := range e3Specs(n) {
				cells = append(cells, cell{n: n, a: a, spec: sp})
			}
		}
		cells = append(cells, cell{n: n, probe: true})
	}
	results, done := mapCells(o, t, cells, func(_ int, c cell) result {
		g := graph.MustCycle(c.n)
		if c.probe {
			// Measure the reduction effort directly: the r counter counts
			// the Cole–Vishkin attempts a process performed (O(log* n) by
			// Lemma 4.1). Measured on the spaced-increasing input under the
			// synchronous schedule, where reductions are most numerous.
			r := result{}
			e, _ := sim.NewEngine(g, core.NewFastNodes(ids.MustGenerate(ids.SpacedIncreasing, c.n, 0)))
			if _, err := e.Run(schedule.Synchronous{}, 500*c.n+100_000); err == nil {
				for i := 0; i < c.n; i++ {
					if rr, _ := e.NodeState(i).(*core.Fast).R(); rr > r.maxR {
						r.maxR = rr
					}
				}
			}
			return r
		}
		xs := ids.MustGenerate(c.a, c.n, cellSeed(o.seed(), "E3", c.n, c.a))
		seed := cellSeed(o.seed(), "E3", c.n, c.a, c.spec.name)
		res, err := run(g, core.NewFastNodes(xs), c.spec.mk(seed), sim.ModeInterleaved, 500*c.n+100_000)
		if err != nil {
			return result{note: fmt.Sprintf("n=%d %s/%s: %v", c.n, c.a, c.spec.name, err)}
		}
		r := result{maxActs: res.MaxActivations()}
		r.properBad = check.ProperColoring(g, res) != nil
		r.paletteBad = check.PaletteRange(res, 5) != nil
		return r
	})
	i := 0
	for _, n := range sizes {
		rowStart := i
		worst := map[ids.Assignment]int{}
		maxR := 0
		proper, palette := true, true
		for ; i < len(cells) && cells[i].n == n; i++ {
			if !done[i] {
				continue
			}
			c, r := cells[i], results[i]
			if c.probe {
				maxR = r.maxR
				continue
			}
			if r.note != "" {
				t.AddNote("%s", r.note)
				continue
			}
			if r.maxActs > worst[c.a] {
				worst[c.a] = r.maxActs
			}
			proper = proper && !r.properBad
			palette = palette && !r.paletteBad
		}
		if !rowComplete(done, rowStart, i) {
			continue
		}
		t.AddRow(n, cv.LogStar(float64(n)), worst[ids.Increasing], worst[ids.SpacedIncreasing], worst[ids.Random], maxR, proper, palette)
	}
	t.AddNote("paper: Theorem 4.4 — termination in O(log* n) activations; the column should stay near-constant as n grows 5 decades")
	t.AddNote("max r counts per-process Cole–Vishkin reduction attempts (Lemma 4.1: O(log* n) of them suffice)")
	return t
}

// E4Crossover compares Algorithms 2 and 3 head to head on the worst-case
// increasing identifiers: Algorithm 2's per-process activations grow
// linearly while Algorithm 3's stay near-constant, so the speedup factor
// grows without bound (the paper's §4 motivation).
func E4Crossover(o Options) *Table {
	t := &Table{
		ID:      "E4",
		Title:   "Algorithm 2 vs Algorithm 3 on increasing identifiers (synchronous schedule)",
		Columns: []string{"n", "alg2 max acts", "alg3 max acts", "speedup"},
	}
	sizes := []int{8, 16, 32, 64, 128, 256, 512, 1024}
	if !o.Quick {
		sizes = append(sizes, 2048, 4096)
	}
	type cell struct {
		n    int
		fast bool
	}
	type result struct {
		maxActs int
		err     error
	}
	var cells []cell
	for _, n := range sizes {
		cells = append(cells, cell{n: n}, cell{n: n, fast: true})
	}
	results, done := mapCells(o, t, cells, func(_ int, c cell) result {
		g := graph.MustCycle(c.n)
		xs := ids.MustGenerate(ids.Increasing, c.n, 0)
		var res sim.Result
		var err error
		if c.fast {
			res, err = run(g, core.NewFastNodes(xs), schedule.Synchronous{}, sim.ModeInterleaved, 100*c.n+10_000)
		} else {
			res, err = run(g, core.NewFiveNodes(xs), schedule.Synchronous{}, sim.ModeInterleaved, 100*c.n+10_000)
		}
		if err != nil {
			return result{err: err}
		}
		return result{maxActs: res.MaxActivations()}
	})
	for i, n := range sizes {
		if !done[2*i] || !done[2*i+1] {
			continue
		}
		r2, r3 := results[2*i], results[2*i+1]
		if r2.err != nil || r3.err != nil {
			t.AddNote("n=%d: alg2 err=%v alg3 err=%v", n, r2.err, r3.err)
			continue
		}
		t.AddRow(n, r2.maxActs, r3.maxActs, float64(r2.maxActs)/float64(r3.maxActs))
	}
	t.AddNote("paper: §4 — the identifier-reduction component turns Θ(n) convergence into O(log* n)")
	return t
}

// E5ColeVishkin measures the identifier-reduction machinery of §4.1:
// Lemma 4.1's bound-function iterations and the adversarial single-chain
// iterations both track log* x. (Pure arithmetic: no parallel fan-out.)
func E5ColeVishkin(o Options) *Table {
	t := &Table{
		ID:      "E5",
		Title:   "Cole–Vishkin reduction (Lemmas 4.1–4.3): iterations to reach a constant identifier",
		Columns: []string{"x", "log* x", "bound iterations", "adversarial iterations"},
	}
	values := []int{100, 10_000, 1 << 20, 1 << 40, 1 << 62}
	for _, x := range values {
		t.AddRow(x, cv.LogStar(float64(x)), cv.BoundIterations(x), cv.AdversarialIterations(x))
	}
	t.AddNote("paper: Lemma 4.1 — O(log* x) iterations of F(x)=2⌈log(x+1)⌉+1 reach the constant regime (<10)")
	t.AddNote("Lemmas 4.2 (shrinkage above 10) and 4.3 (no collisions on monotone triples) are property-tested exhaustively in internal/cv")
	return t
}

// E6CrashTolerance crashes a growing fraction of processes at adversarial
// times and verifies the fault-tolerance contract: every survivor still
// terminates, within the wait-free bounds, and the terminated processes
// properly color their induced subgraph.
func E6CrashTolerance(o Options) *Table {
	t := &Table{
		ID:      "E6",
		Title:   "Crash tolerance: survivors always terminate with a proper coloring",
		Columns: []string{"crash %", "alg", "survivors", "survivors done", "max acts", "proper"},
	}
	n := 200
	if o.Quick {
		n = 100
	}
	type cell struct {
		frac float64
		alg  string
	}
	type result struct {
		survivors, maxActs int
		surOK, proper      bool
		note               string
	}
	var cells []cell
	for _, frac := range []float64{0, 0.1, 0.3, 0.5, 0.7, 0.9} {
		for _, alg := range []string{"five", "fast"} {
			cells = append(cells, cell{frac: frac, alg: alg})
		}
	}
	g := graph.MustCycle(n)
	results, done := mapCells(o, t, cells, func(_ int, c cell) result {
		seed := cellSeed(o.seed(), "E6", n, c.frac, c.alg)
		crashes := crashPlan(n, c.frac, seed)
		xs := ids.MustGenerate(ids.Random, n, seed)
		s := schedule.NewRandomSubset(0.4, seed+1)
		var res sim.Result
		var err error
		if c.alg == "five" {
			e, _ := sim.NewEngine(g, core.NewFiveNodes(xs))
			applyCrashes(e, crashes)
			res, err = e.Run(s, 500*n+20_000)
		} else {
			e, _ := sim.NewEngine(g, core.NewFastNodes(xs))
			applyCrashes(e, crashes)
			res, err = e.Run(s, 500*n+20_000)
		}
		if err != nil {
			return result{note: fmt.Sprintf("crash=%.0f%% %s: %v", c.frac*100, c.alg, err)}
		}
		return result{
			survivors: n - len(crashes),
			maxActs:   res.MaxActivations(),
			surOK:     check.SurvivorsTerminated(res) == nil,
			proper:    check.ProperColoring(g, res) == nil,
		}
	})
	for i, c := range cells {
		if !done[i] {
			continue
		}
		r := results[i]
		if r.note != "" {
			t.AddNote("%s", r.note)
			continue
		}
		t.AddRow(fmt.Sprintf("%.0f", c.frac*100), c.alg, r.survivors, r.surOK, r.maxActs, r.proper)
	}
	t.AddNote("paper: wait-freedom (§2.1) — crashes at arbitrary times never block correct processes")
	return t
}

func crashPlan(n int, frac float64, seed int64) map[int]int {
	count := int(frac * float64(n))
	plan := make(map[int]int, count)
	// Deterministic spread: crash every k-th node with a small round budget
	// varying 0..5 (0 = never wakes).
	if count == 0 {
		return plan
	}
	stride := n / count
	if stride == 0 {
		stride = 1
	}
	r := seed
	for i := 0; i < n && len(plan) < count; i += stride {
		r = r*6364136223846793005 + 1442695040888963407 // LCG step
		budget := int(uint64(r)>>60) % 6
		plan[i] = budget
	}
	return plan
}

func applyCrashes[V any](e *sim.Engine[V], plan map[int]int) {
	for i, k := range plan {
		e.CrashAfter(i, k)
	}
}

// E7MISImpossibility illustrates Property 2.1 (maximal independent set is
// not solvable wait-free) on the two natural candidate algorithms: the
// model checker certifies that Greedy admits executions with unbounded
// activations (a configuration-graph cycle) and that Impatient admits
// executions violating the MIS specification.
func E7MISImpossibility(o Options) *Table {
	t := &Table{
		ID:      "E7",
		Title:   "MIS candidates fail (Property 2.1): livelock or safety violation, certified exhaustively",
		Columns: []string{"candidate", "cycle C_n", "states", "not wait-free (cycle)", "MIS violation found"},
	}
	sizes := []int{3, 4}
	if !o.Quick {
		sizes = append(sizes, 5)
	}
	type cell struct {
		n      int
		greedy bool
	}
	var cells []cell
	for _, n := range sizes {
		cells = append(cells, cell{n: n, greedy: true}, cell{n: n})
	}
	results, done := mapCells(o, t, cells, func(_ int, c cell) model.Report {
		g := graph.MustCycle(c.n)
		xs := ids.MustGenerate(ids.Increasing, c.n, 0)
		var nodes []sim.Node[mis.Val]
		if c.greedy {
			nodes = mis.NewGreedyNodes(xs)
		} else {
			nodes = mis.NewImpatientNodes(xs, 2)
		}
		e, _ := sim.NewEngine(g, nodes)
		return model.Explore(e, model.Options{SingletonsOnly: true}, misInvariant(g))
	})
	for i, c := range cells {
		if !done[i] {
			continue
		}
		rep := results[i]
		label := "impatient(2)"
		if c.greedy {
			label = "greedy"
		}
		t.AddRow(label, c.n, rep.States, rep.CycleFound, len(rep.Violations) > 0)
	}
	t.AddNote("paper: Property 2.1 — MIS cannot be solved wait-free (reduction to strong symmetry breaking)")
	t.AddNote("greedy waits for higher neighbors: safe but not wait-free; impatient presumes crashes: wait-free but unsafe")
	return t
}

func misInvariant(g graph.Graph) model.Invariant[mis.Val] {
	return func(e *sim.Engine[mis.Val]) error {
		r := e.Result()
		if v := mis.ViolatesMIS(g.Edges(), g.N(), r.Outputs, r.Done); v != "" {
			return fmt.Errorf("%s", v)
		}
		return nil
	}
}

// E8PaletteTightness exhaustively explores Algorithm 2 on small cycles and
// reports the largest color any execution can be driven to output. The
// palette fills up with cycle length — color 2 is reachable on C3, color 3
// on C4, and color 4 on C5 — while color 5 is never produced on any cycle
// (the {0..4} palette of Theorem 3.11). Property 2.3's lower bound says no
// algorithm for all cycles can promise fewer than 5 colors, and indeed
// ours genuinely needs all 5.
func E8PaletteTightness(o Options) *Table {
	t := &Table{
		ID:      "E8",
		Title:   "Palette tightness (Property 2.3): the largest reachable color grows to 4, never beyond",
		Columns: []string{"cycle C_n", "states", "terminal", "max reachable color", "violations"},
	}
	type result struct {
		rep      model.Report
		maxColor int
	}
	sizes := []int{3, 4, 5}
	results, done := mapCells(o, t, sizes, func(_ int, n int) result {
		g := graph.MustCycle(n)
		xs := ids.MustGenerate(ids.Increasing, n, 0)
		maxColor := 0
		inv := func(e *sim.Engine[core.FiveVal]) error {
			r := e.Result()
			for i, out := range r.Outputs {
				if r.Done[i] && out > maxColor {
					maxColor = out
				}
			}
			if err := check.ProperColoring(g, r); err != nil {
				return err
			}
			return check.PaletteRange(r, 5)
		}
		e, _ := sim.NewEngine(g, core.NewFiveNodes(xs))
		rep := model.Explore(e, model.Options{SingletonsOnly: true}, inv)
		return result{rep: rep, maxColor: maxColor}
	})
	for i, n := range sizes {
		if !done[i] {
			continue
		}
		r := results[i]
		t.AddRow(n, r.rep.States, r.rep.Terminal, r.maxColor, len(r.rep.Violations))
	}
	t.AddNote("paper: Property 2.3 — wait-free coloring of all cycles needs ≥ 5 colors; color 4 is reached on C5, color 5 never")
	return t
}

// E9GeneralGraphs runs Algorithm 4 (Appendix A) on random bounded-degree
// graphs: outputs stay in the (Δ+1)(Δ+2)/2 pair palette and properly color
// the graph, under crashes and adversarial schedules.
func E9GeneralGraphs(o Options) *Table {
	t := &Table{
		ID:      "E9",
		Title:   "Algorithm 4 on general graphs: O(Δ²) palette (Appendix A)",
		Columns: []string{"n", "Δ", "palette size", "max a+b seen", "max acts", "proper", "palette ok"},
	}
	sizes := []int{32, 128}
	if !o.Quick {
		sizes = append(sizes, 512)
	}
	type cell struct {
		n, maxDeg int    // random bounded-degree rows
		dims      [2]int // torus rows (n == 0 then)
		spec      schedSpec
	}
	type result struct {
		delta, maxActs, maxSum int
		properBad, paletteBad  bool
		note, graphErr         string
	}
	var cells []cell
	for _, n := range sizes {
		for _, maxDeg := range []int{3, 4, 6, 8} {
			for _, sp := range schedSpecs() {
				cells = append(cells, cell{n: n, maxDeg: maxDeg, spec: sp})
			}
		}
	}
	toruses := [][2]int{{8, 8}, {16, 16}}
	for _, dims := range toruses {
		for _, sp := range schedSpecs() {
			cells = append(cells, cell{dims: dims, spec: sp})
		}
	}
	results, done := mapCells(o, t, cells, func(_ int, c cell) result {
		var g graph.Graph
		var xs []int
		delta := 0
		if c.n > 0 {
			// The graph and identifiers are row-level inputs, derived from
			// row coordinates only so every scheduler cell of the row sees
			// the same instance.
			rowSeed := cellSeed(o.seed(), "E9", c.n, c.maxDeg)
			var err error
			g, err = graph.RandomBoundedDegree(c.n, c.maxDeg, rowSeed)
			if err != nil {
				return result{graphErr: fmt.Sprintf("n=%d Δ=%d: %v", c.n, c.maxDeg, err)}
			}
			delta = g.MaxDegree()
			xs = ids.MustGenerate(ids.Random, c.n, rowSeed)
		} else {
			rowSeed := cellSeed(o.seed(), "E9", "torus", c.dims[0], c.dims[1])
			var err error
			g, err = graph.Torus(c.dims[0], c.dims[1])
			if err != nil {
				return result{graphErr: fmt.Sprintf("torus %v: %v", c.dims, err)}
			}
			delta = 4
			xs = ids.MustGenerate(ids.Random, g.N(), rowSeed)
		}
		seed := cellSeed(o.seed(), "E9", c.n, c.maxDeg, c.dims, c.spec.name)
		res, err := run(g, core.NewPairNodes(xs), c.spec.mk(seed), sim.ModeInterleaved, 500*g.N()+20_000)
		if err != nil {
			return result{delta: delta, note: fmt.Sprintf("n=%d Δ=%d %s: %v", g.N(), delta, c.spec.name, err)}
		}
		r := result{delta: delta, maxActs: res.MaxActivations()}
		for i, out := range res.Outputs {
			if res.Done[i] {
				a, b := core.DecodePair(out)
				if a+b > r.maxSum {
					r.maxSum = a + b
				}
			}
		}
		r.properBad = check.ProperColoring(g, res) != nil
		r.paletteBad = check.PairPalette(res, delta) != nil
		return r
	})
	// Merge scheduler cells row by row (rows are contiguous runs of cells).
	nspecs := len(schedSpecs())
	for base := 0; base < len(cells); base += nspecs {
		c := cells[base]
		delta, maxActs, maxSum := 0, 0, 0
		proper, palette := true, true
		graphErr := ""
		for i := base; i < base+nspecs; i++ {
			if !done[i] {
				continue
			}
			r := results[i]
			if r.graphErr != "" {
				graphErr = r.graphErr
				continue
			}
			if r.note != "" {
				t.AddNote("%s", r.note)
				delta = r.delta
				continue
			}
			delta = r.delta
			if r.maxActs > maxActs {
				maxActs = r.maxActs
			}
			if r.maxSum > maxSum {
				maxSum = r.maxSum
			}
			proper = proper && !r.properBad
			palette = palette && !r.paletteBad
		}
		if graphErr != "" {
			t.AddNote("%s", graphErr)
			continue
		}
		if !rowComplete(done, base, base+nspecs) {
			continue
		}
		label := fmt.Sprintf("%d", c.n)
		if c.n == 0 {
			label = fmt.Sprintf("%d (torus)", c.dims[0]*c.dims[1])
		}
		t.AddRow(label, delta, core.PairPaletteSize(delta), maxSum, maxActs, proper, palette)
	}
	t.AddNote("paper: Appendix A — every output pair satisfies a+b ≤ Δ, i.e. (Δ+1)(Δ+2)/2 = O(Δ²) colors")
	return t
}

// E10SyncBaseline measures the synchronous failure-free LOCAL baseline
// (§1.1): Cole–Vishkin 3-coloring in ½log* n + O(1) rounds, compared to
// Algorithm 3's asynchronous activations on the same inputs.
func E10SyncBaseline(o Options) *Table {
	t := &Table{
		ID:      "E10",
		Title:   "Synchronous LOCAL baseline: Cole–Vishkin 3-coloring rounds vs Algorithm 3 activations",
		Columns: []string{"n", "log* n", "CV rounds (3 colors)", "alg3 max acts (5 colors)", "proper"},
	}
	sizes := []int{8, 64, 4096, 65_536}
	if !o.Quick {
		sizes = append(sizes, 1_048_576)
	}
	type result struct {
		rounds int
		alg3   string
		proper bool
		note   string
	}
	results, done := mapCells(o, t, sizes, func(_ int, n int) result {
		xs := ids.MustGenerate(ids.Random, n, cellSeed(o.seed(), "E10", n))
		colors, rounds, err := locale.ThreeColorCycle(xs)
		if err != nil {
			return result{note: fmt.Sprintf("n=%d: %v", n, err)}
		}
		r := result{
			rounds: rounds,
			proper: locale.ProperCycleColoring(colors) && stats.MaxInt(colors) <= 2,
			alg3:   "-",
		}
		g := graph.MustCycle(n)
		res, err := run(g, core.NewFastNodes(xs), schedule.Synchronous{}, sim.ModeInterleaved, 100*n+100_000)
		if err == nil {
			r.alg3 = fmt.Sprintf("%d", res.MaxActivations())
		}
		return r
	})
	for i, n := range sizes {
		if !done[i] {
			continue
		}
		r := results[i]
		if r.note != "" {
			t.AddNote("%s", r.note)
			continue
		}
		t.AddRow(n, cv.LogStar(float64(n)), r.rounds, r.alg3, r.proper)
	}
	t.AddNote("paper: §1.1 — synchronous 3-coloring takes ½log* n + O(1) rounds [17]; both columns track log* n")
	return t
}

// E11Renaming runs the rank-based renaming baseline on complete graphs
// (where the model is exactly wait-free shared memory): every process
// decides a name in {0, …, 2n−2}, and on K2/K3 the model checker verifies
// wait-freedom and the name bound over every schedule.
func E11Renaming(o Options) *Table {
	t := &Table{
		ID:      "E11",
		Title:   "Rank-based (2n−1)-renaming on K_n (shared-memory baseline, §1.3)",
		Columns: []string{"n", "name bound 2n−2", "max name seen", "max acts", "all unique", "exhaustive (n≤3)"},
	}
	sizes := []int{2, 3, 4, 8, 16}
	if !o.Quick {
		sizes = append(sizes, 32, 64)
	}
	type cell struct {
		n     int
		spec  schedSpec
		exact bool
	}
	type result struct {
		maxName, maxActs int
		uniqueBad        bool
		note, exhaustive string
	}
	var cells []cell
	for _, n := range sizes {
		for _, sp := range schedSpecs() {
			cells = append(cells, cell{n: n, spec: sp})
		}
		if n <= 3 {
			cells = append(cells, cell{n: n, exact: true})
		}
	}
	results, done := mapCells(o, t, cells, func(_ int, c cell) result {
		g, err := graph.Complete(c.n)
		if err != nil {
			return result{note: fmt.Sprintf("n=%d: %v", c.n, err)}
		}
		xs := ids.MustGenerate(ids.Random, c.n, cellSeed(o.seed(), "E11", c.n))
		if c.exact {
			e, _ := sim.NewEngine(g, renaming.NewNodes(xs))
			rep := model.Explore(e, model.Options{SingletonsOnly: true}, renamingInvariant(c.n))
			return result{exhaustive: fmt.Sprintf("ok=%t states=%d", rep.Ok(), rep.States)}
		}
		seed := cellSeed(o.seed(), "E11", c.n, c.spec.name)
		res, err := run(g, renaming.NewNodes(xs), c.spec.mk(seed), sim.ModeInterleaved, 2000*c.n+50_000)
		if err != nil {
			return result{note: fmt.Sprintf("n=%d %s: %v", c.n, c.spec.name, err)}
		}
		r := result{}
		seen := map[int]bool{}
		for i, out := range res.Outputs {
			if !res.Done[i] {
				continue
			}
			if out > r.maxName {
				r.maxName = out
			}
			if seen[out] {
				r.uniqueBad = true
			}
			seen[out] = true
		}
		r.maxActs = res.MaxActivations()
		return r
	})
	i := 0
	for _, n := range sizes {
		rowStart := i
		maxName, worstActs := 0, 0
		unique := true
		exhaustive := "-"
		for ; i < len(cells) && cells[i].n == n; i++ {
			if !done[i] {
				continue
			}
			r := results[i]
			if cells[i].exact {
				exhaustive = r.exhaustive
				continue
			}
			if r.note != "" {
				t.AddNote("%s", r.note)
				continue
			}
			if r.maxName > maxName {
				maxName = r.maxName
			}
			if r.maxActs > worstActs {
				worstActs = r.maxActs
			}
			unique = unique && !r.uniqueBad
		}
		if !rowComplete(done, rowStart, i) {
			continue
		}
		t.AddRow(n, renaming.MaxName(n), maxName, worstActs, unique, exhaustive)
	}
	t.AddNote("paper: §1.1/§1.3 — (2n−1)-renaming is wait-free solvable [3]; names never exceed 2n−2 (0-based)")
	return t
}

func renamingInvariant(n int) model.Invariant[renaming.Val] {
	return func(e *sim.Engine[renaming.Val]) error {
		r := e.Result()
		seen := map[int]int{}
		for i, out := range r.Outputs {
			if !r.Done[i] {
				continue
			}
			if out < 0 || out > renaming.MaxName(n) {
				return fmt.Errorf("name %d outside {0..%d}", out, renaming.MaxName(n))
			}
			if j, dup := seen[out]; dup {
				return fmt.Errorf("processes %d and %d both named %d", j, i, out)
			}
			seen[out] = i
		}
		return nil
	}
}

// E12IdentifierInvariant checks Lemma 4.5 on live executions: throughout
// every traced run of Algorithm 3, the evolving identifiers (internal and
// published) properly color the cycle at every time step.
func E12IdentifierInvariant(o Options) *Table {
	t := &Table{
		ID:      "E12",
		Title:   "Lemma 4.5: Algorithm 3's evolving identifiers always properly color the cycle",
		Columns: []string{"n", "assignment", "schedulers", "steps checked", "violations"},
	}
	sizes := []int{5, 33, 128}
	assignments := []ids.Assignment{ids.Increasing, ids.Random, ids.Zigzag}
	type cell struct {
		n    int
		a    ids.Assignment
		spec schedSpec
	}
	type result struct {
		steps, violations int
		note              string
	}
	var cells []cell
	for _, n := range sizes {
		for _, a := range assignments {
			for _, sp := range schedSpecs() {
				cells = append(cells, cell{n: n, a: a, spec: sp})
			}
		}
	}
	results, done := mapCells(o, t, cells, func(_ int, c cell) result {
		g := graph.MustCycle(c.n)
		xs := ids.MustGenerate(c.a, c.n, cellSeed(o.seed(), "E12", c.n, c.a))
		seed := cellSeed(o.seed(), "E12", c.n, c.a, c.spec.name)
		e, _ := sim.NewEngine(g, core.NewFastNodes(xs))
		rec := &check.FastInvariantRecorder{}
		e.AddHook(rec.Hook())
		res, err := e.Run(c.spec.mk(seed), 500*c.n+20_000)
		if err != nil {
			return result{note: fmt.Sprintf("n=%d %s/%s: %v", c.n, c.a, c.spec.name, err)}
		}
		return result{steps: res.Steps, violations: len(rec.Violations)}
	})
	i := 0
	for _, n := range sizes {
		for _, a := range assignments {
			rowStart := i
			totalSteps, violations, nscheds := 0, 0, 0
			for ; i < len(cells) && cells[i].n == n && cells[i].a == a; i++ {
				if !done[i] {
					continue
				}
				r := results[i]
				if r.note != "" {
					t.AddNote("%s", r.note)
					continue
				}
				totalSteps += r.steps
				violations += r.violations
				nscheds++
			}
			if !rowComplete(done, rowStart, i) {
				continue
			}
			t.AddRow(n, a.String(), nscheds, totalSteps, violations)
		}
	}
	t.AddNote("paper: Lemma 4.5 — X̂_p(t) ≠ X̂_q(t) for every edge (p,q) at every t; checked at every step of every run")
	return t
}

// E13Concurrent exercises the goroutine runtime end to end: real
// concurrency, crash injection, and jitter, with the same correctness
// checks as the deterministic engine. Its cells run real goroutine
// executions, so (unlike every other experiment) the measured round
// statistics are inherently nondeterministic run to run.
func E13Concurrent(o Options) *Table {
	t := &Table{
		ID:      "E13",
		Title:   "Concurrent runtime: goroutine executions with crashes and jitter",
		Columns: []string{"n", "alg", "crashed", "survivors done", "mean rounds", "p90 rounds", "max rounds", "proper"},
	}
	sizes := []int{50, 200}
	if !o.Quick {
		sizes = append(sizes, 1000)
	}
	type cell struct {
		n   int
		alg string
	}
	type result struct {
		crashed       int
		surOK, proper bool
		mean, p90     float64
		maxRounds     int
		note          string
	}
	var cells []cell
	for _, n := range sizes {
		for _, alg := range []string{"five", "fast", "pair"} {
			cells = append(cells, cell{n: n, alg: alg})
		}
	}
	results, done := mapCells(o, t, cells, func(_ int, c cell) result {
		g := graph.MustCycle(c.n)
		seed := cellSeed(o.seed(), "E13", c.n, c.alg)
		xs := ids.MustGenerate(ids.Random, c.n, seed)
		crashes := crashPlan(c.n, 0.2, seed)
		opt := conc.Options{CrashAfter: crashes, Yield: true, Jitter: 50 * time.Microsecond, Seed: seed}
		d, err := protocol.Lookup(c.alg)
		if err != nil {
			return result{note: fmt.Sprintf("n=%d %s: %v", c.n, c.alg, err)}
		}
		res, err := d.RunConc(xs, opt)
		if err != nil {
			return result{note: fmt.Sprintf("n=%d %s: %v", c.n, c.alg, err)}
		}
		var rounds []int
		for i, a := range res.Activations {
			if !res.Crashed[i] {
				rounds = append(rounds, a)
			}
		}
		sum := stats.Summarize(stats.Floats(rounds))
		return result{
			crashed:   len(crashes),
			surOK:     check.SurvivorsTerminated(res) == nil,
			proper:    check.ProperColoring(g, res) == nil,
			mean:      sum.Mean,
			p90:       sum.P90,
			maxRounds: res.MaxActivations(),
		}
	})
	for i, c := range cells {
		if !done[i] {
			continue
		}
		r := results[i]
		if r.note != "" {
			t.AddNote("%s", r.note)
			continue
		}
		t.AddRow(c.n, c.alg, r.crashed, r.surOK, r.mean, r.p90, r.maxRounds, r.proper)
	}
	t.AddNote("each node is a goroutine; rounds are atomic local immediate snapshots via ordered neighborhood locking")
	return t
}

// F1Livelock documents the repository's reproduction finding: under the
// paper's literal simultaneous-round semantics (§2.1), Algorithms 2 and 3
// admit livelock — an adversary keeping two adjacent processes in perfect
// lockstep next to an early-terminated neighbor with color 0 frozen in its
// register makes their b-components chase each other forever. Under the
// standard interleaved adversary all three algorithms are wait-free
// (exhaustively verified). Algorithm 1 is immune in both modes.
func F1Livelock(o Options) *Table {
	t := &Table{
		ID:      "F1",
		Title:   "Finding: simultaneous-round semantics break wait-freedom of Algorithms 2/3",
		Columns: []string{"alg", "cycle C_n", "mode", "schedules", "livelock cycle found"},
	}
	type config struct {
		mode   sim.Mode
		single bool
		label  string
	}
	configs := []config{
		{sim.ModeInterleaved, true, "all interleavings"},
		{sim.ModeSimultaneous, false, "all subset schedules"},
	}
	algs := []string{"pair", "five", "fast"}
	type cell struct {
		n   int
		cfg config
		alg string
	}
	var cells []cell
	for _, n := range []int{3, 4} {
		for _, cfg := range configs {
			for _, alg := range algs {
				cells = append(cells, cell{n: n, cfg: cfg, alg: alg})
			}
		}
	}
	results, done := mapCells(o, t, cells, func(_ int, c cell) model.Report {
		xs := ids.MustGenerate(ids.Increasing, c.n, 0)
		mopt := model.Options{SingletonsOnly: c.cfg.single}
		d, err := protocol.Lookup(c.alg)
		if err != nil {
			return model.Report{}
		}
		rep, err := d.Check(xs, c.cfg.mode, mopt)
		if err != nil {
			return model.Report{}
		}
		return rep
	})
	for i, c := range cells {
		if !done[i] {
			continue
		}
		t.AddRow(c.alg, c.n, c.cfg.mode.String(), c.cfg.label, results[i].CycleFound)
	}
	t.AddNote("safety (proper coloring, palette) holds in BOTH modes for all three algorithms — only liveness differs")
	t.AddNote("the concrete witness: C5, odd-class-first two-phase lockstep schedule, Algorithm 2 oscillates with period 2 (see TestF1 in the root test suite)")
	return t
}

// E19RegistryProtocols verifies the protocols that the registry made
// reachable from the model checker for the first time — the MIS pair, the
// renaming algorithm, and the DECOUPLED three-coloring — through the same
// descriptor surface the CLIs use: exhaustive state counts, livelock and
// violation verdicts, and (where the protocol is wait-free) the exact
// worst-case activation vector.
func E19RegistryProtocols(o Options) *Table {
	t := &Table{
		ID:      "E19",
		Title:   "Registry-driven verification of the newly reachable protocols",
		Columns: []string{"protocol", "graph", "states", "terminal", "livelock", "violations", "exact worst rounds"},
	}
	type cell struct {
		alg string
		n   int
	}
	var cells []cell
	sizes := []int{4}
	if !o.Quick {
		sizes = append(sizes, 5)
	}
	for _, n := range sizes {
		for _, alg := range []string{"mis-greedy", "mis-impatient", "renaming"} {
			cells = append(cells, cell{alg: alg, n: n})
		}
	}
	// The DECOUPLED tick graph is infinite, so its cell is depth-bounded
	// by the descriptor horizon and kept at C4 (C5 exceeds the state
	// budget even at shallow depth).
	cells = append(cells, cell{alg: "decoupled-three", n: 4})
	type result struct {
		graph   string
		rep     model.Report
		worst   []int
		worstOK bool
		note    string
	}
	results, done := mapCells(o, t, cells, func(_ int, c cell) result {
		d, err := protocol.Lookup(c.alg)
		if err != nil {
			return result{note: fmt.Sprintf("%s: %v", c.alg, err)}
		}
		g, err := d.Topology(c.n)
		if err != nil {
			return result{note: fmt.Sprintf("%s n=%d: %v", c.alg, c.n, err)}
		}
		xs := ids.MustGenerate(ids.Increasing, c.n, 0)
		opt := model.Options{SingletonsOnly: len(d.Modes) > 0, MaxDepth: d.DefaultCheckDepth}
		rep, err := d.Check(xs, sim.ModeInterleaved, opt)
		if err != nil {
			return result{note: fmt.Sprintf("%s n=%d: %v", c.alg, c.n, err)}
		}
		r := result{graph: g.Name(), rep: rep}
		if d.Worst != nil && !rep.CycleFound {
			r.worst, r.worstOK, _, _ = d.Worst(xs, sim.ModeInterleaved, opt)
		}
		return r
	})
	for i, c := range cells {
		if !done[i] {
			continue
		}
		r := results[i]
		if r.note != "" {
			t.AddNote("%s", r.note)
			continue
		}
		worst := "—"
		switch {
		case r.rep.CycleFound:
			worst = "unbounded (livelock)"
		case r.worstOK:
			worst = fmt.Sprintf("%v", r.worst)
		case r.rep.Truncated:
			worst = fmt.Sprintf("≤ depth %d (tick horizon)", r.rep.DeepestPath)
		}
		t.AddRow(c.alg, r.graph, r.rep.States, r.rep.Terminal, r.rep.CycleFound, len(r.rep.Violations), worst)
	}
	t.AddNote("every cell dispatches through internal/protocol descriptors — the same surface the four CLIs share")
	t.AddNote("mis-impatient's violations are the expected unsafety (Theorem 4.1 direction: wait-free MIS must give up safety); mis-greedy's livelock is the complementary direction")
	return t
}
