// Package expt implements the reproduction experiments E1–E24 and finding
// F1 listed in DESIGN.md. Each experiment runs a parameter sweep and
// returns a Table whose rows are what cmd/experiments prints and what
// EXPERIMENTS.md records; the root benchmarks drive the same runners.
//
// The paper is a theory brief announcement with no empirical tables, so
// each experiment operationalizes one theorem, lemma, or property: the
// "paper" column of a table is the theorem's bound and the "measured"
// column is what the implementation achieves.
package expt

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"strings"

	"asynccycle/internal/metrics"
	"asynccycle/internal/runctl"
)

// Table is one experiment's output: a titled grid of string cells.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string

	// Partial reports the sweep was cut short (cancelled context or tripped
	// budget): rows cover only the fully explored cells, and the rendered
	// title carries an explicit [PARTIAL: reason] marker so truncation is
	// never silent.
	Partial bool
	// StopReason labels why a Partial sweep stopped.
	StopReason runctl.StopReason
	// Unexplored counts the sweep cells that never ran.
	Unexplored int
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a free-form note printed under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// MarkPartial records that skipped of total sweep cells never ran (the
// context was cancelled or a budget tripped) and adds an explicit note, so
// a truncated table can never be mistaken for a complete one. Calling it
// again accumulates the skipped count but keeps the first reason.
func (t *Table) MarkPartial(reason runctl.StopReason, skipped, total int) {
	t.Partial = true
	if t.StopReason == runctl.StopNone {
		t.StopReason = reason
	}
	t.Unexplored += skipped
	t.AddNote("PARTIAL (%s): %d of %d sweep cells unexplored; rows aggregate completed cells only", reason, skipped, total)
}

// heading renders the title line, with the partial marker when truncated.
func (t *Table) heading() string {
	if t.Partial {
		return fmt.Sprintf("%s — %s [PARTIAL: %s]", t.ID, t.Title, t.StopReason)
	}
	return fmt.Sprintf("%s — %s", t.ID, t.Title)
}

// WriteTo renders the table as aligned text.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.heading())

	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	for i, wd := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", wd))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	b.WriteByte('\n')
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the table as text.
func (t *Table) String() string {
	var b strings.Builder
	if _, err := t.WriteTo(&b); err != nil {
		return fmt.Sprintf("table %s: %v", t.ID, err)
	}
	return b.String()
}

// WriteMarkdown renders the table as a GitHub-flavored Markdown section.
func (t *Table) WriteMarkdown(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s\n\n", t.heading())
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	if len(t.Notes) > 0 {
		b.WriteByte('\n')
		for _, n := range t.Notes {
			fmt.Fprintf(&b, "> %s\n", n)
		}
	}
	b.WriteByte('\n')
	if _, err := io.WriteString(w, b.String()); err != nil {
		return fmt.Errorf("expt: write markdown: %w", err)
	}
	return nil
}

// WriteCSV renders the table as CSV with an id column prepended, suitable
// for downstream plotting. Notes are omitted.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(append([]string{"experiment"}, t.Columns...)); err != nil {
		return fmt.Errorf("expt: write csv: %w", err)
	}
	for _, row := range t.Rows {
		if err := cw.Write(append([]string{t.ID}, row...)); err != nil {
			return fmt.Errorf("expt: write csv: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("expt: write csv: %w", err)
	}
	return nil
}

// Options tune the sweeps. The zero value runs the full experiment suite;
// Quick shrinks parameter ranges for fast test runs.
type Options struct {
	Quick bool
	Seed  int64
	// Parallelism is the worker count for the sweep cells each runner fans
	// out (0 = GOMAXPROCS, 1 = serial). Every table is byte-identical at
	// every parallelism level: cells are enumerated up front, each derives
	// its seeds from its own coordinates (see cellSeed), and results merge
	// in enumeration order.
	Parallelism int
	// Context, when non-nil, cancels the sweeps: workers stop claiming new
	// cells once it is done, and the affected tables come back marked
	// Partial with the unexplored cell count. Rows aggregate only cells
	// that completed, so partial tables are truthful about what ran. A nil
	// Context (the default) leaves behavior and output byte-identical.
	Context context.Context
	// Metrics, when non-nil, receives live sweep progress: CellsTotal /
	// CellsDone counters and per-worker utilization, plus whatever the
	// underlying engines and model-checker runs publish.
	Metrics *metrics.Run
	// Topology overrides the graph family for the experiments that are
	// topology-generic (currently E22's engine sweep): a registered
	// topology spec such as "torus" or "random:6:3". The cycle-specific
	// reproduction experiments E1–E20 ignore it — their tables
	// operationalize cycle theorems and would be meaningless elsewhere.
	Topology string
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

func (o Options) workers() int { return o.Parallelism }

// Runner names one experiment and how to produce its table.
type Runner struct {
	ID  string
	Run func(Options) *Table
}

// Runners lists every experiment in order, lazily: nothing executes until
// a Runner's Run is called.
func Runners() []Runner {
	return []Runner{
		{"E1", E1Alg1Termination},
		{"E2", E2Alg2Linear},
		{"E3", E3Alg3LogStar},
		{"E4", E4Crossover},
		{"E5", E5ColeVishkin},
		{"E6", E6CrashTolerance},
		{"E7", E7MISImpossibility},
		{"E8", E8PaletteTightness},
		{"E9", E9GeneralGraphs},
		{"E10", E10SyncBaseline},
		{"E11", E11Renaming},
		{"E12", E12IdentifierInvariant},
		{"E13", E13Concurrent},
		{"E14", E14Decoupled},
		{"E15", E15SSBReduction},
		{"E16", E16ProgressClasses},
		{"E17", E17Ablations},
		{"E18", E18SymmetrySweep},
		{"E19", E19RegistryProtocols},
		{"E20", E20RoundCurves},
		{"F1", F1Livelock},
		{"E22", E22DeltaPlusOne},
		{"E23", E23ApproxAgreement},
		{"E24", E24SelfStabilization},
	}
}

// All runs every experiment in order. Once o.Context is cancelled the
// remaining experiments are not started; each contributes a stub table
// marked Partial instead, so the output always lists the full suite and
// says explicitly which parts never ran.
func All(o Options) []*Table {
	runners := Runners()
	tables := make([]*Table, len(runners))
	for i, r := range runners {
		if o.Context != nil && o.Context.Err() != nil {
			t := &Table{ID: r.ID, Title: "not run"}
			t.MarkPartial(runctl.Reason(o.Context), 0, 0)
			tables[i] = t
			continue
		}
		tables[i] = r.Run(o)
	}
	return tables
}
