package expt

import (
	"strconv"
	"strings"
	"testing"
)

func TestTableFormatting(t *testing.T) {
	tb := &Table{ID: "T", Title: "demo", Columns: []string{"a", "longcol"}}
	tb.AddRow(1, 2.5)
	tb.AddRow("xyz", true)
	tb.AddNote("hello %d", 42)
	out := tb.String()
	if !strings.Contains(out, "T — demo") {
		t.Error("missing header")
	}
	if !strings.Contains(out, "2.50") {
		t.Error("floats should render with two decimals")
	}
	if !strings.Contains(out, "note: hello 42") {
		t.Error("missing note")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // header, columns, rule, 2 rows, note
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
}

func TestRunnersCoverAllExperiments(t *testing.T) {
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19", "E20", "F1", "E22", "E23", "E24"}
	runners := Runners()
	if len(runners) != len(want) {
		t.Fatalf("got %d runners, want %d", len(runners), len(want))
	}
	for i, id := range want {
		if runners[i].ID != id {
			t.Errorf("runner %d = %s, want %s", i, runners[i].ID, id)
		}
	}
}

func cell(t *testing.T, tb *Table, row int, col string) string {
	t.Helper()
	for i, c := range tb.Columns {
		if c == col {
			if row >= len(tb.Rows) {
				t.Fatalf("%s: row %d out of range", tb.ID, row)
			}
			return tb.Rows[row][i]
		}
	}
	t.Fatalf("%s: no column %q", tb.ID, col)
	return ""
}

func atoi(t *testing.T, s string) int {
	t.Helper()
	v, err := strconv.Atoi(s)
	if err != nil {
		t.Fatalf("not an int: %q", s)
	}
	return v
}

func atof(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("not a float: %q", s)
	}
	return v
}

// The experiment integration tests run each experiment in quick mode and
// assert the *shape* of the reproduced result, not exact numbers.

func TestE1ShapeWithinBound(t *testing.T) {
	tb := E1Alg1Termination(Options{Quick: true})
	if len(tb.Rows) == 0 {
		t.Fatal("empty table")
	}
	for r := range tb.Rows {
		bound := atoi(t, cell(t, tb, r, "bound"))
		got := atoi(t, cell(t, tb, r, "sweep max"))
		if got > bound {
			t.Errorf("row %d: sweep max %d exceeds bound %d", r, got, bound)
		}
		if cell(t, tb, r, "proper") != "true" || cell(t, tb, r, "palette") != "true" {
			t.Errorf("row %d: correctness flags false", r)
		}
	}
}

func TestE2ShapeLinear(t *testing.T) {
	tb := E2Alg2Linear(Options{Quick: true})
	first := atoi(t, cell(t, tb, 0, "max acts (incr ids)"))
	last := atoi(t, cell(t, tb, len(tb.Rows)-1, "max acts (incr ids)"))
	n0 := atoi(t, cell(t, tb, 0, "n"))
	n1 := atoi(t, cell(t, tb, len(tb.Rows)-1, "n"))
	// Linear shape: scaling n by k scales activations by ≈ k (at least k/2).
	if last*2 < first*(n1/n0)/2 {
		t.Errorf("activations not linear: %d@n=%d vs %d@n=%d", first, n0, last, n1)
	}
	foundFit := false
	for _, note := range tb.Notes {
		if strings.Contains(note, "slope=") {
			foundFit = true
			// R² close to 1 is asserted textually by the harness itself.
			if !strings.Contains(note, "R²=1.000") && !strings.Contains(note, "R²=0.9") {
				t.Errorf("weak linear fit: %s", note)
			}
		}
	}
	if !foundFit {
		t.Error("missing linear-fit note")
	}
}

func TestE3ShapeFlat(t *testing.T) {
	tb := E3Alg3LogStar(Options{Quick: true})
	first := atoi(t, cell(t, tb, 0, "max acts (incr)"))
	last := atoi(t, cell(t, tb, len(tb.Rows)-1, "max acts (incr)"))
	if last > first+6 {
		t.Errorf("Algorithm 3 activations grew from %d to %d across the sweep", first, last)
	}
	if last > 40 {
		t.Errorf("Algorithm 3 used %d activations; not O(log* n)-like", last)
	}
	for r := range tb.Rows {
		if cell(t, tb, r, "proper") != "true" || cell(t, tb, r, "palette≤5") != "true" {
			t.Errorf("row %d: correctness flags false", r)
		}
	}
}

func TestE4ShapeSpeedupGrows(t *testing.T) {
	tb := E4Crossover(Options{Quick: true})
	firstSpeedup := atof(t, cell(t, tb, 0, "speedup"))
	lastSpeedup := atof(t, cell(t, tb, len(tb.Rows)-1, "speedup"))
	if lastSpeedup < 4*firstSpeedup {
		t.Errorf("speedup did not grow: %.2f → %.2f", firstSpeedup, lastSpeedup)
	}
	if lastSpeedup < 10 {
		t.Errorf("final speedup %.2f < 10×", lastSpeedup)
	}
}

func TestE5ShapeStaircase(t *testing.T) {
	tb := E5ColeVishkin(Options{Quick: true})
	for r := range tb.Rows {
		b := atoi(t, cell(t, tb, r, "bound iterations"))
		a := atoi(t, cell(t, tb, r, "adversarial iterations"))
		if b > 5 || a > 5 {
			t.Errorf("row %d: iterations (%d, %d) exceed the log* plateau", r, b, a)
		}
	}
}

func TestE6ShapeAllSurvive(t *testing.T) {
	tb := E6CrashTolerance(Options{Quick: true})
	if len(tb.Rows) < 8 {
		t.Fatalf("only %d rows", len(tb.Rows))
	}
	for r := range tb.Rows {
		if cell(t, tb, r, "survivors done") != "true" {
			t.Errorf("row %d: survivors did not all terminate", r)
		}
		if cell(t, tb, r, "proper") != "true" {
			t.Errorf("row %d: improper coloring", r)
		}
	}
}

func TestE7ShapeCertificates(t *testing.T) {
	tb := E7MISImpossibility(Options{Quick: true})
	for r := range tb.Rows {
		candidate := tb.Rows[r][0]
		cycle := cell(t, tb, r, "not wait-free (cycle)")
		violation := cell(t, tb, r, "MIS violation found")
		switch {
		case strings.HasPrefix(candidate, "greedy"):
			if cycle != "true" || violation != "false" {
				t.Errorf("greedy row %d: cycle=%s violation=%s, want true/false", r, cycle, violation)
			}
		case strings.HasPrefix(candidate, "impatient"):
			if cycle != "false" || violation != "true" {
				t.Errorf("impatient row %d: cycle=%s violation=%s, want false/true", r, cycle, violation)
			}
		}
	}
}

func TestE8ShapePaletteFills(t *testing.T) {
	tb := E8PaletteTightness(Options{Quick: true})
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	wantMax := map[string]int{"3": 2, "4": 3, "5": 4}
	for r := range tb.Rows {
		n := cell(t, tb, r, "cycle C_n")
		got := atoi(t, cell(t, tb, r, "max reachable color"))
		if got != wantMax[n] {
			t.Errorf("C%s: max reachable color %d, want %d", n, got, wantMax[n])
		}
		if cell(t, tb, r, "violations") != "0" {
			t.Errorf("C%s: safety violations", n)
		}
	}
}

func TestE9ShapePaletteHolds(t *testing.T) {
	tb := E9GeneralGraphs(Options{Quick: true})
	for r := range tb.Rows {
		if cell(t, tb, r, "proper") != "true" || cell(t, tb, r, "palette ok") != "true" {
			t.Errorf("row %d: correctness flags false", r)
		}
		delta := atoi(t, cell(t, tb, r, "Δ"))
		maxSum := atoi(t, cell(t, tb, r, "max a+b seen"))
		if maxSum > delta {
			t.Errorf("row %d: pair sum %d exceeds Δ=%d", r, maxSum, delta)
		}
	}
}

func TestE10ShapeBaselineLogStar(t *testing.T) {
	tb := E10SyncBaseline(Options{Quick: true})
	for r := range tb.Rows {
		rounds := atoi(t, cell(t, tb, r, "CV rounds (3 colors)"))
		logstar := atoi(t, cell(t, tb, r, "log* n"))
		if rounds > logstar+8 {
			t.Errorf("row %d: %d CV rounds too many for log*=%d", r, rounds, logstar)
		}
		if cell(t, tb, r, "proper") != "true" {
			t.Errorf("row %d: improper 3-coloring", r)
		}
	}
}

func TestE11ShapeNamesBounded(t *testing.T) {
	tb := E11Renaming(Options{Quick: true})
	for r := range tb.Rows {
		bound := atoi(t, cell(t, tb, r, "name bound 2n−2"))
		seen := atoi(t, cell(t, tb, r, "max name seen"))
		if seen > bound {
			t.Errorf("row %d: name %d exceeds 2n−2=%d", r, seen, bound)
		}
		if cell(t, tb, r, "all unique") != "true" {
			t.Errorf("row %d: duplicate names", r)
		}
	}
}

func TestE12ShapeZeroViolations(t *testing.T) {
	tb := E12IdentifierInvariant(Options{Quick: true})
	for r := range tb.Rows {
		if cell(t, tb, r, "violations") != "0" {
			t.Errorf("row %d: Lemma 4.5 violations", r)
		}
		if atoi(t, cell(t, tb, r, "steps checked")) == 0 {
			t.Errorf("row %d: nothing checked", r)
		}
	}
}

func TestE13ShapeConcurrentClean(t *testing.T) {
	tb := E13Concurrent(Options{Quick: true})
	for r := range tb.Rows {
		if cell(t, tb, r, "survivors done") != "true" || cell(t, tb, r, "proper") != "true" {
			t.Errorf("row %d: concurrent run failed checks", r)
		}
	}
}

func TestF1ShapeFinding(t *testing.T) {
	tb := F1Livelock(Options{Quick: true})
	for r := range tb.Rows {
		alg := tb.Rows[r][0]
		mode := cell(t, tb, r, "mode")
		found := cell(t, tb, r, "livelock cycle found")
		switch {
		case mode == "interleaved" && found != "false":
			t.Errorf("row %d: %s livelocks under interleaved semantics", r, alg)
		case mode == "simultaneous" && alg == "pair" && found != "false":
			t.Errorf("row %d: Algorithm 1 should be immune", r)
		case mode == "simultaneous" && (alg == "five" || alg == "fast") && found != "true":
			t.Errorf("row %d: finding F1 regression for %s", r, alg)
		}
	}
}
