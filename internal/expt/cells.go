package expt

import (
	"fmt"
	"runtime"

	"asynccycle/internal/metrics"
	"asynccycle/internal/par"
	"asynccycle/internal/runctl"
	"asynccycle/internal/schedule"
)

// The experiment runners fan their sweeps out as *cells*: one cell is one
// independent unit of work (typically one engine run or one model-check),
// enumerated up front with explicit coordinates and dispatched through
// par.Map. Determinism rests on two legs:
//
//   - every cell derives its random seeds from its own coordinates via
//     cellSeed, never from shared mutable state, so a cell computes the
//     same result no matter which worker runs it or in which order;
//   - par.Map returns results indexed by input position, and the runners
//     merge them serially in enumeration order.
//
// Together these make every Table byte-identical across parallelism levels
// (asserted by TestParallelSerialEquivalence).

// mapCells is the run-controlled fan-out every runner uses: par.MapCtx
// over the sweep cells, publishing CellsTotal/CellsDone and per-worker
// utilization into o.Metrics (when set) and marking tb Partial when the
// context stopped the pool before every cell ran. It returns the results
// (input order, as always) plus the done mask; merge loops must skip cells
// whose done entry is false — their result slot is the zero value.
//
// With a nil o.Context this degenerates to exactly par.Map's behavior, so
// un-budgeted tables stay byte-identical at every parallelism level.
func mapCells[T, R any](o Options, tb *Table, cells []T, f func(i int, c T) R) ([]R, []bool) {
	work := f
	var ws *metrics.WorkerStats
	if o.Metrics != nil {
		o.Metrics.CellsTotal.Add(int64(len(cells)))
		nw := o.workers()
		if nw <= 0 {
			nw = runtime.GOMAXPROCS(0)
		}
		if nw > len(cells) {
			nw = len(cells)
		}
		if ws = o.Metrics.Workers(); ws.N() != nw {
			ws = o.Metrics.SetWorkers(nw)
		}
		work = func(i int, c T) R {
			r := f(i, c)
			o.Metrics.CellsDone.Inc()
			return r
		}
	}
	out, done := par.MapCtx(o.Context, o.workers(), cells, ws, work)
	if skipped := len(cells) - countDone(done); skipped > 0 {
		tb.MarkPartial(runctl.Reason(o.Context), skipped, len(cells))
	}
	return out, done
}

func countDone(done []bool) int {
	n := 0
	for _, d := range done {
		if d {
			n++
		}
	}
	return n
}

// rowComplete reports whether every cell in done[from:to) ran — merge
// loops use it to decide whether a table row's aggregate is trustworthy.
func rowComplete(done []bool, from, to int) bool {
	for i := from; i < to && i < len(done); i++ {
		if !done[i] {
			return false
		}
	}
	return true
}

// cellSeed derives a deterministic non-zero seed from the experiment ID
// and the cell coordinates (FNV-1a over their %v renderings). It replaces
// the old pattern of passing one shared Options seed everywhere, whose
// effective values depended on sweep execution order.
func cellSeed(base int64, parts ...any) int64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h = (h ^ uint64(s[i])) * prime64
		}
	}
	mix(fmt.Sprintf("%d", base))
	for _, p := range parts {
		mix("|")
		mix(fmt.Sprintf("%v", p))
	}
	seed := int64(h >> 1) // non-negative
	if seed == 0 {
		seed = 1
	}
	return seed
}

// schedSpec describes a scheduler by name plus a factory, so cells can
// construct private instances (stateful schedulers cannot be shared) from
// coordinate-derived seeds while merges and notes refer to the stable name.
type schedSpec struct {
	name string
	mk   func(seed int64) schedule.Scheduler
}

// schedSpecs is the standard sweep battery, mirroring the schedulers the
// suite has always used (the names match each scheduler's Name()).
func schedSpecs() []schedSpec {
	return []schedSpec{
		{"synchronous", func(int64) schedule.Scheduler { return schedule.Synchronous{} }},
		{"round-robin(1)", func(int64) schedule.Scheduler { return schedule.NewRoundRobin(1) }},
		{"round-robin(3)", func(int64) schedule.Scheduler { return schedule.NewRoundRobin(3) }},
		{"random-subset(p=0.30)", func(s int64) schedule.Scheduler { return schedule.NewRandomSubset(0.3, s) }},
		{"random-one", func(s int64) schedule.Scheduler { return schedule.NewRandomOne(s + 1) }},
		{"alternating", func(int64) schedule.Scheduler { return schedule.Alternating{} }},
		{"burst(4)", func(int64) schedule.Scheduler { return schedule.NewBurst(4) }},
	}
}

// parallelSchedSpecs is the reduced battery for very large instances,
// where sequential schedulers cost Θ(n) steps per sweep of the ring.
func parallelSchedSpecs() []schedSpec {
	return []schedSpec{
		{"synchronous", func(int64) schedule.Scheduler { return schedule.Synchronous{} }},
		{"random-subset(p=0.50)", func(s int64) schedule.Scheduler { return schedule.NewRandomSubset(0.5, s) }},
		{"alternating", func(int64) schedule.Scheduler { return schedule.Alternating{} }},
	}
}
