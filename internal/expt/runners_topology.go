package expt

import (
	"fmt"

	"asynccycle/internal/ids"
	"asynccycle/internal/model"
	"asynccycle/internal/protocol"
	"asynccycle/internal/sim"
)

// E22DeltaPlusOne validates the general-graph (Δ+1)-coloring protocol
// (dp1) beyond the cycle, in two legs:
//
//   - an engine sweep over random Δ-bounded graphs (or the -topology
//     override) under the full scheduler battery with adversarial crashes,
//     measuring the largest color actually emitted against the Δ+1
//     palette bound and the proper-coloring verdict;
//   - exhaustive interleaved model-checker certificates at small n on the
//     complete graph, the path, and the cycle — every schedule, every
//     reachable configuration, zero violations, no livelock.
//
// The simultaneous-lockstep livelock (the F1 direction: (Δ+1)-coloring
// K_n is perfect renaming, so no wait-free solution exists) is pinned by
// the dp1 package tests; this table records the safety side.
func E22DeltaPlusOne(o Options) *Table {
	t := &Table{
		ID:      "E22",
		Title:   "(Δ+1)-coloring beyond the cycle: palette bound sweep + exhaustive certificates",
		Columns: []string{"graph", "Δ", "method", "coverage", "max color", "palette {0..Δ}", "violations"},
	}

	// Leg 1: engine sweep. One combo = one row aggregated over the
	// scheduler battery; each cell is a single crash-prone run.
	specs := []string{"random:3:1", "random:4:1", "random:4:2", "random:6:1"}
	ns := []int{16, 32}
	if o.Quick {
		specs = []string{"random:3:1", "random:4:1"}
		ns = []int{16}
	}
	if o.Topology != "" {
		specs = []string{o.Topology}
	}
	type combo struct {
		spec string
		n    int
	}
	var combos []combo
	for _, spec := range specs {
		for _, n := range ns {
			combos = append(combos, combo{spec, n})
		}
	}
	battery := schedSpecs()
	type cell struct {
		c  combo
		sp schedSpec
	}
	var cells []cell
	for _, c := range combos {
		for _, sp := range battery {
			cells = append(cells, cell{c, sp})
		}
	}
	type runResult struct {
		graph    string
		maxDeg   int
		maxColor int
		failed   []string
		err      string
	}
	results, done := mapCells(o, t, cells, func(_ int, c cell) runResult {
		d, err := protocol.Lookup("dp1")
		if err == nil {
			d, err = protocol.WithTopology(d, c.c.spec)
		}
		if err != nil {
			return runResult{err: fmt.Sprintf("%s: %v", c.c.spec, err)}
		}
		n := c.c.n
		if d.FixN != nil {
			n = d.FixN(n)
		}
		g, err := d.Topology(n)
		if err != nil {
			return runResult{err: fmt.Sprintf("%s n=%d: %v", c.c.spec, n, err)}
		}
		seed := cellSeed(o.seed(), "E22", c.c.spec, n, c.sp.name)
		xs := ids.MustGenerate(ids.Random, n, seed)
		// The adversarial crash plan mirrors the colorcycle CLI: ~20% of
		// the processes freeze after a few of their own rounds.
		crashes := map[int]int{}
		for i := 0; i < n/5; i++ {
			crashes[(i*7919+int(seed))%n] = i % 5
		}
		res, _, err := d.Run(xs, protocol.RunOptions{
			Scheduler: c.sp.mk(seed),
			Crashes:   crashes,
			MaxSteps:  1000*n + 100_000,
		})
		if err != nil {
			return runResult{err: fmt.Sprintf("%s n=%d %s: %v", c.c.spec, n, c.sp.name, err)}
		}
		r := runResult{graph: g.Name(), maxDeg: g.MaxDegree(), maxColor: -1}
		for i, out := range res.Outputs {
			if res.Done[i] && out > r.maxColor {
				r.maxColor = out
			}
		}
		for _, chk := range d.Checks(g) {
			if err := chk.Check(res); err != nil {
				r.failed = append(r.failed, fmt.Sprintf("%s: %v", chk.Name, err))
			}
		}
		return r
	})
	for ci, c := range combos {
		from, to := ci*len(battery), (ci+1)*len(battery)
		if !rowComplete(done, from, to) {
			continue
		}
		agg := runResult{maxColor: -1}
		violations := 0
		for i := from; i < to; i++ {
			r := results[i]
			if r.err != "" {
				t.AddNote("%s", r.err)
				continue
			}
			agg.graph, agg.maxDeg = r.graph, r.maxDeg
			if r.maxColor > agg.maxColor {
				agg.maxColor = r.maxColor
			}
			violations += len(r.failed)
			for _, f := range r.failed {
				t.AddNote("%s %s: %s", r.graph, c.spec, f)
			}
		}
		if agg.graph == "" {
			continue
		}
		palette := "within"
		if agg.maxColor > agg.maxDeg {
			palette = fmt.Sprintf("EXCEEDED (%d > %d)", agg.maxColor, agg.maxDeg)
		}
		t.AddRow(agg.graph, agg.maxDeg, "engine sweep",
			fmt.Sprintf("%d schedules, crash-prone", len(battery)),
			agg.maxColor, palette, violations)
	}

	// Leg 2: exhaustive certificates. Each cell is one full interleaved
	// exploration through the descriptor's Check surface.
	type checkCell struct {
		spec string
		n    int
	}
	checks := []checkCell{{"complete", 3}, {"complete", 4}, {"path", 4}, {"", 4}}
	if !o.Quick {
		checks = append(checks, checkCell{"path", 5})
	}
	type checkResult struct {
		graph string
		deg   int
		rep   model.Report
		err   string
	}
	creps, cdone := mapCells(o, t, checks, func(_ int, c checkCell) checkResult {
		d, err := protocol.Lookup("dp1")
		if err == nil {
			d, err = protocol.WithTopology(d, c.spec)
		}
		if err != nil {
			return checkResult{err: fmt.Sprintf("%q: %v", c.spec, err)}
		}
		g, err := d.Topology(c.n)
		if err != nil {
			return checkResult{err: fmt.Sprintf("%q n=%d: %v", c.spec, c.n, err)}
		}
		xs := ids.MustGenerate(ids.Increasing, c.n, 0)
		// Depth 512 covers the deepest acyclic paths (258 on C4), keeping
		// every certificate exhaustive rather than truncated.
		rep, err := d.Check(xs, sim.ModeInterleaved, model.Options{MaxDepth: 512})
		if err != nil {
			return checkResult{err: fmt.Sprintf("%q n=%d: %v", c.spec, c.n, err)}
		}
		return checkResult{graph: g.Name(), deg: g.MaxDegree(), rep: rep}
	})
	for i := range checks {
		if !cdone[i] {
			continue
		}
		r := creps[i]
		if r.err != "" {
			t.AddNote("%s", r.err)
			continue
		}
		coverage := fmt.Sprintf("%d states (exhaustive)", r.rep.States)
		if r.rep.Truncated {
			coverage = fmt.Sprintf("%d states (TRUNCATED)", r.rep.States)
		}
		if r.rep.CycleFound {
			t.AddNote("%s: unexpected interleaved livelock", r.graph)
		}
		t.AddRow(r.graph, r.deg, "model check", coverage, "—", "invariant at every state", len(r.rep.Violations))
	}

	t.AddNote("palette bound: every emitted color lies in {0..Δ} — Δ+1 colors on a Δ-bounded graph (arXiv:2408.10971 direction)")
	t.AddNote("certificates check the (Δ+1) validity invariant at every reachable configuration under every interleaved schedule and crash pattern")
	t.AddNote("wait-freedom does NOT generalize: (Δ+1)-coloring K_n is perfect renaming, and simultaneous lockstep livelocks (descriptor Expectation; F1)")
	return t
}
