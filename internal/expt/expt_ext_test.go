package expt

import (
	"strconv"
	"testing"
)

func TestE14ShapeThreeColors(t *testing.T) {
	tb := E14Decoupled(Options{Quick: true})
	if len(tb.Rows) == 0 {
		t.Fatal("empty table")
	}
	for r := range tb.Rows {
		if cell(t, tb, r, "survivors colored") != "true" || cell(t, tb, r, "proper") != "true" {
			t.Errorf("row %d: correctness flags false", r)
		}
		colors := atoi(t, cell(t, tb, r, "colors used"))
		if colors > 3 {
			t.Errorf("row %d: %d colors used; DECOUPLED should need ≤ 3", r, colors)
		}
	}
}

func TestE15ShapeDichotomy(t *testing.T) {
	tb := E15SSBReduction(Options{Quick: true})
	for r := range tb.Rows {
		waitFree := cell(t, tb, r, "wait-free") == "true"
		ssbOK := cell(t, tb, r, "SSB conditions hold") == "true"
		if waitFree && ssbOK {
			t.Errorf("row %d (%s): wait-free AND SSB-correct — would contradict Attiya–Paz",
				r, tb.Rows[r][0])
		}
		if !waitFree && !ssbOK {
			t.Errorf("row %d (%s): expected exactly one failure mode", r, tb.Rows[r][0])
		}
	}
}

func TestE16ShapeProgressHierarchy(t *testing.T) {
	tb := E16ProgressClasses(Options{Quick: true})
	want := map[string][3]string{
		"reduction component only": {"false", "false", "true"},
		"full Algorithm 3":         {"true", "true", "true"},
		"greedy MIS":               {"false", "false", "true"},
	}
	for r := range tb.Rows {
		label := tb.Rows[r][0]
		w, ok := want[label]
		if !ok {
			t.Errorf("unexpected row %q", label)
			continue
		}
		got := [3]string{
			cell(t, tb, r, "wait-free"),
			cell(t, tb, r, "obstruction-free"),
			cell(t, tb, r, "starvation-free"),
		}
		if got != w {
			t.Errorf("%s: classes %v, want %v", label, got, w)
		}
	}
}

func TestE17ShapeAblations(t *testing.T) {
	tb := E17Ablations(Options{Quick: true})
	lemma := map[string]string{}
	acts := map[string]int{}
	for r := range tb.Rows {
		label := tb.Rows[r][0]
		lemma[label] = cell(t, tb, r, "Lemma 4.5 holds")
		if s := cell(t, tb, r, "max acts (n=512, sequential)"); s != "-" {
			v, err := strconv.Atoi(s)
			if err != nil {
				t.Fatalf("%s: bad acts %q", label, s)
			}
			acts[label] = v
		}
		if cell(t, tb, r, "proper coloring") != "true" {
			t.Errorf("%s: coloring safety must survive every ablation", label)
		}
	}
	if lemma["full Algorithm 3"] != "true" || lemma["no-evade"] != "true" || lemma["eager-inf"] != "true" {
		t.Errorf("Lemma 4.5 verdicts wrong for safe variants: %v", lemma)
	}
	if lemma["no-green-light"] != "false" {
		t.Error("no-green-light should violate Lemma 4.5")
	}
	if lemma["eager-evade"] != "false" {
		t.Error("eager-evade should violate Lemma 4.5")
	}
	if acts["eager-inf"] < 10*acts["full Algorithm 3"] {
		t.Errorf("eager-inf should degenerate: %d vs %d", acts["eager-inf"], acts["full Algorithm 3"])
	}
}

func TestE18ShapeSymmetryAgreement(t *testing.T) {
	tb := E18SymmetrySweep(Options{Quick: true})
	if tb.Partial {
		t.Fatalf("quick E18 marked partial:\n%s", tb)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("quick E18 has %d rows, want 3 (off/assignments/full on C4):\n%s", len(tb.Rows), tb)
	}
	for r := range tb.Rows {
		if got := cell(t, tb, r, "matches off"); got == "NO" {
			t.Errorf("row %d (%s): reduced sweep disagrees with unreduced:\n%s", r, cell(t, tb, r, "symmetry"), tb)
		}
		if got := cell(t, tb, r, "all ok"); got != "true" {
			t.Errorf("row %d: sweep not clean:\n%s", r, tb)
		}
	}
	if off, red := cell(t, tb, 0, "runs"), cell(t, tb, 1, "runs"); off != "24" || red != "3" {
		t.Errorf("C4 runs: off %s (want 24), assignments %s (want 3 = 4!/(2·4))", off, red)
	}
	if a, b := cell(t, tb, 0, "states (weighted)"), cell(t, tb, 1, "states (weighted)"); a != b {
		t.Errorf("weighted states differ between off (%s) and assignments (%s)", a, b)
	}
}

// TestE20ShapeWithinBounds: every protocol at every size terminates within
// its registered wait-freedom bound on the big engine, every cell survives
// safety checking (a violation would surface as a note and a missing row),
// and the fast protocol's measured rounds stay flat while n grows 10×.
func TestE20ShapeWithinBounds(t *testing.T) {
	tb := E20RoundCurves(Options{Quick: true})
	if tb.Partial {
		t.Fatalf("quick E20 marked partial:\n%s", tb)
	}
	if want := 3 * 2 * 2; len(tb.Rows) != want {
		t.Fatalf("quick E20 has %d rows, want %d (3 protocols × 2 sizes × 2 schedulers):\n%s", len(tb.Rows), want, tb)
	}
	fastMax := 0
	for r := range tb.Rows {
		maxRounds := atoi(t, cell(t, tb, r, "max rounds"))
		bound := atoi(t, cell(t, tb, r, "bound"))
		if maxRounds > bound {
			t.Errorf("row %d (%s n=%s %s): max rounds %d exceeds bound %d", r,
				cell(t, tb, r, "protocol"), cell(t, tb, r, "n"), cell(t, tb, r, "scheduler"), maxRounds, bound)
		}
		if cell(t, tb, r, "protocol") == "fast" && maxRounds > fastMax {
			fastMax = maxRounds
		}
	}
	// Θ(log* n): at n = 10⁴ the fast protocol is still an order of
	// magnitude under its ⌈8(log* n + 4)⌉ = 64-round ceiling.
	if fastMax == 0 || fastMax > 32 {
		t.Errorf("fast max rounds = %d, want within (0, 32]", fastMax)
	}
}
