package expt

// E23 and E24 certify the two contract-first protocol families — the
// proof that the pluggable contract layer carries correctness shapes
// beyond terminating cycle coloring (DESIGN.md §15):
//
//   - E23: wait-free approximate agreement on a value graph (Alistarh–
//     Ellen–Rybicki, arXiv:2103.08949), exhaustively certified over every
//     input vector, every interleaved schedule, and both activation
//     semantics at small n, with the ⌈log₂(m−1)⌉ round bound shown tight.
//   - E24: self-stabilizing 3-coloring of the unidirectional cycle
//     (Bernard–Devismes–Potop-Butucaru–Tixeuil, arXiv:0805.0851),
//     closure + convergence certified from ALL K^n initial states, plus
//     the anonymous-rule negative control whose fair livelock motivates
//     the root's +2 increment.

import (
	"fmt"

	"asynccycle/internal/agree"
	"asynccycle/internal/graph"
	"asynccycle/internal/model"
	"asynccycle/internal/protocol"
	"asynccycle/internal/sim"
	"asynccycle/internal/ssuni"
)

// allInputVectors enumerates [0,m)^n in lexicographic order.
func allInputVectors(m, n int) [][]int {
	total := 1
	for i := 0; i < n; i++ {
		total *= m
	}
	out := make([][]int, 0, total)
	xs := make([]int, n)
	for {
		out = append(out, append([]int(nil), xs...))
		i := 0
		for ; i < n; i++ {
			xs[i]++
			if xs[i] < m {
				break
			}
			xs[i] = 0
		}
		if i == n {
			return out
		}
	}
}

// E23ApproxAgreement certifies the approximate-agreement family: for each
// registered value graph and instance size, every input vector is model-
// checked exhaustively (every interleaved schedule and crash pattern),
// the contract's edge-agreement and range properties hold at every
// terminal configuration, and the exact worst-case round count matches
// the descriptor's ⌈log₂(m−1)⌉₊ bound — wait-freedom, exactly tight.
func E23ApproxAgreement(o Options) *Table {
	t := &Table{
		ID:      "E23",
		Title:   "approximate agreement on value graphs: exhaustive certificates + tight round bound",
		Columns: []string{"protocol", "value graph", "contract", "n", "inputs", "states", "worst rounds", "bound", "violations"},
	}

	type cell struct {
		alg string
		m   int
		n   int
	}
	cells := []cell{
		{"agree-p3", 3, 2}, {"agree-p3", 3, 3},
		{"agree-p4", 4, 2},
		{"agree-c4", 4, 2},
	}
	if !o.Quick {
		cells = append(cells, cell{"agree-p4", 4, 3})
	}

	type result struct {
		hname      string
		contract   string
		inputs     int
		states     int64
		worst      int
		bound      int
		violations int
		err        string
	}
	results, done := mapCells(o, t, cells, func(_ int, c cell) result {
		d, err := protocol.Lookup(c.alg)
		if err != nil {
			return result{err: fmt.Sprintf("%s: %v", c.alg, err)}
		}
		h := agree.Path(c.m)
		if c.alg == "agree-c4" {
			h = agree.CycleGraph(c.m)
		}
		r := result{hname: h.Name(), contract: d.ContractLabel(), bound: d.Bound(c.n), worst: -1}
		for _, xs := range allInputVectors(c.m, c.n) {
			rep, err := d.Check(xs, sim.ModeInterleaved, model.Options{})
			if err != nil {
				return result{err: fmt.Sprintf("%s %v: %v", c.alg, xs, err)}
			}
			r.inputs++
			r.states += int64(rep.States)
			r.violations += len(rep.Violations)
			if rep.Truncated {
				r.violations++ // a truncated certificate is no certificate
			}
			vec, ok, _, err := d.Worst(xs, sim.ModeInterleaved, model.Options{})
			if err != nil {
				return result{err: fmt.Sprintf("%s %v worst: %v", c.alg, xs, err)}
			}
			if ok {
				for _, w := range vec {
					if w > r.worst {
						r.worst = w
					}
				}
			}
		}
		return r
	})
	for i, c := range cells {
		if !done[i] {
			continue
		}
		r := results[i]
		if r.err != "" {
			t.AddNote("%s", r.err)
			continue
		}
		t.AddRow(c.alg, r.hname, r.contract, c.n, r.inputs, r.states, r.worst, r.bound, r.violations)
		if r.worst != r.bound {
			t.AddNote("%s n=%d: worst rounds %d ≠ declared bound %d", c.alg, c.n, r.worst, r.bound)
		}
	}

	t.AddNote("each row aggregates an exhaustive model check per input vector: every interleaved schedule and crash pattern, contract safety at every terminal state")
	t.AddNote("worst rounds = exact fair worst case (model.WorstActivations); equality with the bound column shows ⌈log₂(m−1)⌉₊ is tight")
	t.AddNote("agree-c4 is the 2-process one-shot meet protocol: ≥ 3 processes on a cycle is the AER impossibility, so no n=3 row exists")
	return t
}

// E24SelfStabilization certifies the self-stabilizing coloring contract:
// closure + convergence from every one of the 3^n initial configurations
// of the rooted rule (the ss-coloring contract's guarantee), and the
// anonymous uniform rule as a negative control — its conflict wave
// circulates C4 forever under a fair schedule, which the convergence
// analysis must detect as a livelock.
func E24SelfStabilization(o Options) *Table {
	t := &Table{
		ID:      "E24",
		Title:   "self-stabilizing 3-coloring: closure + convergence from all initial states",
		Columns: []string{"rule", "graph", "contract", "initial states", "states", "livelocks", "violations", "verdict"},
	}

	ns := []int{3, 4, 5}
	if o.Quick {
		ns = []int{3, 4}
	}

	type cell struct {
		n    int
		anon bool
	}
	var cells []cell
	for _, n := range ns {
		cells = append(cells, cell{n: n})
	}
	cells = append(cells, cell{n: 4, anon: true})

	type result struct {
		contract   string
		assigns    int64
		states     int64
		livelocks  int64
		violations int64
		allOK      bool
		err        string
	}
	results, done := mapCells(o, t, cells, func(_ int, c cell) result {
		if c.anon {
			// Negative control: the uniform +1 rule on C4 from the known
			// livelocking configuration (2,0,1,2).
			colors := []int{2, 0, 1, 2}
			g, err := graph.Cycle(len(colors))
			if err != nil {
				return result{err: err.Error()}
			}
			e, err := sim.NewEngine(g, ssuni.NewAnonymousNodes(colors))
			if err != nil {
				return result{err: err.Error()}
			}
			if err := e.SeedRegisters(ssuni.Colors(colors)); err != nil {
				return result{err: err.Error()}
			}
			e.SetRecordValues(true)
			sr := model.CheckStabilization(e, model.Options{SingletonsOnly: true}, ssuni.Legal)
			r := result{contract: "—", assigns: 1, states: int64(sr.Explore.States), allOK: sr.OK()}
			if sr.LivelockWitness != "" {
				r.livelocks = 1
			}
			r.violations = int64(len(sr.Explore.Violations) + len(sr.ClosureViolations))
			return r
		}
		d, err := protocol.Lookup("ssuni")
		if err != nil {
			return result{err: err.Error()}
		}
		rep, err := d.Sweep(c.n, sim.ModeInterleaved, model.Options{SingletonsOnly: true})
		if err != nil {
			return result{err: fmt.Sprintf("ssuni n=%d: %v", c.n, err)}
		}
		return result{
			contract:   d.ContractLabel(),
			assigns:    int64(rep.Assignments),
			states:     rep.States,
			livelocks:  rep.CycleRuns,
			violations: rep.Violations,
			allOK:      rep.AllOk && !rep.Partial,
		}
	})
	for i, c := range cells {
		if !done[i] {
			continue
		}
		r := results[i]
		if r.err != "" {
			t.AddNote("%s", r.err)
			continue
		}
		rule, verdict := "rooted (+2 at root)", "STABILIZING"
		if !r.allOK {
			verdict = "NOT STABILIZING"
		}
		if c.anon {
			rule = "anonymous (uniform +1)"
			if r.livelocks > 0 {
				verdict = "LIVELOCK (expected)"
			} else {
				verdict = "no livelock (UNEXPECTED)"
				t.AddNote("anonymous rule on C4 failed to livelock — the negative control lost its teeth")
			}
		}
		t.AddRow(rule, fmt.Sprintf("C%d", c.n), r.contract, r.assigns, r.states, r.livelocks, r.violations, verdict)
	}

	t.AddNote("each rooted row sweeps ALL 3^n initial color vectors: closure (legitimate ⇒ successors legitimate) and convergence (every fair path reaches legitimacy) per vector")
	t.AddNote("legitimate = registers properly 3-color the ring AND no process holds an unpublished recoloring — exactly the fixpoints of the rule")
	t.AddNote("the anonymous row replays the (2,0,1,2) conflict wave on C4: the uniform rule livelocks under a fair schedule, which is why the root increments by 2")
	return t
}
