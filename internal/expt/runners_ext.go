package expt

import (
	"fmt"

	"asynccycle/internal/ablation"
	"asynccycle/internal/check"
	"asynccycle/internal/core"
	"asynccycle/internal/decoupled"
	"asynccycle/internal/graph"
	"asynccycle/internal/ids"
	"asynccycle/internal/mis"
	"asynccycle/internal/model"
	"asynccycle/internal/schedule"
	"asynccycle/internal/sim"
	"asynccycle/internal/ssb"
)

// E14Decoupled reproduces the separation from the DECOUPLED related work
// (§1.4, [13], [18]): the synchronous communication layer makes wake-up
// order common knowledge, so asynchronous crash-prone processes 3-color
// the cycle — two fewer colors than the five that are provably necessary
// in the paper's fully asynchronous state model (Property 2.3).
func E14Decoupled(o Options) *Table {
	t := &Table{
		ID:      "E14",
		Title:   "DECOUPLED separation (§1.4): 3 colors suffice with a synchronous layer, vs 5 without",
		Columns: []string{"n", "scheduler", "initial crashes", "survivors colored", "colors used", "comm rounds", "proper"},
	}
	sizes := []int{8, 32, 128}
	if !o.Quick {
		sizes = append(sizes, 512)
	}
	for _, n := range sizes {
		g := graph.MustCycle(n)
		xs := ids.MustGenerate(ids.Random, n, o.seed())
		scheds := []schedule.Scheduler{
			schedule.Synchronous{},
			schedule.NewRandomSubset(0.4, o.seed()),
			schedule.NewRoundRobin(1),
		}
		for _, s := range scheds {
			e, err := decoupled.NewEngine(g, decoupled.NewThreeColorNodes(xs))
			if err != nil {
				t.AddNote("n=%d: %v", n, err)
				continue
			}
			crashes := 0
			for i := 0; i < n; i += 5 {
				e.CrashAfter(i, 0) // never wakes
				crashes++
			}
			res, err := e.Run(s, 1000*n+10_000)
			if err != nil {
				t.AddNote("n=%d %s: %v", n, s.Name(), err)
				continue
			}
			used := map[int]bool{}
			proper := true
			allSurvivors := true
			for i := 0; i < n; i++ {
				if res.Crashed[i] {
					continue
				}
				if !res.Done[i] {
					allSurvivors = false
					continue
				}
				used[res.Outputs[i]] = true
				j := (i + 1) % n
				if res.Done[j] && res.Outputs[i] == res.Outputs[j] {
					proper = false
				}
			}
			t.AddRow(n, s.Name(), crashes, allSurvivors, len(used), res.CommRounds, proper)
		}
	}
	t.AddNote("paper §1.4: DECOUPLED is strictly stronger — 3-coloring C3 is trivial there, impossible in the state model")
	t.AddNote("mid-protocol crash tolerance at 3 colors is the contribution of [13] and out of scope; initial crashes and committed crashes are handled")
	return t
}

// E15SSBReduction reproduces the construction inside Property 2.1's proof:
// a wait-free MIS algorithm on C_n would yield a wait-free strong
// symmetry-breaking algorithm on n shared-memory processes, contradicting
// Attiya & Paz. Each MIS candidate is wrapped onto K_n (our engine's
// shared-memory model) and model-checked against the SSB conditions.
func E15SSBReduction(o Options) *Table {
	t := &Table{
		ID:      "E15",
		Title:   "Property 2.1 reduction: MIS candidates wrapped as shared-memory SSB algorithms",
		Columns: []string{"candidate", "K_n", "states", "wait-free", "SSB conditions hold"},
	}
	sizes := []int{3, 4}
	for _, n := range sizes {
		gK, err := graph.Complete(n)
		if err != nil {
			t.AddNote("n=%d: %v", n, err)
			continue
		}
		xs := ids.MustGenerate(ids.Increasing, n, 0)
		inv := func(e *sim.Engine[mis.Val]) error {
			r := e.Result()
			if v := ssb.Check(r.Outputs, r.Done); v != "" {
				return fmt.Errorf("%s", v)
			}
			return nil
		}
		eg, _ := sim.NewEngine(gK, ssb.WrapCycle(mis.NewGreedyNodes(xs)))
		repG := model.Explore(eg, model.Options{SingletonsOnly: true}, inv)
		t.AddRow("greedy", n, repG.States, !repG.CycleFound, len(repG.Violations) == 0)

		ei, _ := sim.NewEngine(gK, ssb.WrapCycle(mis.NewImpatientNodes(xs, 2)))
		repI := model.Explore(ei, model.Options{SingletonsOnly: true}, inv)
		t.AddRow("impatient(2)", n, repI.States, !repI.CycleFound, len(repI.Violations) == 0)
	}
	t.AddNote("no candidate is simultaneously wait-free and SSB-correct — exactly what the impossibility [6] mandates")
	return t
}

// E16ProgressClasses certifies the paper's §1.3 progress-hierarchy
// discussion on bounded instances: the identifier-reduction component of
// Algorithm 3, run standalone, is starvation-free but neither wait-free
// nor obstruction-free, while the full algorithm (its composition with
// the coloring component) is wait-free — "bootstrapping a wait-free
// algorithm from non-wait-free subcomponents".
func E16ProgressClasses(o Options) *Table {
	t := &Table{
		ID:      "E16",
		Title:   "Progress classes (§1.3): the reduction component alone vs the full Algorithm 3",
		Columns: []string{"algorithm", "wait-free", "obstruction-free", "starvation-free"},
	}
	xs := []int{12, 25, 18} // above the constant-identifier regime
	g := graph.MustCycle(3)
	opt := model.Options{SingletonsOnly: true, MaxStates: 500_000}

	classify := func(label string, mk func() []sim.Node[core.FastVal]) {
		e1, _ := sim.NewEngine(g, mk())
		rep := model.Explore(e1, opt, nil)
		e2, _ := sim.NewEngine(g, mk())
		counter, _ := model.ObstructionFree(e2, opt, 25)
		e3, _ := sim.NewEngine(g, mk())
		fair, _ := model.FairlyTerminates(e3, opt)
		t.AddRow(label, !rep.CycleFound, counter == "", fair == "")
	}
	classify("reduction component only", func() []sim.Node[core.FastVal] {
		return ablation.NewNodes(xs, ablation.ReducerOnly)
	})
	classify("full Algorithm 3", func() []sim.Node[core.FastVal] {
		return core.NewFastNodes(xs)
	})
	// The MIS candidates slot into the same hierarchy.
	eMis, _ := sim.NewEngine(g, mis.NewGreedyNodes(xs))
	repMis := model.Explore(eMis, opt, nil)
	eMis2, _ := sim.NewEngine(g, mis.NewGreedyNodes(xs))
	counterMis, _ := model.ObstructionFree(eMis2, opt, 25)
	eMis3, _ := sim.NewEngine(g, mis.NewGreedyNodes(xs))
	fairMis, _ := model.FairlyTerminates(eMis3, opt)
	t.AddRow("greedy MIS", !repMis.CycleFound, counterMis == "", fairMis == "")

	t.AddNote("paper §1.3: the second component is not wait-free by itself but offers starvation-free progress;")
	t.AddNote("the composition is wait-free — of independent interest. All three cells verified exhaustively on C3.")
	return t
}

// E17Ablations removes each mechanism of Algorithm 3 in turn and records
// what breaks: the green-light handshake guards Lemma 4.5; full
// neighborhood information guards both the invariant (evasion) and the
// O(log* n) bound (extremum freezing); the evasion step is a pure
// accelerator.
func E17Ablations(o Options) *Table {
	t := &Table{
		ID:      "E17",
		Title:   "Ablations: which mechanism of Algorithm 3 guards which property",
		Columns: []string{"variant", "Lemma 4.5 holds", "proper coloring", "max acts (n=512, sequential)"},
	}
	invFor := func(g graph.Graph) model.Invariant[core.FastVal] {
		type xHolder interface{ X() int }
		return func(e *sim.Engine[core.FastVal]) error {
			for _, edge := range g.Edges() {
				p, q := edge[0], edge[1]
				xp := e.NodeState(p).(xHolder).X()
				xq := e.NodeState(q).(xHolder).X()
				if xp == xq {
					return fmt.Errorf("X_%d == X_%d", p, q)
				}
				if rq := e.Register(q); rq.Present && xp == rq.Val.X {
					return fmt.Errorf("X_%d == X̂_%d", p, q)
				}
				if rp := e.Register(p); rp.Present && xq == rp.Val.X {
					return fmt.Errorf("X_%d == X̂_%d", q, p)
				}
			}
			return nil
		}
	}

	// Exhaustive invariant verdicts on a 4-cycle with structured ids, plus
	// a performance probe on a 512-cycle.
	probe := func(label string, mk4 func() []sim.Node[core.FastVal], mk512 func() []sim.Node[core.FastVal]) {
		g4 := graph.MustCycle(4)
		e4, _ := sim.NewEngine(g4, mk4())
		inv := invFor(g4)
		properViolated := false
		combined := func(e *sim.Engine[core.FastVal]) error {
			r := e.Result()
			if err := check.ProperColoring(g4, r); err != nil {
				properViolated = true
				return err
			}
			return inv(e)
		}
		rep := model.Explore(e4, model.Options{SingletonsOnly: true, MaxStates: 1_000_000}, combined)
		lemma45 := len(rep.Violations) == 0

		g512 := graph.MustCycle(512)
		e512, _ := sim.NewEngine(g512, mk512())
		res, err := e512.Run(schedule.NewRoundRobin(1), 1_000_000)
		acts := "-"
		if err == nil {
			acts = fmt.Sprintf("%d", res.MaxActivations())
			if check.ProperColoring(g512, res) != nil {
				properViolated = true
			}
		}
		t.AddRow(label, lemma45, !properViolated, acts)
	}

	// One long monotone run with spread bit patterns: the instance on which
	// the weakened variants' violations are reachable within C4's state
	// space (found by exhaustive search; see ablation tests).
	xs4 := []int{5, 12, 20, 30}
	xs512 := ids.MustGenerate(ids.Increasing, 512, 0)
	probe("full Algorithm 3", func() []sim.Node[core.FastVal] { return core.NewFastNodes(xs4) },
		func() []sim.Node[core.FastVal] { return core.NewFastNodes(xs512) })
	for _, v := range []ablation.Variant{ablation.NoGreenLight, ablation.NoEvade, ablation.EagerEvade, ablation.EagerInf} {
		v := v
		probe(v.String(), func() []sim.Node[core.FastVal] { return ablation.NewNodes(xs4, v) },
			func() []sim.Node[core.FastVal] { return ablation.NewNodes(xs512, v) })
	}
	t.AddNote("no-green-light and eager-evade break Lemma 4.5 (coloring safety is guarded separately and survives);")
	t.AddNote("eager-inf keeps all safety but degenerates to Θ(n); no-evade keeps everything — the evasion is a")
	t.AddNote("constant-factor accelerator for local minima, invisible on this workload")
	return t
}
