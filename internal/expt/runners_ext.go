package expt

import (
	"fmt"

	"asynccycle/internal/ablation"
	"asynccycle/internal/check"
	"asynccycle/internal/core"
	"asynccycle/internal/decoupled"
	"asynccycle/internal/graph"
	"asynccycle/internal/ids"
	"asynccycle/internal/mis"
	"asynccycle/internal/model"
	"asynccycle/internal/schedule"
	"asynccycle/internal/sim"
	"asynccycle/internal/ssb"
)

// E14Decoupled reproduces the separation from the DECOUPLED related work
// (§1.4, [13], [18]): the synchronous communication layer makes wake-up
// order common knowledge, so asynchronous crash-prone processes 3-color
// the cycle — two fewer colors than the five that are provably necessary
// in the paper's fully asynchronous state model (Property 2.3).
func E14Decoupled(o Options) *Table {
	t := &Table{
		ID:      "E14",
		Title:   "DECOUPLED separation (§1.4): 3 colors suffice with a synchronous layer, vs 5 without",
		Columns: []string{"n", "scheduler", "initial crashes", "survivors colored", "colors used", "comm rounds", "proper"},
	}
	sizes := []int{8, 32, 128}
	if !o.Quick {
		sizes = append(sizes, 512)
	}
	specs := []schedSpec{
		{"synchronous", func(int64) schedule.Scheduler { return schedule.Synchronous{} }},
		{"random-subset(p=0.40)", func(s int64) schedule.Scheduler { return schedule.NewRandomSubset(0.4, s) }},
		{"round-robin(1)", func(int64) schedule.Scheduler { return schedule.NewRoundRobin(1) }},
	}
	type cell struct {
		n    int
		spec schedSpec
	}
	type result struct {
		crashes, colors, rounds int
		allSurvivors, proper    bool
		note                    string
	}
	var cells []cell
	for _, n := range sizes {
		for _, sp := range specs {
			cells = append(cells, cell{n: n, spec: sp})
		}
	}
	results, done := mapCells(o, t, cells, func(_ int, c cell) result {
		n := c.n
		g := graph.MustCycle(n)
		xs := ids.MustGenerate(ids.Random, n, cellSeed(o.seed(), "E14", n))
		e, err := decoupled.NewEngine(g, decoupled.NewThreeColorNodes(xs))
		if err != nil {
			return result{note: fmt.Sprintf("n=%d: %v", n, err)}
		}
		r := result{}
		for i := 0; i < n; i += 5 {
			e.CrashAfter(i, 0) // never wakes
			r.crashes++
		}
		seed := cellSeed(o.seed(), "E14", n, c.spec.name)
		res, err := e.Run(c.spec.mk(seed), 1000*n+10_000)
		if err != nil {
			return result{note: fmt.Sprintf("n=%d %s: %v", n, c.spec.name, err)}
		}
		used := map[int]bool{}
		r.proper = true
		r.allSurvivors = true
		for i := 0; i < n; i++ {
			if res.Crashed[i] {
				continue
			}
			if !res.Done[i] {
				r.allSurvivors = false
				continue
			}
			used[res.Outputs[i]] = true
			j := (i + 1) % n
			if res.Done[j] && res.Outputs[i] == res.Outputs[j] {
				r.proper = false
			}
		}
		r.colors = len(used)
		r.rounds = res.CommRounds
		return r
	})
	for i, c := range cells {
		if !done[i] {
			continue
		}
		r := results[i]
		if r.note != "" {
			t.AddNote("%s", r.note)
			continue
		}
		t.AddRow(c.n, c.spec.name, r.crashes, r.allSurvivors, r.colors, r.rounds, r.proper)
	}
	t.AddNote("paper §1.4: DECOUPLED is strictly stronger — 3-coloring C3 is trivial there, impossible in the state model")
	t.AddNote("mid-protocol crash tolerance at 3 colors is the contribution of [13] and out of scope; initial crashes and committed crashes are handled")
	return t
}

// E15SSBReduction reproduces the construction inside Property 2.1's proof:
// a wait-free MIS algorithm on C_n would yield a wait-free strong
// symmetry-breaking algorithm on n shared-memory processes, contradicting
// Attiya & Paz. Each MIS candidate is wrapped onto K_n (our engine's
// shared-memory model) and model-checked against the SSB conditions.
func E15SSBReduction(o Options) *Table {
	t := &Table{
		ID:      "E15",
		Title:   "Property 2.1 reduction: MIS candidates wrapped as shared-memory SSB algorithms",
		Columns: []string{"candidate", "K_n", "states", "wait-free", "SSB conditions hold"},
	}
	sizes := []int{3, 4}
	type cell struct {
		n      int
		greedy bool
	}
	type result struct {
		rep  model.Report
		note string
	}
	var cells []cell
	for _, n := range sizes {
		cells = append(cells, cell{n: n, greedy: true}, cell{n: n})
	}
	results, done := mapCells(o, t, cells, func(_ int, c cell) result {
		gK, err := graph.Complete(c.n)
		if err != nil {
			return result{note: fmt.Sprintf("n=%d: %v", c.n, err)}
		}
		xs := ids.MustGenerate(ids.Increasing, c.n, 0)
		inv := func(e *sim.Engine[mis.Val]) error {
			r := e.Result()
			if v := ssb.Check(r.Outputs, r.Done); v != "" {
				return fmt.Errorf("%s", v)
			}
			return nil
		}
		var nodes []sim.Node[mis.Val]
		if c.greedy {
			nodes = mis.NewGreedyNodes(xs)
		} else {
			nodes = mis.NewImpatientNodes(xs, 2)
		}
		e, _ := sim.NewEngine(gK, ssb.WrapCycle(nodes))
		return result{rep: model.Explore(e, model.Options{SingletonsOnly: true}, inv)}
	})
	for i, c := range cells {
		if !done[i] {
			continue
		}
		r := results[i]
		if r.note != "" {
			t.AddNote("%s", r.note)
			continue
		}
		label := "impatient(2)"
		if c.greedy {
			label = "greedy"
		}
		t.AddRow(label, c.n, r.rep.States, !r.rep.CycleFound, len(r.rep.Violations) == 0)
	}
	t.AddNote("no candidate is simultaneously wait-free and SSB-correct — exactly what the impossibility [6] mandates")
	return t
}

// E16ProgressClasses certifies the paper's §1.3 progress-hierarchy
// discussion on bounded instances: the identifier-reduction component of
// Algorithm 3, run standalone, is starvation-free but neither wait-free
// nor obstruction-free, while the full algorithm (its composition with
// the coloring component) is wait-free — "bootstrapping a wait-free
// algorithm from non-wait-free subcomponents".
func E16ProgressClasses(o Options) *Table {
	t := &Table{
		ID:      "E16",
		Title:   "Progress classes (§1.3): the reduction component alone vs the full Algorithm 3",
		Columns: []string{"algorithm", "wait-free", "obstruction-free", "starvation-free"},
	}
	xs := []int{12, 25, 18} // above the constant-identifier regime
	g := graph.MustCycle(3)
	opt := model.Options{SingletonsOnly: true, MaxStates: 500_000}

	algs := []struct {
		label string
		mk    func() []sim.Node[core.FastVal]
	}{
		{"reduction component only", func() []sim.Node[core.FastVal] { return ablation.NewNodes(xs, ablation.ReducerOnly) }},
		{"full Algorithm 3", func() []sim.Node[core.FastVal] { return core.NewFastNodes(xs) }},
	}
	type cell struct {
		alg   int    // index into algs, or -1 for greedy MIS
		check string // "explore" | "obstruction" | "fair"
	}
	checks := []string{"explore", "obstruction", "fair"}
	var cells []cell
	for ai := range algs {
		for _, ck := range checks {
			cells = append(cells, cell{alg: ai, check: ck})
		}
	}
	for _, ck := range checks {
		cells = append(cells, cell{alg: -1, check: ck})
	}
	results, done := mapCells(o, t, cells, func(_ int, c cell) bool {
		if c.alg >= 0 {
			e, _ := sim.NewEngine(g, algs[c.alg].mk())
			switch c.check {
			case "explore":
				return !model.Explore(e, opt, nil).CycleFound
			case "obstruction":
				counter, _ := model.ObstructionFree(e, opt, 25)
				return counter == ""
			default:
				fair, _ := model.FairlyTerminates(e, opt)
				return fair == ""
			}
		}
		e, _ := sim.NewEngine(g, mis.NewGreedyNodes(xs))
		switch c.check {
		case "explore":
			return !model.Explore(e, opt, nil).CycleFound
		case "obstruction":
			counter, _ := model.ObstructionFree(e, opt, 25)
			return counter == ""
		default:
			fair, _ := model.FairlyTerminates(e, opt)
			return fair == ""
		}
	})
	for i := 0; i < len(cells); i += len(checks) {
		if !rowComplete(done, i, i+len(checks)) {
			continue
		}
		label := "greedy MIS"
		if cells[i].alg >= 0 {
			label = algs[cells[i].alg].label
		}
		t.AddRow(label, results[i], results[i+1], results[i+2])
	}
	t.AddNote("paper §1.3: the second component is not wait-free by itself but offers starvation-free progress;")
	t.AddNote("the composition is wait-free — of independent interest. All three cells verified exhaustively on C3.")
	return t
}

// E17Ablations removes each mechanism of Algorithm 3 in turn and records
// what breaks: the green-light handshake guards Lemma 4.5; full
// neighborhood information guards both the invariant (evasion) and the
// O(log* n) bound (extremum freezing); the evasion step is a pure
// accelerator.
func E17Ablations(o Options) *Table {
	t := &Table{
		ID:      "E17",
		Title:   "Ablations: which mechanism of Algorithm 3 guards which property",
		Columns: []string{"variant", "Lemma 4.5 holds", "proper coloring", "max acts (n=512, sequential)"},
	}
	invFor := func(g graph.Graph) model.Invariant[core.FastVal] {
		type xHolder interface{ X() int }
		return func(e *sim.Engine[core.FastVal]) error {
			for _, edge := range g.Edges() {
				p, q := edge[0], edge[1]
				xp := e.NodeState(p).(xHolder).X()
				xq := e.NodeState(q).(xHolder).X()
				if xp == xq {
					return fmt.Errorf("X_%d == X_%d", p, q)
				}
				if rq := e.Register(q); rq.Present && xp == rq.Val.X {
					return fmt.Errorf("X_%d == X̂_%d", p, q)
				}
				if rp := e.Register(p); rp.Present && xq == rp.Val.X {
					return fmt.Errorf("X_%d == X̂_%d", q, p)
				}
			}
			return nil
		}
	}

	// One long monotone run with spread bit patterns: the instance on which
	// the weakened variants' violations are reachable within C4's state
	// space (found by exhaustive search; see ablation tests).
	xs4 := []int{5, 12, 20, 30}
	xs512 := ids.MustGenerate(ids.Increasing, 512, 0)

	type variant struct {
		label      string
		mk4, mk512 func() []sim.Node[core.FastVal]
	}
	variants := []variant{{
		label: "full Algorithm 3",
		mk4:   func() []sim.Node[core.FastVal] { return core.NewFastNodes(xs4) },
		mk512: func() []sim.Node[core.FastVal] { return core.NewFastNodes(xs512) },
	}}
	for _, v := range []ablation.Variant{ablation.NoGreenLight, ablation.NoEvade, ablation.EagerEvade, ablation.EagerInf} {
		v := v
		variants = append(variants, variant{
			label: v.String(),
			mk4:   func() []sim.Node[core.FastVal] { return ablation.NewNodes(xs4, v) },
			mk512: func() []sim.Node[core.FastVal] { return ablation.NewNodes(xs512, v) },
		})
	}

	// Each variant contributes two cells: an exhaustive invariant verdict on
	// a 4-cycle with structured ids, and a performance probe on a 512-cycle.
	type cell struct {
		vi      int
		explore bool
	}
	type result struct {
		lemma45, properViolated bool
		acts                    string
	}
	var cells []cell
	for vi := range variants {
		cells = append(cells, cell{vi: vi, explore: true}, cell{vi: vi})
	}
	results, done := mapCells(o, t, cells, func(_ int, c cell) result {
		v := variants[c.vi]
		if c.explore {
			g4 := graph.MustCycle(4)
			e4, _ := sim.NewEngine(g4, v.mk4())
			inv := invFor(g4)
			r := result{}
			combined := func(e *sim.Engine[core.FastVal]) error {
				res := e.Result()
				if err := check.ProperColoring(g4, res); err != nil {
					r.properViolated = true
					return err
				}
				return inv(e)
			}
			rep := model.Explore(e4, model.Options{SingletonsOnly: true, MaxStates: 1_000_000}, combined)
			r.lemma45 = len(rep.Violations) == 0
			return r
		}
		g512 := graph.MustCycle(512)
		e512, _ := sim.NewEngine(g512, v.mk512())
		res, err := e512.Run(schedule.NewRoundRobin(1), 1_000_000)
		r := result{acts: "-"}
		if err == nil {
			r.acts = fmt.Sprintf("%d", res.MaxActivations())
			r.properViolated = check.ProperColoring(g512, res) != nil
		}
		return r
	})
	for i := 0; i < len(cells); i += 2 {
		if !rowComplete(done, i, i+2) {
			continue
		}
		exp, run := results[i], results[i+1]
		t.AddRow(variants[cells[i].vi].label, exp.lemma45, !(exp.properViolated || run.properViolated), run.acts)
	}
	t.AddNote("no-green-light and eager-evade break Lemma 4.5 (coloring safety is guarded separately and survives);")
	t.AddNote("eager-inf keeps all safety but degenerates to Θ(n); no-evade keeps everything — the evasion is a")
	t.AddNote("constant-factor accelerator for local minima, invisible on this workload")
	return t
}

// E18SymmetrySweep is the differential experiment for the symmetry
// reduction of DESIGN.md §6: exhaustive identifier-assignment sweeps of
// Algorithm 2 at every reduction level. The D_n-reduced sweeps must
// reproduce the unreduced weighted counts bit-for-bit (assignments level)
// and the unreduced verdicts and worst-activation suprema (full level)
// while performing a fraction of the explorations — n!/(2n) orbit
// representatives instead of n! assignments.
func E18SymmetrySweep(o Options) *Table {
	t := &Table{
		ID:      "E18",
		Title:   "Symmetry reduction (§6): D_n-reduced sweeps reproduce the unreduced results exactly",
		Columns: []string{"n", "symmetry", "assignments", "runs", "states (weighted)", "terminal (weighted)", "violations", "max worst", "all ok", "matches off"},
	}
	sizes := []int{4}
	if !o.Quick {
		sizes = append(sizes, 5)
	}
	inv := func(n int) model.Invariant[core.FiveVal] {
		return func(e *sim.Engine[core.FiveVal]) error {
			for i := 0; i < n; i++ {
				if !e.Done(i) {
					continue
				}
				c := e.Output(i)
				if c < 0 || c >= 5 {
					return fmt.Errorf("color %d outside the 5-palette", c)
				}
				if j := (i + 1) % n; e.Done(j) && e.Output(j) == c {
					return fmt.Errorf("monochromatic edge")
				}
			}
			return nil
		}
	}
	for _, n := range sizes {
		n := n
		mk := func(xs []int) (*sim.Engine[core.FiveVal], error) {
			return sim.NewEngine(graph.MustCycle(n), core.NewFiveNodes(xs))
		}
		var off model.SweepReport
		var offWorst model.SweepReport
		for _, sym := range []model.Symmetry{model.SymmetryOff, model.SymmetryAssignments, model.SymmetryFull} {
			opt := model.Options{SingletonsOnly: true, Symmetry: sym, Context: o.Context}
			rep, err := model.SweepExplore(n, mk, opt, inv(n))
			if err != nil {
				t.AddNote("C%d %s sweep failed: %v", n, sym, err)
				continue
			}
			worst, err := model.SweepWorstActivations(n, mk, opt)
			if err != nil {
				t.AddNote("C%d %s worst sweep failed: %v", n, sym, err)
				continue
			}
			if rep.Partial || worst.Partial {
				t.MarkPartial(rep.StopReason, 0, 0)
				return t
			}
			match := "reference"
			switch sym {
			case model.SymmetryOff:
				off, offWorst = rep, worst
			case model.SymmetryAssignments:
				// Exact claim: every weighted field agrees bit-for-bit.
				match = yesNo(rep.States == off.States && rep.Terminal == off.Terminal &&
					rep.CycleRuns == off.CycleRuns && rep.Violations == off.Violations &&
					rep.AllOk == off.AllOk && worst.MaxWorst == offWorst.MaxWorst &&
					sliceEq(worst.WorstPerProc, offWorst.WorstPerProc))
			case model.SymmetryFull:
				// Within-run reduction changes raw state counts; the verdicts
				// and the worst-activation supremum must not move.
				match = yesNo(rep.CycleRuns == off.CycleRuns && rep.Violations == off.Violations &&
					rep.AllOk == off.AllOk && worst.MaxWorst == offWorst.MaxWorst &&
					sliceEq(worst.WorstPerProc, offWorst.WorstPerProc))
			}
			t.AddRow(n, sym.String(), rep.Assignments, rep.Runs, rep.States, rep.Terminal,
				rep.Violations, worst.MaxWorst, rep.AllOk, match)
		}
	}
	t.AddNote("assignments-level rows must equal the off rows on every weighted column (exact orbit bookkeeping);")
	t.AddNote("full-level rows additionally dedup rotation-equivalent states inside each run, so raw state totals")
	t.AddNote("shrink on anonymous instances while all verdicts and worst-activation vectors stay fixed")
	return t
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "NO"
}

func sliceEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
