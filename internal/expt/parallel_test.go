package expt

import (
	"testing"
)

// TestCellSeedGolden pins the seed derivation: cell seeds feed every random
// workload and scheduler, so silently changing the hash would silently
// change every recorded table. Update these constants only when changing
// the derivation on purpose (and regenerate EXPERIMENTS.md).
func TestCellSeedGolden(t *testing.T) {
	cases := []struct {
		got  int64
		want int64
	}{
		{cellSeed(1, "E2", 64, "increasing", "synchronous"), 4718064140649246107},
		{cellSeed(1, "E2", 64, "increasing"), 3113183694724336743},
		{cellSeed(2, "E2", 64, "increasing", "synchronous"), 631557707818123634},
		{cellSeed(1, "E9", 512, 8), 3223791055823260699},
	}
	for i, c := range cases {
		if c.got != c.want {
			t.Errorf("case %d: cellSeed = %d, want %d", i, c.got, c.want)
		}
	}
}

func TestCellSeedProperties(t *testing.T) {
	a := cellSeed(1, "E1", 8, "random")
	if a != cellSeed(1, "E1", 8, "random") {
		t.Fatal("cellSeed is not deterministic")
	}
	if a <= 0 {
		t.Fatalf("cellSeed = %d, want positive", a)
	}
	distinct := map[int64]bool{a: true}
	for _, other := range []int64{
		cellSeed(2, "E1", 8, "random"),
		cellSeed(1, "E2", 8, "random"),
		cellSeed(1, "E1", 9, "random"),
		cellSeed(1, "E1", 8, "zigzag"),
		cellSeed(1, "E1", 8, "random", "synchronous"),
	} {
		if distinct[other] {
			t.Fatalf("coordinate change did not change the seed")
		}
		distinct[other] = true
	}
}

// TestParallelSerialEquivalence is the harness's central determinism
// guarantee: every experiment table is byte-identical whether its cells run
// on one worker or eight. E13 is excluded — its cells launch real
// goroutine executions (conc.Run), so its measured round statistics are
// inherently nondeterministic at any parallelism level.
func TestParallelSerialEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment twice")
	}
	for _, r := range Runners() {
		if r.ID == "E13" {
			continue
		}
		r := r
		t.Run(r.ID, func(t *testing.T) {
			t.Parallel()
			serial := r.Run(Options{Quick: true, Parallelism: 1}).String()
			parallel := r.Run(Options{Quick: true, Parallelism: 8}).String()
			if serial != parallel {
				t.Errorf("table differs between Parallelism 1 and 8:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
			}
		})
	}
}

// TestSeedChangesTables spot-checks that the Options seed actually reaches
// the workloads: E2's random-identifier column should differ between seeds.
func TestSeedChangesTables(t *testing.T) {
	a := E2Alg2Linear(Options{Quick: true, Seed: 1}).String()
	b := E2Alg2Linear(Options{Quick: true, Seed: 99}).String()
	if a == b {
		t.Error("changing Options.Seed left E2's table unchanged")
	}
}
