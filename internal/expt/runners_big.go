package expt

import (
	"fmt"

	"asynccycle/internal/bigsim"
	"asynccycle/internal/ids"
	"asynccycle/internal/protocol"
	"asynccycle/internal/runctl"
)

// bigSchedSpec mirrors schedSpec for the struct-of-arrays engine's native
// schedulers: cells construct private instances from coordinate-derived
// seeds and merges refer to the stable name.
type bigSchedSpec struct {
	name string
	mk   func(seed int64) bigsim.Sched
}

func bigSchedSpecs() []bigSchedSpec {
	return []bigSchedSpec{
		{"round-robin(1)", func(int64) bigsim.Sched { return bigsim.NewRR(1) }},
		{"random-subset(p=0.40)", func(s int64) bigsim.Sched { return bigsim.NewRandomSubset(0.4, s) }},
	}
}

// E20RoundCurves measures the empirical round complexity of the three core
// protocols at large n on the struct-of-arrays engine: the maximum
// activations any node needs before terminating, under the fair schedules
// the paper's adversary generalizes (one round-robin sweep and i.i.d.
// random subsets), against the adversarial Theorem 3.1 / Theorem 3.11 /
// Corollary 3.13 bounds the registry records. The bounds are worst-case
// over all schedules and identifier assignments; with random identifiers
// the monotone chains that force the linear bounds have logarithmic
// length, so the measured curves for six and five sit far below their
// ⌊3n/2⌋+4 and 3n+8 lines while fast tracks its Θ(log* n) bound.
// Safety is checked incrementally during each run and re-verified with
// the O(n) scan afterwards.
func E20RoundCurves(o Options) *Table {
	t := &Table{
		ID:      "E20",
		Title:   "Large-cycle round complexity (big engine): measured max rounds vs paper bounds",
		Columns: []string{"protocol", "n", "scheduler", "steps", "activations", "max rounds", "bound", "max/bound"},
	}
	sizes := []int{1_000, 10_000}
	if !o.Quick {
		sizes = append(sizes, 100_000, 1_000_000)
	}
	type cell struct {
		alg  string
		n    int
		spec bigSchedSpec
	}
	var cells []cell
	for _, alg := range []string{"six", "five", "fast"} {
		for _, n := range sizes {
			for _, sp := range bigSchedSpecs() {
				cells = append(cells, cell{alg: alg, n: n, spec: sp})
			}
		}
	}
	type result struct {
		sum   bigsim.Summary
		bound int
		note  string
	}
	results, done := mapCells(o, t, cells, func(_ int, c cell) result {
		d, err := protocol.Lookup(c.alg)
		if err != nil {
			return result{note: fmt.Sprintf("%s: %v", c.alg, err)}
		}
		xs := ids.MustGenerate(ids.Random, c.n, cellSeed(o.seed(), "E20", c.alg, c.n))
		k, err := d.BigKernel(xs)
		if err != nil {
			return result{note: fmt.Sprintf("%s n=%d: %v", c.alg, c.n, err)}
		}
		e := bigsim.New(k)
		e.SetIncremental(true)
		s := c.spec.mk(cellSeed(o.seed(), "E20", c.alg, c.n, c.spec.name))
		reason, err := e.RunBudget(o.Context, s, runctl.Budget{MaxSteps: 500*c.n + 100_000})
		if err != nil {
			return result{note: fmt.Sprintf("%s n=%d %s: %v", c.alg, c.n, c.spec.name, err)}
		}
		if reason != runctl.StopNone {
			return result{note: fmt.Sprintf("%s n=%d %s: stopped early (%s)", c.alg, c.n, c.spec.name, reason)}
		}
		if err := e.VerifyFull(); err != nil {
			return result{note: fmt.Sprintf("%s n=%d %s: SAFETY: %v", c.alg, c.n, c.spec.name, err)}
		}
		sum := e.Summarize()
		if sum.Terminated != c.n {
			return result{note: fmt.Sprintf("%s n=%d %s: only %d/%d terminated", c.alg, c.n, c.spec.name, sum.Terminated, c.n)}
		}
		return result{sum: sum, bound: d.Bound(c.n)}
	})
	for i, c := range cells {
		if !done[i] {
			continue
		}
		r := results[i]
		if r.note != "" {
			t.AddNote("%s", r.note)
			continue
		}
		t.AddRow(c.alg, c.n, c.spec.name, r.sum.Steps, r.sum.Rounds, r.sum.MaxRounds, r.bound,
			fmt.Sprintf("%.1e", float64(r.sum.MaxRounds)/float64(r.bound)))
	}
	t.AddNote("paper: Theorem 3.1 (six ≤ ⌊3n/2⌋+4), Theorem 3.11 (five ≤ 3n+8), Corollary 3.13 (fast = O(log* n)); bounds are adversarial worst cases over schedules and identifiers")
	t.AddNote("random identifiers keep monotone chains to O(log n), so six/five terminate in far fewer rounds than their linear bounds under these fair schedules")
	return t
}
