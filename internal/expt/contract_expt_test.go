package expt

import (
	"strings"
	"testing"
)

// TestE23CleanQuick: every certificate row must be violation-free with
// the worst-case round count exactly at the declared bound, labeled with
// the approx-agreement contract.
func TestE23CleanQuick(t *testing.T) {
	tb := E23ApproxAgreement(Options{Quick: true})
	if len(tb.Rows) == 0 {
		t.Fatal("E23 produced no rows")
	}
	for _, row := range tb.Rows {
		if row[len(tb.Columns)-1] != "0" {
			t.Errorf("row %v reports violations", row)
		}
		if row[2] != "approx-agreement" {
			t.Errorf("row %v lacks the contract label", row)
		}
		if row[6] != row[7] {
			t.Errorf("row %v: worst rounds %s ≠ bound %s (bound not tight)", row, row[6], row[7])
		}
	}
	if s := tb.String(); strings.Contains(s, "≠ declared bound") {
		t.Errorf("bound mismatch note:\n%s", s)
	}
}

// TestE24CleanQuick: the rooted sweeps must certify stabilization from
// all 3^n initial states, and the anonymous negative control must
// livelock — the expected failure, proving the analysis has teeth.
func TestE24CleanQuick(t *testing.T) {
	tb := E24SelfStabilization(Options{Quick: true})
	if len(tb.Rows) == 0 {
		t.Fatal("E24 produced no rows")
	}
	var sawRooted, sawAnon bool
	for _, row := range tb.Rows {
		verdict := row[len(tb.Columns)-1]
		if strings.HasPrefix(row[0], "rooted") {
			sawRooted = true
			if verdict != "STABILIZING" {
				t.Errorf("rooted row %v: verdict %q", row, verdict)
			}
			if row[2] != "ss-coloring" {
				t.Errorf("rooted row %v lacks the contract label", row)
			}
		} else {
			sawAnon = true
			if verdict != "LIVELOCK (expected)" {
				t.Errorf("anonymous row %v: verdict %q", row, verdict)
			}
		}
	}
	if !sawRooted || !sawAnon {
		t.Errorf("missing a leg: rooted=%v anonymous=%v", sawRooted, sawAnon)
	}
}
