package expt

import (
	"strings"
	"testing"
)

// TestE22CleanQuick: the quick sweep and certificates must come back with
// zero violations, every palette within Δ+1, and every certificate
// exhaustive.
func TestE22CleanQuick(t *testing.T) {
	tb := E22DeltaPlusOne(Options{Quick: true})
	if len(tb.Rows) == 0 {
		t.Fatal("E22 produced no rows")
	}
	for _, row := range tb.Rows {
		if row[len(tb.Columns)-1] != "0" {
			t.Errorf("row %v reports violations", row)
		}
		if strings.Contains(row[5], "EXCEEDED") {
			t.Errorf("row %v exceeds the Δ+1 palette", row)
		}
	}
	if s := tb.String(); strings.Contains(s, "TRUNCATED") {
		t.Errorf("a certificate cell was truncated:\n%s", s)
	}
}

// TestE22TopologyOverride: -topology redirects the engine sweep onto the
// requested family while the fixed certificates stay.
func TestE22TopologyOverride(t *testing.T) {
	tb := E22DeltaPlusOne(Options{Quick: true, Topology: "torus"})
	s := tb.String()
	if !strings.Contains(s, "T3x6") && !strings.Contains(s, "T4x4") {
		t.Errorf("override did not reach the engine sweep:\n%s", s)
	}
	if !strings.Contains(s, "K4") {
		t.Errorf("certificates disappeared under the override:\n%s", s)
	}
}
