package decoupled_test

import (
	"errors"
	"testing"
	"testing/quick"

	"asynccycle/internal/decoupled"
	"asynccycle/internal/graph"
	"asynccycle/internal/ids"
	"asynccycle/internal/schedule"
)

func properCycle(t *testing.T, res decoupled.Result, maxColor int) {
	t.Helper()
	n := len(res.Outputs)
	for i := 0; i < n; i++ {
		if !res.Done[i] {
			continue
		}
		if res.Outputs[i] < 0 || res.Outputs[i] > maxColor {
			t.Errorf("node %d: color %d outside {0..%d}", i, res.Outputs[i], maxColor)
		}
		j := (i + 1) % n
		if res.Done[j] && res.Outputs[i] == res.Outputs[j] {
			t.Errorf("adjacent nodes %d,%d share color %d", i, j, res.Outputs[i])
		}
	}
}

func TestEngineValidates(t *testing.T) {
	g := graph.MustCycle(3)
	if _, err := decoupled.NewEngine[int](g, make([]decoupled.Proc[int], 2)); err == nil {
		t.Fatal("accepted wrong proc count")
	}
}

func TestThreeColorSynchronousStart(t *testing.T) {
	for _, n := range []int{3, 4, 5, 16, 64} {
		g := graph.MustCycle(n)
		xs := ids.MustGenerate(ids.Random, n, int64(n))
		e, err := decoupled.NewEngine(g, decoupled.NewThreeColorNodes(xs))
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(schedule.Synchronous{}, 100*n+1000)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if res.TerminatedCount() != n {
			t.Fatalf("n=%d: %d/%d decided", n, res.TerminatedCount(), n)
		}
		properCycle(t, res, 2)
	}
}

func TestThreeColorAsynchronousSchedules(t *testing.T) {
	n := 24
	g := graph.MustCycle(n)
	xs := ids.MustGenerate(ids.Increasing, n, 0)
	for _, s := range []schedule.Scheduler{
		schedule.NewRoundRobin(1),
		schedule.NewRandomSubset(0.3, 5),
		schedule.NewRandomOne(6),
		schedule.Alternating{},
		schedule.NewBurst(3),
	} {
		e, _ := decoupled.NewEngine(g, decoupled.NewThreeColorNodes(xs))
		res, err := e.Run(s, 1000*n)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if res.TerminatedCount() != n {
			t.Fatalf("%s: %d/%d decided", s.Name(), res.TerminatedCount(), n)
		}
		properCycle(t, res, 2)
	}
}

func TestThreeColorLateWakers(t *testing.T) {
	// Half the ring sleeps for 50 network rounds while the other half
	// commits; the late wakers then defer to the committed colors.
	n := 16
	g := graph.MustCycle(n)
	xs := ids.MustGenerate(ids.Random, n, 1)
	var sleepers []int
	for i := 0; i < n; i += 2 {
		sleepers = append(sleepers, i)
	}
	e, _ := decoupled.NewEngine(g, decoupled.NewThreeColorNodes(xs))
	res, err := e.Run(schedule.NewSleep(sleepers, 50, schedule.Synchronous{}), 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.TerminatedCount() != n {
		t.Fatalf("%d/%d decided", res.TerminatedCount(), n)
	}
	properCycle(t, res, 2)
}

func TestThreeColorInitialCrashes(t *testing.T) {
	// Never-wake crashes: survivors still 3-color their induced subgraph,
	// wait-free — the separation claim of E14 (the state model needs 5
	// colors under the same adversary class).
	n := 20
	g := graph.MustCycle(n)
	xs := ids.MustGenerate(ids.Random, n, 2)
	e, _ := decoupled.NewEngine(g, decoupled.NewThreeColorNodes(xs))
	for i := 0; i < n; i += 4 {
		e.CrashAfter(i, 0) // never wakes
	}
	res, err := e.Run(schedule.NewRandomSubset(0.5, 9), 10_000)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if i%4 == 0 {
			if res.Done[i] {
				t.Errorf("crashed-at-birth node %d decided", i)
			}
			continue
		}
		if !res.Done[i] {
			t.Errorf("survivor %d did not decide", i)
		}
	}
	properCycle(t, res, 2)
}

func TestThreeColorCommittedCrash(t *testing.T) {
	// A process that commits and then "crashes" is harmless: the layer
	// keeps relaying its committed color. Model it by crashing nodes right
	// after a generous step budget under the synchronous schedule (every
	// node commits within its first 3 steps).
	n := 12
	g := graph.MustCycle(n)
	xs := ids.MustGenerate(ids.Random, n, 4)
	e, _ := decoupled.NewEngine(g, decoupled.NewThreeColorNodes(xs))
	for i := 0; i < n; i++ {
		e.CrashAfter(i, 6)
	}
	res, err := e.Run(schedule.Synchronous{}, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.TerminatedCount() != n {
		t.Fatalf("%d/%d decided", res.TerminatedCount(), n)
	}
	properCycle(t, res, 2)
}

func TestThreeColorMidProtocolCrashLimitation(t *testing.T) {
	// The documented limitation: a process that wakes and crashes before
	// committing blocks its lower-priority neighbors. This is precisely
	// the gap [13] closes; the test pins the limitation so a future
	// implementation of [13]'s algorithm would flip it.
	g := graph.MustCycle(3)
	// Node 0 has the highest priority (largest id, all wake together) and
	// crashes after its first step, before it can commit at wake+2.
	e, _ := decoupled.NewEngine(g, decoupled.NewThreeColorNodes([]int{99, 5, 1}))
	e.CrashAfter(0, 1)
	res, err := e.Run(schedule.Synchronous{}, 200)
	if err == nil {
		for i := 1; i <= 2; i++ {
			if res.Done[i] {
				t.Errorf("node %d decided despite a blocked priority chain", i)
			}
		}
	}
	// err != nil (step limit) is also an acceptable manifestation.
	_ = err
}

func TestRunStepLimit(t *testing.T) {
	g := graph.MustCycle(3)
	e, _ := decoupled.NewEngine(g, decoupled.NewThreeColorNodes([]int{99, 5, 1}))
	e.CrashAfter(0, 1) // blocks the others forever
	_, err := e.Run(schedule.Synchronous{}, 50)
	if err != nil && !errors.Is(err, decoupled.ErrStepLimit) {
		t.Fatalf("err = %v, want ErrStepLimit or graceful crash-out", err)
	}
}

// TestThreeColorQuick: random sizes, seeds, and initial-crash patterns
// always yield proper partial 3-colorings.
func TestThreeColorQuick(t *testing.T) {
	prop := func(seed int64, rawN uint8, crashMask uint16) bool {
		n := 3 + int(rawN)%20
		g := graph.MustCycle(n)
		xs := ids.RandomIDs(n, seed)
		e, err := decoupled.NewEngine(g, decoupled.NewThreeColorNodes(xs))
		if err != nil {
			return false
		}
		for i := 0; i < n && i < 16; i++ {
			if crashMask&(1<<i) != 0 {
				e.CrashAfter(i, 0)
			}
		}
		res, err := e.Run(schedule.NewRandomSubset(0.4, seed), 100_000)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if !res.Done[i] {
				if !res.Crashed[i] {
					return false
				}
				continue
			}
			if res.Outputs[i] < 0 || res.Outputs[i] > 2 {
				return false
			}
			j := (i + 1) % n
			if res.Done[j] && res.Outputs[i] == res.Outputs[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
