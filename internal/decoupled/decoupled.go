// Package decoupled implements the DECOUPLED model of Castañeda et al.
// [13] and Delporte-Gallet et al. [18], the closest related work the paper
// discusses (§1.4): n asynchronous crash-prone processes occupy the nodes
// of a *synchronous and reliable* network. The communication layer ticks
// in lock-step rounds and relays each woken node's current value to its
// neighbors every round, autonomously — even when the owning process is
// slow, stopped, or already terminated — and nothing is ever lost: a
// process consuming its buffer late finds everything that passed by.
// Because the layer is synchronous, the round number is common knowledge,
// and that is precisely the power the paper's fully asynchronous state
// model lacks.
//
// DECOUPLED is strictly stronger than the state model: wake-up order
// becomes observable ("any neighbor that woke no later than me is visible
// in my buffer two rounds after I woke"), which enables 3-coloring the
// cycle — impossible wait-free in the state model, where 5 colors are
// necessary (Property 2.3). Experiment E14 reproduces this separation
// using the ThreeColor process in this package.
package decoupled

import (
	"errors"
	"fmt"
	"strings"

	"asynccycle/internal/graph"
	"asynccycle/internal/schedule"
)

// Message is one buffered delivery: the value a neighbor's register held
// at a given communication round.
type Message[V any] struct {
	// Round is the communication-layer tick at which the value was
	// relayed.
	Round int
	// From is the sender's index in the receiver's neighbor list (not a
	// global node index: processes have no global knowledge).
	From int
	// Value is the relayed payload.
	Value V
}

// Proc is an asynchronous process in the DECOUPLED model. At each of its
// adversarially scheduled steps it learns the current network round (the
// layer is synchronous, so the clock is common knowledge) and receives
// every message buffered since its previous step; it returns the value
// the layer will relay for it from now on, plus its decision.
type Proc[V any] interface {
	Step(now int, buffered []Message[V]) (emit V, done bool, output int)
	// Clone returns a deep copy, used by the bounded model checker and the
	// schedule fuzzer to branch executions.
	Clone() Proc[V]
}

// Result mirrors the state-model result for DECOUPLED executions.
type Result struct {
	Outputs     []int
	Done        []bool
	Crashed     []bool
	Activations []int
	// CommRounds is the number of communication-layer ticks consumed.
	CommRounds int
}

// TerminatedCount returns how many processes decided.
func (r Result) TerminatedCount() int {
	n := 0
	for _, d := range r.Done {
		if d {
			n++
		}
	}
	return n
}

// ErrStepLimit is returned when the execution exceeds its tick budget.
var ErrStepLimit = errors.New("decoupled: step limit exceeded")

// Engine couples the synchronous reliable communication layer with
// asynchronous process scheduling. It reuses the state model's Scheduler
// interface: the scheduler picks which processes take a step at each
// network tick.
type Engine[V any] struct {
	g       graph.Graph
	procs   []Proc[V]
	emit    []V
	started []bool
	buffers [][]Message[V]
	done    []bool
	crashed []bool
	outputs []int
	acts    []int
	limits  []int
	tick    int
}

// NewEngine builds a DECOUPLED engine. The layer starts relaying a node's
// value after the node's first step.
func NewEngine[V any](g graph.Graph, procs []Proc[V]) (*Engine[V], error) {
	if len(procs) != g.N() {
		return nil, fmt.Errorf("decoupled: %d procs for graph %s with %d nodes", len(procs), g.Name(), g.N())
	}
	n := g.N()
	e := &Engine[V]{
		g:       g,
		procs:   procs,
		emit:    make([]V, n),
		started: make([]bool, n),
		buffers: make([][]Message[V], n),
		done:    make([]bool, n),
		crashed: make([]bool, n),
		outputs: make([]int, n),
		acts:    make([]int, n),
		limits:  make([]int, n),
	}
	for i := range e.outputs {
		e.outputs[i] = -1
		e.limits[i] = -1
	}
	return e, nil
}

// CrashAfter crashes process i after k steps (0 = never wakes). A crashed
// process takes no further steps, but the layer keeps relaying its last
// emitted value: reliability belongs to the network, not the process.
func (e *Engine[V]) CrashAfter(i, k int) {
	e.limits[i] = k
	if k <= e.acts[i] {
		e.crashed[i] = true
	}
}

// N implements schedule.State.
func (e *Engine[V]) N() int { return len(e.procs) }

// Time implements schedule.State.
func (e *Engine[V]) Time() int { return e.tick + 1 }

// Working implements schedule.State.
func (e *Engine[V]) Working(i int) bool { return !e.done[i] && !e.crashed[i] }

// Activations implements schedule.State.
func (e *Engine[V]) Activations(i int) int { return e.acts[i] }

var _ schedule.State = (*Engine[int])(nil)

// Tick advances the network one synchronous round — delivering every
// started node's current value into its neighbors' buffers — and then
// runs one asynchronous step of each scheduled working process. It
// returns the processes that actually stepped.
func (e *Engine[V]) Tick(active []int) []int {
	e.tick++
	for u := 0; u < e.g.N(); u++ {
		if !e.started[u] {
			continue
		}
		for _, v := range e.g.Neighbors(u) {
			slot := neighborSlot(e.g, v, u)
			e.buffers[v] = append(e.buffers[v], Message[V]{Round: e.tick, From: slot, Value: e.emit[u]})
		}
	}
	performed := make([]int, 0, len(active))
	seen := make(map[int]bool, len(active))
	for _, i := range active {
		if i < 0 || i >= len(e.procs) || seen[i] || !e.Working(i) {
			continue
		}
		seen[i] = true
		performed = append(performed, i)
		buf := e.buffers[i]
		e.buffers[i] = nil
		emit, done, output := e.procs[i].Step(e.tick, buf)
		e.acts[i]++
		e.emit[i] = emit
		e.started[i] = true
		if done {
			e.done[i] = true
			e.outputs[i] = output
		} else if e.limits[i] >= 0 && e.acts[i] >= e.limits[i] {
			e.crashed[i] = true
		}
	}
	return performed
}

// neighborSlot returns the index of u in v's neighbor list.
func neighborSlot(g graph.Graph, v, u int) int {
	for k, w := range g.Neighbors(v) {
		if w == u {
			return k
		}
	}
	return -1
}

// Run drives the engine until every process settles or maxTicks elapse.
// Several consecutive ticks without any process step crash the remaining
// processes, as in the state model.
func (e *Engine[V]) Run(s schedule.Scheduler, maxTicks int) (Result, error) {
	empties := 0
	for !e.allSettled() {
		if e.tick >= maxTicks {
			return e.result(), fmt.Errorf("%w: %d ticks, scheduler %s", ErrStepLimit, e.tick, s.Name())
		}
		if performed := e.Tick(s.Next(e)); len(performed) == 0 {
			empties++
			// As in the state-model engine, sustained idling is treated as
			// the adversary abandoning the remaining processes; the
			// tolerance leaves room for deliberate sleep phases.
			if empties >= 2048 {
				for i := range e.crashed {
					if e.Working(i) {
						e.crashed[i] = true
					}
				}
			}
		} else {
			empties = 0
		}
	}
	return e.result(), nil
}

func (e *Engine[V]) allSettled() bool {
	for i := range e.done {
		if e.Working(i) {
			return false
		}
	}
	return true
}

// AllSettled reports whether every process terminated or crashed — the
// execution cannot evolve further.
func (e *Engine[V]) AllSettled() bool { return e.allSettled() }

// AllDone reports whether every process terminated with an output.
func (e *Engine[V]) AllDone() bool {
	for _, d := range e.done {
		if !d {
			return false
		}
	}
	return true
}

// Snapshot returns the current execution state as a Result, even if the
// execution has not settled.
func (e *Engine[V]) Snapshot() Result { return e.result() }

// Clone deep-copies the engine (including process states via Proc.Clone
// and the in-flight communication buffers), for execution branching by the
// bounded model checker and the schedule fuzzer.
func (e *Engine[V]) Clone() *Engine[V] {
	n := len(e.procs)
	d := &Engine[V]{
		g:       e.g,
		procs:   make([]Proc[V], n),
		emit:    append([]V(nil), e.emit...),
		started: append([]bool(nil), e.started...),
		buffers: make([][]Message[V], n),
		done:    append([]bool(nil), e.done...),
		crashed: append([]bool(nil), e.crashed...),
		outputs: append([]int(nil), e.outputs...),
		acts:    append([]int(nil), e.acts...),
		limits:  append([]int(nil), e.limits...),
		tick:    e.tick,
	}
	for i, p := range e.procs {
		d.procs[i] = p.Clone()
	}
	for i, buf := range e.buffers {
		if len(buf) > 0 {
			d.buffers[i] = append([]Message[V](nil), buf...)
		}
	}
	return d
}

// Fingerprint returns a canonical string encoding of the configuration:
// the network clock, every process's state machine and emitted value, the
// undelivered buffer contents, and termination/crash bookkeeping. Unlike
// the state model the tick is always included — the communication layer's
// round number is common knowledge and part of the transition function.
// Two engines with equal fingerprints behave identically under identical
// future schedules.
func (e *Engine[V]) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "t=%d", e.tick)
	for i := range e.procs {
		fmt.Fprintf(&b, ";%d[", i)
		if e.started[i] {
			fmt.Fprintf(&b, "e=%v", e.emit[i])
		} else {
			b.WriteString("e=⊥")
		}
		fmt.Fprintf(&b, " s=%v d=%t c=%t o=%d", e.procs[i], e.done[i], e.crashed[i], e.outputs[i])
		if e.limits[i] >= 0 {
			fmt.Fprintf(&b, " a=%d l=%d", e.acts[i], e.limits[i])
		}
		b.WriteString(" b=(")
		for j, m := range e.buffers[i] {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d@%d:%v", m.From, m.Round, m.Value)
		}
		b.WriteString(")]")
	}
	return b.String()
}

func (e *Engine[V]) result() Result {
	return Result{
		Outputs:     append([]int(nil), e.outputs...),
		Done:        append([]bool(nil), e.done...),
		Crashed:     append([]bool(nil), e.crashed...),
		Activations: append([]int(nil), e.acts...),
		CommRounds:  e.tick,
	}
}
