package decoupled

// ThreeColorVal is the value a ThreeColor process emits: its wake round,
// identifier, and current color (Undecided until it commits).
type ThreeColorVal struct {
	Wake  int
	ID    int
	Color int // Undecided, or a color in {0, 1, 2}
}

// Undecided marks a not-yet-committed color.
const Undecided = -1

// ThreeColor wait-free 3-colors the cycle in the DECOUPLED model by
// exploiting the synchronous layer's clock — the power the state model
// lacks. Priority order is (wake round, then larger identifier): because
// delivery is reliable and takes exactly one round, by network round
// w_p + 2 process p has seen the first emission of every neighbor that
// woke no later than p, so p knows its priority neighbors exactly; any
// neighbor silent by then wakes strictly later and will defer to p's
// committed color. p commits to the smallest color unused by its priority
// neighbors' commitments (at most two neighbors, so {0, 1, 2} always
// suffices, versus the five colors provably necessary in the paper's
// model).
//
// Progress: ThreeColor is wait-free against *initial* crashes (processes
// that never wake are simply never anyone's priority neighbor) and
// against crashes of already-committed processes (the layer keeps
// relaying their color). A process that wakes and then crashes before
// committing blocks its lower-priority neighbors — tolerating that last
// pattern with 3 colors is exactly the contribution of Castañeda et al.
// [13], whose full machinery is out of scope here (see DESIGN.md); the
// separation from the state model (3 colors vs 5) already shows at the
// patterns this process handles.
type ThreeColor struct {
	id   int
	wake int // 0 until the first step
	// Per neighbor slot: what is known from the buffer.
	seen  []neighborInfo
	color int
}

type neighborInfo struct {
	known bool
	wake  int
	id    int
	color int
}

// NewThreeColor returns a ThreeColor process with the given identifier
// and degree (2 on the cycle).
func NewThreeColor(id, degree int) *ThreeColor {
	return &ThreeColor{
		id:    id,
		seen:  make([]neighborInfo, degree),
		color: Undecided,
	}
}

// Step implements Proc.
func (t *ThreeColor) Step(now int, buffered []Message[ThreeColorVal]) (ThreeColorVal, bool, int) {
	if t.wake == 0 {
		t.wake = now
	}
	for _, m := range buffered {
		if m.From < 0 || m.From >= len(t.seen) {
			continue
		}
		info := &t.seen[m.From]
		if !info.known {
			info.known = true
			info.wake = m.Value.Wake
			info.id = m.Value.ID
		}
		info.color = m.Value.Color
	}

	if t.color == Undecided && now >= t.wake+2 {
		// All neighbors that woke at rounds ≤ t.wake are visible now;
		// anything still silent wakes later and defers to us.
		ready := true
		var used []int
		for _, info := range t.seen {
			if !info.known {
				continue // wakes later (or never): defers to us
			}
			if !t.hasPriority(info) {
				continue // we have priority: it defers to us
			}
			if info.color == Undecided {
				ready = false // priority neighbor not committed yet
				break
			}
			used = append(used, info.color)
		}
		if ready {
			t.color = mex3(used)
		}
	}

	v := ThreeColorVal{Wake: t.wake, ID: t.id, Color: t.color}
	if t.color != Undecided {
		return v, true, t.color
	}
	return v, false, 0
}

// Clone implements Proc.
func (t *ThreeColor) Clone() Proc[ThreeColorVal] {
	c := *t
	c.seen = append([]neighborInfo(nil), t.seen...)
	return &c
}

// hasPriority reports whether the neighbor outranks this process: it woke
// strictly earlier, or in the same round with a larger identifier.
func (t *ThreeColor) hasPriority(info neighborInfo) bool {
	if info.wake != t.wake {
		return info.wake < t.wake
	}
	return info.id > t.id
}

// mex3 is the minimum color in {0, 1, 2, …} excluded from used; with at
// most two entries it never exceeds 2.
func mex3(used []int) int {
	for c := 0; ; c++ {
		taken := false
		for _, u := range used {
			if u == c {
				taken = true
				break
			}
		}
		if !taken {
			return c
		}
	}
}

// NewThreeColorNodes builds one ThreeColor process per identifier for the
// cycle (degree 2).
func NewThreeColorNodes(xs []int) []Proc[ThreeColorVal] {
	procs := make([]Proc[ThreeColorVal], len(xs))
	for i, x := range xs {
		procs[i] = NewThreeColor(x, 2)
	}
	return procs
}
