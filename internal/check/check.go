// Package check verifies the paper's correctness properties on execution
// results and on live executions:
//
//   - the outputs properly color the graph induced by terminated processes
//     (the Correctness clause of Theorems 3.1, 3.11 and 4.4);
//   - outputs lie in the claimed palettes;
//   - activation counts respect the claimed wait-free bounds;
//   - Lemma 4.5's invariant that Algorithm 3's evolving identifiers keep
//     properly coloring the cycle at every time step.
package check

import (
	"fmt"

	"asynccycle/internal/core"
	"asynccycle/internal/graph"
	"asynccycle/internal/sim"
)

// ProperColoring verifies that every pair of adjacent terminated processes
// output distinct colors. This is exactly the paper's correctness
// condition: crashed or starved processes (Outputs[i] == -1) induce no
// constraint.
func ProperColoring(g graph.Graph, r sim.Result) error {
	if len(r.Outputs) != g.N() {
		return fmt.Errorf("check: result for %d processes on graph %s with %d nodes", len(r.Outputs), g.Name(), g.N())
	}
	for _, e := range g.Edges() {
		u, v := e[0], e[1]
		if r.Done[u] && r.Done[v] && r.Outputs[u] == r.Outputs[v] {
			return fmt.Errorf("check: improper coloring on %s: nodes %d and %d both output %d", g.Name(), u, v, r.Outputs[u])
		}
	}
	return nil
}

// PaletteRange verifies that every terminated process output a color in
// {0, …, k−1} — with k = 5 this is the palette clause of Theorems 3.11
// and 4.4.
func PaletteRange(r sim.Result, k int) error {
	for i, out := range r.Outputs {
		if r.Done[i] && (out < 0 || out >= k) {
			return fmt.Errorf("check: node %d output %d outside palette {0..%d}", i, out, k-1)
		}
	}
	return nil
}

// PairPalette verifies that every terminated process output an encoded
// color pair (a, b) with a+b ≤ maxDeg — the palette clause of Theorem 3.1
// (maxDeg = 2) and of Algorithm 4 in general.
func PairPalette(r sim.Result, maxDeg int) error {
	for i, out := range r.Outputs {
		if !r.Done[i] {
			continue
		}
		if !core.InPairPalette(out, maxDeg) {
			a, b := core.DecodePair(out)
			return fmt.Errorf("check: node %d output pair (%d,%d) with a+b > %d", i, a, b, maxDeg)
		}
	}
	return nil
}

// ActivationBound verifies that no process performed more than bound
// rounds; this applies to terminated and crashed processes alike, since the
// wait-freedom bounds of the paper cap the activations of *working*
// processes.
func ActivationBound(r sim.Result, bound int) error {
	for i, a := range r.Activations {
		if a > bound {
			return fmt.Errorf("check: node %d performed %d rounds, exceeding bound %d", i, a, bound)
		}
	}
	return nil
}

// AllTerminated verifies that every non-crashed process terminated — the
// termination clause under schedules that never abandon a process.
func AllTerminated(r sim.Result) error {
	for i := range r.Done {
		if !r.Done[i] && !r.Crashed[i] {
			return fmt.Errorf("check: node %d neither terminated nor crashed", i)
		}
	}
	return nil
}

// SurvivorsTerminated verifies that every process that was not crashed
// terminated with an output — the fault-tolerance clause: crashes must not
// prevent correct processes from finishing.
func SurvivorsTerminated(r sim.Result) error {
	for i := range r.Done {
		if r.Crashed[i] {
			continue
		}
		if !r.Done[i] || r.Outputs[i] < 0 {
			return fmt.Errorf("check: surviving node %d did not terminate", i)
		}
	}
	return nil
}

// FastInvariantRecorder accumulates violations of Lemma 4.5's invariant on
// a live Algorithm 3 execution: at every time step, for every edge (p, q)
// of the cycle, the internal identifier X_p must differ from both q's
// internal identifier X_q and q's published identifier X̂_q (when present).
type FastInvariantRecorder struct {
	Violations []string
}

// Hook returns a sim.Hook that checks the invariant after every step.
func (rec *FastInvariantRecorder) Hook() sim.Hook[core.FastVal] {
	return func(e *sim.Engine[core.FastVal], t int, _ []int) {
		g := e.Graph()
		for _, edge := range g.Edges() {
			p, q := edge[0], edge[1]
			fp, okP := e.NodeState(p).(*core.Fast)
			fq, okQ := e.NodeState(q).(*core.Fast)
			if !okP || !okQ {
				rec.Violations = append(rec.Violations, fmt.Sprintf("t=%d: node state is not *core.Fast", t))
				return
			}
			if fp.X() == fq.X() {
				rec.Violations = append(rec.Violations,
					fmt.Sprintf("t=%d: X_%d == X_%d == %d", t, p, q, fp.X()))
			}
			if rq := e.Register(q); rq.Present && fp.X() == rq.Val.X {
				rec.Violations = append(rec.Violations,
					fmt.Sprintf("t=%d: X_%d == X̂_%d == %d", t, p, q, fp.X()))
			}
			if rp := e.Register(p); rp.Present && fq.X() == rp.Val.X {
				rec.Violations = append(rec.Violations,
					fmt.Sprintf("t=%d: X_%d == X̂_%d == %d", t, q, p, fq.X()))
			}
		}
	}
}

// Err returns an error summarizing violations, or nil if none occurred.
func (rec *FastInvariantRecorder) Err() error {
	if len(rec.Violations) == 0 {
		return nil
	}
	return fmt.Errorf("check: %d identifier-invariant violations; first: %s", len(rec.Violations), rec.Violations[0])
}
