package check_test

import (
	"strings"
	"testing"

	"asynccycle/internal/check"
	"asynccycle/internal/core"
	"asynccycle/internal/graph"
	"asynccycle/internal/schedule"
	"asynccycle/internal/sim"
)

func resultOn(n int, outputs []int, done, crashed []bool, acts []int) sim.Result {
	if done == nil {
		done = make([]bool, n)
		for i := range done {
			done[i] = true
		}
	}
	if crashed == nil {
		crashed = make([]bool, n)
	}
	if acts == nil {
		acts = make([]int, n)
	}
	return sim.Result{Outputs: outputs, Done: done, Crashed: crashed, Activations: acts}
}

func TestProperColoringAccepts(t *testing.T) {
	g := graph.MustCycle(4)
	r := resultOn(4, []int{0, 1, 0, 1}, nil, nil, nil)
	if err := check.ProperColoring(g, r); err != nil {
		t.Error(err)
	}
}

func TestProperColoringRejectsAdjacentEqual(t *testing.T) {
	g := graph.MustCycle(4)
	r := resultOn(4, []int{0, 0, 1, 2}, nil, nil, nil)
	err := check.ProperColoring(g, r)
	if err == nil || !strings.Contains(err.Error(), "improper") {
		t.Errorf("err = %v", err)
	}
}

func TestProperColoringIgnoresNonTerminated(t *testing.T) {
	g := graph.MustCycle(4)
	// Nodes 0 and 1 share a color but node 1 never terminated: no
	// constraint, exactly as the paper's correctness clause states.
	r := resultOn(4, []int{0, 0, 1, 2}, []bool{true, false, true, true}, nil, nil)
	if err := check.ProperColoring(g, r); err != nil {
		t.Error(err)
	}
}

func TestProperColoringSizeMismatch(t *testing.T) {
	g := graph.MustCycle(4)
	if err := check.ProperColoring(g, resultOn(3, []int{0, 1, 2}, nil, nil, nil)); err == nil {
		t.Error("accepted result with wrong process count")
	}
}

func TestPaletteRange(t *testing.T) {
	r := resultOn(3, []int{0, 4, 2}, nil, nil, nil)
	if err := check.PaletteRange(r, 5); err != nil {
		t.Error(err)
	}
	r = resultOn(3, []int{0, 5, 2}, nil, nil, nil)
	if err := check.PaletteRange(r, 5); err == nil {
		t.Error("accepted color 5 in a 5-color palette")
	}
	// Non-terminated processes (output -1) are exempt.
	r = resultOn(3, []int{0, -1, 2}, []bool{true, false, true}, nil, nil)
	if err := check.PaletteRange(r, 5); err != nil {
		t.Error(err)
	}
}

func TestPairPalette(t *testing.T) {
	good := resultOn(3, []int{core.EncodePair(0, 2), core.EncodePair(1, 1), core.EncodePair(2, 0)}, nil, nil, nil)
	if err := check.PairPalette(good, 2); err != nil {
		t.Error(err)
	}
	bad := resultOn(3, []int{core.EncodePair(2, 1), 0, 0}, nil, nil, nil)
	if err := check.PairPalette(bad, 2); err == nil {
		t.Error("accepted pair (2,1) with a+b > 2")
	}
}

func TestActivationBound(t *testing.T) {
	r := resultOn(3, []int{0, 1, 0}, nil, nil, []int{3, 5, 2})
	if err := check.ActivationBound(r, 5); err != nil {
		t.Error(err)
	}
	if err := check.ActivationBound(r, 4); err == nil {
		t.Error("accepted activation count above bound")
	}
}

func TestAllTerminated(t *testing.T) {
	ok := resultOn(2, []int{0, 1}, []bool{true, true}, []bool{false, false}, nil)
	if err := check.AllTerminated(ok); err != nil {
		t.Error(err)
	}
	crashed := resultOn(2, []int{0, -1}, []bool{true, false}, []bool{false, true}, nil)
	if err := check.AllTerminated(crashed); err != nil {
		t.Error("crashed processes should be exempt:", err)
	}
	starved := resultOn(2, []int{0, -1}, []bool{true, false}, []bool{false, false}, nil)
	if err := check.AllTerminated(starved); err == nil {
		t.Error("accepted a starved process")
	}
}

func TestSurvivorsTerminated(t *testing.T) {
	ok := resultOn(2, []int{0, -1}, []bool{true, false}, []bool{false, true}, nil)
	if err := check.SurvivorsTerminated(ok); err != nil {
		t.Error(err)
	}
	bad := resultOn(2, []int{0, -1}, []bool{true, false}, []bool{false, false}, nil)
	if err := check.SurvivorsTerminated(bad); err == nil {
		t.Error("accepted non-terminated survivor")
	}
}

func TestFastInvariantRecorderCleanRun(t *testing.T) {
	g := graph.MustCycle(7)
	xs := []int{3, 9, 14, 2, 11, 5, 8}
	e, err := sim.NewEngine(g, core.NewFastNodes(xs))
	if err != nil {
		t.Fatal(err)
	}
	rec := &check.FastInvariantRecorder{}
	e.AddHook(rec.Hook())
	if _, err := e.Run(schedule.NewRandomOne(3), 10_000); err != nil {
		t.Fatal(err)
	}
	if err := rec.Err(); err != nil {
		t.Error(err)
	}
}

func TestFastInvariantRecorderWrongNodeType(t *testing.T) {
	// Hooked onto Pair nodes (not Fast), the recorder reports a type
	// violation rather than panicking.
	g := graph.MustCycle(3)
	e, err := sim.NewEngine(g, core.NewPairNodes([]int{1, 2, 3}))
	if err != nil {
		t.Fatal(err)
	}
	rec := &check.FastInvariantRecorder{}
	hook := rec.Hook()
	// The hook is typed for FastVal; driving it requires a Fast engine, so
	// instead verify Err formatting directly.
	_ = hook
	rec.Violations = []string{"synthetic"}
	if err := rec.Err(); err == nil || !strings.Contains(err.Error(), "synthetic") {
		t.Errorf("Err() = %v", err)
	}
	_ = e
}
