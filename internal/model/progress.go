package model

import (
	"fmt"
	"sort"
	"strings"

	"asynccycle/internal/sim"
)

// The paper's §1.3 discussion rests on the progress hierarchy of Herlihy
// and Shavit [25]: wait-free ⊋ starvation-free (termination under fair
// schedules) and wait-free ⊋ obstruction-free (termination when running
// solo). This file adds exhaustive analyzers for the two weaker classes,
// so the repository can certify statements like "the identifier-reduction
// component is starvation-free but not wait-free" on bounded instances.

// ObstructionFree checks that from every reachable configuration, every
// working process that runs solo terminates within soloBound of its own
// steps. It returns a counterexample description ("" when the property
// holds) and the exploration report.
func ObstructionFree[V any](root *sim.Engine[V], opt Options, soloBound int) (string, Report) {
	opt = opt.withDefaults()
	x := newExplorer[V](opt)
	counterexample := ""
	x.inv = func(e *sim.Engine[V]) error {
		if counterexample != "" {
			return nil
		}
		for p := 0; p < e.N(); p++ {
			if !e.Working(p) {
				continue
			}
			solo := e.Clone()
			terminated := false
			for step := 0; step < soloBound; step++ {
				solo.Step([]int{p})
				if solo.Done(p) {
					terminated = true
					break
				}
			}
			if !terminated {
				counterexample = fmt.Sprintf(
					"process %d runs solo for %d steps without terminating", p, soloBound)
				return fmt.Errorf("%s", counterexample)
			}
		}
		return nil
	}
	x.dfs(root, 0)
	x.report.HashCollisions = x.visited.hashCollisions() + x.onStack.hashCollisions()
	return counterexample, x.report
}

// stateGraph is the explicit reachable configuration graph used by the
// fair-termination analysis. State identity uses the same compact-
// fingerprint table as the explorer (exact string keys under
// Options.StringFingerprints).
type stateGraph struct {
	ids       *stateTable[int]
	useStr    bool
	edges     [][]edge // adjacency: edges[s] lists transitions out of s
	working   [][]int  // working processes per state
	terminal  []bool
	truncated bool
}

type edge struct {
	to        int
	activated []int
}

// FairlyTerminates checks starvation-freedom over the bounded state
// space: it builds the reachable configuration graph and searches for a
// *fair* non-terminating cycle — a strongly connected component with at
// least one edge in which every process that is working throughout the
// component is activated by some internal edge. Such a component is an
// infinite execution in which every live process keeps taking steps yet
// nobody ever terminates.
//
// It returns "" if no fair livelock exists (the algorithm is
// starvation-free on this instance), or a description of the offending
// component, plus the exploration report.
func FairlyTerminates[V any](root *sim.Engine[V], opt Options) (string, Report) {
	opt = opt.withDefaults()
	g := &stateGraph{
		ids:    newStateTable[int](opt.StringFingerprints),
		useStr: opt.StringFingerprints,
	}
	rep := Report{}
	buildStateGraph(root, opt, g, &rep, 0)
	rep.States = len(g.edges)
	rep.HashCollisions = g.ids.hashCollisions()
	if g.truncated {
		rep.Truncated = true
	}

	for _, scc := range tarjanSCC(g) {
		if desc := fairLivelock(g, scc); desc != "" {
			rep.CycleFound = true
			return desc, rep
		}
	}
	return "", rep
}

func buildStateGraph[V any](e *sim.Engine[V], opt Options, g *stateGraph, rep *Report, depth int) int {
	var k stateKey
	if g.useStr {
		k = stateKey{str: e.Fingerprint()}
	} else {
		h1, h2 := e.FingerprintHash128()
		k = stateKey{h1: h1, h2: h2}
	}
	strFn := func() string { return e.Fingerprint() }
	if id, ok := g.ids.get(k, strFn); ok {
		return id
	}
	id := len(g.edges)
	g.ids.put(k, strFn, id)
	g.edges = append(g.edges, nil)
	g.working = append(g.working, workingSet(e))
	g.terminal = append(g.terminal, e.AllDone())
	if depth > rep.DeepestPath {
		rep.DeepestPath = depth
	}
	if e.AllDone() {
		rep.Terminal++
		return id
	}
	if depth >= opt.MaxDepth || len(g.edges) >= opt.MaxStates {
		g.truncated = true
		return id
	}
	working := g.working[id]
	if len(working) == 0 {
		return id
	}
	for _, subset := range subsets(working, opt.SingletonsOnly) {
		child := e.Clone()
		// Step's result is child-owned scratch; the edge outlives the
		// child, so it keeps a copy.
		performed := append([]int(nil), child.Step(subset)...)
		to := buildStateGraph(child, opt, g, rep, depth+1)
		g.edges[id] = append(g.edges[id], edge{to: to, activated: performed})
	}
	return id
}

// fairLivelock reports whether the given SCC constitutes a fair
// non-terminating execution, returning its description or "".
func fairLivelock(g *stateGraph, scc []int) string {
	inSCC := make(map[int]bool, len(scc))
	for _, s := range scc {
		inSCC[s] = true
	}
	internal := 0
	activated := map[int]bool{}
	for _, s := range scc {
		for _, e := range g.edges[s] {
			if inSCC[e.to] {
				internal++
				for _, p := range e.activated {
					activated[p] = true
				}
			}
		}
	}
	if internal == 0 {
		return "" // trivial SCC: no cycle through it
	}
	// Processes working in *every* state of the component are the ones a
	// fair schedule must keep activating.
	alwaysWorking := map[int]bool{}
	for i, p := range g.working[scc[0]] {
		_ = i
		alwaysWorking[p] = true
	}
	for _, s := range scc[1:] {
		cur := map[int]bool{}
		for _, p := range g.working[s] {
			cur[p] = true
		}
		for p := range alwaysWorking {
			if !cur[p] {
				delete(alwaysWorking, p)
			}
		}
	}
	for p := range alwaysWorking {
		if !activated[p] {
			return "" // p is starved on every internal cycle: unfair
		}
	}
	var procs []int
	for p := range alwaysWorking {
		procs = append(procs, p)
	}
	sort.Ints(procs)
	return fmt.Sprintf("fair livelock: component of %d states keeps processes %s working and active forever",
		len(scc), intsString(procs))
}

func intsString(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprintf("%d", x)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// tarjanSCC computes strongly connected components (iteratively, to spare
// the stack on large graphs).
func tarjanSCC(g *stateGraph) [][]int {
	n := len(g.edges)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	var sccs [][]int
	next := 0

	type frame struct {
		v, ei int
	}
	for start := 0; start < n; start++ {
		if index[start] != -1 {
			continue
		}
		frames := []frame{{v: start}}
		index[start] = next
		low[start] = next
		next++
		stack = append(stack, start)
		onStack[start] = true

		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < len(g.edges[f.v]) {
				w := g.edges[f.v][f.ei].to
				f.ei++
				if index[w] == -1 {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			// Post-order: pop.
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := frames[len(frames)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
			if low[v] == index[v] {
				var scc []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					scc = append(scc, w)
					if w == v {
						break
					}
				}
				sccs = append(sccs, scc)
			}
		}
	}
	return sccs
}
