package model

import (
	"fmt"
	"sort"
	"strings"

	"asynccycle/internal/sim"
)

// The paper's §1.3 discussion rests on the progress hierarchy of Herlihy
// and Shavit [25]: wait-free ⊋ starvation-free (termination under fair
// schedules) and wait-free ⊋ obstruction-free (termination when running
// solo). This file adds exhaustive analyzers for the two weaker classes,
// so the repository can certify statements like "the identifier-reduction
// component is starvation-free but not wait-free" on bounded instances.

// ObstructionFree checks that from every reachable configuration, every
// working process that runs solo terminates within soloBound of its own
// steps. It returns a counterexample description ("" when the property
// holds) and the exploration report.
func ObstructionFree[V any](root *sim.Engine[V], opt Options, soloBound int) (string, Report) {
	opt = opt.withDefaults()
	x := newExplorer[V](opt)
	// Solo-run termination is a rotation-invariant property (the solo
	// clone of position p in one configuration behaves as the solo clone
	// of the rotated position in its rotation image), so checking one
	// orbit representative covers the orbit.
	x.canon = canonApplies(root, opt)
	if x.canon {
		x.report.Symmetry = SymmetryFull
	}
	counterexample := ""
	x.inv = func(e *sim.Engine[V]) error {
		if counterexample != "" {
			return nil
		}
		for p := 0; p < e.N(); p++ {
			if !e.Working(p) {
				continue
			}
			solo := e.Clone()
			terminated := false
			for step := 0; step < soloBound; step++ {
				solo.Step([]int{p})
				if solo.Done(p) {
					terminated = true
					break
				}
			}
			if !terminated {
				counterexample = fmt.Sprintf(
					"process %d runs solo for %d steps without terminating", p, soloBound)
				return fmt.Errorf("%s", counterexample)
			}
		}
		return nil
	}
	x.dfs(root, 0)
	x.report.HashCollisions = x.visited.hashCollisions() + x.onStack.hashCollisions()
	return counterexample, x.report
}

// stateGraph is the explicit reachable configuration graph used by the
// fair-termination analysis. State identity uses the same compact-
// fingerprint table as the explorer (exact string keys under
// Options.StringFingerprints). With canon set, states are rotation orbits:
// working sets and edge activation sets are stored in each state's
// canonical frame, and every edge records the frame shift into its target
// — enough to expand the quotient back into the full rotation closure for
// the fairness analysis (see liftQuotient).
type stateGraph struct {
	ids       *stateTable[int]
	useStr    bool
	canon     bool
	n         int      // processes; frame arithmetic under canon
	edges     [][]edge // adjacency: edges[s] lists transitions out of s
	working   [][]int  // working processes per state (canonical frame under canon)
	orbit     []int    // exact rotation-orbit size per state (canon only)
	terminal  []bool
	truncated bool

	// Legality analysis (stabilization checking only; empty otherwise):
	// legal[s] records whether state s is legitimate, illegalWhy[s] the
	// first violated legitimacy property's message ("" when legal).
	legal      []bool
	illegalWhy []string
}

type edge struct {
	to        int
	activated []int
	// shift is the rotation from the source's canonical frame to the
	// target's: lifted copy (source, t) steps to (target, (t+shift) mod n).
	// Always 0 when the graph is unreduced.
	shift int
}

// rotateSet returns {(p+by) mod n : p ∈ ps}, sorted — frame conversion for
// working/activation sets.
func rotateSet(ps []int, by, n int) []int {
	if len(ps) == 0 {
		return nil
	}
	out := make([]int, len(ps))
	for i, p := range ps {
		out[i] = ((p+by)%n + n) % n
	}
	sort.Ints(out)
	return out
}

// FairlyTerminates checks starvation-freedom over the bounded state
// space: it builds the reachable configuration graph and searches for a
// *fair* non-terminating cycle — a strongly connected component with at
// least one edge in which every process that is working throughout the
// component is activated by some internal edge. Such a component is an
// infinite execution in which every live process keeps taking steps yet
// nobody ever terminates.
//
// It returns "" if no fair livelock exists (the algorithm is
// starvation-free on this instance), or a description of the offending
// component, plus the exploration report.
func FairlyTerminates[V any](root *sim.Engine[V], opt Options) (string, Report) {
	opt = opt.withDefaults()
	g := &stateGraph{
		ids:    newStateTable[int](opt.StringFingerprints),
		useStr: opt.StringFingerprints,
		canon:  canonApplies(root, opt),
		n:      root.N(),
	}
	rep := Report{}
	if g.canon {
		rep.Symmetry = SymmetryFull
	}
	buildStateGraph(root, opt, g, &rep, 0, nil)
	rep.States = len(g.edges)
	rep.HashCollisions = g.ids.hashCollisions()
	if g.truncated {
		rep.Truncated = true
	}
	if g.canon {
		for _, o := range g.orbit {
			rep.WeightedStates += int64(o)
		}
	}

	// Fairness is a property of process identities along infinite runs, so
	// the SCC analysis needs consistent identities across each component:
	// under reduction, expand the quotient into the full rotation closure
	// (cheap integer work, no engine stepping or hashing) and analyze that.
	// Every SCC of the closure lies inside one rotated copy of the
	// reachable graph — copies are successor-closed — so a fair livelock
	// exists in the closure exactly when one exists in the unreduced graph.
	ag := g
	if g.canon {
		ag = liftQuotient(g)
	}
	for _, scc := range tarjanSCC(ag) {
		if desc := fairLivelock(ag, scc); desc != "" {
			rep.CycleFound = true
			return desc, rep
		}
	}
	return "", rep
}

// liftQuotient expands a canonical quotient graph into the explicit
// rotation closure: n copies of every orbit representative, one per frame
// offset t, with working/activation sets rotated into each copy's real
// frame and edges following the recorded frame shifts.
func liftQuotient(g *stateGraph) *stateGraph {
	n := g.n
	q := len(g.edges)
	lift := &stateGraph{
		n:        n,
		edges:    make([][]edge, q*n),
		working:  make([][]int, q*n),
		terminal: make([]bool, q*n),
	}
	for id := 0; id < q; id++ {
		for t := 0; t < n; t++ {
			s := id*n + t
			lift.working[s] = rotateSet(g.working[id], t, n)
			lift.terminal[s] = g.terminal[id]
			for _, ed := range g.edges[id] {
				lift.edges[s] = append(lift.edges[s], edge{
					to:        ed.to*n + (t+ed.shift)%n,
					activated: rotateSet(ed.activated, t, n),
				})
			}
		}
	}
	return lift
}

// buildStateGraph interns e's configuration (or its rotation orbit, under
// canon) and recursively explores its successors. It returns the state id
// and the rotation carrying e into the state's canonical frame (0 when
// unreduced) — callers use the rotation to express edge data frame-
// consistently. A non-nil legal predicate turns on the legality analysis
// (stabilization checking): every interned state records whether it is
// legitimate and, when not, the first violation message. legal must not
// be combined with canon — legitimacy need not be rotation-invariant
// (stabilizing protocols may distinguish a root process).
func buildStateGraph[V any](e *sim.Engine[V], opt Options, g *stateGraph, rep *Report, depth int, legal func(*sim.Engine[V]) error) (int, int) {
	var k stateKey
	rot, orbit := 0, 1
	switch {
	case g.canon && g.useStr:
		var fp string
		fp, rot, orbit = e.CanonicalFingerprintInfo()
		k = stateKey{str: fp}
	case g.canon:
		var h1, h2 uint64
		h1, h2, rot, orbit = e.CanonicalFingerprintHash128()
		k = stateKey{h1: h1, h2: h2}
	case g.useStr:
		k = stateKey{str: e.Fingerprint()}
	default:
		h1, h2 := e.FingerprintHash128()
		k = stateKey{h1: h1, h2: h2}
	}
	strFn := func() string {
		if g.canon {
			return e.CanonicalFingerprint()
		}
		return e.Fingerprint()
	}
	if id, ok := g.ids.get(k, strFn); ok {
		return id, rot
	}
	id := len(g.edges)
	g.ids.put(k, strFn, id)
	working := workingSet(e)
	g.edges = append(g.edges, nil)
	if g.canon {
		// Store the working set in the canonical frame (position j of the
		// canonical frame is process (j+rot) of e, so e's process p sits at
		// canonical position p-rot).
		g.working = append(g.working, rotateSet(working, -rot, g.n))
		g.orbit = append(g.orbit, orbit)
	} else {
		g.working = append(g.working, working)
	}
	g.terminal = append(g.terminal, e.AllDone())
	if legal != nil {
		err := legal(e)
		g.legal = append(g.legal, err == nil)
		why := ""
		if err != nil {
			why = err.Error()
		}
		g.illegalWhy = append(g.illegalWhy, why)
	}
	if depth > rep.DeepestPath {
		rep.DeepestPath = depth
	}
	if e.AllDone() {
		rep.Terminal++
		return id, rot
	}
	if depth >= opt.MaxDepth || len(g.edges) >= opt.MaxStates {
		g.truncated = true
		return id, rot
	}
	if len(working) == 0 {
		return id, rot
	}
	for _, subset := range subsets(working, opt.SingletonsOnly) {
		child := e.Clone()
		// Step's result is child-owned scratch; the edge outlives the
		// child, so it keeps a copy.
		performed := append([]int(nil), child.Step(subset)...)
		to, childRot := buildStateGraph(child, opt, g, rep, depth+1, legal)
		ed := edge{to: to, activated: performed}
		if g.canon {
			ed.activated = rotateSet(performed, -rot, g.n)
			ed.shift = ((childRot-rot)%g.n + g.n) % g.n
		}
		g.edges[id] = append(g.edges[id], ed)
	}
	return id, rot
}

// fairLivelock reports whether the given SCC constitutes a fair
// non-terminating execution, returning its description or "".
func fairLivelock(g *stateGraph, scc []int) string {
	inSCC := make(map[int]bool, len(scc))
	for _, s := range scc {
		inSCC[s] = true
	}
	internal := 0
	activated := map[int]bool{}
	for _, s := range scc {
		for _, e := range g.edges[s] {
			if inSCC[e.to] {
				internal++
				for _, p := range e.activated {
					activated[p] = true
				}
			}
		}
	}
	if internal == 0 {
		return "" // trivial SCC: no cycle through it
	}
	// Processes working in *every* state of the component are the ones a
	// fair schedule must keep activating.
	alwaysWorking := map[int]bool{}
	for i, p := range g.working[scc[0]] {
		_ = i
		alwaysWorking[p] = true
	}
	for _, s := range scc[1:] {
		cur := map[int]bool{}
		for _, p := range g.working[s] {
			cur[p] = true
		}
		for p := range alwaysWorking {
			if !cur[p] {
				delete(alwaysWorking, p)
			}
		}
	}
	for p := range alwaysWorking {
		if !activated[p] {
			return "" // p is starved on every internal cycle: unfair
		}
	}
	var procs []int
	for p := range alwaysWorking {
		procs = append(procs, p)
	}
	sort.Ints(procs)
	return fmt.Sprintf("fair livelock: component of %d states keeps processes %s working and active forever",
		len(scc), intsString(procs))
}

func intsString(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprintf("%d", x)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// tarjanSCC computes strongly connected components (iteratively, to spare
// the stack on large graphs).
func tarjanSCC(g *stateGraph) [][]int {
	n := len(g.edges)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	var sccs [][]int
	next := 0

	type frame struct {
		v, ei int
	}
	for start := 0; start < n; start++ {
		if index[start] != -1 {
			continue
		}
		frames := []frame{{v: start}}
		index[start] = next
		low[start] = next
		next++
		stack = append(stack, start)
		onStack[start] = true

		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < len(g.edges[f.v]) {
				w := g.edges[f.v][f.ei].to
				f.ei++
				if index[w] == -1 {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			// Post-order: pop.
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := frames[len(frames)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
			if low[v] == index[v] {
				var scc []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					scc = append(scc, w)
					if w == v {
						break
					}
				}
				sccs = append(sccs, scc)
			}
		}
	}
	return sccs
}
