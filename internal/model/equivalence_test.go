package model_test

// Differential tests of the two fingerprint schemes (compact 128-bit hash
// vs exact strings) and the two exploration strategies (serial DFS vs the
// parallel first-level frontier): all four combinations must agree on the
// exhaustive facts — state counts, terminal counts, cycle existence — on
// real algorithm instances.

import (
	"testing"

	"asynccycle/internal/core"
	"asynccycle/internal/graph"
	"asynccycle/internal/ids"
	"asynccycle/internal/mis"
	"asynccycle/internal/model"
	"asynccycle/internal/sim"
)

func fiveEngine(t testing.TB, n int) *sim.Engine[core.FiveVal] {
	t.Helper()
	e, err := sim.NewEngine(graph.MustCycle(n), core.NewFiveNodes(ids.MustGenerate(ids.Increasing, n, 0)))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestExploreHashVsStringEquivalence(t *testing.T) {
	for _, n := range []int{3, 4, 5} {
		opt := model.Options{SingletonsOnly: true}
		hashRep := model.Explore(fiveEngine(t, n), opt, nil)
		opt.StringFingerprints = true
		strRep := model.Explore(fiveEngine(t, n), opt, nil)
		if hashRep.States != strRep.States || hashRep.Terminal != strRep.Terminal ||
			hashRep.CycleFound != strRep.CycleFound || hashRep.Truncated != strRep.Truncated ||
			hashRep.DeepestPath != strRep.DeepestPath {
			t.Errorf("C%d: hash %v vs string %v", n, hashRep, strRep)
		}
		if hashRep.HashCollisions != 0 {
			t.Errorf("C%d: %d lane-A collisions on a toy instance", n, hashRep.HashCollisions)
		}
	}
}

func TestExploreWorkersEquivalence(t *testing.T) {
	// DeepestPath is deliberately not compared: workers have private
	// visited sets, so a worker may walk a state via a longer path that the
	// serial DFS had already cut off.
	for _, n := range []int{3, 4, 5} {
		serial := model.Explore(fiveEngine(t, n), model.Options{SingletonsOnly: true}, nil)
		par := model.Explore(fiveEngine(t, n), model.Options{SingletonsOnly: true, Workers: 4}, nil)
		if serial.States != par.States || serial.Terminal != par.Terminal ||
			serial.CycleFound != par.CycleFound || serial.Truncated != par.Truncated {
			t.Errorf("C%d: serial %v vs workers=4 %v", n, serial, par)
		}
	}
}

func TestExploreWorkersViolationDedup(t *testing.T) {
	// Every terminal state violates; the parallel merge must count each
	// violating state once even though several workers reach it.
	inv := func(e *sim.Engine[core.FiveVal]) error {
		if e.AllDone() {
			return errAllDone
		}
		return nil
	}
	opt := model.Options{SingletonsOnly: true, MaxViolations: 1 << 20}
	serial := model.Explore(fiveEngine(t, 4), opt, inv)
	opt.Workers = 4
	par := model.Explore(fiveEngine(t, 4), opt, inv)
	if len(serial.Violations) != serial.Terminal {
		t.Fatalf("serial: %d violations for %d terminal states", len(serial.Violations), serial.Terminal)
	}
	if len(par.Violations) != len(serial.Violations) {
		t.Errorf("workers=4 recorded %d violations, serial %d", len(par.Violations), len(serial.Violations))
	}
	if par.ViolationWitness == nil {
		t.Error("parallel merge dropped the violation witness")
	}
}

var errAllDone = errTerminal{}

type errTerminal struct{}

func (errTerminal) Error() string { return "terminal state reached" }

func TestExploreWorkersFindCycle(t *testing.T) {
	// Greedy MIS livelocks on C3; the parallel frontier must find a cycle
	// too, and its certificate must replay to an actual loop.
	mk := func() *sim.Engine[mis.Val] {
		e, err := sim.NewEngine(graph.MustCycle(3), mis.NewGreedyNodes([]int{0, 1, 2}))
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	serial := model.Explore(mk(), model.Options{SingletonsOnly: true}, nil)
	par := model.Explore(mk(), model.Options{SingletonsOnly: true, Workers: 4}, nil)
	if !serial.CycleFound || !par.CycleFound {
		t.Fatalf("cycle: serial %t, workers=4 %t", serial.CycleFound, par.CycleFound)
	}
	if serial.States != par.States {
		t.Errorf("states: serial %d, workers=4 %d", serial.States, par.States)
	}
	// Replay the parallel certificate: prefix reaches a configuration from
	// which the loop returns to itself.
	e := mk()
	for _, s := range par.CyclePrefix {
		e.Step(s)
	}
	before := e.Fingerprint()
	if len(par.CycleLoop) == 0 {
		t.Fatal("empty cycle loop")
	}
	for _, s := range par.CycleLoop {
		e.Step(s)
	}
	if e.Fingerprint() != before {
		t.Error("cycle certificate does not replay to a loop")
	}
}

func TestWorstActivationsHashVsString(t *testing.T) {
	for _, n := range []int{3, 4} {
		vecH, okH, repH := model.WorstActivations(fiveEngine(t, n), model.Options{SingletonsOnly: true})
		vecS, okS, repS := model.WorstActivations(fiveEngine(t, n), model.Options{SingletonsOnly: true, StringFingerprints: true})
		if okH != okS || repH.States != repS.States {
			t.Fatalf("C%d: hash (ok=%t, %v) vs string (ok=%t, %v)", n, okH, repH, okS, repS)
		}
		for i := range vecH {
			if vecH[i] != vecS[i] {
				t.Errorf("C%d: worst-case vectors differ: %v vs %v", n, vecH, vecS)
				break
			}
		}
	}
}

func TestFairlyTerminatesHashVsString(t *testing.T) {
	mk := func() *sim.Engine[mis.Val] {
		e, err := sim.NewEngine(graph.MustCycle(3), mis.NewGreedyNodes([]int{0, 1, 2}))
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	descH, repH := model.FairlyTerminates(mk(), model.Options{SingletonsOnly: true})
	descS, repS := model.FairlyTerminates(mk(), model.Options{SingletonsOnly: true, StringFingerprints: true})
	if (descH == "") != (descS == "") || repH.States != repS.States {
		t.Errorf("hash (%q, %v) vs string (%q, %v)", descH, repH, descS, repS)
	}
}
