package model

// Differential property test of fpMap against a plain map oracle keyed by
// the state's unique string fingerprint. Real explorations cannot exercise
// the collided-slot lifecycle (a lane-A collision needs ~2^32 states), so
// the keys here are adversarial: a handful of lane-A values shared by many
// states forces every slot through the collision machinery — occupant
// blanking, byStr routing, revival of blanked occupants — under random
// interleavings of put/get/del.

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestFPMapMatchesMapOracle(t *testing.T) {
	type key struct{ h1, h2 uint64 }
	strOf := func(k key) string { return fmt.Sprintf("s%d-%d", k.h1, k.h2) }
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := newFPMap[int]()
		oracle := make(map[string]int)
		// 32 distinct states squeezed onto 4 lane-A values: every slot
		// collides, repeatedly.
		keys := make([]key, 32)
		for i := range keys {
			keys[i] = key{h1: uint64(rng.Intn(4)), h2: uint64(i)}
		}
		const ops = 4000
		for op := 0; op < ops; op++ {
			k := keys[rng.Intn(len(keys))]
			s := strOf(k)
			fn := func() string { return s }
			switch rng.Intn(4) {
			case 0, 1: // insert-heavy mix, like a visited table
				v := rng.Intn(1000)
				m.put(k.h1, k.h2, fn, v)
				oracle[s] = v
			case 2:
				m.del(k.h1, k.h2, fn)
				delete(oracle, s)
			case 3:
				got, ok := m.get(k.h1, k.h2, fn)
				want, wok := oracle[s]
				if ok != wok || got != want {
					t.Fatalf("seed=%d op=%d get(%v): fpMap (%d,%t), oracle (%d,%t)",
						seed, op, k, got, ok, want, wok)
				}
			}
			if m.length() != len(oracle) {
				t.Fatalf("seed=%d op=%d after key %v: length=%d, oracle=%d",
					seed, op, k, m.length(), len(oracle))
			}
		}
		// Final sweep: every key's membership and value agree.
		for _, k := range keys {
			s := strOf(k)
			got, ok := m.get(k.h1, k.h2, func() string { return s })
			want, wok := oracle[s]
			if ok != wok || got != want {
				t.Fatalf("seed=%d final get(%v): fpMap (%d,%t), oracle (%d,%t)",
					seed, k, got, ok, want, wok)
			}
		}
	}
}

// Scripted walk through the blanked-occupant corners the random test may
// only graze: a collided slot whose primary occupant is deleted keeps its
// lane-B identity, must read as absent, and must revive on re-put without
// disturbing the byStr residents of the same slot.
func TestFPMapBlankedOccupantLifecycle(t *testing.T) {
	m := newFPMap[int]()
	sA, sB, sC := strOf("A"), strOf("B"), strOf("C")

	m.put(7, 1, sA, 10) // occupant
	m.put(7, 2, sB, 20) // collides: routed to byStr, slot marked
	if m.collisions != 1 {
		t.Fatalf("collisions=%d, want 1", m.collisions)
	}

	m.del(7, 1, sA) // blanks the occupant, keeps the marker
	if _, ok := m.get(7, 1, sA); ok {
		t.Fatal("blanked occupant still readable")
	}
	if v, ok := m.get(7, 2, sB); !ok || v != 20 {
		t.Fatalf("byStr resident lost after occupant blank: (%d,%t)", v, ok)
	}
	if m.length() != 1 {
		t.Fatalf("length=%d, want 1", m.length())
	}

	// Double-delete of the blanked occupant must be a no-op.
	m.del(7, 1, sA)
	if m.length() != 1 {
		t.Fatalf("double delete drifted length to %d", m.length())
	}

	// A third state on the same lane lands in byStr even while the slot
	// occupant is blanked.
	m.put(7, 3, sC, 30)
	if v, ok := m.get(7, 3, sC); !ok || v != 30 {
		t.Fatalf("third lane resident: (%d,%t)", v, ok)
	}

	// Revive the blanked occupant: same slot, counted once.
	m.put(7, 1, sA, 11)
	if v, ok := m.get(7, 1, sA); !ok || v != 11 {
		t.Fatalf("revived occupant: (%d,%t)", v, ok)
	}
	if m.length() != 3 {
		t.Fatalf("length=%d, want 3", m.length())
	}

	// Tear everything down in a different order than insertion.
	m.del(7, 2, sB)
	m.del(7, 1, sA)
	m.del(7, 3, sC)
	if m.length() != 0 {
		t.Fatalf("length=%d after full teardown, want 0", m.length())
	}
	for h2, s := range map[uint64]func() string{1: sA, 2: sB, 3: sC} {
		if _, ok := m.get(7, h2, s); ok {
			t.Fatalf("state h2=%d readable after teardown", h2)
		}
	}
}
