// Package model is a bounded model checker for the simulation engine: it
// exhaustively explores every schedule of an algorithm on a small instance,
// deduplicating configurations by fingerprint.
//
// Because a crash is just a schedule that stops activating a process, crash
// tolerance does not need separate branches: checking the safety invariant
// at *every* reachable configuration covers every crash pattern (the
// execution in which everyone else crashes "now" ends in exactly that
// configuration).
//
// Wait-freedom is checked two ways. First, a cycle in the reachable
// configuration graph (every transition activates at least one working
// process) is a certificate of an infinite execution in which some process
// takes infinitely many rounds without terminating — i.e. the algorithm is
// not wait-free; Explore detects such cycles. Second, WorstActivations
// computes, by memoized longest-path analysis over the acyclic
// configuration graph, the exact supremum of per-process activation counts
// over all schedules — the paper's running-time measure (§2.2).
package model

import (
	"context"
	"fmt"
	"os"
	"sync/atomic"

	"asynccycle/internal/metrics"
	"asynccycle/internal/ooc"
	"asynccycle/internal/runctl"
	"asynccycle/internal/sim"
)

// Options bound the exploration.
type Options struct {
	// MaxDepth bounds schedule length (steps from the initial
	// configuration). 0 means DefaultMaxDepth.
	MaxDepth int
	// MaxStates bounds the number of distinct configurations explored.
	// 0 means DefaultMaxStates.
	MaxStates int
	// SingletonsOnly restricts σ(t) to single-process activations. The
	// general model allows arbitrary simultaneous sets, but for two-phase
	// write/read rounds the singleton schedules already generate every
	// reachable register interleaving up to observational equivalence on
	// most instances; full subset exploration is the default.
	SingletonsOnly bool
	// MaxViolations caps recorded invariant-violation messages.
	MaxViolations int
	// Workers > 1 makes Explore shard the root's first-level activation
	// subsets across that many workers, each running an independent DFS
	// with a private visited set; the per-worker reports are merged by
	// uniting their state-key sets, so States and Terminal match the serial
	// counts exactly. Workers <= 1 (the default) keeps the serial DFS.
	// In parallel mode MaxStates is one shared budget on the combined
	// states explored across all workers (so a parallel run trips PARTIAL
	// under the same budget a serial run would, instead of exploring up to
	// Workers× the cap), and the order of recorded Violations may differ
	// from the serial order.
	Workers int
	// StringFingerprints forces the exact string-fingerprint state tables
	// used before compact hashing — slower and allocation-heavy, kept for
	// differential testing against the compact 128-bit tables.
	StringFingerprints bool
	// Symmetry selects reduction under the cycle's automorphism group (see
	// symmetry.go): SymmetryOff (default) is byte-identical to the
	// historical checker; SymmetryAssignments reduces sweep-level
	// identifier assignments only; SymmetryFull additionally keys the
	// state tables by canonical (rotation-minimal) fingerprints wherever
	// that is sound — Report.Symmetry records whether it actually engaged.
	Symmetry Symmetry
	// Context, when non-nil, cancels the exploration early: the checker
	// stops claiming new branches (polled every few hundred states, so
	// cancellation lands promptly) and returns the partial Report for the
	// region explored so far, labeled with a StopReason. A nil Context
	// leaves the hot path entirely unaffected.
	Context context.Context
	// Budget adds wall-clock and size bounds on top of the explicit
	// MaxDepth/MaxStates options: Budget.Timeout stops the run after that
	// much wall-clock, and Budget.MaxStates/Budget.MaxSteps tighten
	// MaxStates/MaxDepth when smaller (the smaller positive bound wins).
	Budget runctl.Budget
	// Metrics, when non-nil, receives live progress: States/Terminal
	// counters, FrontierDepth and VisitedSize gauges, HashCollisions. With
	// Workers > 1 every worker publishes into the same sink (counters sum
	// across workers; VisitedSize is the merged figure — total live
	// entries across all worker tables plus the shared root — not a
	// single worker's private table size).
	Metrics *metrics.Run

	// SpillDir, when non-empty, makes Explore's visited set out-of-core:
	// once it outgrows SpillMemLimit resident fingerprints, sorted
	// 128-bit fingerprint runs are spilled to a fresh subdirectory of
	// SpillDir and membership is resolved against the on-disk runs (see
	// internal/ooc). State identity is the full 128-bit fingerprint —
	// exactly the in-RAM compact tables' identity — so States, Terminal,
	// and WeightedStates are bit-identical to an in-RAM run. Ignored
	// under StringFingerprints (exact string tables cannot spill) and
	// with Workers > 1 (the parallel merge keeps key sets in RAM, so
	// spilling the visited probes would not reduce the footprint).
	SpillDir string
	// SpillMemLimit bounds resident visited fingerprints before a spill;
	// <= 0 selects ooc.DefaultMemLimit. Only meaningful with SpillDir.
	SpillMemLimit int

	// ShardIndex/ShardCount split an assignment sweep across processes:
	// with ShardCount > 1, SweepExplore explores only the orbit
	// representatives whose zero-based enumeration index ≡ ShardIndex
	// (mod ShardCount) and reports counts for that shard alone; shard
	// reports over a partition merge exactly via MergeSweepReports.
	ShardIndex int
	ShardCount int

	// SweepResume, when non-nil, resumes an interrupted sweep: every
	// assignment lexicographically ≤ Cursor is skipped (it was completed
	// and is already folded into Totals, which seed the cumulative
	// report). The sweep enumerates assignments deterministically, so a
	// resumed run's final report is bit-identical to an uninterrupted one.
	SweepResume *SweepResume
	// OnOrbitDone, when non-nil, is called after each completed (never
	// after a cancelled or timed-out) per-assignment exploration with the
	// assignment, its orbit weight, the per-run report, and the cumulative
	// sweep report so far — the checkpoint writer's hook. Returning an
	// error aborts the sweep with that error.
	OnOrbitDone func(assignment []int, weight int, run Report, cum SweepReport) error
}

// SweepResume carries the completed prefix of an interrupted sweep: the
// last completed assignment in lexicographic order and the cumulative
// totals over all completed assignments (cmd/modelcheck persists both via
// internal/ooc checkpoints).
type SweepResume struct {
	Cursor []int
	Totals SweepReport
}

// DefaultMaxDepth and DefaultMaxStates are generous bounds for n ≤ 5.
const (
	DefaultMaxDepth      = 256
	DefaultMaxStates     = 2_000_000
	defaultMaxViolations = 8
)

func (o Options) withDefaults() Options {
	if o.MaxDepth <= 0 {
		o.MaxDepth = DefaultMaxDepth
	}
	if o.MaxStates <= 0 {
		o.MaxStates = DefaultMaxStates
	}
	if o.MaxViolations <= 0 {
		o.MaxViolations = defaultMaxViolations
	}
	// Budget bounds tighten the explicit options: smaller positive wins.
	o.MaxDepth = runctl.Min(o.MaxDepth, o.Budget.MaxSteps)
	o.MaxStates = runctl.Min(o.MaxStates, o.Budget.MaxStates)
	return o
}

// withTimeout folds Budget.Timeout into Options.Context so every layer
// (serial DFS, parallel workers, longest-path analysis) watches a single
// shared deadline. The returned cancel must be called to release the timer.
func (o Options) withTimeout() (Options, context.CancelFunc) {
	if o.Budget.Timeout <= 0 {
		return o, func() {}
	}
	ctx := o.Context
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithTimeout(ctx, o.Budget.Timeout)
	o.Context = ctx
	o.Budget.Timeout = 0
	return o, cancel
}

// Report summarizes an exploration.
type Report struct {
	// States is the number of distinct configurations visited. Under
	// within-run symmetry reduction (Symmetry == SymmetryFull) a
	// "configuration" is a rotation orbit, so States counts orbit
	// representatives; WeightedStates then recovers the unreduced total.
	States int
	// WeightedStates is the sum of exact rotation-orbit sizes over the
	// visited orbit representatives — the number of raw configurations in
	// the union of all rotated copies of the reachable set. Zero unless
	// Symmetry == SymmetryFull (keeping unreduced reports byte-identical).
	WeightedStates int64
	// Symmetry records the within-run reduction actually applied:
	// SymmetryFull only when requested *and* sound for the instance
	// (standard cycle; singleton sets or simultaneous mode), SymmetryOff
	// otherwise.
	Symmetry Symmetry
	// Terminal counts configurations in which every process terminated
	// (orbit representatives thereof under SymmetryFull).
	Terminal int
	// Truncated reports whether a depth or state bound cut exploration
	// short (results are then lower bounds, not exhaustive).
	Truncated bool
	// CycleFound reports whether a schedule loop was found along which
	// working processes are activated without terminating — a certificate
	// that the algorithm is not wait-free on this instance.
	CycleFound bool
	// CyclePrefix and CycleLoop, when CycleFound, form a concrete
	// replayable certificate: playing CyclePrefix from the initial
	// configuration reaches a configuration from which CycleLoop returns
	// to itself — repeating CycleLoop forever is an infinite execution
	// with working processes activated at every step. Under SymmetryFull
	// the loop returns to a *rotation* of its start (a quotient
	// certificate); iterating the loop with its activation sets rotated by
	// the accumulated shift each round still realizes an infinite
	// execution, and CycleFound itself agrees exactly with the unreduced
	// checker's verdict.
	CyclePrefix [][]int
	CycleLoop   [][]int
	// Violations holds the first few invariant-violation messages.
	Violations []string
	// ViolationWitness is the schedule reaching the first recorded
	// violation's configuration from the initial one.
	ViolationWitness [][]int
	// DeepestPath is the longest schedule explored (in steps).
	DeepestPath int
	// HashCollisions counts lane-A collisions of the compact-fingerprint
	// tables, each detected by the second hash lane and resolved exactly
	// through the full-string fallback (see fpset.go). Expected to be 0 on
	// every realistic instance; always 0 with Options.StringFingerprints.
	HashCollisions int
	// Partial reports that the run stopped before exhausting the schedule
	// space — a budget tripped or the context was cancelled. All counts
	// then cover exactly the explored region (never garbage, never silent
	// truncation) and are lower bounds on the true values.
	Partial bool
	// StopReason labels why a Partial run stopped (runctl.StopCancelled,
	// StopTimeout, StopMaxStates, StopMaxDepth, ...); empty when the run
	// completed.
	StopReason runctl.StopReason
}

// Ok reports whether the exploration was exhaustive and found neither
// invariant violations nor non-termination cycles.
func (r Report) Ok() bool {
	return !r.Truncated && !r.Partial && !r.CycleFound && len(r.Violations) == 0
}

// noteStop records the first stop reason and marks the report partial.
func (r *Report) noteStop(reason runctl.StopReason) {
	r.Partial = true
	if r.StopReason == runctl.StopNone {
		r.StopReason = reason
	}
}

// String renders a one-line summary. Partial runs carry an explicit
// marker; complete runs render exactly as before budgets existed, keeping
// recorded outputs byte-identical.
func (r Report) String() string {
	s := fmt.Sprintf("states=%d terminal=%d cycle=%t violations=%d truncated=%t deepest=%d",
		r.States, r.Terminal, r.CycleFound, len(r.Violations), r.Truncated, r.DeepestPath)
	if r.Symmetry == SymmetryFull {
		s += fmt.Sprintf(" symmetry=full weighted=%d", r.WeightedStates)
	}
	if r.Partial {
		s += fmt.Sprintf(" [PARTIAL: %s]", r.StopReason)
	}
	return s
}

// Invariant is a per-configuration safety check; return a non-nil error to
// record a violation. It must not mutate the engine.
type Invariant[V any] func(e *sim.Engine[V]) error

type explorer[V any] struct {
	opt       Options
	inv       Invariant[V]
	canon     bool // key states by canonical (rotation-minimal) fingerprint
	visited   *stateTable[struct{}]
	onStack   *stateTable[struct{}]
	path      [][]int    // activation sets from the root to the current state
	pathFPs   []stateKey // keys of the states along the path
	report    Report
	interrupt bool             // context/deadline tripped: unwind without exploring
	ck        *runctl.Checker  // nil when un-budgeted (zero polling cost)
	met       *metrics.Run     // nil when observability is off
	free      []*sim.Engine[V] // discarded branch engines, recycled by CloneInto

	// spill, when non-nil, replaces the in-RAM visited table with the
	// out-of-core fingerprint set (Options.SpillDir); spillDir is the
	// per-explorer scratch directory removed on teardown. onStack stays
	// in RAM: it is bounded by the path depth, not the state space.
	spill    *ooc.Set
	spillDir string

	// sharedStates, when non-nil, is the run-wide explored-state counter
	// the parallel frontier shares across workers so MaxStates is one
	// budget for the whole run (serial exploration leaves it nil and
	// budgets its own report.States). sharedVisited likewise accumulates
	// total visited-table entries across workers for the VisitedSize
	// gauge — the merged figure, not a per-worker table size.
	sharedStates  *atomic.Int64
	sharedVisited *atomic.Int64

	// Key collection, enabled only by the parallel frontier so worker
	// reports can be merged by set union (see parallel.go). The mapped
	// value is the state's exact rotation-orbit size (always 1 when canon
	// is off), so the merged WeightedStates stays exact under unions.
	collectKeys  bool
	keys         map[stateKey]int
	terminalKeys map[stateKey]struct{}
	vioKeys      []stateKey // state key of each recorded violation, aligned with report.Violations
}

func newExplorer[V any](opt Options) *explorer[V] {
	return &explorer[V]{
		opt:     opt.withDefaults(),
		visited: newStateTable[struct{}](opt.StringFingerprints),
		onStack: newStateTable[struct{}](opt.StringFingerprints),
		ck:      runctl.NewChecker(opt.Context, opt.Budget.Timeout),
		met:     opt.Metrics,
	}
}

// key computes the configuration's identity under the chosen fingerprint
// scheme. Note FingerprintHash128 uses engine-owned scratch: never key a
// shared engine from concurrent workers.
func (x *explorer[V]) key(e *sim.Engine[V]) stateKey {
	if x.opt.StringFingerprints {
		return stateKey{str: e.Fingerprint()}
	}
	h1, h2 := e.FingerprintHash128()
	return stateKey{h1: h1, h2: h2}
}

// keyOrbit is key plus the state's exact rotation-orbit size; with canon
// set the key is the canonical (rotation-minimal) fingerprint, so every
// rotationally equivalent configuration lands on the same table slot.
func (x *explorer[V]) keyOrbit(e *sim.Engine[V]) (stateKey, int) {
	if !x.canon {
		return x.key(e), 1
	}
	if x.opt.StringFingerprints {
		fp, _, orbit := e.CanonicalFingerprintInfo()
		return stateKey{str: fp}, orbit
	}
	h1, h2, _, orbit := e.CanonicalFingerprintHash128()
	return stateKey{h1: h1, h2: h2}, orbit
}

// strFnFor returns the collision-resolution string matching the keying
// scheme: canonical under canon, plain otherwise.
func (x *explorer[V]) strFnFor(e *sim.Engine[V]) func() string {
	if x.canon {
		return func() string { return e.CanonicalFingerprint() }
	}
	return func() string { return e.Fingerprint() }
}

// clone copies e, recycling a previously released engine when available.
func (x *explorer[V]) clone(e *sim.Engine[V]) *sim.Engine[V] {
	if n := len(x.free); n > 0 {
		dst := x.free[n-1]
		x.free = x.free[:n-1]
		return e.CloneInto(dst)
	}
	return e.Clone()
}

func (x *explorer[V]) release(e *sim.Engine[V]) { x.free = append(x.free, e) }

// visitedSize is the figure the VisitedSize gauge publishes for the state
// just inserted: the run-wide total across all workers when the parallel
// frontier shares a counter, the spilled set's cardinality when out of
// core, this explorer's own table size otherwise. Called once per visited
// insertion.
func (x *explorer[V]) visitedSize() int64 {
	if x.sharedVisited != nil {
		return x.sharedVisited.Add(1)
	}
	if x.spill != nil {
		return x.spill.Len()
	}
	return int64(x.visited.length())
}

// copySteps deep-copies a schedule fragment.
func copySteps(steps [][]int) [][]int {
	out := make([][]int, len(steps))
	for i, s := range steps {
		out[i] = append([]int(nil), s...)
	}
	return out
}

// Explore exhaustively runs every schedule of the given initial engine
// within the option bounds, checking inv (which may be nil) at every
// reachable configuration, including the initial one.
//
// When opt.Context is cancelled or a Budget axis trips, Explore stops
// promptly and returns a partial Report (Partial true, StopReason set)
// whose counts cover exactly the states visited so far — always a
// prefix-consistent subset of the full exploration.
func Explore[V any](root *sim.Engine[V], opt Options, inv Invariant[V]) Report {
	opt = opt.withDefaults()
	opt, cancel := opt.withTimeout()
	defer cancel()
	if opt.Workers > 1 {
		return exploreParallel(root, opt, inv)
	}
	x := newExplorer[V](opt)
	x.inv = inv
	x.canon = canonApplies(root, opt)
	if x.canon {
		x.report.Symmetry = SymmetryFull
	}
	if opt.SpillDir != "" && !opt.StringFingerprints {
		dir, err := os.MkdirTemp(opt.SpillDir, "spill-")
		if err == nil {
			var s *ooc.Set
			if s, err = ooc.NewSet(dir, opt.SpillMemLimit); err == nil {
				x.spill, x.spillDir = s, dir
			} else {
				os.RemoveAll(dir)
			}
		}
		if err != nil {
			// Out-of-core storage unavailable: refuse rather than silently
			// falling back to an in-RAM table the caller asked to bound.
			x.report.Truncated = true
			x.report.noteStop(runctl.StopIO)
			return x.report
		}
	}
	x.dfs(root, 0)
	if x.spill != nil {
		x.spill.Close()
		os.RemoveAll(x.spillDir)
	}
	x.report.HashCollisions = x.visited.hashCollisions() + x.onStack.hashCollisions()
	if x.met != nil {
		x.met.HashCollisions.Add(int64(x.report.HashCollisions))
	}
	return x.report
}

func (x *explorer[V]) dfs(e *sim.Engine[V], depth int) {
	if x.interrupt {
		return
	}
	if reason, stop := x.ck.Check(); stop {
		// Context cancelled or deadline passed: unwind the whole stack
		// without claiming further states; everything counted so far stays.
		x.interrupt = true
		x.report.Truncated = true
		x.report.noteStop(reason)
		return
	}
	if depth > x.report.DeepestPath {
		x.report.DeepestPath = depth
	}
	k, orbit := x.keyOrbit(e)
	strFn := x.strFnFor(e)
	if _, on := x.onStack.get(k, strFn); on {
		if !x.report.CycleFound {
			x.report.CycleFound = true
			// The repeated state sits somewhere along the current path;
			// everything before it is the prefix, the rest is the loop.
			start := 0
			for i, pk := range x.pathFPs {
				if pk == k {
					start = i
					break
				}
			}
			x.report.CyclePrefix = copySteps(x.path[:start])
			x.report.CycleLoop = copySteps(x.path[start:])
		}
		return
	}
	if x.spill != nil {
		added, err := x.spill.Add(k.h1, k.h2)
		if err != nil {
			// The on-disk visited set is gone; membership answers from here
			// on would be undefined, so unwind everything counted so far.
			x.interrupt = true
			x.report.Truncated = true
			x.report.noteStop(runctl.StopIO)
			return
		}
		if !added {
			return
		}
	} else {
		if _, seen := x.visited.get(k, strFn); seen {
			return
		}
		x.visited.put(k, strFn, struct{}{})
	}
	x.report.States++
	// budgetStates is the count the MaxStates budget below trips on: the
	// run-wide total when workers share one budget, this explorer's own
	// count otherwise.
	budgetStates := x.report.States
	if x.sharedStates != nil {
		budgetStates = int(x.sharedStates.Add(1))
	}
	if x.canon {
		x.report.WeightedStates += int64(orbit)
	}
	if x.collectKeys {
		x.keys[k] = orbit
	}
	if x.met != nil {
		x.met.States.Inc()
		x.met.FrontierDepth.SetMax(int64(depth))
		x.met.VisitedSize.SetMax(x.visitedSize())
	}
	if x.inv != nil {
		if err := x.inv(e); err != nil {
			if len(x.report.Violations) == 0 {
				x.report.ViolationWitness = copySteps(x.path)
			}
			if len(x.report.Violations) < x.opt.MaxViolations {
				x.report.Violations = append(x.report.Violations, err.Error())
				if x.collectKeys {
					x.vioKeys = append(x.vioKeys, k)
				}
			}
		}
	}
	if e.AllDone() {
		x.report.Terminal++
		if x.met != nil {
			x.met.Terminal.Inc()
		}
		if x.collectKeys {
			x.terminalKeys[k] = struct{}{}
		}
		return
	}
	if depth >= x.opt.MaxDepth {
		// Prune this branch but keep exploring siblings: depth bounds are a
		// per-path horizon, not a global stop.
		x.report.Truncated = true
		x.report.noteStop(runctl.StopMaxDepth)
		return
	}
	if budgetStates >= x.opt.MaxStates {
		x.report.Truncated = true
		x.report.noteStop(runctl.StopMaxStates)
		return
	}

	working := workingSet(e)
	if len(working) == 0 {
		// All remaining processes crashed: nothing can evolve.
		return
	}
	x.onStack.put(k, strFn, struct{}{})
	x.pathFPs = append(x.pathFPs, k)
	for _, subset := range subsets(working, x.opt.SingletonsOnly) {
		child := x.clone(e)
		child.Step(subset)
		x.path = append(x.path, subset)
		x.dfs(child, depth+1)
		x.release(child)
		x.path = x.path[:len(x.path)-1]
		if x.interrupt {
			break
		}
	}
	x.pathFPs = x.pathFPs[:len(x.pathFPs)-1]
	x.onStack.del(k, strFn)
}

// WorstActivations computes, for each process, the exact maximum number of
// rounds it can be made to perform over *all* schedules before it
// terminates — the per-process round complexity. The boolean result is
// false when the analysis was inconclusive (a cycle makes some supremum
// infinite, or bounds truncated the exploration); the report describes why.
func WorstActivations[V any](root *sim.Engine[V], opt Options) ([]int, bool, Report) {
	opt = opt.withDefaults()
	opt, cancel := opt.withTimeout()
	defer cancel()
	w := &worst[V]{
		opt:  opt,
		memo: newStateTable[[]int](opt.StringFingerprints),
		onSt: newStateTable[struct{}](opt.StringFingerprints),
		zero: make([]int, root.N()),
		ck:   runctl.NewChecker(opt.Context, opt.Budget.Timeout),
		met:  opt.Metrics,
	}
	w.canon = canonApplies(root, opt)
	if w.canon {
		w.report.Symmetry = SymmetryFull
		w.rotBuf = make([]int, root.N())
	}
	vec := w.dfs(root, 0)
	if w.canon && vec != nil {
		vec = append([]int(nil), vec...) // may alias the rotation scratch
	}
	w.report.HashCollisions = w.memo.hashCollisions() + w.onSt.hashCollisions()
	ok := !w.report.CycleFound && !w.report.Truncated && !w.report.Partial
	return vec, ok, w.report
}

type worst[V any] struct {
	opt       Options
	canon     bool // key states by canonical rotation-minimal fingerprint
	memo      *stateTable[[]int]
	onSt      *stateTable[struct{}]
	report    Report
	zero      []int // shared all-zeros vector; callers must not mutate results
	rotBuf    []int // scratch for rotating memo vectors back into query frames
	free      []*sim.Engine[V]
	interrupt bool
	ck        *runctl.Checker
	met       *metrics.Run
}

func (w *worst[V]) key(e *sim.Engine[V]) stateKey {
	if w.opt.StringFingerprints {
		return stateKey{str: e.Fingerprint()}
	}
	h1, h2 := e.FingerprintHash128()
	return stateKey{h1: h1, h2: h2}
}

// keyRot is key plus the rotation carrying this configuration into its
// canonical frame (canonical-frame position j holds process (j+rot) mod n
// of e) and the exact rotation-orbit size. Memo vectors are stored in the
// canonical frame and rotated back into each query's own frame on
// retrieval, so rotationally equivalent configurations share one memo
// entry yet every caller sees its own process indexing.
func (w *worst[V]) keyRot(e *sim.Engine[V]) (stateKey, int, int) {
	if !w.canon {
		return w.key(e), 0, 1
	}
	if w.opt.StringFingerprints {
		fp, rot, orbit := e.CanonicalFingerprintInfo()
		return stateKey{str: fp}, rot, orbit
	}
	h1, h2, rot, orbit := e.CanonicalFingerprintHash128()
	return stateKey{h1: h1, h2: h2}, rot, orbit
}

// strFnFor mirrors explorer.strFnFor for the worst-case tables.
func (w *worst[V]) strFnFor(e *sim.Engine[V]) func() string {
	if w.canon {
		return func() string { return e.CanonicalFingerprint() }
	}
	return func() string { return e.Fingerprint() }
}

// toCanon returns vec re-indexed into the canonical frame (freshly
// allocated when a rotation is needed — the memo owns its vectors).
func (w *worst[V]) toCanon(vec []int, rot int) []int {
	if rot == 0 {
		return vec
	}
	n := len(vec)
	out := make([]int, n)
	for j := 0; j < n; j++ {
		out[j] = vec[(j+rot)%n]
	}
	return out
}

// fromCanon returns the canonical-frame vector v re-indexed into the frame
// of a query with rotation rot. The result may alias w.rotBuf, which stays
// valid until the next fromCanon call — callers consume it before
// recursing.
func (w *worst[V]) fromCanon(v []int, rot int) []int {
	if rot == 0 {
		return v
	}
	n := len(v)
	for i := 0; i < n; i++ {
		w.rotBuf[i] = v[((i-rot)%n+n)%n]
	}
	return w.rotBuf
}

func (w *worst[V]) clone(e *sim.Engine[V]) *sim.Engine[V] {
	if n := len(w.free); n > 0 {
		dst := w.free[n-1]
		w.free = w.free[:n-1]
		return e.CloneInto(dst)
	}
	return e.Clone()
}

func (w *worst[V]) dfs(e *sim.Engine[V], depth int) []int {
	n := e.N()
	if w.interrupt {
		return w.zero
	}
	if reason, stop := w.ck.Check(); stop {
		// An interrupted longest-path analysis cannot certify any supremum:
		// mark the run partial and let every frame unwind with zeros.
		w.interrupt = true
		w.report.Truncated = true
		w.report.noteStop(reason)
		return w.zero
	}
	if depth > w.report.DeepestPath {
		w.report.DeepestPath = depth
	}
	k, rot, orbit := w.keyRot(e)
	strFn := w.strFnFor(e)
	if _, on := w.onSt.get(k, strFn); on {
		w.report.CycleFound = true
		return w.zero
	}
	if v, ok := w.memo.get(k, strFn); ok {
		return w.fromCanon(v, rot)
	}
	if e.AllDone() {
		w.report.Terminal++
		w.memo.put(k, strFn, w.zero)
		if w.canon {
			w.report.WeightedStates += int64(orbit)
		}
		if w.met != nil {
			w.met.States.Inc()
			w.met.Terminal.Inc()
		}
		return w.zero
	}
	if depth >= w.opt.MaxDepth {
		w.report.Truncated = true
		w.report.noteStop(runctl.StopMaxDepth)
		return w.zero
	}
	if w.memo.length() >= w.opt.MaxStates {
		w.report.Truncated = true
		w.report.noteStop(runctl.StopMaxStates)
		return w.zero
	}
	working := workingSet(e)
	if len(working) == 0 {
		w.memo.put(k, strFn, w.zero)
		if w.canon {
			w.report.WeightedStates += int64(orbit)
		}
		return w.zero
	}
	w.onSt.put(k, strFn, struct{}{})
	best := make([]int, n)
	for _, subset := range subsets(working, w.opt.SingletonsOnly) {
		child := w.clone(e)
		// performed is child's scratch, valid here because child takes no
		// further step of its own (the recursion steps fresh clones).
		performed := child.Step(subset)
		sub := w.dfs(child, depth+1)
		for p := 0; p < n; p++ {
			total := sub[p]
			for _, q := range performed {
				if q == p {
					total++
					break
				}
			}
			if total > best[p] {
				best[p] = total
			}
		}
		w.free = append(w.free, child)
		if w.interrupt {
			break
		}
	}
	w.onSt.del(k, strFn)
	w.memo.put(k, strFn, w.toCanon(best, rot))
	if w.canon {
		w.report.WeightedStates += int64(orbit)
	}
	w.report.States = w.memo.length()
	if w.met != nil {
		w.met.States.Inc()
		w.met.FrontierDepth.SetMax(int64(depth))
		w.met.VisitedSize.SetMax(int64(w.memo.length()))
	}
	return best
}

// workingSet lists the processes still eligible for activation.
func workingSet[V any](e *sim.Engine[V]) []int {
	var out []int
	for i := 0; i < e.N(); i++ {
		if e.Working(i) {
			out = append(out, i)
		}
	}
	return out
}

// subsets enumerates the allowed activation sets over the working
// processes: all non-empty subsets, or singletons only.
func subsets(working []int, singletonsOnly bool) [][]int {
	if singletonsOnly {
		out := make([][]int, len(working))
		for i, p := range working {
			out[i] = []int{p}
		}
		return out
	}
	w := len(working)
	out := make([][]int, 0, (1<<w)-1)
	for mask := 1; mask < 1<<w; mask++ {
		var set []int
		for i := 0; i < w; i++ {
			if mask&(1<<i) != 0 {
				set = append(set, working[i])
			}
		}
		out = append(out, set)
	}
	return out
}
