// Package model is a bounded model checker for the simulation engine: it
// exhaustively explores every schedule of an algorithm on a small instance,
// deduplicating configurations by fingerprint.
//
// Because a crash is just a schedule that stops activating a process, crash
// tolerance does not need separate branches: checking the safety invariant
// at *every* reachable configuration covers every crash pattern (the
// execution in which everyone else crashes "now" ends in exactly that
// configuration).
//
// Wait-freedom is checked two ways. First, a cycle in the reachable
// configuration graph (every transition activates at least one working
// process) is a certificate of an infinite execution in which some process
// takes infinitely many rounds without terminating — i.e. the algorithm is
// not wait-free; Explore detects such cycles. Second, WorstActivations
// computes, by memoized longest-path analysis over the acyclic
// configuration graph, the exact supremum of per-process activation counts
// over all schedules — the paper's running-time measure (§2.2).
package model

import (
	"fmt"

	"asynccycle/internal/sim"
)

// Options bound the exploration.
type Options struct {
	// MaxDepth bounds schedule length (steps from the initial
	// configuration). 0 means DefaultMaxDepth.
	MaxDepth int
	// MaxStates bounds the number of distinct configurations explored.
	// 0 means DefaultMaxStates.
	MaxStates int
	// SingletonsOnly restricts σ(t) to single-process activations. The
	// general model allows arbitrary simultaneous sets, but for two-phase
	// write/read rounds the singleton schedules already generate every
	// reachable register interleaving up to observational equivalence on
	// most instances; full subset exploration is the default.
	SingletonsOnly bool
	// MaxViolations caps recorded invariant-violation messages.
	MaxViolations int
}

// DefaultMaxDepth and DefaultMaxStates are generous bounds for n ≤ 5.
const (
	DefaultMaxDepth      = 256
	DefaultMaxStates     = 2_000_000
	defaultMaxViolations = 8
)

func (o Options) withDefaults() Options {
	if o.MaxDepth <= 0 {
		o.MaxDepth = DefaultMaxDepth
	}
	if o.MaxStates <= 0 {
		o.MaxStates = DefaultMaxStates
	}
	if o.MaxViolations <= 0 {
		o.MaxViolations = defaultMaxViolations
	}
	return o
}

// Report summarizes an exploration.
type Report struct {
	// States is the number of distinct configurations visited.
	States int
	// Terminal counts configurations in which every process terminated.
	Terminal int
	// Truncated reports whether a depth or state bound cut exploration
	// short (results are then lower bounds, not exhaustive).
	Truncated bool
	// CycleFound reports whether a schedule loop was found along which
	// working processes are activated without terminating — a certificate
	// that the algorithm is not wait-free on this instance.
	CycleFound bool
	// CyclePrefix and CycleLoop, when CycleFound, form a concrete
	// replayable certificate: playing CyclePrefix from the initial
	// configuration reaches a configuration from which CycleLoop returns
	// to itself — repeating CycleLoop forever is an infinite execution
	// with working processes activated at every step.
	CyclePrefix [][]int
	CycleLoop   [][]int
	// Violations holds the first few invariant-violation messages.
	Violations []string
	// ViolationWitness is the schedule reaching the first recorded
	// violation's configuration from the initial one.
	ViolationWitness [][]int
	// DeepestPath is the longest schedule explored (in steps).
	DeepestPath int
}

// Ok reports whether the exploration was exhaustive and found neither
// invariant violations nor non-termination cycles.
func (r Report) Ok() bool {
	return !r.Truncated && !r.CycleFound && len(r.Violations) == 0
}

// String renders a one-line summary.
func (r Report) String() string {
	return fmt.Sprintf("states=%d terminal=%d cycle=%t violations=%d truncated=%t deepest=%d",
		r.States, r.Terminal, r.CycleFound, len(r.Violations), r.Truncated, r.DeepestPath)
}

// Invariant is a per-configuration safety check; return a non-nil error to
// record a violation. It must not mutate the engine.
type Invariant[V any] func(e *sim.Engine[V]) error

type explorer[V any] struct {
	opt       Options
	inv       Invariant[V]
	visited   map[string]bool
	onStack   map[string]bool
	path      [][]int  // activation sets from the root to the current state
	pathFPs   []string // fingerprints of the states along the path
	report    Report
	interrupt bool
}

// copySteps deep-copies a schedule fragment.
func copySteps(steps [][]int) [][]int {
	out := make([][]int, len(steps))
	for i, s := range steps {
		out[i] = append([]int(nil), s...)
	}
	return out
}

// Explore exhaustively runs every schedule of the given initial engine
// within the option bounds, checking inv (which may be nil) at every
// reachable configuration, including the initial one.
func Explore[V any](root *sim.Engine[V], opt Options, inv Invariant[V]) Report {
	x := &explorer[V]{
		opt:     opt.withDefaults(),
		inv:     inv,
		visited: make(map[string]bool),
		onStack: make(map[string]bool),
	}
	x.dfs(root, 0)
	return x.report
}

func (x *explorer[V]) dfs(e *sim.Engine[V], depth int) {
	if x.interrupt {
		return
	}
	if depth > x.report.DeepestPath {
		x.report.DeepestPath = depth
	}
	fp := e.Fingerprint()
	if x.onStack[fp] {
		if !x.report.CycleFound {
			x.report.CycleFound = true
			// The repeated state sits somewhere along the current path;
			// everything before it is the prefix, the rest is the loop.
			start := 0
			for i, pfp := range x.pathFPs {
				if pfp == fp {
					start = i
					break
				}
			}
			x.report.CyclePrefix = copySteps(x.path[:start])
			x.report.CycleLoop = copySteps(x.path[start:])
		}
		return
	}
	if x.visited[fp] {
		return
	}
	x.visited[fp] = true // counted once, re-marked done below
	x.report.States++
	if x.inv != nil {
		if err := x.inv(e); err != nil {
			if len(x.report.Violations) == 0 {
				x.report.ViolationWitness = copySteps(x.path)
			}
			if len(x.report.Violations) < x.opt.MaxViolations {
				x.report.Violations = append(x.report.Violations, err.Error())
			}
		}
	}
	if e.AllDone() {
		x.report.Terminal++
		return
	}
	if depth >= x.opt.MaxDepth || x.report.States >= x.opt.MaxStates {
		x.report.Truncated = true
		return
	}

	working := workingSet(e)
	if len(working) == 0 {
		// All remaining processes crashed: nothing can evolve.
		return
	}
	x.onStack[fp] = true
	x.pathFPs = append(x.pathFPs, fp)
	for _, subset := range subsets(working, x.opt.SingletonsOnly) {
		child := e.Clone()
		child.Step(subset)
		x.path = append(x.path, subset)
		x.dfs(child, depth+1)
		x.path = x.path[:len(x.path)-1]
		if x.interrupt {
			break
		}
	}
	x.pathFPs = x.pathFPs[:len(x.pathFPs)-1]
	delete(x.onStack, fp)
}

// WorstActivations computes, for each process, the exact maximum number of
// rounds it can be made to perform over *all* schedules before it
// terminates — the per-process round complexity. The boolean result is
// false when the analysis was inconclusive (a cycle makes some supremum
// infinite, or bounds truncated the exploration); the report describes why.
func WorstActivations[V any](root *sim.Engine[V], opt Options) ([]int, bool, Report) {
	opt = opt.withDefaults()
	w := &worst[V]{
		opt:  opt,
		memo: make(map[string][]int),
		onSt: make(map[string]bool),
	}
	vec := w.dfs(root, 0)
	ok := !w.report.CycleFound && !w.report.Truncated
	return vec, ok, w.report
}

type worst[V any] struct {
	opt    Options
	memo   map[string][]int
	onSt   map[string]bool
	report Report
}

func (w *worst[V]) dfs(e *sim.Engine[V], depth int) []int {
	n := e.N()
	zero := make([]int, n)
	if depth > w.report.DeepestPath {
		w.report.DeepestPath = depth
	}
	fp := e.Fingerprint()
	if w.onSt[fp] {
		w.report.CycleFound = true
		return zero
	}
	if v, ok := w.memo[fp]; ok {
		return v
	}
	if e.AllDone() {
		w.report.Terminal++
		w.memo[fp] = zero
		return zero
	}
	if depth >= w.opt.MaxDepth || len(w.memo) >= w.opt.MaxStates {
		w.report.Truncated = true
		return zero
	}
	working := workingSet(e)
	if len(working) == 0 {
		w.memo[fp] = zero
		return zero
	}
	w.onSt[fp] = true
	best := make([]int, n)
	for _, subset := range subsets(working, w.opt.SingletonsOnly) {
		child := e.Clone()
		performed := child.Step(subset)
		sub := w.dfs(child, depth+1)
		for p := 0; p < n; p++ {
			total := sub[p]
			for _, q := range performed {
				if q == p {
					total++
					break
				}
			}
			if total > best[p] {
				best[p] = total
			}
		}
	}
	delete(w.onSt, fp)
	w.memo[fp] = best
	w.report.States = len(w.memo)
	return best
}

// workingSet lists the processes still eligible for activation.
func workingSet[V any](e *sim.Engine[V]) []int {
	var out []int
	for i := 0; i < e.N(); i++ {
		if e.Working(i) {
			out = append(out, i)
		}
	}
	return out
}

// subsets enumerates the allowed activation sets over the working
// processes: all non-empty subsets, or singletons only.
func subsets(working []int, singletonsOnly bool) [][]int {
	if singletonsOnly {
		out := make([][]int, len(working))
		for i, p := range working {
			out[i] = []int{p}
		}
		return out
	}
	w := len(working)
	out := make([][]int, 0, (1<<w)-1)
	for mask := 1; mask < 1<<w; mask++ {
		var set []int
		for i := 0; i < w; i++ {
			if mask&(1<<i) != 0 {
				set = append(set, working[i])
			}
		}
		out = append(out, set)
	}
	return out
}
