package model

import (
	"sync/atomic"

	"asynccycle/internal/metrics"
	"asynccycle/internal/par"
	"asynccycle/internal/runctl"
	"asynccycle/internal/sim"
)

// exploreParallel is Explore's Workers > 1 strategy: the root configuration
// is handled once here, then each of its first-level activation subsets is
// explored by an independent worker DFS with a private visited set, fanned
// out through par.Map (which preserves subset order in its results).
//
// Because workers do not share visited sets, states reachable from several
// first-level subsets are explored once per worker — duplicated wall-clock
// work traded for zero cross-worker synchronization. The merged report
// stays exact: each worker records the key set of its visited (and
// terminal) states, and States/Terminal are the sizes of the set unions,
// so they match the serial DFS exactly. Cycle certificates and violation
// witnesses are taken from the first worker (in subset enumeration order)
// that found one, with violations deduplicated across workers by state
// key. MaxStates is one shared atomic budget on the combined explored
// count across all workers (seeded with the root), so a parallel run
// trips at the same global state count a serial run does instead of
// letting every worker spend the full budget privately.
func exploreParallel[V any](root *sim.Engine[V], opt Options, inv Invariant[V]) Report {
	rep := Report{States: 1}

	// Key the root serially: FingerprintHash128 uses engine-owned scratch,
	// and workers must not touch the shared root. The string form is also
	// precomputed so collision fallbacks never race on root.Fingerprint.
	// Under within-run symmetry reduction the root is keyed canonically,
	// like every state the workers visit.
	canon := canonApplies(root, opt)
	var rootKey stateKey
	rootOrbit := 1
	switch {
	case canon && opt.StringFingerprints:
		var fp string
		fp, _, rootOrbit = root.CanonicalFingerprintInfo()
		rootKey = stateKey{str: fp}
	case canon:
		var h1, h2 uint64
		h1, h2, _, rootOrbit = root.CanonicalFingerprintHash128()
		rootKey = stateKey{h1: h1, h2: h2}
	case opt.StringFingerprints:
		rootKey = stateKey{str: root.Fingerprint()}
	default:
		h1, h2 := root.FingerprintHash128()
		rootKey = stateKey{h1: h1, h2: h2}
	}
	rootStr := root.Fingerprint()
	if canon {
		rootStr = root.CanonicalFingerprint()
		rep.Symmetry = SymmetryFull
		rep.WeightedStates = int64(rootOrbit)
	}
	rootStrFn := func() string { return rootStr }

	if inv != nil {
		if err := inv(root); err != nil {
			rep.ViolationWitness = copySteps(nil)
			rep.Violations = append(rep.Violations, err.Error())
		}
	}
	if root.AllDone() {
		rep.Terminal = 1
		return rep
	}
	working := workingSet(root)
	if len(working) == 0 {
		return rep
	}
	if opt.MaxDepth < 1 || opt.MaxStates <= 1 {
		rep.Truncated = true
		return rep
	}

	// Both run-wide counters start at 1: the root configuration handled
	// above is the first explored state and the first visited-table entry.
	// sharedStates makes MaxStates one budget for the whole run, tripping
	// at the same global count the serial dfs check does; sharedVisited
	// feeds the VisitedSize gauge the merged figure rather than one
	// worker's private table size.
	var sharedStates, sharedVisited atomic.Int64
	sharedStates.Store(1)
	sharedVisited.Store(1)

	subs := subsets(working, opt.SingletonsOnly)
	var ws *metrics.WorkerStats
	if opt.Metrics != nil {
		nw := opt.Workers
		if nw > len(subs) {
			nw = len(subs)
		}
		ws = opt.Metrics.SetWorkers(nw)
	}
	// MapCtx instead of Map: on cancellation the pool stops claiming
	// first-level subsets, and each worker's own checker interrupts its DFS,
	// so both in-flight and queued work stop promptly. Without a context the
	// behavior (and the merged report) is identical to par.Map.
	workers, done := par.MapCtx(opt.Context, opt.Workers, subs, ws, func(i int, subset []int) *explorer[V] {
		x := newExplorer[V](opt)
		x.inv = inv
		x.canon = canon
		x.sharedStates = &sharedStates
		x.sharedVisited = &sharedVisited
		x.collectKeys = true
		x.keys = make(map[stateKey]int)
		x.terminalKeys = make(map[stateKey]struct{})
		// Pre-seed the path with the first-level step and keep the root on
		// the stack for the whole worker: cycle prefixes and violation
		// witnesses then come out rooted at the initial configuration, and
		// cycles through the root itself are detected.
		x.onStack.put(rootKey, rootStrFn, struct{}{})
		x.path = append(x.path, subset)
		x.pathFPs = append(x.pathFPs, rootKey)
		child := root.Clone()
		child.Step(subset)
		x.dfs(child, 1)
		return x
	})

	keys := map[stateKey]int{rootKey: rootOrbit}
	terminals := make(map[stateKey]struct{})
	vioSeen := make(map[stateKey]bool)
	for i, x := range workers {
		if x == nil {
			// Subset never claimed (cancelled before a worker picked it up):
			// its region is entirely unexplored.
			if !done[i] {
				rep.Truncated = true
				rep.noteStop(runctl.Reason(opt.Context))
			}
			continue
		}
		r := &x.report
		if r.Partial {
			rep.noteStop(r.StopReason)
		}
		for k, orbit := range x.keys {
			keys[k] = orbit
		}
		for k := range x.terminalKeys {
			terminals[k] = struct{}{}
		}
		if r.Truncated {
			rep.Truncated = true
		}
		if r.DeepestPath > rep.DeepestPath {
			rep.DeepestPath = r.DeepestPath
		}
		rep.HashCollisions += x.visited.hashCollisions() + x.onStack.hashCollisions()
		if r.CycleFound && !rep.CycleFound {
			rep.CycleFound = true
			rep.CyclePrefix = r.CyclePrefix
			rep.CycleLoop = r.CycleLoop
		}
		for i, msg := range r.Violations {
			k := x.vioKeys[i]
			if vioSeen[k] {
				continue
			}
			vioSeen[k] = true
			if len(rep.Violations) == 0 {
				rep.ViolationWitness = r.ViolationWitness
			}
			if len(rep.Violations) < opt.MaxViolations {
				rep.Violations = append(rep.Violations, msg)
			}
		}
	}
	rep.States = len(keys)
	rep.Terminal = len(terminals)
	if canon {
		rep.WeightedStates = 0
		for _, orbit := range keys {
			rep.WeightedStates += int64(orbit)
		}
	}
	if opt.Metrics != nil {
		opt.Metrics.HashCollisions.Add(int64(rep.HashCollisions))
	}
	return rep
}
