package model

// Internal tests for run control: they reach into the explorer's key
// collection to prove that a budgeted or cancelled exploration visits a
// prefix-consistent subset of the full run's states — partial results are
// genuine sub-explorations, never garbage.

import (
	"context"
	"testing"
	"time"

	"asynccycle/internal/core"
	"asynccycle/internal/graph"
	"asynccycle/internal/ids"
	"asynccycle/internal/runctl"
	"asynccycle/internal/sim"
)

// c5Pair builds the paper's Algorithm 1 instance on the 5-cycle, the
// standard non-trivial exploration target (~hundreds of thousands of
// states with singleton schedules).
func c5Pair(t *testing.T) *sim.Engine[core.PairVal] {
	t.Helper()
	g := graph.MustCycle(5)
	e, err := sim.NewEngine(g, core.NewPairNodes(ids.MustGenerate(ids.Increasing, 5, 0)))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// exploreKeys runs the serial DFS with key collection on, returning the
// report and the exact set of visited state keys.
func exploreKeys(root *sim.Engine[core.PairVal], opt Options) (Report, map[stateKey]int) {
	x := newExplorer[core.PairVal](opt)
	x.collectKeys = true
	x.keys = make(map[stateKey]int)
	x.terminalKeys = make(map[stateKey]struct{})
	x.dfs(root, 0)
	return x.report, x.keys
}

func TestCancelledExploreIsPrefixConsistent(t *testing.T) {
	opt := Options{SingletonsOnly: true}

	full, fullKeys := exploreKeys(c5Pair(t), opt)
	if full.Partial || full.StopReason != runctl.StopNone {
		t.Fatalf("full run marked partial: %s", full)
	}

	// Cancel from inside the run once enough states have been seen; the
	// amortized checker trips within checkEvery further states.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cut := full.States / 4
	if cut < 1 {
		t.Fatalf("full exploration too small to cut: %s", full)
	}
	popt := opt
	popt.Context = ctx
	x := newExplorer[core.PairVal](popt)
	x.collectKeys = true
	x.keys = make(map[stateKey]int)
	x.terminalKeys = make(map[stateKey]struct{})
	x.inv = func(e *sim.Engine[core.PairVal]) error {
		if x.report.States == cut {
			cancel()
		}
		return nil
	}
	x.dfs(c5Pair(t), 0)
	partial := x.report

	if !partial.Partial {
		t.Fatalf("cancelled run not marked partial: %s", partial)
	}
	if partial.StopReason != runctl.StopCancelled {
		t.Fatalf("stop reason = %q, want %q", partial.StopReason, runctl.StopCancelled)
	}
	if !partial.Truncated || partial.Ok() {
		t.Fatalf("cancelled run must be truncated and not Ok: %s", partial)
	}
	if partial.States >= full.States || partial.States < cut {
		t.Fatalf("partial states = %d, want in [%d, %d)", partial.States, cut, full.States)
	}
	if partial.States != len(x.keys) {
		t.Fatalf("States=%d but %d keys collected", partial.States, len(x.keys))
	}
	for k := range x.keys {
		if _, ok := fullKeys[k]; !ok {
			t.Fatalf("partial run visited a state the full run never reached")
		}
	}
	if partial.Terminal > full.Terminal {
		t.Fatalf("partial terminal=%d exceeds full %d", partial.Terminal, full.Terminal)
	}
}

func TestExploreBudgetMaxStates(t *testing.T) {
	opt := Options{SingletonsOnly: true, Budget: runctl.Budget{MaxStates: 500}}
	rep := Explore(c5Pair(t), opt, nil)
	if !rep.Partial || rep.StopReason != runctl.StopMaxStates {
		t.Fatalf("want partial max-states report, got %s", rep)
	}
	if rep.States < 500 || rep.States > 600 {
		t.Fatalf("states = %d, want ≈500 (bound plus in-flight branches)", rep.States)
	}
}

func TestExploreBudgetTimeout(t *testing.T) {
	// Full-subset schedules: the same 1690 states but ~10x the edges, so the
	// run takes tens of milliseconds and a 1ms budget reliably trips.
	opt := Options{Budget: runctl.Budget{Timeout: time.Millisecond}}
	rep := Explore(c5Pair(t), opt, nil)
	if !rep.Partial || rep.StopReason != runctl.StopTimeout {
		t.Fatalf("want partial timeout report, got %s", rep)
	}
}

func TestExploreParallelCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt := Options{SingletonsOnly: true, Workers: 4, Context: ctx}
	rep := Explore(c5Pair(t), opt, nil)
	if !rep.Partial || rep.StopReason != runctl.StopCancelled {
		t.Fatalf("want partial cancelled report, got %s", rep)
	}
	// The root is handled before the fan-out, so it is always counted.
	if rep.States < 1 {
		t.Fatalf("states = %d, want ≥ 1", rep.States)
	}
}

func TestExploreParallelTimeoutSubsetOfSerial(t *testing.T) {
	full := Explore(c5Pair(t), Options{}, nil)
	opt := Options{Workers: 4, Budget: runctl.Budget{Timeout: 2 * time.Millisecond}}
	rep := Explore(c5Pair(t), opt, nil)
	if !rep.Partial || rep.StopReason != runctl.StopTimeout {
		t.Fatalf("want partial timeout report, got %s", rep)
	}
	if rep.States > full.States {
		t.Fatalf("partial parallel run counted %d states, full run has %d", rep.States, full.States)
	}
}

func TestWorstActivationsTimeout(t *testing.T) {
	opt := Options{Budget: runctl.Budget{Timeout: time.Millisecond}}
	_, ok, rep := WorstActivations(c5Pair(t), opt)
	if ok {
		t.Fatal("interrupted longest-path analysis claimed a certified result")
	}
	if !rep.Partial || rep.StopReason != runctl.StopTimeout {
		t.Fatalf("want partial timeout report, got %s", rep)
	}
}
