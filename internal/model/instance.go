package model

import (
	"asynccycle/internal/runctl"
	"asynccycle/internal/sim"
)

// InstanceInvariant is a per-configuration safety check over a type-erased
// protocol instance; return a non-nil error to record a violation. It must
// not mutate the instance.
type InstanceInvariant func(inst sim.Instance) error

// ExploreInstance is Explore for type-erased protocol instances — engines
// that do not expose the typed *sim.Engine[V] surface, like the DECOUPLED
// communication-layer engine. It runs the same serial depth-first search
// over every schedule within the option bounds, checking inv (which may be
// nil) at every reachable configuration including the initial one, with
// cycle detection, violation witnesses, and budget-aware PARTIAL reports.
//
// Differences from the typed explorer, by design:
//   - state identity uses the full string Fingerprint (exact, no hash
//     lanes, so HashCollisions is always 0);
//   - no symmetry reduction and no parallel frontier (Options.Workers and
//     Options.Symmetry are ignored);
//   - clone recycling is up to the instance's CloneInto.
//
// For models whose configuration includes a monotone global clock (the
// DECOUPLED tick), the reachable graph is infinite and acyclic: bound the
// search with Options.MaxDepth and expect Truncated reports — verdicts
// then cover every schedule of at most MaxDepth steps.
func ExploreInstance(root sim.Instance, opt Options, inv InstanceInvariant) Report {
	opt = opt.withDefaults()
	opt, cancel := opt.withTimeout()
	defer cancel()
	x := &instExplorer{
		opt:     opt,
		inv:     inv,
		visited: make(map[string]struct{}),
		onStack: make(map[string]struct{}),
		ck:      runctl.NewChecker(opt.Context, opt.Budget.Timeout),
	}
	x.dfs(root, 0)
	return x.report
}

type instExplorer struct {
	opt       Options
	inv       InstanceInvariant
	visited   map[string]struct{}
	onStack   map[string]struct{}
	path      [][]int
	pathFPs   []string
	report    Report
	interrupt bool
	ck        *runctl.Checker
	free      []sim.Instance
}

func (x *instExplorer) clone(inst sim.Instance) sim.Instance {
	if n := len(x.free); n > 0 {
		dst := x.free[n-1]
		x.free = x.free[:n-1]
		return inst.CloneInto(dst)
	}
	return inst.Clone()
}

func (x *instExplorer) dfs(inst sim.Instance, depth int) {
	if x.interrupt {
		return
	}
	if reason, stop := x.ck.Check(); stop {
		x.interrupt = true
		x.report.Truncated = true
		x.report.noteStop(reason)
		return
	}
	if depth > x.report.DeepestPath {
		x.report.DeepestPath = depth
	}
	fp := inst.Fingerprint()
	if _, on := x.onStack[fp]; on {
		if !x.report.CycleFound {
			x.report.CycleFound = true
			start := 0
			for i, pfp := range x.pathFPs {
				if pfp == fp {
					start = i
					break
				}
			}
			x.report.CyclePrefix = copySteps(x.path[:start])
			x.report.CycleLoop = copySteps(x.path[start:])
		}
		return
	}
	if _, seen := x.visited[fp]; seen {
		return
	}
	x.visited[fp] = struct{}{}
	x.report.States++
	if m := x.opt.Metrics; m != nil {
		m.States.Inc()
		m.FrontierDepth.SetMax(int64(depth))
		m.VisitedSize.SetMax(int64(len(x.visited)))
	}
	if x.inv != nil {
		if err := x.inv(inst); err != nil {
			if len(x.report.Violations) == 0 {
				x.report.ViolationWitness = copySteps(x.path)
			}
			if len(x.report.Violations) < x.opt.MaxViolations {
				x.report.Violations = append(x.report.Violations, err.Error())
			}
		}
	}
	if inst.AllDone() {
		x.report.Terminal++
		if m := x.opt.Metrics; m != nil {
			m.Terminal.Inc()
		}
		return
	}
	if depth >= x.opt.MaxDepth {
		x.report.Truncated = true
		x.report.noteStop(runctl.StopMaxDepth)
		return
	}
	if x.report.States >= x.opt.MaxStates {
		x.report.Truncated = true
		x.report.noteStop(runctl.StopMaxStates)
		return
	}

	working := instWorkingSet(inst)
	if len(working) == 0 {
		return
	}
	x.onStack[fp] = struct{}{}
	x.pathFPs = append(x.pathFPs, fp)
	for _, subset := range subsets(working, x.opt.SingletonsOnly) {
		child := x.clone(inst)
		child.Step(subset)
		x.path = append(x.path, subset)
		x.dfs(child, depth+1)
		x.free = append(x.free, child)
		x.path = x.path[:len(x.path)-1]
		if x.interrupt {
			break
		}
	}
	x.pathFPs = x.pathFPs[:len(x.pathFPs)-1]
	delete(x.onStack, fp)
}

func instWorkingSet(inst sim.Instance) []int {
	var out []int
	for i := 0; i < inst.N(); i++ {
		if inst.Working(i) {
			out = append(out, i)
		}
	}
	return out
}
