package model_test

// Regression for the assignment-sweep topology bug: reduced sweeps weight
// orbits by dihedral D_n orbit sizes, an argument that only holds on the
// standard cycle. Before the guard, a sweep over any other topology (or a
// shuffled-neighbor cycle) would silently fold cycle-automorphism weights
// into wrong totals; now it must refuse with ErrSymmetryTopology.

import (
	"errors"
	"testing"

	"asynccycle/internal/core"
	"asynccycle/internal/graph"
	"asynccycle/internal/model"
	"asynccycle/internal/sim"
)

func mkOn(build func(n int) (graph.Graph, error)) func(xs []int) (*sim.Engine[core.PairVal], error) {
	return func(xs []int) (*sim.Engine[core.PairVal], error) {
		g, err := build(len(xs))
		if err != nil {
			return nil, err
		}
		return sim.NewEngine(g, core.NewPairNodes(xs))
	}
}

func TestSweepRefusesSymmetryOffCycle(t *testing.T) {
	nonCycles := map[string]func(n int) (graph.Graph, error){
		"path":     graph.Path,
		"complete": graph.Complete,
		"shuffled-cycle": func(n int) (graph.Graph, error) {
			g, err := graph.Cycle(n)
			if err != nil {
				return g, err
			}
			// Seed 1 actually reorders C4's neighbor lists (some seeds
			// happen to shuffle back to the standard [i-1, i+1] order).
			return g.ShuffledNeighbors(1), nil
		},
	}
	for name, build := range nonCycles {
		for _, sym := range []model.Symmetry{model.SymmetryAssignments, model.SymmetryFull} {
			_, err := model.SweepExplore(4, mkOn(build), model.Options{Symmetry: sym}, nil)
			if !errors.Is(err, model.ErrSymmetryTopology) {
				t.Errorf("%s symmetry=%s: err = %v, want ErrSymmetryTopology", name, sym, err)
			}
			_, err = model.SweepWorstActivations(4, mkOn(build), model.Options{Symmetry: sym})
			if !errors.Is(err, model.ErrSymmetryTopology) {
				t.Errorf("%s symmetry=%s worst: err = %v, want ErrSymmetryTopology", name, sym, err)
			}
		}
		// Unreduced sweeps stay sound on any topology (no orbit weighting).
		rep, err := model.SweepExplore(4, mkOn(build), model.Options{Symmetry: model.SymmetryOff}, nil)
		if err != nil {
			t.Fatalf("%s symmetry=off: %v", name, err)
		}
		if rep.Assignments != 24 || rep.Runs != 24 {
			t.Errorf("%s symmetry=off: covered %d/%d of 24 assignments", name, rep.Assignments, rep.Runs)
		}
	}
	// The guard must not disturb reduced sweeps on the standard cycle.
	rep, err := model.SweepExplore(4, mkOn(graph.Cycle), model.Options{Symmetry: model.SymmetryAssignments}, nil)
	if err != nil {
		t.Fatalf("cycle symmetry=assignments: %v", err)
	}
	if rep.Assignments != 24 {
		t.Errorf("cycle reduced sweep weighted %d assignments, want 24", rep.Assignments)
	}
}
