package model

// Compact-fingerprint state tables. The checker's visited/onStack/memo maps
// used to key on Engine.Fingerprint() strings; every lookup therefore
// materialized (and then discarded) a large formatted string. This file
// replaces them with tables keyed on the 64-bit lane-A hash of
// Engine.FingerprintHash128, with lane B stored alongside each entry to
// *detect* lane-A collisions, and an exact full-string fallback map to
// *resolve* them — the classic explicit-state-checker compromise (compare
// SPIN's hash compaction), made exact rather than probabilistic.
//
// Exactness caveat: two distinct configurations whose full 128-bit
// fingerprints coincide are conflated. With independent 64-bit lanes the
// expected exploration size before such a collision is ~2^64 states, far
// beyond any bounded instance this checker can exhaust; Options.
// StringFingerprints restores the exact string tables for paranoia or
// differential testing (see the equivalence tests in model_test.go).

// stateKey identifies one configuration: its two hash lanes in compact
// mode, or its exact fingerprint string when Options.StringFingerprints is
// set (h1 = h2 = 0 then). Keys are comparable with ==.
type stateKey struct {
	h1, h2 uint64
	str    string
}

// fpEntry is the primary occupant of one lane-A slot.
type fpEntry[T any] struct {
	h2       uint64 // lane B of the occupant, the collision detector
	val      T
	present  bool // false after deleting the occupant of a collided slot
	collided bool // other states share this lane-A value; they live in byStr
}

// fpMap maps configurations to values of type T, keyed by the compact
// fingerprint. The fast path touches only byHash (one uint64 key per
// state). The first time two distinct states collide on lane A — detected
// by differing lane B — the slot is marked collided and the newcomer (plus
// every later state on that lane-A value) is stored under its full string
// fingerprint in byStr; the original occupant keeps its slot, identified by
// its retained lane B, so its string never needs materializing.
type fpMap[T any] struct {
	byHash     map[uint64]fpEntry[T]
	byStr      map[string]T // exact fallback, nil until the first collision
	n          int          // live entries across both maps
	collisions int          // lane-A collisions detected so far
}

func newFPMap[T any]() *fpMap[T] {
	return &fpMap[T]{byHash: make(map[uint64]fpEntry[T])}
}

// get returns the value stored for the state (h1, h2). str() is invoked
// only when a recorded collision forces the exact fallback.
func (m *fpMap[T]) get(h1, h2 uint64, str func() string) (T, bool) {
	var zero T
	e, ok := m.byHash[h1]
	if !ok {
		return zero, false
	}
	if e.h2 == h2 {
		if !e.present {
			return zero, false
		}
		return e.val, true
	}
	if e.collided {
		v, ok := m.byStr[str()]
		return v, ok
	}
	return zero, false
}

// put inserts or overwrites the value for the state (h1, h2).
func (m *fpMap[T]) put(h1, h2 uint64, str func() string, val T) {
	e, ok := m.byHash[h1]
	if !ok {
		m.byHash[h1] = fpEntry[T]{h2: h2, val: val, present: true}
		m.n++
		return
	}
	if e.h2 == h2 {
		if !e.present {
			m.n++
		}
		e.val, e.present = val, true
		m.byHash[h1] = e
		return
	}
	// Lane-A collision between distinct states: mark the slot and route this
	// state through the exact string table.
	if !e.collided {
		e.collided = true
		m.byHash[h1] = e
		m.collisions++
	}
	if m.byStr == nil {
		m.byStr = make(map[string]T)
	}
	s := str()
	if _, dup := m.byStr[s]; !dup {
		m.n++
	}
	m.byStr[s] = val
}

// del removes the state (h1, h2) if present. A collided slot's occupant is
// blanked rather than deleted, so the collision marker survives.
func (m *fpMap[T]) del(h1, h2 uint64, str func() string) {
	e, ok := m.byHash[h1]
	if !ok {
		return
	}
	if e.h2 == h2 {
		if !e.present {
			return
		}
		if e.collided {
			var zero T
			e.val, e.present = zero, false
			m.byHash[h1] = e
		} else {
			delete(m.byHash, h1)
		}
		m.n--
		return
	}
	if e.collided {
		s := str()
		if _, ok := m.byStr[s]; ok {
			delete(m.byStr, s)
			m.n--
		}
	}
}

// length returns the number of live entries.
func (m *fpMap[T]) length() int { return m.n }

// stateTable is the checker-facing table: an fpMap in compact mode, a plain
// string-keyed map when Options.StringFingerprints is set.
type stateTable[T any] struct {
	useStr bool
	str    map[string]T
	fp     *fpMap[T]
}

func newStateTable[T any](useStr bool) *stateTable[T] {
	t := &stateTable[T]{useStr: useStr}
	if useStr {
		t.str = make(map[string]T)
	} else {
		t.fp = newFPMap[T]()
	}
	return t
}

func (t *stateTable[T]) get(k stateKey, str func() string) (T, bool) {
	if t.useStr {
		v, ok := t.str[k.str]
		return v, ok
	}
	return t.fp.get(k.h1, k.h2, str)
}

func (t *stateTable[T]) put(k stateKey, str func() string, val T) {
	if t.useStr {
		t.str[k.str] = val
		return
	}
	t.fp.put(k.h1, k.h2, str, val)
}

func (t *stateTable[T]) del(k stateKey, str func() string) {
	if t.useStr {
		delete(t.str, k.str)
		return
	}
	t.fp.del(k.h1, k.h2, str)
}

func (t *stateTable[T]) length() int {
	if t.useStr {
		return len(t.str)
	}
	return t.fp.length()
}

func (t *stateTable[T]) hashCollisions() int {
	if t.useStr {
		return 0
	}
	return t.fp.collisions
}
