package model

// Correctness audit of the checker hot paths: the engine free list (clone
// recycling must be immune to stale state in released engines) and the
// crash wrappers (workingSet/subsets must expose exactly the schedules the
// simulator can realize under the same crash plan).

import (
	"testing"

	"asynccycle/internal/core"
	"asynccycle/internal/graph"
	"asynccycle/internal/ids"
	"asynccycle/internal/sim"
)

func fiveC(t *testing.T, n int) *sim.Engine[core.FiveVal] {
	t.Helper()
	e, err := sim.NewEngine(graph.MustCycle(n), core.NewFiveNodes(ids.MustGenerate(ids.Increasing, n, 0)))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestFreeListPoisoningIsHarmless is the free-list audit: while a DFS is
// running, scribble hard on every engine sitting in the free list — step
// it, crash it, arm crash limits, flip its mode — and require the final
// report to be byte-identical to a clean run. This pins the CloneInto
// contract the recycler depends on: every field of a reused engine is
// overwritten from the source, so no stale state (including crash limits
// and the in-set dedup marks) can leak into a fresh branch.
func TestFreeListPoisoningIsHarmless(t *testing.T) {
	run := func(poison bool) Report {
		opt := Options{SingletonsOnly: true}
		x := newExplorer[core.FiveVal](opt)
		if poison {
			x.inv = func(e *sim.Engine[core.FiveVal]) error {
				for _, f := range x.free {
					for p := 0; p < f.N(); p++ {
						if f.Working(p) {
							f.Step([]int{p})
							break
						}
					}
					f.Crash(0)
					f.CrashAfter(1, 2)
					f.SetMode(sim.ModeSimultaneous)
				}
				return nil
			}
		}
		x.dfs(fiveC(t, 4), 0)
		return x.report
	}
	clean := run(false)
	dirty := run(true)
	if clean.States != dirty.States || clean.Terminal != dirty.Terminal ||
		clean.CycleFound != dirty.CycleFound || clean.DeepestPath != dirty.DeepestPath ||
		clean.Truncated != dirty.Truncated {
		t.Errorf("poisoning the free list changed the exploration:\nclean %v\ndirty %v", clean, dirty)
	}
	if clean.States == 0 || clean.Terminal == 0 {
		t.Fatalf("audit ran on a trivial instance: %v", clean)
	}
}

// TestWorkingSetRespectsCrashWrappers audits the schedule enumeration
// against the engine's crash state: crashed and terminated processes must
// never appear in an activation set, and singleton enumeration must cover
// exactly the working processes.
func TestWorkingSetRespectsCrashWrappers(t *testing.T) {
	e := fiveC(t, 5)
	e.Crash(1)
	e.CrashAfter(3, 1)
	e.Step([]int{3}) // exhausts 3's limit: it crashes after this activation
	w := workingSet(e)
	want := []int{0, 2, 4}
	if len(w) != len(want) {
		t.Fatalf("working set %v, want %v", w, want)
	}
	for i := range w {
		if w[i] != want[i] {
			t.Fatalf("working set %v, want %v", w, want)
		}
	}
	singles := subsets(w, true)
	if len(singles) != len(want) {
		t.Fatalf("singleton enumeration %v over %v", singles, w)
	}
	for i, s := range singles {
		if len(s) != 1 || s[0] != want[i] {
			t.Fatalf("singleton enumeration %v over %v", singles, w)
		}
	}
	if all := subsets(w, false); len(all) != (1<<len(w))-1 {
		t.Fatalf("full subset enumeration has %d sets over %d working processes", len(all), len(w))
	}
}

// TestCrashScheduleEquivalence checks the model checker against the
// simulator on a crash-limited instance: every configuration a concrete
// sim run can reach under the root's crash plan must be in the checker's
// visited set (exact string fingerprints, so the comparison is collision-
// free). Since a crash limit is part of the engine and survives Clone, the
// checker's schedule enumeration is exactly the simulator's reachable
// schedule space.
func TestCrashScheduleEquivalence(t *testing.T) {
	mkRoot := func() *sim.Engine[core.FiveVal] {
		e := fiveC(t, 4)
		e.CrashAfter(0, 1)
		e.CrashAfter(2, 2)
		return e
	}

	opt := Options{SingletonsOnly: true, StringFingerprints: true}
	x := newExplorer[core.FiveVal](opt)
	x.collectKeys = true
	x.keys = make(map[stateKey]int)
	x.terminalKeys = make(map[stateKey]struct{})
	x.dfs(mkRoot(), 0)
	if x.report.Truncated {
		t.Fatalf("exploration truncated, equivalence vacuous: %v", x.report)
	}
	visited := make(map[string]bool, len(x.keys))
	for k := range x.keys {
		visited[k.str] = true
	}

	// Replay pseudo-random singleton schedules (deterministic LCG) through
	// the simulator and require every intermediate configuration to be in
	// the checker's visited set.
	seed := uint32(1)
	next := func(bound int) int {
		seed = seed*1664525 + 1013904223
		return int(seed>>8) % bound
	}
	for run := 0; run < 50; run++ {
		e := mkRoot().Clone()
		if !visited[e.Fingerprint()] {
			t.Fatalf("run %d: initial configuration not visited", run)
		}
		for step := 0; step < 64; step++ {
			w := workingSet(e)
			if len(w) == 0 {
				break
			}
			e.Step([]int{w[next(len(w))]})
			if !visited[e.Fingerprint()] {
				t.Fatalf("run %d step %d: simulator reached a configuration the checker never visited:\n%s",
					run, step, e.Fingerprint())
			}
		}
	}
}
