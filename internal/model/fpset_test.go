package model

import "testing"

// The collision machinery can't be exercised by real explorations (a lane-A
// collision needs ~2^32 states), so these tests drive fpMap directly with
// synthetic keys sharing lane A.

func strOf(s string) func() string { return func() string { return s } }

func TestFPMapBasic(t *testing.T) {
	m := newFPMap[int]()
	if _, ok := m.get(1, 10, strOf("A")); ok {
		t.Fatal("empty map reported a hit")
	}
	m.put(1, 10, strOf("A"), 100)
	m.put(2, 20, strOf("B"), 200)
	if v, ok := m.get(1, 10, strOf("A")); !ok || v != 100 {
		t.Fatalf("get A = %d, %t", v, ok)
	}
	if m.length() != 2 || m.collisions != 0 {
		t.Fatalf("length=%d collisions=%d", m.length(), m.collisions)
	}
	m.put(1, 10, strOf("A"), 101) // overwrite
	if v, _ := m.get(1, 10, strOf("A")); v != 101 {
		t.Fatalf("overwrite lost: %d", v)
	}
	if m.length() != 2 {
		t.Fatalf("overwrite changed length: %d", m.length())
	}
	m.del(2, 20, strOf("B"))
	if _, ok := m.get(2, 20, strOf("B")); ok || m.length() != 1 {
		t.Fatal("delete failed")
	}
	m.del(2, 20, strOf("B")) // idempotent
	if m.length() != 1 {
		t.Fatal("double delete decremented length")
	}
}

func TestFPMapLaneACollision(t *testing.T) {
	// Three distinct states on the same lane-A value: the first keeps the
	// slot, the later two live in the exact string table.
	m := newFPMap[int]()
	m.put(7, 1, strOf("A"), 100)
	m.put(7, 2, strOf("B"), 200)
	if m.collisions != 1 {
		t.Fatalf("collisions = %d, want 1", m.collisions)
	}
	m.put(7, 3, strOf("C"), 300)
	if m.collisions != 1 {
		t.Fatalf("a second newcomer on the same slot recounted: collisions = %d", m.collisions)
	}
	if m.length() != 3 {
		t.Fatalf("length = %d, want 3", m.length())
	}
	for _, c := range []struct {
		h2   uint64
		str  string
		want int
	}{{1, "A", 100}, {2, "B", 200}, {3, "C", 300}} {
		if v, ok := m.get(7, c.h2, strOf(c.str)); !ok || v != c.want {
			t.Fatalf("get %s = %d, %t (want %d)", c.str, v, ok, c.want)
		}
	}
	// An unknown state on the collided slot must miss, not alias.
	if _, ok := m.get(7, 4, strOf("D")); ok {
		t.Fatal("phantom hit for an unseen state on a collided slot")
	}
}

func TestFPMapCollidedDelete(t *testing.T) {
	m := newFPMap[int]()
	m.put(7, 1, strOf("A"), 100)
	m.put(7, 2, strOf("B"), 200)

	// Deleting the slot's primary occupant must keep the collision marker,
	// or B (living in byStr) would become unreachable.
	m.del(7, 1, strOf("A"))
	if _, ok := m.get(7, 1, strOf("A")); ok {
		t.Fatal("deleted primary still present")
	}
	if v, ok := m.get(7, 2, strOf("B")); !ok || v != 200 {
		t.Fatal("deleting the primary lost the fallback resident")
	}
	if m.length() != 1 {
		t.Fatalf("length = %d, want 1", m.length())
	}

	// Reinsert the primary into its blanked slot.
	m.put(7, 1, strOf("A"), 110)
	if v, ok := m.get(7, 1, strOf("A")); !ok || v != 110 {
		t.Fatal("reinsertion into a blanked collided slot failed")
	}
	if m.length() != 2 {
		t.Fatalf("length = %d, want 2", m.length())
	}

	// Delete the fallback resident by string.
	m.del(7, 2, strOf("B"))
	if _, ok := m.get(7, 2, strOf("B")); ok || m.length() != 1 {
		t.Fatal("fallback delete failed")
	}
	// Deleting an unseen state on the collided slot is a no-op.
	m.del(7, 9, strOf("Z"))
	if m.length() != 1 {
		t.Fatal("no-op delete decremented length")
	}
}

func TestStateTableModes(t *testing.T) {
	for _, useStr := range []bool{false, true} {
		tab := newStateTable[int](useStr)
		key := func(i uint64, s string) stateKey {
			if useStr {
				return stateKey{str: s}
			}
			return stateKey{h1: i, h2: i * 31}
		}
		tab.put(key(1, "one"), strOf("one"), 1)
		tab.put(key(2, "two"), strOf("two"), 2)
		if v, ok := tab.get(key(1, "one"), strOf("one")); !ok || v != 1 {
			t.Fatalf("useStr=%t: get = %d, %t", useStr, v, ok)
		}
		if tab.length() != 2 {
			t.Fatalf("useStr=%t: length = %d", useStr, tab.length())
		}
		tab.del(key(1, "one"), strOf("one"))
		if _, ok := tab.get(key(1, "one"), strOf("one")); ok || tab.length() != 1 {
			t.Fatalf("useStr=%t: delete failed", useStr)
		}
		if tab.hashCollisions() != 0 {
			t.Fatalf("useStr=%t: spurious collisions", useStr)
		}
	}
}
