package model_test

import (
	"fmt"
	"testing"

	"asynccycle/internal/core"
	"asynccycle/internal/graph"
	"asynccycle/internal/ids"
	"asynccycle/internal/mis"
	"asynccycle/internal/model"
	"asynccycle/internal/sim"
)

// TestCycleWitnessReplays extracts the livelock certificate for Algorithm 2
// under simultaneous semantics (finding F1) and replays it concretely: the
// prefix reaches a configuration from which the loop returns to the same
// fingerprint, with working processes activated — an executable proof of
// non-wait-freedom.
func TestCycleWitnessReplays(t *testing.T) {
	g := graph.MustCycle(3)
	xs := ids.MustGenerate(ids.Increasing, 3, 0)
	e, _ := sim.NewEngine(g, core.NewFiveNodes(xs))
	e.SetMode(sim.ModeSimultaneous)
	rep := model.Explore(e, model.Options{}, nil)
	if !rep.CycleFound {
		t.Fatal("expected the F1 cycle")
	}
	if len(rep.CycleLoop) == 0 {
		t.Fatal("cycle found but no loop steps extracted")
	}

	// Replay: prefix, then verify the loop is indeed a loop.
	replay, _ := sim.NewEngine(g, core.NewFiveNodes(xs))
	replay.SetMode(sim.ModeSimultaneous)
	for _, step := range rep.CyclePrefix {
		replay.Step(step)
	}
	start := replay.Fingerprint()
	for round := 0; round < 3; round++ {
		activatedSomeone := false
		for _, step := range rep.CycleLoop {
			if len(replay.Step(step)) > 0 {
				activatedSomeone = true
			}
		}
		if got := replay.Fingerprint(); got != start {
			t.Fatalf("loop iteration %d did not return to the loop state", round)
		}
		if !activatedSomeone {
			t.Fatalf("loop iteration %d activated nobody — not a real livelock", round)
		}
	}
}

// TestViolationWitnessReplays extracts the schedule reaching the first
// MIS-spec violation of the impatient candidate and replays it: the
// reached configuration indeed violates the specification.
func TestViolationWitnessReplays(t *testing.T) {
	g := graph.MustCycle(3)
	xs := ids.MustGenerate(ids.Increasing, 3, 0)
	inv := func(e *sim.Engine[mis.Val]) error {
		r := e.Result()
		if v := mis.ViolatesMIS(g.Edges(), g.N(), r.Outputs, r.Done); v != "" {
			return fmt.Errorf("%s", v)
		}
		return nil
	}
	e, _ := sim.NewEngine(g, mis.NewImpatientNodes(xs, 2))
	rep := model.Explore(e, model.Options{SingletonsOnly: true}, inv)
	if len(rep.Violations) == 0 {
		t.Fatal("expected an MIS violation")
	}
	if rep.ViolationWitness == nil {
		t.Fatal("violation without witness")
	}

	replay, _ := sim.NewEngine(g, mis.NewImpatientNodes(xs, 2))
	for _, step := range rep.ViolationWitness {
		replay.Step(step)
	}
	r := replay.Result()
	if v := mis.ViolatesMIS(g.Edges(), g.N(), r.Outputs, r.Done); v == "" {
		t.Fatal("replayed witness does not violate the MIS spec")
	}
}

// TestNoWitnessOnCleanRuns: clean explorations carry no witnesses.
func TestNoWitnessOnCleanRuns(t *testing.T) {
	nodes := []sim.Node[int]{&stepNode{Rounds: 2}, &stepNode{Rounds: 2}, &stepNode{Rounds: 2}}
	rep := model.Explore(engineWith(t, nodes), model.Options{SingletonsOnly: true}, nil)
	if rep.CyclePrefix != nil || rep.CycleLoop != nil || rep.ViolationWitness != nil {
		t.Errorf("unexpected witnesses on a clean run: %+v", rep)
	}
}

// TestLoopWitnessMinimalToy: for the self-looping toy, the loop must be a
// single step activating a process.
func TestLoopWitnessMinimalToy(t *testing.T) {
	nodes := []sim.Node[int]{loopNode{}, loopNode{}, loopNode{}}
	rep := model.Explore(engineWith(t, nodes), model.Options{SingletonsOnly: true}, nil)
	if !rep.CycleFound {
		t.Fatal("no cycle")
	}
	if len(rep.CycleLoop) == 0 {
		t.Fatal("no loop steps")
	}
	for _, step := range rep.CycleLoop {
		if len(step) == 0 {
			t.Fatal("loop contains an empty activation set")
		}
	}
}
