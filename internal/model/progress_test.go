package model_test

import (
	"strings"
	"testing"

	"asynccycle/internal/model"
	"asynccycle/internal/sim"
)

// gateNode terminates only after seeing a neighbor's register present — so
// it cannot finish solo from a fresh start (not obstruction-free), but any
// fair schedule terminates it.
type gateNode struct{ rounds int }

func (g *gateNode) Publish() int { return g.rounds }

func (g *gateNode) Observe(view []sim.Cell[int]) sim.Decision {
	g.rounds++
	for _, c := range view {
		if c.Present {
			return sim.Decision{Return: true, Output: 0}
		}
	}
	return sim.Decision{}
}

func (g *gateNode) Clone() sim.Node[int] {
	cp := *g
	return &cp
}

func TestObstructionFreeHolds(t *testing.T) {
	nodes := []sim.Node[int]{&stepNode{Rounds: 2}, &stepNode{Rounds: 2}, &stepNode{Rounds: 2}}
	counter, rep := model.ObstructionFree(engineWith(t, nodes), model.Options{SingletonsOnly: true}, 5)
	if counter != "" {
		t.Fatalf("counterexample on a wait-free toy: %s", counter)
	}
	if rep.States == 0 {
		t.Fatal("nothing explored")
	}
}

func TestObstructionFreeFindsCounterexample(t *testing.T) {
	nodes := []sim.Node[int]{loopNode{}, loopNode{}, loopNode{}}
	counter, _ := model.ObstructionFree(engineWith(t, nodes), model.Options{SingletonsOnly: true}, 10)
	if counter == "" {
		t.Fatal("no counterexample for a livelocked toy")
	}
	if !strings.Contains(counter, "solo") {
		t.Errorf("unexpected counterexample text %q", counter)
	}
}

func TestGateNodeNotObstructionFreeButFair(t *testing.T) {
	// From the initial configuration (all registers ⊥) a solo gateNode
	// spins forever; under fair schedules the first two steps of any two
	// distinct processes unblock each other.
	nodes := []sim.Node[int]{&gateNode{}, &gateNode{}, &gateNode{}}
	counter, _ := model.ObstructionFree(engineWith(t, nodes), model.Options{SingletonsOnly: true, MaxStates: 50_000}, 10)
	if counter == "" {
		t.Fatal("gateNode should fail obstruction-freedom from the ⊥ start")
	}

	nodes2 := []sim.Node[int]{&gateNode{}, &gateNode{}, &gateNode{}}
	desc, _ := model.FairlyTerminates(engineWith(t, nodes2), model.Options{SingletonsOnly: true, MaxStates: 50_000})
	if desc != "" {
		t.Fatalf("gateNode should be starvation-free, found: %s", desc)
	}
}

func TestFairlyTerminatesHoldsForWaitFree(t *testing.T) {
	nodes := []sim.Node[int]{&stepNode{Rounds: 3}, &stepNode{Rounds: 3}, &stepNode{Rounds: 3}}
	desc, rep := model.FairlyTerminates(engineWith(t, nodes), model.Options{SingletonsOnly: true})
	if desc != "" {
		t.Fatalf("fair livelock on a wait-free toy: %s", desc)
	}
	if rep.Truncated {
		t.Fatal("truncated on a tiny instance")
	}
}

func TestFairlyTerminatesFindsFairLivelock(t *testing.T) {
	// loopNodes spin forever under *every* schedule, including fair ones:
	// the self-loop component activates every working process.
	nodes := []sim.Node[int]{loopNode{}, loopNode{}, loopNode{}}
	desc, rep := model.FairlyTerminates(engineWith(t, nodes), model.Options{SingletonsOnly: true})
	if desc == "" {
		t.Fatal("no fair livelock found for loopNodes")
	}
	if !rep.CycleFound {
		t.Error("report should flag the cycle")
	}
}

// starveNode spins until process 0's register shows a value ≥ 1, which
// requires process 0 to take two steps; process 0 itself is a plain
// stepNode that terminates quickly. This creates livelock cycles that are
// all *unfair* (they starve process 0), so FairlyTerminates must find no
// fair component even though Explore finds cycles.
type starveNode struct{ fed bool }

func (s *starveNode) Publish() int { return 0 }

func (s *starveNode) Observe(view []sim.Cell[int]) sim.Decision {
	for _, c := range view {
		if c.Present && c.Val >= 1 {
			return sim.Decision{Return: true, Output: 1}
		}
	}
	return sim.Decision{}
}

func (s *starveNode) Clone() sim.Node[int] {
	cp := *s
	return &cp
}

func TestUnfairOnlyLivelockDistinguished(t *testing.T) {
	nodes := []sim.Node[int]{&stepNode{Rounds: 2}, &starveNode{}, &starveNode{}}
	rep := model.Explore(engineWith(t, nodes), model.Options{SingletonsOnly: true}, nil)
	if !rep.CycleFound {
		t.Fatal("expected unfair livelock cycles (starvers spinning)")
	}
	nodes2 := []sim.Node[int]{&stepNode{Rounds: 2}, &starveNode{}, &starveNode{}}
	desc, _ := model.FairlyTerminates(engineWith(t, nodes2), model.Options{SingletonsOnly: true})
	if desc != "" {
		t.Fatalf("livelock should be unfair-only, found: %s", desc)
	}
}
