package model_test

// Out-of-core and resumable-checking contracts:
//
//   - A spilled visited set (Options.SpillDir) keys states by the same
//     128-bit fingerprint as the in-RAM compact tables, so every count is
//     bit-identical to an in-RAM run.
//   - MaxStates is one shared budget across parallel workers: a Workers=4
//     run trips at the same global state count a Workers=1 run does.
//   - The VisitedSize gauge publishes the merged figure across workers.
//   - A sweep resumed from any completed-orbit checkpoint finishes with a
//     report bit-identical to the uninterrupted sweep's.
//   - Sharded sweeps partition the orbit representatives and merge exactly.

import (
	"os"
	"reflect"
	"testing"

	"asynccycle/internal/metrics"
	"asynccycle/internal/model"
	"asynccycle/internal/runctl"
	"asynccycle/internal/sim"
)

func TestSpillEquivalence(t *testing.T) {
	for _, n := range []int{4, 5} {
		for _, sym := range []model.Symmetry{model.SymmetryOff, model.SymmetryFull} {
			base := model.Options{SingletonsOnly: true, Symmetry: sym}
			ref := model.Explore(fiveEngine(t, n), base, nil)

			sp := base
			sp.SpillDir = t.TempDir()
			// A tiny delta limit forces many spilled runs plus compaction,
			// so membership is really answered from disk.
			sp.SpillMemLimit = 64
			got := model.Explore(fiveEngine(t, n), sp, nil)

			if got.States != ref.States || got.Terminal != ref.Terminal ||
				got.WeightedStates != ref.WeightedStates ||
				got.CycleFound != ref.CycleFound || got.Truncated != ref.Truncated ||
				got.DeepestPath != ref.DeepestPath || got.Symmetry != ref.Symmetry {
				t.Errorf("C%d symmetry=%s: spilled run drifted:\nref  %v\ngot  %v", n, sym, ref, got)
			}
			// The scratch subdirectory must be gone when Explore returns.
			left, err := os.ReadDir(sp.SpillDir)
			if err != nil {
				t.Fatal(err)
			}
			if len(left) != 0 {
				t.Errorf("C%d symmetry=%s: spill scratch left behind: %v", n, sym, left)
			}
		}
	}
}

func TestSpillDirFailureRefusesRun(t *testing.T) {
	opt := model.Options{
		SingletonsOnly: true,
		SpillDir:       t.TempDir() + "/does/not/exist",
	}
	rep := model.Explore(fiveEngine(t, 4), opt, nil)
	if !rep.Partial || rep.StopReason != runctl.StopIO {
		t.Fatalf("unusable spill dir not refused: %v", rep)
	}
	if rep.States != 0 {
		t.Fatalf("refused run still explored %d states", rep.States)
	}
}

// Regression for the per-worker budget bug: MaxStates used to bound each
// parallel worker separately, letting a Workers=4 run explore up to 4× the
// cap before tripping. The budget is now one shared atomic counter, so the
// combined explored count (the metrics States sum across workers) trips at
// the same point the serial run does.
func TestSharedMaxStatesBudget(t *testing.T) {
	const budget = 1500
	mk := func(workers int) (model.Report, *metrics.Run) {
		met := metrics.NewRun()
		rep := model.Explore(fiveEngine(t, 5), model.Options{
			SingletonsOnly: true,
			MaxStates:      budget,
			Workers:        workers,
			Metrics:        met,
		}, nil)
		return rep, met
	}
	serial, _ := mk(1)
	par, met := mk(4)

	if !serial.Truncated || serial.StopReason != runctl.StopMaxStates {
		t.Fatalf("serial run did not trip MaxStates: %v", serial)
	}
	if !par.Truncated || par.StopReason != runctl.StopMaxStates {
		t.Fatalf("parallel run did not trip MaxStates: %v", par)
	}
	// Identical trip behavior: the combined count stays near the budget
	// (bounded overshoot from in-flight frames draining), nowhere near
	// workers × budget as the per-worker budgets allowed.
	if got := met.States.Load(); got >= 2*budget {
		t.Errorf("parallel run explored %d combined states under a budget of %d", got, budget)
	}
	// The merged distinct-state count cannot exceed what was explored
	// (+1 for the root, which the parallel path counts in the report only).
	if int64(par.States) > met.States.Load()+1 {
		t.Errorf("merged States %d exceeds combined explored count %d", par.States, met.States.Load())
	}
}

// Regression for the VisitedSize gauge: with Workers > 1 it used to
// publish the largest single worker's private table size. It now counts
// every insertion across workers plus the shared root, so it can never sit
// below the merged distinct-state count.
func TestParallelVisitedSizeMerged(t *testing.T) {
	met := metrics.NewRun()
	rep := model.Explore(fiveEngine(t, 4), model.Options{
		SingletonsOnly: true,
		Workers:        4,
		Metrics:        met,
	}, nil)
	if got := met.VisitedSize.Load(); got < int64(rep.States) {
		t.Errorf("VisitedSize gauge %d below merged distinct-state count %d", got, rep.States)
	}
}

// eqSweep compares every field of two sweep reports.
func eqSweep(t *testing.T, name string, got, want model.SweepReport) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("%s:\ngot  %+v\nwant %+v", name, got, want)
	}
}

func TestSweepResumeBitIdentical(t *testing.T) {
	n := 4
	for _, sym := range []model.Symmetry{model.SymmetryOff, model.SymmetryAssignments} {
		opt := model.Options{SingletonsOnly: true, Symmetry: sym}
		ref, err := model.SweepExplore(n, fiveSweep(n, sim.ModeInterleaved), opt, fiveColoringInv(n))
		if err != nil {
			t.Fatal(err)
		}

		// Record the checkpoint state after every completed orbit.
		type ckpt struct {
			cursor []int
			totals model.SweepReport
		}
		var cks []ckpt
		withCb := opt
		withCb.OnOrbitDone = func(xs []int, weight int, run model.Report, cum model.SweepReport) error {
			cks = append(cks, ckpt{append([]int(nil), xs...), cum})
			return nil
		}
		full, err := model.SweepExplore(n, fiveSweep(n, sim.ModeInterleaved), withCb, fiveColoringInv(n))
		if err != nil {
			t.Fatal(err)
		}
		eqSweep(t, "callback sweep vs plain", full, ref)
		if len(cks) != ref.Runs {
			t.Fatalf("symmetry=%s: %d orbit callbacks for %d runs", sym, len(cks), ref.Runs)
		}
		// The last checkpoint's totals are the final report.
		eqSweep(t, "final checkpoint totals", cks[len(cks)-1].totals, ref)

		// Resuming from any mid-run checkpoint must reproduce the
		// uninterrupted report bit for bit.
		for i, ck := range cks[:len(cks)-1] {
			res := opt
			res.SweepResume = &model.SweepResume{Cursor: ck.cursor, Totals: ck.totals}
			got, err := model.SweepExplore(n, fiveSweep(n, sim.ModeInterleaved), res, fiveColoringInv(n))
			if err != nil {
				t.Fatal(err)
			}
			eqSweep(t, "resume from checkpoint", got, ref)
			_ = i
		}
	}
}

func TestSweepShardMergeEqualsSerial(t *testing.T) {
	n := 4
	opt := model.Options{SingletonsOnly: true, Symmetry: model.SymmetryAssignments}
	serial, err := model.SweepExplore(n, fiveSweep(n, sim.ModeInterleaved), opt, fiveColoringInv(n))
	if err != nil {
		t.Fatal(err)
	}
	const shards = 2
	parts := make([]model.SweepReport, shards)
	runs := 0
	for i := 0; i < shards; i++ {
		so := opt
		so.ShardIndex, so.ShardCount = i, shards
		parts[i], err = model.SweepExplore(n, fiveSweep(n, sim.ModeInterleaved), so, fiveColoringInv(n))
		if err != nil {
			t.Fatal(err)
		}
		runs += parts[i].Runs
	}
	if runs != serial.Runs {
		t.Fatalf("shards ran %d explorations, serial ran %d (not a partition)", runs, serial.Runs)
	}
	merged, err := model.MergeSweepReports(parts)
	if err != nil {
		t.Fatal(err)
	}
	eqSweep(t, "merged shards vs serial", merged, serial)

	// Worst-activation sweeps shard and merge too (supremum vectors fold
	// position-wise).
	serialW, err := model.SweepWorstActivations(n, fiveSweep(n, sim.ModeInterleaved), opt)
	if err != nil {
		t.Fatal(err)
	}
	partsW := make([]model.SweepReport, shards)
	for i := 0; i < shards; i++ {
		so := opt
		so.ShardIndex, so.ShardCount = i, shards
		partsW[i], err = model.SweepWorstActivations(n, fiveSweep(n, sim.ModeInterleaved), so)
		if err != nil {
			t.Fatal(err)
		}
	}
	mergedW, err := model.MergeSweepReports(partsW)
	if err != nil {
		t.Fatal(err)
	}
	eqSweep(t, "merged worst shards vs serial", mergedW, serialW)
}

func TestSweepShardValidation(t *testing.T) {
	opt := model.Options{SingletonsOnly: true, ShardIndex: 2, ShardCount: 2}
	if _, err := model.SweepExplore(4, fiveSweep(4, sim.ModeInterleaved), opt, nil); err == nil {
		t.Error("out-of-range shard index accepted")
	}
	if _, err := model.MergeSweepReports(nil); err == nil {
		t.Error("empty merge accepted")
	}
	if _, err := model.MergeSweepReports([]model.SweepReport{{N: 4}, {N: 5}}); err == nil {
		t.Error("mismatched shard merge accepted")
	}
}
