package model

import (
	"fmt"

	"asynccycle/internal/sim"
)

// This file checks the self-stabilization contract (contract.Stabilizing,
// DESIGN.md §15): a legitimacy predicate partitions the configurations,
// and the promise is
//
//   - closure: every step out of a legitimate configuration reaches a
//     legitimate configuration ("once legal, stays legal"), and
//   - convergence: every fair execution reaches a legitimate
//     configuration — equivalently, no fair cycle (fair SCC, as in
//     FairlyTerminates) lies entirely within the illegitimate states.
//
// The two checks together are exhaustive over the reachable bounded state
// graph from the given initial configuration; sweeping them over all
// initial configurations certifies stabilization from arbitrary states.
// Restricting the convergence analysis to the subgraph induced by the
// illegitimate states is essential: legitimate configurations of a
// stabilizing protocol are fixpoints that run forever (nothing
// terminates), so a whole-graph fairness analysis would flag every legal
// self-loop as a livelock. A fair cycle through a legitimate state is not
// a convergence failure — and if such a cycle also visited an
// illegitimate state, some legal→illegal edge on it would already violate
// closure.

// StabReport is the verdict of one stabilization check.
type StabReport struct {
	// Explore carries the exploration statistics (states, truncation,
	// deepest path); CycleFound is set when convergence fails.
	Explore Report
	// Legitimate/Illegitimate count the reachable configurations on each
	// side of the legitimacy predicate.
	Legitimate   int
	Illegitimate int
	// ClosureViolations lists the first few legal→illegal transitions
	// (empty when closure holds on the explored region).
	ClosureViolations []string
	// LivelockWitness describes a fair SCC within the illegitimate states
	// ("" when every fair execution converges on the explored region).
	LivelockWitness string
}

// Closed reports whether no legal→illegal transition was found.
func (r StabReport) Closed() bool { return len(r.ClosureViolations) == 0 }

// Converges reports whether no fair illegitimate livelock was found.
func (r StabReport) Converges() bool { return r.LivelockWitness == "" }

// OK reports a clean exhaustive certificate: closure and convergence both
// hold and the exploration was not truncated.
func (r StabReport) OK() bool { return r.Closed() && r.Converges() && !r.Explore.Truncated }

// String renders a one-line summary.
func (r StabReport) String() string {
	return fmt.Sprintf("stabilization states=%d legit=%d illegit=%d closed=%t converges=%t truncated=%t",
		r.Explore.States, r.Legitimate, r.Illegitimate, r.Closed(), r.Converges(), r.Explore.Truncated)
}

// CheckStabilization explores the reachable configuration graph from root
// and checks closure + convergence against the legitimacy predicate
// (nil error = legitimate). Symmetry reduction is deliberately not
// applied: legitimacy need not be rotation-invariant (a stabilizing
// protocol may distinguish a root process), and the instances swept are
// small by design.
func CheckStabilization[V any](root *sim.Engine[V], opt Options, legal func(e *sim.Engine[V]) error) StabReport {
	opt = opt.withDefaults()
	g := &stateGraph{
		ids:    newStateTable[int](opt.StringFingerprints),
		useStr: opt.StringFingerprints,
		n:      root.N(),
	}
	rep := Report{}
	buildStateGraph(root, opt, g, &rep, 0, legal)
	rep.States = len(g.edges)
	rep.HashCollisions = g.ids.hashCollisions()
	if g.truncated {
		rep.Truncated = true
	}

	out := StabReport{}
	for _, ok := range g.legal {
		if ok {
			out.Legitimate++
		} else {
			out.Illegitimate++
		}
	}

	// Closure: scan every edge out of a legitimate state.
	for s, edges := range g.edges {
		if !g.legal[s] {
			continue
		}
		for _, ed := range edges {
			if g.legal[ed.to] {
				continue
			}
			if len(out.ClosureViolations) < opt.MaxViolations {
				out.ClosureViolations = append(out.ClosureViolations, fmt.Sprintf(
					"closure: legitimate state %d steps to illegitimate state %d via %s (%s)",
					s, ed.to, intsString(ed.activated), g.illegalWhy[ed.to]))
			}
		}
	}

	// Convergence: fair-SCC analysis over the illegitimate-induced
	// subgraph (legitimate states become isolated, so they only form
	// trivial SCCs that fairLivelock skips).
	sub := &stateGraph{
		n:        g.n,
		edges:    make([][]edge, len(g.edges)),
		working:  g.working,
		terminal: g.terminal,
	}
	for s, edges := range g.edges {
		if g.legal[s] {
			continue
		}
		for _, ed := range edges {
			if g.legal[ed.to] {
				continue
			}
			sub.edges[s] = append(sub.edges[s], ed)
		}
	}
	for _, scc := range tarjanSCC(sub) {
		if desc := fairLivelock(sub, scc); desc != "" {
			out.LivelockWitness = desc
			rep.CycleFound = true
			break
		}
	}
	out.Explore = rep
	return out
}
