package model_test

import (
	"errors"
	"testing"

	"asynccycle/internal/graph"
	"asynccycle/internal/model"
	"asynccycle/internal/sim"
	"asynccycle/internal/stats"
)

// stepNode terminates after a fixed number of own rounds — a strictly
// wait-free toy with known exact worst case.
type stepNode struct {
	Rounds int
	count  int
}

func (s *stepNode) Publish() int { return s.count }

func (s *stepNode) Observe([]sim.Cell[int]) sim.Decision {
	s.count++
	if s.count >= s.Rounds {
		return sim.Decision{Return: true, Output: s.count}
	}
	return sim.Decision{}
}

func (s *stepNode) Clone() sim.Node[int] {
	cp := *s
	return &cp
}

// stubbornNode never terminates, but keeps changing state so every branch
// is a fresh configuration until the depth bound.
type stubbornNode struct{ count int }

func (s *stubbornNode) Publish() int { return s.count }

func (s *stubbornNode) Observe([]sim.Cell[int]) sim.Decision {
	s.count++
	return sim.Decision{}
}

func (s *stubbornNode) Clone() sim.Node[int] {
	cp := *s
	return &cp
}

// loopNode never terminates and never changes state: the minimal livelock.
type loopNode struct{}

func (loopNode) Publish() int                         { return 0 }
func (loopNode) Observe([]sim.Cell[int]) sim.Decision { return sim.Decision{} }
func (loopNode) Clone() sim.Node[int]                 { return loopNode{} }

func engineWith(t *testing.T, nodes []sim.Node[int]) *sim.Engine[int] {
	t.Helper()
	g := graph.MustCycle(len(nodes))
	e, err := sim.NewEngine(g, nodes)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestExploreTerminatesCleanAlgorithm(t *testing.T) {
	nodes := []sim.Node[int]{&stepNode{Rounds: 2}, &stepNode{Rounds: 2}, &stepNode{Rounds: 2}}
	rep := model.Explore(engineWith(t, nodes), model.Options{SingletonsOnly: true}, nil)
	if !rep.Ok() {
		t.Fatalf("report not ok: %s", rep)
	}
	if rep.Terminal == 0 {
		t.Fatal("no terminal configurations found")
	}
	if rep.CycleFound {
		t.Fatal("cycle reported for a terminating algorithm")
	}
	if rep.String() == "" {
		t.Error("empty report string")
	}
}

func TestExploreDetectsLivelock(t *testing.T) {
	nodes := []sim.Node[int]{loopNode{}, loopNode{}, loopNode{}}
	rep := model.Explore(engineWith(t, nodes), model.Options{SingletonsOnly: true}, nil)
	if !rep.CycleFound {
		t.Fatal("livelock not detected")
	}
	if rep.Ok() {
		t.Fatal("report claims ok despite livelock")
	}
}

func TestExploreDepthTruncation(t *testing.T) {
	nodes := []sim.Node[int]{&stubbornNode{}, &stubbornNode{}, &stubbornNode{}}
	rep := model.Explore(engineWith(t, nodes), model.Options{SingletonsOnly: true, MaxDepth: 5}, nil)
	if !rep.Truncated {
		t.Fatal("depth bound not reported as truncation")
	}
	if rep.DeepestPath != 5 {
		t.Errorf("deepest = %d, want 5", rep.DeepestPath)
	}
}

func TestExploreStateTruncation(t *testing.T) {
	nodes := []sim.Node[int]{&stubbornNode{}, &stubbornNode{}, &stubbornNode{}}
	rep := model.Explore(engineWith(t, nodes), model.Options{SingletonsOnly: true, MaxStates: 10}, nil)
	if !rep.Truncated {
		t.Fatal("state bound not reported as truncation")
	}
}

func TestExploreReportsInvariantViolations(t *testing.T) {
	nodes := []sim.Node[int]{&stepNode{Rounds: 1}, &stepNode{Rounds: 1}, &stepNode{Rounds: 1}}
	boom := errors.New("boom")
	calls := 0
	rep := model.Explore(engineWith(t, nodes), model.Options{SingletonsOnly: true, MaxViolations: 2},
		func(e *sim.Engine[int]) error {
			calls++
			if e.Done(0) {
				return boom
			}
			return nil
		})
	if len(rep.Violations) != 2 {
		t.Fatalf("violations = %d, want capped at 2", len(rep.Violations))
	}
	if calls != rep.States {
		t.Errorf("invariant called %d times for %d states", calls, rep.States)
	}
	if rep.Ok() {
		t.Fatal("report claims ok despite violations")
	}
}

func TestExploreSubsetsReachMoreStates(t *testing.T) {
	mk := func() []sim.Node[int] {
		return []sim.Node[int]{&stepNode{Rounds: 2}, &stepNode{Rounds: 2}, &stepNode{Rounds: 2}}
	}
	e1 := engineWith(t, mk())
	e1.SetMode(sim.ModeSimultaneous)
	full := model.Explore(e1, model.Options{}, nil)
	e2 := engineWith(t, mk())
	e2.SetMode(sim.ModeSimultaneous)
	single := model.Explore(e2, model.Options{SingletonsOnly: true}, nil)
	if full.States < single.States {
		t.Errorf("full subsets explored %d states < singletons %d", full.States, single.States)
	}
}

func TestWorstActivationsExact(t *testing.T) {
	// Each stepNode terminates at exactly its own 3rd round, under every
	// schedule: the worst case is exactly 3 for every process.
	nodes := []sim.Node[int]{&stepNode{Rounds: 3}, &stepNode{Rounds: 3}, &stepNode{Rounds: 3}}
	vec, ok, rep := model.WorstActivations(engineWith(t, nodes), model.Options{SingletonsOnly: true})
	if !ok {
		t.Fatalf("analysis inconclusive: %s", rep)
	}
	for i, v := range vec {
		if v != 3 {
			t.Errorf("worst[%d] = %d, want 3", i, v)
		}
	}
	if stats.MaxInt(vec) != 3 {
		t.Errorf("max = %d", stats.MaxInt(vec))
	}
}

func TestWorstActivationsDetectsUnbounded(t *testing.T) {
	nodes := []sim.Node[int]{loopNode{}, loopNode{}, loopNode{}}
	_, ok, rep := model.WorstActivations(engineWith(t, nodes), model.Options{SingletonsOnly: true})
	if ok {
		t.Fatal("claimed bounded activations for a livelocked algorithm")
	}
	if !rep.CycleFound {
		t.Error("cycle not reported")
	}
}

func TestOptionsDefaults(t *testing.T) {
	// Zero options must not hang or crash on a tiny instance.
	nodes := []sim.Node[int]{&stepNode{Rounds: 1}, &stepNode{Rounds: 1}, &stepNode{Rounds: 1}}
	rep := model.Explore(engineWith(t, nodes), model.Options{}, nil)
	if !rep.Ok() {
		t.Fatalf("default exploration failed: %s", rep)
	}
}
