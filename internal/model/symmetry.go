package model

// Symmetry reduction under the cycle's automorphism group, in two
// independent layers (see DESIGN.md §6 for the full soundness argument):
//
//   - Assignment-level (SymmetryAssignments): an exhaustive sweep over all
//     n! identifier-rank assignments of C_n keeps one representative per
//     orbit of the dihedral group D_n (2n rotations/reflections) and
//     weights its counts by the exact orbit size. Running the image
//     assignment is isomorphic to running the original — rotations
//     preserve the engine's fixed neighbor-list order outright, and
//     reflections reverse it, which the algorithms cannot observe (they
//     are neighbor-order-insensitive; the repo pins this with
//     ShuffledNeighbors tests). Reduced sweep totals therefore multiply
//     back to the unreduced totals exactly; the differential tests assert
//     bit-exact equality.
//
//   - Within-run (SymmetryFull): on top of the assignment quotient, each
//     exploration keys its visited/memo tables by the canonical
//     (rotation-minimal) fingerprint, so rotationally equivalent
//     configurations collapse to one state. Only the n rotations are used
//     — they are automorphisms of the *labeled transition system*, not
//     just the algorithm — and only in configurations where stepping
//     commutes with rotation: singleton activation sets (any mode) or
//     ModeSimultaneous sets. Interleaved multi-element sets execute in
//     ascending index order, which relabeling does not preserve, so the
//     checker silently falls back to unreduced keying there (and on any
//     non-standard-cycle topology); Report.Symmetry records what was
//     actually applied.
//
// The default SymmetryOff preserves the historical behavior byte-for-byte.

import (
	"fmt"

	"asynccycle/internal/graph"
	"asynccycle/internal/runctl"
	"asynccycle/internal/sim"
)

// Symmetry selects the reduction level.
type Symmetry int

const (
	// SymmetryOff disables all reduction (the default; byte-identical to
	// the pre-symmetry checker).
	SymmetryOff Symmetry = iota
	// SymmetryAssignments quotients sweep-level identifier assignments by
	// D_n with exact orbit weighting; each representative run is itself
	// unreduced.
	SymmetryAssignments
	// SymmetryFull adds within-run canonical-fingerprint state dedup by
	// the rotation subgroup, where provably sound (see package comment).
	SymmetryFull
)

// String returns "off", "assignments" or "full".
func (s Symmetry) String() string {
	switch s {
	case SymmetryAssignments:
		return "assignments"
	case SymmetryFull:
		return "full"
	default:
		return "off"
	}
}

// ParseSymmetry parses the -symmetry flag values off|assignments|full.
func ParseSymmetry(s string) (Symmetry, error) {
	switch s {
	case "off", "":
		return SymmetryOff, nil
	case "assignments":
		return SymmetryAssignments, nil
	case "full":
		return SymmetryFull, nil
	}
	return SymmetryOff, fmt.Errorf("model: unknown symmetry level %q (want off|assignments|full)", s)
}

// canonApplies reports whether within-run rotation canonicalization is
// sound for this root: SymmetryFull requested, standard-cycle topology
// (neighbor lists in [i-1, i+1] order, which rotations preserve), and
// either singleton-only activation sets or simultaneous-mode semantics.
func canonApplies[V any](root *sim.Engine[V], opt Options) bool {
	if opt.Symmetry != SymmetryFull {
		return false
	}
	if !graph.IsStandardCycle(root.Graph()) {
		return false
	}
	return opt.SingletonsOnly || root.Mode() == sim.ModeSimultaneous
}

// SweepReport aggregates an exhaustive identifier-assignment sweep.
// Weighted totals count every assignment (each orbit representative's
// contribution multiplied by its exact orbit size), so they are directly
// comparable across symmetry levels: a SymmetryOff sweep and a
// SymmetryAssignments sweep of the same instance must agree bit-for-bit on
// every weighted field, which the equivalence tests assert.
type SweepReport struct {
	// N is the cycle length; Symmetry the reduction level the sweep ran at.
	N        int
	Symmetry Symmetry
	// Assignments counts identifier assignments covered (n! when complete,
	// whether or not reduction was on); Runs counts explorations actually
	// performed (orbit representatives under reduction).
	Assignments int
	Runs        int
	// States/Terminal are weighted sums of per-run report counts.
	States   int64
	Terminal int64
	// CycleRuns counts assignments (weighted) whose exploration found a
	// non-termination cycle; Violations the weighted total of violation
	// messages recorded.
	CycleRuns  int64
	Violations int64
	// WorstPerProc is the supremum over assignments of the per-process
	// worst-case activation vector (index = cycle position of the run's own
	// frame, folded over the whole orbit); MaxWorst its maximum entry.
	// Only set by SweepWorstActivations.
	WorstPerProc []int
	MaxWorst     int
	// AllOk reports every per-run analysis was exhaustive and clean (no
	// cycles, violations, truncation).
	AllOk bool
	// HashCollisions sums lane-A collisions across runs.
	HashCollisions int
	// Partial/StopReason mark an interrupted sweep (budget or context);
	// counts then cover exactly the assignments processed.
	Partial    bool
	StopReason runctl.StopReason
}

// String renders a one-line summary.
func (r SweepReport) String() string {
	s := fmt.Sprintf("sweep n=%d symmetry=%s assignments=%d runs=%d states=%d terminal=%d cycles=%d violations=%d allok=%t",
		r.N, r.Symmetry, r.Assignments, r.Runs, r.States, r.Terminal, r.CycleRuns, r.Violations, r.AllOk)
	if r.WorstPerProc != nil {
		s += fmt.Sprintf(" worst=%v max=%d", r.WorstPerProc, r.MaxWorst)
	}
	if r.Partial {
		s += fmt.Sprintf(" [PARTIAL: %s]", r.StopReason)
	}
	return s
}

// maxSweepN bounds sweep sizes: n! assignments (or n!/(2n) representatives)
// beyond 8 processes is out of reach for exhaustive exploration anyway.
const maxSweepN = 8

// ErrSymmetryTopology is the sentinel wrapped by reduced sweeps on
// non-cycle topologies. The assignment quotient weights orbits by D_n
// (dihedral) orbit sizes, which are only the automorphisms of the standard
// cycle — on any other graph (or a cycle with shuffled neighbor lists,
// which reflections no longer map to themselves) the weighted totals would
// be silently wrong, so the sweep refuses instead of degrading.
var ErrSymmetryTopology = fmt.Errorf("model: symmetry-reduced sweeps require the standard cycle topology")

// SweepExplore runs Explore over every identifier-rank assignment of C_n
// (all permutations of {1..n}; only relative identifier order is observable
// by the algorithms, so ranks cover all real identifier inputs). mk builds
// the engine for one assignment. Under opt.Symmetry ≥ SymmetryAssignments
// only canonical orbit representatives are explored and their counts are
// weighted by exact orbit size; verdict-bearing fields (cycles, violations,
// AllOk) cover all assignments either way, because every assignment is
// isomorphic to its representative.
func SweepExplore[V any](n int, mk func(xs []int) (*sim.Engine[V], error), opt Options, inv Invariant[V]) (SweepReport, error) {
	return sweep(n, mk, opt, inv, false)
}

// SweepWorstActivations runs WorstActivations over every identifier-rank
// assignment of C_n, reducing as SweepExplore does, and folds the
// per-assignment worst-activation vectors into a per-position supremum.
// Because an orbit representative's vector is, position-wise, the relabeled
// vector of every assignment in its orbit, the representative's vector is
// folded under all 2n automorphisms — the reduced supremum equals the
// unreduced one exactly (asserted by the differential tests).
func SweepWorstActivations[V any](n int, mk func(xs []int) (*sim.Engine[V], error), opt Options) (SweepReport, error) {
	return sweep[V](n, mk, opt, nil, true)
}

func sweep[V any](n int, mk func(xs []int) (*sim.Engine[V], error), opt Options, inv Invariant[V], worstMode bool) (SweepReport, error) {
	if n < 3 || n > maxSweepN {
		return SweepReport{}, fmt.Errorf("model: sweep over C%d: need 3 ≤ n ≤ %d", n, maxSweepN)
	}
	if opt.Symmetry != SymmetryOff {
		// Reduced sweeps weight orbit representatives by dihedral orbit
		// sizes, a standard-cycle-only argument; probe the engine factory's
		// topology with the identity assignment and refuse loudly on
		// anything else. (canonApplies already falls back per-run, but the
		// assignment-level weighting has no sound fallback short of
		// SymmetryOff.)
		probe, err := mk(identityAssignment(n))
		if err != nil {
			return SweepReport{}, fmt.Errorf("model: sweep topology probe: %w", err)
		}
		if !graph.IsStandardCycle(probe.Graph()) {
			return SweepReport{}, fmt.Errorf("%w (got %s; rerun with -symmetry off)", ErrSymmetryTopology, probe.Graph().Name())
		}
	}
	opt = opt.withDefaults()
	opt, cancel := opt.withTimeout()
	defer cancel()
	shards := opt.ShardCount
	if shards < 1 {
		shards = 1
	}
	if shards > 1 && (opt.ShardIndex < 0 || opt.ShardIndex >= shards) {
		return SweepReport{}, fmt.Errorf("model: sweep shard %d/%d: index out of range", opt.ShardIndex, shards)
	}
	ck := runctl.NewChecker(opt.Context, 0)
	rep := SweepReport{N: n, Symmetry: opt.Symmetry, AllOk: true}
	var cursor []int
	if opt.SweepResume != nil {
		// Seed the cumulative report with the completed prefix's totals; the
		// enumeration below skips every assignment ≤ Cursor. The caller
		// (cmd/modelcheck) has already validated that the checkpoint's
		// configuration matches this sweep's, so the deterministic
		// enumeration continues exactly where the interrupted run stopped.
		rep = opt.SweepResume.Totals
		rep.N, rep.Symmetry = n, opt.Symmetry
		rep.Partial, rep.StopReason = false, runctl.StopNone
		rep.WorstPerProc = append([]int(nil), rep.WorstPerProc...)
		cursor = opt.SweepResume.Cursor
	}
	if worstMode && rep.WorstPerProc == nil {
		rep.WorstPerProc = make([]int, n)
	}
	reduce := opt.Symmetry != SymmetryOff
	var loopErr error
	repIdx := 0 // enumeration index over explored representatives (shard key)
	graph.Permutations(n, func(xs []int) bool {
		if reason, stop := ck.CheckNow(); stop {
			rep.Partial = true
			rep.AllOk = false
			if rep.StopReason == runctl.StopNone {
				rep.StopReason = reason
			}
			return false
		}
		weight := 1
		if reduce {
			if !graph.IsCanonicalAssignment(xs) {
				return true // covered by its orbit representative
			}
			_, weight = graph.CanonicalAssignment(xs)
		}
		// The shard key counts every representative — including ones the
		// resume cursor skips — so a representative's owning shard never
		// depends on where a previous run was interrupted.
		idx := repIdx
		repIdx++
		if shards > 1 && idx%shards != opt.ShardIndex {
			return true // another shard's representative
		}
		if cursor != nil && lexLE(xs, cursor) {
			return true // completed before the interruption; already in rep
		}
		e, err := mk(append([]int(nil), xs...))
		if err != nil {
			loopErr = fmt.Errorf("model: sweep assignment %v: %w", xs, err)
			return false
		}
		rep.Runs++
		rep.Assignments += weight
		var r Report
		if worstMode {
			var vec []int
			var ok bool
			vec, ok, r = WorstActivations(e, opt)
			foldRun(&rep, r, weight)
			if !ok {
				rep.AllOk = false
			}
			foldWorst(rep.WorstPerProc, vec, reduce)
		} else {
			r = Explore(e, opt, inv)
			foldRun(&rep, r, weight)
			if !r.Ok() {
				rep.AllOk = false
			}
		}
		if opt.OnOrbitDone != nil && deterministicStop(r.StopReason) {
			// Only deterministic completions reach the checkpoint hook: a
			// cancelled/timed-out (or I/O-failed) run's counts depend on
			// wall-clock, so folding them into a checkpoint would poison the
			// resumed totals. Such a run stays out of the checkpoint and is
			// re-explored from scratch on resume, keeping the final report
			// bit-identical to an uninterrupted sweep.
			if err := opt.OnOrbitDone(append([]int(nil), xs...), weight, r, rep); err != nil {
				loopErr = fmt.Errorf("model: sweep orbit callback at %v: %w", xs, err)
				return false
			}
		}
		return true
	})
	if loopErr != nil {
		return SweepReport{}, loopErr
	}
	rep.MaxWorst = 0
	for _, w := range rep.WorstPerProc {
		if w > rep.MaxWorst {
			rep.MaxWorst = w
		}
	}
	return rep, nil
}

// identityAssignment returns the first assignment the sweep would
// enumerate, {1..n} — the topology probe builds a throwaway engine with it.
func identityAssignment(n int) []int {
	xs := make([]int, n)
	for i := range xs {
		xs[i] = i + 1
	}
	return xs
}

// deterministicStop reports whether a run ending with this reason is
// reproducible: complete runs and runs truncated by explicit size bounds
// re-run identically, while cancellation, deadlines, and I/O failures cut
// exploration at a wall-clock-dependent point.
func deterministicStop(r runctl.StopReason) bool {
	switch r {
	case runctl.StopNone, runctl.StopMaxStates, runctl.StopMaxDepth, runctl.StopMaxSteps, runctl.StopActivations:
		return true
	}
	return false
}

// lexLE reports xs ≤ cursor in lexicographic order (both are permutations
// of the same length in practice; a shorter cursor prefix-compares).
func lexLE(xs, cursor []int) bool {
	for i, x := range xs {
		if i >= len(cursor) {
			return false
		}
		if x != cursor[i] {
			return x < cursor[i]
		}
	}
	return true
}

// MergeSweepReports folds the per-shard reports of a sharded sweep into
// the report the unsharded sweep would have produced. Shards partition the
// orbit representatives, so counts add exactly; verdict fields combine
// (AllOk ANDs, Partial ORs with the first StopReason kept) and the
// worst-activation supremum merges position-wise. Shards must agree on N
// and Symmetry.
func MergeSweepReports(parts []SweepReport) (SweepReport, error) {
	if len(parts) == 0 {
		return SweepReport{}, fmt.Errorf("model: merge sweep reports: no shards")
	}
	out := parts[0]
	out.WorstPerProc = append([]int(nil), out.WorstPerProc...)
	for _, p := range parts[1:] {
		if p.N != out.N || p.Symmetry != out.Symmetry {
			return SweepReport{}, fmt.Errorf("model: merge sweep reports: shard mismatch (n=%d/%d symmetry=%s/%s)",
				out.N, p.N, out.Symmetry, p.Symmetry)
		}
		out.Assignments += p.Assignments
		out.Runs += p.Runs
		out.States += p.States
		out.Terminal += p.Terminal
		out.CycleRuns += p.CycleRuns
		out.Violations += p.Violations
		out.HashCollisions += p.HashCollisions
		out.AllOk = out.AllOk && p.AllOk
		if p.Partial {
			out.Partial = true
			if out.StopReason == runctl.StopNone {
				out.StopReason = p.StopReason
			}
		}
		if p.WorstPerProc != nil {
			if out.WorstPerProc == nil {
				out.WorstPerProc = make([]int, len(p.WorstPerProc))
			}
			for i, v := range p.WorstPerProc {
				if v > out.WorstPerProc[i] {
					out.WorstPerProc[i] = v
				}
			}
		}
	}
	out.MaxWorst = 0
	for _, w := range out.WorstPerProc {
		if w > out.MaxWorst {
			out.MaxWorst = w
		}
	}
	return out, nil
}

// foldRun accumulates one per-assignment report, weighted by orbit size.
func foldRun(rep *SweepReport, r Report, weight int) {
	rep.States += int64(weight) * int64(r.States)
	rep.Terminal += int64(weight) * int64(r.Terminal)
	if r.CycleFound {
		rep.CycleRuns += int64(weight)
	}
	rep.Violations += int64(weight) * int64(len(r.Violations))
	rep.HashCollisions += r.HashCollisions
	if r.Partial {
		rep.Partial = true
		if rep.StopReason == runctl.StopNone {
			rep.StopReason = r.StopReason
		}
	}
}

// foldWorst merges one assignment's worst-activation vector into the
// per-position supremum. Under reduction the representative's vector
// stands for every assignment in its orbit, whose vectors are its images
// under the orbit's automorphisms: fold all 2n images. (Unreduced, each
// assignment contributes its own frame directly.)
func foldWorst(acc, vec []int, reduce bool) {
	if vec == nil {
		return
	}
	if !reduce {
		for i, v := range vec {
			if v > acc[i] {
				acc[i] = v
			}
		}
		return
	}
	n := len(vec)
	for _, p := range graph.CycleAutomorphisms(n) {
		for i := 0; i < n; i++ {
			if v := vec[p[i]]; v > acc[i] {
				acc[i] = v
			}
		}
	}
}
