package model_test

// Differential tests of symmetry reduction: every verdict, worst-case
// vector and (orbit-weighted) count produced under -symmetry must match
// the unreduced checker exactly. Two regimes are covered:
//
//   - Distinct immutable identifiers (Five/Pair): rotations never merge
//     reachable states, so full-mode States equals the unreduced count and
//     WeightedStates is exactly n times it.
//   - Anonymous uniform nodes from a rotation-symmetric root: the
//     reachable set is closed under rotation, so full-mode WeightedStates
//     equals the unreduced States while States itself shrinks to the
//     orbit-representative count.

import (
	"fmt"
	"testing"

	"asynccycle/internal/core"
	"asynccycle/internal/graph"
	"asynccycle/internal/ids"
	"asynccycle/internal/model"
	"asynccycle/internal/sim"
)

func pairEngine(t testing.TB, n int) *sim.Engine[core.PairVal] {
	t.Helper()
	e, err := sim.NewEngine(graph.MustCycle(n), core.NewPairNodes(ids.MustGenerate(ids.Increasing, n, 0)))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// exploreOffVsFull runs Explore at SymmetryOff and SymmetryFull and checks
// the exact equivalences for a distinct-identifier instance.
func exploreOffVsFull[V any](t *testing.T, name string, mk func() *sim.Engine[V], opt model.Options) {
	t.Helper()
	off := model.Explore(mk(), opt, nil)
	opt.Symmetry = model.SymmetryFull
	full := model.Explore(mk(), opt, nil)
	if full.Symmetry != model.SymmetryFull {
		t.Errorf("%s: full-mode report says symmetry=%s (reduction did not engage)", name, full.Symmetry)
	}
	if off.CycleFound != full.CycleFound || off.Truncated != full.Truncated ||
		len(off.Violations) != len(full.Violations) {
		t.Errorf("%s: verdicts differ: off %v vs full %v", name, off, full)
	}
	if off.States != full.States || off.Terminal != full.Terminal {
		t.Errorf("%s: counts differ: off %v vs full %v", name, off, full)
	}
	n := mk().N()
	if want := int64(n) * int64(off.States); full.WeightedStates != want {
		t.Errorf("%s: weighted states %d, want n*states = %d", name, full.WeightedStates, want)
	}
	if off.WeightedStates != 0 || off.Symmetry != model.SymmetryOff {
		t.Errorf("%s: unreduced report not byte-identical to historical form: %v", name, off)
	}
}

func TestSymmetryFullEquivalenceExplore(t *testing.T) {
	for _, n := range []int{3, 4, 5} {
		n := n
		exploreOffVsFull(t, fmt.Sprintf("five C%d singletons", n),
			func() *sim.Engine[core.FiveVal] { return fiveEngine(t, n) },
			model.Options{SingletonsOnly: true})
		exploreOffVsFull(t, fmt.Sprintf("pair C%d singletons", n),
			func() *sim.Engine[core.PairVal] { return pairEngine(t, n) },
			model.Options{SingletonsOnly: true})
	}
	// Simultaneous full-subset semantics: stepping commutes with rotation,
	// so reduction stays sound (and engaged) for arbitrary activation sets.
	for _, n := range []int{3, 4} {
		n := n
		exploreOffVsFull(t, fmt.Sprintf("five C%d simultaneous", n),
			func() *sim.Engine[core.FiveVal] {
				e := fiveEngine(t, n)
				e.SetMode(sim.ModeSimultaneous)
				return e
			},
			model.Options{})
	}
}

func TestSymmetryInterleavedSubsetsFallsBack(t *testing.T) {
	// Interleaved multi-element activation sets execute in ascending index
	// order, which rotation does not preserve: the checker must silently
	// fall back to unreduced keying and say so in the report.
	e := fiveEngine(t, 3)
	rep := model.Explore(e, model.Options{Symmetry: model.SymmetryFull}, nil)
	if rep.Symmetry != model.SymmetryOff || rep.WeightedStates != 0 {
		t.Errorf("interleaved subsets: reduction engaged unsoundly: %v", rep)
	}
	off := model.Explore(fiveEngine(t, 3), model.Options{}, nil)
	if rep.States != off.States || rep.Terminal != off.Terminal {
		t.Errorf("fallback not byte-equivalent: %v vs %v", rep, off)
	}
}

func TestSymmetryFullAnonymousReduction(t *testing.T) {
	// Uniform stepNodes: the root is invariant under every rotation, so the
	// reachable set is rotation-closed and orbit weights must recover the
	// unreduced count exactly while the representative count shrinks.
	mk := func() *sim.Engine[int] {
		nodes := make([]sim.Node[int], 4)
		for i := range nodes {
			nodes[i] = &stepNode{Rounds: 3}
		}
		e, err := sim.NewEngine(graph.MustCycle(4), nodes)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	opt := model.Options{SingletonsOnly: true}
	off := model.Explore(mk(), opt, nil)
	opt.Symmetry = model.SymmetryFull
	full := model.Explore(mk(), opt, nil)
	if full.Symmetry != model.SymmetryFull {
		t.Fatalf("reduction did not engage: %v", full)
	}
	if full.WeightedStates != int64(off.States) {
		t.Errorf("weighted states %d, want unreduced count %d", full.WeightedStates, off.States)
	}
	if full.States >= off.States {
		t.Errorf("anonymous instance: full explored %d representatives, no fewer than unreduced %d",
			full.States, off.States)
	}
	if off.CycleFound != full.CycleFound || off.Truncated != full.Truncated {
		t.Errorf("verdicts differ: off %v vs full %v", off, full)
	}

	// loopNode: the minimal livelock must still be detected through the
	// quotient (the loop closes on a rotation of its start).
	loops := func() *sim.Engine[int] {
		return engineWith(t, []sim.Node[int]{loopNode{}, loopNode{}, loopNode{}})
	}
	offLoop := model.Explore(loops(), model.Options{SingletonsOnly: true}, nil)
	fullLoop := model.Explore(loops(), model.Options{SingletonsOnly: true, Symmetry: model.SymmetryFull}, nil)
	if !offLoop.CycleFound || !fullLoop.CycleFound {
		t.Errorf("livelock missed: off cycle=%t, full cycle=%t", offLoop.CycleFound, fullLoop.CycleFound)
	}
	if fullLoop.WeightedStates != int64(offLoop.States) {
		t.Errorf("loop instance: weighted %d, want %d", fullLoop.WeightedStates, offLoop.States)
	}
}

func TestSymmetryFullWorstEquivalence(t *testing.T) {
	type mkFn func() (vecOff []int, okOff bool, vecFull []int, okFull bool, repFull model.Report)
	cases := map[string]mkFn{}
	for _, n := range []int{3, 4, 5} {
		n := n
		cases[fmt.Sprintf("five-C%d", n)] = func() ([]int, bool, []int, bool, model.Report) {
			vo, oo, _ := model.WorstActivations(fiveEngine(t, n), model.Options{SingletonsOnly: true})
			vf, of, rf := model.WorstActivations(fiveEngine(t, n), model.Options{SingletonsOnly: true, Symmetry: model.SymmetryFull})
			return vo, oo, vf, of, rf
		}
		cases[fmt.Sprintf("pair-C%d", n)] = func() ([]int, bool, []int, bool, model.Report) {
			vo, oo, _ := model.WorstActivations(pairEngine(t, n), model.Options{SingletonsOnly: true})
			vf, of, rf := model.WorstActivations(pairEngine(t, n), model.Options{SingletonsOnly: true, Symmetry: model.SymmetryFull})
			return vo, oo, vf, of, rf
		}
	}
	for _, n := range []int{3, 4} {
		n := n
		mkFast := func() *sim.Engine[core.FastVal] {
			e, err := sim.NewEngine(graph.MustCycle(n), core.NewFastNodes(ids.MustGenerate(ids.Increasing, n, 0)))
			if err != nil {
				t.Fatal(err)
			}
			return e
		}
		cases[fmt.Sprintf("fast-C%d", n)] = func() ([]int, bool, []int, bool, model.Report) {
			vo, oo, _ := model.WorstActivations(mkFast(), model.Options{SingletonsOnly: true})
			vf, of, rf := model.WorstActivations(mkFast(), model.Options{SingletonsOnly: true, Symmetry: model.SymmetryFull})
			return vo, oo, vf, of, rf
		}
	}
	for name, run := range cases {
		vecOff, okOff, vecFull, okFull, repFull := run()
		if okOff != okFull {
			t.Errorf("%s: ok flags differ: off %t vs full %t (%v)", name, okOff, okFull, repFull)
			continue
		}
		if len(vecOff) != len(vecFull) {
			t.Errorf("%s: vector lengths differ: %v vs %v", name, vecOff, vecFull)
			continue
		}
		for i := range vecOff {
			if vecOff[i] != vecFull[i] {
				t.Errorf("%s: worst-activation vectors differ: off %v vs full %v", name, vecOff, vecFull)
				break
			}
		}
		if repFull.Symmetry != model.SymmetryFull {
			t.Errorf("%s: reduction did not engage", name)
		}
	}
}

func TestSymmetryFullProgressEquivalence(t *testing.T) {
	// Negative instances: Five is obstruction-free and starvation-free on
	// small cycles, and the quotient analyzers must agree with unreduced.
	for _, n := range []int{3, 4} {
		offDesc, offRep := model.ObstructionFree(fiveEngine(t, n), model.Options{SingletonsOnly: true}, 10)
		fullDesc, fullRep := model.ObstructionFree(fiveEngine(t, n), model.Options{SingletonsOnly: true, Symmetry: model.SymmetryFull}, 10)
		if (offDesc == "") != (fullDesc == "") {
			t.Errorf("ObstructionFree C%d: verdicts differ: %q vs %q", n, offDesc, fullDesc)
		}
		if offRep.States != fullRep.States || fullRep.WeightedStates != int64(n)*int64(offRep.States) {
			t.Errorf("ObstructionFree C%d: off %v vs full %v", n, offRep, fullRep)
		}

		offFair, offFR := model.FairlyTerminates(fiveEngine(t, n), model.Options{SingletonsOnly: true})
		fullFair, fullFR := model.FairlyTerminates(fiveEngine(t, n), model.Options{SingletonsOnly: true, Symmetry: model.SymmetryFull})
		if (offFair == "") != (fullFair == "") {
			t.Errorf("FairlyTerminates C%d: verdicts differ: %q vs %q", n, offFair, fullFair)
		}
		if offFR.States != fullFR.States || fullFR.WeightedStates != int64(n)*int64(offFR.States) {
			t.Errorf("FairlyTerminates C%d: off %v vs full %v", n, offFR, fullFR)
		}
	}

	// Positive instance: uniform loopNodes livelock fairly (everyone is
	// activated forever); the quotient lift must still find the fair SCC.
	loops := func() *sim.Engine[int] {
		return engineWith(t, []sim.Node[int]{loopNode{}, loopNode{}, loopNode{}})
	}
	offDesc, _ := model.FairlyTerminates(loops(), model.Options{SingletonsOnly: true})
	fullDesc, fullRep := model.FairlyTerminates(loops(), model.Options{SingletonsOnly: true, Symmetry: model.SymmetryFull})
	if offDesc == "" || fullDesc == "" {
		t.Errorf("uniform livelock: fair-livelock verdicts: off %q, full %q (want both non-empty)", offDesc, fullDesc)
	}
	if fullRep.Symmetry != model.SymmetryFull || !fullRep.CycleFound {
		t.Errorf("uniform livelock: full report %v", fullRep)
	}
}

func TestSymmetryParallelEquivalence(t *testing.T) {
	for _, n := range []int{4, 5} {
		opt := model.Options{SingletonsOnly: true, Symmetry: model.SymmetryFull}
		serial := model.Explore(fiveEngine(t, n), opt, nil)
		opt.Workers = 4
		par := model.Explore(fiveEngine(t, n), opt, nil)
		if serial.States != par.States || serial.Terminal != par.Terminal ||
			serial.WeightedStates != par.WeightedStates ||
			serial.CycleFound != par.CycleFound || serial.Symmetry != par.Symmetry {
			t.Errorf("C%d: serial %v vs workers=4 %v", n, serial, par)
		}
	}
}

func TestSymmetryHashVsStringCanonical(t *testing.T) {
	opt := model.Options{SingletonsOnly: true, Symmetry: model.SymmetryFull}
	hashRep := model.Explore(fiveEngine(t, 4), opt, nil)
	opt.StringFingerprints = true
	strRep := model.Explore(fiveEngine(t, 4), opt, nil)
	if hashRep.States != strRep.States || hashRep.WeightedStates != strRep.WeightedStates ||
		hashRep.Terminal != strRep.Terminal {
		t.Errorf("hash %v vs string %v", hashRep, strRep)
	}
}

// fiveSweep builds the per-assignment engine constructor for a sweep.
func fiveSweep(n int, mode sim.Mode) func(xs []int) (*sim.Engine[core.FiveVal], error) {
	return func(xs []int) (*sim.Engine[core.FiveVal], error) {
		e, err := sim.NewEngine(graph.MustCycle(n), core.NewFiveNodes(xs))
		if err != nil {
			return nil, err
		}
		e.SetMode(mode)
		return e, nil
	}
}

// fiveColoringInv rejects configurations where terminated neighbors share a
// color or a color escapes the 5-palette — relabel-invariant by
// construction, so violation counts fold exactly across orbits.
func fiveColoringInv(n int) model.Invariant[core.FiveVal] {
	return func(e *sim.Engine[core.FiveVal]) error {
		for i := 0; i < n; i++ {
			if !e.Done(i) {
				continue
			}
			c := e.Output(i)
			if c < 0 || c >= 5 {
				return fmt.Errorf("color out of palette")
			}
			if j := (i + 1) % n; e.Done(j) && e.Output(j) == c {
				return fmt.Errorf("monochromatic edge")
			}
		}
		return nil
	}
}

func TestSweepExploreEquivalence(t *testing.T) {
	n := 4
	factorial := 24
	opt := model.Options{SingletonsOnly: true}
	off, err := model.SweepExplore(n, fiveSweep(n, sim.ModeInterleaved), opt, fiveColoringInv(n))
	if err != nil {
		t.Fatal(err)
	}
	opt.Symmetry = model.SymmetryAssignments
	red, err := model.SweepExplore(n, fiveSweep(n, sim.ModeInterleaved), opt, fiveColoringInv(n))
	if err != nil {
		t.Fatal(err)
	}
	if off.Assignments != factorial || red.Assignments != factorial {
		t.Fatalf("assignment coverage: off %d, reduced %d, want %d", off.Assignments, red.Assignments, factorial)
	}
	if off.Runs != factorial {
		t.Errorf("unreduced sweep ran %d explorations, want %d", off.Runs, factorial)
	}
	if wantRuns := factorial / (2 * n); red.Runs != wantRuns {
		t.Errorf("reduced sweep ran %d explorations, want n!/(2n) = %d", red.Runs, wantRuns)
	}
	// Every weighted field must match bit-for-bit.
	if off.States != red.States || off.Terminal != red.Terminal ||
		off.CycleRuns != red.CycleRuns || off.Violations != red.Violations ||
		off.AllOk != red.AllOk || off.Partial != red.Partial {
		t.Errorf("weighted totals differ:\noff     %v\nreduced %v", off, red)
	}
	if !off.AllOk {
		t.Errorf("five C4 sweep not clean: %v", off)
	}
}

func TestSweepWorstEquivalence(t *testing.T) {
	n := 4
	opt := model.Options{SingletonsOnly: true}
	off, err := model.SweepWorstActivations(n, fiveSweep(n, sim.ModeInterleaved), opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Symmetry = model.SymmetryAssignments
	red, err := model.SweepWorstActivations(n, fiveSweep(n, sim.ModeInterleaved), opt)
	if err != nil {
		t.Fatal(err)
	}
	if off.States != red.States || off.Terminal != red.Terminal || off.AllOk != red.AllOk {
		t.Errorf("weighted totals differ:\noff     %v\nreduced %v", off, red)
	}
	if off.MaxWorst != red.MaxWorst {
		t.Errorf("max worst differs: off %d vs reduced %d", off.MaxWorst, red.MaxWorst)
	}
	for i := range off.WorstPerProc {
		if off.WorstPerProc[i] != red.WorstPerProc[i] {
			t.Errorf("worst vectors differ: off %v vs reduced %v", off.WorstPerProc, red.WorstPerProc)
			break
		}
	}

	// Stacking within-run reduction on top must preserve the verdict fields
	// and the supremum vector; raw state counts legitimately shrink.
	opt.Symmetry = model.SymmetryFull
	full, err := model.SweepWorstActivations(n, fiveSweep(n, sim.ModeInterleaved), opt)
	if err != nil {
		t.Fatal(err)
	}
	if full.AllOk != off.AllOk || full.MaxWorst != off.MaxWorst {
		t.Errorf("full sweep verdict drifted: off %v vs full %v", off, full)
	}
	for i := range off.WorstPerProc {
		if off.WorstPerProc[i] != full.WorstPerProc[i] {
			t.Errorf("full sweep worst vector differs: off %v vs full %v", off.WorstPerProc, full.WorstPerProc)
			break
		}
	}
	// Five's identifiers are distinct and immutable, so within one run no
	// two reachable states are rotation-equivalent: the reduced
	// representative count can never exceed the unreduced count (and here
	// equals it — the payoff of SymmetryFull is on anonymous instances).
	if full.States > off.States {
		t.Errorf("full sweep explored %d weighted states, more than off %d", full.States, off.States)
	}
}

func TestSweepRejectsBadSizes(t *testing.T) {
	if _, err := model.SweepExplore(2, fiveSweep(2, sim.ModeInterleaved), model.Options{}, nil); err == nil {
		t.Error("n=2 sweep accepted")
	}
	if _, err := model.SweepExplore(9, fiveSweep(9, sim.ModeInterleaved), model.Options{}, nil); err == nil {
		t.Error("n=9 sweep accepted")
	}
}
